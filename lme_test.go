package lme_test

import (
	"strings"
	"testing"
	"time"

	"lme"
)

func TestSimulationEveryAlgorithmStatic(t *testing.T) {
	for _, alg := range lme.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			sim, err := lme.NewSimulation(lme.Config{
				Algorithm: alg,
				Topology:  lme.Line(6),
				Seed:      3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.RunFor(2 * time.Second); err != nil {
				t.Fatal(err)
			}
			res := sim.Results()
			if res.SafetyViolations != 0 {
				t.Fatalf("safety violations: %d", res.SafetyViolations)
			}
			if res.TotalMeals < 6 {
				t.Fatalf("too few meals: %d", res.TotalMeals)
			}
			if len(res.Starved) != 0 {
				t.Fatalf("starved: %v", res.Starved)
			}
			if res.ResponseCount == 0 || res.ResponseMean <= 0 {
				t.Fatalf("degenerate response stats: %+v", res)
			}
			if !strings.Contains(res.String(), "violations=0") {
				t.Fatalf("String() = %q", res.String())
			}
		})
	}
}

func TestSimulationRejectsBadConfig(t *testing.T) {
	if _, err := lme.NewSimulation(lme.Config{Algorithm: "nope", Topology: lme.Line(3)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := lme.NewSimulation(lme.Config{Algorithm: lme.Alg2}); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestTopologyHelpers(t *testing.T) {
	if got := len(lme.Line(7).Points); got != 7 {
		t.Fatalf("Line: %d", got)
	}
	if got := len(lme.Clique(5).Points); got != 5 {
		t.Fatalf("Clique: %d", got)
	}
	if got := len(lme.Grid(2, 3).Points); got != 6 {
		t.Fatalf("Grid: %d", got)
	}
	topo, err := lme.Geometric(12, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Points) != 12 || topo.Radius != 0.4 {
		t.Fatalf("Geometric: %+v", topo)
	}
}

func TestSimulationCrashAndFailureLocality(t *testing.T) {
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg2,
		Topology:  lme.Line(9),
		Seed:      4,
		EatTime:   3 * time.Millisecond,
		ThinkMax:  3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Crash(4, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Distance ≥ 3 from the crash must keep eating (failure locality 2).
	for _, id := range []int{0, 1, 8} {
		if sim.EatCount(id) < 10 {
			t.Fatalf("node %d ate only %d times after crash", id, sim.EatCount(id))
		}
	}
	if sim.NodeState(4) == "" {
		t.Fatal("empty node state")
	}
}

func TestSimulationMobility(t *testing.T) {
	topo, err := lme.Geometric(14, 0.35, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg1Linial,
		Topology:  topo,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Roam([]int{0, 5, 10}, 0.3, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sim.Jump(3, lme.Point{X: 0.9, Y: 0.9}, time.Second, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := sim.Results()
	if res.SafetyViolations != 0 {
		t.Fatalf("violations under mobility: %d", res.SafetyViolations)
	}
	if len(sim.Neighbors(0)) == 0 && sim.EatCount(0) == 0 {
		t.Fatal("roaming node isolated and starved")
	}
}

func TestSimulationParticipantsSubset(t *testing.T) {
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm:    lme.ChandyMisra,
		Topology:     lme.Clique(4),
		Participants: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if sim.EatCount(2) != 0 || sim.EatCount(3) != 0 {
		t.Fatal("non-participants ate")
	}
	if sim.EatCount(0) == 0 || sim.EatCount(1) == 0 {
		t.Fatal("participants starved")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() lme.Results {
		sim, err := lme.NewSimulation(lme.Config{
			Algorithm: lme.Alg1Greedy,
			Topology:  lme.Grid(3, 3),
			Seed:      9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.RunFor(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return sim.Results()
	}
	a, b := run(), run()
	if a.TotalMeals != b.TotalMeals || a.ResponseMean != b.ResponseMean || a.ResponseMax != b.ResponseMax {
		t.Fatalf("nondeterministic results:\n%v\n%v", a, b)
	}
}

// TestInitialRecoloring runs Algorithm 1 with the distributed
// pre-colouring enabled: every node recolours before its first critical
// section and liveness and safety still hold under full concurrency.
func TestInitialRecoloring(t *testing.T) {
	for _, alg := range []lme.Algorithm{lme.Alg1Greedy, lme.Alg1Linial, lme.Alg1LinialReduce} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			sim, err := lme.NewSimulation(lme.Config{
				Algorithm:         alg,
				Topology:          lme.Grid(3, 3),
				Seed:              6,
				InitialRecoloring: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.RunFor(3 * time.Second); err != nil {
				t.Fatal(err)
			}
			res := sim.Results()
			if res.SafetyViolations != 0 {
				t.Fatalf("violations: %d", res.SafetyViolations)
			}
			if len(res.Starved) != 0 {
				t.Fatalf("starved: %v", res.Starved)
			}
		})
	}
}

// TestGanttRenders smoke-tests the public timeline view.
func TestGanttRenders(t *testing.T) {
	sim, err := lme.NewSimulation(lme.Config{Algorithm: lme.Alg2, Topology: lme.Line(4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	chart := sim.Gantt(200*time.Millisecond, 40)
	if !strings.Contains(chart, "node  0") || !strings.Contains(chart, "█") {
		t.Fatalf("chart:\n%s", chart)
	}
}
