module lme

go 1.24
