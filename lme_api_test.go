package lme_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"lme"
)

func mustSim(t *testing.T, n int) *lme.Simulation {
	t.Helper()
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg2,
		Topology:  lme.Line(n),
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestUnknownAlgorithmSuggestsNearest(t *testing.T) {
	_, err := lme.NewSimulation(lme.Config{
		Algorithm: "alg2-nonotifi", // one edit from alg2-nonotify
		Topology:  lme.Line(4),
	})
	if err == nil {
		t.Fatal("misspelled algorithm accepted")
	}
	if !strings.Contains(err.Error(), `did you mean "alg2-nonotify"`) {
		t.Fatalf("error lacks suggestion: %v", err)
	}
	_, err = lme.NewSimulation(lme.Config{
		Algorithm: "zzzzzzzzzzzzzzzzzzzz", // nothing close
		Topology:  lme.Line(4),
	})
	if err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("implausible name should list known algorithms, got %v", err)
	}
}

func TestAlgorithmDocCoversRegistry(t *testing.T) {
	for _, a := range lme.Algorithms() {
		if lme.AlgorithmDoc(a) == "" {
			t.Errorf("algorithm %q has no doc line", a)
		}
	}
	if lme.AlgorithmDoc("no-such-alg") != "" {
		t.Error("unknown algorithm reported a doc line")
	}
}

func TestMutationsRejectUnknownNodes(t *testing.T) {
	sim := mustSim(t, 5)
	if err := sim.Crash(5, time.Second); err == nil {
		t.Error("Crash accepted out-of-range node")
	}
	if err := sim.Jump(-1, lme.Point{X: 0.5}, time.Second, 0); err == nil {
		t.Error("Jump accepted negative node")
	}
	if err := sim.Roam([]int{0, 99}, 0.3, time.Second); err == nil {
		t.Error("Roam accepted out-of-range node")
	}
	if err := sim.Roam([]int{0, 4}, 0.3, time.Second); err != nil {
		t.Errorf("Roam rejected valid nodes: %v", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	sim := mustSim(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.RunContext(ctx, 10*time.Second); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The run must be resumable after a cancelled slice.
	if err := sim.RunContext(context.Background(), 100*time.Millisecond); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if sim.Results().TotalMeals == 0 {
		t.Fatal("no meals after resumed run")
	}
}

// TestRunContextMatchesRunFor pins that slicing for cancellation does not
// change the event sequence: the same seed yields identical results.
func TestRunContextMatchesRunFor(t *testing.T) {
	a, b := mustSim(t, 8), mustSim(t, 8)
	if err := a.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.RunContext(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if ra, rb := a.Results().String(), b.Results().String(); ra != rb {
		t.Fatalf("RunContext diverged from RunFor:\n%s\n%s", ra, rb)
	}
}
