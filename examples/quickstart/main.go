// Quickstart: eight nodes on a line run the paper's second algorithm
// (optimal failure locality) through a few seconds of virtual time, then
// we crash one node and watch the damage stay local.
package main

import (
	"fmt"
	"os"
	"time"

	"lme"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg2,
		Topology:  lme.Line(8),
		Seed:      1,
	})
	if err != nil {
		return err
	}

	fmt.Println("Phase 1: everyone dines for 2s of virtual time")
	if err := sim.RunFor(2 * time.Second); err != nil {
		return err
	}
	printMeals(sim, 8)

	fmt.Println("\nPhase 2: node 4 crashes; failure locality 2 keeps the damage local")
	if err := sim.Crash(4, sim.Now()); err != nil {
		return err
	}
	if err := sim.RunFor(3 * time.Second); err != nil {
		return err
	}
	printMeals(sim, 8)

	res := sim.Results()
	fmt.Printf("\n%v\n", res)
	if res.SafetyViolations != 0 {
		return fmt.Errorf("mutual exclusion violated %d times", res.SafetyViolations)
	}
	fmt.Println("no two neighbours ever ate simultaneously ✓")
	return nil
}

func printMeals(sim *lme.Simulation, n int) {
	for i := 0; i < n; i++ {
		fmt.Printf("  node %d: state=%-8s meals=%d\n", i, sim.NodeState(i), sim.EatCount(i))
	}
}
