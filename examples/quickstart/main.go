// Quickstart: eight nodes on a line run the paper's second algorithm
// (optimal failure locality) through a few seconds of virtual time, then
// we crash one node and watch the damage stay local. Finally the same
// automata run as a real networked lock service, driven through the
// lease-based Acquire/Release API.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"lme"
	"lme/internal/graph"
	"lme/internal/livenet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg2,
		Topology:  lme.Line(8),
		Seed:      1,
	})
	if err != nil {
		return err
	}

	fmt.Println("Phase 1: everyone dines for 2s of virtual time")
	if err := sim.RunFor(2 * time.Second); err != nil {
		return err
	}
	printMeals(sim, 8)

	fmt.Println("\nPhase 2: node 4 crashes; failure locality 2 keeps the damage local")
	if err := sim.Crash(4, sim.Now()); err != nil {
		return err
	}
	if err := sim.RunFor(3 * time.Second); err != nil {
		return err
	}
	printMeals(sim, 8)

	res := sim.Results()
	fmt.Printf("\n%v\n", res)
	if res.SafetyViolations != 0 {
		return fmt.Errorf("mutual exclusion violated %d times", res.SafetyViolations)
	}
	fmt.Println("no two neighbours ever ate simultaneously ✓")

	// Phase 3: the same algorithm as a live lock service. One goroutine
	// per node, real clocks, and a lease API on top: Acquire blocks until
	// the paper's automaton reaches eating, Release exits the CS, and a
	// client that dies without releasing is cleaned up by lease expiry.
	fmt.Println("\nPhase 3: the same automata as a networked lock service")
	g := graph.Line(8)
	protos, err := lme.NewProtocols(lme.Alg2, lme.FromGraph(g))
	if err != nil {
		return err
	}
	cluster, err := livenet.New(livenet.Config{Seed: 1}, g, protos)
	if err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	lease, err := cluster.Node(3).Acquire(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  node 3 acquired the CS lease at %v\n", lease.GrantedAt().Format("15:04:05.000"))
	if err := lease.Release(); err != nil {
		return err
	}
	if err := cluster.Stop(); err != nil {
		return err
	}
	fmt.Println("  released; live cluster shut down cleanly ✓")
	return nil
}

func printMeals(sim *lme.Simulation, n int) {
	for i := 0; i < n; i++ {
		fmt.Printf("  node %d: state=%-8s meals=%d\n", i, sim.NodeState(i), sim.EatCount(i))
	}
}
