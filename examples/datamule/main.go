// Data mule — the paper's data-collection application [26]: sensor nodes
// around a regional repository compete for exclusive upload slots, while a
// mobile mule tours remote sensor pods, joins each pod's neighbourhood,
// and must win the local mutual exclusion there before it may drain the
// pod. Algorithm 2 is used because its failure locality 2 keeps a dead
// sensor from stalling collection elsewhere.
package main

import (
	"fmt"
	"os"
	"time"

	"lme"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datamule:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three sensor pods in a field; the mule (last node) tours them.
	var pts []lme.Point
	podCenters := []lme.Point{{X: 0.15, Y: 0.15}, {X: 0.85, Y: 0.2}, {X: 0.5, Y: 0.85}}
	for _, c := range podCenters {
		for k := 0; k < 5; k++ {
			pts = append(pts, lme.Point{X: c.X + float64(k%3)*0.03, Y: c.Y + float64(k/3)*0.03})
		}
	}
	mule := len(pts)
	pts = append(pts, podCenters[0])

	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg2,
		Topology:  lme.Topology{Points: pts, Radius: 0.1},
		Seed:      11,
		EatTime:   10 * time.Millisecond, // one upload slot
		ThinkMax:  25 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// The mule visits each pod for ~2s, in rotation.
	for visit := 0; visit < 6; visit++ {
		dest := podCenters[(visit+1)%3]
		at := time.Duration(visit+1) * 2 * time.Second
		if err := sim.Jump(mule, lme.Point{X: dest.X + 0.05, Y: dest.Y + 0.05}, at, 100*time.Millisecond); err != nil {
			return err
		}
	}

	// One sensor in pod 1 dies mid-run; the mule and the other pods
	// must be unaffected (failure locality 2).
	if err := sim.Crash(6, 5*time.Second); err != nil {
		return err
	}

	if err := sim.RunFor(14 * time.Second); err != nil {
		return err
	}

	res := sim.Results()
	fmt.Println("three sensor pods + one touring mule, one sensor crashed at t=5s")
	for pod := 0; pod < 3; pod++ {
		total := 0
		for k := 0; k < 5; k++ {
			total += sim.EatCount(pod*5 + k)
		}
		fmt.Printf("  pod %d uploads: %d\n", pod, total)
	}
	fmt.Printf("  mule drain sessions: %d\n", sim.EatCount(mule))
	fmt.Printf("slot conflicts (must be 0): %d\n", res.SafetyViolations)
	fmt.Printf("upload slot wait: mean=%v p95=%v\n", res.ResponseMean, res.ResponseP95)
	if res.SafetyViolations != 0 {
		return fmt.Errorf("two uploads overlapped within a pod")
	}
	if sim.EatCount(mule) == 0 {
		return fmt.Errorf("the mule never won an upload slot")
	}
	fmt.Println("the mule drained pods without ever clashing with local uploads ✓")
	return nil
}
