// Live lock-service demo: the same algorithm automata the deterministic
// simulator measures, executed one goroutine per node over a real
// Transport, fronted by the lease-based Acquire/Release API. Any
// registered algorithm can be selected by name (same names, same
// did-you-mean as lmesim -alg). The demo:
//
//  1. acquires and releases a lease through the public API,
//  2. simulates a crashed client by letting a lease expire (the TTL
//     demotes the node so its neighbours are not blocked forever), and
//  3. runs background load with one crashed *node*, verifying mutual
//     exclusion held and the damage stayed local.
//
// Usage: livedemo [-alg alg2] [-udp]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lme"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/metrics"
	"lme/internal/sim"
)

const (
	nodes   = 9
	crashed = core.NodeID(4)
	runFor  = time.Second
)

func algUsage() string {
	names := make([]string, 0, len(lme.Algorithms()))
	for _, a := range lme.Algorithms() {
		names = append(names, string(a))
	}
	return "algorithm: " + strings.Join(names, "|")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livedemo:", err)
		os.Exit(1)
	}
}

func run() error {
	algName := flag.String("alg", "alg2", algUsage())
	udp := flag.Bool("udp", false, "use real UDP loopback sockets instead of in-proc channels")
	flag.Parse()

	// One registry serves every entry point: the demo accepts exactly
	// the names lmesim and lmeload do, misspellings included.
	g := graph.Ring(nodes)
	protos, err := lme.NewProtocols(lme.Algorithm(*algName), lme.FromGraph(g))
	if err != nil {
		return err
	}
	cfg := livenet.Config{Seed: 42, LeaseTTL: 50 * time.Millisecond}
	transport := "in-proc channels"
	if *udp {
		if cfg.Transport, err = livenet.NewUDPTransport(g, 0); err != nil {
			return err
		}
		transport = "UDP loopback"
	}
	cluster, err := livenet.New(cfg, g, protos)
	if err != nil {
		return err
	}
	if err := cluster.Start(); err != nil {
		return err
	}
	defer cluster.Stop() //nolint:errcheck

	fmt.Printf("%d goroutine nodes on a ring, %s transport, algorithm %s\n\n", nodes, transport, *algName)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// 1. The lock-service surface: Acquire blocks until the node eats,
	// the lease pins the critical section until Release.
	fmt.Println("Phase 1: acquire and release a lease")
	lease, err := cluster.Node(0).Acquire(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  node 0 holds the CS (granted %v ago)\n", time.Since(lease.GrantedAt()).Round(time.Microsecond))
	if err := lease.Release(); err != nil {
		return err
	}
	fmt.Println("  released ✓")

	// 2. A crashed client: never calls Release. The TTL expires the
	// lease, demoting the node so its neighbours are not wedged.
	fmt.Println("\nPhase 2: a client crashes while holding a lease")
	dead, err := cluster.Node(1).Acquire(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  node 1 holds the CS and its client vanishes (TTL %v)…\n", cfg.LeaseTTL)
	nb, err := cluster.Node(2).Acquire(ctx) // blocks until the expiry demotes node 1
	if err != nil {
		return err
	}
	nb.Release() //nolint:errcheck
	if err := dead.Release(); !errors.Is(err, livenet.ErrLeaseExpired) {
		return fmt.Errorf("expected ErrLeaseExpired, got %v", err)
	}
	fmt.Printf("  lease expired, neighbour 2 proceeded (expired leases: %d) ✓\n", cluster.ExpiredLeases())

	// 3. Background load with a crashed *node* (the paper's failure
	// model, stronger than a crashed client): per-node clients dine for
	// a second; nodes far from the crash must stay live.
	fmt.Printf("\nPhase 3: %v of per-node load; node %d crashes halfway\n", runFor, crashed)
	cluster.CrashAfter(crashed, runFor/2)
	loadCtx, loadCancel := context.WithTimeout(context.Background(), runFor)
	defer loadCancel()
	done := make(chan struct{})
	for i := core.NodeID(0); i < nodes; i++ {
		go func(id core.NodeID) {
			defer func() { done <- struct{}{} }()
			for {
				l, err := cluster.Node(id).Acquire(loadCtx)
				if err != nil {
					return
				}
				time.Sleep(200 * time.Microsecond)
				l.Release() //nolint:errcheck
			}
		}(i)
	}
	for i := 0; i < nodes; i++ {
		<-done
	}

	meals := cluster.Meals()
	dist := g.Distances(int(crashed))
	for i := core.NodeID(0); i < nodes; i++ {
		marker := ""
		if i == crashed {
			marker = "  ← crashed"
		}
		fmt.Printf("  node %d: meals=%d%s\n", i, meals[i], marker)
	}
	if v := cluster.Violations(); len(v) != 0 {
		return fmt.Errorf("mutual exclusion violated: %v", v)
	}
	for i := core.NodeID(0); i < nodes; i++ {
		if i != crashed && dist[i] >= 3 && meals[i] == 0 {
			return fmt.Errorf("node %d at distance %d starved", i, dist[i])
		}
	}
	fmt.Printf("\n%d acquisitions, p99 grant latency %v\n",
		cluster.Acquisitions(), grantP99(cluster))
	fmt.Println("mutual exclusion held under real concurrency; distant nodes unaffected ✓")
	return nil
}

func grantP99(c *livenet.Cluster) time.Duration {
	snap := c.GrantStats()
	if snap.Count == 0 {
		return 0
	}
	return sim.ToDuration(metrics.FromSnapshot(snap).Quantile(0.99))
}
