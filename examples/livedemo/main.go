// Live runtime demo: the same Algorithm 2 state machines that the
// deterministic simulator measures, executed on one goroutine per node
// with channel-based FIFO links in real time — the deployment-shaped face
// of the library. We run a ring of nodes for a second of wall-clock time,
// crash one node halfway, and verify that mutual exclusion held and that
// the crash's damage stayed local.
package main

import (
	"fmt"
	"os"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/lme2"
)

const (
	nodes   = 9
	crashed = core.NodeID(4)
	runFor  = time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livedemo:", err)
		os.Exit(1)
	}
}

func run() error {
	g := graph.Ring(nodes)
	protos := make([]core.Protocol, nodes)
	for i := range protos {
		protos[i] = lme2.New()
	}
	cluster, err := livenet.New(livenet.Config{Seed: 42}, g, protos)
	if err != nil {
		return err
	}
	cluster.CrashAfter(crashed, runFor/2)

	fmt.Printf("running %d goroutine nodes on a ring for %v (node %d crashes at %v)…\n",
		nodes, runFor, crashed, runFor/2)
	if err := cluster.Run(runFor); err != nil {
		return err // non-nil also when mutual exclusion was violated
	}

	meals := cluster.Meals()
	for i := core.NodeID(0); i < nodes; i++ {
		marker := ""
		if i == crashed {
			marker = "  ← crashed"
		}
		fmt.Printf("  node %d: meals=%d%s\n", i, meals[i], marker)
	}
	if v := cluster.Violations(); len(v) != 0 {
		return fmt.Errorf("mutual exclusion violated: %v", v)
	}
	// Failure locality 2: the ring nodes at distance ≥ 3 from the crash
	// must have kept eating in the second half.
	dist := g.Distances(int(crashed))
	for i := core.NodeID(0); i < nodes; i++ {
		if i != crashed && dist[i] >= 3 && meals[i] == 0 {
			return fmt.Errorf("node %d at distance %d starved", i, dist[i])
		}
	}
	fmt.Println("mutual exclusion held under real concurrency; distant nodes unaffected by the crash ✓")
	return nil
}
