// Channel arbitration — the paper's first motivating application: nearby
// nodes compete for exclusive access to a dedicated wireless uplink
// channel. Holding the critical section means transmitting; local mutual
// exclusion guarantees no two nodes within interference range (the
// communication graph) ever transmit simultaneously, while distant nodes
// reuse the channel spatially.
//
// This example runs Algorithm 1 with the Linial recolouring on a random
// geometric deployment and reports per-node airtime and the spatial-reuse
// factor (how many non-conflicting transmissions overlapped).
package main

import (
	"fmt"
	"os"
	"time"

	"lme"
)

const (
	rows, cols   = 5, 6
	nodes        = rows * cols
	slot         = 8 * time.Millisecond // one uplink transmission
	backoffMax   = 12 * time.Millisecond
	simulateTime = 8 * time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "channel:", err)
		os.Exit(1)
	}
}

func run() error {
	// A street-grid deployment: interference only between adjacent
	// stations, so distant parts of the grid can transmit concurrently.
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg1Linial,
		Topology:  lme.Grid(rows, cols),
		Seed:      7,
		EatTime:   slot,
		ThinkMax:  backoffMax,
	})
	if err != nil {
		return err
	}
	if err := sim.RunFor(simulateTime); err != nil {
		return err
	}

	res := sim.Results()
	fmt.Printf("uplink channel, %d stations, %v simulated\n", nodes, simulateTime)
	fmt.Printf("transmissions completed: %d\n", res.TotalMeals)
	fmt.Printf("interference events (must be 0): %d\n", res.SafetyViolations)
	fmt.Printf("media-access delay: mean=%v p95=%v max=%v\n",
		res.ResponseMean, res.ResponseP95, res.ResponseMax)

	// Airtime fairness: min and max transmissions per station.
	minTx, maxTx := sim.EatCount(0), sim.EatCount(0)
	total := 0
	for i := 0; i < nodes; i++ {
		tx := sim.EatCount(i)
		total += tx
		if tx < minTx {
			minTx = tx
		}
		if tx > maxTx {
			maxTx = tx
		}
	}
	fmt.Printf("airtime fairness: min=%d max=%d mean=%.1f transmissions/station\n",
		minTx, maxTx, float64(total)/nodes)

	// Spatial reuse: total airtime vs wall-clock — >1 means concurrent
	// non-interfering transmissions, the whole point of LOCAL (rather
	// than global) mutual exclusion.
	airtime := time.Duration(res.TotalMeals) * slot
	reuse := float64(airtime) / float64(simulateTime)
	fmt.Printf("spatial reuse factor: %.2fx (global mutual exclusion caps this at 1.00x)\n", reuse)
	if res.SafetyViolations != 0 {
		return fmt.Errorf("interference detected")
	}
	if reuse <= 1.0 {
		fmt.Println("warning: no spatial reuse observed (topology too dense?)")
	}
	if minTx == 0 {
		return fmt.Errorf("a station never got the channel")
	}
	return nil
}
