// Projector control — the paper's meeting-room application: the nodes in
// a room arbitrate exclusive control of a shared projector. People walk in
// and out (mobility!); a newcomer must recolour before competing, and an
// eating node that wanders into a new neighbourhood gives up the projector
// (the paper's safety demotion).
//
// This example runs Algorithm 1 (greedy recolouring — the thesis's
// recommended practical choice) with two rooms and a presenter who
// commutes between them.
package main

import (
	"fmt"
	"os"
	"time"

	"lme"
)

const commuter = 8 // node that moves between rooms

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "projector:", err)
		os.Exit(1)
	}
}

func run() error {
	// Two rooms of four seats each, far apart, plus the commuter
	// starting in room A.
	var pts []lme.Point
	for i := 0; i < 4; i++ {
		pts = append(pts, lme.Point{X: 0.1 + float64(i)*0.02, Y: 0.1}) // room A
	}
	for i := 0; i < 4; i++ {
		pts = append(pts, lme.Point{X: 0.8 + float64(i)*0.02, Y: 0.8}) // room B
	}
	pts = append(pts, lme.Point{X: 0.1, Y: 0.14})

	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Alg1Greedy,
		Topology:  lme.Topology{Points: pts, Radius: 0.12},
		Seed:      3,
		EatTime:   20 * time.Millisecond, // one slide
		ThinkMax:  30 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// The commuter changes rooms every 1.5s.
	roomA := lme.Point{X: 0.1, Y: 0.14}
	roomB := lme.Point{X: 0.8, Y: 0.84}
	for trip := 0; trip < 4; trip++ {
		dest := roomB
		if trip%2 == 1 {
			dest = roomA
		}
		if err := sim.Jump(commuter, dest, time.Duration(trip+1)*1500*time.Millisecond, 50*time.Millisecond); err != nil {
			return err
		}
	}

	if err := sim.RunFor(8 * time.Second); err != nil {
		return err
	}

	res := sim.Results()
	fmt.Println("meeting rooms A and B, 9 presenters, one commuting")
	for i := 0; i < 9; i++ {
		role := "room A"
		if i >= 4 && i != commuter {
			role = "room B"
		}
		if i == commuter {
			role = "commuter"
		}
		fmt.Printf("  presenter %d (%-8s): slides presented=%d\n", i, role, sim.EatCount(i))
	}
	fmt.Printf("projector conflicts (must be 0): %d\n", res.SafetyViolations)
	fmt.Printf("wait for the projector: mean=%v p95=%v\n", res.ResponseMean, res.ResponseP95)
	if res.SafetyViolations != 0 {
		return fmt.Errorf("two presenters held the projector at once")
	}
	if sim.EatCount(commuter) == 0 {
		return fmt.Errorf("the commuter never presented — recolouring on arrival is broken")
	}
	fmt.Println("the commuter presented in both rooms without ever clashing ✓")
	return nil
}
