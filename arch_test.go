package lme

// Architecture test: the algorithm cores are pure reactive automata and
// must stay runtime-agnostic — no algorithm package may import the live
// runtime (internal/livenet) or the simulator (internal/manet). The
// Transport seam and the wire codec registration (each core's wire.go,
// with gob kept as the differential oracle) keep both runtimes able
// to move algorithm messages without the algorithms knowing either
// exists; this test pins that boundary.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// algorithmCorePackages lists every package that implements or directly
// supports the paper's automata.
var algorithmCorePackages = []string{
	"internal/core",
	"internal/lme1",
	"internal/lme2",
	"internal/baseline",
	"internal/doorway",
	"internal/coloring",
}

// forbiddenRuntimeImports are the runtime layers the cores must not see.
var forbiddenRuntimeImports = []string{
	"lme/internal/livenet",
	"lme/internal/manet",
	"lme/internal/loadgen",
}

func TestAlgorithmCoresDoNotImportRuntimes(t *testing.T) {
	fset := token.NewFileSet()
	for _, pkg := range algorithmCorePackages {
		entries, err := os.ReadDir(pkg)
		if err != nil {
			t.Fatalf("read %s: %v", pkg, err)
		}
		for _, e := range entries {
			// Tests may drive a core through a runtime; only the shipped
			// sources are bound by the layering rule.
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(pkg, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				dep, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("unquote import in %s: %v", path, err)
				}
				for _, bad := range forbiddenRuntimeImports {
					if dep == bad {
						t.Errorf("%s imports %s: algorithm cores must not depend on a runtime", path, dep)
					}
				}
			}
		}
	}
}
