// Benchmarks regenerating every experiment of DESIGN.md §2 (the paper's
// Table 1 and theorem-predicted scalings), plus micro-benchmarks of the
// substrate. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks execute one full experiment per iteration at
// Quick quality and additionally report the headline measured quantity as
// a custom metric; cmd/lmebench prints the Full-quality tables that
// EXPERIMENTS.md records.
package lme_test

import (
	"testing"
	"time"

	"lme"
	"lme/internal/coloring"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/harness"
)

// benchExperiment runs one DESIGN.md experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var exp harness.Experiment
	for _, e := range harness.Experiments() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.Plan == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Run(harness.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1(b *testing.B)            { benchExperiment(b, "E1") }  // E1: Table 1
func BenchmarkFailureLocality(b *testing.B)   { benchExperiment(b, "E2") }  // E2: blocked radius
func BenchmarkStaticChain(b *testing.B)       { benchExperiment(b, "E3") }  // E3: Thm 26
func BenchmarkMobileAlg2(b *testing.B)        { benchExperiment(b, "E4") }  // E4: Thm 25
func BenchmarkAlg1Degree(b *testing.B)        { benchExperiment(b, "E5") }  // E5: Thms 17/23
func BenchmarkColoring(b *testing.B)          { benchExperiment(b, "E6") }  // E6: Lemmas 15/21
func BenchmarkDoorway(b *testing.B)           { benchExperiment(b, "E7") }  // E7: Lemmas 1–2
func BenchmarkFig6(b *testing.B)              { benchExperiment(b, "E8") }  // E8: Figure 6
func BenchmarkSafetySweep(b *testing.B)       { benchExperiment(b, "E9") }  // E9: safety
func BenchmarkMessageComplexity(b *testing.B) { benchExperiment(b, "E10") } // E10: msgs/CS
func BenchmarkLocalityDividend(b *testing.B)  { benchExperiment(b, "E11") } // E11: local vs global
func BenchmarkFIFOAblation(b *testing.B)      { benchExperiment(b, "E12") } // E12: FIFO ablation

// BenchmarkSimulationThroughput measures simulated events per second for
// each algorithm on a common contended topology — the cost of the
// algorithms themselves on the discrete-event substrate.
func BenchmarkSimulationThroughput(b *testing.B) {
	topo, err := lme.Geometric(32, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range lme.Algorithms() {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			b.ReportAllocs()
			meals := 0
			for i := 0; i < b.N; i++ {
				sim, err := lme.NewSimulation(lme.Config{
					Algorithm: alg,
					Topology:  topo,
					Seed:      uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.RunFor(500 * time.Millisecond); err != nil {
					b.Fatal(err)
				}
				meals += sim.Results().TotalMeals
			}
			b.ReportMetric(float64(meals)/float64(b.N), "meals/run")
		})
	}
}

// BenchmarkResponseTimeByAlgorithm reports the mean static response time
// per algorithm — the directly comparable Table 1 quantity.
func BenchmarkResponseTimeByAlgorithm(b *testing.B) {
	topo, err := lme.Geometric(32, 0.3, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, alg := range lme.Algorithms() {
		alg := alg
		b.Run(string(alg), func(b *testing.B) {
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				sim, err := lme.NewSimulation(lme.Config{
					Algorithm: alg,
					Topology:  topo,
					Seed:      42,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sim.RunFor(2 * time.Second); err != nil {
					b.Fatal(err)
				}
				mean = sim.Results().ResponseMean
			}
			b.ReportMetric(float64(mean.Microseconds()), "µs-mean-response")
		})
	}
}

// BenchmarkCoverFreeFamily measures the Linial palette machinery.
func BenchmarkCoverFreeFamily(b *testing.B) {
	fam, err := coloring.NewFamily(4096, 8)
	if err != nil {
		b.Fatal(err)
	}
	others := []int{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.PickFree(i%4096, others); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyColor measures the deterministic conflict-graph
// colouring step of Algorithm 4.
func BenchmarkGreedyColor(b *testing.B) {
	g := graph.Ring(64)
	set := coloring.NewEdgeSet()
	for _, e := range g.Edges() {
		set.Add(core.NodeID(e[0]), core.NodeID(e[1]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := coloring.GreedyColor(set, core.NodeID(i%64)); c < 0 {
			b.Fatal("node missing")
		}
	}
}
