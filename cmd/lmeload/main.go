// Command lmeload drives the live lock service with one client
// goroutine per node — heavy-tailed think times, lease-based
// Acquire/Release — and reports acquisitions/sec plus sketch-backed
// grant-latency quantiles.
//
// Examples:
//
//	lmeload -alg choy-singh -topo ring -n 10000 -dur 2s     # 10k clients, in-proc channels
//	lmeload -alg alg2 -transport udp -n 64 -dur 2s          # real UDP loopback sockets
//	lmeload -alg alg2 -n 100 -dur 1s -json > load.json      # machine-readable report
//	lmeload -agree -alg alg2                                # live-vs-sim differential
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lme"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/loadgen"
)

// LoadSchema versions the -json document. v2 added the wire-cost fields
// (bytes_per_acq, datagrams_per_acq) and the wire echo.
const LoadSchema = "lme/load/v2"

func algUsage() string {
	names := make([]string, 0, len(lme.Algorithms()))
	for _, a := range lme.Algorithms() {
		names = append(names, string(a))
	}
	return "algorithm: " + strings.Join(names, "|")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmeload:", err)
		os.Exit(1)
	}
}

// report is the lmeload -json document: the run result plus an echo of
// the configuration that produced it.
type report struct {
	Schema    string `json:"schema"`
	Algorithm string `json:"algorithm"`
	Topology  string `json:"topology"`
	Seed      uint64 `json:"seed"`
	DurMS     int64  `json:"duration_ms"`
	// Wire echoes the payload encoding of a UDP run ("codec" or "gob").
	Wire string `json:"wire,omitempty"`
	loadgen.Result
}

func run() error {
	var (
		algName   = flag.String("alg", "choy-singh", algUsage())
		topo      = flag.String("topo", "ring", "topology: ring|line|grid|clique")
		n         = flag.Int("n", 1000, "number of nodes (grid uses the nearest square)")
		transport = flag.String("transport", "channel", "transport: channel|udp")
		wireMode  = flag.String("wire", "codec", "udp payload encoding: codec|gob (gob is the slow oracle baseline)")
		dur       = flag.Duration("dur", 2*time.Second, "load duration (wall clock)")
		hold      = flag.Duration("hold", 0, "lease hold time per acquisition (default live eat time)")
		thinkMin  = flag.Duration("think-min", 0, "bounded-Pareto think scale (default 200µs)")
		thinkMax  = flag.Duration("think-max", 0, "think-time cap (default 50ms)")
		alpha     = flag.Float64("alpha", 0, "Pareto tail index (default 1.5)")
		lease     = flag.Duration("lease", 0, "lease TTL before forced expiry (default 250ms)")
		nu        = flag.Duration("nu", 0, "max message delay ν, channel transport (default 500µs)")
		seed      = flag.Uint64("seed", 1, "random seed")
		agree     = flag.Bool("agree", false, "run the live-vs-sim agreement check instead of a load run")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON on stdout")
	)
	flag.Parse()

	if *agree {
		rep, err := loadgen.Agree(lme.Algorithm(*algName), *seed)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		if !rep.OK() {
			return fmt.Errorf("live runtime disagrees with the simulator")
		}
		return nil
	}

	g, topoName, err := buildGraph(*topo, *n)
	if err != nil {
		return err
	}
	protos, err := lme.NewProtocols(lme.Algorithm(*algName), lme.FromGraph(g))
	if err != nil {
		return err
	}
	if *wireMode != "codec" && *wireMode != "gob" {
		return fmt.Errorf("unknown wire mode %q (want codec or gob)", *wireMode)
	}
	var tr livenet.Transport
	if *transport == "udp" {
		tr, err = livenet.NewUDPTransportOpts(g, livenet.UDPOptions{Gob: *wireMode == "gob"})
		if err != nil {
			return err
		}
	} else if *transport != "channel" {
		if *wireMode == "gob" {
			return fmt.Errorf("-wire gob requires -transport udp")
		}
		return fmt.Errorf("unknown transport %q (want channel or udp)", *transport)
	}

	res, err := loadgen.Run(loadgen.Config{
		Graph:      g,
		Protocols:  protos,
		Transport:  tr,
		Duration:   *dur,
		Hold:       *hold,
		ThinkMin:   *thinkMin,
		ThinkAlpha: *alpha,
		ThinkMax:   *thinkMax,
		Seed:       *seed,
		Live: livenet.Config{
			MaxMessageDelay: *nu,
			LeaseTTL:        *lease,
			Seed:            *seed,
		},
	})
	if err != nil {
		return err
	}

	if *jsonOut {
		wire := ""
		if *transport == "udp" {
			wire = *wireMode
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report{
			Schema:    LoadSchema,
			Algorithm: *algName,
			Topology:  topoName,
			Seed:      *seed,
			DurMS:     dur.Milliseconds(),
			Wire:      wire,
			Result:    res,
		})
	}
	fmt.Println(res)
	if res.Violations != 0 {
		return fmt.Errorf("%d mutual exclusion violations", res.Violations)
	}
	return nil
}

// buildGraph maps the -topo flag to a static communication graph using
// the O(n) constructors (no coordinates needed for a live run).
func buildGraph(topo string, n int) (*graph.Graph, string, error) {
	if n < 2 {
		return nil, "", fmt.Errorf("need at least 2 nodes, got %d", n)
	}
	switch topo {
	case "ring":
		return graph.Ring(n), fmt.Sprintf("ring(%d)", n), nil
	case "line":
		return graph.Line(n), fmt.Sprintf("line(%d)", n), nil
	case "clique":
		return graph.Clique(n), fmt.Sprintf("clique(%d)", n), nil
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Grid(side, side), fmt.Sprintf("grid(%dx%d)", side, side), nil
	default:
		return nil, "", fmt.Errorf("unknown topology %q (want ring|line|grid|clique)", topo)
	}
}
