package main

import "testing"

func TestBuildGraph(t *testing.T) {
	cases := []struct {
		topo     string
		n        int
		wantName string
		wantN    int
	}{
		{"ring", 8, "ring(8)", 8},
		{"line", 5, "line(5)", 5},
		{"clique", 4, "clique(4)", 4},
		{"grid", 10, "grid(3x3)", 9}, // nearest square not exceeding n
		{"grid", 16, "grid(4x4)", 16},
	}
	for _, c := range cases {
		g, name, err := buildGraph(c.topo, c.n)
		if err != nil {
			t.Errorf("buildGraph(%q, %d): %v", c.topo, c.n, err)
			continue
		}
		if name != c.wantName {
			t.Errorf("buildGraph(%q, %d) name = %q, want %q", c.topo, c.n, name, c.wantName)
		}
		if g.N() != c.wantN {
			t.Errorf("buildGraph(%q, %d) nodes = %d, want %d", c.topo, c.n, g.N(), c.wantN)
		}
		if !g.Connected() {
			t.Errorf("buildGraph(%q, %d) built a disconnected graph", c.topo, c.n)
		}
	}
	if _, _, err := buildGraph("torus", 8); err == nil {
		t.Error("buildGraph(torus) accepted an unknown topology")
	}
	if _, _, err := buildGraph("ring", 1); err == nil {
		t.Error("buildGraph(ring, 1) accepted a single node")
	}
}
