package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"lme/internal/loadgen"
	"lme/internal/telemetry"
)

func TestBuildGraph(t *testing.T) {
	cases := []struct {
		topo     string
		n        int
		wantName string
		wantN    int
	}{
		{"ring", 8, "ring(8)", 8},
		{"line", 5, "line(5)", 5},
		{"clique", 4, "clique(4)", 4},
		{"grid", 10, "grid(3x3)", 9}, // nearest square not exceeding n
		{"grid", 16, "grid(4x4)", 16},
	}
	for _, c := range cases {
		g, name, err := buildGraph(c.topo, c.n)
		if err != nil {
			t.Errorf("buildGraph(%q, %d): %v", c.topo, c.n, err)
			continue
		}
		if name != c.wantName {
			t.Errorf("buildGraph(%q, %d) name = %q, want %q", c.topo, c.n, name, c.wantName)
		}
		if g.N() != c.wantN {
			t.Errorf("buildGraph(%q, %d) nodes = %d, want %d", c.topo, c.n, g.N(), c.wantN)
		}
		if !g.Connected() {
			t.Errorf("buildGraph(%q, %d) built a disconnected graph", c.topo, c.n)
		}
	}
	if _, _, err := buildGraph("torus", 8); err == nil {
		t.Error("buildGraph(torus) accepted an unknown topology")
	}
	if _, _, err := buildGraph("ring", 1); err == nil {
		t.Error("buildGraph(ring, 1) accepted a single node")
	}
}

// loadReportMirror pins the lme/load/v2 document: every JSON key the
// report emits must appear here, and decoding with DisallowUnknownFields
// fails the test when a field is added without bumping (or at least
// consciously extending) the schema. Nested documents carry their own
// schemas and are held opaque.
type loadReportMirror struct {
	Schema    string `json:"schema"`
	Algorithm string `json:"algorithm"`
	Topology  string `json:"topology"`
	Seed      uint64 `json:"seed"`
	DurMS     int64  `json:"duration_ms"`
	Wire      string `json:"wire"`

	Nodes     int     `json:"nodes"`
	Clients   int     `json:"clients"`
	WallMS    float64 `json:"wall_ms"`
	Transport string  `json:"transport"`

	Acquisitions uint64  `json:"acquisitions"`
	AcqPerSec    float64 `json:"acq_per_sec"`

	Grant       json.RawMessage `json:"grant_sketch"`
	GrantP50US  int64           `json:"grant_p50_us"`
	GrantP95US  int64           `json:"grant_p95_us"`
	GrantP99US  int64           `json:"grant_p99_us"`
	GrantMaxUS  int64           `json:"grant_max_us"`
	GrantMeanUS int64           `json:"grant_mean_us"`

	ExpiredLeases uint64 `json:"expired_leases"`
	Violations    int    `json:"violations"`

	MessagesSent   uint64  `json:"messages_sent"`
	PerAcquisition float64 `json:"msgs_per_acquisition"`
	NodesServed    int     `json:"nodes_served"`

	BytesPerAcq     float64 `json:"bytes_per_acq"`
	DatagramsPerAcq float64 `json:"datagrams_per_acq"`

	TransportStats json.RawMessage `json:"transport_stats"`
}

// TestLoadSchemaV2Golden round-trips a fully populated report through
// JSON and asserts the schema tag plus the v2 wire-cost fields survive
// with no unknown keys — the cross-version compatibility contract for
// any consumer parsing lmeload -json output.
func TestLoadSchemaV2Golden(t *testing.T) {
	if LoadSchema != "lme/load/v2" {
		t.Fatalf("LoadSchema = %q — update the golden mirror for the new version", LoadSchema)
	}
	rep := report{
		Schema:    LoadSchema,
		Algorithm: "alg2",
		Topology:  "ring(64)",
		Seed:      7,
		DurMS:     2000,
		Wire:      "codec",
		Result: loadgen.Result{
			Nodes:           64,
			Clients:         64,
			WallMS:          2001.5,
			Transport:       "udp",
			Acquisitions:    1200,
			AcqPerSec:       599.6,
			MessagesSent:    9000,
			PerAcquisition:  7.5,
			NodesServed:     64,
			BytesPerAcq:     812.25,
			DatagramsPerAcq: 6.4,
			TransportStats:  &telemetry.TransportStats{Schema: telemetry.Schema, Kind: "udp"},
		},
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var got loadReportMirror
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("lme/load/v2 document has a key the mirror does not pin: %v\n%s", err, blob)
	}
	if got.Schema != "lme/load/v2" {
		t.Errorf("schema %q, want lme/load/v2", got.Schema)
	}
	if got.Wire != "codec" {
		t.Errorf("wire %q, want codec", got.Wire)
	}
	if got.BytesPerAcq != 812.25 || got.DatagramsPerAcq != 6.4 {
		t.Errorf("wire-cost fields bytes_per_acq=%v datagrams_per_acq=%v, want 812.25 / 6.4",
			got.BytesPerAcq, got.DatagramsPerAcq)
	}
	if len(got.TransportStats) == 0 {
		t.Error("transport_stats missing from the document")
	}
}
