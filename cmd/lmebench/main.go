// Command lmebench regenerates every experiment table of DESIGN.md §2 —
// the measured counterpart of the paper's Table 1 and of the theorems'
// predicted scaling — and prints them in the format recorded in
// EXPERIMENTS.md.
//
// Examples:
//
//	lmebench                        # all experiments at full quality
//	lmebench -exp e3,e6             # a subset
//	lmebench -quick                 # fast pass (the configuration unit tests use)
//	lmebench -quick -json           # machine-readable results for benchmark diffing
//	lmebench -replicas 5 -parallel 8 # 5 seeded runs per cell on 8 workers
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"lme/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmebench:", err)
		os.Exit(1)
	}
}

// BenchSchema identifies the lmebench -json layout; bump on breaking
// changes. v2 adds replicas, cell_stats, parallel and wall-clock fields.
const BenchSchema = "lme/bench/v2"

// benchResult is one experiment's slice of the -json document: the table
// (rows carry the measured trajectories, e.g. E10's msg/meal column) plus
// the cost of producing it.
type benchResult struct {
	harness.Table
	ElapsedMS    float64 `json:"elapsed_ms"`
	SchedEvents  uint64  `json:"sched_events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchDoc is the lmebench -json document.
type benchDoc struct {
	Schema   string        `json:"schema"`
	Quality  string        `json:"quality"`
	Parallel int           `json:"parallel"`
	Replicas int           `json:"replicas"`
	Results  []benchResult `json:"results"`
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment IDs (e.g. e1,e3); empty = all")
		quick    = flag.Bool("quick", false, "reduced sweep sizes and horizons")
		jsonOut  = flag.Bool("json", false, "emit results as a single JSON document instead of text tables")
		parallel = flag.Int("parallel", 0, "worker count for the fleet pool; 0 = all cores")
		replicas = flag.Int("replicas", 1, "independent seeded runs per measurement cell")
	)
	flag.Parse()
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1 (got %d)", *replicas)
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	quality := harness.Full
	qualityName := "full"
	if *quick {
		quality = harness.Quick
		qualityName = "quick"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	engine := harness.Engine{Workers: *parallel, Replicas: *replicas, Context: ctx}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	doc := benchDoc{
		Schema: BenchSchema, Quality: qualityName,
		Parallel: workers, Replicas: *replicas,
		Results: []benchResult{},
	}
	ran := 0
	for _, exp := range harness.Experiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		eventsBefore := harness.EventsProcessed()
		start := time.Now()
		tbl, err := engine.Run(exp, quality)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		elapsed := time.Since(start)
		events := harness.EventsProcessed() - eventsBefore
		ran++
		if *jsonOut {
			res := benchResult{
				Table:       *tbl,
				ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
				SchedEvents: events,
			}
			if elapsed > 0 {
				res.EventsPerSec = float64(events) / elapsed.Seconds()
			}
			doc.Results = append(doc.Results, res)
			continue
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %v, %d events)\n\n", exp.ID, elapsed.Round(time.Millisecond), events)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}
