// Command lmebench regenerates every experiment table of DESIGN.md §2 —
// the measured counterpart of the paper's Table 1 and of the theorems'
// predicted scaling — and prints them in the format recorded in
// EXPERIMENTS.md.
//
// Examples:
//
//	lmebench              # all experiments at full quality
//	lmebench -exp e3,e6   # a subset
//	lmebench -quick       # fast pass (the configuration unit tests use)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lme/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmebench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment IDs (e.g. e1,e3); empty = all")
		quick   = flag.Bool("quick", false, "reduced sweep sizes and horizons")
	)
	flag.Parse()

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	quality := harness.Full
	if *quick {
		quality = harness.Quick
	}
	ran := 0
	for _, exp := range harness.Experiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		start := time.Now()
		tbl, err := exp.Run(quality)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	return nil
}
