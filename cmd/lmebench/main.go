// Command lmebench regenerates every experiment table of DESIGN.md §2 —
// the measured counterpart of the paper's Table 1 and of the theorems'
// predicted scaling — and prints them in the format recorded in
// EXPERIMENTS.md.
//
// Examples:
//
//	lmebench                        # all experiments at full quality
//	lmebench -exp e3,e6             # a subset
//	lmebench -quick                 # fast pass (the configuration unit tests use)
//	lmebench -quick -json           # machine-readable results for benchmark diffing
//	lmebench -replicas 5 -parallel 8 # 5 seeded runs per cell on 8 workers
//	lmebench -micro -json           # substrate microbenchmarks (BENCH_micro.json)
//	lmebench -scale -json           # large-n sweep on the sharded engine (lme/scale/v1)
//	lmebench -quick -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lme/internal/fleet"
	"lme/internal/harness"
	"lme/internal/microbench"
	"lme/internal/progress"
	"lme/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmebench:", err)
		os.Exit(1)
	}
}

// BenchSchema identifies the lmebench -json layout; bump on breaking
// changes. v2 adds replicas, cell_stats, parallel and wall-clock fields.
const BenchSchema = "lme/bench/v2"

// benchResult is one experiment's slice of the -json document: the table
// (rows carry the measured trajectories, e.g. E10's msg/meal column) plus
// the cost of producing it. The trace-loss counters are per-experiment
// deltas and appear only when events were actually lost.
type benchResult struct {
	harness.Table
	ElapsedMS       float64 `json:"elapsed_ms"`
	SchedEvents     uint64  `json:"sched_events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	RingOverwritten uint64  `json:"ring_overwritten,omitempty"`
	SinkDropped     uint64  `json:"sink_dropped,omitempty"`
}

// benchDoc is the lmebench -json document.
type benchDoc struct {
	Schema   string        `json:"schema"`
	Quality  string        `json:"quality"`
	Parallel int           `json:"parallel"`
	Replicas int           `json:"replicas"`
	Results  []benchResult `json:"results"`
}

func run() error {
	var (
		expFlag    = flag.String("exp", "", "comma-separated experiment IDs (e.g. e1,e3); empty = all")
		quick      = flag.Bool("quick", false, "reduced sweep sizes and horizons")
		jsonOut    = flag.Bool("json", false, "emit results as a single JSON document instead of text tables")
		parallel   = flag.Int("parallel", 0, "worker count for the fleet pool; 0 = all cores")
		replicas   = flag.Int("replicas", 1, "independent seeded runs per measurement cell")
		micro      = flag.Bool("micro", false, "run the substrate microbenchmarks instead of the experiments")
		scale      = flag.Bool("scale", false, "run the large-n scale sweep on the sharded engine instead of the experiments")
		scaleNs    = flag.String("scale-n", "1000,10000,100000", "comma-separated node counts for -scale")
		scaleHoriz = flag.Duration("scale-horizon", 150*time.Millisecond, "virtual-time span per -scale run")
		scaleSeed  = flag.Uint64("scale-seed", 1, "seed for -scale runs")
		scaleTiles = flag.Int("scale-tiles", 0, "tile grid side for -scale (0 = auto per n, 1 = single-heap reference)")
		scaleWork  = flag.Int("scale-workers", 0, "worker goroutines for -scale (0 = GOMAXPROCS)")
		scaleTel   = flag.Bool("scale-telemetry", true, "attach per-tile engine telemetry to -scale results (out-of-band; result_hash is unaffected)")
		check      = flag.Bool("check", false, "with -micro: compare against the committed baseline and fail on large regressions")
		baseline   = flag.String("baseline", "BENCH_micro.json", "baseline file for -micro -check")
		checkTol   = flag.Float64("check-tol", 2.0, "regression factor tolerated by -micro -check (ns/op may grow up to this multiple)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		progFlag   = flag.Bool("progress", false, "print a live heartbeat (jobs done, events/s, heap, trace loss) to stderr")
		progOut    = flag.String("progress-out", "", "write lme/progress/v1 heartbeat records as JSONL to this file")
		progEach   = flag.Duration("progress-every", 2*time.Second, "wall-clock interval between heartbeats")
	)
	flag.Parse()
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1 (got %d)", *replicas)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lmebench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lmebench: -memprofile:", err)
			}
		}()
	}

	if *micro {
		var base string
		if *check {
			base = *baseline
		}
		return runMicro(*jsonOut, base, *checkTol)
	}
	if *check {
		return fmt.Errorf("-check requires -micro")
	}
	if *scale {
		var ns []int
		for _, s := range strings.Split(*scaleNs, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 2 {
				return fmt.Errorf("-scale-n: bad node count %q", s)
			}
			ns = append(ns, n)
		}
		// Virtual time is in µs; the flag takes a wall-style duration for
		// readability (150ms → 150000 virtual µs).
		horizon := sim.Time(scaleHoriz.Microseconds())
		var logw io.Writer
		if !*jsonOut {
			logw = os.Stderr
		}
		out := io.Writer(os.Stdout)
		if !*jsonOut {
			out = io.Discard
		}
		return harness.RunScaleSweep(ns, *scaleSeed, horizon, *scaleTiles, *scaleWork, *scaleTel, out, logw)
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	quality := harness.Full
	qualityName := "full"
	if *quick {
		quality = harness.Quick
		qualityName = "quick"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	engine := harness.Engine{Workers: *parallel, Replicas: *replicas, Context: ctx}

	// The fleet heartbeat: a wall-clock ticker goroutine owns the
	// reporter (the sources it samples — events processed, trace loss,
	// the jobs counter — are all atomics, so worker goroutines never
	// touch the reporter itself).
	var stopProgress func() error
	if *progFlag || *progOut != "" {
		cfg := progress.Config{Interval: *progEach, Label: "bench"}
		if *progFlag {
			cfg.Human = os.Stderr
		}
		closeFile := func() error { return nil }
		if *progOut != "" {
			f, err := os.Create(*progOut)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			cfg.JSONL = w
			closeFile = func() error {
				if err := w.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		}
		var jobsDone atomic.Int64
		engine.OnResult = func(fleet.Result) { jobsDone.Add(1) }
		rep := progress.New(cfg, progress.Sources{
			Events: harness.EventsProcessed,
			Loss:   harness.TraceLoss,
			Jobs:   func() (done, total int) { return int(jobsDone.Load()), 0 },
		})
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(*progEach)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					rep.Tick()
				case <-done:
					return
				}
			}
		}()
		stopProgress = func() error {
			close(done)
			wg.Wait()
			rep.Final()
			err := rep.Err()
			if e := closeFile(); err == nil {
				err = e
			}
			return err
		}
		defer func() {
			if stopProgress != nil {
				if err := stopProgress(); err != nil {
					fmt.Fprintln(os.Stderr, "lmebench: warning: progress stream:", err)
				}
			}
		}()
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	doc := benchDoc{
		Schema: BenchSchema, Quality: qualityName,
		Parallel: workers, Replicas: *replicas,
		Results: []benchResult{},
	}
	ran := 0
	for _, exp := range harness.Experiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		eventsBefore := harness.EventsProcessed()
		overBefore, dropBefore := harness.TraceLoss()
		start := time.Now()
		tbl, err := engine.Run(exp, quality)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		elapsed := time.Since(start)
		events := harness.EventsProcessed() - eventsBefore
		overAfter, dropAfter := harness.TraceLoss()
		ran++
		if *jsonOut {
			res := benchResult{
				Table:           *tbl,
				ElapsedMS:       float64(elapsed.Microseconds()) / 1000,
				SchedEvents:     events,
				RingOverwritten: overAfter - overBefore,
				SinkDropped:     dropAfter - dropBefore,
			}
			if elapsed > 0 {
				res.EventsPerSec = float64(events) / elapsed.Seconds()
			}
			doc.Results = append(doc.Results, res)
			continue
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %v, %d events)\n\n", exp.ID, elapsed.Round(time.Millisecond), events)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

// MicroSchema identifies the lmebench -micro -json layout; bump on
// breaking changes.
const MicroSchema = "lme/microbench/v1"

// microResult is one microbenchmark's measurement, mirroring the columns
// `go test -bench` prints.
type microResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Extras carries custom b.ReportMetric units — the scale sweeps
	// publish "events/s" (engine throughput) and "heapB/node" here.
	// Informational only: -check compares ns/op and allocs/op.
	Extras map[string]float64 `json:"extras,omitempty"`
}

// microDoc is the lmebench -micro -json document (the layout of
// BENCH_micro.json). ObservedVsDark is the EndToEndObserved/EndToEndDark
// ns/op ratio — the end-to-end price of full observability — present
// whenever both benchmarks ran.
type microDoc struct {
	Schema         string        `json:"schema"`
	Results        []microResult `json:"results"`
	ObservedVsDark float64       `json:"observed_vs_dark,omitempty"`
	// TelemetryVsDark is TelemetryFold's interleaved-slab overhead ratio
	// (telemetry-on ns / telemetry-off ns over alternating 5ms slabs of
	// identical worlds) — the whole price of engine telemetry on the
	// sharded window loop. Unlike ObservedVsDark it is load-bearing:
	// -check fails when it exceeds telemetryOverheadBudget.
	TelemetryVsDark float64 `json:"telemetry_vs_dark,omitempty"`
	// CodecVsGob is the worse of WireEncode/WireEncodeGob and
	// WireDecode/WireDecodeGob ns/op — the hand-written wire codecs
	// against the retained gob oracle, both measured in this process.
	// Load-bearing under -check: the fast path must stay at or below
	// codecVsGobBudget of the oracle's cost, or it has stopped being a
	// fast path.
	CodecVsGob float64 `json:"codec_vs_gob,omitempty"`
}

// telemetryOverheadBudget caps TelemetryVsDark under -check: telemetry
// collection may cost at most 2% of the sharded window loop. The two
// benchmarks run identical worlds back to back in one process, so the
// ratio is far less noisy than cross-run ns/op comparisons.
const telemetryOverheadBudget = 1.02

// codecVsGobBudget caps CodecVsGob under -check: the binary codecs must
// run in at most half the gob oracle's ns/op on both directions. The
// pair runs back to back over identical message samples in one process,
// so the ratio is robust to machine speed.
const codecVsGobBudget = 0.5

// runMicro runs the substrate microbenchmarks of internal/microbench via
// testing.Benchmark — the same bodies `go test -bench` runs in
// internal/sim and internal/manet — and reports ns/op and allocs/op.
// When baseline names a committed BENCH_micro.json, the fresh numbers
// are compared against its results and large regressions fail the run.
func runMicro(jsonOut bool, baseline string, tol float64) error {
	doc := microDoc{Schema: MicroSchema, Results: []microResult{}}
	for _, bench := range microbench.All() {
		r := testing.Benchmark(bench.Fn)
		res := microResult{
			Name:        bench.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Extras = make(map[string]float64, len(r.Extra))
			for unit, v := range r.Extra {
				res.Extras[unit] = v
			}
		}
		doc.Results = append(doc.Results, res)
		if !jsonOut {
			fmt.Printf("%-18s %12d ops %12.1f ns/op %8d B/op %6d allocs/op\n",
				res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
			if ev, ok := res.Extras["events/s"]; ok {
				fmt.Printf("%-18s %12.0f events/s %10.0f heapB/node\n",
					"", ev, res.Extras["heapB/node"])
			}
		}
	}
	var dark, observed, overhead float64
	var encC, encG, decC, decG float64
	for _, r := range doc.Results {
		switch r.Name {
		case "EndToEndDark":
			dark = r.NsPerOp
		case "EndToEndObserved":
			observed = r.NsPerOp
		case "TelemetryFold":
			overhead = r.Extras["overhead_x"]
		case "WireEncode":
			encC = r.NsPerOp
		case "WireEncodeGob":
			encG = r.NsPerOp
		case "WireDecode":
			decC = r.NsPerOp
		case "WireDecodeGob":
			decG = r.NsPerOp
		}
	}
	if dark > 0 && observed > 0 {
		doc.ObservedVsDark = observed / dark
		if !jsonOut {
			fmt.Printf("observed-vs-dark   %.2fx (dark %.1f ns/op, observed %.1f ns/op)\n",
				doc.ObservedVsDark, dark, observed)
		}
	}
	if overhead > 0 {
		doc.TelemetryVsDark = overhead
		if !jsonOut {
			fmt.Printf("telemetry-vs-dark  %.3fx (interleaved slabs, budget %.2fx)\n",
				doc.TelemetryVsDark, telemetryOverheadBudget)
		}
	}
	if encC > 0 && encG > 0 && decC > 0 && decG > 0 {
		doc.CodecVsGob = max(encC/encG, decC/decG)
		if !jsonOut {
			fmt.Printf("codec-vs-gob       %.3fx (encode %.3fx, decode %.3fx, budget %.2fx)\n",
				doc.CodecVsGob, encC/encG, decC/decG, codecVsGobBudget)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	}
	if baseline != "" {
		return checkMicro(doc, baseline, tol)
	}
	return nil
}

// checkMicro compares fresh microbenchmark numbers against the committed
// baseline's results array. ns/op may grow by the tolerance factor before
// the check fails — microbenchmarks on shared CI machines are noisy, so
// this is a smoke detector for order-of-magnitude regressions, not a
// tachometer. allocs/op is compared near-exactly (one alloc of slack,
// plus 2% for benchmarks whose baseline already allocates heavily —
// live-cluster round trips schedule goroutines and timers, so their
// counts wobble): allocation counts on the lean hot paths are
// deterministic, and a new allocation there is precisely what the
// encoding fast path exists to prevent.
func checkMicro(doc microDoc, baseline string, tol float64) error {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("-check: %w", err)
	}
	var base microDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("-check: parse %s: %w", baseline, err)
	}
	want := make(map[string]microResult, len(base.Results))
	for _, r := range base.Results {
		want[r.Name] = r
	}
	var regressions []string
	for _, r := range doc.Results {
		b, ok := want[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "check: %-18s no baseline (new benchmark), skipped\n", r.Name)
			continue
		}
		status := "ok"
		allocSlack := b.AllocsPerOp + 1
		if wobble := b.AllocsPerOp + b.AllocsPerOp/50; wobble > allocSlack {
			allocSlack = wobble
		}
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*tol {
			status = fmt.Sprintf("REGRESSION: %.1f ns/op vs baseline %.1f (>%.1fx)", r.NsPerOp, b.NsPerOp, tol)
		} else if r.AllocsPerOp > allocSlack {
			status = fmt.Sprintf("REGRESSION: %d allocs/op vs baseline %d", r.AllocsPerOp, b.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "check: %-18s %s\n", r.Name, status)
		if status != "ok" {
			regressions = append(regressions, r.Name)
		}
	}
	if doc.TelemetryVsDark > 0 {
		status := "ok"
		if doc.TelemetryVsDark > telemetryOverheadBudget {
			status = fmt.Sprintf("REGRESSION: %.3fx vs the %.2fx budget", doc.TelemetryVsDark, telemetryOverheadBudget)
			regressions = append(regressions, "telemetry-vs-dark")
		}
		fmt.Fprintf(os.Stderr, "check: %-18s %s (%.3fx)\n", "telemetry-vs-dark", status, doc.TelemetryVsDark)
	}
	if doc.CodecVsGob > 0 {
		status := "ok"
		if doc.CodecVsGob > codecVsGobBudget {
			status = fmt.Sprintf("REGRESSION: %.3fx vs the %.2fx budget", doc.CodecVsGob, codecVsGobBudget)
			regressions = append(regressions, "codec-vs-gob")
		}
		fmt.Fprintf(os.Stderr, "check: %-18s %s (%.3fx)\n", "codec-vs-gob", status, doc.CodecVsGob)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("-check: %d benchmark(s) regressed vs %s: %s",
			len(regressions), baseline, strings.Join(regressions, ", "))
	}
	return nil
}
