package main

// The lmetop view: a live, refreshing rendering of an lme/progress/v1
// heartbeat stream carrying lme/telemetry/v1 sections — a tile-grid heat
// map of the sharded engine (events/s per tile since the previous
// heartbeat) plus the window/barrier aggregates and, when present, the
// transport's wire counters. Point it at a -progress-out file while the
// run executes:
//
//	lmesim -alg alg1-greedy -topo grid -n 10000 -tiles auto \
//	    -telemetry -progress-out progress.jsonl -dur 60s &
//	lmetrace -top progress.jsonl
//
// On a terminal every heartbeat repaints the screen; on a pipe each
// heartbeat prints its one-liner and the full frame is rendered once,
// for the final record. The view follows the file until the final record
// arrives (or EOF on a non-following input).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"lme/internal/metrics"
	"lme/internal/progress"
)

// heatShades maps a tile's load fraction to a glyph, blank → densest.
const heatShades = " .:-=+*#%@"

// topRun drives the lmetop view over a heartbeat stream. follow polls in
// for appended lines until a final record shows up — the live case; when
// false the stream is drained once (stdin, or a completed file).
func topRun(in io.Reader, out io.Writer, follow bool, every time.Duration, tty bool) error {
	reader := bufio.NewReader(in)
	var (
		partial []byte
		prev    *progress.Record
		last    *progress.Record
		lastEng *progress.Record // most recent record carrying an engine section
		n       int
		skipped int
	)
	render := func(rec progress.Record) {
		n++
		if rec.Engine != nil {
			if lastEng != nil {
				cp := *lastEng
				prev = &cp
			}
			lastEng = &rec
		}
		last = &rec
		if tty {
			fmt.Fprint(out, "\x1b[H\x1b[2J")
			fmt.Fprint(out, renderTopFrame(rec, prev))
		} else {
			fmt.Fprintln(out, rec.HumanLine())
		}
	}
	for {
		chunk, err := reader.ReadBytes('\n')
		partial = append(partial, chunk...)
		if err == io.EOF {
			if follow && (last == nil || !last.Final) {
				time.Sleep(every)
				continue
			}
		} else if err != nil {
			return err
		}
		atEOF := err == io.EOF
		if !atEOF {
			line := bytes.TrimSpace(partial)
			partial = partial[:0]
			if len(line) > 0 {
				var rec progress.Record
				if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil || rec.Schema != progress.Schema {
					// A mixed stream (trace events, other schemas) is
					// fine — count what we passed over.
					skipped++
				} else {
					render(rec)
					if rec.Final && follow {
						break
					}
				}
			}
			continue
		}
		break
	}
	if n == 0 {
		return fmt.Errorf("no progress records (skipped %d non-progress lines)", skipped)
	}
	if !tty {
		// Pipe mode: one full frame, for the last heartbeat seen.
		fmt.Fprintln(out)
		fmt.Fprint(out, renderTopFrame(*last, prev))
	}
	if skipped > 0 {
		fmt.Fprintf(out, "skipped %d non-progress lines\n", skipped)
	}
	return nil
}

// renderTopFrame renders one heartbeat as the full lmetop frame: header
// line, engine aggregates, the tile heat grid, and the transport wire
// counters. prev, when non-nil, supplies the previous engine sample so
// the grid shows rates over the interval instead of cumulative counts.
func renderTopFrame(rec progress.Record, prev *progress.Record) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "lmetop")
	if rec.Label != "" {
		fmt.Fprintf(&b, " %s", rec.Label)
	}
	fmt.Fprintf(&b, "  wall=%.1fs", rec.WallMS/1000)
	if rec.SimUS > 0 {
		fmt.Fprintf(&b, " sim=%.2fs", float64(rec.SimUS)/1e6)
	}
	fmt.Fprintf(&b, "  %s ev/s  heap=%s", topCount(rec.EventsPerSec), topBytes(rec.HeapBytes))
	if rec.Final {
		fmt.Fprint(&b, "  [final]")
	}
	fmt.Fprintln(&b)

	if e := rec.Engine; e != nil {
		fmt.Fprintf(&b, "engine  %d×%d tiles  %d workers  windows=%d", e.Tiles, e.Tiles, e.Workers, e.Windows)
		if e.Imbalance > 0 {
			fmt.Fprintf(&b, "  imbalance=%.2f", e.Imbalance)
		}
		if e.StealAttempts > 0 {
			fmt.Fprintf(&b, "  steals=%d/%d", e.StealHits, e.StealAttempts)
		}
		if e.CrossTileMsgs > 0 {
			fmt.Fprintf(&b, "  cross_tile=%d", e.CrossTileMsgs)
		}
		fmt.Fprintln(&b)
		if e.WindowSpanUS.Count > 0 || e.BarrierStallNS.Count > 0 {
			fmt.Fprintf(&b, "        window span p50=%sµs", sketchQ(e.WindowSpanUS, 0.50))
			if e.BarrierStallNS.Count > 0 {
				fmt.Fprintf(&b, "  barrier stall p50=%sns p99=%sns",
					sketchQ(e.BarrierStallNS, 0.50), sketchQ(e.BarrierStallNS, 0.99))
			}
			fmt.Fprintln(&b)
		}
		b.WriteString(renderHeatGrid(rec, prev))
	}

	if ts := rec.Transport; ts != nil {
		fmt.Fprintf(&b, "wire    %s  links=%d  frames=%d/%d  retx=%d dup=%d reorder_hw=%d overflow=%d\n",
			ts.Kind, ts.Links, ts.FramesSent, ts.FramesDelivered,
			ts.Retransmits, ts.DupDrops, ts.ReorderDepthHW, ts.ReorderOverflow)
		if ts.DatagramsSent > 0 {
			fmt.Fprintf(&b, "        dgrams=%d (acks %d standalone, %d piggybacked)  frames/dgram=%.1f  bytes=%d\n",
				ts.DatagramsSent, ts.AckDatagrams, ts.AcksPiggybacked,
				ts.FramesPerDatagram, ts.WireBytes)
		}
		if ts.AckRTTUS.Count > 0 {
			fmt.Fprintf(&b, "        ack rtt p50=%sµs p99=%sµs\n",
				sketchQ(ts.AckRTTUS, 0.50), sketchQ(ts.AckRTTUS, 0.99))
		}
	}
	return b.String()
}

// renderHeatGrid draws the g×g tile grid, one glyph per tile shaded by
// its share of the hottest tile's events over the interval.
func renderHeatGrid(rec progress.Record, prev *progress.Record) string {
	e := rec.Engine
	g := e.Tiles
	if g < 1 || len(e.PerTile) != g*g {
		return ""
	}
	// Per-tile activity: delta vs the previous engine sample when its
	// shape matches, cumulative otherwise.
	load := make([]float64, g*g)
	cumulative := true
	if prev != nil && prev.Engine != nil && len(prev.Engine.PerTile) == g*g {
		cumulative = false
		for i := range load {
			load[i] = float64(e.PerTile[i].Events) - float64(prev.Engine.PerTile[i].Events)
		}
	} else {
		for i := range load {
			load[i] = float64(e.PerTile[i].Events)
		}
	}
	maxLoad := 0.0
	for _, v := range load {
		if v > maxLoad {
			maxLoad = v
		}
	}
	var b bytes.Buffer
	unit := "events this interval"
	if cumulative {
		unit = "events total"
	}
	fmt.Fprintf(&b, "heat    %s per tile, max=%.0f  (%q → %q)\n", unit, maxLoad, heatShades[0], heatShades[len(heatShades)-1])
	shades := []rune(heatShades)
	for y := 0; y < g; y++ {
		b.WriteString("        ")
		for x := 0; x < g; x++ {
			v := load[y*g+x]
			idx := 0
			if maxLoad > 0 && v > 0 {
				idx = 1 + int(v/maxLoad*float64(len(shades)-2)+0.5)
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sketchQ renders a sketch snapshot's quantile as a whole number.
func sketchQ(snap metrics.SketchSnapshot, q float64) string {
	if snap.Count == 0 {
		return "0"
	}
	return fmt.Sprintf("%.0f", metrics.FromSnapshot(snap).QuantileFloat(q))
}

// topCount renders a rate with an SI suffix (1.25M, 430k, 812).
func topCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// topBytes renders a byte count with a binary suffix.
func topBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// isTerminal reports whether f is a character device (a live terminal),
// which selects the repaint-in-place rendering.
func isTerminal(f *os.File) bool {
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}
