package main

import (
	"testing"

	"lme/internal/trace"
)

func TestParseNodes(t *testing.T) {
	if m, err := parseNodes(""); err != nil || m != nil {
		t.Fatalf("empty list: %v, %v", m, err)
	}
	m, err := parseNodes("3, 7,12")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || !m[3] || !m[7] || !m[12] {
		t.Fatalf("parsed = %v", m)
	}
	// Stray commas are tolerated; a list of only separators is no filter.
	if m, err := parseNodes(",,"); err != nil || m != nil {
		t.Fatalf("separator-only list: %v, %v", m, err)
	}
	for _, bad := range []string{"x", "3,x", "-1", "3,-2", "1.5"} {
		if _, err := parseNodes(bad); err == nil {
			t.Fatalf("parseNodes(%q) accepted", bad)
		}
	}
}

func TestParseKinds(t *testing.T) {
	if m, err := parseKinds(""); err != nil || m != nil {
		t.Fatalf("empty list: %v, %v", m, err)
	}
	m, err := parseKinds("send, deliver,doorway")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || !m[trace.KindSend] || !m[trace.KindDeliver] || !m[trace.KindDoorway] {
		t.Fatalf("parsed = %v", m)
	}
	// Every schema kind parses by its stable name.
	for _, k := range trace.Kinds() {
		if _, err := parseKinds(k.String()); err != nil {
			t.Fatalf("kind %v rejected: %v", k, err)
		}
	}
	for _, bad := range []string{"sending", "send,bogus", "SEND"} {
		if _, err := parseKinds(bad); err == nil {
			t.Fatalf("parseKinds(%q) accepted", bad)
		}
	}
}
