package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"lme/internal/metrics"
	"lme/internal/progress"
	"lme/internal/telemetry"
)

// topRecord builds a heartbeat carrying an engine section for a g×g grid
// with the given per-tile cumulative event counts.
func topRecord(g int, perTile []uint64, final bool) progress.Record {
	empty := metrics.NewSketch().Snapshot()
	e := &telemetry.EngineStats{
		Schema: telemetry.Schema, Tiles: g, Workers: 2,
		Windows: 12, StealAttempts: 40, StealHits: 30, CrossTileMsgs: 99,
		Imbalance:    1.50,
		WindowSpanUS: empty, BarrierStallNS: empty,
	}
	var total uint64
	for i, ev := range perTile {
		e.PerTile = append(e.PerTile, telemetry.TileStats{Tile: int32(i), Events: ev})
		total += ev
	}
	e.Events = total
	return progress.Record{
		Schema: progress.Schema, Label: "topo", WallMS: 1500, SimUS: 2_000_000,
		Events: total, EventsPerSec: 250_000, HeapBytes: 64 << 20,
		Engine: e, Final: final,
	}
}

func TestRenderTopFrameHeatGrid(t *testing.T) {
	rec := topRecord(2, []uint64{0, 10, 5, 10}, true)
	frame := renderTopFrame(rec, nil)

	for _, want := range []string{
		"lmetop topo", "[final]",
		"engine  2×2 tiles  2 workers  windows=12",
		"imbalance=1.50", "steals=30/40", "cross_tile=99",
		"events total per tile, max=10",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// Row-major grid: tile 0 idle (blank), tiles 1 and 3 hottest (@),
	// tile 2 mid-shade.
	lines := strings.Split(frame, "\n")
	var grid []string
	for i, ln := range lines {
		if strings.Contains(ln, "heat") {
			grid = lines[i+1 : i+3]
			break
		}
	}
	if len(grid) != 2 {
		t.Fatalf("no 2-row heat grid in frame:\n%s", frame)
	}
	row0, row1 := strings.TrimPrefix(grid[0], "        "), strings.TrimPrefix(grid[1], "        ")
	if row0 != " @" {
		t.Errorf("row 0 = %q, want %q", row0, " @")
	}
	if !strings.HasSuffix(row1, "@") || strings.HasPrefix(row1, " ") || strings.HasPrefix(row1, "@") {
		t.Errorf("row 1 = %q, want mid-shade then @", row1)
	}
}

func TestRenderTopFrameDeltas(t *testing.T) {
	prev := topRecord(2, []uint64{0, 10, 5, 10}, false)
	rec := topRecord(2, []uint64{0, 10, 25, 10}, true)
	frame := renderTopFrame(rec, &prev)
	// Only tile 2 advanced (by 20): interval mode, max=20, tile 2 is the
	// sole hot cell.
	if !strings.Contains(frame, "events this interval per tile, max=20") {
		t.Errorf("frame not in interval mode:\n%s", frame)
	}
	lines := strings.Split(frame, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, "heat") {
			row0 := strings.TrimPrefix(lines[i+1], "        ")
			row1 := strings.TrimPrefix(lines[i+2], "        ")
			if row0 != "  " {
				t.Errorf("row 0 = %q, want all idle", row0)
			}
			if row1 != "@ " {
				t.Errorf("row 1 = %q, want \"@ \"", row1)
			}
			return
		}
	}
	t.Fatalf("no heat grid in frame:\n%s", frame)
}

func TestRenderTopFrameTransport(t *testing.T) {
	rtt := metrics.NewSketch()
	rtt.ObserveFloat(480)
	rtt.ObserveFloat(520)
	rec := progress.Record{
		Schema: progress.Schema, WallMS: 100,
		Transport: &telemetry.TransportStats{
			Schema: telemetry.Schema, Kind: "udp", Links: 6,
			FramesSent: 1000, FramesDelivered: 990, Retransmits: 12,
			DupDrops: 3, ReorderDepthHW: 7, ReorderOverflow: 2,
			AckRTTUS: rtt.Snapshot(),
		},
	}
	frame := renderTopFrame(rec, nil)
	if !strings.Contains(frame, "wire    udp  links=6  frames=1000/990  retx=12 dup=3 reorder_hw=7 overflow=2") {
		t.Errorf("frame missing wire counters:\n%s", frame)
	}
	if !strings.Contains(frame, "ack rtt p50=") {
		t.Errorf("frame missing rtt line:\n%s", frame)
	}
	// No datagram telemetry (a pre-coalescing record): no dgrams line.
	if strings.Contains(frame, "dgrams=") {
		t.Errorf("dgrams line rendered without datagram counters:\n%s", frame)
	}

	// Datagram counters present: the coalescing line joins the block.
	rec.Transport.DatagramsSent = 180
	rec.Transport.AckDatagrams = 30
	rec.Transport.AcksPiggybacked = 140
	rec.Transport.FramesPerDatagram = 6.7
	rec.Transport.WireBytes = 52_000
	frame = renderTopFrame(rec, nil)
	if !strings.Contains(frame, "dgrams=180 (acks 30 standalone, 140 piggybacked)  frames/dgram=6.7  bytes=52000") {
		t.Errorf("frame missing datagram coalescing line:\n%s", frame)
	}
}

// TestTopRunMixedStream feeds topRun a pipe-mode stream that interleaves
// trace-event lines with heartbeats: non-progress lines are counted and
// skipped, every heartbeat prints its one-liner, and the final frame is
// rendered once from the last record.
func TestTopRunMixedStream(t *testing.T) {
	var stream bytes.Buffer
	enc := json.NewEncoder(&stream)
	stream.WriteString(`{"schema":"lme/trace/v1","kind":"send","node":3}` + "\n")
	if err := enc.Encode(topRecord(2, []uint64{1, 2, 3, 4}, false)); err != nil {
		t.Fatal(err)
	}
	stream.WriteString("not json at all\n")
	if err := enc.Encode(topRecord(2, []uint64{2, 4, 6, 8}, true)); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := topRun(&stream, &out, false, time.Millisecond, false); err != nil {
		t.Fatalf("topRun: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"skipped 2 non-progress lines",
		"lmetop topo",
		"heat",
		"engine  2×2 tiles",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Two heartbeats → two one-liners before the frame.
	if n := strings.Count(got, "progress topo"); n != 2 {
		t.Errorf("want 2 human one-liners, got %d:\n%s", n, got)
	}
}

func TestTopRunEmptyStream(t *testing.T) {
	var out bytes.Buffer
	err := topRun(strings.NewReader("{\"schema\":\"lme/trace/v1\"}\n"), &out, false, time.Millisecond, false)
	if err == nil || !strings.Contains(err.Error(), "no progress records") {
		t.Fatalf("want no-records error, got %v", err)
	}
}

// TestProgressViewMixedStream pins the satellite fix: the -progress
// renderer skips and counts non-progress lines in a mixed stream instead
// of hard-erroring, and renders the telemetry sections of the final
// record when present.
func TestProgressViewMixedStream(t *testing.T) {
	var stream bytes.Buffer
	enc := json.NewEncoder(&stream)
	stream.WriteString(`{"schema":"lme/trace/v1","kind":"deliver","node":1}` + "\n")
	if err := enc.Encode(topRecord(2, []uint64{1, 2, 3, 4}, false)); err != nil {
		t.Fatal(err)
	}
	stream.WriteString(`{"schema":"lme/span/v1"}` + "\n")
	rec := topRecord(2, []uint64{5, 6, 7, 8}, true)
	rtt := metrics.NewSketch()
	rtt.ObserveFloat(500)
	rec.Transport = &telemetry.TransportStats{
		Schema: telemetry.Schema, Kind: "udp", Links: 4,
		FramesSent: 50, FramesDelivered: 49, ReorderOverflow: 1,
		AckRTTUS: rtt.Snapshot(),
	}
	if err := enc.Encode(rec); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := progressView(&stream, &out); err != nil {
		t.Fatalf("progressView: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"records 2",
		"skipped 2 non-progress lines",
		"engine: 2×2 tiles, 2 workers, 12 windows",
		"steals 30/40",
		"wire: udp, 4 links, frames 50/49",
		"overflow 1",
		"ack rtt p50=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestProgressViewOldRecords pins backwards compatibility: a stream of
// plain lme/progress/v1 records with no telemetry sections renders with
// no engine/wire lines and no skip note.
func TestProgressViewOldRecords(t *testing.T) {
	var stream bytes.Buffer
	enc := json.NewEncoder(&stream)
	for i, final := range []bool{false, true} {
		rec := progress.Record{
			Schema: progress.Schema, WallMS: float64(i+1) * 1000,
			Events: uint64(i+1) * 100, Final: final,
		}
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := progressView(&stream, &out); err != nil {
		t.Fatalf("progressView: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "records 2") {
		t.Errorf("missing roll-up:\n%s", got)
	}
	for _, banned := range []string{"engine:", "wire:", "skipped"} {
		if strings.Contains(got, banned) {
			t.Errorf("unexpected %q in old-record output:\n%s", banned, got)
		}
	}
}

// TestTopRunFollow exercises the follow path: records appended to a file
// after the first EOF are picked up, and the view exits on its own when
// the final record lands.
func TestTopRunFollow(t *testing.T) {
	path := t.TempDir() + "/progress.jsonl"
	writeLine := func(rec progress.Record) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeLine(topRecord(2, []uint64{1, 1, 1, 1}, false))

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	done := make(chan error, 1)
	var out bytes.Buffer
	go func() { done <- topRun(f, &out, true, 5*time.Millisecond, false) }()

	time.Sleep(30 * time.Millisecond)
	writeLine(topRecord(2, []uint64{9, 1, 1, 1}, true))

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("topRun: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("topRun did not exit after the final record")
	}
	if n := strings.Count(out.String(), "progress topo"); n != 2 {
		t.Errorf("want 2 one-liners across the follow, got %d:\n%s", n, out.String())
	}
}
