// Command lmetrace summarises and filters the JSONL event traces written
// by lmesim -trace-out: the offline half of the observability layer.
//
// With no filter flags it prints a summary of the trace — time span,
// per-kind counts, per-node event counts, and a per-message-type
// send/deliver/drop table. Any filter flag implies -print (the events
// themselves are rendered); pass -summary to aggregate the matching
// subset instead.
//
// The span views fold the whole trace through the span layer
// (internal/span) instead of filtering raw events:
//
//	-spans          one line per CS attempt (phases, outcome, causality)
//	-phases         the aggregate phase table and crash attribution
//	-waitfor 1.5s   the wait-for graph as of a virtual time
//
// Examples:
//
//	lmesim -alg alg2 -n 24 -dur 5s -trace-out run.jsonl
//	lmetrace run.jsonl                          # summary
//	lmetrace -node 7 run.jsonl                  # everything node 7 did
//	lmetrace -node 3,7 -kind send,deliver run.jsonl
//	lmetrace -kind send -msg fork -summary run.jsonl
//	lmetrace -from 1s -to 1.5s run.jsonl        # a time window, rendered
//	lmetrace -spans run.jsonl                   # per-attempt CS spans
//	lmetrace -phases run.jsonl                  # phase aggregates
//	lmetrace -waitfor 1.5s run.jsonl            # who blocks whom at 1.5s
//	lmetrace -progress progress.jsonl           # render a -progress-out stream
//	lmetrace -top progress.jsonl                # live tile heat view (lmetop)
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lme/internal/core"
	"lme/internal/progress"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmetrace:", err)
		os.Exit(1)
	}
}

// parseNodes parses a comma-separated node-ID list ("" = no filter).
func parseNodes(s string) (map[core.NodeID]bool, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[core.NodeID]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad node id %q", part)
		}
		out[core.NodeID(id)] = true
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// parseKinds parses a comma-separated event-kind list ("" = no filter).
func parseKinds(s string) (map[trace.Kind]bool, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[trace.Kind]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var k trace.Kind
		if err := k.UnmarshalText([]byte(part)); err != nil {
			return nil, err
		}
		out[k] = true
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func run() error {
	var (
		nodeList = flag.String("node", "", "only events involving these nodes (comma-separated IDs, as actor or peer)")
		kindList = flag.String("kind", "", "only events of these kinds (comma-separated: send|deliver|drop|state|link-up|link-down|move-start|move-stop|crash|doorway|recolor|note)")
		msg      = flag.String("msg", "", "only message events of this normalised type (e.g. fork, req, switch)")
		from     = flag.Duration("from", 0, "only events at or after this virtual time")
		to       = flag.Duration("to", 0, "only events before this virtual time (0 = end of trace)")
		print    = flag.Bool("print", false, "render matching events (implied by any filter flag)")
		summ     = flag.Bool("summary", false, "summarise the matching events even when a filter is set")
		spans    = flag.Bool("spans", false, "fold the trace into CS-attempt spans and print one line per attempt")
		phases   = flag.Bool("phases", false, "fold the trace into spans and print the aggregate phase table")
		waitfor  = flag.Duration("waitfor", 0, "print the wait-for graph (who is blocked on whom) as of this virtual time")
		progress = flag.Bool("progress", false, "render an lme/progress/v1 heartbeat stream (lmesim/lmebench -progress-out) instead of a trace")
		top      = flag.Bool("top", false, "lmetop: live tile-grid heat view of a heartbeat stream with telemetry sections; follows a growing file until the final record")
		topEvery = flag.Duration("top-every", 200*time.Millisecond, "poll interval when -top follows a growing file")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lmetrace [flags] [trace.jsonl]\n\n"+
			"Reads stdin when no file is given. Filter flags imply -print; use\n"+
			"-summary to aggregate the filtered subset instead. The span views\n"+
			"(-spans, -phases, -waitfor) consume the whole trace and ignore the\n"+
			"filter flags.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	fromFile := false
	if flag.NArg() > 1 {
		return fmt.Errorf("expected at most one trace file, got %d", flag.NArg())
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		fromFile = true
	}

	if *top {
		// Follow only when reading a file: re-reading after EOF picks up
		// appended heartbeats; a pipe is drained once.
		return topRun(in, os.Stdout, fromFile, *topEvery, isTerminal(os.Stdout))
	}
	if *progress {
		return progressView(in, os.Stdout)
	}
	if *spans || *phases || *waitfor > 0 {
		return spanView(in, *spans, *phases, *waitfor)
	}

	nodes, err := parseNodes(*nodeList)
	if err != nil {
		return err
	}
	kinds, err := parseKinds(*kindList)
	if err != nil {
		return err
	}
	// Any filter flag implies the caller wants the events themselves,
	// unless -summary asks for aggregation of the subset.
	filtered := kinds != nil || nodes != nil || *msg != "" || *from > 0 || *to > 0
	listing := (*print || filtered) && !*summ

	match := func(e trace.Event) bool {
		if kinds != nil && !kinds[e.Kind] {
			return false
		}
		if nodes != nil && !nodes[e.Node] && !nodes[e.Peer] {
			return false
		}
		if *msg != "" && e.Msg != *msg {
			return false
		}
		if e.At < sim.FromDuration(*from) {
			return false
		}
		if *to > 0 && e.At >= sim.FromDuration(*to) {
			return false
		}
		return true
	}

	sum := newSummary()
	dec := json.NewDecoder(bufio.NewReader(in))
	line := 0
	for {
		var e trace.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("event %d: %w", line+1, err)
		}
		line++
		if !match(e) {
			continue
		}
		if listing {
			fmt.Printf("%12v  %s\n", sim.ToDuration(e.At), e.String())
			continue
		}
		sum.add(e)
	}
	if !listing {
		sum.print(os.Stdout)
	}
	return nil
}

// spanView folds the full trace through the span collector and renders
// the requested derived view.
func spanView(in io.Reader, listSpans, listPhases bool, waitAt time.Duration) error {
	col := span.New()
	cut := sim.FromDuration(waitAt)
	dec := json.NewDecoder(bufio.NewReader(in))
	line := 0
	for {
		var e trace.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("event %d: %w", line+1, err)
		}
		line++
		if waitAt > 0 && e.At > cut {
			break
		}
		col.Feed(e)
	}

	if waitAt > 0 {
		edges := col.WaitEdges()
		if len(edges) == 0 {
			fmt.Printf("no wait-for edges at %v\n", waitAt)
			return nil
		}
		fmt.Printf("wait-for graph at %v (blocked -> blocking):\n", waitAt)
		for _, e := range edges {
			fmt.Printf("  %3d -> %-3d  %s\n", e.From, e.To, e.Why)
		}
		return nil
	}

	col.Finalize(col.Now())
	if listSpans {
		for _, s := range col.Spans() {
			printSpan(s)
		}
	}
	if listPhases {
		printPhases(col.Summary())
	}
	return nil
}

// printSpan renders one attempt on one line: identity, interval,
// outcome, then the phase walk with causal closers.
func printSpan(s span.Span) {
	var b strings.Builder
	fmt.Fprintf(&b, "node %3d #%-3d %10v +%-10v %-7s", s.Node, s.Attempt,
		sim.ToDuration(s.Start), sim.ToDuration(s.Dur()), s.Outcome)
	if s.Demotions > 0 {
		fmt.Fprintf(&b, " demotions=%d", s.Demotions)
	}
	if s.Recolors > 0 {
		fmt.Fprintf(&b, " recolors=%d", s.Recolors)
	}
	for i, p := range s.Phases {
		if i == 0 {
			b.WriteString("  ")
		} else {
			b.WriteString(" → ")
		}
		name := p.Name
		if p.Detail != "" {
			name += ":" + p.Detail
		}
		fmt.Fprintf(&b, "%s %v", name, sim.ToDuration(p.Dur()))
		if p.UnblockedBy != nil {
			fmt.Fprintf(&b, " (by %s %d/%d)", p.UnblockedBy.Msg, p.UnblockedBy.From, p.UnblockedBy.Seq)
		}
	}
	fmt.Println(b.String())
}

// printPhases renders the aggregate table of a span summary.
func printPhases(sum span.Summary) {
	fmt.Printf("attempts %d (ate %d, crashed %d, open %d), demotions %d\n",
		sum.Attempts, sum.Ate, sum.Crashed, sum.Open, sum.Demotions)
	if len(sum.Phases) > 0 {
		fmt.Printf("\n%-16s %8s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
		for _, ps := range sum.Phases {
			mean := time.Duration(0)
			if ps.Count > 0 {
				mean = sim.ToDuration(ps.TotalUS / sim.Time(ps.Count))
			}
			fmt.Printf("%-16s %8d %12v %12v %12v\n", ps.Name, ps.Count,
				sim.ToDuration(ps.TotalUS), mean, sim.ToDuration(ps.MaxUS))
		}
	}
	for _, cr := range sum.Crashes {
		fmt.Printf("\ncrash node %d at %v: max wait-chain hop %d, max graph distance %d, %d blocked\n",
			cr.Crashed, sim.ToDuration(cr.At), cr.MaxHop, cr.MaxDist, len(cr.Blocked))
		for _, b := range cr.Blocked {
			fmt.Printf("  node %3d hop=%d dist=%d\n", b.Node, b.Hop, b.Dist)
		}
	}
}

// summary accumulates the default (no-filter) report.
type summary struct {
	total       int
	first, last sim.Time
	byKind      map[trace.Kind]int
	byNode      map[core.NodeID]int
	byMsg       map[string]*msgCounts
}

type msgCounts struct{ sent, delivered, dropped int }

func newSummary() *summary {
	return &summary{
		first:  -1,
		byKind: make(map[trace.Kind]int),
		byNode: make(map[core.NodeID]int),
		byMsg:  make(map[string]*msgCounts),
	}
}

func (s *summary) add(e trace.Event) {
	s.total++
	if s.first < 0 {
		s.first = e.At
	}
	if e.At > s.last {
		s.last = e.At
	}
	s.byKind[e.Kind]++
	if e.Node >= 0 {
		s.byNode[e.Node]++
	}
	if e.Msg != "" {
		mc := s.byMsg[e.Msg]
		if mc == nil {
			mc = &msgCounts{}
			s.byMsg[e.Msg] = mc
		}
		switch e.Kind {
		case trace.KindSend:
			mc.sent++
		case trace.KindDeliver:
			mc.delivered++
		case trace.KindDrop:
			mc.dropped++
		}
	}
}

func (s *summary) print(w io.Writer) {
	if s.total == 0 {
		fmt.Fprintln(w, "empty trace")
		return
	}
	span := time.Duration(0)
	if s.last > s.first {
		span = sim.ToDuration(s.last - s.first)
	}
	fmt.Fprintf(w, "events   %d\n", s.total)
	fmt.Fprintf(w, "span     %v – %v (%v)\n", sim.ToDuration(s.first), sim.ToDuration(s.last), span)

	fmt.Fprintln(w, "\nby kind:")
	for _, k := range trace.Kinds() {
		if n := s.byKind[k]; n > 0 {
			fmt.Fprintf(w, "  %-12s %8d\n", k, n)
		}
	}

	if len(s.byMsg) > 0 {
		fmt.Fprintln(w, "\nby message type:")
		fmt.Fprintf(w, "  %-14s %8s %10s %8s\n", "type", "sent", "delivered", "dropped")
		types := make([]string, 0, len(s.byMsg))
		for t := range s.byMsg {
			types = append(types, t)
		}
		sort.Strings(types)
		for _, t := range types {
			mc := s.byMsg[t]
			fmt.Fprintf(w, "  %-14s %8d %10d %8d\n", t, mc.sent, mc.delivered, mc.dropped)
		}
	}

	if len(s.byNode) > 0 {
		fmt.Fprintln(w, "\nby node:")
		nodes := make([]core.NodeID, 0, len(s.byNode))
		for id := range s.byNode {
			nodes = append(nodes, id)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, id := range nodes {
			fmt.Fprintf(w, "  node %3d %8d\n", id, s.byNode[id])
		}
	}
}

// progressView renders an lme/progress/v1 heartbeat stream: each record
// as its human one-liner, then a run roll-up (peak rates, peak heap,
// total trace loss, engine/transport telemetry when the run carried it)
// from the final/last record. Lines of other schemas — a mixed stream
// that interleaves trace events with heartbeats, say — are skipped and
// counted rather than treated as errors, and records written by older
// builds (no engine/transport sections) render exactly as before.
func progressView(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	// Telemetry sections can carry a per-tile array for up to 64×64
	// tiles; give lines far more headroom than the 64KiB default.
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		last           progress.Record
		n, skipped     int
		peakEv, peakUS float64
		peakHeap       uint64
	)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec progress.Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Schema != progress.Schema {
			skipped++
			continue
		}
		n++
		last = rec
		peakEv = max(peakEv, rec.EventsPerSec)
		peakUS = max(peakUS, rec.SimUSPerSec)
		peakHeap = max(peakHeap, rec.HeapBytes)
		fmt.Fprintln(out, rec.HumanLine())
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no progress records (skipped %d non-progress lines)", skipped)
	}
	fmt.Fprintf(out, "\nrecords %d, wall %.1fs, events %d\n", n, last.WallMS/1000, last.Events)
	fmt.Fprintf(out, "peak %.0f ev/s", peakEv)
	if peakUS > 0 {
		fmt.Fprintf(out, " (×%.1f real time)", peakUS/1e6)
	}
	fmt.Fprintf(out, ", peak heap %d bytes\n", peakHeap)
	if last.RingOverwritten > 0 || last.SinkDropped > 0 {
		fmt.Fprintf(out, "trace loss: %d ring-overwritten, %d sink-dropped\n",
			last.RingOverwritten, last.SinkDropped)
	}
	if e := last.Engine; e != nil {
		fmt.Fprintf(out, "engine: %d×%d tiles, %d workers, %d windows", e.Tiles, e.Tiles, e.Workers, e.Windows)
		if e.Imbalance > 0 {
			fmt.Fprintf(out, ", imbalance %.2f", e.Imbalance)
		}
		if e.StealAttempts > 0 {
			fmt.Fprintf(out, ", steals %d/%d", e.StealHits, e.StealAttempts)
		}
		if e.CrossTileMsgs > 0 {
			fmt.Fprintf(out, ", cross-tile msgs %d", e.CrossTileMsgs)
		}
		fmt.Fprintln(out)
		if e.BarrierStallNS.Count > 0 {
			fmt.Fprintf(out, "barrier stall p50=%sns p99=%sns\n",
				sketchQ(e.BarrierStallNS, 0.50), sketchQ(e.BarrierStallNS, 0.99))
		}
	}
	if ts := last.Transport; ts != nil {
		fmt.Fprintf(out, "wire: %s, %d links, frames %d/%d, retransmits %d, dup drops %d, reorder hw %d, overflow %d\n",
			ts.Kind, ts.Links, ts.FramesSent, ts.FramesDelivered,
			ts.Retransmits, ts.DupDrops, ts.ReorderDepthHW, ts.ReorderOverflow)
		if ts.AckRTTUS.Count > 0 {
			fmt.Fprintf(out, "ack rtt p50=%sµs p99=%sµs\n", sketchQ(ts.AckRTTUS, 0.50), sketchQ(ts.AckRTTUS, 0.99))
		}
	}
	if skipped > 0 {
		fmt.Fprintf(out, "skipped %d non-progress lines\n", skipped)
	}
	return nil
}
