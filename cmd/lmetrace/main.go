// Command lmetrace summarises and filters the JSONL event traces written
// by lmesim -trace-out: the offline half of the observability layer.
//
// With no filter flags it prints a summary of the trace — time span,
// per-kind counts, per-node event counts, and a per-message-type
// send/deliver/drop table. With -print (or any filter) it re-renders the
// selected events in the same human-readable form as lmesim -trace.
//
// Examples:
//
//	lmesim -alg alg2 -n 24 -dur 5s -trace-out run.jsonl
//	lmetrace run.jsonl                          # summary
//	lmetrace -node 7 run.jsonl                  # everything node 7 did
//	lmetrace -kind send -msg fork run.jsonl     # all fork sends
//	lmetrace -from 1s -to 1.5s -print run.jsonl # a time window, rendered
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmetrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		node    = flag.Int("node", -1, "only events involving this node (as actor or peer)")
		kindStr = flag.String("kind", "", "only events of this kind (send|deliver|drop|state|link-up|link-down|move-start|move-stop|crash|doorway|recolor|note)")
		msg     = flag.String("msg", "", "only message events of this normalised type (e.g. fork, req, switch)")
		from    = flag.Duration("from", 0, "only events at or after this virtual time")
		to      = flag.Duration("to", 0, "only events before this virtual time (0 = end of trace)")
		print   = flag.Bool("print", false, "render matching events instead of summarising them")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lmetrace [flags] [trace.jsonl]\n\nReads stdin when no file is given.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		return fmt.Errorf("expected at most one trace file, got %d", flag.NArg())
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var kind trace.Kind
	filterKind := *kindStr != ""
	if filterKind {
		if err := kind.UnmarshalText([]byte(*kindStr)); err != nil {
			return err
		}
	}
	// Any filter flag implies the caller wants the events themselves.
	listing := *print || filterKind || *node >= 0 || *msg != "" || *from > 0 || *to > 0

	match := func(e trace.Event) bool {
		if filterKind && e.Kind != kind {
			return false
		}
		if *node >= 0 && e.Node != core.NodeID(*node) && e.Peer != core.NodeID(*node) {
			return false
		}
		if *msg != "" && e.Msg != *msg {
			return false
		}
		if e.At < sim.FromDuration(*from) {
			return false
		}
		if *to > 0 && e.At >= sim.FromDuration(*to) {
			return false
		}
		return true
	}

	sum := newSummary()
	dec := json.NewDecoder(bufio.NewReader(in))
	line := 0
	for {
		var e trace.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("event %d: %w", line+1, err)
		}
		line++
		if !match(e) {
			continue
		}
		if listing {
			fmt.Printf("%12v  %s\n", sim.ToDuration(e.At), e.String())
			continue
		}
		sum.add(e)
	}
	if !listing {
		sum.print(os.Stdout)
	}
	return nil
}

// summary accumulates the default (no-filter) report.
type summary struct {
	total       int
	first, last sim.Time
	byKind      map[trace.Kind]int
	byNode      map[core.NodeID]int
	byMsg       map[string]*msgCounts
}

type msgCounts struct{ sent, delivered, dropped int }

func newSummary() *summary {
	return &summary{
		first:  -1,
		byKind: make(map[trace.Kind]int),
		byNode: make(map[core.NodeID]int),
		byMsg:  make(map[string]*msgCounts),
	}
}

func (s *summary) add(e trace.Event) {
	s.total++
	if s.first < 0 {
		s.first = e.At
	}
	if e.At > s.last {
		s.last = e.At
	}
	s.byKind[e.Kind]++
	if e.Node >= 0 {
		s.byNode[e.Node]++
	}
	if e.Msg != "" {
		mc := s.byMsg[e.Msg]
		if mc == nil {
			mc = &msgCounts{}
			s.byMsg[e.Msg] = mc
		}
		switch e.Kind {
		case trace.KindSend:
			mc.sent++
		case trace.KindDeliver:
			mc.delivered++
		case trace.KindDrop:
			mc.dropped++
		}
	}
}

func (s *summary) print(w io.Writer) {
	if s.total == 0 {
		fmt.Fprintln(w, "empty trace")
		return
	}
	span := time.Duration(0)
	if s.last > s.first {
		span = sim.ToDuration(s.last - s.first)
	}
	fmt.Fprintf(w, "events   %d\n", s.total)
	fmt.Fprintf(w, "span     %v – %v (%v)\n", sim.ToDuration(s.first), sim.ToDuration(s.last), span)

	fmt.Fprintln(w, "\nby kind:")
	for _, k := range trace.Kinds() {
		if n := s.byKind[k]; n > 0 {
			fmt.Fprintf(w, "  %-12s %8d\n", k, n)
		}
	}

	if len(s.byMsg) > 0 {
		fmt.Fprintln(w, "\nby message type:")
		fmt.Fprintf(w, "  %-14s %8s %10s %8s\n", "type", "sent", "delivered", "dropped")
		types := make([]string, 0, len(s.byMsg))
		for t := range s.byMsg {
			types = append(types, t)
		}
		sort.Strings(types)
		for _, t := range types {
			mc := s.byMsg[t]
			fmt.Fprintf(w, "  %-14s %8d %10d %8d\n", t, mc.sent, mc.delivered, mc.dropped)
		}
	}

	if len(s.byNode) > 0 {
		fmt.Fprintln(w, "\nby node:")
		nodes := make([]core.NodeID, 0, len(s.byNode))
		for id := range s.byNode {
			nodes = append(nodes, id)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, id := range nodes {
			fmt.Fprintf(w, "  node %3d %8d\n", id, s.byNode[id])
		}
	}
}
