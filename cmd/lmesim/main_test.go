package main

import "testing"

// TestMoverIDsDistinctAndInRange pins the mover-ID selection: for every
// (n, movers) combination the picks must be distinct and in [0, n). The
// old i*(n/movers) formula produced duplicates whenever movers did not
// divide n (e.g. n=10, movers=4 → 0,2,4,4) and all-zero sets when
// movers > n.
func TestMoverIDsDistinctAndInRange(t *testing.T) {
	cases := []struct{ n, movers int }{
		{10, 4},  // movers does not divide n
		{24, 5},  // movers does not divide n
		{24, 8},  // movers divides n
		{7, 7},   // all nodes move
		{3, 8},   // movers > n: clamp to n
		{1, 1},   // minimal
		{100, 3}, // sparse
	}
	for _, tc := range cases {
		ids := moverIDs(tc.n, tc.movers)
		want := tc.movers
		if want > tc.n {
			want = tc.n
		}
		if len(ids) != want {
			t.Errorf("moverIDs(%d, %d) returned %d ids, want %d", tc.n, tc.movers, len(ids), want)
		}
		seen := make(map[int]bool)
		for _, id := range ids {
			if id < 0 || id >= tc.n {
				t.Errorf("moverIDs(%d, %d) picked out-of-range id %d", tc.n, tc.movers, id)
			}
			if seen[id] {
				t.Errorf("moverIDs(%d, %d) picked duplicate id %d", tc.n, tc.movers, id)
			}
			seen[id] = true
		}
	}
}
