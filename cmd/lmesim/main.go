// Command lmesim runs a single local-mutual-exclusion simulation and
// prints its metrics: the quickest way to poke at one algorithm on one
// topology.
//
// Examples:
//
//	lmesim -alg alg2 -topo line -n 16 -dur 5s
//	lmesim -alg alg1-linial -topo geometric -n 48 -radius 0.2 -movers 8 -dur 10s
//	lmesim -alg chandy-misra -topo line -n 12 -crash 6 -crash-at 2s -dur 20s
//	lmesim -alg alg2 -n 24 -dur 5s -json                  # machine-readable telemetry
//	lmesim -alg alg2 -n 24 -dur 5s -trace-out run.jsonl   # JSONL event trace (see lmetrace)
//	lmesim -alg alg2 -n 24 -dur 5s -spans-out spans.jsonl # per-attempt CS spans (lmetrace -spans)
//	lmesim -alg alg2 -n 24 -dur 5s -postmortem pm.json    # flight-recorder dump on violation
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lme"
)

// parseTiles resolves the -tiles flag: a grid side, or "auto" to let
// lme.AutoTiles size the grid for n. Bad values get a did-you-mean-style
// message pointing at the two accepted forms instead of a bare
// strconv error.
func parseTiles(s string, n int) (int, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "a":
		return lme.AutoTiles(n), nil
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || v < 1 {
		return 0, fmt.Errorf("-tiles: %q is not a tile grid side — did you mean \"auto\" (size for -n) or an integer like -tiles 4 (a 4×4 grid; 1 = classic engine)?", s)
	}
	return v, nil
}

// algUsage assembles the -alg help text from the algorithm registry so
// the flag never drifts from what NewSimulation accepts.
func algUsage() string {
	names := make([]string, 0, len(lme.Algorithms()))
	for _, a := range lme.Algorithms() {
		names = append(names, string(a))
	}
	return "algorithm: " + strings.Join(names, "|")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmesim:", err)
		os.Exit(1)
	}
}

// result is the lmesim -json document: the run telemetry plus an echo of
// the configuration that produced it.
type result struct {
	Topology string  `json:"topology"`
	Radius   float64 `json:"radius"`
	Seed     uint64  `json:"seed"`
	lme.Report
}

func run() error {
	var (
		algName  = flag.String("alg", "alg2", algUsage())
		topo     = flag.String("topo", "geometric", "topology: line|grid|clique|geometric")
		n        = flag.Int("n", 24, "number of nodes")
		radius   = flag.Float64("radius", 0.25, "radio range (geometric topology)")
		seed     = flag.Uint64("seed", 1, "random seed")
		dur      = flag.Duration("dur", 5*time.Second, "virtual time to simulate")
		eat      = flag.Duration("eat", 5*time.Millisecond, "critical section duration τ")
		think    = flag.Duration("think", 10*time.Millisecond, "max thinking time (0 = saturated)")
		movers   = flag.Int("movers", 0, "number of random-waypoint movers")
		speed    = flag.Float64("speed", 0.3, "mover speed (plane units/s)")
		crash    = flag.Int("crash", -1, "node to crash (-1 = none)")
		crashAt  = flag.Duration("crash-at", time.Second, "crash time")
		verbose  = flag.Bool("v", false, "print per-node meal counts")
		trace    = flag.Bool("trace", false, "print the world event trace (state, link, mobility, doorway and recolouring events)")
		gantt    = flag.Duration("gantt", 0, "render an ASCII eating timeline of the final window (e.g. -gantt 500ms)")
		jsonOut  = flag.Bool("json", false, "emit the run telemetry as a single JSON object instead of text")
		traceOut = flag.String("trace-out", "", "write the full typed event stream as JSONL to this file (summarise with lmetrace)")
		spansOut = flag.String("spans-out", "", "write per-attempt CS spans as JSONL to this file (inspect with lmetrace -spans)")
		postmort = flag.String("postmortem", "", "on a safety violation, dump the event ring, open spans and wait-for graph to this file")
		stats    = flag.Bool("stats", false, "print the counter/histogram registry after the run")
		progFlag = flag.Bool("progress", false, "print a live heartbeat to stderr while the run executes")
		progOut  = flag.String("progress-out", "", "write lme/progress/v1 heartbeat records as JSONL to this file")
		progEach = flag.Duration("progress-every", 2*time.Second, "wall-clock interval between heartbeats")
		tiles    = flag.String("tiles", "1", "region-sharded engine tile grid side: an integer or \"auto\" (1 = classic single-heap engine; the trace is identical either way)")
		shardW   = flag.Int("shard-workers", 0, "worker goroutines for the sharded engine (0 = GOMAXPROCS; needs -tiles > 1)")
		telFlag  = flag.Bool("telemetry", false, "collect engine execution telemetry (lme/telemetry/v1) and attach it to -progress heartbeats; out-of-band, the trace is unchanged")
	)
	flag.Parse()

	topology, err := buildTopology(*topo, *n, *radius, *seed)
	if err != nil {
		return err
	}
	tileSide, err := parseTiles(*tiles, *n)
	if err != nil {
		return err
	}
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm:      lme.Algorithm(*algName),
		Topology:       topology,
		Seed:           *seed,
		EatTime:        *eat,
		ThinkMax:       *think,
		Tiles:          tileSide,
		ShardWorkers:   *shardW,
		Telemetry:      *telFlag,
		PostmortemPath: *postmort,
		// Without -spans-out, a postmortem (whose dump lists open spans)
		// or a -gantt chart (which needs interval history) nothing reads
		// retained records, so stream-fold them: observability memory
		// stays O(nodes) however long the run is.
		FoldSpans: *spansOut == "" && *postmort == "" && *gantt == 0,
	})
	if err != nil {
		return err
	}
	// progressClose flushes the heartbeat stream after the run; set when
	// any -progress* flag armed the reporter.
	var progressClose func() error
	if *progFlag || *progOut != "" {
		cfg := lme.ProgressConfig{Every: *progEach, Label: *algName}
		if *progFlag {
			cfg.Human = os.Stderr
		}
		closeFile := func() error { return nil }
		if *progOut != "" {
			f, err := os.Create(*progOut)
			if err != nil {
				return err
			}
			w := bufio.NewWriter(f)
			cfg.JSONL = w
			closeFile = func() error {
				if err := w.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
		}
		sim.EnableProgress(cfg)
		progressClose = func() error {
			err := sim.FlushProgress()
			if e := closeFile(); err == nil {
				err = e
			}
			return err
		}
	}
	if *trace {
		sim.SetTracer(func(at time.Duration, line string) {
			fmt.Printf("%12v  %s\n", at, line)
		})
	}
	// traceClose drains the bus's batch buffer and the bufio layer and
	// closes the file, reporting the first failure anywhere in the chain;
	// it runs on error paths too, so a violated run still leaves as much
	// trace on disk as was written.
	var traceClose func() error
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		sim.Bus().SetSink(w)
		traceClose = func() error {
			err := sim.Bus().Flush()
			if e := w.Flush(); err == nil {
				err = e
			}
			if e := f.Close(); err == nil {
				err = e
			}
			return err
		}
	}
	if *movers > 0 {
		if err := sim.Roam(moverIDs(*n, *movers), *speed, *dur*3/4); err != nil {
			return err
		}
	}
	if *crash >= 0 {
		if err := sim.Crash(*crash, *crashAt); err != nil {
			return err
		}
	}
	start := time.Now()
	runErr := sim.RunFor(*dur)
	wall := time.Since(start)
	if progressClose != nil {
		if err := progressClose(); err != nil {
			fmt.Fprintf(os.Stderr, "lmesim: warning: progress stream: %v\n", err)
		}
	}
	// A sink failure must not pass silently — the trace file is
	// truncated. Warn immediately (so the report below still prints) and
	// exit non-zero at the end.
	var sinkErr error
	if traceClose != nil {
		if err := traceClose(); err != nil {
			if n := sim.TraceLoss().SinkDropped; n > 0 {
				err = fmt.Errorf("%w (%d events dropped)", err, n)
			}
			fmt.Fprintf(os.Stderr, "lmesim: warning: trace sink: %v; %s is truncated\n", err, *traceOut)
			sinkErr = fmt.Errorf("trace output truncated (see warning above)")
		}
	}
	// Spans are written even when the run failed: a violated run's spans
	// are exactly what the post-mortem reader wants next to the dump.
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := sim.WriteSpans(w); err != nil {
			f.Close()
			return fmt.Errorf("spans: %w", err)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("spans: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("spans: %w", err)
		}
	}
	if runErr != nil {
		return runErr
	}

	if *jsonOut {
		doc := result{
			Topology: *topo,
			Radius:   *radius,
			Seed:     *seed,
			Report:   sim.Report(wall),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
		if doc.Violations > 0 {
			return fmt.Errorf("%d mutual exclusion violations", doc.Violations)
		}
		return sinkErr
	}

	res := sim.Results()
	rep := sim.Report(wall)
	fmt.Printf("algorithm    %s\n", *algName)
	fmt.Printf("topology     %s n=%d\n", *topo, *n)
	fmt.Printf("simulated    %v (%.0f events/s wall)\n", sim.Now(), rep.EventsPerSec)
	fmt.Printf("meals        %d\n", res.TotalMeals)
	fmt.Printf("response     n=%d mean=%v p95=%v max=%v\n",
		res.ResponseCount, res.ResponseMean, res.ResponseP95, res.ResponseMax)
	fmt.Printf("messages     sent=%d delivered=%d per-meal=%.1f\n",
		rep.Messages.Sent, rep.Messages.Delivered, rep.Messages.PerMeal)
	fmt.Printf("violations   %d\n", res.SafetyViolations)
	fmt.Printf("starved      %v\n", res.Starved)
	if *verbose {
		for i := 0; i < *n; i++ {
			fmt.Printf("  node %2d: %-8s meals=%d\n", i, sim.NodeState(i), sim.EatCount(i))
		}
	}
	if *stats {
		fmt.Println()
		fmt.Print(sim.MetricsSnapshot())
		loss := sim.TraceLoss()
		fmt.Printf("\ntrace loss   ring_overwritten=%d sink_dropped=%d\n",
			loss.RingOverwritten, loss.SinkDropped)
	}
	if *gantt > 0 {
		fmt.Println(sim.Gantt(*gantt, 96))
	}
	if res.SafetyViolations > 0 {
		return fmt.Errorf("%d mutual exclusion violations", res.SafetyViolations)
	}
	return sinkErr
}

// moverIDs picks min(movers, n) distinct node IDs spread evenly over
// [0, n). Multiplying before dividing keeps the picks distinct for every
// movers ≤ n (consecutive picks differ by at least ⌊n/movers⌋ ≥ 1); the
// old i*(n/movers) formula collapsed to all-zeros when movers > n/1.
func moverIDs(n, movers int) []int {
	if movers > n {
		movers = n
	}
	ids := make([]int, 0, movers)
	for i := 0; i < movers; i++ {
		ids = append(ids, i*n/movers)
	}
	return ids
}

func buildTopology(kind string, n int, radius float64, seed uint64) (lme.Topology, error) {
	switch kind {
	case "line":
		return lme.Line(n), nil
	case "clique":
		return lme.Clique(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return lme.Grid(side, (n+side-1)/side), nil
	case "geometric":
		return lme.Geometric(n, radius, seed)
	default:
		return lme.Topology{}, fmt.Errorf("unknown topology %q", kind)
	}
}
