// Command lmesim runs a single local-mutual-exclusion simulation and
// prints its metrics: the quickest way to poke at one algorithm on one
// topology.
//
// Examples:
//
//	lmesim -alg alg2 -topo line -n 16 -dur 5s
//	lmesim -alg alg1-linial -topo geometric -n 48 -radius 0.2 -movers 8 -dur 10s
//	lmesim -alg chandy-misra -topo line -n 12 -crash 6 -crash-at 2s -dur 20s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lme"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName = flag.String("alg", "alg2", "algorithm: alg1-greedy|alg1-linial|alg2|chandy-misra|choy-singh|alg2-nonotify")
		topo    = flag.String("topo", "geometric", "topology: line|grid|clique|geometric")
		n       = flag.Int("n", 24, "number of nodes")
		radius  = flag.Float64("radius", 0.25, "radio range (geometric topology)")
		seed    = flag.Uint64("seed", 1, "random seed")
		dur     = flag.Duration("dur", 5*time.Second, "virtual time to simulate")
		eat     = flag.Duration("eat", 5*time.Millisecond, "critical section duration τ")
		think   = flag.Duration("think", 10*time.Millisecond, "max thinking time (0 = saturated)")
		movers  = flag.Int("movers", 0, "number of random-waypoint movers")
		speed   = flag.Float64("speed", 0.3, "mover speed (plane units/s)")
		crash   = flag.Int("crash", -1, "node to crash (-1 = none)")
		crashAt = flag.Duration("crash-at", time.Second, "crash time")
		verbose = flag.Bool("v", false, "print per-node meal counts")
		trace   = flag.Bool("trace", false, "print the world event trace (state, link and mobility events)")
		gantt   = flag.Duration("gantt", 0, "render an ASCII eating timeline of the final window (e.g. -gantt 500ms)")
	)
	flag.Parse()

	topology, err := buildTopology(*topo, *n, *radius, *seed)
	if err != nil {
		return err
	}
	sim, err := lme.NewSimulation(lme.Config{
		Algorithm: lme.Algorithm(*algName),
		Topology:  topology,
		Seed:      *seed,
		EatTime:   *eat,
		ThinkMax:  *think,
	})
	if err != nil {
		return err
	}
	if *trace {
		sim.SetTracer(func(at time.Duration, line string) {
			fmt.Printf("%12v  %s\n", at, line)
		})
	}
	if *movers > 0 {
		ids := make([]int, 0, *movers)
		for i := 0; i < *movers && i < *n; i++ {
			ids = append(ids, i*(*n / *movers))
		}
		sim.Roam(ids, *speed, *dur*3/4)
	}
	if *crash >= 0 {
		sim.Crash(*crash, *crashAt)
	}
	if err := sim.RunFor(*dur); err != nil {
		return err
	}
	res := sim.Results()
	fmt.Printf("algorithm    %s\n", *algName)
	fmt.Printf("topology     %s n=%d\n", *topo, *n)
	fmt.Printf("simulated    %v\n", sim.Now())
	fmt.Printf("meals        %d\n", res.TotalMeals)
	fmt.Printf("response     n=%d mean=%v p95=%v max=%v\n",
		res.ResponseCount, res.ResponseMean, res.ResponseP95, res.ResponseMax)
	fmt.Printf("violations   %d\n", res.SafetyViolations)
	fmt.Printf("starved      %v\n", res.Starved)
	if *verbose {
		for i := 0; i < *n; i++ {
			fmt.Printf("  node %2d: %-8s meals=%d\n", i, sim.NodeState(i), sim.EatCount(i))
		}
	}
	if *gantt > 0 {
		fmt.Println(sim.Gantt(*gantt, 96))
	}
	if res.SafetyViolations > 0 {
		return fmt.Errorf("%d mutual exclusion violations", res.SafetyViolations)
	}
	return nil
}

func buildTopology(kind string, n int, radius float64, seed uint64) (lme.Topology, error) {
	switch kind {
	case "line":
		return lme.Line(n), nil
	case "clique":
		return lme.Clique(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return lme.Grid(side, (n+side-1)/side), nil
	case "geometric":
		return lme.Geometric(n, radius, seed)
	default:
		return lme.Topology{}, fmt.Errorf("unknown topology %q", kind)
	}
}
