// Package lme is a from-scratch reproduction of "Efficient and Robust
// Local Mutual Exclusion in Mobile Ad Hoc Networks" (ICDCS 2008): two
// algorithms for local mutual exclusion — the dining-philosophers problem
// generalised to mobile ad hoc networks — together with the simulated
// MANET substrate they run on, the baselines they are compared against,
// and the measurement harness that reproduces the paper's Table 1 and
// theorem-predicted scaling behaviour.
//
// The package is a facade: it wires a simulated world, an algorithm
// instance per node, a dining-cycle workload, an online mutual-exclusion
// safety checker, and response-time/starvation metrics into a Simulation
// that is driven in virtual time. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the measured results.
//
// Quick start:
//
//	sim, err := lme.NewSimulation(lme.Config{
//		Algorithm: lme.Alg2,
//		Topology:  lme.Line(8),
//	})
//	if err != nil { ... }
//	if err := sim.RunFor(2 * time.Second); err != nil { ... }
//	fmt.Println(sim.Results())
package lme

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"lme/internal/baseline"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/harness"
	"lme/internal/lme1"
	"lme/internal/lme2"
	"lme/internal/manet"
	"lme/internal/metrics"
	"lme/internal/progress"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/trace"
	"lme/internal/workload"
)

// Algorithm selects the local mutual exclusion protocol under test.
type Algorithm string

// The implemented algorithms and baselines.
const (
	// Alg1Greedy is the paper's first algorithm with the greedy
	// recolouring procedure (Algorithm 4): failure locality n, response
	// time O((n+δ³)δ), no knowledge of n or δ required.
	Alg1Greedy Algorithm = "alg1-greedy"
	// Alg1Linial is the first algorithm with the Linial-based
	// recolouring (Algorithm 5): failure locality max(log* n, 4)+2,
	// response time O((log* n+δ⁴)δ); assumes n and δ known.
	Alg1Linial Algorithm = "alg1-linial"
	// Alg1LinialReduce is Alg1Linial followed by deterministic colour
	// reduction to a δ+1 palette — the conversion the paper's
	// discussion chapter mentions; more recolouring rounds, smaller Δ.
	Alg1LinialReduce Algorithm = "alg1-linial-reduce"
	// Alg2 is the second algorithm (Chapter 6): optimal failure
	// locality 2, response time O(n²) mobile and O(n) static.
	Alg2 Algorithm = "alg2"
	// ChandyMisra is the hygienic dining philosophers baseline with
	// failure locality n.
	ChandyMisra Algorithm = "chandy-misra"
	// ChoySingh is the static doubly-doored baseline with a
	// pre-computed colouring (failure locality 4).
	ChoySingh Algorithm = "choy-singh"
	// Alg2NoNotify is Alg2 without the notification mechanism — the
	// ablation that loses the O(n) static response time.
	Alg2NoNotify Algorithm = "alg2-nonotify"
	// GlobalToken is Raymond's tree-token GLOBAL mutual exclusion — the
	// class of algorithms the paper's introduction contrasts local
	// mutual exclusion with. Static topologies only.
	GlobalToken Algorithm = "global-token"
)

// algorithmEntry is one row of the algorithm registry: the single source
// of truth tying a selectable name to its documentation line and node
// constructor. Algorithms(), AlgorithmDoc, protocolFactory and the
// lmesim -alg usage text all derive from this table.
type algorithmEntry struct {
	Name Algorithm
	Doc  string
	// New builds the per-node protocol factory for a concrete topology.
	New func(topo Topology, recolorFirst bool) func(core.NodeID) core.Protocol
}

// algorithmRegistry lists the entries in presentation order (paper
// algorithms first, then baselines).
var algorithmRegistry = []algorithmEntry{
	{Alg1Greedy, "paper Alg 1, greedy recolouring: FL n, RT O((n+δ³)δ)",
		func(_ Topology, recolorFirst bool) func(core.NodeID) core.Protocol {
			return func(core.NodeID) core.Protocol {
				return lme1.New(lme1.Config{Variant: lme1.VariantGreedy, RecolorFirst: recolorFirst})
			}
		}},
	{Alg1Linial, "paper Alg 1, Linial recolouring: FL max(log*n,4)+2, RT O((log*n+δ⁴)δ)",
		func(topo Topology, recolorFirst bool) func(core.NodeID) core.Protocol {
			n, delta := topo.size()
			return func(core.NodeID) core.Protocol {
				return lme1.New(lme1.Config{Variant: lme1.VariantLinial, N: n, Delta: delta, RecolorFirst: recolorFirst})
			}
		}},
	{Alg1LinialReduce, "Alg 1, Linial recolouring plus colour reduction to δ+1",
		func(topo Topology, recolorFirst bool) func(core.NodeID) core.Protocol {
			n, delta := topo.size()
			return func(core.NodeID) core.Protocol {
				return lme1.New(lme1.Config{Variant: lme1.VariantLinialReduce, N: n, Delta: delta, RecolorFirst: recolorFirst})
			}
		}},
	{Alg2, "paper Alg 2: FL 2 (optimal), RT O(n²) mobile / O(n) static",
		func(Topology, bool) func(core.NodeID) core.Protocol {
			return func(core.NodeID) core.Protocol { return lme2.New() }
		}},
	{ChandyMisra, "hygienic dining philosophers baseline: FL n",
		func(Topology, bool) func(core.NodeID) core.Protocol {
			return func(core.NodeID) core.Protocol { return baseline.NewChandyMisra() }
		}},
	{ChoySingh, "static doubly-doored baseline, pre-computed colouring: FL 4",
		func(topo Topology, _ bool) func(core.NodeID) core.Protocol {
			return baseline.NewChoySingh(topo.graph())
		}},
	{Alg2NoNotify, "Alg 2 without notifications (ablation): loses O(n) static RT",
		func(Topology, bool) func(core.NodeID) core.Protocol {
			return func(core.NodeID) core.Protocol { return baseline.NewNoNotify() }
		}},
	{GlobalToken, "Raymond tree-token GLOBAL mutual exclusion contrast; static only",
		func(topo Topology, _ bool) func(core.NodeID) core.Protocol {
			return baseline.NewGlobalToken(topo.graph())
		}},
}

// Algorithms lists every selectable algorithm, in registry order.
func Algorithms() []Algorithm {
	names := make([]Algorithm, len(algorithmRegistry))
	for i, e := range algorithmRegistry {
		names[i] = e.Name
	}
	return names
}

// AlgorithmDoc returns the one-line description of an algorithm ("" when
// unknown).
func AlgorithmDoc(a Algorithm) string {
	for _, e := range algorithmRegistry {
		if e.Name == a {
			return e.Doc
		}
	}
	return ""
}

// Point is a position on the plane (unit square by convention).
type Point = graph.Point

// Topology is a set of node positions plus the radio range that induces
// the communication graph — or, for the live runtime, a pre-built
// communication graph with no coordinates (see FromGraph).
type Topology struct {
	Points []Point
	Radius float64

	// prebuilt, when set, short-circuits the unit-disk construction:
	// the topology IS this graph. Point-free topologies drive the live
	// runtime (which needs no coordinates) but cannot be simulated —
	// the mobility substrate needs positions.
	prebuilt *graph.Graph
}

// FromGraph wraps an explicit communication graph as a Topology, the
// form the live runtime and the load generator consume (graph.Ring,
// graph.Line, … construct in O(n), where the unit-disk induction is
// O(n²)). A FromGraph topology has no coordinates: NewSimulation rejects
// it, NewProtocols accepts it.
func FromGraph(g *graph.Graph) Topology { return Topology{prebuilt: g} }

// graph materialises the induced unit-disk communication graph.
func (t Topology) graph() *graph.Graph {
	if t.prebuilt != nil {
		return t.prebuilt
	}
	return graph.UnitDisk(t.Points, t.Radius)
}

// size returns (n, δ) of the induced graph, with δ floored at 1.
func (t Topology) size() (n, delta int) {
	g := t.graph()
	return g.N(), max(g.MaxDegree(), 1)
}

// Graph exposes the topology's communication graph — what the live
// runtime (internal/livenet) is built over.
func (t Topology) Graph() *graph.Graph { return t.graph() }

// NewProtocols instantiates one protocol per node of the topology for
// the named algorithm — the same registry (same names, same did-you-mean
// suggestions) behind NewSimulation and lmesim -alg, exposed so the live
// runtime, the load generator and the examples wire algorithms without
// private duplicates of the registry.
func NewProtocols(a Algorithm, t Topology) ([]core.Protocol, error) {
	factory, err := protocolFactory(a, t, false)
	if err != nil {
		return nil, err
	}
	n := t.graph().N()
	protos := make([]core.Protocol, n)
	for i := range protos {
		protos[i] = factory(core.NodeID(i))
	}
	return protos, nil
}

// Line places n nodes on a line with unit-disk adjacency between
// consecutive nodes only.
func Line(n int) Topology {
	return Topology{Points: harness.LinePoints(n, 0.1), Radius: 0.11}
}

// Clique places n mutually adjacent nodes.
func Clique(n int) Topology {
	return Topology{Points: harness.CliquePoints(n), Radius: 0.2}
}

// Grid places rows×cols nodes with 4-neighbour adjacency.
func Grid(rows, cols int) Topology {
	return Topology{Points: harness.GridPoints(rows, cols, 0.1), Radius: 0.11}
}

// Geometric samples a connected random geometric graph on the unit square.
func Geometric(n int, radius float64, seed uint64) (Topology, error) {
	pts, err := harness.GeometricPoints(n, radius, seed)
	if err != nil {
		return Topology{}, err
	}
	return Topology{Points: pts, Radius: radius}, nil
}

// Config declares a simulation.
type Config struct {
	// Algorithm under test; required.
	Algorithm Algorithm

	// Topology of the initial deployment; required.
	Topology Topology

	// Seed drives all randomness (default 1).
	Seed uint64

	// EatTime is the critical-section duration τ (default 5ms).
	EatTime time.Duration
	// ThinkMin/ThinkMax bound the uniform thinking period (default
	// 0–10ms).
	ThinkMin, ThinkMax time.Duration

	// MaxMessageDelay is the paper's ν (default 10ms).
	MaxMessageDelay time.Duration

	// Participants restricts the dining cycle to these nodes (nil =
	// all).
	Participants []int

	// InitialRecoloring makes every Algorithm-1 node run the
	// recolouring module on its first hungry journey instead of using
	// ID colours — the paper's distributed pre-colouring (Ch. 5/7).
	// Ignored by the other algorithms.
	InitialRecoloring bool

	// PostmortemPath arms the flight recorder: on the first mutual
	// exclusion violation the tail of the event ring, every open CS
	// attempt and the wait-for graph are dumped to this file.
	PostmortemPath string

	// FoldSpans selects the span layer's streaming fold mode: closed
	// attempts are folded into per-node/per-phase aggregates immediately
	// and discarded, making span memory O(nodes) instead of O(attempts).
	// Report and SpanSummary are unchanged; WriteSpans errors because
	// per-span records were never retained.
	FoldSpans bool

	// RetainSamples keeps every raw response-time sample alongside the
	// quantile sketch (O(meals) memory) so exact nearest-rank quantiles
	// remain available via the harness; the default is sketch-only,
	// accurate to ±1% relative error.
	RetainSamples bool

	// Tiles selects the region-sharded parallel engine: values > 1
	// partition the deployment's bounding box into a Tiles×Tiles grid of
	// spatial shards, each with its own event heap, executed by up to
	// ShardWorkers goroutines with conservative lookahead ν. 0 or 1 run
	// the single-heap engine — the exact legacy behaviour. The event
	// trace (and hence every result) is bit-identical across engines,
	// tilings and worker counts; only the wall-clock changes. Use
	// AutoTiles(n) for a size-appropriate default.
	Tiles int

	// ShardWorkers bounds the sharded engine's worker goroutines
	// (0 = GOMAXPROCS); ignored when Tiles ≤ 1.
	ShardWorkers int

	// Telemetry collects the execution engine's introspection counters
	// (per-tile events, window/barrier statistics, steal and cross-tile
	// traffic tallies — schema lme/telemetry/v1) and attaches them to
	// progress heartbeats as the "engine" section. Out-of-band: enabling
	// it changes no trace, hash or result.
	Telemetry bool
}

// AutoTiles suggests a tile-grid side for an n-node world (roughly 64
// nodes per tile, clamped to [1, 64]) — the default lmesim/lmebench use
// when asked for "auto" sharding.
func AutoTiles(n int) int { return manet.AutoTiles(n) }

// ProgressConfig configures live run telemetry: a wall-clock heartbeat
// sampling events/sec, virtual-time rate, open spans, heap bytes and
// trace-loss counters (schema lme/progress/v1).
type ProgressConfig struct {
	// Every is the minimum spacing between heartbeats (default 2s).
	Every time.Duration
	// Human receives a one-line rendering per heartbeat (typically
	// os.Stderr); nil disables it.
	Human io.Writer
	// JSONL receives one lme/progress/v1 record per line; nil disables.
	JSONL io.Writer
	// Label names the run in every record.
	Label string
}

// Simulation is an assembled run.
type Simulation struct {
	run  *harness.Run
	alg  Algorithm
	prog *progress.Reporter
}

// NewSimulation builds a simulation from the configuration.
func NewSimulation(cfg Config) (*Simulation, error) {
	if cfg.Topology.prebuilt != nil && len(cfg.Topology.Points) == 0 {
		return nil, fmt.Errorf("lme: FromGraph topologies have no coordinates and cannot be simulated; use point topologies (Line, Grid, …) for NewSimulation")
	}
	factory, err := protocolFactory(cfg.Algorithm, cfg.Topology, cfg.InitialRecoloring)
	if err != nil {
		return nil, err
	}
	if cfg.Tiles < 0 || cfg.Tiles > 128 {
		return nil, fmt.Errorf("lme: invalid Tiles %d (want 0..128; 0 or 1 = single-heap engine, or AutoTiles(n))", cfg.Tiles)
	}
	if cfg.ShardWorkers < 0 {
		return nil, fmt.Errorf("lme: invalid ShardWorkers %d (want ≥ 0; 0 = GOMAXPROCS)", cfg.ShardWorkers)
	}
	wl := workload.DefaultConfig()
	if cfg.EatTime > 0 {
		wl.EatTime = sim.FromDuration(cfg.EatTime)
	}
	if cfg.ThinkMin > 0 || cfg.ThinkMax > 0 {
		wl.ThinkMin = sim.FromDuration(cfg.ThinkMin)
		wl.ThinkMax = sim.FromDuration(cfg.ThinkMax)
	}
	if cfg.Participants != nil {
		wl.Participants = make([]core.NodeID, len(cfg.Participants))
		for i, p := range cfg.Participants {
			wl.Participants[i] = core.NodeID(p)
		}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	spec := harness.Spec{
		Seed:           seed,
		Points:         cfg.Topology.Points,
		Radius:         cfg.Topology.Radius,
		NewProtocol:    factory,
		Workload:       wl,
		Spans:          !cfg.FoldSpans,
		SpanFold:       cfg.FoldSpans,
		RetainSamples:  cfg.RetainSamples,
		PostmortemPath: cfg.PostmortemPath,
		Tiles:          cfg.Tiles,
		ShardWorkers:   cfg.ShardWorkers,
		Telemetry:      cfg.Telemetry,
	}
	if cfg.MaxMessageDelay > 0 {
		spec.MaxDelay = sim.FromDuration(cfg.MaxMessageDelay)
	}
	if cfg.PostmortemPath != "" {
		// The dump's ring section needs retained history.
		spec.TraceRing = 4096
	}
	run, err := harness.Build(spec)
	if err != nil {
		return nil, err
	}
	return &Simulation{run: run, alg: cfg.Algorithm}, nil
}

// protocolFactory resolves an Algorithm through the registry; an unknown
// name errors with the closest registered name as a suggestion.
func protocolFactory(a Algorithm, topo Topology, recolorFirst bool) (func(core.NodeID) core.Protocol, error) {
	for _, e := range algorithmRegistry {
		if e.Name == a {
			return e.New(topo, recolorFirst), nil
		}
	}
	if near := nearestAlgorithm(a); near != "" {
		return nil, fmt.Errorf("lme: unknown algorithm %q (did you mean %q?)", a, near)
	}
	return nil, fmt.Errorf("lme: unknown algorithm %q (known: %v)", a, Algorithms())
}

// nearestAlgorithm returns the registered name closest to a by edit
// distance, or "" when nothing is plausibly close.
func nearestAlgorithm(a Algorithm) Algorithm {
	best, bestDist := Algorithm(""), len(a)/2+2
	names := Algorithms()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] }) // deterministic tie-break
	for _, name := range names {
		if d := editDistance(string(a), string(name)); d < bestDist {
			best, bestDist = name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// RunFor advances the simulation by d of virtual time, then reports any
// safety violation or scheduler error.
func (s *Simulation) RunFor(d time.Duration) error {
	return s.run.RunFor(sim.FromDuration(d))
}

// RunContext is RunFor with cooperative cancellation: the run aborts with
// ctx's error at the next slice of virtual time once ctx is done. The
// event sequence is identical to RunFor per seed.
func (s *Simulation) RunContext(ctx context.Context, d time.Duration) error {
	return s.run.RunContext(ctx, sim.FromDuration(d))
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration {
	return sim.ToDuration(s.run.World.Now())
}

// checkNodes validates node IDs against the world size.
func (s *Simulation) checkNodes(ids ...int) error {
	for _, id := range ids {
		if id < 0 || id >= s.run.World.N() {
			return fmt.Errorf("lme: no node %d (n=%d)", id, s.run.World.N())
		}
	}
	return nil
}

// Crash fails node id at virtual time at (measured from the start of the
// run). Crashed nodes silently stop, per the paper's model.
func (s *Simulation) Crash(id int, at time.Duration) error {
	if err := s.checkNodes(id); err != nil {
		return err
	}
	s.run.World.CrashAt(core.NodeID(id), sim.FromDuration(at))
	return nil
}

// Jump relocates node id at virtual time at; the node is flagged moving
// for settle.
func (s *Simulation) Jump(id int, dest Point, at, settle time.Duration) error {
	if err := s.checkNodes(id); err != nil {
		return err
	}
	s.run.World.JumpAt(core.NodeID(id), dest, sim.FromDuration(settle), sim.FromDuration(at))
	return nil
}

// Roam attaches random-waypoint mobility (speed in plane units/second) to
// the given nodes until the given virtual time. It starts the simulation
// (mobility draws from the run's random stream), so a failing protocol
// initialisation surfaces here.
func (s *Simulation) Roam(ids []int, speed float64, until time.Duration) error {
	if err := s.checkNodes(ids...); err != nil {
		return err
	}
	if err := s.run.Start(); err != nil {
		return err
	}
	nodeIDs := make([]core.NodeID, len(ids))
	for i, id := range ids {
		nodeIDs[i] = core.NodeID(id)
	}
	wp := manet.Waypoint{
		Speed:    speed,
		PauseMin: 20_000,
		PauseMax: 200_000,
		Until:    sim.FromDuration(until),
	}
	wp.Attach(s.run.World, nodeIDs)
	return nil
}

// Results summarises a run.
type Results struct {
	// SafetyViolations counts breaches of local mutual exclusion; any
	// nonzero value is a bug in the algorithm under test.
	SafetyViolations int
	// ResponseCount/Mean/P95/Max summarise hungry→eating latencies of
	// nodes that stayed static for the interval (Definition 1).
	ResponseCount                          int
	ResponseMean, ResponseP95, ResponseMax time.Duration
	// TotalMeals counts critical-section entries across all nodes.
	TotalMeals int
	// MessagesSent counts protocol messages handed to the transport.
	MessagesSent uint64
	// Starved lists nodes hungry for the final fifth of the run.
	Starved []int
}

// String renders the results compactly.
func (r Results) String() string {
	return fmt.Sprintf("violations=%d meals=%d response{n=%d mean=%v p95=%v max=%v} starved=%v",
		r.SafetyViolations, r.TotalMeals, r.ResponseCount,
		r.ResponseMean, r.ResponseP95, r.ResponseMax, r.Starved)
}

// Results snapshots the run's metrics.
func (s *Simulation) Results() Results {
	st := s.run.Recorder.Stats()
	now := s.run.World.Now()
	var starved []int
	for _, id := range s.run.Prober.Blocked(now, now/5) {
		starved = append(starved, int(id))
	}
	total := 0
	for i := 0; i < s.run.World.N(); i++ {
		total += s.run.Recorder.EatCount(core.NodeID(i))
	}
	return Results{
		SafetyViolations: len(s.run.Checker.Violations()),
		ResponseCount:    st.Count,
		ResponseMean:     sim.ToDuration(st.Mean),
		ResponseP95:      sim.ToDuration(st.P95),
		ResponseMax:      sim.ToDuration(st.Max),
		TotalMeals:       total,
		MessagesSent:     s.run.World.MessagesSent(),
		Starved:          starved,
	}
}

// EatCount reports how many times node id entered its critical section.
func (s *Simulation) EatCount(id int) int {
	return s.run.Recorder.EatCount(core.NodeID(id))
}

// NodeState reports the current dining state name of node id.
func (s *Simulation) NodeState(id int) string {
	return s.run.World.State(core.NodeID(id)).String()
}

// Neighbors returns the current neighbour IDs of node id.
func (s *Simulation) Neighbors(id int) []int {
	nbrs := s.run.World.Neighbors(core.NodeID(id))
	out := make([]int, len(nbrs))
	for i, nb := range nbrs {
		out[i] = int(nb)
	}
	return out
}

// ResponseStats exposes the full response-time summary.
func (s *Simulation) ResponseStats() metrics.Stats { return s.run.Recorder.Stats() }

// Gantt renders the last window of the run as an ASCII eating timeline,
// one row per node, width columns wide. Unavailable (empty string) in
// FoldSpans mode, which retains no interval history.
func (s *Simulation) Gantt(window time.Duration, width int) string {
	if s.run.Timeline == nil {
		return ""
	}
	now := s.run.World.Now()
	from := now - sim.FromDuration(window)
	if from < 0 {
		from = 0
	}
	return s.run.Timeline.Gantt(s.run.World.N(), from, now, width)
}

// SetTracer installs a human-readable renderer over the typed event
// stream: state transitions, link changes, mobility, crashes, doorway
// crossings, recolouring and protocol notes. Per-message traffic is
// deliberately excluded to keep the rendering readable; subscribe to
// Bus() (or write a JSONL trace) for the full stream. Call before RunFor.
func (s *Simulation) SetTracer(f func(at time.Duration, line string)) {
	s.run.World.Bus().Subscribe(func(e trace.Event) {
		f(sim.ToDuration(e.At), e.String())
	}, trace.KindState, trace.KindLinkUp, trace.KindLinkDown,
		trace.KindMoveStart, trace.KindMoveStop, trace.KindCrash,
		trace.KindDoorway, trace.KindRecolor, trace.KindNote)
}

// Bus exposes the run's typed event stream for subscribers and JSONL
// sinks. Attach before RunFor to observe the whole run.
func (s *Simulation) Bus() *trace.Bus { return s.run.World.Bus() }

// ReportSchema identifies the JSON layout of Report; bump on breaking
// changes so downstream diffing tools can refuse mixed comparisons.
// v2 added the spans section and the trace loss counters; v3 added the
// folded span aggregates (phase/attempt percentiles, per-node slice) and
// the response/link-delay quantile-sketch snapshots.
const ReportSchema = "lme/run/v3"

// Report is the machine-readable summary of a run: the telemetry object
// behind lmesim -json, designed to be schema-stable so CI and benchmark
// tooling can diff it across commits.
type Report struct {
	Schema string `json:"schema"`
	// Algorithm under test.
	Algorithm string `json:"algorithm"`
	// Nodes is the system size n.
	Nodes int `json:"nodes"`
	// SimulatedUS is the virtual time simulated, in microseconds.
	SimulatedUS int64 `json:"simulated_us"`
	// WallMS is the wall-clock run time in milliseconds (0 if the
	// caller did not measure it).
	WallMS float64 `json:"wall_ms"`
	// SchedEvents counts discrete-event executions; with WallMS it
	// yields EventsPerSec, the scheduler throughput.
	SchedEvents  uint64  `json:"sched_events"`
	EventsPerSec float64 `json:"events_per_sec"`

	Meals      int   `json:"meals"`
	Violations int   `json:"violations"`
	Starved    []int `json:"starved"`

	Response ResponseReport `json:"response"`
	Messages MessageReport  `json:"messages"`

	// LinkDelay is the delivery-delay histogram; its max empirically
	// validates the ν bound. LinkDelaySketch carries the same
	// distribution as a mergeable quantile sketch (exact
	// count/sum/min/max, quantiles to ±1% relative error).
	LinkDelay       metrics.HistogramSnapshot `json:"link_delay"`
	LinkDelaySketch metrics.SketchSnapshot    `json:"link_delay_sketch"`

	// Spans is the span layer's fold of the run: CS-attempt and phase
	// aggregates plus the per-crash failure-locality attribution.
	Spans *span.Summary `json:"spans,omitempty"`

	// SpanNodes is the per-node slice of the span fold: attempts, meals,
	// crashes, demotions and busy time per node. O(nodes) memory in both
	// retained and streaming modes.
	SpanNodes []span.NodeAggregate `json:"span_nodes,omitempty"`

	// Trace reports event-stream integrity: how much of the run the
	// observability layer actually saw.
	Trace TraceReport `json:"trace"`

	// Counters is the raw registry dump for everything not broken out
	// above.
	Counters map[string]uint64 `json:"counters"`
}

// TraceReport counts events the trace layer lost: ring slots recycled
// before anyone read them and events a failed JSONL sink never wrote.
type TraceReport struct {
	RingOverwritten uint64 `json:"ring_overwritten"`
	SinkDropped     uint64 `json:"sink_dropped"`
}

// ResponseReport summarises hungry→eating latencies (Definition 1).
// Sketch is the full latency distribution as a mergeable quantile
// sketch: pooling reports across runs (or shards of one run) is a
// bucket-count addition with no loss of accuracy.
type ResponseReport struct {
	Count  int                    `json:"count"`
	MeanUS int64                  `json:"mean_us"`
	P50US  int64                  `json:"p50_us"`
	P95US  int64                  `json:"p95_us"`
	MaxUS  int64                  `json:"max_us"`
	Sketch metrics.SketchSnapshot `json:"sketch"`
}

// MessageReport summarises protocol traffic with per-type accounting.
type MessageReport struct {
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	BytesSent uint64 `json:"bytes_sent"`
	// PerMeal is messages sent per critical-section entry — the
	// paper's natural message-complexity measure.
	PerMeal float64 `json:"per_meal"`
	// ByType breaks traffic down by normalised message type name.
	ByType map[string]MessageTypeReport `json:"by_type"`
}

// MessageTypeReport is the per-message-type slice of a MessageReport.
type MessageTypeReport struct {
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped,omitempty"`
}

// Report assembles the machine-readable run summary. wall is the measured
// wall-clock duration of the run (pass 0 if unknown). Report finalises
// the span layer, so call it after the run is over.
func (s *Simulation) Report(wall time.Duration) Report {
	res := s.Results()
	reg := s.run.Registry
	st := s.run.Recorder.Stats()

	byType := make(map[string]MessageTypeReport)
	for name, v := range reg.CountersWithPrefix(metrics.PrefixSent) {
		t := byType[name]
		t.Sent = v
		byType[name] = t
	}
	for name, v := range reg.CountersWithPrefix(metrics.PrefixDelivered) {
		t := byType[name]
		t.Delivered = v
		byType[name] = t
	}
	for name, v := range reg.CountersWithPrefix(metrics.PrefixDropped) {
		t := byType[name]
		t.Dropped = v
		byType[name] = t
	}

	starved := res.Starved
	if starved == nil {
		starved = []int{}
	}
	snap := reg.Snapshot()
	s.run.FinalizeSpans()
	spanSum := s.run.Spans.Summary()
	bus := s.run.World.Bus()
	rep := Report{
		Schema:      ReportSchema,
		Algorithm:   string(s.alg),
		Nodes:       s.run.World.N(),
		SimulatedUS: int64(s.run.World.Now()),
		SchedEvents: s.run.World.Processed(),
		Meals:       res.TotalMeals,
		Violations:  res.SafetyViolations,
		Starved:     starved,
		Response: ResponseReport{
			Count:  st.Count,
			MeanUS: int64(st.Mean),
			P50US:  int64(st.P50),
			P95US:  int64(st.P95),
			MaxUS:  int64(st.Max),
			Sketch: s.run.Recorder.Sketch().Snapshot(),
		},
		Messages: MessageReport{
			Sent:      s.run.World.MessagesSent(),
			Delivered: s.run.World.MessagesDelivered(),
			Dropped:   reg.Counter(metrics.CtrDropped),
			BytesSent: reg.Counter(metrics.CtrBytesSent),
			PerMeal:   s.run.MessagesPerMeal(),
			ByType:    byType,
		},
		LinkDelay:       snap.Histograms[metrics.HistLinkDelay],
		LinkDelaySketch: snap.Sketches[metrics.HistLinkDelay],
		Spans:           &spanSum,
		SpanNodes:       s.run.Spans.NodeAggregates(),
		Trace: TraceReport{
			RingOverwritten: bus.Overwritten(),
			SinkDropped:     bus.SinkDropped(),
		},
		Counters: snap.Counters,
	}
	if wall > 0 {
		rep.WallMS = float64(wall.Microseconds()) / 1000
		rep.EventsPerSec = float64(rep.SchedEvents) / wall.Seconds()
	}
	return rep
}

// MetricsSnapshot freezes the run's counter/histogram registry (the
// -stats output).
func (s *Simulation) MetricsSnapshot() metrics.RegistrySnapshot {
	return s.run.Registry.Snapshot()
}

// WriteSpans finalises the span layer (closing attempts still open at
// the current instant) and writes one JSON span object per line —
// schema span.Schema. Call after the run is over.
func (s *Simulation) WriteSpans(w io.Writer) error {
	s.run.FinalizeSpans()
	return s.run.Spans.WriteJSONL(w)
}

// SpanSummary finalises the span layer and returns the attempt/phase
// aggregates and per-crash locality attribution.
func (s *Simulation) SpanSummary() span.Summary {
	s.run.FinalizeSpans()
	return s.run.Spans.Summary()
}

// TraceLoss reports how many events the trace layer lost (ring
// overwrites, failed sink writes).
func (s *Simulation) TraceLoss() TraceReport {
	bus := s.run.World.Bus()
	return TraceReport{RingOverwritten: bus.Overwritten(), SinkDropped: bus.SinkDropped()}
}

// EnableProgress attaches a live-telemetry heartbeat to the run: the
// harness ticks it at virtual-time slice boundaries, so heartbeats
// appear on the configured wall-clock interval while the simulation
// runs. Call before RunFor; call FlushProgress after the run to emit
// the closing record.
func (s *Simulation) EnableProgress(cfg ProgressConfig) {
	s.prog = s.run.AttachProgress(progress.Config{
		Interval: cfg.Every,
		Human:    cfg.Human,
		JSONL:    cfg.JSONL,
		Label:    cfg.Label,
	})
}

// FlushProgress emits the final progress record and reports the first
// heartbeat write error, if any. No-op when EnableProgress was never
// called.
func (s *Simulation) FlushProgress() error {
	if s.prog == nil {
		return nil
	}
	s.prog.Final()
	return s.prog.Err()
}
