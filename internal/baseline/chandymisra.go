// Package baseline implements the comparison algorithms of the paper's
// Table 1: the hygienic dining-philosophers algorithm of Chandy and Misra
// (failure locality n), a Choy–Singh-style doubly-doored fork-collection
// algorithm for static networks with a fixed colouring (failure locality
// 4), and the NoNotify ablation of Algorithm 2 (Tsay–Bagrodia-like
// dynamics, quadratic static response time).
package baseline

import (
	"fmt"
	"sort"

	"lme/internal/core"
)

// cmReq is a Chandy–Misra request token.
type cmReq struct{}

// cmFork transfers a fork (always cleaned in transit).
type cmFork struct{}

// ChandyMisra is one node of the hygienic dining philosophers algorithm
// [Chandy & Misra 1984]: forks are clean or dirty; a hungry node yields a
// fork only if it is dirty; eating dirties all forks. The initial
// orientation (smaller ID holds a dirty fork) is acyclic, which gives
// progress; a single crash can stall a chain across the whole system —
// failure locality n, the paper's point of comparison.
//
// MANET adaptation (DESIGN.md §1 S10): a link creation places a dirty fork
// at the static endpoint and the request token at the mover; link failure
// destroys both; an eating node that gains a link while moving demotes
// itself to hungry, the same safety rule the paper's algorithms use.
type ChandyMisra struct {
	env core.Env

	state core.State

	// fork[j] — holds the fork shared with j; dirty[j] — that fork is
	// dirty; reqToken[j] — holds the request token for that fork. The
	// key set of fork is the neighbour set.
	fork, dirty, reqToken map[core.NodeID]bool
}

var _ core.Protocol = (*ChandyMisra)(nil)

// NewChandyMisra creates a node.
func NewChandyMisra() *ChandyMisra {
	return &ChandyMisra{
		state:    core.Thinking,
		fork:     make(map[core.NodeID]bool),
		dirty:    make(map[core.NodeID]bool),
		reqToken: make(map[core.NodeID]bool),
	}
}

// Init implements core.Protocol.
func (n *ChandyMisra) Init(env core.Env) {
	n.env = env
	me := env.ID()
	for _, j := range env.Neighbors() {
		holds := me < j
		n.fork[j] = holds
		n.dirty[j] = holds // all forks start dirty
		n.reqToken[j] = !holds
	}
}

// State implements core.Protocol.
func (n *ChandyMisra) State() core.State { return n.state }

// HasFork reports fork possession for neighbour j (for tests).
func (n *ChandyMisra) HasFork(j core.NodeID) bool { return n.fork[j] }

// BecomeHungry implements core.Protocol.
func (n *ChandyMisra) BecomeHungry() {
	if n.state != core.Thinking {
		return
	}
	n.setState(core.Hungry)
	n.requestMissing()
	n.maybeEat()
}

// ExitCS implements core.Protocol: dirty every fork and satisfy deferred
// requests.
func (n *ChandyMisra) ExitCS() {
	if n.state != core.Eating {
		return
	}
	n.setState(core.Thinking)
	for _, j := range n.sorted(n.fork) {
		n.dirty[j] = true
	}
	n.serveDeferred()
}

// OnMessage implements core.Protocol.
func (n *ChandyMisra) OnMessage(from core.NodeID, msg core.Message) {
	if _, ok := n.fork[from]; !ok {
		return
	}
	switch msg.(type) {
	case cmReq:
		n.reqToken[from] = true
		n.maybeYield(from)
	case cmFork:
		n.fork[from] = true
		n.dirty[from] = false
		n.maybeEat()
	}
}

// OnLinkUp implements core.Protocol (MANET adaptation).
func (n *ChandyMisra) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	if iAmMoving {
		n.fork[peer] = false
		n.dirty[peer] = false
		n.reqToken[peer] = true
		if n.state == core.Eating {
			n.setState(core.Hungry)
		}
		if n.state == core.Hungry {
			n.requestMissing()
		}
		return
	}
	n.fork[peer] = true
	n.dirty[peer] = true
	n.reqToken[peer] = false
}

// OnLinkDown implements core.Protocol.
func (n *ChandyMisra) OnLinkDown(j core.NodeID) {
	delete(n.fork, j)
	delete(n.dirty, j)
	delete(n.reqToken, j)
	n.maybeEat()
}

// requestMissing sends the request token for every missing fork.
func (n *ChandyMisra) requestMissing() {
	for _, j := range n.sorted(n.fork) {
		if !n.fork[j] && n.reqToken[j] {
			n.reqToken[j] = false
			n.env.Send(j, cmReq{})
		}
	}
}

// maybeYield applies the hygienic rule to a pending request from j.
func (n *ChandyMisra) maybeYield(j core.NodeID) {
	if !n.fork[j] || !n.reqToken[j] {
		return
	}
	switch n.state {
	case core.Eating:
		return // defer until exit
	case core.Hungry:
		if !n.dirty[j] {
			return // clean fork is kept while hungry
		}
	case core.Thinking:
		// always yield
	}
	n.fork[j] = false
	n.dirty[j] = false
	n.env.Send(j, cmFork{})
	// A hungry node that yielded a dirty fork immediately wants it
	// back.
	if n.state == core.Hungry {
		n.reqToken[j] = false
		n.env.Send(j, cmReq{})
	}
}

// serveDeferred yields every dirty requested fork (after eating).
func (n *ChandyMisra) serveDeferred() {
	for _, j := range n.sorted(n.fork) {
		n.maybeYield(j)
	}
}

func (n *ChandyMisra) maybeEat() {
	if n.state != core.Hungry {
		return
	}
	for _, have := range n.fork {
		if !have {
			return
		}
	}
	n.setState(core.Eating)
}

func (n *ChandyMisra) setState(s core.State) {
	if n.state == s {
		return
	}
	n.state = s
	n.env.SetState(s)
}

func (n *ChandyMisra) sorted(m map[core.NodeID]bool) []core.NodeID {
	out := make([]core.NodeID, 0, len(m))
	for j := range m {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String identifies the algorithm in tables.
func (n *ChandyMisra) String() string { return fmt.Sprintf("chandy-misra[%d]", n.env.ID()) }
