package baseline_test

import (
	"testing"

	"lme/internal/baseline"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/harness"
	"lme/internal/workload"
)

func newCM(core.NodeID) core.Protocol { return baseline.NewChandyMisra() }

func TestChandyMisraStaticLineLiveness(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        1,
		Points:      harness.LinePoints(10, 0.1),
		Radius:      0.11,
		NewProtocol: newCM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(3_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
	for i := 0; i < 10; i++ {
		if c := r.Recorder.EatCount(core.NodeID(i)); c < 10 {
			t.Fatalf("node %d ate only %d times", i, c)
		}
	}
}

func TestChandyMisraCliqueContention(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        2,
		Points:      harness.CliquePoints(7),
		Radius:      0.2,
		NewProtocol: newCM,
		Workload: workload.Config{
			EatTime:  2_000,
			ThinkMax: 1_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(3_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
}

func TestChandyMisraGeometricSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		pts, err := harness.GeometricPoints(24, 0.25, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := harness.Build(harness.Spec{
			Seed:        seed,
			Points:      pts,
			Radius:      0.25,
			NewProtocol: newCM,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RunFor(4_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok, missing := r.EveryoneAte(); !ok {
			t.Fatalf("seed %d: starved nodes %v", seed, missing)
		}
	}
}

func TestChandyMisraMobilitySafe(t *testing.T) {
	pts, err := harness.GeometricPoints(12, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := harness.Build(harness.Spec{
		Seed:        3,
		Points:      pts,
		Radius:      0.3,
		NewProtocol: newCM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.World.JumpAt(2, graph.Point{X: 0.9, Y: 0.9}, 20_000, 1_000_000)
	r.World.JumpAt(2, pts[2], 20_000, 2_500_000)
	if err := r.RunFor(5_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
}

// TestChandyMisraCrashPropagates demonstrates the failure-locality-n
// behaviour the paper contrasts against: on a line with a saturated
// workload, a crash while holding forks eventually stalls a long chain.
func TestChandyMisraCrashPropagates(t *testing.T) {
	const n = 10
	r, err := harness.Build(harness.Spec{
		Seed:        4,
		Points:      harness.LinePoints(n, 0.1),
		Radius:      0.11,
		NewProtocol: newCM,
		Workload: workload.Config{
			EatTime: 3_000, // saturated: think time 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash node 0 mid-run: in the saturated hygienic algorithm the
	// clean forks pile up toward the crash and the whole chain starves.
	r.World.CrashAt(0, 1_000_000)
	if err := r.RunFor(15_000_000); err != nil {
		t.Fatal(err)
	}
	starved := r.Prober.StarvedSince(10_000_000)
	if len(starved) == 0 {
		t.Skip("no starvation observed at this seed (timing-dependent)")
	}
	g := r.World.CommGraph()
	radius := 0
	for _, id := range starved {
		if d := g.Distances(0)[int(id)]; d > radius {
			radius = d
		}
	}
	if radius <= 2 {
		t.Logf("blocked radius only %d at this seed", radius)
	}
}

func TestChoySinghStaticLiveness(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  []graph.Point
	}{
		{name: "line", pts: harness.LinePoints(9, 0.1)},
		{name: "grid", pts: harness.GridPoints(3, 3, 0.1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := graph.UnitDisk(tc.pts, 0.11)
			r, err := harness.Build(harness.Spec{
				Seed:        5,
				Points:      tc.pts,
				Radius:      0.11,
				NewProtocol: baseline.NewChoySingh(g),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.RunFor(3_000_000); err != nil {
				t.Fatal(err)
			}
			if ok, missing := r.EveryoneAte(); !ok {
				t.Fatalf("starved nodes: %v", missing)
			}
		})
	}
}

func TestNoNotifyLiveness(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        6,
		Points:      harness.LinePoints(8, 0.1),
		Radius:      0.11,
		NewProtocol: func(core.NodeID) core.Protocol { return baseline.NewNoNotify() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(4_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
}

// TestChandyMisraForkConservation: at any cut of the run, no edge's fork
// is duplicated (both-absent is legal — the fork may be in transit at the
// horizon).
func TestChandyMisraForkConservation(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        7,
		Points:      harness.GridPoints(3, 3, 0.1),
		Radius:      0.11,
		NewProtocol: newCM,
		Workload: workload.Config{
			EatTime:  2_000,
			ThinkMin: 50_000,
			ThinkMax: 60_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(5_000_000); err != nil {
		t.Fatal(err)
	}
	g := r.World.CommGraph()
	for _, e := range g.Edges() {
		a, okA := r.World.Protocol(core.NodeID(e[0])).(*baseline.ChandyMisra)
		b, okB := r.World.Protocol(core.NodeID(e[1])).(*baseline.ChandyMisra)
		if !okA || !okB {
			t.Fatal("protocol type")
		}
		if a.HasFork(core.NodeID(e[1])) && b.HasFork(core.NodeID(e[0])) {
			t.Fatalf("edge %v: fork duplicated", e)
		}
	}
}
