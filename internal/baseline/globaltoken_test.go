package baseline_test

import (
	"testing"

	"lme/internal/baseline"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/harness"
	"lme/internal/sim"
	"lme/internal/workload"
)

// globalChecker asserts at most one eater in the WHOLE system (the global
// mutual exclusion invariant, strictly stronger than the local one).
type globalChecker struct {
	eating     map[core.NodeID]bool
	violations int
}

func (c *globalChecker) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	if new == core.Eating {
		if len(c.eating) > 0 {
			c.violations++
		}
		c.eating[id] = true
		return
	}
	delete(c.eating, id)
}

func buildGlobal(t *testing.T, pts []graph.Point, radius float64, wl workload.Config) (*harness.Run, *globalChecker) {
	t.Helper()
	g := graph.UnitDisk(pts, radius)
	r, err := harness.Build(harness.Spec{
		Seed:        1,
		Points:      pts,
		Radius:      radius,
		NewProtocol: baseline.NewGlobalToken(g),
		Workload:    wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	gc := &globalChecker{eating: make(map[core.NodeID]bool)}
	r.World.AddStateListener(gc)
	return r, gc
}

func TestGlobalTokenLineLiveness(t *testing.T) {
	r, gc := buildGlobal(t, harness.LinePoints(8, 0.1), 0.11, workload.Config{
		EatTime: 2_000, ThinkMax: 5_000,
	})
	if err := r.RunFor(4_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved: %v", missing)
	}
	if gc.violations != 0 {
		t.Fatalf("global exclusion violated %d times", gc.violations)
	}
}

func TestGlobalTokenGridGlobalExclusivity(t *testing.T) {
	r, gc := buildGlobal(t, harness.GridPoints(4, 4, 0.1), 0.11, workload.Config{
		EatTime: 2_000, // saturated
	})
	if err := r.RunFor(4_000_000); err != nil {
		t.Fatal(err)
	}
	if gc.violations != 0 {
		t.Fatalf("global exclusion violated %d times", gc.violations)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved: %v", missing)
	}
}

func TestGlobalTokenGeometric(t *testing.T) {
	pts, err := harness.GeometricPoints(20, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, gc := buildGlobal(t, pts, 0.3, workload.Config{EatTime: 2_000, ThinkMax: 4_000})
	if err := r.RunFor(5_000_000); err != nil {
		t.Fatal(err)
	}
	if gc.violations != 0 {
		t.Fatalf("global exclusion violated %d times", gc.violations)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved: %v", missing)
	}
}

// TestGlobalTokenThroughputCeiling: total meals cannot exceed the serial
// ceiling horizon/τ — the structural cost local mutual exclusion removes.
func TestGlobalTokenThroughputCeiling(t *testing.T) {
	const (
		horizon = sim.Time(4_000_000)
		eat     = sim.Time(2_000)
	)
	r, _ := buildGlobal(t, harness.GridPoints(4, 4, 0.1), 0.11, workload.Config{EatTime: eat})
	if err := r.RunFor(horizon); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < r.World.N(); i++ {
		total += r.Recorder.EatCount(core.NodeID(i))
	}
	if ceiling := int(horizon / eat); total > ceiling {
		t.Fatalf("global token produced %d meals > serial ceiling %d", total, ceiling)
	}
}
