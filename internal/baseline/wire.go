package baseline

import (
	"encoding/gob"
	"math/rand/v2"

	"lme/internal/core"
	"lme/internal/wire"
)

// Register the baselines' message types for the live runtime: explicit
// binary codecs (type IDs 0x0301–0x0304) on the hot path, gob retained
// as the differential-test oracle; see internal/lme1/wire.go for the
// layering rationale. (ChoySingh and NoNotify reuse lme1/lme2 messages,
// registered there.)
func init() {
	gob.Register(cmReq{})
	gob.Register(cmFork{})
	gob.Register(tokenReq{})
	gob.Register(tokenGrant{})

	empty := func(proto core.Message) func(b []byte) (core.Message, error) {
		return func(b []byte) (core.Message, error) {
			return proto, wire.NewReader(b).Done()
		}
	}
	nop := func(b []byte, _ core.Message) []byte { return b }

	wire.Register(wire.Codec{
		ID: 0x0301, Name: "baseline.cm_req", Proto: cmReq{},
		Append: nop, Decode: empty(cmReq{}),
		Sample: func(*rand.Rand) core.Message { return cmReq{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0302, Name: "baseline.cm_fork", Proto: cmFork{},
		Append: nop, Decode: empty(cmFork{}),
		Sample: func(*rand.Rand) core.Message { return cmFork{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0303, Name: "baseline.token_req", Proto: tokenReq{},
		Append: nop, Decode: empty(tokenReq{}),
		Sample: func(*rand.Rand) core.Message { return tokenReq{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0304, Name: "baseline.token_grant", Proto: tokenGrant{},
		Append: nop, Decode: empty(tokenGrant{}),
		Sample: func(*rand.Rand) core.Message { return tokenGrant{} },
	})
}
