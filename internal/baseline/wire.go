package baseline

import "encoding/gob"

// Register the baselines' message types for the live runtime's
// gob-encoded UDP payloads; see internal/lme1/wire.go for the rationale.
// (ChoySingh and NoNotify reuse lme1/lme2 messages, registered there.)
func init() {
	gob.Register(cmReq{})
	gob.Register(cmFork{})
	gob.Register(tokenReq{})
	gob.Register(tokenGrant{})
}
