package baseline

import (
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/lme1"
	"lme/internal/lme2"
)

// NewChoySingh builds the Choy–Singh-style static baseline [9]: Algorithm
// 1's fork collection behind its double doorway with a fixed pre-computed
// legal colouring and the recolouring module never triggered (nodes never
// move in the static experiments this baseline is used for). This is
// precisely the structure the paper builds Algorithm 1 on, with failure
// locality 4 and response time polynomial in δ given an initial colouring.
//
// g must be the static communication graph; its greedy colouring supplies
// the initial colours (range ≤ δ+1), matching Choy–Singh's assumption of a
// pre-existing colouring.
func NewChoySingh(g *graph.Graph) func(core.NodeID) core.Protocol {
	colors := g.GreedyColoring(nil)
	return func(id core.NodeID) core.Protocol {
		return lme1.New(lme1.Config{
			Variant: lme1.VariantGreedy,
			InitialColor: func(id core.NodeID) int {
				return colors[int(id)]
			},
		})
	}
}

// NewNoNotify builds the Algorithm 2 ablation without the
// notification/switch-on-hungry mechanism. Without it, a thinking
// high-priority neighbour can interfere with an in-progress collection by
// becoming hungry later, which is what pushes the static response time
// from O(n) back toward the O(n²) of Tsay–Bagrodia (Theorem 26's
// discussion); experiment E3 measures exactly this gap.
func NewNoNotify() core.Protocol {
	return lme2.NewWithConfig(lme2.Config{Notify: false})
}
