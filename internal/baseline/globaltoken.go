package baseline

import (
	"sort"

	"lme/internal/core"
	"lme/internal/graph"
)

// tokenReq asks the token-holder side of the tree for the privilege.
type tokenReq struct{}

// tokenGrant passes the privilege token.
type tokenGrant struct{}

// GlobalToken is Raymond's tree-based token algorithm for GLOBAL mutual
// exclusion: at most one node in the whole system eats at a time. The
// paper's introduction contrasts local mutual exclusion with exactly this
// class of algorithms (e.g. Walter et al.'s token-based MANET mutex) —
// global exclusion trivially implies local exclusion but forfeits all
// spatial reuse. Experiment E11 measures that locality dividend.
//
// The privilege token starts at the tree root (node 0); each node keeps a
// pointer toward the token along a BFS spanning tree of the initial
// communication graph. Like the Choy–Singh baseline this is a static-only
// comparator: topology changes are not supported.
type GlobalToken struct {
	env core.Env

	state core.State

	// holder points toward the token: self when held locally.
	holder core.NodeID
	// treeNbrs are this node's spanning-tree neighbours.
	treeNbrs []core.NodeID
	// reqQ is the FIFO of pending requesters (tree neighbours or self).
	reqQ []core.NodeID
	// asked dedups requests sent toward the holder.
	asked bool
}

var _ core.Protocol = (*GlobalToken)(nil)

// NewGlobalToken builds the factory for a system over the given static
// communication graph; the spanning tree is a BFS tree rooted at node 0,
// where the token starts.
func NewGlobalToken(g *graph.Graph) func(core.NodeID) core.Protocol {
	parent := bfsParents(g, 0)
	children := make(map[int][]int, g.N())
	for v := 1; v < g.N(); v++ {
		if p := parent[v]; p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	return func(id core.NodeID) core.Protocol {
		v := int(id)
		var nbrs []core.NodeID
		if v != 0 && parent[v] >= 0 {
			nbrs = append(nbrs, core.NodeID(parent[v]))
		}
		for _, c := range children[v] {
			nbrs = append(nbrs, core.NodeID(c))
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		holder := id
		if v != 0 {
			holder = core.NodeID(parent[v])
		}
		return &GlobalToken{
			state:    core.Thinking,
			holder:   holder,
			treeNbrs: nbrs,
		}
	}
}

// bfsParents returns the BFS parent of each node (-1 for the root and for
// unreachable nodes).
func bfsParents(g *graph.Graph, root int) []int {
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, g.N())
	visited[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// Init implements core.Protocol.
func (n *GlobalToken) Init(env core.Env) { n.env = env }

// State implements core.Protocol.
func (n *GlobalToken) State() core.State { return n.state }

// Holder exposes the token direction (for tests).
func (n *GlobalToken) Holder() core.NodeID { return n.holder }

// BecomeHungry implements core.Protocol.
func (n *GlobalToken) BecomeHungry() {
	if n.state != core.Thinking {
		return
	}
	n.setState(core.Hungry)
	n.enqueue(n.env.ID())
	n.assignPrivilege()
	n.makeRequest()
}

// ExitCS implements core.Protocol.
func (n *GlobalToken) ExitCS() {
	if n.state != core.Eating {
		return
	}
	n.setState(core.Thinking)
	n.assignPrivilege()
	n.makeRequest()
}

// OnMessage implements core.Protocol.
func (n *GlobalToken) OnMessage(from core.NodeID, msg core.Message) {
	switch msg.(type) {
	case tokenReq:
		n.enqueue(from)
		n.assignPrivilege()
		n.makeRequest()
	case tokenGrant:
		n.holder = n.env.ID()
		n.asked = false
		n.assignPrivilege()
		n.makeRequest()
	}
}

// OnLinkUp implements core.Protocol (static-only baseline: ignored).
func (n *GlobalToken) OnLinkUp(core.NodeID, bool) {}

// OnLinkDown implements core.Protocol (static-only baseline: ignored).
func (n *GlobalToken) OnLinkDown(core.NodeID) {}

// enqueue adds a requester once.
func (n *GlobalToken) enqueue(id core.NodeID) {
	for _, q := range n.reqQ {
		if q == id {
			return
		}
	}
	n.reqQ = append(n.reqQ, id)
}

// assignPrivilege is Raymond's rule: a holder not in the critical section
// serves the head of its queue — itself (eat) or a subtree (pass the
// token toward it).
func (n *GlobalToken) assignPrivilege() {
	if n.holder != n.env.ID() || n.state == core.Eating || len(n.reqQ) == 0 {
		return
	}
	head := n.reqQ[0]
	n.reqQ = n.reqQ[1:]
	if head == n.env.ID() {
		n.setState(core.Eating)
		return
	}
	n.holder = head
	n.asked = false
	n.env.Send(head, tokenGrant{})
	// Remaining local requests chase the token immediately.
	n.makeRequest()
}

// makeRequest asks the holder side for the token when needed.
func (n *GlobalToken) makeRequest() {
	if n.holder == n.env.ID() || len(n.reqQ) == 0 || n.asked {
		return
	}
	n.asked = true
	n.env.Send(n.holder, tokenReq{})
}

func (n *GlobalToken) setState(s core.State) {
	if n.state == s {
		return
	}
	n.state = s
	n.env.SetState(s)
}
