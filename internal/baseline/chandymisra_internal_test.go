package baseline

import (
	"testing"

	"lme/internal/core"
	"lme/internal/sim"
)

// fakeEnv drives a protocol directly for white-box tests.
type fakeEnv struct {
	id        core.NodeID
	neighbors []core.NodeID
	moving    bool
	state     core.State
	sent      []sent
}

type sent struct {
	to  core.NodeID
	msg core.Message
}

var _ core.Env = (*fakeEnv)(nil)

func (e *fakeEnv) ID() core.NodeID          { return e.id }
func (e *fakeEnv) Now() sim.Time            { return 0 }
func (e *fakeEnv) Neighbors() []core.NodeID { return append([]core.NodeID(nil), e.neighbors...) }
func (e *fakeEnv) Moving() bool             { return e.moving }
func (e *fakeEnv) SetState(s core.State)    { e.state = s }
func (e *fakeEnv) Send(to core.NodeID, m core.Message) {
	e.sent = append(e.sent, sent{to: to, msg: m})
}
func (e *fakeEnv) Broadcast(m core.Message) {
	for _, j := range e.neighbors {
		e.Send(j, m)
	}
}

func (e *fakeEnv) forksTo(to core.NodeID) int {
	n := 0
	for _, s := range e.sent {
		if s.to == to {
			if _, ok := s.msg.(cmFork); ok {
				n++
			}
		}
	}
	return n
}

func newCMNode(id core.NodeID, neighbors ...core.NodeID) (*ChandyMisra, *fakeEnv) {
	env := &fakeEnv{id: id, neighbors: neighbors}
	n := NewChandyMisra()
	n.Init(env)
	return n, env
}

func TestCMInitialHygiene(t *testing.T) {
	n, _ := newCMNode(1, 0, 2)
	// Smaller ID holds a dirty fork; the other side holds the token.
	if n.fork[0] || !n.fork[2] {
		t.Fatalf("initial forks wrong: %v", n.fork)
	}
	if !n.dirty[2] {
		t.Fatal("initial fork not dirty")
	}
	if !n.reqToken[0] || n.reqToken[2] {
		t.Fatalf("initial tokens wrong: %v", n.reqToken)
	}
}

func TestCMThinkingYieldsDirtyFork(t *testing.T) {
	n, env := newCMNode(1, 2)
	n.OnMessage(2, cmReq{})
	if env.forksTo(2) != 1 {
		t.Fatal("thinking node kept a requested dirty fork")
	}
	if n.fork[2] || n.dirty[2] {
		t.Fatal("fork state not cleared after yield")
	}
}

func TestCMHungryKeepsCleanFork(t *testing.T) {
	// Node 2 misses forks from 0 and 1 and holds a dirty fork shared
	// with 3, so it stays hungry after the first fork arrives.
	n, env := newCMNode(2, 0, 1, 3)
	n.BecomeHungry() // requests 0's and 1's forks
	n.OnMessage(0, cmFork{})
	if n.State() != core.Hungry {
		t.Fatalf("state = %v, want hungry (still missing 1's fork)", n.State())
	}
	// 0 requests it back while we are hungry and it is clean: keep it.
	n.OnMessage(0, cmReq{})
	if env.forksTo(0) != 0 {
		t.Fatal("hungry node yielded a clean fork")
	}
	// But the dirty fork shared with 3 is yielded even while hungry —
	// and immediately re-requested.
	n.OnMessage(3, cmReq{})
	if env.forksTo(3) != 1 {
		t.Fatal("hungry node kept a requested dirty fork")
	}
	reqs := 0
	for _, s := range env.sent {
		if s.to == 3 {
			if _, ok := s.msg.(cmReq); ok {
				reqs++
			}
		}
	}
	if reqs != 1 {
		t.Fatalf("dirty yield not followed by a re-request (reqs to 3: %d)", reqs)
	}
}

func TestCMEatingDefersAllRequests(t *testing.T) {
	n, env := newCMNode(0, 1) // node 0 holds the single fork
	n.BecomeHungry()
	if n.State() != core.Eating {
		t.Fatalf("state = %v", n.State())
	}
	n.OnMessage(1, cmReq{})
	if env.forksTo(1) != 0 {
		t.Fatal("eating node yielded its fork")
	}
	n.ExitCS()
	if env.forksTo(1) != 1 {
		t.Fatal("deferred request not served at exit")
	}
}

func TestCMEatingDirtiesForks(t *testing.T) {
	n, _ := newCMNode(0, 1, 2)
	n.BecomeHungry()
	if n.State() != core.Eating {
		t.Fatalf("state = %v", n.State())
	}
	n.ExitCS()
	if !n.dirty[1] || !n.dirty[2] {
		t.Fatal("forks not dirtied by eating")
	}
}

func TestCMLinkChurn(t *testing.T) {
	n, env := newCMNode(1, 0)
	// Static side of a new link: fork arrives dirty with no token.
	n.OnLinkUp(5, false)
	if !n.fork[5] || !n.dirty[5] || n.reqToken[5] {
		t.Fatal("static link-up state wrong")
	}
	// Moving side: token, no fork; an eating mover demotes.
	n.fork[0] = true
	n.BecomeHungry()
	if n.State() != core.Eating {
		t.Fatalf("state = %v", n.State())
	}
	n.OnLinkUp(7, true)
	if n.State() != core.Hungry {
		t.Fatal("eating mover not demoted")
	}
	if n.fork[7] {
		t.Fatal("mover owns the new fork")
	}
	// The demoted mover immediately spends its request token on the
	// missing fork.
	reqsTo7 := 0
	for _, s := range env.sent {
		if s.to == 7 {
			if _, ok := s.msg.(cmReq); ok {
				reqsTo7++
			}
		}
	}
	if n.reqToken[7] || reqsTo7 != 1 {
		t.Fatalf("moving link-up state wrong (token=%v reqs=%d)", n.reqToken[7], reqsTo7)
	}
	// Link loss erases all edge state and may unblock.
	n.OnLinkDown(7)
	if _, ok := n.fork[7]; ok {
		t.Fatal("fork state survived link loss")
	}
	if n.State() != core.Eating {
		t.Fatalf("state = %v after losing the only missing fork", n.State())
	}
}

func TestCMRequestWithoutTokenIgnored(t *testing.T) {
	n, env := newCMNode(1, 2)
	// Receiving a request installs the token; a duplicate yield must
	// not occur once the fork is gone.
	n.OnMessage(2, cmReq{})
	n.OnMessage(2, cmReq{})
	if env.forksTo(2) != 1 {
		t.Fatalf("yielded %d forks for duplicate requests", env.forksTo(2))
	}
}
