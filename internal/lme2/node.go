// Package lme2 implements the second local mutual exclusion algorithm of
// the paper (Chapter 6, Algorithms 6–7): fork collection with dynamic
// priorities maintained by the link-reversal-style higher[] flags and the
// notification/switch mechanism, with no doorways and no colours. It has
// optimal failure locality 2 and response time O(n²) under mobility, and
// O(n) in static networks (Theorems 25–26) — the notification mechanism is
// what improves on the O(n²) of Tsay–Bagrodia in the static case.
//
// Two deviations from the printed pseudo-code, both documented in
// DESIGN.md §4:
//
//   - A thinking node always grants a fork request (the analogue of
//     Algorithm 1's "outside SD^f" disjunct); the printed guard would let
//     a thinking node that holds all its forks suspend a hungry
//     neighbour's request forever.
//   - A switch message that flips higher[j] while the receiver is hungry
//     triggers re-evaluation of the request sets (the analogue of the
//     colour-update re-evaluation in Algorithm 1).
package lme2

import (
	"fmt"
	"sort"

	"lme/internal/core"
	"lme/internal/trace"
)

// Config parameterises a node of Algorithm 2.
type Config struct {
	// Notify disables the notification/switch-on-hungry mechanism when
	// false — the ablation used by experiment E3 to show the mechanism
	// is what yields the linear static response time. Default true via
	// New.
	Notify bool
}

// msgNotification announces that the sender became hungry (Line 2).
type msgNotification struct{}

// msgSwitch lowers the sender's priority below the receiver (link
// reversal).
type msgSwitch struct{}

// msgReq requests the shared fork.
type msgReq struct{}

// msgFork transfers the shared fork; Flag set means the sender wants it
// back (Line 35).
type msgFork struct {
	Flag bool
}

// Node is one node's instance of Algorithm 2. It implements
// core.Protocol.
type Node struct {
	env core.Env
	cfg Config

	// emit publishes protocol diagnostics to the runtime's trace bus;
	// nil when the runtime does not implement trace.Emitter. wants is
	// the runtime's per-kind interest mask, consulted before formatting
	// diagnostics; set whenever emit is (always-true fallback).
	emit  func(trace.Event)
	wants func(trace.Kind) bool

	state core.State

	// higher[j] reports whether neighbour j currently has priority over
	// this node. At most one of higher_i[j], higher_j[i] is false at any
	// time; both true only while a switch message is in transit.
	higher map[core.NodeID]bool

	// at[j] — this node holds the fork shared with j. Key set = N.
	at map[core.NodeID]bool

	// nbrs mirrors the key set of at as a sorted ID slice, maintained
	// incrementally on link up/down so deterministic message emission
	// never sorts a fresh map snapshot.
	nbrs []core.NodeID

	// suspended is S.
	suspended map[core.NodeID]bool
}

var _ core.Protocol = (*Node)(nil)

// New creates a node of Algorithm 2 with the notification mechanism
// enabled.
func New() *Node { return NewWithConfig(Config{Notify: true}) }

// NewWithConfig creates a node with explicit configuration.
func NewWithConfig(cfg Config) *Node {
	return &Node{
		cfg:       cfg,
		state:     core.Thinking,
		higher:    make(map[core.NodeID]bool),
		at:        make(map[core.NodeID]bool),
		suspended: make(map[core.NodeID]bool),
	}
}

// Init implements core.Protocol: initially higher_i[j] holds iff
// ID[i] < ID[j], and the smaller ID owns the fork — an acyclic initial
// orientation.
func (n *Node) Init(env core.Env) {
	n.env = env
	if em, ok := env.(trace.Emitter); ok {
		n.emit = em.Emit
		n.wants = func(trace.Kind) bool { return true }
		if in, ok := env.(trace.Interest); ok {
			n.wants = in.Wants
		}
	}
	me := env.ID()
	n.nbrs = append(n.nbrs[:0], env.Neighbors()...) // copy: Neighbors is a view
	for _, j := range n.nbrs {
		n.higher[j] = me < j
		n.at[j] = me < j
	}
}

// State implements core.Protocol.
func (n *Node) State() core.State { return n.state }

// Higher reports the current priority flag for neighbour j (for tests).
func (n *Node) Higher(j core.NodeID) bool { return n.higher[j] }

// HasFork reports fork possession for neighbour j (for tests).
func (n *Node) HasFork(j core.NodeID) bool { return n.at[j] }

// BecomeHungry implements core.Protocol: Lines 1–5.
func (n *Node) BecomeHungry() {
	if n.state != core.Thinking {
		return
	}
	n.setState(core.Hungry)
	if n.cfg.Notify {
		n.env.Broadcast(msgNotification{})
	}
	n.maybeEat()
	if n.state == core.Eating {
		return
	}
	if n.allLowForks() {
		n.requestHighForks()
	} else {
		n.requestLowForks()
	}
}

// ExitCS implements core.Protocol: Lines 6–9 — reverse all edges (lower
// this node below every neighbour) and release the suspended requests.
func (n *Node) ExitCS() {
	if n.state != core.Eating {
		return
	}
	n.setState(core.Thinking)
	for _, j := range n.sortedNeighbors() {
		if !n.higher[j] {
			n.env.Send(j, msgSwitch{})
			n.higher[j] = true
		}
	}
	for _, j := range n.sortedSuspended() {
		n.sendFork(j)
	}
}

// OnMessage implements core.Protocol.
func (n *Node) OnMessage(from core.NodeID, msg core.Message) {
	if _, isNeighbor := n.at[from]; !isNeighbor {
		return
	}
	switch m := msg.(type) {
	case msgReq:
		n.onReq(from)
	case msgFork:
		n.onFork(from, m.Flag)
	case msgNotification:
		n.onNotification(from)
	case msgSwitch:
		n.onSwitch(from)
	default:
		n.tracef("unknown message %T from %d", msg, from)
	}
}

// onReq is Lines 10–14, with the thinking-node grant (see package doc).
func (n *Node) onReq(j core.NodeID) {
	if !n.at[j] {
		return // fork already in transit to j
	}
	thinking := n.state == core.Thinking
	switch {
	case !n.higher[j] && (!n.allLowForks() || thinking):
		n.sendFork(j)
	case n.higher[j] && (!n.allForks() || thinking):
		n.sendFork(j)
		n.releaseHighForks()
	default:
		n.suspended[j] = true
	}
}

// onFork is Lines 15–21.
func (n *Node) onFork(j core.NodeID, flag bool) {
	n.at[j] = true
	if n.state == core.Thinking {
		if flag {
			n.sendFork(j)
		}
		return
	}
	n.maybeEat()
	if n.allLowForks() {
		if flag {
			n.suspended[j] = true
		}
		n.requestHighForks()
	} else if flag {
		n.sendFork(j)
	}
}

// onNotification is Lines 22–25: a thinking node with priority over the
// newly hungry neighbour reverses all its edges, so it cannot interfere
// later. This mechanism is what yields the O(n) static response time
// (Theorem 26).
func (n *Node) onNotification(j core.NodeID) {
	if n.state != core.Thinking || n.higher[j] {
		return
	}
	for _, k := range n.sortedNeighbors() {
		if !n.higher[k] {
			n.env.Send(k, msgSwitch{})
			n.higher[k] = true
		}
	}
}

// onSwitch is Lines 26–27 plus the hungry re-evaluation (see package
// doc): j lowered itself below this node, which may newly satisfy
// all-low-forks.
func (n *Node) onSwitch(j core.NodeID) {
	n.higher[j] = false
	if n.state != core.Hungry {
		return
	}
	if n.allLowForks() {
		n.requestHighForks()
	}
}

// OnLinkUp implements core.Protocol: Algorithm 7.
func (n *Node) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	n.nbrs = core.InsertID(n.nbrs, peer)
	if iAmMoving {
		n.onLinkUpMoving(peer)
	} else {
		// Lines 40–41: the static side owns the new fork and has
		// priority over the mover.
		n.at[peer] = true
		n.higher[peer] = false
	}
}

// onLinkUpMoving is Lines 42–46: the mover yields the fork, demotes
// itself out of the critical section if necessary, and reverses all its
// edges.
func (n *Node) onLinkUpMoving(j core.NodeID) {
	n.at[j] = false
	n.higher[j] = true
	if n.state == core.Eating {
		// Line 44's safety demotion. The span layer counts the
		// eating→hungry transition itself; the note names the newcomer
		// that caused it, which the state event cannot carry.
		n.tracef("demoted: yielded fork to static neighbour %d", j)
		n.setState(core.Hungry)
	}
	for _, k := range n.sortedNeighbors() {
		if k != j && !n.higher[k] {
			n.env.Send(k, msgSwitch{})
			n.higher[k] = true
		}
	}
	if n.state == core.Hungry {
		// Restart collection under the new orientation: every fork
		// is now a high fork unless a switch arrives.
		if n.allLowForks() {
			n.requestHighForks()
		} else {
			n.requestLowForks()
		}
	}
}

// OnLinkDown implements core.Protocol: Lines 47–48 plus fork destruction
// and the progress re-evaluation the departure may enable.
func (n *Node) OnLinkDown(j core.NodeID) {
	n.nbrs = core.RemoveID(n.nbrs, j)
	delete(n.at, j)
	delete(n.higher, j)
	delete(n.suspended, j)
	if n.state != core.Hungry {
		return
	}
	n.maybeEat()
	if n.state == core.Hungry && n.allLowForks() {
		n.requestHighForks()
	}
}

// maybeEat enters the critical section when hungry with every fork.
func (n *Node) maybeEat() {
	if n.state == core.Hungry && n.allForks() {
		n.setState(core.Eating)
	}
}

func (n *Node) allForks() bool {
	for _, have := range n.at {
		if !have {
			return false
		}
	}
	return true
}

// allLowForks checks forks shared with higher-priority neighbours.
func (n *Node) allLowForks() bool {
	for j, have := range n.at {
		if !have && n.higher[j] {
			return false
		}
	}
	return true
}

// requestLowForks is Lines 28–30.
func (n *Node) requestLowForks() {
	for _, j := range n.sortedNeighbors() {
		if n.higher[j] && !n.at[j] {
			n.env.Send(j, msgReq{})
		}
	}
}

// requestHighForks is Lines 31–33.
func (n *Node) requestHighForks() {
	for _, j := range n.sortedNeighbors() {
		if !n.higher[j] && !n.at[j] {
			n.env.Send(j, msgReq{})
		}
	}
}

// sendFork is Lines 34–36.
func (n *Node) sendFork(j core.NodeID) {
	if !n.at[j] {
		return
	}
	flag := n.higher[j] && n.state == core.Hungry
	n.env.Send(j, msgFork{Flag: flag})
	n.at[j] = false
	delete(n.suspended, j)
}

// releaseHighForks is Lines 37–39.
func (n *Node) releaseHighForks() {
	for _, j := range n.sortedSuspended() {
		if !n.higher[j] && n.at[j] {
			n.sendFork(j)
		}
	}
}

func (n *Node) setState(s core.State) {
	if n.state == s {
		return
	}
	n.state = s
	n.env.SetState(s)
}

// sortedNeighbors returns the key set of at (= N) in ID order: the node's
// incrementally maintained adjacency cache, a read-only view valid until
// the next link change.
func (n *Node) sortedNeighbors() []core.NodeID {
	return n.nbrs
}

func (n *Node) sortedSuspended() []core.NodeID {
	out := make([]core.NodeID, 0, len(n.suspended))
	for j := range n.suspended {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tracef publishes a free-form protocol diagnostic on the trace bus.
func (n *Node) tracef(format string, args ...any) {
	if n.emit == nil || !n.wants(trace.KindNote) {
		return
	}
	n.emit(trace.Event{Kind: trace.KindNote, Peer: trace.NoNode, Detail: fmt.Sprintf(format, args...)})
}
