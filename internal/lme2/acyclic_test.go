package lme2_test

import (
	"testing"

	"lme/internal/core"
	"lme/internal/harness"
	"lme/internal/lme2"
	"lme/internal/workload"
)

// TestPriorityGraphAcyclic verifies Lemma 24 empirically: at any cut of
// the execution, the priority graph G — edge directed from the
// lower-priority endpoint to the higher-priority one, with both-true
// higher flags (a switch in transit) treated as an undetermined edge — is
// acyclic. Acyclicity of G is what makes the rank of Lemma 8 well-defined
// and hence underpins the liveness proof.
func TestPriorityGraphAcyclic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		pts, err := harness.GeometricPoints(18, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := harness.Build(harness.Spec{
			Seed:        seed,
			Points:      pts,
			Radius:      0.3,
			NewProtocol: newNode,
			Workload:    workload.Config{EatTime: 3_000, ThinkMax: 5_000},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Check at several cuts of the run, not just the end.
		for cut := 0; cut < 4; cut++ {
			if err := r.RunFor(700_000); err != nil {
				t.Fatal(err)
			}
			if cycle := priorityCycle(r); cycle != nil {
				t.Fatalf("seed %d cut %d: priority cycle %v", seed, cut, cycle)
			}
		}
	}
}

// priorityCycle returns a cycle in the determined part of the priority
// graph, or nil.
func priorityCycle(r *harness.Run) []int {
	g := r.World.CommGraph()
	n := g.N()
	adj := make([][]int, n)
	for _, e := range g.Edges() {
		a, okA := r.World.Protocol(core.NodeID(e[0])).(*lme2.Node)
		b, okB := r.World.Protocol(core.NodeID(e[1])).(*lme2.Node)
		if !okA || !okB {
			return []int{-1}
		}
		aHigher := a.Higher(core.NodeID(e[1])) // e[1] has priority over e[0]
		bHigher := b.Higher(core.NodeID(e[0]))
		switch {
		case aHigher && bHigher:
			// Switch in transit: orientation undetermined, skip.
		case aHigher:
			adj[e[0]] = append(adj[e[0]], e[1])
		case bHigher:
			adj[e[1]] = append(adj[e[1]], e[0])
		default:
			// Both claim priority — a protocol bug.
			return []int{e[0], e[1]}
		}
	}
	// DFS cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, n)
	var stack []int
	var visit func(v int) []int
	visit = func(v int) []int {
		color[v] = grey
		stack = append(stack, v)
		for _, u := range adj[v] {
			if color[u] == grey {
				return append(append([]int(nil), stack...), u)
			}
			if color[u] == white {
				if c := visit(u); c != nil {
					return c
				}
			}
		}
		color[v] = black
		stack = stack[:len(stack)-1]
		return nil
	}
	for v := 0; v < n; v++ {
		if color[v] == white {
			if c := visit(v); c != nil {
				return c
			}
		}
	}
	return nil
}
