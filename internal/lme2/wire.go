package lme2

import (
	"encoding/gob"
	"math/rand/v2"

	"lme/internal/core"
	"lme/internal/wire"
)

// Register the protocol's message types for the live runtime: explicit
// binary codecs (type IDs 0x0201–0x0204) on the hot path, gob retained
// as the differential-test oracle; see internal/lme1/wire.go for the
// layering rationale.
func init() {
	gob.Register(msgNotification{})
	gob.Register(msgSwitch{})
	gob.Register(msgReq{})
	gob.Register(msgFork{})

	wire.Register(wire.Codec{
		ID: 0x0201, Name: "lme2.notification", Proto: msgNotification{},
		Append: func(b []byte, _ core.Message) []byte { return b },
		Decode: func(b []byte) (core.Message, error) {
			return msgNotification{}, wire.NewReader(b).Done()
		},
		Sample: func(*rand.Rand) core.Message { return msgNotification{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0202, Name: "lme2.switch", Proto: msgSwitch{},
		Append: func(b []byte, _ core.Message) []byte { return b },
		Decode: func(b []byte) (core.Message, error) {
			return msgSwitch{}, wire.NewReader(b).Done()
		},
		Sample: func(*rand.Rand) core.Message { return msgSwitch{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0203, Name: "lme2.req", Proto: msgReq{},
		Append: func(b []byte, _ core.Message) []byte { return b },
		Decode: func(b []byte) (core.Message, error) {
			return msgReq{}, wire.NewReader(b).Done()
		},
		Sample: func(*rand.Rand) core.Message { return msgReq{} },
	})
	wire.Register(wire.Codec{
		ID: 0x0204, Name: "lme2.fork", Proto: msgFork{},
		Append: func(b []byte, m core.Message) []byte {
			return wire.AppendBool(b, m.(msgFork).Flag)
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := msgFork{Flag: r.Bool()}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			return msgFork{Flag: rng.IntN(2) == 0}
		},
	})
}
