package lme2

import "encoding/gob"

// Register the protocol's message types for the live runtime's
// gob-encoded UDP payloads; see internal/lme1/wire.go for the rationale.
func init() {
	gob.Register(msgNotification{})
	gob.Register(msgSwitch{})
	gob.Register(msgReq{})
	gob.Register(msgFork{})
}
