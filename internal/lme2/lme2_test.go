package lme2_test

import (
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/harness"
	"lme/internal/lme2"
	"lme/internal/manet"
	"lme/internal/sim"
	"lme/internal/workload"
)

func newNode(core.NodeID) core.Protocol { return lme2.New() }

func TestStaticLineLiveness(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        1,
		Points:      harness.LinePoints(10, 0.1),
		Radius:      0.11,
		NewProtocol: newNode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(3_000_000); err != nil {
		t.Fatal(err)
	}
	ok, missing := r.EveryoneAte()
	if !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
	for i := 0; i < 10; i++ {
		if c := r.Recorder.EatCount(core.NodeID(i)); c < 10 {
			t.Fatalf("node %d ate only %d times", i, c)
		}
	}
}

func TestStaticCliqueContention(t *testing.T) {
	const n = 8
	r, err := harness.Build(harness.Spec{
		Seed:        2,
		Points:      harness.CliquePoints(n),
		Radius:      0.2,
		NewProtocol: newNode,
		Workload: workload.Config{
			EatTime:  2_000,
			ThinkMax: 1_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(3_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
}

func TestStaticGeometricManySeeds(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		pts, err := harness.GeometricPoints(28, 0.25, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := harness.Build(harness.Spec{
			Seed:        seed,
			Points:      pts,
			Radius:      0.25,
			NewProtocol: newNode,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.RunFor(4_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok, missing := r.EveryoneAte(); !ok {
			t.Fatalf("seed %d: starved nodes %v", seed, missing)
		}
	}
}

// TestOptimalFailureLocality is the headline property (Theorem 25): after
// a crash, every node at distance ≥ 3 from the crashed node keeps making
// progress. (Failure locality 2 allows blocking only within distance 2.)
func TestOptimalFailureLocality(t *testing.T) {
	const n = 11
	r, err := harness.Build(harness.Spec{
		Seed:        3,
		Points:      harness.LinePoints(n, 0.1),
		Radius:      0.11,
		NewProtocol: newNode,
		Workload: workload.Config{
			EatTime:  3_000,
			ThinkMax: 3_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const crash = core.NodeID(5)
	crashAt := sim.Time(1_000_000)
	r.World.CrashAt(crash, crashAt)
	if err := r.RunFor(10_000_000); err != nil {
		t.Fatal(err)
	}
	g := r.World.CommGraph()
	dist := g.Distances(int(crash))
	for i := 0; i < n; i++ {
		id := core.NodeID(i)
		if id == crash || dist[i] <= 2 {
			continue
		}
		if last, ok := r.Prober.LastEat(id); !ok || last < 8_000_000 {
			t.Errorf("node %d at distance %d stopped eating (last=%v, ok=%v) — failure locality > 2",
				id, dist[i], last, ok)
		}
	}
}

// TestOptimalFailureLocalityGeometric repeats the FL check on random
// geometric graphs across seeds.
func TestOptimalFailureLocalityGeometric(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		pts, err := harness.GeometricPoints(24, 0.22, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := harness.Build(harness.Spec{
			Seed:        seed,
			Points:      pts,
			Radius:      0.22,
			NewProtocol: newNode,
			Workload: workload.Config{
				EatTime:  3_000,
				ThinkMax: 3_000,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		const crash = core.NodeID(0)
		r.World.CrashAt(crash, 1_000_000)
		if err := r.RunFor(12_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := r.World.CommGraph()
		dist := g.Distances(int(crash))
		for i := 1; i < r.World.N(); i++ {
			if dist[i] <= 2 {
				continue
			}
			if last, ok := r.Prober.LastEat(core.NodeID(i)); !ok || last < 10_000_000 {
				t.Errorf("seed %d: node %d at distance %d stopped eating (last=%v)",
					seed, i, dist[i], last)
			}
		}
	}
}

// TestMobilityKeepsSafetyAndProgress: waypoint movers churn the topology;
// safety must never break and everyone keeps eating.
func TestMobilityKeepsSafetyAndProgress(t *testing.T) {
	pts, err := harness.GeometricPoints(16, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := harness.Build(harness.Spec{
		Seed:        4,
		Points:      pts,
		Radius:      0.3,
		NewProtocol: newNode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// A quarter of the nodes roam continuously.
	movers := []core.NodeID{1, 5, 9, 13}
	wp := manet.Waypoint{Speed: 0.4, PauseMin: 50_000, PauseMax: 300_000, Until: 6_000_000}
	wp.Attach(r.World, movers)
	if err := r.RunFor(8_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
}

// TestEatingMoverDemotesItself: an eating node that gains a link while
// moving must fall back to hungry (the Line 44 safety rule).
func TestEatingMoverDemotesItself(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        5,
		Points:      []graph.Point{{X: 0}, {X: 0.5}},
		Radius:      0.2,
		NewProtocol: newNode,
		Workload:    workload.Config{Participants: []core.NodeID{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	w := r.World
	sched := w.Scheduler()
	var demoted bool
	w.AddStateListener(core.ListenerFunc(func(id core.NodeID, old, new core.State, at sim.Time) {
		if id == 0 && old == core.Eating && new == core.Hungry {
			demoted = true
		}
	}))
	sched.At(0, func() { w.Protocol(0).BecomeHungry() }) // eats alone
	sched.At(10_000, func() { w.Protocol(1).BecomeHungry() })
	// Node 0, still eating, wanders next to node 1.
	w.JumpAt(0, graph.Point{X: 0.45}, 50_000, 100_000)
	if err := r.RunFor(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !demoted {
		t.Fatal("eating mover was not demoted to hungry on the new link")
	}
	// Both must eventually eat (one of them after the conflict resolves).
	if r.Recorder.EatCount(0) < 1 || r.Recorder.EatCount(1) < 1 {
		t.Fatalf("eat counts: %d, %d", r.Recorder.EatCount(0), r.Recorder.EatCount(1))
	}
}

// TestNotificationLowersThinkingNeighbor checks Lines 22–25 directly.
func TestNotificationLowersThinkingNeighbor(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        6,
		Points:      []graph.Point{{X: 0}, {X: 0.1}},
		Radius:      0.2,
		NewProtocol: newNode,
		Workload:    workload.Config{Participants: []core.NodeID{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	w := r.World
	// Node 0 has priority over node 1 initially (smaller ID). When 1
	// becomes hungry, thinking node 0 must reverse the edge.
	w.Scheduler().At(0, func() { w.Protocol(1).BecomeHungry() })
	if err := r.RunFor(500_000); err != nil {
		t.Fatal(err)
	}
	n0, ok := w.Protocol(0).(*lme2.Node)
	if !ok {
		t.Fatal("protocol type")
	}
	if !n0.Higher(1) {
		t.Fatal("thinking node 0 did not lower itself on notification")
	}
	if c := r.Recorder.EatCount(1); c < 1 {
		t.Fatalf("hungry node 1 never ate (eats=%d)", c)
	}
}

// TestNoNotifyStillSafeAndLive: the ablation (Notify=false) must keep
// safety and liveness — only the response-time shape changes (E3).
func TestNoNotifyStillSafeAndLive(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:   7,
		Points: harness.LinePoints(8, 0.1),
		Radius: 0.11,
		NewProtocol: func(core.NodeID) core.Protocol {
			return lme2.NewWithConfig(lme2.Config{Notify: false})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(4_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved nodes: %v", missing)
	}
}

// TestPriorityEdgeConsistency: after a long contended run, for each edge
// at most one endpoint believes it lacks priority... i.e. the two higher
// flags are never both false (both true only while a switch message is in
// transit, which cannot outlive a quiescent run).
func TestPriorityEdgeConsistency(t *testing.T) {
	r, err := harness.Build(harness.Spec{
		Seed:        8,
		Points:      harness.GridPoints(3, 3, 0.1),
		Radius:      0.11,
		NewProtocol: newNode,
		Workload: workload.Config{
			EatTime:  2_000,
			ThinkMin: 50_000, // long think → run quiesces
			ThinkMax: 60_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(5_000_000); err != nil {
		t.Fatal(err)
	}
	g := r.World.CommGraph()
	for _, e := range g.Edges() {
		a, okA := r.World.Protocol(core.NodeID(e[0])).(*lme2.Node)
		b, okB := r.World.Protocol(core.NodeID(e[1])).(*lme2.Node)
		if !okA || !okB {
			t.Fatal("protocol type")
		}
		if !a.Higher(core.NodeID(e[1])) && !b.Higher(core.NodeID(e[0])) {
			t.Fatalf("edge %v: both endpoints claim priority", e)
		}
		if a.HasFork(core.NodeID(e[1])) && b.HasFork(core.NodeID(e[0])) {
			t.Fatalf("edge %v: fork duplicated", e)
		}
	}
}
