package lme2

import (
	"testing"

	"lme/internal/core"
	"lme/internal/sim"
)

// fakeEnv drives a Node directly for white-box tests.
type fakeEnv struct {
	id        core.NodeID
	neighbors []core.NodeID
	moving    bool
	state     core.State
	sent      []sent
}

type sent struct {
	to  core.NodeID
	msg core.Message
}

var _ core.Env = (*fakeEnv)(nil)

func (e *fakeEnv) ID() core.NodeID          { return e.id }
func (e *fakeEnv) Now() sim.Time            { return 0 }
func (e *fakeEnv) Neighbors() []core.NodeID { return append([]core.NodeID(nil), e.neighbors...) }
func (e *fakeEnv) Moving() bool             { return e.moving }
func (e *fakeEnv) SetState(s core.State)    { e.state = s }
func (e *fakeEnv) Send(to core.NodeID, m core.Message) {
	e.sent = append(e.sent, sent{to: to, msg: m})
}
func (e *fakeEnv) Broadcast(m core.Message) {
	for _, j := range e.neighbors {
		e.Send(j, m)
	}
}

func (e *fakeEnv) countTo(to core.NodeID, match func(core.Message) bool) int {
	n := 0
	for _, s := range e.sent {
		if s.to == to && match(s.msg) {
			n++
		}
	}
	return n
}

func isReq(m core.Message) bool    { _, ok := m.(msgReq); return ok }
func isFork(m core.Message) bool   { _, ok := m.(msgFork); return ok }
func isSwitch(m core.Message) bool { _, ok := m.(msgSwitch); return ok }

func newTestNode(id core.NodeID, neighbors ...core.NodeID) (*Node, *fakeEnv) {
	env := &fakeEnv{id: id, neighbors: neighbors}
	n := New()
	n.Init(env)
	return n, env
}

// TestThinkingNodeAlwaysGrants is the regression test for erratum 1: a
// thinking node holding all its forks must grant a request even when the
// printed guard of Algorithm 6 would suspend it.
func TestThinkingNodeAlwaysGrants(t *testing.T) {
	// Node 1's neighbours are 0 and 2; it holds the fork shared with 2
	// (1 < 2) and, to get all forks, we hand it 0's too.
	n, env := newTestNode(1, 0, 2)
	n.at[0] = true
	// A hungry neighbour requests; node 1 is thinking with ALL forks:
	// the printed pseudo-code suspends here, which deadlocks the
	// requester forever.
	n.OnMessage(2, msgReq{})
	if got := env.countTo(2, isFork); got != 1 {
		t.Fatalf("thinking node granted %d forks, want 1", got)
	}
	if n.suspended[2] {
		t.Fatal("request suspended by a thinking node")
	}
}

// TestSwitchReevaluatesRequests is the regression test for the Algorithm
// 2 analogue of erratum 2: a switch that flips higher[j] while the
// receiver is hungry can newly satisfy all-low-forks, and the missing
// high forks must then be requested.
func TestSwitchReevaluatesRequests(t *testing.T) {
	// Node 1 with neighbours 0 and 2. Initially higher[2]=true (2 has
	// priority) and node 1 misses 2's fork; higher[0]=false and node 1
	// misses 0's fork too (hand-arranged).
	n, env := newTestNode(1, 0, 2)
	n.at[2] = false
	n.at[0] = false
	n.higher[0] = false
	n.BecomeHungry()
	// all-low is false (missing low fork from 2), so no high request to
	// 0 was sent yet beyond the initial low request to 2.
	if got := env.countTo(2, isReq); got != 1 {
		t.Fatalf("requests to 2: %d, want 1 (low fork)", got)
	}
	reqsTo0 := env.countTo(0, isReq)
	// Node 2 lowers itself: its fork is now a high fork, all-low-forks
	// becomes vacuously true, so the node must (re)request its missing
	// high forks — including 0's.
	n.OnMessage(2, msgSwitch{})
	if n.higher[2] {
		t.Fatal("switch did not flip higher[2]")
	}
	if got := env.countTo(0, isReq); got <= reqsTo0 {
		t.Fatal("no high-fork re-request after the switch flipped classifications")
	}
}

func TestBecomeHungryNotifies(t *testing.T) {
	n, env := newTestNode(1, 0, 2)
	n.BecomeHungry()
	notifs := 0
	for _, s := range env.sent {
		if _, ok := s.msg.(msgNotification); ok {
			notifs++
		}
	}
	if notifs != 2 {
		t.Fatalf("broadcast %d notifications, want 2", notifs)
	}
	if n.State() != core.Hungry {
		t.Fatalf("state = %v", n.State())
	}
}

func TestNoNotifyConfigSkipsNotifications(t *testing.T) {
	env := &fakeEnv{id: 1, neighbors: []core.NodeID{0, 2}}
	n := NewWithConfig(Config{Notify: false})
	n.Init(env)
	n.BecomeHungry()
	for _, s := range env.sent {
		if _, ok := s.msg.(msgNotification); ok {
			t.Fatal("NoNotify node sent a notification")
		}
	}
}

func TestNotificationOnlyAffectsThinkingWithPriority(t *testing.T) {
	// Node 1 has priority over 0 (higher[0]=false) and not over 2.
	n, env := newTestNode(1, 0, 2)
	if n.Higher(0) {
		t.Fatal("unexpected initial priority")
	}
	// Notification from 0 (over whom we have priority) while thinking:
	// we reverse ALL our edges.
	n.OnMessage(0, msgNotification{})
	if !n.Higher(0) {
		t.Fatal("edge to 0 not reversed")
	}
	if got := env.countTo(0, isSwitch); got != 1 {
		t.Fatalf("switches to 0: %d, want 1", got)
	}
	// Notification from 2 (who already has priority): nothing happens.
	sentBefore := len(env.sent)
	n.OnMessage(2, msgNotification{})
	if len(env.sent) != sentBefore {
		t.Fatal("notification from higher-priority neighbour caused traffic")
	}
	// Notification while hungry: ignored.
	n.BecomeHungry()
	sentBefore = len(env.sent)
	n.OnMessage(0, msgNotification{})
	if len(env.sent) != sentBefore {
		t.Fatal("hungry node reacted to a notification")
	}
}

func TestExitCSReversesAndFlushes(t *testing.T) {
	n, env := newTestNode(1, 0, 2)
	n.at[0] = true // all forks in hand
	n.BecomeHungry()
	if n.State() != core.Eating {
		t.Fatalf("state = %v, want eating", n.State())
	}
	// A request arrives mid-CS: suspended.
	n.OnMessage(2, msgReq{})
	if !n.suspended[2] {
		t.Fatal("mid-CS request not suspended")
	}
	n.ExitCS()
	if n.State() != core.Thinking {
		t.Fatalf("state = %v", n.State())
	}
	if got := env.countTo(2, isFork); got != 1 {
		t.Fatalf("suspended request not served at exit (forks to 2: %d)", got)
	}
	// Every edge reversed: both neighbours now have priority.
	if !n.Higher(0) || !n.Higher(2) {
		t.Fatal("edges not reversed at exit")
	}
}

func TestLinkUpStaticOwnsForkAndPriority(t *testing.T) {
	n, _ := newTestNode(1, 0)
	n.OnLinkUp(7, false)
	if !n.HasFork(7) {
		t.Fatal("static side does not own the new fork")
	}
	if n.Higher(7) {
		t.Fatal("static side ceded priority to the mover")
	}
}

func TestLinkUpMovingYieldsAndDemotes(t *testing.T) {
	n, env := newTestNode(1, 0)
	n.at[0] = true
	n.BecomeHungry() // eats: has all forks
	if n.State() != core.Eating {
		t.Fatalf("state = %v", n.State())
	}
	env.moving = true
	n.OnLinkUp(7, true)
	if n.State() != core.Hungry {
		t.Fatalf("eating mover not demoted: %v", n.State())
	}
	if n.HasFork(7) || !n.Higher(7) {
		t.Fatal("mover's view of the new link wrong")
	}
	// Its pre-existing priority edges were reversed.
	if !n.Higher(0) {
		t.Fatal("old edge not reversed on move")
	}
}

func TestLinkDownReevaluatesProgress(t *testing.T) {
	n, _ := newTestNode(1, 0, 2)
	n.at[0] = true  // 0's fork in hand…
	n.at[2] = false // …but 2 holds the shared fork
	n.BecomeHungry()
	if n.State() != core.Hungry {
		t.Fatalf("state = %v", n.State())
	}
	// The holder of the last missing fork departs: we must eat.
	n.OnLinkDown(2)
	if n.State() != core.Eating {
		t.Fatalf("state = %v after losing the blocking edge, want eating", n.State())
	}
}

func TestStaleRequestDropped(t *testing.T) {
	n, env := newTestNode(1, 2)
	n.at[2] = false // fork in transit to 2
	n.OnMessage(2, msgReq{})
	if len(env.sent) != 0 || n.suspended[2] {
		t.Fatal("request against an absent fork was not dropped")
	}
}

func TestForkWithFlagReturnedWhenNotAllLow(t *testing.T) {
	// Node 2's neighbours: 1 and 3. Arrange a missing LOW fork from 1
	// (so all-low-forks is false) and a missing fork from 3.
	n, env := newTestNode(2, 1, 3)
	n.higher[1] = true
	n.at[1] = false
	n.at[3] = false
	n.BecomeHungry()
	// A flagged fork arrives from 3 while all-low is still false: it
	// must bounce straight back (Line 21's else branch).
	n.OnMessage(3, msgFork{Flag: true})
	if got := env.countTo(3, isFork); got != 1 {
		t.Fatalf("flagged fork not returned (forks to 3: %d)", got)
	}
	if n.HasFork(3) {
		t.Fatal("kept the flagged fork without all-low-forks")
	}
}

func TestThinkingForkWithFlagBounces(t *testing.T) {
	n, env := newTestNode(2, 1)
	n.at[1] = false
	n.OnMessage(1, msgFork{Flag: true})
	if got := env.countTo(1, isFork); got != 1 {
		t.Fatalf("thinking node kept a flagged fork (forks back: %d)", got)
	}
}

func TestMessageFromNonNeighborIgnored(t *testing.T) {
	n, env := newTestNode(1, 2)
	n.OnMessage(9, msgReq{})
	n.OnMessage(9, msgFork{})
	n.OnMessage(9, msgNotification{})
	if len(env.sent) != 0 {
		t.Fatal("reacted to a message from a non-neighbour")
	}
	if n.HasFork(9) {
		t.Fatal("accepted a fork from a non-neighbour")
	}
}
