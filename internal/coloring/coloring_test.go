package coloring

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"lme/internal/core"
	"lme/internal/graph"
)

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet()
	if !s.Add(2, 1) {
		t.Fatal("first Add reported no change")
	}
	if s.Add(1, 2) {
		t.Fatal("duplicate (canonicalised) edge reported change")
	}
	if s.Add(3, 3) {
		t.Fatal("self-loop accepted")
	}
	edges := s.Edges()
	if len(edges) != 1 || edges[0] != (Edge{A: 1, B: 2}) {
		t.Fatalf("edges = %v", edges)
	}
}

func TestEdgeSetUnionCloneEqual(t *testing.T) {
	a, b := NewEdgeSet(), NewEdgeSet()
	a.Add(1, 2)
	b.Add(2, 3)
	if !a.Union(b) {
		t.Fatal("union reported no change")
	}
	if a.Union(b) {
		t.Fatal("second union reported change")
	}
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal")
	}
	c.Add(4, 5)
	if c.Equal(a) {
		t.Fatal("clone aliases original")
	}
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
}

func TestGreedyColorLegalAndDeterministic(t *testing.T) {
	s := NewEdgeSet()
	// A 5-cycle plus a chord.
	for _, e := range [][2]core.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}} {
		s.Add(e[0], e[1])
	}
	colors := make(map[core.NodeID]int)
	for _, v := range []core.NodeID{0, 1, 2, 3, 4} {
		colors[v] = GreedyColor(s, v)
	}
	for e := range s {
		if colors[e.A] == colors[e.B] {
			t.Fatalf("edge %v monochromatic: %v", e, colors)
		}
	}
	for v, c := range colors {
		if c < 0 || c > 3 { // max conflict degree is 3
			t.Fatalf("colour of %d out of range: %d", v, c)
		}
		// Recomputation from an equal set is identical.
		if got := GreedyColor(s.Clone(), v); got != c {
			t.Fatalf("nondeterministic colour for %d: %d vs %d", v, got, c)
		}
	}
}

func TestGreedyColorAbsentNode(t *testing.T) {
	s := NewEdgeSet()
	s.Add(1, 2)
	if got := GreedyColor(s, 7); got != -1 {
		t.Fatalf("absent node coloured %d", got)
	}
	if got := GreedyColor(NewEdgeSet(), 7); got != -1 {
		t.Fatalf("empty graph coloured %d", got)
	}
}

// TestGreedyColorPropertyRandom checks legality and determinism on random
// conflict graphs.
func TestGreedyColorPropertyRandom(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := rng.IntN(15) + 2
		s := NewEdgeSet()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					s.Add(core.NodeID(i), core.NodeID(j))
				}
			}
		}
		colors := make(map[core.NodeID]int)
		for i := 0; i < n; i++ {
			colors[core.NodeID(i)] = GreedyColor(s, core.NodeID(i))
		}
		for e := range s {
			if colors[e.A] == colors[e.B] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewFamilyParameters(t *testing.T) {
	f, err := NewFamily(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Q < f.D*4+1 {
		t.Fatalf("q=%d too small for d=%d δ=4", f.Q, f.D)
	}
	if pow(f.Q, f.D+1) < 100 {
		t.Fatalf("family cannot address 100 colours: q=%d d=%d", f.Q, f.D)
	}
	if f.M != f.Q*f.Q {
		t.Fatalf("M=%d, want q²=%d", f.M, f.Q*f.Q)
	}
	if _, err := NewFamily(0, 4); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFamilySetShape(t *testing.T) {
	f, err := NewFamily(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 50; c++ {
		set := f.Set(c)
		if len(set) != f.Q {
			t.Fatalf("set %d has %d elements, want %d", c, len(set), f.Q)
		}
		for i, e := range set {
			if e < 0 || e >= f.M {
				t.Fatalf("set %d element %d out of range", c, e)
			}
			if i > 0 && set[i] <= set[i-1] {
				t.Fatalf("set %d not ascending", c)
			}
		}
	}
	// Distinct colours give distinct sets.
	a, b := f.Set(1), f.Set(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("sets of colours 1 and 2 identical")
	}
}

// TestCoverFreeProperty is the Theorem 18 property: no set is covered by
// the union of δ others. Checked exhaustively-ish with random picks.
func TestCoverFreeProperty(t *testing.T) {
	prop := func(seed uint64, kRaw, dRaw uint8) bool {
		k := int(kRaw)%200 + 2
		delta := int(dRaw)%6 + 1
		f, err := NewFamily(k, delta)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 11))
		mine := rng.IntN(k)
		others := make([]int, 0, delta)
		for len(others) < delta {
			o := rng.IntN(k)
			if o != mine {
				others = append(others, o)
			}
		}
		_, err = f.PickFree(mine, others)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPickFreeDistinctness: two nodes with distinct current colours that
// each pick against the other's set choose distinct new colours — the
// legality step of Algorithm 5 (Lemma 19).
func TestPickFreeDistinctness(t *testing.T) {
	f, err := NewFamily(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			ca, err := f.PickFree(a, []int{b})
			if err != nil {
				t.Fatal(err)
			}
			cb, err := f.PickFree(b, []int{a})
			if err != nil {
				t.Fatal(err)
			}
			if ca == cb {
				t.Fatalf("colours %d,%d both picked %d", a, b, ca)
			}
		}
	}
}

func TestScheduleShrinksToDeltaSquared(t *testing.T) {
	tests := []struct {
		n, delta int
	}{
		{16, 3}, {256, 4}, {10_000, 5}, {1_000_000, 8},
	}
	for _, tt := range tests {
		sched, err := Schedule(tt.n, tt.delta)
		if err != nil {
			t.Fatal(err)
		}
		final, err := FinalPalette(tt.n, tt.delta)
		if err != nil {
			t.Fatal(err)
		}
		// Final palette must be O(δ²): q_f is the smallest prime
		// ≥ δ+1, and small primes are < 2δ+2, so q_f² < (2δ+2)².
		bound := (2*tt.delta + 2) * (2*tt.delta + 2)
		if final > bound && final > tt.n {
			t.Fatalf("n=%d δ=%d: final palette %d exceeds bound %d", tt.n, tt.delta, final, bound)
		}
		// Round count is O(log* n) + small constant.
		if limit := graph.LogStar(tt.n) + 3; len(sched) > limit {
			t.Fatalf("n=%d δ=%d: %d rounds exceeds log*-ish bound %d", tt.n, tt.delta, len(sched), limit)
		}
		// Chained palettes must be consistent.
		k := max(tt.n, 2)
		for i, f := range sched {
			if f.K != k {
				t.Fatalf("round %d K=%d, want %d", i, f.K, k)
			}
			if f.M >= k {
				t.Fatalf("round %d does not shrink: %d → %d", i, k, f.M)
			}
			k = f.M
		}
	}
}

func TestScheduleTinySystem(t *testing.T) {
	// With n small relative to δ² there may be nothing to shrink.
	sched, err := Schedule(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 0 {
		t.Fatalf("tiny system produced %d rounds", len(sched))
	}
	final, err := FinalPalette(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if final != 4 {
		t.Fatalf("final palette = %d, want 4 (IDs unchanged)", final)
	}
}

func TestPrimesAndRoots(t *testing.T) {
	primes := []struct{ in, want int }{{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {25, 29}}
	for _, tt := range primes {
		if got := nextPrime(tt.in); got != tt.want {
			t.Errorf("nextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	roots := []struct{ k, r, want int }{{1, 2, 1}, {4, 2, 2}, {5, 2, 3}, {27, 3, 3}, {28, 3, 4}}
	for _, tt := range roots {
		if got := ceilRoot(tt.k, tt.r); got != tt.want {
			t.Errorf("ceilRoot(%d,%d) = %d, want %d", tt.k, tt.r, got, tt.want)
		}
	}
	if isPrime(1) || !isPrime(2) || isPrime(9) || !isPrime(97) {
		t.Error("isPrime wrong")
	}
}

// TestLinialSimulated runs the full reduction on a random graph, locally
// simulating the synchronous rounds: every node's colour stays legal and
// ends in the final palette.
func TestLinialSimulated(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 1))
	g, _ := graph.RandomGeometric(40, 0.25, rng)
	delta := max(g.MaxDegree(), 1)
	sched, err := Schedule(g.N(), delta)
	if err != nil {
		t.Fatal(err)
	}
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = i // IDs
	}
	for _, f := range sched {
		next := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			var others []int
			for _, u := range g.Neighbors(v) {
				others = append(others, colors[u])
			}
			c, err := f.PickFree(colors[v], others)
			if err != nil {
				t.Fatalf("round failed at node %d: %v", v, err)
			}
			next[v] = c
		}
		colors = next
		if err := g.LegalColoring(colors); err != nil {
			t.Fatalf("illegal after round: %v", err)
		}
	}
	final, err := FinalPalette(g.N(), delta)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range colors {
		if c < 0 || c >= final {
			t.Fatalf("node %d colour %d outside final palette %d", v, c, final)
		}
	}
}

func TestReductionRounds(t *testing.T) {
	tests := []struct{ k, delta, want int }{
		{25, 2, 22}, {4, 3, 0}, {10, 9, 0}, {121, 4, 116}, {5, 4, 0},
	}
	for _, tt := range tests {
		if got := ReductionRounds(tt.k, tt.delta); got != tt.want {
			t.Errorf("ReductionRounds(%d,%d) = %d, want %d", tt.k, tt.delta, got, tt.want)
		}
	}
}

func TestReduceStep(t *testing.T) {
	// Non-holders keep their colour.
	if got := ReduceStep(3, 7, []int{0, 1}); got != 3 {
		t.Fatalf("non-holder recoloured to %d", got)
	}
	// Holders pick the smallest free colour.
	if got := ReduceStep(7, 7, []int{0, 1, 3}); got != 2 {
		t.Fatalf("holder picked %d, want 2", got)
	}
	if got := ReduceStep(7, 7, nil); got != 0 {
		t.Fatalf("isolated holder picked %d, want 0", got)
	}
}

// TestReductionConvergesOnGraph drives the full reduction over a random
// legal colouring and checks the final palette is δ+1 with legality kept
// at every round.
func TestReductionConvergesOnGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 1))
	g, _ := graph.RandomGeometric(30, 0.3, rng)
	delta := max(g.MaxDegree(), 1)
	// Start from the (legal) identity colouring with palette n.
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = i
	}
	k := g.N()
	for r := 0; r < ReductionRounds(k, delta); r++ {
		top := k - 1 - r
		next := make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			var nbr []int
			for _, u := range g.Neighbors(v) {
				nbr = append(nbr, colors[u])
			}
			next[v] = ReduceStep(colors[v], top, nbr)
		}
		colors = next
		if err := g.LegalColoring(colors); err != nil {
			t.Fatalf("illegal after round %d: %v", r, err)
		}
	}
	for v, c := range colors {
		if c > delta {
			t.Fatalf("node %d colour %d > δ=%d after reduction", v, c, delta)
		}
	}
}
