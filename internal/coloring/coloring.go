// Package coloring supplies the two colouring procedures of §5.4 of the
// paper.
//
// For the greedy procedure (Algorithm 4) it provides the deterministic
// local colouring step: every participant collects the same conflict graph
// (edges between concurrently-recolouring nodes) and colours it greedily in
// a predefined traversal order, so all participants derive the same legal
// colouring without further communication.
//
// For the fast procedure (Algorithm 5) it provides δ-cover-free set
// families and the palette-reduction schedule of Linial's algorithm. The
// paper relies on the Erdős–Frankl–Füredi existence theorem (Theorem 18)
// and suggests exhaustive search; this package substitutes the standard
// explicit Reed–Solomon construction — degree-d polynomials over GF(q),
// with F_c = {(x, P_c(x)) : x ∈ [q]} — which has exactly the covering-free
// property Theorem 18 asserts (see DESIGN.md §4.2).
package coloring

import (
	"fmt"
	"sort"

	"lme/internal/core"
)

// Edge is an undirected edge of a conflict graph, stored with A < B.
type Edge struct {
	A, B core.NodeID
}

// NewEdge returns the canonical form of the edge (a, b).
func NewEdge(a, b core.NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// EdgeSet is the conflict graph G exchanged by the greedy recolouring
// procedure of Algorithm 4.
type EdgeSet map[Edge]struct{}

// NewEdgeSet returns an empty edge set.
func NewEdgeSet() EdgeSet { return make(EdgeSet) }

// Add inserts the edge (a, b); self-loops are ignored. It reports whether
// the set changed.
func (s EdgeSet) Add(a, b core.NodeID) bool {
	if a == b {
		return false
	}
	e := NewEdge(a, b)
	if _, ok := s[e]; ok {
		return false
	}
	s[e] = struct{}{}
	return true
}

// Union inserts every edge of other and reports whether the set changed.
func (s EdgeSet) Union(other EdgeSet) bool {
	changed := false
	for e := range other {
		if _, ok := s[e]; !ok {
			s[e] = struct{}{}
			changed = true
		}
	}
	return changed
}

// Clone returns a copy (messages must not alias the sender's set).
func (s EdgeSet) Clone() EdgeSet {
	out := make(EdgeSet, len(s))
	for e := range s {
		out[e] = struct{}{}
	}
	return out
}

// Equal reports whether both sets hold the same edges.
func (s EdgeSet) Equal(other EdgeSet) bool {
	if len(s) != len(other) {
		return false
	}
	for e := range s {
		if _, ok := other[e]; !ok {
			return false
		}
	}
	return true
}

// Edges returns the edges in canonical sorted order.
func (s EdgeSet) Edges() []Edge {
	out := make([]Edge, 0, len(s))
	for e := range s {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// GreedyColor deterministically colours the conflict graph and returns the
// colour of node me (-1 if me does not appear in the graph). Per Algorithm
// 4 Line 72, each component is traversed depth-first from its smallest-ID
// node with ascending neighbour order, assigning every node the smallest
// colour unused among its already-coloured neighbours. Two participants
// holding equal edge sets therefore compute identical colourings, which is
// what Lemma 14 needs.
//
// The colour range is [0, d(G)] where d(G) is the maximum degree of the
// conflict graph, hence at most the paper's δ.
func GreedyColor(s EdgeSet, me core.NodeID) int {
	adj := make(map[core.NodeID][]core.NodeID)
	for e := range s {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	if _, ok := adj[me]; !ok {
		return -1
	}
	vertices := make([]core.NodeID, 0, len(adj))
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })

	colors := make(map[core.NodeID]int, len(adj))
	var visit func(v core.NodeID)
	visit = func(v core.NodeID) {
		if _, done := colors[v]; done {
			return
		}
		used := make(map[int]bool)
		for _, u := range adj[v] {
			if c, ok := colors[u]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		for _, u := range adj[v] {
			visit(u)
		}
	}
	for _, v := range vertices {
		visit(v)
	}
	return colors[me]
}

// Family is an explicit δ-cover-free family: K subsets of {0,…,M-1} such
// that no set is covered by the union of any δ others. Set c is
// {x·Q + P_c(x) : x ∈ [Q]} where P_c is the degree-D polynomial over GF(Q)
// whose coefficients are the base-Q digits of c. Distinct polynomials agree
// on at most D points, so a union of δ other sets misses at least
// Q − δ·D ≥ 1 elements of any set.
type Family struct {
	// Q is the prime field size; each set has Q elements.
	Q int
	// D is the polynomial degree bound.
	D int
	// K is the number of sets (colours of the incoming palette).
	K int
	// M = Q² is the ground-set size (colours of the outgoing palette).
	M int
}

// NewFamily constructs the smallest such family (by outgoing palette M)
// that supports k incoming colours with cover-freeness against delta
// neighbours.
func NewFamily(k, delta int) (Family, error) {
	if k < 1 {
		return Family{}, fmt.Errorf("coloring: family needs k ≥ 1, got %d", k)
	}
	if delta < 1 {
		delta = 1
	}
	best := Family{}
	found := false
	// Higher degrees let smaller fields address k colours (q^(d+1) ≥ k)
	// at the cost of needing q ≥ d·δ+1. Try a few degrees and keep the
	// smallest ground set.
	for d := 1; d <= 8; d++ {
		// ceilRoot gives the smallest q with q^(d+1) ≥ k, so the
		// prime chosen here always addresses all k colours.
		q := nextPrime(max(d*delta+1, ceilRoot(k, d+1)))
		f := Family{Q: q, D: d, K: k, M: q * q}
		if !found || f.M < best.M {
			best, found = f, true
		}
	}
	if !found {
		return Family{}, fmt.Errorf("coloring: no family for k=%d delta=%d", k, delta)
	}
	return best, nil
}

// Set returns the elements of set c in ascending order. c must be in
// [0, K).
func (f Family) Set(c int) []int {
	out := make([]int, f.Q)
	for x := 0; x < f.Q; x++ {
		out[x] = x*f.Q + f.eval(c, x)
	}
	return out
}

// eval computes P_c(x) over GF(Q), where the coefficients of P_c are the
// base-Q digits of c.
func (f Family) eval(c, x int) int {
	digits := make([]int, f.D+1)
	for i := 0; i <= f.D; i++ {
		digits[i] = c % f.Q
		c /= f.Q
	}
	// Horner evaluation from the top coefficient.
	v := 0
	for i := f.D; i >= 0; i-- {
		v = (v*x + digits[i]) % f.Q
	}
	return v
}

// PickFree returns the smallest element of Set(mine) not contained in any
// Set(o) for o in others. It fails only if others exceeds the family's
// cover-freeness budget (more than Q−1 distinct conflicting sets after
// accounting for degree D).
func (f Family) PickFree(mine int, others []int) (int, error) {
	covered := make(map[int]bool)
	for _, o := range others {
		if o == mine {
			continue // identical set would cover everything; the
			// algorithms never present it (colours are IDs or
			// previously legal), so skip defensively.
		}
		for _, e := range f.Set(o) {
			covered[e] = true
		}
	}
	for _, e := range f.Set(mine) {
		if !covered[e] {
			return e, nil
		}
	}
	return 0, fmt.Errorf("coloring: set %d covered by %d others (Q=%d D=%d)", mine, len(others), f.Q, f.D)
}

// Schedule returns the palette-reduction rounds of Linial's algorithm for
// a system of n nodes with maximum degree delta: round t maps colours in
// [K_t] to colours in [K_{t+1}] via a cover-free family, starting from
// K_0 = n (initial colours are node IDs) and stopping when the palette no
// longer shrinks. The length of the schedule is O(log* n) and the final
// palette is O(δ²), matching Lemma 21.
func Schedule(n, delta int) ([]Family, error) {
	var rounds []Family
	k := max(n, 2)
	for range 64 {
		f, err := NewFamily(k, delta)
		if err != nil {
			return nil, err
		}
		if f.M >= k {
			break // fixed point: reduction no longer helps
		}
		rounds = append(rounds, f)
		k = f.M
	}
	return rounds, nil
}

// FinalPalette returns the palette size after running the schedule (n if
// the schedule is empty).
func FinalPalette(n, delta int) (int, error) {
	sched, err := Schedule(n, delta)
	if err != nil {
		return 0, err
	}
	if len(sched) == 0 {
		return max(n, 2), nil
	}
	return sched[len(sched)-1].M, nil
}

// ReductionRounds returns the number of one-colour-elimination rounds
// needed to convert a K-colouring to a (delta+1)-colouring: in round r the
// holders of colour K-1-r (an independent set, since the colouring is
// legal) simultaneously re-pick the smallest colour free among their
// neighbours, which always exists below delta+1. This is the classic
// deterministic conversion the paper's discussion chapter refers to
// ("O(δ²)-coloring can be deterministically converted to (δ+1)-coloring").
func ReductionRounds(k, delta int) int {
	if k <= delta+1 {
		return 0
	}
	return k - (delta + 1)
}

// ReduceStep computes a node's colour after one elimination round
// targeting topColor: holders of topColor pick the smallest colour not
// used by any neighbour; everyone else keeps their colour. neighborColors
// may contain duplicates.
func ReduceStep(mine, topColor int, neighborColors []int) int {
	if mine != topColor {
		return mine
	}
	used := make(map[int]bool, len(neighborColors))
	for _, c := range neighborColors {
		used[c] = true
	}
	c := 0
	for used[c] {
		c++
	}
	return c
}

// nextPrime returns the smallest prime ≥ n.
func nextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	for candidate := n; ; candidate++ {
		if isPrime(candidate) {
			return candidate
		}
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// ceilRoot returns ⌈k^(1/r)⌉ (smallest q with q^r ≥ k).
func ceilRoot(k, r int) int {
	if k <= 1 {
		return 1
	}
	q := 1
	for pow(q, r) < k {
		q++
	}
	return q
}

// pow is integer exponentiation with saturation to avoid overflow for the
// small arguments used here.
func pow(base, exp int) int {
	result := 1
	for range exp {
		if result > 1<<40 {
			return 1 << 40
		}
		result *= base
	}
	return result
}
