// Zero-reflection JSON encoding for trace events. AppendJSON is the hot
// path every -trace-out run funnels through; it is hand-written but
// byte-identical to what encoding/json produced for the same Event
// (including the HTML escaping and the genuine-peer-0 field placement),
// so the golden trace hash, the schema tests and every downstream JSONL
// consumer see exactly the bytes they always saw. The differential and
// fuzz tests in encode_test.go hold the two encoders together.
package trace

import (
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// AppendJSONString appends s to dst as a JSON string literal,
// byte-identical to encoding/json's default (HTML-escaping) encoder:
// short escapes for quote, backslash, \b \f \n \r \t, \u00XX for the
// remaining control characters, \u003c/\u003e/\u0026 for the HTML
// characters, U+2028/U+2029 escaped as \u202X, and one
// U+FFFD replacement rune per invalid UTF-8 byte. internal/span reuses
// it for the span and post-mortem records.
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"', '\\':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// < > & and the control characters without short escapes.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendJSON appends the event's JSON object encoding to buf and returns
// the extended slice. The output is byte-for-byte what encoding/json
// produced through the old MarshalJSON wrapper structs: required fields
// first (seq, at, kind, node), the optional fields in declaration order
// under omitempty rules, an absent peer for NoNode, and — preserving the
// embedded-struct field ordering of the old genuine-peer-0 detour — a
// trailing "peer":0 when the event really concerns node 0.
func (e Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = append(buf, `,"at":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	buf = append(buf, `,"kind":`...)
	if e.Kind > 0 && int(e.Kind) < len(kindNames) {
		buf = append(buf, '"')
		buf = append(buf, kindNames[e.Kind]...)
		buf = append(buf, '"')
	} else {
		buf = AppendJSONString(buf, e.Kind.String())
	}
	buf = append(buf, `,"node":`...)
	buf = strconv.AppendInt(buf, int64(e.Node), 10)
	if e.Peer != NoNode && e.Peer != 0 {
		buf = append(buf, `,"peer":`...)
		buf = strconv.AppendInt(buf, int64(e.Peer), 10)
	}
	if e.Msg != "" {
		buf = append(buf, `,"msg":`...)
		buf = AppendJSONString(buf, e.Msg)
	}
	if e.Size != 0 {
		buf = append(buf, `,"size":`...)
		buf = strconv.AppendInt(buf, int64(e.Size), 10)
	}
	if e.MsgSeq != 0 {
		buf = append(buf, `,"mseq":`...)
		buf = strconv.AppendUint(buf, e.MsgSeq, 10)
	}
	if e.Delay != 0 {
		buf = append(buf, `,"delay":`...)
		buf = strconv.AppendInt(buf, int64(e.Delay), 10)
	}
	if e.Old != "" {
		buf = append(buf, `,"old":`...)
		buf = AppendJSONString(buf, e.Old)
	}
	if e.New != "" {
		buf = append(buf, `,"new":`...)
		buf = AppendJSONString(buf, e.New)
	}
	if e.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = AppendJSONString(buf, e.Detail)
	}
	if e.Peer == 0 {
		buf = append(buf, `,"peer":0`...)
	}
	return append(buf, '}')
}
