package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"

	"lme/internal/core"
	"lme/internal/sim"
)

// oracleWire mirrors Event's wire shape for the differential oracle: the
// retired reflection-based encoding, kept only in this test so the
// hand-written AppendJSON is forever checked against what encoding/json
// would produce.
type oracleWire struct {
	Seq    uint64      `json:"seq"`
	At     sim.Time    `json:"at"`
	Kind   Kind        `json:"kind"`
	Node   core.NodeID `json:"node"`
	Peer   core.NodeID `json:"peer,omitempty"`
	Msg    string      `json:"msg,omitempty"`
	Size   int         `json:"size,omitempty"`
	MsgSeq uint64      `json:"mseq,omitempty"`
	Delay  sim.Time    `json:"delay,omitempty"`
	Old    string      `json:"old,omitempty"`
	New    string      `json:"new,omitempty"`
	Detail string      `json:"detail,omitempty"`
}

// oracleJSON reproduces the old MarshalJSON byte-for-byte: NoNode peers
// dropped via omitempty, genuine peer 0 preserved through the embedded
// wrapper struct (whose field ordering put it last).
func oracleJSON(t *testing.T, e Event) []byte {
	t.Helper()
	w := oracleWire{
		Seq: e.Seq, At: e.At, Kind: e.Kind, Node: e.Node, Peer: e.Peer,
		Msg: e.Msg, Size: e.Size, MsgSeq: e.MsgSeq, Delay: e.Delay,
		Old: e.Old, New: e.New, Detail: e.Detail,
	}
	var (
		out []byte
		err error
	)
	if w.Peer == NoNode {
		w.Peer = 0 // omitempty drops it
		out, err = json.Marshal(w)
	} else if w.Peer == 0 {
		type wire0 struct {
			oracleWire
			Peer core.NodeID `json:"peer"`
		}
		out, err = json.Marshal(wire0{oracleWire: w, Peer: 0})
	} else {
		out, err = json.Marshal(w)
	}
	if err != nil {
		t.Fatalf("oracle marshal: %v", err)
	}
	return out
}

// differentialEvents covers every kind with its natural field set plus
// the edge cases the encoder special-cases: genuine peer 0, NoNode,
// negative IDs and sizes, zero-valued optionals, extreme numbers, and
// strings exercising every escape class encoding/json knows.
func differentialEvents() []Event {
	evs := []Event{
		{Seq: 1, At: 1000, Kind: KindSend, Node: 3, Peer: 7, Msg: "req", Size: 24, MsgSeq: 41},
		{Seq: 2, At: 1200, Kind: KindDeliver, Node: 7, Peer: 3, Msg: "req", Size: 24, MsgSeq: 41, Delay: 200},
		{Seq: 3, At: 1300, Kind: KindDrop, Node: 9, Peer: 2, Msg: "fork", Size: 16, MsgSeq: 7, Detail: "link-changed"},
		{Seq: 4, At: 1400, Kind: KindState, Node: 2, Peer: NoNode, Old: "hungry", New: "eating"},
		{Seq: 5, At: 1500, Kind: KindLinkUp, Node: 2, Peer: 9, Detail: "9"},
		{Seq: 6, At: 1600, Kind: KindLinkDown, Node: 2, Peer: 9},
		{Seq: 7, At: 1700, Kind: KindMoveStart, Node: 4, Peer: NoNode, Detail: "(0.123,0.456)"},
		{Seq: 8, At: 1800, Kind: KindMoveStop, Node: 4, Peer: NoNode, Detail: "(0.789,0.012)"},
		{Seq: 9, At: 1900, Kind: KindCrash, Node: 6, Peer: NoNode},
		{Seq: 10, At: 2000, Kind: KindDoorway, Node: 5, Peer: NoNode, New: "cross", Detail: "adr"},
		{Seq: 11, At: 2100, Kind: KindRecolor, Node: 5, Peer: NoNode, Detail: "3"},
		{Seq: 12, At: 2200, Kind: KindNote, Node: 5, Peer: NoNode, Detail: "recolor run 3: palette {1,4,6}"},
		// Genuine peer 0: must survive, in the wrapper struct's position.
		{Seq: 13, At: 2300, Kind: KindSend, Node: 3, Peer: 0, Msg: "fork", Size: 16, MsgSeq: 2, Delay: 500},
		{Seq: 14, At: 2400, Kind: KindDeliver, Node: 0, Peer: 3, Msg: "fork", Size: 16, MsgSeq: 2, Delay: 500},
		// Peer 0 with every optional empty: peer is the only optional.
		{Seq: 15, At: 2500, Kind: KindCrash, Node: 0, Peer: 0},
		// Zero values everywhere (invalid kind 0 renders as kind(0)).
		{},
		// Negative node/size, zero at, huge numbers.
		{Seq: 1<<64 - 1, At: -1, Kind: KindNote, Node: -7, Peer: NoNode, Size: -3, Detail: "negative"},
		{Seq: 17, At: 1<<63 - 1, Kind: KindSend, Node: 1 << 30, Peer: 2, Msg: "m", Size: 1 << 40, MsgSeq: 1<<64 - 1, Delay: 1<<63 - 1},
		// Out-of-range kind values.
		{Seq: 18, At: 1, Kind: Kind(200), Node: 1, Peer: NoNode},
		{Seq: 19, At: 1, Kind: numKinds, Node: 1, Peer: NoNode},
	}
	escapes := []string{
		`plain`,
		`quote " backslash \ slash /`,
		"tab\tnewline\ncarriage\rreturn",
		"backspace\bformfeed\f",
		"control\x00\x01\x1f\x7fchars",
		"html <b>&amp;</b>",
		"unicode π 語 🜚 mixed",
		"line separators \u2028 and \u2029",
		"invalid utf8 \xff\xfe tail \xc3",
		"truncated rune \xe2\x82",
		strings.Repeat("long ", 100) + "tail",
		"",
	}
	for i, s := range escapes {
		evs = append(evs, Event{Seq: uint64(100 + i), At: sim.Time(i), Kind: KindNote, Node: 1, Peer: NoNode, Detail: s})
		evs = append(evs, Event{Seq: uint64(200 + i), At: sim.Time(i), Kind: KindState, Node: 0, Peer: 0, Old: s, New: s, Msg: s})
	}
	return evs
}

// TestAppendJSONDifferential is the golden differential test of the
// tentpole: AppendJSON must be byte-identical to the encoding/json
// oracle for every kind and every escape class.
func TestAppendJSONDifferential(t *testing.T) {
	for _, e := range differentialEvents() {
		got := e.AppendJSON(nil)
		want := oracleJSON(t, e)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendJSON diverged for %+v:\n got %s\nwant %s", e, got, want)
		}
		// json.Marshal routes through MarshalJSON and then compacts with
		// HTML escaping; byte-identity there proves Events embedded in
		// larger documents (post-mortems, reports) are unchanged too.
		viaMarshal, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", e, err)
		}
		if !bytes.Equal(viaMarshal, want) {
			t.Errorf("json.Marshal diverged for %+v:\n got %s\nwant %s", e, viaMarshal, want)
		}
	}
}

// TestAppendJSONAppends: AppendJSON must extend the buffer it is given,
// not replace it — the batch sink depends on it.
func TestAppendJSONAppends(t *testing.T) {
	e := Event{Seq: 1, Kind: KindNote, Node: 2, Peer: NoNode, Detail: "x"}
	buf := []byte("prefix")
	out := e.AppendJSON(buf)
	if !bytes.HasPrefix(out, []byte("prefix{")) {
		t.Fatalf("AppendJSON did not append: %s", out)
	}
	if !bytes.Equal(out[len("prefix"):], e.AppendJSON(nil)) {
		t.Fatalf("appended encoding differs from fresh encoding")
	}
}

// decodedString is what a JSON round trip turns s into: invalid UTF-8 is
// encoded as one U+FFFD per broken byte, everything else survives.
func decodedString(s string) string {
	if utf8.ValidString(s) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b.WriteRune(utf8.RuneError)
			i++
			continue
		}
		b.WriteString(s[i : i+size])
		i += size
	}
	return b.String()
}

// FuzzAppendJSONRoundTrip holds AppendJSON to the encoding/json oracle
// on arbitrary field values and round-trips the bytes through
// UnmarshalJSON: for valid kinds the decoded event must equal the
// original (modulo UTF-8 replacement), for out-of-schema kinds the
// decoder must reject the line rather than guess.
func FuzzAppendJSONRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(1000), uint8(1), 3, 7, "req", 24, uint64(41), int64(200), "old", "new", "detail")
	f.Add(uint64(7), int64(0), uint8(2), 0, 0, "fork", 16, uint64(2), int64(500), "", "", "")
	f.Add(uint64(0), int64(-5), uint8(0), -1, -1, "", 0, uint64(0), int64(0), "", "", "")
	f.Add(uint64(9), int64(9), uint8(12), 5, -1, "", 0, uint64(0), int64(0), "", "", "a\x00b<&>\xff\u2028")
	f.Add(uint64(3), int64(3), uint8(250), 1, 2, "m", -9, uint64(1), int64(-1), "\t", "\\", "\"")
	f.Fuzz(func(t *testing.T, seq uint64, at int64, kind uint8, node, peer int,
		msg string, size int, mseq uint64, delay int64, oldS, newS, detail string) {
		e := Event{
			Seq: seq, At: sim.Time(at), Kind: Kind(kind),
			Node: core.NodeID(node), Peer: core.NodeID(peer),
			Msg: msg, Size: size, MsgSeq: mseq, Delay: sim.Time(delay),
			Old: oldS, New: newS, Detail: detail,
		}
		got := e.AppendJSON(nil)
		if want := oracleJSON(t, e); !bytes.Equal(got, want) {
			t.Fatalf("AppendJSON diverged:\n got %s\nwant %s", got, want)
		}
		var back Event
		err := back.UnmarshalJSON(got)
		if e.Kind == 0 || e.Kind >= numKinds {
			if err == nil {
				t.Fatalf("decoder accepted out-of-schema kind %d", e.Kind)
			}
			return
		}
		if err != nil {
			t.Fatalf("round trip decode of %s: %v", got, err)
		}
		want := e
		want.Msg = decodedString(e.Msg)
		want.Old = decodedString(e.Old)
		want.New = decodedString(e.New)
		want.Detail = decodedString(e.Detail)
		if back != want {
			t.Fatalf("round trip changed the event:\n got %+v\nwant %+v\nwire %s", back, want, got)
		}
	})
}
