package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestBusPublishAndSubscribeFilter(t *testing.T) {
	b := NewBus(0)
	var sends, all int
	b.Subscribe(func(e Event) { sends++ }, KindSend)
	b.Subscribe(func(e Event) { all++ })
	b.Publish(Event{Kind: KindSend, Node: 1, Peer: 2})
	b.Publish(Event{Kind: KindDeliver, Node: 2, Peer: 1})
	b.Publish(Event{Kind: KindState, Node: 1})
	if sends != 1 {
		t.Errorf("kind-filtered subscriber saw %d events, want 1", sends)
	}
	if all != 3 {
		t.Errorf("unfiltered subscriber saw %d events, want 3", all)
	}
	if b.Total() != 3 {
		t.Errorf("Total = %d, want 3", b.Total())
	}
}

func TestBusSequenceNumbers(t *testing.T) {
	b := NewBus(4)
	var seqs []uint64
	b.Subscribe(func(e Event) { seqs = append(seqs, e.Seq) })
	for i := 0; i < 3; i++ {
		b.Publish(Event{Kind: KindNote})
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
}

func TestBusRingWraparound(t *testing.T) {
	b := NewBus(3)
	for i := 1; i <= 5; i++ {
		b.Publish(Event{Kind: KindNote, At: 0, Node: 0, Detail: ""})
	}
	recent := b.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("Recent(10) returned %d events, want 3 (ring capacity)", len(recent))
	}
	// Oldest first: after 5 publishes into a 3-slot ring, slots hold 3,4,5.
	for i, e := range recent {
		if want := uint64(3 + i); e.Seq != want {
			t.Errorf("recent[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if got := b.Recent(2); len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Errorf("Recent(2) = %+v, want seqs 4,5", got)
	}
}

func TestBusRecentEmptyAndDisabled(t *testing.T) {
	if got := NewBus(0).Recent(5); got != nil {
		t.Errorf("Recent on ringless bus = %v, want nil", got)
	}
	if got := NewBus(4).Recent(5); got != nil {
		t.Errorf("Recent on empty bus = %v, want nil", got)
	}
}

func TestBusActive(t *testing.T) {
	if NewBus(0).Active() {
		t.Error("bare bus reported active")
	}
	if !NewBus(8).Active() {
		t.Error("ring-buffered bus reported inactive")
	}
	b := NewBus(0)
	b.Subscribe(func(Event) {})
	if !b.Active() {
		t.Error("subscribed bus reported inactive")
	}
	b2 := NewBus(0)
	b2.SetSink(&bytes.Buffer{})
	if !b2.Active() {
		t.Error("sinked bus reported inactive")
	}
	b2.SetSink(nil)
	if b2.Active() {
		t.Error("detached sink left bus active")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	b := NewBus(0)
	b.SetSink(&buf)
	published := []Event{
		{At: 1000, Kind: KindSend, Node: 3, Peer: 7, Msg: "fork", Size: 16},
		{At: 2000, Kind: KindDeliver, Node: 7, Peer: 0, Msg: "fork", Size: 16, Delay: 1000}, // genuine peer 0
		{At: 3000, Kind: KindState, Node: 2, Peer: NoNode, Old: "hungry", New: "eating"},    // no peer
		{At: 4000, Kind: KindNote, Node: 1, Peer: NoNode, Detail: "free-form"},
	}
	for _, e := range published {
		b.Publish(e)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(published) {
		t.Fatalf("sink wrote %d lines, want %d", len(lines), len(published))
	}
	// The NoNode sentinel must not leak into the wire format.
	if strings.Contains(lines[2], "peer") {
		t.Errorf("absent peer encoded: %s", lines[2])
	}
	// A genuine peer 0 must survive.
	if !strings.Contains(lines[1], `"peer":0`) {
		t.Errorf("peer 0 dropped: %s", lines[1])
	}
	dec := json.NewDecoder(strings.NewReader(buf.String()))
	for i, want := range published {
		var got Event
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode line %d: %v", i+1, err)
		}
		want.Seq = uint64(i + 1)
		if got != want {
			t.Errorf("round trip line %d:\n got %+v\nwant %+v", i+1, got, want)
		}
	}
	if err := dec.Decode(&Event{}); err != io.EOF {
		t.Fatalf("trailing data after %d events: %v", len(published), err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestSinkErrSticky(t *testing.T) {
	b := NewBus(0)
	b.SetSink(failWriter{})
	b.Publish(Event{Kind: KindNote})
	b.Publish(Event{Kind: KindNote})
	// The sink batches: the write (and its failure) happens at flush.
	if err := b.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush = %v, want the writer's error", err)
	}
	if err := b.SinkErr(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("SinkErr = %v, want the writer's error", err)
	}
	if err := b.Flush(); err == nil {
		t.Fatal("sticky error cleared by a later Flush")
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("no-such-kind")); err == nil {
		t.Error("unknown kind accepted")
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range kind string = %q", got)
	}
}

func TestNormalizeTypeName(t *testing.T) {
	cases := map[string]string{
		"lme1.msgFork":          "fork",
		"*lme1.msgFork":         "fork",
		"baseline.cmFork":       "fork",
		"lme2.msgNotification":  "notification",
		"lme1.msgUpdateColor":   "updatecolor",
		"baseline.tokenRequest": "tokenrequest",
		"main.Payload":          "payload",
		"plain":                 "plain",
		"deeply/pkg.msgDoorway": "doorway",
		"lme2.msgSwitch":        "switch",
	}
	for in, want := range cases {
		if got := NormalizeTypeName(in); got != want {
			t.Errorf("NormalizeTypeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTypeNamerCaches(t *testing.T) {
	type msgFork struct{ A, B int64 }
	tn := NewTypeNamer()
	name, size := tn.Name(msgFork{})
	if name != "fork" {
		t.Errorf("name = %q, want fork", name)
	}
	if size != 16 {
		t.Errorf("size = %d, want 16", size)
	}
	name2, size2 := tn.Name(msgFork{A: 9})
	if name2 != name || size2 != size {
		t.Errorf("cached lookup diverged: %q/%d vs %q/%d", name2, size2, name, size)
	}
}

func TestEventString(t *testing.T) {
	// Every kind must render without panicking and mention its node.
	for _, k := range Kinds() {
		e := Event{Kind: k, Node: 5, Peer: 6, Msg: "req", Old: "hungry", New: "eating", Detail: "x"}
		if s := e.String(); s == "" {
			t.Errorf("kind %v rendered empty", k)
		}
	}
	e := Event{Kind: KindSend, Node: 1, Peer: 2, Msg: "fork", Size: 24}
	if got := e.String(); got != "send 1→2 fork (24B)" {
		t.Errorf("send rendering = %q", got)
	}
}
