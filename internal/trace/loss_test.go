package trace

import "testing"

// TestBusOverwrittenCounter: the ring recycles slots silently; the
// counter makes the loss visible. No ring, no loss.
func TestBusOverwrittenCounter(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 4; i++ {
		b.Publish(Event{Kind: KindNote})
	}
	if got := b.Overwritten(); got != 0 {
		t.Fatalf("Overwritten after filling the ring = %d", got)
	}
	for i := 0; i < 6; i++ {
		b.Publish(Event{Kind: KindNote})
	}
	if got := b.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	if got := len(b.Recent(100)); got != 4 {
		t.Fatalf("Recent retains %d events, want the ring's 4", got)
	}
	ringless := NewBus(0)
	ringless.Publish(Event{Kind: KindNote})
	if got := ringless.Overwritten(); got != 0 {
		t.Fatalf("ringless Overwritten = %d", got)
	}
}

// TestBusSinkDroppedCounter: the batch whose write failed and everything
// published after the sticky error count as dropped.
func TestBusSinkDroppedCounter(t *testing.T) {
	b := NewBus(0)
	if got := b.SinkDropped(); got != 0 {
		t.Fatalf("fresh SinkDropped = %d", got)
	}
	b.SetSink(failWriter{})
	b.Publish(Event{Kind: KindNote}) // batched, lost when the flush fails
	if err := b.Flush(); err == nil {
		t.Fatal("Flush to a failing writer reported success")
	}
	b.Publish(Event{Kind: KindNote}) // skipped: sticky error
	b.Publish(Event{Kind: KindNote}) // skipped
	if got := b.SinkDropped(); got != 3 {
		t.Fatalf("SinkDropped = %d, want 3", got)
	}
	if b.SinkErr() == nil {
		t.Fatal("sticky sink error lost")
	}
}
