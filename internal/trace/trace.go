// Package trace is the typed observability layer of the simulator: a
// single event stream that the world (internal/manet) and the protocols
// publish to, replacing the free-text tracer the repo started with. Every
// observable occurrence — message send/deliver/drop, dining-state
// transitions, link changes, mobility, crashes, doorway crossings and
// recolouring rounds — becomes one Event value on a Bus. Consumers attach
// as subscribers (counters, renderers), as a bounded ring buffer (recent
// history for diagnostics) or as a JSONL sink (machine-readable traces for
// cmd/lmetrace and CI diffing).
//
// The bus is allocation-lean by design: an Event is a flat value struct,
// publishing copies it into a preallocated ring slot, subscriber dispatch
// indexes a per-kind slice built at Subscribe time, and the JSONL sink
// encodes with the hand-written AppendJSON into a reusable batch buffer
// (see encode.go) instead of reflection. A bus with no ring, no
// subscribers and no sink reduces Publish to a few branch tests, and
// Wants lets publishers skip even building events nobody consumes.
package trace

import (
	"encoding"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"lme/internal/core"
	"lme/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// The event kinds of the schema. The string forms (see Kind.String) are
// the stable identifiers used in JSONL traces; the numeric values are
// internal and may be reordered.
const (
	// KindSend: Node handed a message for Peer to the transport.
	KindSend Kind = iota + 1
	// KindDeliver: Peer's message reached Node; Delay is the transit time.
	KindDeliver
	// KindDrop: a message in flight from Peer to Node was destroyed
	// (link failure or receiver crash before delivery).
	KindDrop
	// KindState: Node's dining state changed from Old to New.
	KindState
	// KindLinkUp: a link Node—Peer appeared; Detail names the moving side.
	KindLinkUp
	// KindLinkDown: the link Node—Peer disappeared.
	KindLinkDown
	// KindMoveStart / KindMoveStop: Node's mobility status flipped.
	KindMoveStart
	KindMoveStop
	// KindCrash: Node crash-failed.
	KindCrash
	// KindDoorway: Node began entering (New="enter"), crossed ("cross"),
	// exited ("exit") or aborted an entry in progress of ("abort") the
	// doorway named in Detail.
	KindDoorway
	// KindRecolor: Node finished a recolouring run; Detail carries the
	// new colour.
	KindRecolor
	// KindNote: free-form protocol diagnostic (Detail).
	KindNote

	numKinds
)

var kindNames = [numKinds]string{
	KindSend:      "send",
	KindDeliver:   "deliver",
	KindDrop:      "drop",
	KindState:     "state",
	KindLinkUp:    "link-up",
	KindLinkDown:  "link-down",
	KindMoveStart: "move-start",
	KindMoveStop:  "move-stop",
	KindCrash:     "crash",
	KindDoorway:   "doorway",
	KindRecolor:   "recolor",
	KindNote:      "note",
}

// String returns the schema-stable name of the kind.
func (k Kind) String() string {
	if k > 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText implements encoding.TextMarshaler; JSON encodes kinds by
// name.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i := Kind(1); i < numKinds; i++ {
		if kindNames[i] == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

var (
	_ encoding.TextMarshaler   = Kind(0)
	_ encoding.TextUnmarshaler = (*Kind)(nil)
)

// Kinds lists every valid kind in schema order.
func Kinds() []Kind {
	out := make([]Kind, 0, numKinds-1)
	for k := Kind(1); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// NoNode marks an unused Node/Peer field.
const NoNode core.NodeID = -1

// Event is one occurrence on the stream. It is a flat value: publishing
// and storing events never allocates. Unused fields hold their zero value
// (Peer: NoNode), and the JSON encoding omits them, so each kind has a
// stable, minimal JSONL shape.
type Event struct {
	// Seq is the bus-assigned publication number (1-based).
	Seq uint64 `json:"seq"`
	// At is the virtual time of the event in microseconds.
	At sim.Time `json:"at"`
	// Kind classifies the event; it determines which fields are set.
	Kind Kind `json:"kind"`
	// Node is the primary node (sender for send, receiver for
	// deliver/drop, endpoint a for link events).
	Node core.NodeID `json:"node"`
	// Peer is the secondary node, or NoNode.
	Peer core.NodeID `json:"peer,omitempty"`
	// Msg is the normalised message type name (send/deliver/drop).
	Msg string `json:"msg,omitempty"`
	// MsgID is the dense TypeNamer ID behind Msg, or 0 when the event
	// carries no message. It is in-process routing state for counters —
	// never part of the wire format.
	MsgID MsgType `json:"-"`
	// Size is the in-memory payload size in bytes (send/deliver/drop).
	Size int `json:"size,omitempty"`
	// MsgSeq is the sender's monotone per-node message sequence number
	// (1-based), stamped on send and carried through deliver/drop, so a
	// causal consumer can name the exact message that closed a wait.
	MsgSeq uint64 `json:"mseq,omitempty"`
	// Delay is the transit time of a delivered message.
	Delay sim.Time `json:"delay,omitempty"`
	// Old and New are state names for KindState ("thinking", "hungry",
	// "eating") and the action for KindDoorway ("cross"/"exit" in New).
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
	// Detail carries kind-specific extra context (moving side, doorway
	// name, colour, free-form notes).
	Detail string `json:"detail,omitempty"`
}

// MarshalJSON hides the NoNode sentinel: a Peer of NoNode is encoded as
// the field's absence, matching omitempty's treatment of the other
// optional fields. It delegates to the hand-written AppendJSON;
// encoding/json survives only as the oracle of the differential tests.
func (e Event) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(make([]byte, 0, 160)), nil
}

// UnmarshalJSON restores the NoNode sentinel for an absent peer field.
func (e *Event) UnmarshalJSON(b []byte) error {
	type wire Event
	w := struct {
		wire
		Peer *core.NodeID `json:"peer"`
	}{}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = Event(w.wire)
	if w.Peer == nil {
		e.Peer = NoNode
	} else {
		e.Peer = *w.Peer
	}
	return nil
}

// String renders the event as the human-readable trace line the -trace
// flag prints.
func (e Event) String() string {
	switch e.Kind {
	case KindSend:
		return fmt.Sprintf("send %d→%d %s (%dB)", e.Node, e.Peer, e.Msg, e.Size)
	case KindDeliver:
		return fmt.Sprintf("deliver %d→%d %s (delay %v)", e.Peer, e.Node, e.Msg, e.Delay)
	case KindDrop:
		return fmt.Sprintf("drop %d→%d %s (%s)", e.Peer, e.Node, e.Msg, e.Detail)
	case KindState:
		return fmt.Sprintf("node %d: %s → %s", e.Node, e.Old, e.New)
	case KindLinkUp:
		return fmt.Sprintf("link up %d—%d (moving side %s)", e.Node, e.Peer, e.Detail)
	case KindLinkDown:
		return fmt.Sprintf("link down %d—%d", e.Node, e.Peer)
	case KindMoveStart:
		return fmt.Sprintf("node %d starts moving %s", e.Node, e.Detail)
	case KindMoveStop:
		return fmt.Sprintf("node %d static again %s", e.Node, e.Detail)
	case KindCrash:
		return fmt.Sprintf("node %d crashed", e.Node)
	case KindDoorway:
		return fmt.Sprintf("node %d doorway %s %s", e.Node, e.Detail, e.New)
	case KindRecolor:
		return fmt.Sprintf("node %d recoloured to %s", e.Node, e.Detail)
	case KindNote:
		return fmt.Sprintf("node %d: %s", e.Node, e.Detail)
	default:
		return fmt.Sprintf("event kind(%d) node %d", uint8(e.Kind), e.Node)
	}
}

// Emitter is the optional extension a runtime's core.Env may implement to
// give protocols access to the event stream. Protocols type-assert for it
// in Init and stay silent when the runtime (e.g. internal/livenet) does
// not provide one.
//
// Emitters must fill the Peer field explicitly: NoNode when the event has
// no peer, the peer's ID otherwise. The runtime passes Peer through
// verbatim — there is no zero-value rewrite, so an event genuinely about
// node 0 keeps Peer 0 (an emitter that leaves Peer at its zero value is
// therefore publishing "peer 0", not "no peer").
type Emitter interface {
	Emit(Event)
}

// Interest is the optional companion of Emitter that exposes the bus's
// per-kind interest mask. Protocols type-assert for it next to Emitter
// and skip the fmt work of building an event when Wants says nobody
// would see it; emitting regardless stays correct, just slower.
type Interest interface {
	Wants(Kind) bool
}

// sinkFlushBytes is the batch threshold of the JSONL sink: encoded
// events accumulate in a scratch buffer and reach the writer in chunks
// of roughly this size (plus whatever an explicit Flush drains).
const sinkFlushBytes = 32 << 10

// Bus is the event stream: a bounded ring of recent events, kind-indexed
// subscriber lists, and an optional batched JSONL sink. It is not safe
// for concurrent use — like the scheduler it belongs to the simulation's
// single thread of control.
type Bus struct {
	ring  []Event
	total uint64

	// subs[k] lists the consumers of kind k in subscription order;
	// subscribers registered for every kind appear in each list. Slot 0
	// serves events whose kind is out of schema range — only the
	// every-kind subscribers see those. Publish dispatches with one
	// index instead of scanning a filter per subscriber.
	subs  [numKinds][]func(Event)
	nsubs int

	// overwritten counts ring slots recycled before anyone read them;
	// sinkDropped counts events the JSONL sink failed to record (every
	// event of a batch whose write failed, plus everything skipped after
	// the sticky error). Both were silent losses before they were counted.
	overwritten uint64
	sinkDropped uint64

	// The JSONL sink: events are encoded with AppendJSON into sinkBuf
	// and written in sinkFlushBytes batches. sinkPending counts the
	// events buffered but not yet written, so a failed batch write can
	// account for every event it lost.
	sinkW       io.Writer
	sinkBuf     []byte
	sinkPending uint64
	sinkErr     error
}

// NewBus creates a bus that retains the last ringCap events (0 disables
// retention; publishing still reaches subscribers and the sink).
func NewBus(ringCap int) *Bus {
	b := &Bus{}
	if ringCap > 0 {
		b.ring = make([]Event, ringCap)
	}
	return b
}

// Subscribe registers fn for the given kinds (none = every kind). A kind
// repeated in the list still delivers each event once.
func (b *Bus) Subscribe(fn func(Event), kinds ...Kind) {
	b.nsubs++
	if len(kinds) == 0 {
		for k := range b.subs {
			b.subs[k] = append(b.subs[k], fn)
		}
		return
	}
	var seen [numKinds]bool
	for _, k := range kinds {
		if k > 0 && k < numKinds && !seen[k] {
			seen[k] = true
			b.subs[k] = append(b.subs[k], fn)
		}
	}
}

// SetSink attaches a JSONL writer: every subsequent event is encoded as
// one JSON object per line, buffered, and written in batches — call
// Flush (or SetSink again) to drain the tail. A nil writer detaches the
// sink; anything still buffered is flushed to the old writer first.
// Write errors are sticky; check SinkErr (or Flush's result) after the
// run.
func (b *Bus) SetSink(w io.Writer) {
	b.flushSink()
	b.sinkW = w
	if w != nil && cap(b.sinkBuf) == 0 {
		b.sinkBuf = make([]byte, 0, sinkFlushBytes+4096)
	}
}

// SinkErr reports the first error the JSONL sink encountered, if any.
func (b *Bus) SinkErr() error { return b.sinkErr }

// Flush writes any batched sink output to the writer and reports the
// sticky sink error, so one `if err := bus.Flush(); err != nil` covers
// both the final batch and any earlier failure. A bus without a sink
// flushes to nothing and reports nil.
func (b *Bus) Flush() error {
	b.flushSink()
	return b.sinkErr
}

// flushSink drains the batch buffer. A short write counts as an error
// (io.ErrShortWrite); on any error the whole pending batch is recorded
// as dropped, since none of its lines can be trusted to have reached
// stable storage in full.
func (b *Bus) flushSink() {
	if len(b.sinkBuf) == 0 {
		return
	}
	n, err := b.sinkW.Write(b.sinkBuf)
	if err == nil && n < len(b.sinkBuf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		b.sinkErr = err
		b.sinkDropped += b.sinkPending
	}
	b.sinkBuf = b.sinkBuf[:0]
	b.sinkPending = 0
}

// Publish assigns the event its sequence number and fans it out to the
// ring, the subscribers of its kind and the sink.
func (b *Bus) Publish(e Event) {
	b.total++
	e.Seq = b.total
	if b.ring != nil {
		if b.total > uint64(len(b.ring)) {
			b.overwritten++
		}
		b.ring[int((b.total-1)%uint64(len(b.ring)))] = e
	}
	k := e.Kind
	if k >= numKinds {
		k = 0 // out-of-range kinds reach only the every-kind subscribers
	}
	for _, fn := range b.subs[k] {
		fn(e)
	}
	if b.sinkW != nil {
		if b.sinkErr != nil {
			b.sinkDropped++
			return
		}
		b.sinkBuf = e.AppendJSON(b.sinkBuf)
		b.sinkBuf = append(b.sinkBuf, '\n')
		b.sinkPending++
		if len(b.sinkBuf) >= sinkFlushBytes {
			b.flushSink()
		}
	}
}

// Total reports how many events have been published.
func (b *Bus) Total() uint64 { return b.total }

// Overwritten reports how many retained events the ring has recycled:
// history older than the last ringCap events is gone. Zero on a bus
// without a ring.
func (b *Bus) Overwritten() uint64 { return b.overwritten }

// SinkDropped reports how many events the JSONL sink lost — the batch
// whose write raised SinkErr and every event published after it.
func (b *Bus) SinkDropped() uint64 { return b.sinkDropped }

// Active reports whether anything observes the stream; publishers may use
// it to skip building events whose construction is not free.
func (b *Bus) Active() bool {
	return b.ring != nil || b.nsubs > 0 || b.sinkW != nil
}

// Wants reports whether an event of kind k would reach any consumer —
// the ring and the sink take every kind, subscribers only theirs.
// Publishers use it to skip assembling the string-bearing events
// (fmt-formatted details) nobody would see; publishing regardless stays
// correct.
func (b *Bus) Wants(k Kind) bool {
	if b.ring != nil || b.sinkW != nil {
		return true
	}
	if k >= numKinds {
		k = 0
	}
	return len(b.subs[k]) > 0
}

// Recent returns up to n of the most recent retained events, oldest
// first.
func (b *Bus) Recent(n int) []Event {
	if b.ring == nil || b.total == 0 || n <= 0 {
		return nil
	}
	cap64 := uint64(len(b.ring))
	have := b.total
	if have > cap64 {
		have = cap64
	}
	if uint64(n) < have {
		have = uint64(n)
	}
	out := make([]Event, 0, have)
	for i := b.total - have; i < b.total; i++ {
		out = append(out, b.ring[int(i%cap64)])
	}
	return out
}

// MsgType is the dense per-world ID of a message payload type, minted by
// TypeNamer in first-seen order (1-based; 0 means "no message"). Dense
// IDs let per-type counters index a slice on the hot path instead of
// concatenating strings and probing a map per event.
type MsgType uint32

// TypeNamer caches the normalised name, shallow byte size and dense ID
// of message payload types, so per-message classification costs one map
// lookup instead of reflection. The cache is copy-on-write: the warm
// path (every type already seen — reached within the first events of a
// run) is one atomic load plus a read of an immutable snapshot, so
// concurrent readers — the sharded engine classifies messages from tile
// workers — pay no lock; a miss copies the snapshot under a mutex.
type TypeNamer struct {
	snap atomic.Pointer[namerSnap]
	mu   sync.Mutex // serialises snapshot replacement on cache misses
}

// namerSnap is one immutable cache generation; misses replace it
// wholesale, never mutate it.
type namerSnap struct {
	names map[reflect.Type]typeInfo
	byID  []string // byID[id-1] is the normalised name behind MsgType id
}

type typeInfo struct {
	name string
	size int
	id   MsgType
}

// NewTypeNamer returns an empty cache.
func NewTypeNamer() *TypeNamer {
	tn := &TypeNamer{}
	tn.snap.Store(&namerSnap{names: make(map[reflect.Type]typeInfo)})
	return tn
}

// Name returns the normalised type name and in-memory size of msg.
func (tn *TypeNamer) Name(msg any) (string, int) {
	info := tn.info(msg)
	return info.name, info.size
}

// Info is Name plus the dense MsgType ID minted for the normalised name.
// Distinct Go types that normalise to the same name (e.g. "lme1.msgFork"
// and "baseline.cmFork") share one ID, so ID and name stay bijective.
func (tn *TypeNamer) Info(msg any) (name string, size int, id MsgType) {
	info := tn.info(msg)
	return info.name, info.size, info.id
}

func (tn *TypeNamer) info(msg any) typeInfo {
	t := reflect.TypeOf(msg)
	if info, ok := tn.snap.Load().names[t]; ok {
		return info
	}
	tn.mu.Lock()
	defer tn.mu.Unlock()
	// Re-check against the latest snapshot: another goroutine may have
	// published this type while we waited for the lock.
	cur := tn.snap.Load()
	if info, ok := cur.names[t]; ok {
		return info
	}
	info := typeInfo{name: NormalizeTypeName(fmt.Sprintf("%T", msg)), size: int(t.Size())}
	for i, n := range cur.byID {
		if n == info.name {
			info.id = MsgType(i + 1)
			break
		}
	}
	next := &namerSnap{
		names: make(map[reflect.Type]typeInfo, len(cur.names)+1),
		byID:  cur.byID,
	}
	for k, v := range cur.names {
		next.names[k] = v
	}
	if info.id == 0 {
		next.byID = append(slices.Clip(cur.byID), info.name)
		info.id = MsgType(len(next.byID))
	}
	next.names[t] = info
	tn.snap.Store(next)
	return info
}

// TypeName returns the normalised name behind a minted ID, or "" for 0
// and IDs never minted.
func (tn *TypeNamer) TypeName(id MsgType) string {
	byID := tn.snap.Load().byID
	if id == 0 || int(id) > len(byID) {
		return ""
	}
	return byID[id-1]
}

// NumTypes reports how many distinct message-type IDs have been minted;
// valid IDs are 1..NumTypes.
func (tn *TypeNamer) NumTypes() int { return len(tn.snap.Load().byID) }

// NormalizeTypeName reduces a Go type name to the schema's message-type
// identifier: package path and pointer markers stripped, the conventional
// "msg"/"cm" prefixes removed, lower-cased. "lme1.msgFork" and
// "baseline.cmFork" both become "fork".
func NormalizeTypeName(name string) string {
	name = strings.TrimPrefix(name, "*")
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimPrefix(name, "msg")
	name = strings.TrimPrefix(name, "cm")
	return strings.ToLower(name)
}
