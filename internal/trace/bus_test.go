package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestSubscriberOrderWithinKind: the kind-indexed fan-out must preserve
// subscription order among the consumers of one kind, including
// every-kind subscribers interleaved with filtered ones.
func TestSubscriberOrderWithinKind(t *testing.T) {
	b := NewBus(0)
	var order []string
	b.Subscribe(func(Event) { order = append(order, "send-1") }, KindSend)
	b.Subscribe(func(Event) { order = append(order, "all-2") })
	b.Subscribe(func(Event) { order = append(order, "send-3") }, KindSend, KindDeliver)
	b.Subscribe(func(Event) { order = append(order, "all-4") })
	b.Publish(Event{Kind: KindSend})
	want := []string{"send-1", "all-2", "send-3", "all-4"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
	order = nil
	b.Publish(Event{Kind: KindDeliver})
	want = []string{"all-2", "send-3", "all-4"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("deliver dispatch order = %v, want %v", order, want)
	}
}

// TestSubscribeDuplicateKind: a kind repeated in the Subscribe call still
// delivers each event once, as the old boolean filter did.
func TestSubscribeDuplicateKind(t *testing.T) {
	b := NewBus(0)
	calls := 0
	b.Subscribe(func(Event) { calls++ }, KindSend, KindSend, KindSend)
	b.Publish(Event{Kind: KindSend})
	if calls != 1 {
		t.Fatalf("duplicated kind delivered %d times, want 1", calls)
	}
}

// TestOutOfRangeKindDispatch: events with kinds outside the schema reach
// only the every-kind subscribers (the old filter scan panicked on a
// filtered subscriber instead).
func TestOutOfRangeKindDispatch(t *testing.T) {
	b := NewBus(0)
	var all, filtered int
	b.Subscribe(func(Event) { filtered++ }, KindSend)
	b.Subscribe(func(Event) { all++ })
	b.Publish(Event{Kind: Kind(200)})
	b.Publish(Event{Kind: numKinds})
	b.Publish(Event{}) // kind 0
	if filtered != 0 {
		t.Errorf("filtered subscriber saw %d out-of-range events", filtered)
	}
	if all != 3 {
		t.Errorf("every-kind subscriber saw %d events, want 3", all)
	}
}

// TestWantsMask: Wants must track exactly who could observe each kind —
// per-kind subscribers for their kinds, ring and sink for everything —
// and fall back after the sink detaches.
func TestWantsMask(t *testing.T) {
	b := NewBus(0)
	for _, k := range Kinds() {
		if b.Wants(k) {
			t.Fatalf("bare bus Wants(%v)", k)
		}
	}
	b.Subscribe(func(Event) {}, KindSend, KindDrop)
	for _, k := range Kinds() {
		want := k == KindSend || k == KindDrop
		if got := b.Wants(k); got != want {
			t.Errorf("Wants(%v) = %v after filtered subscribe, want %v", k, got, want)
		}
	}
	if b.Wants(Kind(200)) || b.Wants(0) {
		t.Error("out-of-range kind wanted with only filtered subscribers")
	}

	// A sink makes every kind wanted; detaching it falls back.
	b.SetSink(&bytes.Buffer{})
	if !b.Wants(KindNote) || !b.Wants(Kind(200)) {
		t.Error("sinked bus must want every kind")
	}
	b.SetSink(nil)
	if b.Wants(KindNote) {
		t.Error("detached sink left KindNote wanted")
	}
	if !b.Wants(KindSend) {
		t.Error("sink detach forgot the subscriber")
	}

	// An every-kind subscriber wants everything, schema or not.
	b.Subscribe(func(Event) {})
	if !b.Wants(KindNote) || !b.Wants(Kind(200)) {
		t.Error("every-kind subscriber must want every kind")
	}

	// A ring wants everything.
	if r := NewBus(8); !r.Wants(KindNote) || !r.Wants(Kind(200)) {
		t.Error("ring bus must want every kind")
	}
}

// countingWriter records each Write it receives.
type countingWriter struct {
	writes    int
	firstSize int
	buf       bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes == 1 {
		w.firstSize = len(p)
	}
	return w.buf.Write(p)
}

// TestSinkBatching: events accumulate in the scratch buffer and hit the
// writer in sinkFlushBytes-sized batches; Flush drains the tail and the
// concatenation of batches is the exact JSONL stream.
func TestSinkBatching(t *testing.T) {
	w := &countingWriter{}
	b := NewBus(0)
	b.SetSink(w)
	e := Event{Kind: KindNote, Node: 1, Peer: NoNode, Detail: strings.Repeat("x", 100)}
	line := len(e.AppendJSON(nil)) + 1
	const n = 600 // ≈72 KiB of lines: at least two threshold crossings
	for i := 0; i < n; i++ {
		b.Publish(e)
		if w.writes > 0 && (i+1)*(line+2) < sinkFlushBytes {
			t.Fatalf("sink wrote after %d events (≤%d buffered bytes), below the %d threshold",
				i+1, (i+1)*(line+2), sinkFlushBytes)
		}
	}
	if w.writes < 2 {
		t.Fatalf("sink wrote %d batches for %d events, want ≥ 2", w.writes, n)
	}
	if w.firstSize < sinkFlushBytes {
		t.Fatalf("first batch was %d bytes, want ≥ %d", w.firstSize, sinkFlushBytes)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(w.buf.String(), "\n"); got != n {
		t.Fatalf("sink delivered %d lines, want %d", got, n)
	}
	if b.SinkDropped() != 0 {
		t.Fatalf("healthy batched sink dropped %d events", b.SinkDropped())
	}
}

// shortWriter accepts one byte fewer than offered and reports no error —
// the silent-truncation case the sink must convert into io.ErrShortWrite.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) { return len(p) - 1, nil }

func TestSinkShortWrite(t *testing.T) {
	b := NewBus(0)
	b.SetSink(shortWriter{})
	b.Publish(Event{Kind: KindNote})
	b.Publish(Event{Kind: KindNote})
	if err := b.Flush(); err == nil || !strings.Contains(err.Error(), "short write") {
		t.Fatalf("Flush = %v, want a short-write error", err)
	}
	if got := b.SinkDropped(); got != 2 {
		t.Fatalf("SinkDropped after short write = %d, want the whole batch (2)", got)
	}
}

// TestSetSinkSwitchFlushes: replacing (or detaching) the sink first
// drains what was encoded for the old writer, so no events are stranded
// in the scratch buffer or delivered to the wrong file.
func TestSetSinkSwitchFlushes(t *testing.T) {
	var first, second bytes.Buffer
	b := NewBus(0)
	b.SetSink(&first)
	b.Publish(Event{Kind: KindNote, Node: 1, Peer: NoNode})
	b.SetSink(&second)
	if got := strings.Count(first.String(), "\n"); got != 1 {
		t.Fatalf("old sink holds %d lines after switch, want 1", got)
	}
	b.Publish(Event{Kind: KindNote, Node: 2, Peer: NoNode})
	b.Publish(Event{Kind: KindNote, Node: 3, Peer: NoNode})
	b.SetSink(nil)
	if got := strings.Count(second.String(), "\n"); got != 2 {
		t.Fatalf("new sink holds %d lines after detach, want 2", got)
	}
	if b.SinkDropped() != 0 || b.SinkErr() != nil {
		t.Fatalf("healthy switch lost events: dropped=%d err=%v", b.SinkDropped(), b.SinkErr())
	}
}

// TestOverwrittenUnderBatchSink: the ring-loss counter is independent of
// the sink; attaching the batched sink must not change it, and a healthy
// sink drops nothing.
func TestOverwrittenUnderBatchSink(t *testing.T) {
	var buf bytes.Buffer
	b := NewBus(4)
	b.SetSink(&buf)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: KindNote, Node: 0, Peer: NoNode})
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := b.Overwritten(); got != 6 {
		t.Fatalf("Overwritten = %d, want 6", got)
	}
	if got := b.SinkDropped(); got != 0 {
		t.Fatalf("SinkDropped = %d, want 0", got)
	}
	if got := strings.Count(buf.String(), "\n"); got != 10 {
		t.Fatalf("sink holds %d lines, want all 10 despite the 4-slot ring", got)
	}
}

// TestTypeNamerInfo: dense IDs are minted in first-seen order, cached,
// and shared across Go types that normalise to the same name.
func TestTypeNamerInfo(t *testing.T) {
	type msgFork struct{ A, B int64 }
	type cmFork struct{ X int32 }
	type msgReq struct{}
	tn := NewTypeNamer()
	name, size, id := tn.Info(msgFork{})
	if name != "fork" || size != 16 || id != 1 {
		t.Fatalf("Info(msgFork) = %q/%d/%d, want fork/16/1", name, size, id)
	}
	if _, _, id2 := tn.Info(msgReq{}); id2 != 2 {
		t.Fatalf("second type minted ID %d, want 2", id2)
	}
	if _, _, again := tn.Info(msgFork{A: 5}); again != 1 {
		t.Fatalf("cached type re-minted ID %d, want 1", again)
	}
	// A different Go type with the same normalised name shares the ID.
	if n, _, idShared := tn.Info(cmFork{}); n != "fork" || idShared != 1 {
		t.Fatalf("Info(cmFork) = %q/%d, want fork/1", n, idShared)
	}
	if got := tn.NumTypes(); got != 2 {
		t.Fatalf("NumTypes = %d, want 2", got)
	}
	if got := tn.TypeName(1); got != "fork" {
		t.Fatalf("TypeName(1) = %q, want fork", got)
	}
	if got := tn.TypeName(0); got != "" {
		t.Fatalf("TypeName(0) = %q, want empty", got)
	}
	if got := tn.TypeName(9); got != "" {
		t.Fatalf("TypeName(9) = %q, want empty", got)
	}
}
