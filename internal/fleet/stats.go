package fleet

import (
	"math"
	"sort"

	"lme/internal/metrics"
)

// Sample accumulates the replica measurements behind one table cell and
// summarises them as mean / percentile / confidence-interval columns.
// Values are folded in insertion order, so aggregates are deterministic
// whenever the caller adds replicas in replica order (which Execute's
// job-ordered results guarantee).
type Sample struct {
	xs []float64
}

// Of builds a sample from the given values.
func Of(xs ...float64) Sample {
	s := Sample{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Add folds one measurement into the sample.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports how many measurements were added.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest measurement (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest measurement (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		m = math.Max(m, x)
	}
	return m
}

// Quantile returns the nearest-rank q-quantile (q in [0,1]; 0 when
// empty), matching the convention of internal/metrics.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// StdDev returns the sample standard deviation (n−1 denominator; 0 when
// fewer than two measurements).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// StdErr returns the standard error of the mean (0 when fewer than two
// measurements).
func (s *Sample) StdErr() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean: 1.96 standard errors.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// SketchCell accumulates replica quantile sketches behind one percentile
// table cell by merging their exact wire snapshots. Because sketch
// merging is insertion-order independent and the snapshots are exact,
// the pooled quantiles depend only on the replica set — never on worker
// count or completion order — and describe the pooled underlying sample
// (every response time across every replica), not a quantile of
// per-replica quantiles.
type SketchCell struct {
	s *metrics.Sketch
}

// Add merges one replica's snapshot into the cell.
func (c *SketchCell) Add(snap metrics.SketchSnapshot) {
	sk := metrics.FromSnapshot(snap)
	if c.s == nil {
		c.s = sk
		return
	}
	c.s.Merge(sk)
}

// Count reports the pooled observation count.
func (c *SketchCell) Count() uint64 {
	if c.s == nil {
		return 0
	}
	return c.s.Count()
}

// Quantile returns the pooled q-quantile (0 when empty), within the
// sketch's relative accuracy of the exact pooled nearest-rank value.
func (c *SketchCell) Quantile(q float64) float64 {
	if c.s == nil {
		return 0
	}
	return c.s.QuantileFloat(q)
}

// Mean returns the exact pooled mean (0 when empty).
func (c *SketchCell) Mean() float64 {
	if c.s == nil {
		return 0
	}
	return c.s.Mean()
}
