package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSeedDerivation(t *testing.T) {
	if Seed(42, 0) != 42 {
		t.Fatalf("replica 0 must use the base seed, got %d", Seed(42, 0))
	}
	seen := map[uint64]int{}
	for base := uint64(1); base <= 8; base++ {
		for r := 0; r < 64; r++ {
			s := Seed(base, r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %d (replica %d of base %d and earlier entry %d)", s, r, base, prev)
			}
			seen[s] = r
			if s != Seed(base, r) {
				t.Fatal("seed derivation not deterministic")
			}
		}
	}
}

func TestPoolOrderAndDeterminism(t *testing.T) {
	jobs := make([]Job, 40)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key: fmt.Sprintf("cell%d", i%4), Replica: i / 4, Seed: Seed(7, i),
			Run: func(_ context.Context, seed uint64) (any, error) {
				return seed * 3, nil
			},
		}
	}
	run := func(workers int) []Result {
		res, err := Pool{Workers: workers}.Execute(context.Background(), jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)
	for i := range serial {
		if serial[i].Value != wide[i].Value || serial[i].Job.Key != wide[i].Job.Key {
			t.Fatalf("result %d differs across worker counts: %+v vs %+v", i, serial[i], wide[i])
		}
		if want := jobs[i].Seed * 3; serial[i].Value != want {
			t.Fatalf("result %d out of job order: got %v want %v", i, serial[i].Value, want)
		}
	}
}

func TestPoolPanicRecovery(t *testing.T) {
	jobs := []Job{
		{Key: "ok", Run: func(context.Context, uint64) (any, error) { return 1, nil }},
		{Key: "boom", Replica: 2, Run: func(context.Context, uint64) (any, error) { panic("kaboom") }},
	}
	res, err := Pool{Workers: 1}.Execute(context.Background(), jobs)
	if err == nil {
		t.Fatal("panicking job did not surface an error")
	}
	for _, want := range []string{"boom", "replica 2", "kaboom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if res[0].Err != nil || res[0].Value != 1 {
		t.Fatalf("healthy job corrupted: %+v", res[0])
	}
}

func TestPoolFailFastSkipsPending(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	jobs := make([]Job, 64)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key: fmt.Sprint(i),
			Run: func(context.Context, uint64) (any, error) {
				ran.Add(1)
				if i == 0 {
					return nil, boom
				}
				return i, nil
			},
		}
	}
	res, err := Pool{Workers: 1, Queue: 1}.Execute(context.Background(), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == int32(len(jobs)) {
		t.Fatal("fail-fast did not skip any pending job")
	}
	skipped := 0
	for _, r := range res[1:] {
		if errors.Is(r.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("no job marked ErrSkipped after failure")
	}
}

func TestPoolContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job, 32)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Key: fmt.Sprint(i),
			Run: func(context.Context, uint64) (any, error) {
				if i == 2 {
					cancel() // abort mid-run, as a caller deadline would
				}
				return i, nil
			},
		}
	}
	res, err := Pool{Workers: 1, Queue: 1}.Execute(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(res[len(res)-1].Err, ErrSkipped) {
		t.Fatalf("tail job should be skipped, got %v", res[len(res)-1].Err)
	}
}

func TestPoolEmptyAndZeroValue(t *testing.T) {
	res, err := Pool{}.Execute(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty plan: %v, %v", res, err)
	}
}

func TestSampleStats(t *testing.T) {
	s := Of(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	if got := s.StdDev(); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev = %v", got)
	}
	if got := s.StdErr(); math.Abs(got-2.138/math.Sqrt(8)) > 0.001 {
		t.Fatalf("stderr = %v", got)
	}
	if got := s.CI95(); math.Abs(got-1.96*s.StdErr()) > 1e-12 {
		t.Fatalf("ci95 = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 || s.N() != 8 {
		t.Fatalf("min/max/n = %v/%v/%v", s.Min(), s.Max(), s.N())
	}
	if got := s.Quantile(0.5); got != 4 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	var empty Sample
	if empty.Mean() != 0 || empty.StdErr() != 0 || empty.Quantile(0.95) != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty sample must summarise to zeros")
	}
	one := Of(3)
	if one.StdDev() != 0 || one.CI95() != 0 {
		t.Fatal("single sample has no spread")
	}
}
