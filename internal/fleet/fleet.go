// Package fleet executes independent simulation replicas on a bounded
// worker pool. It is the engine behind the experiment harness: an
// experiment declares its runs as Jobs (each fully self-contained — its
// own world, scheduler and metrics — with a deterministic seed derived
// from a base seed and a replica index), and a Pool sized to GOMAXPROCS
// executes them on all cores. Because jobs share no mutable state and
// results are stored by job index, the output is bit-for-bit identical
// for any worker count.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Job is one independent unit of work: typically a whole simulation run
// that returns a measurement value. Run must not touch state shared with
// other jobs; everything it needs beyond the seed must be captured (or
// rebuilt) inside the closure.
type Job struct {
	// Key names the result cell this job contributes to; replicas of
	// the same measurement share a Key.
	Key string
	// Replica is the replica index under Key (0-based).
	Replica int
	// Seed is the effective random seed, normally Seed(base, Replica).
	Seed uint64
	// Run produces the replica's value. The context is cancelled when
	// the pool fails fast or the caller aborts; long runs should check
	// it at convenient boundaries.
	Run func(ctx context.Context, seed uint64) (any, error)
}

// Seed derives the deterministic seed of replica r from a base seed
// using a splitmix64 finalizer. Replica 0 maps to the base itself, so a
// single-replica plan reproduces historic single-seed results exactly;
// higher replicas get well-mixed distinct streams.
func Seed(base uint64, replica int) uint64 {
	if replica == 0 {
		return base
	}
	z := base + 0x9e3779b97f4a7c15*uint64(replica)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// Result pairs a job with its outcome. Execute returns results in job
// order regardless of the order workers finished them.
type Result struct {
	Job   Job
	Value any
	Err   error
}

// ErrSkipped marks jobs that never ran because the pool failed fast or
// the caller's context was cancelled first.
var ErrSkipped = errors.New("fleet: job skipped after earlier failure")

// Pool is a bounded worker pool. The zero value runs one job per
// available CPU with a small dispatch queue.
type Pool struct {
	// Workers caps concurrent jobs; ≤0 selects GOMAXPROCS.
	Workers int
	// Queue bounds the dispatch channel; ≤0 selects 2×Workers. A small
	// bound keeps memory flat when a plan holds thousands of jobs.
	Queue int
	// OnResult, when set, is invoked once per completed (or skipped)
	// job, from whichever worker goroutine ran it — it MUST be safe for
	// concurrent invocation (live progress counters use atomics). It
	// observes results, never mutates them.
	OnResult func(Result)
}

// Execute runs every job and returns their results in job order. The
// first job error (including a recovered panic) cancels the run: jobs
// already executing finish, queued ones are marked ErrSkipped, and the
// first error is returned alongside the partial results. A cancelled
// parent context aborts the same way with ctx's error.
func (p Pool) Execute(ctx context.Context, jobs []Job) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	queueLen := p.Queue
	if queueLen <= 0 {
		queueLen = 2 * workers
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(jobs))
	for i, j := range jobs {
		results[i] = Result{Job: j, Err: ErrSkipped}
	}

	type indexed struct {
		idx int
		job Job
	}
	queue := make(chan indexed, queueLen)
	go func() {
		defer close(queue)
		for i, j := range jobs {
			select {
			case queue <- indexed{idx: i, job: j}:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range queue {
				if runCtx.Err() != nil {
					continue // leave the job marked skipped
				}
				v, err := runJob(runCtx, it.job)
				results[it.idx] = Result{Job: it.job, Value: v, Err: err}
				if p.OnResult != nil {
					p.OnResult(results[it.idx])
				}
				if err != nil {
					fail(fmt.Errorf("%s (replica %d, seed %#x): %w",
						it.job.Key, it.job.Replica, it.job.Seed, err))
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// The caller aborted; report that rather than a secondary
		// failure some job produced while shutting down.
		return results, err
	}
	mu.Lock()
	defer mu.Unlock()
	return results, firstErr
}

// runJob executes one job with panic containment, so one diverging
// replica fails its cell instead of killing the whole process.
func runJob(ctx context.Context, j Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return j.Run(ctx, j.Seed)
}
