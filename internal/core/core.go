// Package core defines the abstractions of the local mutual exclusion
// problem in mobile ad hoc networks, as specified in Chapter 3 of
// "Efficient and Robust Local Mutual Exclusion in Mobile Ad Hoc Networks"
// (ICDCS 2008): node states, the protocol automaton interface that every
// algorithm implements, and the environment interface through which an
// automaton observes its neighbourhood and sends messages.
//
// A Protocol is a purely reactive, single-threaded state machine: the
// runtime (the discrete-event simulator in internal/manet, or the
// goroutine-per-node runtime in internal/livenet) delivers one event at a
// time, which matches the atomic local computation steps of the paper's
// execution model.
package core

import (
	"slices"

	"lme/internal/sim"
)

// NodeID uniquely identifies a node in the system. IDs are comparable and
// totally ordered; the algorithms use the order for symmetry breaking
// (initial fork placement, initial priorities, initial colours).
type NodeID int

// Message is a protocol-level message payload. Each algorithm defines its
// own concrete message types; the transport treats them as opaque values.
type Message any

// State is the coarse dining-philosophers state of a node (§3.2).
type State int

// The three state sets of §3.2. A node cycles thinking → hungry → eating →
// thinking; the algorithms may also demote an eating node back to hungry
// when it moves into a new neighbourhood.
const (
	Thinking State = iota + 1
	Hungry
	Eating
)

// String returns the lower-case name of the state.
func (s State) String() string {
	switch s {
	case Thinking:
		return "thinking"
	case Hungry:
		return "hungry"
	case Eating:
		return "eating"
	default:
		return "invalid"
	}
}

// Protocol is the automaton each algorithm implements, one instance per
// node. All methods are invoked by the runtime, never concurrently for the
// same node. A Protocol must not retain goroutines or timers of its own;
// any waiting is expressed by returning and reacting to later events.
type Protocol interface {
	// Init wires the environment handle. It is called exactly once,
	// before any other method, after the initial topology exists.
	Init(env Env)

	// OnMessage delivers a message from a current or former neighbour.
	// (A message may arrive after the sender moved away if the link was
	// still up when it was sent and delivery raced the LinkDown; the
	// transport drops in-flight messages when a link fails, so in
	// practice from is a neighbour at delivery time.)
	OnMessage(from NodeID, msg Message)

	// OnLinkUp reports a link creation indication from the link-level
	// protocol (§3.1). iAmMoving reports which side of the biased
	// notification this node received: exactly one endpoint of every new
	// link is told it is the moving side, and that side is never a node
	// that is static while the other moves.
	OnLinkUp(peer NodeID, iAmMoving bool)

	// OnLinkDown reports a link failure indication. The shared fork, if
	// any, is destroyed with the link.
	OnLinkDown(peer NodeID)

	// BecomeHungry is called by the application when the node, currently
	// thinking, requests access to its critical section.
	BecomeHungry()

	// ExitCS is called by the application when the node, currently
	// eating, leaves its critical section. The protocol runs its exit
	// code and transitions to thinking.
	ExitCS()

	// State reports the node's current dining state.
	State() State
}

// Env is the environment handle a Protocol uses to act on the world. It is
// implemented by each runtime.
//
// Runtimes that expose the typed observability stream (internal/trace)
// additionally implement trace.Emitter on their Env value; protocols
// type-assert for it in Init and publish protocol-level events (doorway
// crossings, recolouring rounds, diagnostics) when it is present. The
// extension is deliberately not part of this interface so that minimal
// runtimes (internal/livenet) owe the trace layer nothing.
type Env interface {
	// ID returns this node's identifier.
	ID() NodeID

	// Now returns the current virtual (or wall-clock) time.
	Now() sim.Time

	// Neighbors returns the IDs of the nodes currently adjacent to this
	// node in ascending order, as maintained by the link-level protocol.
	// The returned slice is a read-only view owned by the runtime, valid
	// until the next topology change; callers that retain it must copy.
	Neighbors() []NodeID

	// Send transmits a message to a neighbour over the shared link. If
	// no link to the peer currently exists the message is discarded.
	Send(to NodeID, msg Message)

	// Broadcast transmits a message to every current neighbour.
	Broadcast(msg Message)

	// Moving reports whether this node is currently in motion. The
	// paper's model assumes nodes know their own mobility status.
	Moving() bool

	// SetState records a dining-state transition. Protocols must report
	// every transition through this call so that workloads and checkers
	// observe them; the runtime forwards transitions to listeners.
	SetState(s State)
}

// InsertID inserts id into the ascending-sorted slice s, keeping it
// sorted; inserting an ID already present is a no-op. It is the
// incremental-update half of the sorted neighbour sets the runtimes and
// protocols maintain in place of per-call map sorts.
func InsertID(s []NodeID, id NodeID) []NodeID {
	i, found := slices.BinarySearch(s, id)
	if found {
		return s
	}
	return slices.Insert(s, i, id)
}

// RemoveID deletes id from the ascending-sorted slice s, keeping it
// sorted; removing an absent ID is a no-op.
func RemoveID(s []NodeID, id NodeID) []NodeID {
	i, found := slices.BinarySearch(s, id)
	if !found {
		return s
	}
	return slices.Delete(s, i, i+1)
}

// Listener observes dining-state transitions of all nodes. Implemented by
// the workload driver, the safety checker and the metrics recorders.
type Listener interface {
	// OnStateChange is called after node id transitioned from old to new
	// at virtual time at.
	OnStateChange(id NodeID, old, new State, at sim.Time)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(id NodeID, old, new State, at sim.Time)

// OnStateChange implements Listener.
func (f ListenerFunc) OnStateChange(id NodeID, old, new State, at sim.Time) {
	f(id, old, new, at)
}
