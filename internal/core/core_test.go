package core

import (
	"slices"
	"testing"
)

func TestInsertID(t *testing.T) {
	var s []NodeID
	for _, id := range []NodeID{5, 1, 9, 5, 3, 0, 9} {
		s = InsertID(s, id)
	}
	want := []NodeID{0, 1, 3, 5, 9}
	if !slices.Equal(s, want) {
		t.Fatalf("InsertID built %v, want %v (sorted, no duplicates)", s, want)
	}
}

func TestRemoveID(t *testing.T) {
	s := []NodeID{0, 1, 3, 5, 9}
	s = RemoveID(s, 3)
	s = RemoveID(s, 3) // absent: no-op
	s = RemoveID(s, 0) // first element
	s = RemoveID(s, 9) // last element
	want := []NodeID{1, 5}
	if !slices.Equal(s, want) {
		t.Fatalf("RemoveID left %v, want %v", s, want)
	}
	if s = RemoveID(s[:0], 1); len(s) != 0 {
		t.Fatalf("RemoveID on empty slice returned %v", s)
	}
}

func TestInsertRemoveIDRoundTrip(t *testing.T) {
	var s []NodeID
	for id := NodeID(31); id >= 0; id-- {
		s = InsertID(s, id)
	}
	if !slices.IsSorted(s) || len(s) != 32 {
		t.Fatalf("descending inserts gave %v", s)
	}
	for id := NodeID(0); id < 32; id += 2 {
		s = RemoveID(s, id)
	}
	if len(s) != 16 || !slices.IsSorted(s) {
		t.Fatalf("after removing evens: %v", s)
	}
	for _, id := range s {
		if id%2 == 0 {
			t.Fatalf("even id %d survived removal: %v", id, s)
		}
	}
}
