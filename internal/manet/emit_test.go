package manet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/trace"
)

// emitter is a protocol that publishes custom trace events from Init,
// exercising env.Emit's pass-through contract.
type emitter struct {
	stub
	events []trace.Event
}

func (e *emitter) Init(env core.Env) {
	e.stub.Init(env)
	em := env.(trace.Emitter)
	for _, ev := range e.events {
		em.Emit(ev)
	}
}

// TestEmitPeerPassthrough pins the env.Emit contract: the Peer field is
// passed through verbatim. An event genuinely about node 0 keeps Peer 0
// (the runtime must not rewrite it to NoNode), and NoNode encodes as the
// absence of the peer field in JSONL.
func TestEmitPeerPassthrough(t *testing.T) {
	cfg := lineConfig()
	w := NewWorld(cfg)
	var buf bytes.Buffer
	w.Bus().SetSink(&buf)
	var seen []trace.Event
	w.Bus().Subscribe(func(ev trace.Event) { seen = append(seen, ev) }, trace.KindNote)

	w.AddNode(graph.Point{X: 0})
	id := w.AddNode(graph.Point{X: 0.05})
	w.SetProtocol(0, &stub{})
	w.SetProtocol(id, &emitter{events: []trace.Event{
		{Kind: trace.KindNote, Peer: 0, Detail: "about-node-zero"},
		{Kind: trace.KindNote, Peer: trace.NoNode, Detail: "no-peer"},
	}})
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}

	if err := w.Bus().Flush(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("subscriber saw %d note events, want 2", len(seen))
	}
	if seen[0].Peer != 0 || seen[0].Node != id {
		t.Fatalf("peer-0 event arrived as node=%d peer=%d, want node=%d peer=0",
			seen[0].Node, seen[0].Peer, id)
	}
	if seen[1].Peer != trace.NoNode {
		t.Fatalf("no-peer event arrived with peer=%d, want NoNode", seen[1].Peer)
	}

	var lines []string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.Contains(l, `"kind":"note"`) {
			lines = append(lines, l)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d note lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"peer":0`) {
		t.Fatalf("peer-0 event lost its peer field on the wire: %s", lines[0])
	}
	if strings.Contains(lines[1], `"peer"`) {
		t.Fatalf("NoNode leaked into the wire encoding: %s", lines[1])
	}
	// And both survive the round trip.
	for i, l := range lines {
		var ev trace.Event
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Peer != seen[i].Peer {
			t.Fatalf("line %d round-tripped peer %d, want %d", i, ev.Peer, seen[i].Peer)
		}
	}
}
