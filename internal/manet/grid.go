package manet

import (
	"math"

	"lme/internal/core"
	"lme/internal/graph"
)

// grid is a uniform spatial hash over node positions with cell size equal
// to the radio range, so every node within Radius of a point lies in the
// 3×3 block of cells around it. It turns the initial O(n²) all-pairs link
// scan and the O(n) per-mover-tick refresh into O(n·k) and O(k) for local
// density k. Cell membership is maintained incrementally as nodes move;
// candidate order never matters to callers, who sort before acting, so
// within-cell order is arbitrary.
type grid struct {
	inv   float64 // 1 / cell size
	cells map[int64][]core.NodeID
}

// newGrid builds an empty grid with the given cell size. A non-positive
// size (a world with Radius 0 links only coincident nodes) falls back to
// unit cells, which still over-approximates the empty neighbourhood.
func newGrid(cellSize float64) grid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return grid{inv: 1 / cellSize, cells: make(map[int64][]core.NodeID)}
}

// cellKey packs the 2-D cell coordinates of p into one map key.
func (g *grid) cellKey(p graph.Point) int64 {
	cx := int32(math.Floor(p.X * g.inv))
	cy := int32(math.Floor(p.Y * g.inv))
	return int64(cx)<<32 | int64(uint32(cy))
}

// insert records id at position p.
func (g *grid) insert(id core.NodeID, p graph.Point) {
	k := g.cellKey(p)
	g.cells[k] = append(g.cells[k], id)
}

// move re-files id from position old to position new; a within-cell move
// is free.
func (g *grid) move(id core.NodeID, oldPos, newPos graph.Point) {
	from, to := g.cellKey(oldPos), g.cellKey(newPos)
	if from == to {
		return
	}
	cell := g.cells[from]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			g.cells[from] = cell[:len(cell)-1]
			break
		}
	}
	g.cells[to] = append(g.cells[to], id)
}

// appendNearby appends to out every node filed in the 3×3 cell block
// around p (a superset of the nodes within one cell size of p, possibly
// including the querying node itself) and returns the extended slice.
func (g *grid) appendNearby(p graph.Point, out []core.NodeID) []core.NodeID {
	cx := int32(math.Floor(p.X * g.inv))
	cy := int32(math.Floor(p.Y * g.inv))
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			k := int64(cx+dx)<<32 | int64(uint32(cy+dy))
			out = append(out, g.cells[k]...)
		}
	}
	return out
}
