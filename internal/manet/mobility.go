package manet

import (
	"math"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
)

// MoveTo starts continuous movement of id toward dest at the given speed
// (plane units per second, must be positive). The node is flagged moving
// immediately; its links are recomputed every TickInterval as it advances
// and once more on arrival, when it becomes static again. Starting a new
// movement supersedes any movement in progress.
func (w *World) MoveTo(id core.NodeID, dest graph.Point, speed float64) {
	n := w.nodes[id]
	if n.crashed || speed <= 0 {
		return
	}
	w.setMoving(n, true)
	n.target = dest
	n.speed = speed
	n.moveID++
	w.scheduleTick(n, n.moveID)
}

// Jump teleports id to dest: the node is flagged moving, relocated, its
// links recomputed, and it becomes static again after settle time units
// (minimum one tick). Jump models the scripted "node moves to a new
// neighbourhood" steps of the paper's scenarios without path simulation.
func (w *World) Jump(id core.NodeID, dest graph.Point, settle sim.Time) {
	n := w.nodes[id]
	if n.crashed {
		return
	}
	if settle <= 0 {
		settle = 1
	}
	w.setMoving(n, true)
	n.moveID++
	moveID := n.moveID
	w.relocate(n, dest)
	w.refreshLinks(id)
	w.sched.After(settle, func() {
		if n.moveID != moveID || n.crashed {
			return
		}
		w.setMoving(n, false)
	})
}

// JumpAt schedules a Jump at time t.
func (w *World) JumpAt(id core.NodeID, dest graph.Point, settle, t sim.Time) {
	w.sched.At(t, func() { w.Jump(id, dest, settle) })
}

// moveTicker is one pooled movement-tick record: the sim.Runner the
// movement engine schedules instead of a fresh closure per tick. A node
// can have several ticks in flight after a superseding MoveTo, so each
// scheduled tick gets its own record (carrying the moveID that validates
// it) and returns to the pool after firing.
type moveTicker struct {
	w      *World
	n      *node
	moveID uint64
}

// Run implements sim.Runner.
func (t *moveTicker) Run() {
	w := t.w
	w.moveTick(t.n, t.moveID)
	t.n = nil
	w.freeTickers = append(w.freeTickers, t)
}

func (w *World) scheduleTick(n *node, moveID uint64) {
	var t *moveTicker
	if k := len(w.freeTickers); k > 0 {
		t = w.freeTickers[k-1]
		w.freeTickers = w.freeTickers[:k-1]
	} else {
		t = new(moveTicker)
	}
	*t = moveTicker{w: w, n: n, moveID: moveID}
	w.sched.AtRunner(w.sched.Now()+w.cfg.TickInterval, t)
}

func (w *World) moveTick(n *node, moveID uint64) {
	if n.moveID != moveID || n.crashed || !n.moving {
		return
	}
	step := n.speed * float64(w.cfg.TickInterval) / 1e6
	dx, dy := n.target.X-n.pos.X, n.target.Y-n.pos.Y
	dist := math.Hypot(dx, dy)
	if dist <= step {
		w.relocate(n, n.target)
		w.setMoving(n, false)
		w.refreshLinks(n.id)
		return
	}
	w.relocate(n, graph.Point{
		X: n.pos.X + dx/dist*step,
		Y: n.pos.Y + dy/dist*step,
	})
	w.refreshLinks(n.id)
	w.scheduleTick(n, moveID)
}

// Waypoint drives a subset of nodes with the random-waypoint mobility
// model: each mover repeatedly pauses, picks a uniform destination on the
// unit square, and travels there at its speed.
type Waypoint struct {
	// Speed in plane units per second.
	Speed float64
	// PauseMin and PauseMax bound the uniform pause between trips.
	PauseMin, PauseMax sim.Time
	// Until stops issuing new trips after this time (0 = forever).
	Until sim.Time
}

// Attach starts the waypoint process for each of the given nodes.
func (wp Waypoint) Attach(w *World, ids []core.NodeID) {
	for _, id := range ids {
		wp.scheduleNext(w, id)
	}
}

func (wp Waypoint) scheduleNext(w *World, id core.NodeID) {
	pause := wp.PauseMin
	if span := int64(wp.PauseMax - wp.PauseMin); span > 0 {
		pause += sim.Time(w.sched.Rand().Int64N(span + 1))
	}
	w.sched.After(pause, func() {
		if w.nodes[id].crashed {
			return
		}
		if wp.Until > 0 && w.sched.Now() >= wp.Until {
			return
		}
		dest := graph.Point{X: w.sched.Rand().Float64(), Y: w.sched.Rand().Float64()}
		w.MoveTo(id, dest, wp.Speed)
		wp.watchArrival(w, id)
	})
}

// watchArrival polls for trip completion and then schedules the next trip.
// Polling at tick granularity keeps the mobility model independent of the
// movement engine's internals.
func (wp Waypoint) watchArrival(w *World, id core.NodeID) {
	w.sched.After(w.cfg.TickInterval, func() {
		n := w.nodes[id]
		if n.crashed {
			return
		}
		if n.moving {
			wp.watchArrival(w, id)
			return
		}
		wp.scheduleNext(w, id)
	})
}
