package manet

import (
	"math"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
)

// MoveTo starts continuous movement of id toward dest at the given speed
// (plane units per second, must be positive). The node is flagged moving
// immediately; its links are recomputed every TickInterval as it advances
// and once more on arrival, when it becomes static again. Starting a new
// movement supersedes any movement in progress.
//
// Movement ticks are ClassTopo events owned by the mover: topology
// mutations the sharded engine serialises on its coordinator between
// windows. Callable from the mover's own execution context or while the
// world is paused.
func (w *World) MoveTo(id core.NodeID, dest graph.Point, speed float64) {
	n := w.nodes[id]
	if n.crashed || speed <= 0 {
		return
	}
	w.setMoving(n, true)
	n.target = dest
	n.speed = speed
	n.moveID++
	w.scheduleTick(n, n.moveID)
}

// Jump teleports id to dest: the node is flagged moving, relocated, its
// links recomputed, and it becomes static again after settle time units
// (minimum one tick). Jump models the scripted "node moves to a new
// neighbourhood" steps of the paper's scenarios without path simulation.
// Coordinator context only (between runs, or inside a JumpAt event).
func (w *World) Jump(id core.NodeID, dest graph.Point, settle sim.Time) {
	n := w.nodes[id]
	if n.crashed {
		return
	}
	if settle <= 0 {
		settle = 1
	}
	w.setMoving(n, true)
	n.moveID++
	moveID := n.moveID
	w.relocate(n, dest)
	w.refreshLinks(id)
	w.scheduleLocalAt(n, w.nowOf(n)+settle, func() {
		if n.moveID != moveID || n.crashed {
			return
		}
		w.setMoving(n, false)
	})
}

// JumpAt schedules a Jump at time t, as a topology event owned by id.
func (w *World) JumpAt(id core.NodeID, dest graph.Point, settle, t sim.Time) {
	n := w.nodes[id]
	w.scheduleTopo(n, t, sim.Item{Fn: func() { w.Jump(id, dest, settle) }})
}

// moveTicker is one pooled movement-tick record: the sim.Runner the
// movement engine schedules instead of a fresh closure per tick. A node
// can have several ticks in flight after a superseding MoveTo, so each
// scheduled tick gets its own record (carrying the moveID that validates
// it) and returns to the pool after firing. Ticks always execute in
// coordinator context (they are ClassTopo), so the pool needs no lock;
// ticks scheduled from a tile worker (a waypoint trip start) allocate
// fresh records instead of touching the shared pool.
type moveTicker struct {
	w      *World
	n      *node
	moveID uint64
}

// Run implements sim.Runner.
func (t *moveTicker) Run() {
	w := t.w
	w.moveTick(t.n, t.moveID)
	t.n = nil
	w.freeTickers = append(w.freeTickers, t)
}

func (w *World) scheduleTick(n *node, moveID uint64) {
	var t *moveTicker
	if sx := w.shard; sx == nil || !sx.inWindow {
		if k := len(w.freeTickers); k > 0 {
			t = w.freeTickers[k-1]
			w.freeTickers = w.freeTickers[:k-1]
		}
	}
	if t == nil {
		t = new(moveTicker)
	}
	*t = moveTicker{w: w, n: n, moveID: moveID}
	w.scheduleTopo(n, w.nowOf(n)+w.cfg.TickInterval, sim.Item{R: t})
}

func (w *World) moveTick(n *node, moveID uint64) {
	if n.moveID != moveID || n.crashed || !n.moving {
		return
	}
	step := n.speed * float64(w.cfg.TickInterval) / 1e6
	dx, dy := n.target.X-n.pos.X, n.target.Y-n.pos.Y
	dist := math.Hypot(dx, dy)
	if dist <= step {
		w.relocate(n, n.target)
		w.setMoving(n, false)
		w.refreshLinks(n.id)
		return
	}
	w.relocate(n, graph.Point{
		X: n.pos.X + dx/dist*step,
		Y: n.pos.Y + dy/dist*step,
	})
	w.refreshLinks(n.id)
	w.scheduleTick(n, moveID)
}

// Waypoint drives a subset of nodes with the random-waypoint mobility
// model: each mover repeatedly pauses, picks a uniform destination on the
// unit square, and travels there at its speed. Pause lengths and
// destinations are drawn from each mover's private random stream, so the
// model is deterministic under both engines and any worker count.
type Waypoint struct {
	// Speed in plane units per second.
	Speed float64
	// PauseMin and PauseMax bound the uniform pause between trips.
	PauseMin, PauseMax sim.Time
	// Until stops issuing new trips after this time (0 = forever).
	Until sim.Time
}

// Attach starts the waypoint process for each of the given nodes. Each
// mover gets one reusable wpRunner that carries the whole
// pause→travel→arrive cycle: at most one pending event per mover, zero
// allocations per trip.
func (wp Waypoint) Attach(w *World, ids []core.NodeID) {
	for _, id := range ids {
		r := &wpRunner{w: w, n: w.nodes[id], wp: wp}
		r.scheduleNext()
	}
}

// wpRunner is the per-mover waypoint state machine. Both of its states
// are node-local events (ClassLocal, owned by the mover): starting a trip
// touches only the mover's own movement fields and hands the actual
// topology work to ClassTopo ticks, and arrival polling just reads the
// mover's flag. watching selects the state: false = a pause is elapsing
// and the next firing starts a trip; true = a trip is underway and the
// next firing polls for arrival. Polling at tick granularity keeps the
// mobility model independent of the movement engine's internals.
type wpRunner struct {
	w        *World
	n        *node
	wp       Waypoint
	watching bool
}

// Run implements sim.Runner.
func (r *wpRunner) Run() {
	w, n := r.w, r.n
	if n.crashed {
		return
	}
	now := w.nowOf(n)
	if r.watching {
		if n.moving {
			w.scheduleLocalRunner(n, now+w.cfg.TickInterval, r)
			return
		}
		r.watching = false
		r.scheduleNext()
		return
	}
	// Pause elapsed: start the next trip.
	if r.wp.Until > 0 && now >= r.wp.Until {
		return
	}
	dest := graph.Point{X: n.rng.Float64(), Y: n.rng.Float64()}
	w.MoveTo(n.id, dest, r.wp.Speed)
	r.watching = true
	w.scheduleLocalRunner(n, now+w.cfg.TickInterval, r)
}

// scheduleNext draws the pause before the mover's next trip and
// reschedules the runner for it.
func (r *wpRunner) scheduleNext() {
	pause := r.wp.PauseMin
	if span := int64(r.wp.PauseMax - r.wp.PauseMin); span > 0 {
		pause += sim.Time(r.n.rng.Int64N(span + 1))
	}
	r.w.scheduleLocalRunner(r.n, r.w.nowOf(r.n)+pause, r)
}
