package manet_test

import (
	"os"
	"testing"
)

// TestDumpGoldenTrace writes the golden scenario's JSONL stream to the
// file named by LME_DUMP (skipped otherwise) — a debugging aid for
// diffing event streams across substrate versions when
// TestGoldenTraceHash reports a mismatch.
func TestDumpGoldenTrace(t *testing.T) {
	path := os.Getenv("LME_DUMP")
	if path == "" {
		t.Skip("LME_DUMP not set")
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runGoldenScenario(t, f)
}
