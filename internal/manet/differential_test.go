package manet

import (
	"bytes"
	"fmt"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
)

// chatter is a protocol that turns link churn into message traffic, so the
// differential runs exercise the send/deliver/drop paths (FIFO floors,
// link epochs, pooled deliveries) and not just link maintenance: every
// link-up sends a greeting, every greeting is echoed once.
type chatter struct {
	env core.Env
}

type msgHello struct{}
type msgEcho struct{}

func (c *chatter) Init(env core.Env) { c.env = env }
func (c *chatter) OnMessage(from core.NodeID, msg core.Message) {
	if _, ok := msg.(msgHello); ok {
		c.env.Send(from, msgEcho{})
	}
}
func (c *chatter) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	c.env.Send(peer, msgHello{})
}
func (c *chatter) OnLinkDown(core.NodeID) {}
func (c *chatter) BecomeHungry()          {}
func (c *chatter) ExitCS()                {}
func (c *chatter) State() core.State      { return core.Thinking }

// differentialTrace runs a randomized mobility scenario — waypoint movers,
// a scripted jump, crashes with messages mid-flight — and returns the full
// JSONL event stream. With brute set, link maintenance uses the all-pairs
// reference scan instead of the spatial hash grid.
func differentialTrace(t *testing.T, seed uint64, brute bool) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Radius = 0.16
	w := NewWorld(cfg)
	w.bruteLinks = brute
	var buf bytes.Buffer
	w.Bus().SetSink(&buf)

	pos := sim.NewScheduler(seed ^ 0xabcdef).Rand()
	const n = 40
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{X: pos.Float64(), Y: pos.Float64()})
		w.SetProtocol(id, &chatter{})
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	movers := []core.NodeID{2, 9, 17, 25, 33}
	Waypoint{Speed: 0.6, PauseMin: 2_000, PauseMax: 25_000}.Attach(w, movers)
	// A teleport exercises the Jump path's index update, and crashes land
	// while movers are mid-trip with greetings in flight.
	w.JumpAt(11, graph.Point{X: 0.05, Y: 0.05}, 30_000, 120_000)
	w.CrashAt(9, 150_000)
	w.CrashAt(11, 260_000)

	if err := w.Scheduler().RunUntil(600_000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Bus().Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGridMatchesBruteForce is the differential oracle for the spatial
// index: across several seeds, grid-indexed and brute-force link
// maintenance must produce byte-identical trace streams — same link
// transitions, same order, same message fates.
func TestGridMatchesBruteForce(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := differentialTrace(t, seed, true)
			got := differentialTrace(t, seed, false)
			if len(ref) == 0 {
				t.Fatal("reference run produced an empty trace")
			}
			if !bytes.Equal(ref, got) {
				line := 1
				for i := range ref {
					if i >= len(got) || ref[i] != got[i] {
						break
					}
					if ref[i] == '\n' {
						line++
					}
				}
				t.Fatalf("grid and brute-force traces diverge at line %d (ref %d bytes, got %d bytes)",
					line, len(ref), len(got))
			}
		})
	}
}

// TestGridStartAdjacency cross-checks the grid-built initial topology
// against the quadratic reference on clustered positions that stress cell
// boundaries.
func TestGridStartAdjacency(t *testing.T) {
	build := func(brute bool) *World {
		cfg := DefaultConfig()
		cfg.Radius = 0.2
		w := NewWorld(cfg)
		w.bruteLinks = brute
		pos := sim.NewScheduler(5).Rand()
		for i := 0; i < 60; i++ {
			// Half the nodes hug cell corners, half are uniform.
			var p graph.Point
			if i%2 == 0 {
				p = graph.Point{X: 0.2 * float64(i%5), Y: 0.2 * float64(i%6)}
			} else {
				p = graph.Point{X: pos.Float64(), Y: pos.Float64()}
			}
			id := w.AddNode(p)
			w.SetProtocol(id, &chatter{})
		}
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	ref, got := build(true), build(false)
	for id := 0; id < ref.N(); id++ {
		a, b := ref.Neighbors(core.NodeID(id)), got.Neighbors(core.NodeID(id))
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("node %d adjacency differs: brute %v, grid %v", id, a, b)
		}
	}
}
