package manet

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
)

// shardedLayout is one topology family of the differential matrix. The
// three shapes stress different tile geometries: line spans many tiles in
// one row (most boundary crossings per trip), grid spreads load evenly,
// and clique packs every node into one tile (degenerate sharding — all
// parallelism lost, correctness must survive).
type shardedLayout struct {
	name   string
	points []graph.Point
	radius float64
}

func shardedLayouts(n int) []shardedLayout {
	line := make([]graph.Point, n)
	for i := range line {
		line[i] = graph.Point{X: float64(i) * 0.1}
	}
	cols := 8
	grid := make([]graph.Point, 0, n)
	for i := 0; i < n; i++ {
		grid = append(grid, graph.Point{
			X: float64(i%cols) * 0.13,
			Y: float64(i/cols) * 0.13,
		})
	}
	clique := make([]graph.Point, n)
	for i := range clique {
		clique[i] = graph.Point{X: float64(i) * 0.001, Y: float64(i%7) * 0.001}
	}
	return []shardedLayout{
		{"line", line, 0.11},
		{"grid", grid, 0.14},
		{"clique", clique, 0.2},
	}
}

// shardedTrace runs the full scenario — waypoint movers crossing tile
// boundaries, scripted jumps, crashes with messages in flight, all
// scheduled before Start to also cover the pre-start pending path — and
// returns the complete JSONL event stream. tiles ≤ 1 selects the
// single-heap engine (the reference); larger values the sharded engine
// with the given worker bound.
func shardedTrace(t *testing.T, lay shardedLayout, seed uint64, tiles, workers int) []byte {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Radius = lay.radius
	cfg.Tiles = tiles
	cfg.ShardWorkers = workers
	w := NewWorld(cfg)
	var buf bytes.Buffer
	w.Bus().SetSink(&buf)

	for _, p := range lay.points {
		id := w.AddNode(p)
		w.SetProtocol(id, &chatter{})
	}
	n := core.NodeID(len(lay.points))
	movers := []core.NodeID{2, 9, 17, 25, 33, n - 3}
	Waypoint{Speed: 0.7, PauseMin: 2_000, PauseMax: 25_000}.Attach(w, movers)
	w.JumpAt(11, graph.Point{X: 0.05, Y: 0.05}, 30_000, 120_000)
	w.JumpAt(n-1, graph.Point{X: 0.9, Y: 0.9}, 25_000, 210_000)
	w.CrashAt(9, 150_000)
	w.CrashAt(11, 260_000)

	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntil(500_000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Bus().Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffTraces fails with the first line of divergence between two streams.
func diffTraces(t *testing.T, ref, got []byte, what string) {
	t.Helper()
	if len(ref) == 0 {
		t.Fatal("reference run produced an empty trace")
	}
	if bytes.Equal(ref, got) {
		return
	}
	line, start := 1, 0
	for i := range ref {
		if i >= len(got) || ref[i] != got[i] {
			refEnd := bytes.IndexByte(ref[start:], '\n')
			gotEnd := bytes.IndexByte(got[start:], '\n')
			refLine, gotLine := "", ""
			if refEnd >= 0 {
				refLine = string(ref[start : start+refEnd])
			}
			if gotEnd >= 0 && start+gotEnd <= len(got) {
				gotLine = string(got[start : start+gotEnd])
			}
			t.Fatalf("%s: traces diverge at line %d (ref %d bytes, got %d bytes)\n ref: %s\n got: %s",
				what, line, len(ref), len(got), refLine, gotLine)
		}
		if ref[i] == '\n' {
			line++
			start = i + 1
		}
	}
	t.Fatalf("%s: sharded trace is a strict prefix of the reference (%d vs %d bytes)",
		what, len(got), len(ref))
}

// TestShardedMatchesSingleHeap is the engine's differential oracle: for
// every layout × seed × tile-grid combination, the sharded engine's full
// event stream must be byte-identical to the single-heap engine's — same
// link transitions, message fates, mobility and crash handling, in the
// same canonical order.
func TestShardedMatchesSingleHeap(t *testing.T) {
	for _, lay := range shardedLayouts(48) {
		for _, seed := range []uint64{1, 7, 42, 1337} {
			ref := shardedTrace(t, lay, seed, 1, 0)
			for _, tiles := range []int{2, 4, 7} {
				t.Run(fmt.Sprintf("%s/seed=%d/tiles=%d", lay.name, seed, tiles), func(t *testing.T) {
					got := shardedTrace(t, lay, seed, tiles, 0)
					diffTraces(t, ref, got, fmt.Sprintf("%s seed=%d tiles=%d", lay.name, seed, tiles))
				})
			}
		}
	}
}

// TestShardedWorkerCountInvariance pins the engine's scheduling-freedom
// contract: 1, 2 and GOMAXPROCS workers over the same tiling produce
// byte-identical streams (worker count only changes which goroutine runs
// a tile, never what any tile executes).
func TestShardedWorkerCountInvariance(t *testing.T) {
	lay := shardedLayouts(48)[1] // grid: the layout with real cross-tile traffic
	const seed, tiles = 42, 4
	ref := shardedTrace(t, lay, seed, tiles, 1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := shardedTrace(t, lay, seed, tiles, workers)
			diffTraces(t, ref, got, fmt.Sprintf("workers=%d vs 1", workers))
		})
	}
}

// TestShardedSchedulerUnavailable pins the API contract: the raw
// scheduler does not exist under the sharded engine, and asking for it
// panics with guidance instead of silently handing out a dead loop.
func TestShardedSchedulerUnavailable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tiles = 2
	w := NewWorld(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("Scheduler() did not panic under the sharded engine")
		}
	}()
	w.Scheduler()
}

// TestShardedRunDrains covers World.Run under the sharded engine: the
// queues drain once the movers retire, Processed counts the work, and
// the event budget trips ErrEventLimit. A static chatter network is
// inert, so finite-lifetime movers supply the churn.
func TestShardedRunDrains(t *testing.T) {
	build := func() *World {
		cfg := DefaultConfig()
		cfg.Tiles = 3
		w := NewWorld(cfg)
		for i := 0; i < 30; i++ {
			id := w.AddNode(graph.Point{X: float64(i%6) * 0.1, Y: float64(i/6) * 0.1})
			w.SetProtocol(id, &chatter{})
		}
		Waypoint{Speed: 0.7, PauseMin: 1_000, PauseMax: 5_000, Until: 200_000}.
			Attach(w, []core.NodeID{3, 14, 27})
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := build()
	if err := w.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if w.Processed() == 0 {
		t.Fatal("no events executed")
	}
	w2 := build()
	if err := w2.Run(3); err == nil {
		t.Fatal("tiny event budget did not trip")
	}
}

// TestAutoTiles pins the sizing heuristic's shape: one tile for small
// worlds, monotone growth, and the 64-per-side clamp.
func TestAutoTiles(t *testing.T) {
	if g := AutoTiles(48); g != 1 {
		t.Fatalf("AutoTiles(48) = %d, want 1", g)
	}
	if g := AutoTiles(1_000); g != 4 {
		t.Fatalf("AutoTiles(1000) = %d, want 4", g)
	}
	if g := AutoTiles(10_000); g != 13 {
		t.Fatalf("AutoTiles(10000) = %d, want 13", g)
	}
	if g := AutoTiles(1_000_000_000); g != 64 {
		t.Fatalf("AutoTiles(1e9) = %d, want 64 (clamp)", g)
	}
}
