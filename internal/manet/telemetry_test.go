package manet

// Determinism and sanity tests for the engine's execution telemetry
// (lme/telemetry/v1). The load-bearing property is invariance: telemetry
// is out-of-band, so flipping it on must not move a single byte of the
// event stream on any engine/tiling — pinned here by running the full
// sharded scenario with telemetry on and off across tile grids and
// diffing the streams.

import (
	"bytes"
	"fmt"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/telemetry"
)

// telemetryTrace is shardedTrace with the telemetry switch exposed; it
// also returns the world so tests can inspect the collected record.
func telemetryTrace(t *testing.T, lay shardedLayout, seed uint64, tiles, workers int, tel bool) ([]byte, *World) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Radius = lay.radius
	cfg.Tiles = tiles
	cfg.ShardWorkers = workers
	cfg.Telemetry = tel
	w := NewWorld(cfg)
	var buf bytes.Buffer
	w.Bus().SetSink(&buf)

	for _, p := range lay.points {
		id := w.AddNode(p)
		w.SetProtocol(id, &chatter{})
	}
	n := core.NodeID(len(lay.points))
	movers := []core.NodeID{2, 9, 17, 25, 33, n - 3}
	Waypoint{Speed: 0.7, PauseMin: 2_000, PauseMax: 25_000}.Attach(w, movers)
	w.JumpAt(11, graph.Point{X: 0.05, Y: 0.05}, 30_000, 120_000)
	w.JumpAt(n-1, graph.Point{X: 0.9, Y: 0.9}, 25_000, 210_000)
	w.CrashAt(9, 150_000)
	w.CrashAt(11, 260_000)

	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.RunUntil(500_000, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Bus().Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), w
}

// TestTelemetryInvariance pins that telemetry collection is invisible to
// the run: same seed, telemetry on vs off, across tile grids {1, 4} and
// 2 workers — every event stream byte-identical to the single-heap
// reference with telemetry off.
func TestTelemetryInvariance(t *testing.T) {
	lay := shardedLayouts(48)[1] // grid: spreads load across tiles
	const seed = 42
	ref, _ := telemetryTrace(t, lay, seed, 1, 0, false)
	for _, tiles := range []int{1, 4} {
		for _, tel := range []bool{false, true} {
			t.Run(fmt.Sprintf("tiles=%d/telemetry=%v", tiles, tel), func(t *testing.T) {
				got, _ := telemetryTrace(t, lay, seed, tiles, 2, tel)
				diffTraces(t, ref, got, fmt.Sprintf("tiles=%d telemetry=%v", tiles, tel))
			})
		}
	}
}

// TestEngineTelemetryRecord sanity-checks the collected record on a
// sharded run: schema tagged, counters populated, per-tile events
// summing near the total, traffic cells consistent with the cross-tile
// aggregate.
func TestEngineTelemetryRecord(t *testing.T) {
	lay := shardedLayouts(48)[1]
	_, w := telemetryTrace(t, lay, 7, 4, 2, true)
	e := w.EngineTelemetry()
	if e == nil {
		t.Fatal("EngineTelemetry() = nil with telemetry on")
	}
	if e.Schema != telemetry.Schema {
		t.Fatalf("schema %q, want %q", e.Schema, telemetry.Schema)
	}
	if e.Tiles != 4 || len(e.PerTile) != 16 {
		t.Fatalf("tiles %d with %d per-tile entries, want 4 and 16", e.Tiles, len(e.PerTile))
	}
	if e.Windows == 0 || e.Events == 0 {
		t.Fatalf("empty counters: windows=%d events=%d", e.Windows, e.Events)
	}
	if e.StealHits == 0 || e.StealAttempts < e.StealHits {
		t.Fatalf("steal counters inconsistent: hits=%d attempts=%d", e.StealHits, e.StealAttempts)
	}
	var tileEvents, trafficMsgs uint64
	for _, ts := range e.PerTile {
		tileEvents += ts.Events
	}
	if tileEvents == 0 || tileEvents > e.Events {
		t.Fatalf("per-tile events %d vs total %d", tileEvents, e.Events)
	}
	for _, l := range e.Traffic {
		if l.From == l.To {
			t.Fatalf("traffic matrix carries a same-tile cell: %+v", l)
		}
		trafficMsgs += l.Msgs
	}
	if trafficMsgs != e.CrossTileMsgs {
		t.Fatalf("traffic cells sum to %d, cross_tile_msgs says %d", trafficMsgs, e.CrossTileMsgs)
	}
	if e.ImbalanceMeanAvg > 0 && e.Imbalance < 1 {
		t.Fatalf("imbalance %f < 1 (max/mean cannot be)", e.Imbalance)
	}

	// Telemetry off → no record, and the accessor is nil-safe.
	_, off := telemetryTrace(t, lay, 7, 4, 2, false)
	if off.EngineTelemetry() != nil {
		t.Fatal("EngineTelemetry() non-nil with telemetry off")
	}
}

// TestEngineTelemetrySingleHeap pins the degenerate single-heap record:
// a 1×1 grid with the scheduler's totals and no window machinery.
func TestEngineTelemetrySingleHeap(t *testing.T) {
	lay := shardedLayouts(48)[0]
	_, w := telemetryTrace(t, lay, 3, 1, 0, true)
	e := w.EngineTelemetry()
	if e == nil {
		t.Fatal("EngineTelemetry() = nil with telemetry on")
	}
	if e.Tiles != 1 || len(e.PerTile) != 1 || e.Windows != 0 {
		t.Fatalf("degenerate record wrong shape: %+v", e)
	}
	if e.Events == 0 || e.PerTile[0].Events != e.Events {
		t.Fatalf("single-heap events inconsistent: %+v", e)
	}
}
