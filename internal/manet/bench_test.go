package manet_test

import (
	"testing"

	"lme/internal/microbench"
)

func BenchmarkMobilitySweep(b *testing.B)        { microbench.MobilitySweep(b) }
func BenchmarkBroadcastFanout(b *testing.B)      { microbench.BroadcastFanout(b) }
func BenchmarkNeighborsView(b *testing.B)        { microbench.NeighborsView(b) }
func BenchmarkScaleSweep1k(b *testing.B)         { microbench.ScaleSweep1k(b) }
func BenchmarkScaleSweep1kSharded(b *testing.B)  { microbench.ScaleSweep1kSharded(b) }
func BenchmarkScaleSweep10k(b *testing.B)        { microbench.ScaleSweep10k(b) }
func BenchmarkScaleSweep10kSharded(b *testing.B) { microbench.ScaleSweep10kSharded(b) }
func BenchmarkShardedChurn(b *testing.B)         { microbench.ShardedChurn(b) }
