package manet_test

import (
	"testing"

	"lme/internal/microbench"
)

func BenchmarkMobilitySweep(b *testing.B)   { microbench.MobilitySweep(b) }
func BenchmarkBroadcastFanout(b *testing.B) { microbench.BroadcastFanout(b) }
func BenchmarkNeighborsView(b *testing.B)   { microbench.NeighborsView(b) }
