// Package manet models the mobile ad hoc network of §3.1 of the paper on
// top of the discrete-event scheduler: nodes with positions on the plane, a
// unit-disk communication graph that changes as nodes move, reliable FIFO
// links with bounded message delay ν, link-level LinkUp/LinkDown
// indications with the paper's static/moving symmetry-breaking bias, crash
// failures, and the dispatch loop that drives each node's Protocol one
// atomic event at a time.
//
// The world has two interchangeable execution engines behind one API.
// The single-heap engine (Config.Tiles ≤ 1) runs every event off one
// sim.Scheduler — the exact legacy behaviour. The region-sharded engine
// (Config.Tiles > 1, see shard.go) partitions the plane into a grid of
// tiles, each with its own value-typed event heap and worker, synchronised
// by conservative lookahead. Both engines execute events in the canonical
// (time, owner, class, a, b) key order and draw every random number from
// per-node streams, so a run's event trace is bit-identical regardless of
// engine, tiling, or worker count (pinned by the sharded differential
// tests and TestGoldenTraceHash).
//
// The transport and link-maintenance layer is allocation-lean and scales
// to 100k+ nodes: adjacency is a per-node sorted ID slice with a parallel
// FIFO-floor slice (O(degree) per node, not O(n)), link epochs live in
// per-node maps that persist across link incarnations, in-flight messages
// are pooled sim.Runner records instead of per-send closures, and link
// maintenance queries a uniform spatial hash (internal grid, cell size =
// Radius) instead of scanning all n nodes.
package manet

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
	"lme/internal/trace"
)

// Config carries the physical parameters of the world.
type Config struct {
	// Seed derives every random choice (delays, mobility); runs with the
	// same seed and the same call sequence are identical. Each node owns
	// an independent stream derived from (Seed, id), which is what keeps
	// runs identical across engines and worker counts.
	Seed uint64

	// Radius is the radio range: two nodes are neighbours iff their
	// Euclidean distance is at most Radius.
	Radius float64

	// MinDelay and MaxDelay bound the end-to-end message delay; MaxDelay
	// is the paper's ν. Delays are drawn uniformly per message, then
	// clamped so that each directed link delivers in FIFO order. MinDelay
	// also lower-bounds how soon one node can affect another, which is
	// the sharded engine's conservative lookahead.
	MinDelay, MaxDelay sim.Time

	// TickInterval is the mobility integration step for continuous
	// movement. Zero selects a default of 20ms.
	TickInterval sim.Time

	// NonFIFO disables the per-directed-link FIFO delivery order — an
	// ablation of the paper's §3.1 link assumption (experiment E12).
	NonFIFO bool

	// TraceRing sizes the event bus's retained-history ring (0 = keep
	// no history; subscribers and sinks still receive every event).
	TraceRing int

	// Tiles selects the execution engine: ≤ 1 runs the single-heap
	// scheduler (exact legacy behaviour); g > 1 partitions the node
	// bounding box into a g×g grid of tiles executed by the sharded
	// engine. The event trace is identical either way.
	Tiles int

	// ShardWorkers bounds the sharded engine's worker goroutines
	// (0 = GOMAXPROCS). Ignored by the single-heap engine. The trace is
	// identical for every worker count.
	ShardWorkers int

	// Telemetry enables the engine's execution-telemetry counters
	// (EngineTelemetry). Out-of-band: it never changes the event order,
	// the trace or any result — a run with telemetry on is bit-identical
	// to the same run with it off, which TestTelemetryInvariance pins.
	Telemetry bool
}

// DefaultConfig returns the parameters used throughout the experiments:
// ν = 10ms with a 1ms floor, 20ms mobility ticks, single-heap engine.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Radius:       0.25,
		MinDelay:     sim.Time(1_000),
		MaxDelay:     sim.Time(10_000),
		TickInterval: sim.Time(20_000),
	}
}

// AutoTiles suggests a tile-grid side for an n-node world: roughly 64
// nodes per tile, clamped to [1, 64] tiles per side.
func AutoTiles(n int) int {
	g := 1
	for g < 64 && g*g*64 < n {
		g++
	}
	return g
}

// LinkListener observes communication-graph changes (used by the safety
// checker and by traces).
type LinkListener interface {
	// OnLink is called after a link between a and b appears (up=true) or
	// disappears (up=false) and after both endpoint protocols processed
	// their notifications.
	OnLink(a, b core.NodeID, up bool, at sim.Time)
}

// MoveListener observes mobility status changes (used by the response-time
// recorder, which per Definition 1 only samples nodes that stayed static
// throughout a hungry interval).
type MoveListener interface {
	// OnMove is called when id starts (moving=true) or stops
	// (moving=false) moving.
	OnMove(id core.NodeID, moving bool, at sim.Time)
}

// node is the world-side record of a mobile node.
type node struct {
	id      core.NodeID
	pos     graph.Point
	proto   core.Protocol
	state   core.State
	moving  bool
	crashed bool

	// nbrs is the current neighbour set as an incrementally maintained
	// sorted ID slice; lastOut is the parallel per-directed-link FIFO
	// floor toward nbrs[i] (dropped with the entry on link-down, exactly
	// the legacy reset-to-zero semantics). Memory is O(degree) per node.
	nbrs    []core.NodeID
	lastOut []sim.Time

	// epochs counts incarnations of the link to each peer a link ever
	// existed to; a message whose link epoch changed before delivery is
	// destroyed with the link. The two endpoints' counters are
	// incremented together and always agree, so the receiver-side check
	// in delivery.Run equals the legacy sender-side one. The map persists
	// across link-downs — forgetting an epoch would resurrect stale
	// messages on the next incarnation. Allocated lazily on first bump.
	epochs map[core.NodeID]uint64

	// sendSeq is the node's monotone message counter; every accepted
	// send is stamped with the next value so traces carry a causal
	// send→deliver identity even across equal-time deliveries.
	sendSeq uint64

	// oseq is the node's monotone schedule counter: the A component of
	// every local and topology event key it owns. It is only ever
	// touched from the node's own execution context (its tile's worker,
	// or the coordinator while tiles are paused), so it needs no
	// synchronisation.
	oseq uint64

	// rng is the node's private random stream, derived from (Seed, id).
	// Message delays, waypoint draws and workload think times all come
	// from here, which makes every draw independent of global execution
	// order — the prerequisite for bit-identical parallel runs.
	rng *rand.Rand

	// tile is the index of the tile currently owning the node (sharded
	// engine only; updated by the coordinator on migration).
	tile int32

	// movement target; valid while moving.
	target graph.Point
	speed  float64 // plane units per second
	moveID uint64  // invalidates stale movement ticks
}

// nbrIndex locates j in the sorted neighbour slice.
func (n *node) nbrIndex(j core.NodeID) (int, bool) {
	return slices.BinarySearch(n.nbrs, j)
}

// hasNbr reports whether j is currently a neighbour.
func (n *node) hasNbr(j core.NodeID) bool {
	_, ok := slices.BinarySearch(n.nbrs, j)
	return ok
}

// insertNeighbor adds j to the sorted neighbour slice with a fresh FIFO
// floor.
func (n *node) insertNeighbor(j core.NodeID) {
	i, found := slices.BinarySearch(n.nbrs, j)
	if found {
		return
	}
	n.nbrs = slices.Insert(n.nbrs, i, j)
	n.lastOut = slices.Insert(n.lastOut, i, sim.Time(0))
}

// removeNeighbor deletes j from the sorted neighbour slice, dropping its
// FIFO floor with it.
func (n *node) removeNeighbor(j core.NodeID) {
	i, found := slices.BinarySearch(n.nbrs, j)
	if !found {
		return
	}
	n.nbrs = slices.Delete(n.nbrs, i, i+1)
	n.lastOut = slices.Delete(n.lastOut, i, i+1)
}

// epoch returns the current incarnation count of the link to p.
func (n *node) epoch(p core.NodeID) uint64 { return n.epochs[p] }

// bumpEpoch increments the incarnation count of the link to p.
func (n *node) bumpEpoch(p core.NodeID) {
	if n.epochs == nil {
		n.epochs = make(map[core.NodeID]uint64, 8)
	}
	n.epochs[p]++
}

// nodeSeed derives the per-node random stream seed (splitmix64 over the
// world seed and the node ID, the same construction internal/fleet uses
// for replica seeds).
func nodeSeed(seed uint64, id core.NodeID) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(int64(id)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// World is the simulated MANET. With the single-heap engine all mutation
// happens inside scheduler events or before the run starts; with the
// sharded engine, node-local events run on tile workers while topology
// events and all observable effects (bus, listeners) are serialised on the
// coordinating goroutine in canonical key order.
type World struct {
	cfg   Config
	sched *sim.Scheduler
	nodes []*node

	// grid is the spatial index link maintenance queries; scratch is its
	// reusable candidate buffer. bruteLinks disables the index in favour
	// of the all-pairs reference scan (the differential tests' oracle).
	grid       grid
	scratch    []core.NodeID
	bruteLinks bool

	// freeDeliveries and freeTickers pool the reusable in-flight message
	// and movement-tick records of the closure-free timer paths (the
	// coordinator-context pools; tiles keep their own delivery pools).
	freeDeliveries []*delivery
	freeTickers    []*moveTicker

	// stateListeners are deferred observers: in sharded windows their
	// callbacks are buffered and replayed at barriers in canonical
	// order. localStateListeners (the workload driver) run inline in the
	// executing context, because they schedule follow-up events for the
	// node itself; they are invoked after the deferred ones in single
	// mode, preserving the legacy registration order.
	stateListeners      []core.Listener
	localStateListeners []core.Listener
	linkListeners       []LinkListener
	moveListeners       []MoveListener

	// bus is the typed event stream every observable occurrence is
	// published to; namer classifies message payloads for it.
	bus   *trace.Bus
	namer *trace.TypeNamer

	started bool

	// shard is the sharded executor; nil before Start and in single-heap
	// mode. pending holds events scheduled before Start in sharded mode
	// (routed into tile heaps once tiles exist); pendingHook likewise.
	shard       *shardExec
	pending     []sim.Item
	pendingHook func(sim.Time)

	// msgsSent and msgsDelivered count protocol messages (the paper's
	// future-work measure of message complexity). They are maintained
	// natively so the cheap headline numbers survive even when nothing
	// subscribes to the bus. Tile workers count into per-tile fields;
	// readers sum.
	msgsSent, msgsDelivered uint64
}

// NewWorld creates an empty world driven by its own scheduler.
func NewWorld(cfg Config) *World {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 20_000
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10_000
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 1
	}
	if cfg.MinDelay > cfg.MaxDelay {
		cfg.MinDelay = cfg.MaxDelay
	}
	if cfg.Tiles < 1 {
		cfg.Tiles = 1
	}
	if cfg.Tiles > 128 {
		cfg.Tiles = 128
	}
	return &World{
		cfg:   cfg,
		sched: sim.NewScheduler(cfg.Seed),
		bus:   trace.NewBus(cfg.TraceRing),
		namer: trace.NewTypeNamer(),
	}
}

// Bus exposes the world's typed event stream; subscribe before Start to
// observe the whole run.
func (w *World) Bus() *trace.Bus { return w.bus }

// TypeNamer exposes the world's message-type cache — the mint of the
// MsgID values traffic events carry. Consumers (metrics.Instrument) use
// it to resolve dense type IDs back to schema names.
func (w *World) TypeNamer() *trace.TypeNamer { return w.namer }

// Scheduler exposes the single-heap event loop for workloads and
// harnesses that script scenarios with raw closures. It is unavailable in
// sharded mode, where no global scheduler exists: use Now, RunUntil,
// ScheduleLocal and the mobility/crash helpers instead — they work with
// both engines.
func (w *World) Scheduler() *sim.Scheduler {
	if w.cfg.Tiles > 1 {
		panic("manet: Scheduler() is unavailable with the sharded engine (Tiles > 1); use World.Now/RunUntil/ScheduleLocal")
	}
	return w.sched
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// N returns the number of nodes.
func (w *World) N() int { return len(w.nodes) }

// Now returns the current virtual time under either engine.
func (w *World) Now() sim.Time {
	if sx := w.shard; sx != nil {
		return sx.now
	}
	return w.sched.Now()
}

// nowOf returns the virtual time of n's execution context: its tile clock
// inside a sharded window, the coordinator clock otherwise.
func (w *World) nowOf(n *node) sim.Time {
	if sx := w.shard; sx != nil {
		if sx.inWindow {
			return sx.tiles[n.tile].now
		}
		return sx.now
	}
	return w.sched.Now()
}

// Processed reports how many events have been executed under either
// engine.
func (w *World) Processed() uint64 {
	if sx := w.shard; sx != nil {
		total := sx.processed
		for _, t := range sx.tiles {
			total += t.processed
		}
		return total
	}
	return w.sched.Processed()
}

// EngineTelemetry assembles the execution-layer lme/telemetry/v1 record,
// or nil when Config.Telemetry is off (or the sharded engine has not
// started yet). The single-heap engine reports the degenerate 1×1 grid —
// one tile, zero windows and steals — so consumers see one shape from
// both engines. Coordinator context only: call between RunUntil slices
// or after the run, never from an event handler under the sharded
// engine.
func (w *World) EngineTelemetry() *telemetry.EngineStats {
	if !w.cfg.Telemetry {
		return nil
	}
	if w.cfg.Tiles > 1 {
		if sx := w.shard; sx != nil {
			return sx.telemetrySnapshot()
		}
		return nil
	}
	events := w.sched.Processed()
	empty := metrics.NewSketch().Snapshot()
	return &telemetry.EngineStats{
		Schema: telemetry.Schema,
		Tiles:  1, Workers: 1,
		Events:         events,
		WindowSpanUS:   empty,
		BarrierStallNS: empty,
		PerTile: []telemetry.TileStats{{
			Tile: 0, Events: events,
			MsgsSent: w.msgsSent, MsgsDelivered: w.msgsDelivered,
		}},
	}
}

// SetEventHook installs f to run after every executed event, at the
// event's virtual time (nil uninstalls). Under the sharded engine the
// hook is invoked concurrently from tile workers, so it must be
// goroutine-safe (the harness's throughput counter is atomic).
func (w *World) SetEventHook(f func(sim.Time)) {
	if w.cfg.Tiles > 1 {
		if sx := w.shard; sx != nil {
			sx.hook = f
		} else {
			w.pendingHook = f
		}
		return
	}
	w.sched.SetEventHook(f)
}

// RunUntil executes events in canonical order until the queues are empty
// or the next event is later than deadline; events at exactly the
// deadline still run and the clock lands on deadline. maxEvents bounds
// the total executed in this call (0 = no bound); exceeding it returns
// sim.ErrEventLimit. Under the sharded engine the bound is checked at
// window barriers, so it may overshoot by up to one window.
func (w *World) RunUntil(deadline sim.Time, maxEvents uint64) error {
	if sx := w.shard; sx != nil {
		return sx.runUntil(deadline, maxEvents)
	}
	return w.sched.RunUntil(deadline, maxEvents)
}

// Run executes pending events (including ones they schedule) until the
// queues drain, with an event budget.
func (w *World) Run(maxEvents uint64) error {
	return w.RunUntil(sim.Infinity, maxEvents)
}

// AddNode places a new node at pos and returns its ID. Must be called
// before Start.
func (w *World) AddNode(pos graph.Point) core.NodeID {
	if w.started {
		panic("manet: AddNode after Start")
	}
	id := core.NodeID(len(w.nodes))
	s := nodeSeed(w.cfg.Seed, id)
	w.nodes = append(w.nodes, &node{
		id:    id,
		pos:   pos,
		state: core.Thinking,
		rng:   rand.New(rand.NewPCG(s, s^0x9e3779b97f4a7c15)),
	})
	return id
}

// SetProtocol installs the algorithm instance for a node. Must be called
// before Start.
func (w *World) SetProtocol(id core.NodeID, p core.Protocol) {
	if w.started {
		panic("manet: SetProtocol after Start")
	}
	w.nodes[id].proto = p
}

// NodeRand exposes id's private deterministic random stream (the workload
// driver's think-time source). Draw only from id's own execution context.
func (w *World) NodeRand(id core.NodeID) *rand.Rand { return w.nodes[id].rng }

// AddStateListener registers a dining-state transition observer. Under
// the sharded engine its callbacks are deferred to window barriers and
// replayed in canonical event order; listeners must therefore derive
// their state from the callback stream (plus the frozen-between-barriers
// topology) rather than reading live node state — which every metrics
// listener already does.
func (w *World) AddStateListener(l core.Listener) {
	w.stateListeners = append(w.stateListeners, l)
}

// AddLocalStateListener registers a state observer that runs inline in
// the transitioning node's own execution context even under the sharded
// engine — required for listeners that schedule follow-up events for the
// node (the workload driver). Inline listeners run after the deferred
// ones registered so far when both engines run single-threaded.
func (w *World) AddLocalStateListener(l core.Listener) {
	w.localStateListeners = append(w.localStateListeners, l)
}

// AddLinkListener registers a communication-graph change observer.
func (w *World) AddLinkListener(l LinkListener) {
	w.linkListeners = append(w.linkListeners, l)
}

// AddMoveListener registers a mobility status observer.
func (w *World) AddMoveListener(l MoveListener) {
	w.moveListeners = append(w.moveListeners, l)
}

// setMoving flips a node's mobility flag, publishes the mobility event
// and notifies observers.
func (w *World) setMoving(n *node, moving bool) {
	if n.moving == moving {
		return
	}
	n.moving = moving
	kind := trace.KindMoveStop
	if moving {
		kind = trace.KindMoveStart
	}
	if w.bus.Wants(kind) {
		w.emit(n, trace.Event{
			Kind: kind, Node: n.id, Peer: trace.NoNode,
			Detail: fmt.Sprintf("(%.3f,%.3f)", n.pos.X, n.pos.Y),
		})
	}
	if len(w.moveListeners) == 0 {
		return
	}
	at := w.nowOf(n)
	if sx := w.shard; sx != nil && sx.inWindow {
		sx.tiles[n.tile].buffer(effect{kind: effMove, id: n.id, flag: moving, at: at})
		return
	}
	for _, l := range w.moveListeners {
		l.OnMove(n.id, moving, at)
	}
}

// emit stamps the event with the node's current virtual time and
// publishes it — directly in coordinator context, or into the tile's
// effect buffer inside a sharded window (replayed at the barrier in
// canonical order, so the bus sees one monotone stream either way).
func (w *World) emit(n *node, e trace.Event) {
	if sx := w.shard; sx != nil && sx.inWindow {
		t := sx.tiles[n.tile]
		e.At = t.now
		t.buffer(effect{kind: effBus, ev: e})
		return
	}
	e.At = w.Now()
	w.bus.Publish(e)
}

// relocate moves a node to p, keeping the spatial index — and, under the
// sharded engine, its tile assignment and pending events — in sync.
// Coordinator context only (topology events are serialised there).
func (w *World) relocate(n *node, p graph.Point) {
	if !w.bruteLinks {
		w.grid.move(n.id, n.pos, p)
	}
	n.pos = p
	if sx := w.shard; sx != nil {
		sx.migrate(n)
	}
}

// addLink silently records the link a—b (Start's initial topology: no
// epoch bump, no notifications).
func (w *World) addLink(a, b core.NodeID) {
	w.nodes[a].insertNeighbor(b)
	w.nodes[b].insertNeighbor(a)
}

// Start computes the initial communication graph (silently: pre-existing
// links generate no LinkUp indications; the paper's initial fork and colour
// distributions are ID-based conventions each protocol applies in Init) and
// initialises every protocol. With Tiles > 1 it also partitions the node
// bounding box into the tile grid and routes any pre-scheduled events to
// their owners' tiles.
func (w *World) Start() error {
	if w.started {
		return fmt.Errorf("manet: Start called twice")
	}
	for _, n := range w.nodes {
		if n.proto == nil {
			return fmt.Errorf("manet: node %d has no protocol", n.id)
		}
	}
	w.started = true
	nn := len(w.nodes)
	r2 := w.cfg.Radius * w.cfg.Radius
	if w.bruteLinks {
		for i := range w.nodes {
			for j := i + 1; j < nn; j++ {
				if w.nodes[i].pos.Dist2(w.nodes[j].pos) <= r2 {
					w.addLink(w.nodes[i].id, w.nodes[j].id)
				}
			}
		}
	} else {
		w.grid = newGrid(w.cfg.Radius)
		for _, n := range w.nodes {
			w.grid.insert(n.id, n.pos)
		}
		for _, n := range w.nodes {
			cand := w.grid.appendNearby(n.pos, w.scratch[:0])
			for _, j := range cand {
				if j <= n.id {
					continue // each unordered pair once
				}
				if n.pos.Dist2(w.nodes[j].pos) <= r2 {
					w.addLink(n.id, j)
				}
			}
			w.scratch = cand[:0]
		}
	}
	if w.cfg.Tiles > 1 {
		w.initShard()
	}
	for _, n := range w.nodes {
		n.proto.Init(&env{w: w, n: n})
	}
	return nil
}

// Neighbors returns the neighbour IDs of id in ascending order. The
// returned slice is a read-only view owned by the world; it is invalidated
// by the next topology change. Copy it to retain it.
func (w *World) Neighbors(id core.NodeID) []core.NodeID {
	return w.nodes[id].nbrs
}

// Position returns the current position of id.
func (w *World) Position(id core.NodeID) graph.Point { return w.nodes[id].pos }

// Moving reports whether id is currently in motion.
func (w *World) Moving(id core.NodeID) bool { return w.nodes[id].moving }

// Crashed reports whether id has crashed.
func (w *World) Crashed(id core.NodeID) bool { return w.nodes[id].crashed }

// State returns the last dining state reported by id's protocol.
func (w *World) State(id core.NodeID) core.State { return w.nodes[id].state }

// Protocol returns the protocol instance of id (for white-box tests).
func (w *World) Protocol(id core.NodeID) core.Protocol { return w.nodes[id].proto }

// CommGraph snapshots the current communication graph.
func (w *World) CommGraph() *graph.Graph {
	g := graph.New(len(w.nodes))
	for _, n := range w.nodes {
		for _, peer := range n.nbrs {
			g.AddEdge(int(n.id), int(peer))
		}
	}
	return g
}

// MessagesSent reports the number of protocol messages handed to the
// transport so far.
func (w *World) MessagesSent() uint64 {
	total := w.msgsSent
	if sx := w.shard; sx != nil {
		for _, t := range sx.tiles {
			total += t.msgsSent
		}
	}
	return total
}

// MessagesDelivered reports the number of protocol messages delivered so
// far (sent minus dropped on link failures and crashes).
func (w *World) MessagesDelivered() uint64 {
	total := w.msgsDelivered
	if sx := w.shard; sx != nil {
		for _, t := range sx.tiles {
			total += t.msgsDelivered
		}
	}
	return total
}

// MaxDegree returns δ of the current communication graph.
func (w *World) MaxDegree() int {
	max := 0
	for _, n := range w.nodes {
		if d := len(n.nbrs); d > max {
			max = d
		}
	}
	return max
}

// countSent tallies one protocol message handed to the transport.
func (w *World) countSent(src *node) {
	if sx := w.shard; sx != nil && sx.inWindow {
		sx.tiles[src.tile].msgsSent++
		return
	}
	w.msgsSent++
}

// countDelivered tallies one delivered protocol message.
func (w *World) countDelivered(dst *node) {
	if sx := w.shard; sx != nil && sx.inWindow {
		sx.tiles[dst.tile].msgsDelivered++
		return
	}
	w.msgsDelivered++
}

// Crash fails node id at the current instant: it stops processing events,
// stops moving, and never recovers. Other nodes receive no indication (the
// paper's crash model is undetectable).
func (w *World) Crash(id core.NodeID) {
	n := w.nodes[id]
	if n.crashed {
		return
	}
	n.crashed = true
	w.setMoving(n, false)
	n.moveID++ // cancel pending movement ticks
	if w.bus.Wants(trace.KindCrash) {
		w.emit(n, trace.Event{Kind: trace.KindCrash, Node: id, Peer: trace.NoNode})
	}
}

// CrashAt schedules a crash of id at time t. The crash is a node-local
// event owned by id, so it executes on id's tile under the sharded
// engine.
func (w *World) CrashAt(id core.NodeID, t sim.Time) {
	w.scheduleLocalAt(w.nodes[id], t, func() { w.Crash(id) })
}

// ScheduleLocal schedules fn to run in id's execution context, after time
// units from id's current instant. It is the engine-agnostic timer the
// workload driver uses for dining follow-ups; fn must touch only id-local
// state. Call it from id's own execution context (or while the world is
// not running).
func (w *World) ScheduleLocal(id core.NodeID, after sim.Time, fn func()) {
	n := w.nodes[id]
	w.scheduleLocalAt(n, w.nowOf(n)+after, fn)
}

// scheduleLocalAt schedules a ClassLocal event owned by n at time at.
func (w *World) scheduleLocalAt(n *node, at sim.Time, fn func()) {
	if now := w.nowOf(n); at < now {
		at = now
	}
	n.oseq++
	w.push(sim.Item{
		K:  sim.Key{At: at, Owner: int32(n.id), Class: sim.ClassLocal, A: n.oseq},
		Fn: fn,
	}, n)
}

// scheduleLocalRunner is scheduleLocalAt for pooled runners (the waypoint
// state machines).
func (w *World) scheduleLocalRunner(n *node, at sim.Time, r sim.Runner) {
	if now := w.nowOf(n); at < now {
		at = now
	}
	n.oseq++
	w.push(sim.Item{
		K: sim.Key{At: at, Owner: int32(n.id), Class: sim.ClassLocal, A: n.oseq},
		R: r,
	}, n)
}

// scheduleTopo schedules a ClassTopo event owned by n at time at: a
// topology mutation (movement tick, jump) the sharded engine serialises
// on its coordinator.
func (w *World) scheduleTopo(n *node, at sim.Time, it sim.Item) {
	n.oseq++
	it.K = sim.Key{At: at, Owner: int32(n.id), Class: sim.ClassTopo, A: n.oseq}
	if w.cfg.Tiles > 1 {
		sx := w.shard
		if sx == nil {
			w.pending = append(w.pending, it)
			return
		}
		if sx.inWindow {
			// Tile context: hand the request to the coordinator at the
			// barrier. Topo events are always ≥ one tick or one settle
			// ahead, hence outside the current window.
			t := sx.tiles[n.tile]
			t.outTopo = append(t.outTopo, it)
			return
		}
		sx.topo.Push(it)
		return
	}
	if it.Fn != nil {
		w.sched.AtKey(it.K, it.Fn)
	} else {
		w.sched.AtRunnerKey(it.K, it.R)
	}
}

// push routes an owned node-local event to the engine: the single heap,
// the owner's tile heap, or the pre-Start pending list. In tile context
// the owner is necessarily the executing node, so pushing into its own
// heap is race-free.
func (w *World) push(it sim.Item, n *node) {
	if w.cfg.Tiles > 1 {
		sx := w.shard
		if sx == nil {
			w.pending = append(w.pending, it)
			return
		}
		sx.tiles[n.tile].heap.Push(it)
		return
	}
	if it.Fn != nil {
		w.sched.AtKey(it.K, it.Fn)
	} else {
		w.sched.AtRunnerKey(it.K, it.R)
	}
}

// delivery is one pooled in-flight message: the sim.Runner the transport
// schedules instead of capturing six variables in a fresh closure per
// send. Records are recycled through per-tile free lists (sharded) or
// World.freeDeliveries after firing.
type delivery struct {
	w        *World
	from, to core.NodeID
	msg      core.Message
	sentAt   sim.Time
	ep       uint64
	seq      uint64
	msgName  string
	msgSize  int
	msgID    trace.MsgType
	observed bool
}

// Run implements sim.Runner: deliver the message, or destroy it if its
// link incarnation ended or the receiver crashed before the instant came.
// It executes in the receiver's context and touches only receiver-local
// state (the endpoints' epoch counters always agree, so the receiver-side
// epoch check equals the legacy sender-side one).
func (d *delivery) Run() {
	w := d.w
	dst := w.nodes[d.to]
	if dst.crashed || dst.epoch(d.from) != d.ep || !dst.hasNbr(d.from) {
		// Destroyed with the link, or receiver dead.
		if d.observed && w.bus.Wants(trace.KindDrop) {
			reason := "link-changed"
			if dst.crashed {
				reason = "receiver-crashed"
			}
			w.emit(dst, trace.Event{
				Kind: trace.KindDrop, Node: d.to, Peer: d.from,
				Msg: d.msgName, Size: d.msgSize, MsgSeq: d.seq, MsgID: d.msgID,
				Detail: reason,
			})
		}
	} else {
		w.countDelivered(dst)
		if d.observed && w.bus.Wants(trace.KindDeliver) {
			w.emit(dst, trace.Event{
				Kind: trace.KindDeliver, Node: d.to, Peer: d.from,
				Msg: d.msgName, Size: d.msgSize, MsgSeq: d.seq, MsgID: d.msgID,
				Delay: w.nowOf(dst) - d.sentAt,
			})
		}
		dst.proto.OnMessage(d.from, d.msg)
	}
	d.msg = nil // release the payload before pooling
	w.releaseDelivery(dst, d)
}

// allocDelivery takes a record from the executing context's pool.
func (w *World) allocDelivery(src *node) *delivery {
	pool := &w.freeDeliveries
	if sx := w.shard; sx != nil && sx.inWindow {
		pool = &sx.tiles[src.tile].freeDel
	}
	if k := len(*pool); k > 0 {
		d := (*pool)[k-1]
		*pool = (*pool)[:k-1]
		return d
	}
	return new(delivery)
}

// releaseDelivery returns a fired record to the executing context's pool.
func (w *World) releaseDelivery(dst *node, d *delivery) {
	if sx := w.shard; sx != nil && sx.inWindow {
		t := sx.tiles[dst.tile]
		t.freeDel = append(t.freeDel, d)
		return
	}
	w.freeDeliveries = append(w.freeDeliveries, d)
}

// send transmits a message over the link from→to, if it exists, with a
// uniformly random delay in [MinDelay, MaxDelay] drawn from the sender's
// stream, clamped to keep the directed link FIFO. The message is destroyed
// if the link fails (or the receiver crashes) before delivery. The
// delivery event's canonical key is (arrival, receiver, deliver, sender,
// sendSeq) — reproducible under any partitioning of the event population.
func (w *World) send(from, to core.NodeID, msg core.Message) {
	src := w.nodes[from]
	if src.crashed {
		return
	}
	oi, ok := src.nbrIndex(to)
	if !ok {
		return
	}
	w.countSent(src)
	src.sendSeq++
	observed := w.bus.Wants(trace.KindSend) ||
		w.bus.Wants(trace.KindDeliver) || w.bus.Wants(trace.KindDrop)
	var msgName string
	var msgSize int
	var msgID trace.MsgType
	if observed {
		msgName, msgSize, msgID = w.namer.Info(msg)
		if w.bus.Wants(trace.KindSend) {
			w.emit(src, trace.Event{
				Kind: trace.KindSend, Node: from, Peer: to,
				Msg: msgName, Size: msgSize, MsgSeq: src.sendSeq, MsgID: msgID,
			})
		}
	}
	sentAt := w.nowOf(src)
	delay := w.cfg.MinDelay
	if span := int64(w.cfg.MaxDelay - w.cfg.MinDelay); span > 0 {
		delay += sim.Time(src.rng.Int64N(span + 1))
	}
	at := sentAt + delay
	if !w.cfg.NonFIFO {
		if floor := src.lastOut[oi]; at <= floor {
			at = floor + 1
		}
		src.lastOut[oi] = at
	}
	d := w.allocDelivery(src)
	*d = delivery{
		w: w, from: from, to: to, msg: msg, sentAt: sentAt,
		ep: src.epoch(to), seq: src.sendSeq,
		msgName: msgName, msgSize: msgSize, msgID: msgID, observed: observed,
	}
	key := sim.Key{At: at, Owner: int32(to), Class: sim.ClassDeliver, A: uint64(from), B: src.sendSeq}
	if w.cfg.Tiles > 1 {
		sx := w.shard
		if sx == nil {
			w.pending = append(w.pending, sim.Item{K: key, R: d})
			return
		}
		if sx.inWindow {
			st := sx.tiles[src.tile]
			if w.nodes[to].tile == src.tile {
				st.heap.Push(sim.Item{K: key, R: d})
			} else {
				// Cross-tile: arrival is ≥ window start + ν, so the
				// coordinator can route it at the barrier before any
				// tile could reach that instant.
				st.outMsgs = append(st.outMsgs, sim.Item{K: key, R: d})
			}
			return
		}
		sx.tiles[w.nodes[to].tile].heap.Push(sim.Item{K: key, R: d})
		return
	}
	w.sched.AtRunnerKey(key, d)
}

// setLink creates or destroys the link between a and b, dispatching the
// biased notifications of §3.1. No-op if the link is already in the
// requested state. Coordinator context only: link transitions mutate both
// endpoints and are serialised with every tile paused, which is also what
// freezes the topology between sharded window barriers.
func (w *World) setLink(a, b core.NodeID, up bool) {
	na, nb := w.nodes[a], w.nodes[b]
	if na.hasNbr(b) == up {
		return
	}
	na.bumpEpoch(b)
	nb.bumpEpoch(a)
	if up {
		na.insertNeighbor(b)
		nb.insertNeighbor(a)
		movingSide := w.pickMovingSide(na, nb)
		if w.bus.Wants(trace.KindLinkUp) {
			w.emit(na, trace.Event{
				Kind: trace.KindLinkUp, Node: a, Peer: b,
				Detail: fmt.Sprint(movingSide),
			})
		}
		// Deliver the static-side indication first: in the paper's
		// link-level protocol the static node reacts by sending its
		// status (colour and doorway positions) to the newcomer.
		first, second := na, nb
		if first.id == movingSide {
			first, second = nb, na
		}
		if !first.crashed {
			first.proto.OnLinkUp(second.id, first.id == movingSide)
		}
		if !second.crashed {
			second.proto.OnLinkUp(first.id, second.id == movingSide)
		}
	} else {
		na.removeNeighbor(b)
		nb.removeNeighbor(a)
		if w.bus.Wants(trace.KindLinkDown) {
			w.emit(na, trace.Event{Kind: trace.KindLinkDown, Node: a, Peer: b})
		}
		if !na.crashed {
			na.proto.OnLinkDown(b)
		}
		if !nb.crashed {
			nb.proto.OnLinkDown(a)
		}
	}
	for _, l := range w.linkListeners {
		l.OnLink(a, b, up, w.Now())
	}
}

// pickMovingSide decides which endpoint of a new link receives the
// "I am moving" notification: the genuinely moving one if exactly one
// endpoint moves, otherwise (two movers meeting) the higher-ID endpoint,
// realising the symmetry-breaking rule of §3.1 with its bias toward static
// nodes.
func (w *World) pickMovingSide(a, b *node) core.NodeID {
	switch {
	case a.moving && !b.moving:
		return a.id
	case b.moving && !a.moving:
		return b.id
	default:
		// Both moving (links never form between two static nodes in
		// this model, but be safe): exactly one gets the moving role.
		if a.id > b.id {
			return a.id
		}
		return b.id
	}
}

// refreshLinks recomputes every link incident to id against the current
// positions. Candidates come from the spatial index (possible link-ups)
// plus the current neighbour list (possible link-downs); any node in
// neither set is out of range with no link, for which setLink would be a
// no-op — so the grid path transitions exactly the links the reference
// all-pairs scan would, in the same ascending-ID order, and the event
// streams coincide bit for bit.
func (w *World) refreshLinks(id core.NodeID) {
	n := w.nodes[id]
	r2 := w.cfg.Radius * w.cfg.Radius
	if w.bruteLinks {
		for _, other := range w.nodes {
			if other.id == id {
				continue
			}
			w.setLink(id, other.id, n.pos.Dist2(other.pos) <= r2)
		}
		return
	}
	cand := append(w.scratch[:0], n.nbrs...)
	cand = w.grid.appendNearby(n.pos, cand)
	slices.Sort(cand)
	w.scratch = cand[:0] // recycle the buffer's capacity next call
	prev := core.NodeID(-1)
	for _, other := range cand {
		if other == id || other == prev {
			continue
		}
		prev = other
		w.setLink(id, other, n.pos.Dist2(w.nodes[other].pos) <= r2)
	}
}

// setState records a protocol-reported dining transition and fans it out:
// the bus event and deferred listeners go through the effect path (exact
// canonical order at barriers), the inline listeners (workload driver)
// run immediately in the node's context.
func (w *World) setState(n *node, s core.State) {
	if n.state == s {
		return
	}
	old := n.state
	n.state = s
	if w.bus.Wants(trace.KindState) {
		w.emit(n, trace.Event{
			Kind: trace.KindState, Node: n.id, Peer: trace.NoNode,
			Old: old.String(), New: s.String(),
		})
	}
	at := w.nowOf(n)
	if sx := w.shard; sx != nil && sx.inWindow {
		if len(w.stateListeners) > 0 {
			sx.tiles[n.tile].buffer(effect{kind: effState, id: n.id, oldS: old, newS: s, at: at})
		}
	} else {
		for _, l := range w.stateListeners {
			l.OnStateChange(n.id, old, s, at)
		}
	}
	for _, l := range w.localStateListeners {
		l.OnStateChange(n.id, old, s, at)
	}
}

// env adapts a world node to core.Env.
type env struct {
	w *World
	n *node
}

var (
	_ core.Env       = (*env)(nil)
	_ trace.Emitter  = (*env)(nil)
	_ trace.Interest = (*env)(nil)
)

func (e *env) ID() core.NodeID { return e.n.id }

// Emit implements trace.Emitter: protocol-level events (doorway
// crossings, recolouring rounds, diagnostics) join the world's stream,
// stamped with the node's identity and the current instant. The Peer field
// passes through verbatim: emitters set trace.NoNode explicitly when the
// event has no peer, so an event genuinely about node 0 is never
// mislabelled (the zero-value rewrite this replaced silently turned
// Peer == 0 into NoNode).
func (e *env) Emit(ev trace.Event) {
	ev.Node = e.n.id
	e.w.emit(e.n, ev)
}

// Wants implements trace.Interest: protocols ask before assembling an
// event whose strings cost something to build (notef diagnostics,
// doorway details), and skip the work when no ring, sink, or subscriber
// would see that kind.
func (e *env) Wants(k trace.Kind) bool { return e.w.bus.Wants(k) }

func (e *env) Now() sim.Time { return e.w.nowOf(e.n) }

// Neighbors returns the node's current neighbours in ascending order, as
// a read-only view owned by the world (valid until the next topology
// change; copy to retain).
func (e *env) Neighbors() []core.NodeID { return e.n.nbrs }

func (e *env) Send(to core.NodeID, msg core.Message) { e.w.send(e.n.id, to, msg) }

func (e *env) Broadcast(msg core.Message) {
	for _, to := range e.n.nbrs {
		e.w.send(e.n.id, to, msg)
	}
}

func (e *env) Moving() bool { return e.n.moving }

func (e *env) SetState(s core.State) { e.w.setState(e.n, s) }
