// Package manet models the mobile ad hoc network of §3.1 of the paper on
// top of the discrete-event scheduler: nodes with positions on the plane, a
// unit-disk communication graph that changes as nodes move, reliable FIFO
// links with bounded message delay ν, link-level LinkUp/LinkDown
// indications with the paper's static/moving symmetry-breaking bias, crash
// failures, and the dispatch loop that drives each node's Protocol one
// atomic event at a time.
//
// The transport and link-maintenance layer is allocation-lean: adjacency
// is a per-node sorted ID slice updated incrementally on link up/down
// (Neighbors and Broadcast never allocate), per-directed-link FIFO floors
// and link epochs live in dense per-node slices indexed by peer, in-flight
// messages are pooled sim.Runner records instead of per-send closures, and
// link maintenance queries a uniform spatial hash (internal grid, cell
// size = Radius) instead of scanning all n nodes. None of this changes
// observable behaviour: same seed, bit-identical event trace (pinned by
// TestGoldenTraceHash and the grid-vs-brute differential test).
package manet

import (
	"fmt"
	"slices"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
	"lme/internal/trace"
)

// Config carries the physical parameters of the world.
type Config struct {
	// Seed derives every random choice (delays, mobility); runs with the
	// same seed and the same call sequence are identical.
	Seed uint64

	// Radius is the radio range: two nodes are neighbours iff their
	// Euclidean distance is at most Radius.
	Radius float64

	// MinDelay and MaxDelay bound the end-to-end message delay; MaxDelay
	// is the paper's ν. Delays are drawn uniformly per message, then
	// clamped so that each directed link delivers in FIFO order.
	MinDelay, MaxDelay sim.Time

	// TickInterval is the mobility integration step for continuous
	// movement. Zero selects a default of 20ms.
	TickInterval sim.Time

	// NonFIFO disables the per-directed-link FIFO delivery order — an
	// ablation of the paper's §3.1 link assumption (experiment E12).
	NonFIFO bool

	// TraceRing sizes the event bus's retained-history ring (0 = keep
	// no history; subscribers and sinks still receive every event).
	TraceRing int
}

// DefaultConfig returns the parameters used throughout the experiments:
// ν = 10ms with a 1ms floor, 20ms mobility ticks.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Radius:       0.25,
		MinDelay:     sim.Time(1_000),
		MaxDelay:     sim.Time(10_000),
		TickInterval: sim.Time(20_000),
	}
}

// LinkListener observes communication-graph changes (used by the safety
// checker and by traces).
type LinkListener interface {
	// OnLink is called after a link between a and b appears (up=true) or
	// disappears (up=false) and after both endpoint protocols processed
	// their notifications.
	OnLink(a, b core.NodeID, up bool, at sim.Time)
}

// MoveListener observes mobility status changes (used by the response-time
// recorder, which per Definition 1 only samples nodes that stayed static
// throughout a hungry interval).
type MoveListener interface {
	// OnMove is called when id starts (moving=true) or stops
	// (moving=false) moving.
	OnMove(id core.NodeID, moving bool, at sim.Time)
}

// node is the world-side record of a mobile node.
type node struct {
	id      core.NodeID
	pos     graph.Point
	proto   core.Protocol
	state   core.State
	moving  bool
	crashed bool

	// nbrs is the current neighbour set as an incrementally maintained
	// sorted ID slice; adj is the dense O(1) membership index. Both are
	// allocated at Start, when n is known.
	nbrs []core.NodeID
	adj  []bool

	// linkEpoch[p] counts incarnations of the link to p; a message whose
	// link epoch changed before delivery is destroyed with the link. The
	// two endpoints' counters are incremented together and always agree.
	linkEpoch []uint64

	// lastDelivery[p] enforces per-directed-link FIFO delivery (0 = no
	// delivery pending on this incarnation).
	lastDelivery []sim.Time

	// sendSeq is the node's monotone message counter; every accepted
	// send is stamped with the next value so traces carry a causal
	// send→deliver identity even across equal-time deliveries.
	sendSeq uint64

	// movement target; valid while moving.
	target graph.Point
	speed  float64 // plane units per second
	moveID uint64  // invalidates stale movement ticks
}

// insertNeighbor adds j to the sorted neighbour slice and membership index.
func (n *node) insertNeighbor(j core.NodeID) {
	n.nbrs = core.InsertID(n.nbrs, j)
	n.adj[j] = true
}

// removeNeighbor deletes j from the sorted neighbour slice and membership
// index.
func (n *node) removeNeighbor(j core.NodeID) {
	n.nbrs = core.RemoveID(n.nbrs, j)
	n.adj[j] = false
}

// World is the simulated MANET. It is single-threaded: all mutation happens
// inside scheduler events or before the run starts.
type World struct {
	cfg   Config
	sched *sim.Scheduler
	nodes []*node

	// grid is the spatial index link maintenance queries; scratch is its
	// reusable candidate buffer. bruteLinks disables the index in favour
	// of the all-pairs reference scan (the differential tests' oracle).
	grid       grid
	scratch    []core.NodeID
	bruteLinks bool

	// freeDeliveries and freeTickers pool the reusable in-flight message
	// and movement-tick records of the closure-free timer paths.
	freeDeliveries []*delivery
	freeTickers    []*moveTicker

	stateListeners []core.Listener
	linkListeners  []LinkListener
	moveListeners  []MoveListener

	// bus is the typed event stream every observable occurrence is
	// published to; namer classifies message payloads for it.
	bus   *trace.Bus
	namer *trace.TypeNamer

	started bool

	// msgsSent and msgsDelivered count protocol messages (the paper's
	// future-work measure of message complexity). They are maintained
	// natively so the cheap headline numbers survive even when nothing
	// subscribes to the bus.
	msgsSent, msgsDelivered uint64
}

// NewWorld creates an empty world driven by its own scheduler.
func NewWorld(cfg Config) *World {
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 20_000
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10_000
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 1
	}
	if cfg.MinDelay > cfg.MaxDelay {
		cfg.MinDelay = cfg.MaxDelay
	}
	return &World{
		cfg:   cfg,
		sched: sim.NewScheduler(cfg.Seed),
		bus:   trace.NewBus(cfg.TraceRing),
		namer: trace.NewTypeNamer(),
	}
}

// Bus exposes the world's typed event stream; subscribe before Start to
// observe the whole run.
func (w *World) Bus() *trace.Bus { return w.bus }

// TypeNamer exposes the world's message-type cache — the mint of the
// MsgID values traffic events carry. Consumers (metrics.Instrument) use
// it to resolve dense type IDs back to schema names.
func (w *World) TypeNamer() *trace.TypeNamer { return w.namer }

// Scheduler exposes the world's event loop for workloads and harnesses.
func (w *World) Scheduler() *sim.Scheduler { return w.sched }

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// N returns the number of nodes.
func (w *World) N() int { return len(w.nodes) }

// AddNode places a new node at pos and returns its ID. Must be called
// before Start.
func (w *World) AddNode(pos graph.Point) core.NodeID {
	if w.started {
		panic("manet: AddNode after Start")
	}
	id := core.NodeID(len(w.nodes))
	w.nodes = append(w.nodes, &node{
		id:    id,
		pos:   pos,
		state: core.Thinking,
	})
	return id
}

// SetProtocol installs the algorithm instance for a node. Must be called
// before Start.
func (w *World) SetProtocol(id core.NodeID, p core.Protocol) {
	if w.started {
		panic("manet: SetProtocol after Start")
	}
	w.nodes[id].proto = p
}

// AddStateListener registers a dining-state transition observer.
func (w *World) AddStateListener(l core.Listener) {
	w.stateListeners = append(w.stateListeners, l)
}

// AddLinkListener registers a communication-graph change observer.
func (w *World) AddLinkListener(l LinkListener) {
	w.linkListeners = append(w.linkListeners, l)
}

// AddMoveListener registers a mobility status observer.
func (w *World) AddMoveListener(l MoveListener) {
	w.moveListeners = append(w.moveListeners, l)
}

// setMoving flips a node's mobility flag, publishes the mobility event
// and notifies observers.
func (w *World) setMoving(n *node, moving bool) {
	if n.moving == moving {
		return
	}
	n.moving = moving
	kind := trace.KindMoveStop
	if moving {
		kind = trace.KindMoveStart
	}
	if w.bus.Wants(kind) {
		w.emit(trace.Event{
			Kind: kind, Node: n.id, Peer: trace.NoNode,
			Detail: fmt.Sprintf("(%.3f,%.3f)", n.pos.X, n.pos.Y),
		})
	}
	for _, l := range w.moveListeners {
		l.OnMove(n.id, moving, w.sched.Now())
	}
}

// emit stamps the event with the current virtual time and publishes it.
func (w *World) emit(e trace.Event) {
	e.At = w.sched.Now()
	w.bus.Publish(e)
}

// relocate moves a node to p, keeping the spatial index in sync.
func (w *World) relocate(n *node, p graph.Point) {
	if !w.bruteLinks {
		w.grid.move(n.id, n.pos, p)
	}
	n.pos = p
}

// addLink silently records the link a—b (Start's initial topology: no
// epoch bump, no notifications).
func (w *World) addLink(a, b core.NodeID) {
	w.nodes[a].insertNeighbor(b)
	w.nodes[b].insertNeighbor(a)
}

// Start computes the initial communication graph (silently: pre-existing
// links generate no LinkUp indications; the paper's initial fork and colour
// distributions are ID-based conventions each protocol applies in Init) and
// initialises every protocol.
func (w *World) Start() error {
	if w.started {
		return fmt.Errorf("manet: Start called twice")
	}
	for _, n := range w.nodes {
		if n.proto == nil {
			return fmt.Errorf("manet: node %d has no protocol", n.id)
		}
	}
	w.started = true
	nn := len(w.nodes)
	for _, n := range w.nodes {
		n.adj = make([]bool, nn)
		n.linkEpoch = make([]uint64, nn)
		n.lastDelivery = make([]sim.Time, nn)
	}
	r2 := w.cfg.Radius * w.cfg.Radius
	if w.bruteLinks {
		for i := range w.nodes {
			for j := i + 1; j < nn; j++ {
				if w.nodes[i].pos.Dist2(w.nodes[j].pos) <= r2 {
					w.addLink(w.nodes[i].id, w.nodes[j].id)
				}
			}
		}
	} else {
		w.grid = newGrid(w.cfg.Radius)
		for _, n := range w.nodes {
			w.grid.insert(n.id, n.pos)
		}
		for _, n := range w.nodes {
			cand := w.grid.appendNearby(n.pos, w.scratch[:0])
			for _, j := range cand {
				if j <= n.id {
					continue // each unordered pair once
				}
				if n.pos.Dist2(w.nodes[j].pos) <= r2 {
					w.addLink(n.id, j)
				}
			}
			w.scratch = cand[:0]
		}
	}
	for _, n := range w.nodes {
		n.proto.Init(&env{w: w, n: n})
	}
	return nil
}

// Neighbors returns the neighbour IDs of id in ascending order. The
// returned slice is a read-only view owned by the world; it is invalidated
// by the next topology change. Copy it to retain it.
func (w *World) Neighbors(id core.NodeID) []core.NodeID {
	return w.nodes[id].nbrs
}

// Position returns the current position of id.
func (w *World) Position(id core.NodeID) graph.Point { return w.nodes[id].pos }

// Moving reports whether id is currently in motion.
func (w *World) Moving(id core.NodeID) bool { return w.nodes[id].moving }

// Crashed reports whether id has crashed.
func (w *World) Crashed(id core.NodeID) bool { return w.nodes[id].crashed }

// State returns the last dining state reported by id's protocol.
func (w *World) State(id core.NodeID) core.State { return w.nodes[id].state }

// Protocol returns the protocol instance of id (for white-box tests).
func (w *World) Protocol(id core.NodeID) core.Protocol { return w.nodes[id].proto }

// CommGraph snapshots the current communication graph.
func (w *World) CommGraph() *graph.Graph {
	g := graph.New(len(w.nodes))
	for _, n := range w.nodes {
		for _, peer := range n.nbrs {
			g.AddEdge(int(n.id), int(peer))
		}
	}
	return g
}

// MessagesSent reports the number of protocol messages handed to the
// transport so far.
func (w *World) MessagesSent() uint64 { return w.msgsSent }

// MessagesDelivered reports the number of protocol messages delivered so
// far (sent minus dropped on link failures and crashes).
func (w *World) MessagesDelivered() uint64 { return w.msgsDelivered }

// MaxDegree returns δ of the current communication graph.
func (w *World) MaxDegree() int {
	max := 0
	for _, n := range w.nodes {
		if d := len(n.nbrs); d > max {
			max = d
		}
	}
	return max
}

// Crash fails node id at the current instant: it stops processing events,
// stops moving, and never recovers. Other nodes receive no indication (the
// paper's crash model is undetectable).
func (w *World) Crash(id core.NodeID) {
	n := w.nodes[id]
	if n.crashed {
		return
	}
	n.crashed = true
	w.setMoving(n, false)
	n.moveID++ // cancel pending movement ticks
	if w.bus.Wants(trace.KindCrash) {
		w.emit(trace.Event{Kind: trace.KindCrash, Node: id, Peer: trace.NoNode})
	}
}

// CrashAt schedules a crash of id at time t.
func (w *World) CrashAt(id core.NodeID, t sim.Time) {
	w.sched.At(t, func() { w.Crash(id) })
}

// delivery is one pooled in-flight message: the sim.Runner the transport
// schedules instead of capturing six variables in a fresh closure per
// send. Records are recycled through World.freeDeliveries after firing.
type delivery struct {
	w        *World
	from, to core.NodeID
	msg      core.Message
	sentAt   sim.Time
	ep       uint64
	seq      uint64
	msgName  string
	msgSize  int
	msgID    trace.MsgType
	observed bool
}

// Run implements sim.Runner: deliver the message, or destroy it if its
// link incarnation ended or the receiver crashed before the instant came.
func (d *delivery) Run() {
	w := d.w
	src, dst := w.nodes[d.from], w.nodes[d.to]
	if dst.crashed || src.linkEpoch[d.to] != d.ep || !dst.adj[d.from] {
		// Destroyed with the link, or receiver dead.
		if d.observed && w.bus.Wants(trace.KindDrop) {
			reason := "link-changed"
			if dst.crashed {
				reason = "receiver-crashed"
			}
			w.emit(trace.Event{
				Kind: trace.KindDrop, Node: d.to, Peer: d.from,
				Msg: d.msgName, Size: d.msgSize, MsgSeq: d.seq, MsgID: d.msgID,
				Detail: reason,
			})
		}
	} else {
		w.msgsDelivered++
		if d.observed && w.bus.Wants(trace.KindDeliver) {
			w.emit(trace.Event{
				Kind: trace.KindDeliver, Node: d.to, Peer: d.from,
				Msg: d.msgName, Size: d.msgSize, MsgSeq: d.seq, MsgID: d.msgID,
				Delay: w.sched.Now() - d.sentAt,
			})
		}
		dst.proto.OnMessage(d.from, d.msg)
	}
	d.msg = nil // release the payload before pooling
	w.freeDeliveries = append(w.freeDeliveries, d)
}

// send transmits a message over the link from→to, if it exists, with a
// uniformly random delay in [MinDelay, MaxDelay], clamped to keep the
// directed link FIFO. The message is destroyed if the link fails (or the
// receiver crashes) before delivery.
func (w *World) send(from, to core.NodeID, msg core.Message) {
	src := w.nodes[from]
	if src.crashed || !src.adj[to] {
		return
	}
	w.msgsSent++
	src.sendSeq++
	observed := w.bus.Wants(trace.KindSend) ||
		w.bus.Wants(trace.KindDeliver) || w.bus.Wants(trace.KindDrop)
	var msgName string
	var msgSize int
	var msgID trace.MsgType
	if observed {
		msgName, msgSize, msgID = w.namer.Info(msg)
		if w.bus.Wants(trace.KindSend) {
			w.emit(trace.Event{
				Kind: trace.KindSend, Node: from, Peer: to,
				Msg: msgName, Size: msgSize, MsgSeq: src.sendSeq, MsgID: msgID,
			})
		}
	}
	sentAt := w.sched.Now()
	delay := w.cfg.MinDelay
	if span := int64(w.cfg.MaxDelay - w.cfg.MinDelay); span > 0 {
		delay += sim.Time(w.sched.Rand().Int64N(span + 1))
	}
	at := sentAt + delay
	if !w.cfg.NonFIFO {
		if floor := src.lastDelivery[to]; at <= floor {
			at = floor + 1
		}
		src.lastDelivery[to] = at
	}
	var d *delivery
	if k := len(w.freeDeliveries); k > 0 {
		d = w.freeDeliveries[k-1]
		w.freeDeliveries = w.freeDeliveries[:k-1]
	} else {
		d = new(delivery)
	}
	*d = delivery{
		w: w, from: from, to: to, msg: msg, sentAt: sentAt,
		ep: src.linkEpoch[to], seq: src.sendSeq,
		msgName: msgName, msgSize: msgSize, msgID: msgID, observed: observed,
	}
	w.sched.AtRunner(at, d)
}

// setLink creates or destroys the link between a and b, dispatching the
// biased notifications of §3.1. No-op if the link is already in the
// requested state.
func (w *World) setLink(a, b core.NodeID, up bool) {
	na, nb := w.nodes[a], w.nodes[b]
	if na.adj[b] == up {
		return
	}
	na.linkEpoch[b]++
	nb.linkEpoch[a]++
	if up {
		na.insertNeighbor(b)
		nb.insertNeighbor(a)
		movingSide := w.pickMovingSide(na, nb)
		if w.bus.Wants(trace.KindLinkUp) {
			w.emit(trace.Event{
				Kind: trace.KindLinkUp, Node: a, Peer: b,
				Detail: fmt.Sprint(movingSide),
			})
		}
		// Deliver the static-side indication first: in the paper's
		// link-level protocol the static node reacts by sending its
		// status (colour and doorway positions) to the newcomer.
		first, second := na, nb
		if first.id == movingSide {
			first, second = nb, na
		}
		if !first.crashed {
			first.proto.OnLinkUp(second.id, first.id == movingSide)
		}
		if !second.crashed {
			second.proto.OnLinkUp(first.id, second.id == movingSide)
		}
	} else {
		na.removeNeighbor(b)
		nb.removeNeighbor(a)
		na.lastDelivery[b] = 0
		nb.lastDelivery[a] = 0
		if w.bus.Wants(trace.KindLinkDown) {
			w.emit(trace.Event{Kind: trace.KindLinkDown, Node: a, Peer: b})
		}
		if !na.crashed {
			na.proto.OnLinkDown(b)
		}
		if !nb.crashed {
			nb.proto.OnLinkDown(a)
		}
	}
	for _, l := range w.linkListeners {
		l.OnLink(a, b, up, w.sched.Now())
	}
}

// pickMovingSide decides which endpoint of a new link receives the
// "I am moving" notification: the genuinely moving one if exactly one
// endpoint moves, otherwise (two movers meeting) the higher-ID endpoint,
// realising the symmetry-breaking rule of §3.1 with its bias toward static
// nodes.
func (w *World) pickMovingSide(a, b *node) core.NodeID {
	switch {
	case a.moving && !b.moving:
		return a.id
	case b.moving && !a.moving:
		return b.id
	default:
		// Both moving (links never form between two static nodes in
		// this model, but be safe): exactly one gets the moving role.
		if a.id > b.id {
			return a.id
		}
		return b.id
	}
}

// refreshLinks recomputes every link incident to id against the current
// positions. Candidates come from the spatial index (possible link-ups)
// plus the current neighbour list (possible link-downs); any node in
// neither set is out of range with no link, for which setLink would be a
// no-op — so the grid path transitions exactly the links the reference
// all-pairs scan would, in the same ascending-ID order, and the event
// streams coincide bit for bit.
func (w *World) refreshLinks(id core.NodeID) {
	n := w.nodes[id]
	r2 := w.cfg.Radius * w.cfg.Radius
	if w.bruteLinks {
		for _, other := range w.nodes {
			if other.id == id {
				continue
			}
			w.setLink(id, other.id, n.pos.Dist2(other.pos) <= r2)
		}
		return
	}
	cand := append(w.scratch[:0], n.nbrs...)
	cand = w.grid.appendNearby(n.pos, cand)
	slices.Sort(cand)
	w.scratch = cand[:0] // recycle the buffer's capacity next call
	prev := core.NodeID(-1)
	for _, other := range cand {
		if other == id || other == prev {
			continue
		}
		prev = other
		w.setLink(id, other, n.pos.Dist2(w.nodes[other].pos) <= r2)
	}
}

// setState records a protocol-reported dining transition and fans it out.
func (w *World) setState(n *node, s core.State) {
	if n.state == s {
		return
	}
	old := n.state
	n.state = s
	if w.bus.Wants(trace.KindState) {
		w.emit(trace.Event{
			Kind: trace.KindState, Node: n.id, Peer: trace.NoNode,
			Old: old.String(), New: s.String(),
		})
	}
	for _, l := range w.stateListeners {
		l.OnStateChange(n.id, old, s, w.sched.Now())
	}
}

// env adapts a world node to core.Env.
type env struct {
	w *World
	n *node
}

var (
	_ core.Env       = (*env)(nil)
	_ trace.Emitter  = (*env)(nil)
	_ trace.Interest = (*env)(nil)
)

func (e *env) ID() core.NodeID { return e.n.id }

// Emit implements trace.Emitter: protocol-level events (doorway
// crossings, recolouring rounds, diagnostics) join the world's stream,
// stamped with the node's identity and the current instant. The Peer field
// passes through verbatim: emitters set trace.NoNode explicitly when the
// event has no peer, so an event genuinely about node 0 is never
// mislabelled (the zero-value rewrite this replaced silently turned
// Peer == 0 into NoNode).
func (e *env) Emit(ev trace.Event) {
	ev.Node = e.n.id
	e.w.emit(ev)
}

// Wants implements trace.Interest: protocols ask before assembling an
// event whose strings cost something to build (notef diagnostics,
// doorway details), and skip the work when no ring, sink, or subscriber
// would see that kind.
func (e *env) Wants(k trace.Kind) bool { return e.w.bus.Wants(k) }

func (e *env) Now() sim.Time { return e.w.sched.Now() }

// Neighbors returns the node's current neighbours in ascending order, as
// a read-only view owned by the world (valid until the next topology
// change; copy to retain).
func (e *env) Neighbors() []core.NodeID { return e.n.nbrs }

func (e *env) Send(to core.NodeID, msg core.Message) { e.w.send(e.n.id, to, msg) }

func (e *env) Broadcast(msg core.Message) {
	for _, to := range e.n.nbrs {
		e.w.send(e.n.id, to, msg)
	}
}

func (e *env) Moving() bool { return e.n.moving }

func (e *env) SetState(s core.State) { e.w.setState(e.n, s) }
