package manet

import (
	"testing"
	"testing/quick"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
)

// stub is a minimal protocol that records everything it observes.
type stub struct {
	env   core.Env
	msgs  []stubMsg
	ups   []stubLink
	downs []core.NodeID
	state core.State
}

type stubMsg struct {
	from core.NodeID
	msg  core.Message
	at   sim.Time
}

type stubLink struct {
	peer      core.NodeID
	iAmMoving bool
}

func (s *stub) Init(env core.Env)        { s.env = env; s.state = core.Thinking }
func (s *stub) BecomeHungry()            { s.state = core.Hungry; s.env.SetState(core.Hungry) }
func (s *stub) ExitCS()                  { s.state = core.Thinking; s.env.SetState(core.Thinking) }
func (s *stub) State() core.State        { return s.state }
func (s *stub) OnLinkDown(p core.NodeID) { s.downs = append(s.downs, p) }

func (s *stub) OnMessage(from core.NodeID, msg core.Message) {
	s.msgs = append(s.msgs, stubMsg{from: from, msg: msg, at: s.env.Now()})
}

func (s *stub) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	s.ups = append(s.ups, stubLink{peer: peer, iAmMoving: iAmMoving})
}

// buildWorld places nodes at the given points with stub protocols.
func buildWorld(t *testing.T, cfg Config, pts []graph.Point) (*World, []*stub) {
	t.Helper()
	w := NewWorld(cfg)
	stubs := make([]*stub, len(pts))
	for i, p := range pts {
		id := w.AddNode(p)
		stubs[i] = &stub{}
		w.SetProtocol(id, stubs[i])
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	return w, stubs
}

func lineConfig() Config {
	cfg := DefaultConfig()
	cfg.Radius = 0.15
	return cfg
}

func TestInitialLinksSilent(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.1}, {X: 0.2}})
	if got := w.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if got := w.Neighbors(1); len(got) != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	for i, s := range stubs {
		if len(s.ups) != 0 {
			t.Fatalf("node %d got LinkUp for pre-existing link", i)
		}
	}
}

func TestSendDelayBoundsAndFIFO(t *testing.T) {
	cfg := lineConfig()
	cfg.MinDelay, cfg.MaxDelay = 500, 2_000
	w, stubs := buildWorld(t, cfg, []graph.Point{{X: 0}, {X: 0.1}})
	const k = 200
	w.Scheduler().At(0, func() {
		for i := 0; i < k; i++ {
			w.send(0, 1, i)
		}
	})
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if len(stubs[1].msgs) != k {
		t.Fatalf("delivered %d messages, want %d", len(stubs[1].msgs), k)
	}
	for i, m := range stubs[1].msgs {
		if got, ok := m.msg.(int); !ok || got != i {
			t.Fatalf("FIFO violated: position %d carries %v", i, m.msg)
		}
		if i > 0 && m.at < stubs[1].msgs[i-1].at {
			t.Fatalf("delivery times decreased at %d", i)
		}
	}
	if first := stubs[1].msgs[0].at; first < 500 {
		t.Fatalf("first delivery at %v, below MinDelay", first)
	}
}

func TestSendToNonNeighborDropped(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.5}})
	w.Scheduler().At(0, func() { w.send(0, 1, "hello") })
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if len(stubs[1].msgs) != 0 {
		t.Fatal("message crossed a non-existent link")
	}
}

func TestInFlightDestroyedWithLink(t *testing.T) {
	cfg := lineConfig()
	cfg.MinDelay, cfg.MaxDelay = 5_000, 5_000
	w, stubs := buildWorld(t, cfg, []graph.Point{{X: 0}, {X: 0.1}})
	w.Scheduler().At(0, func() { w.send(0, 1, "doomed") })
	// Node 1 jumps out of range at t=1ms, before the 5ms delivery.
	w.JumpAt(1, graph.Point{X: 0.9}, 1_000, 1_000)
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if len(stubs[1].msgs) != 0 {
		t.Fatal("in-flight message survived link failure")
	}
	if len(stubs[0].downs) != 1 || stubs[0].downs[0] != 1 {
		t.Fatalf("node 0 LinkDowns = %v", stubs[0].downs)
	}
}

func TestLinkUpBiasMoverVsStatic(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.5}})
	w.JumpAt(1, graph.Point{X: 0.1}, 10_000, 1_000)
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if len(stubs[0].ups) != 1 || stubs[0].ups[0].iAmMoving {
		t.Fatalf("static side got %+v", stubs[0].ups)
	}
	if len(stubs[1].ups) != 1 || !stubs[1].ups[0].iAmMoving {
		t.Fatalf("moving side got %+v", stubs[1].ups)
	}
}

func TestLinkUpBiasTwoMovers(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 1}})
	// Both jump to the centre in the same instant; both are flagged
	// moving when the second jump recomputes links.
	w.JumpAt(0, graph.Point{X: 0.45}, 50_000, 1_000)
	w.JumpAt(1, graph.Point{X: 0.55}, 50_000, 1_000)
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	movingSides := 0
	for i, s := range stubs {
		if len(s.ups) != 1 {
			t.Fatalf("node %d ups = %v", i, s.ups)
		}
		if s.ups[0].iAmMoving {
			movingSides++
		}
	}
	if movingSides != 1 {
		t.Fatalf("got %d moving-side notifications, want exactly 1", movingSides)
	}
}

func TestJumpSettlesToStatic(t *testing.T) {
	w, _ := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.5}})
	w.JumpAt(1, graph.Point{X: 0.1}, 5_000, 1_000)
	if err := w.Scheduler().RunUntil(2_000, 0); err != nil {
		t.Fatal(err)
	}
	if !w.Moving(1) {
		t.Fatal("node should be moving during settle window")
	}
	if err := w.Scheduler().RunUntil(10_000, 0); err != nil {
		t.Fatal(err)
	}
	if w.Moving(1) {
		t.Fatal("node still moving after settle")
	}
}

func TestMoveToCreatesAndDestroysLinks(t *testing.T) {
	cfg := lineConfig()
	w, stubs := buildWorld(t, cfg, []graph.Point{{X: 0}, {X: 0.1}, {X: 0.5}})
	// Node 0 travels from x=0 to x=0.6: loses 1, gains 2.
	w.Scheduler().At(0, func() { w.MoveTo(0, graph.Point{X: 0.6}, 1.0) })
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if w.Moving(0) {
		t.Fatal("node 0 still moving after arrival")
	}
	if got := w.Neighbors(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Neighbors(0) after trip = %v", got)
	}
	if len(stubs[1].downs) != 1 || stubs[1].downs[0] != 0 {
		t.Fatalf("node 1 downs = %v", stubs[1].downs)
	}
	if len(stubs[2].ups) != 1 || stubs[2].ups[0].iAmMoving {
		t.Fatalf("node 2 ups = %v (static side expected)", stubs[2].ups)
	}
	if len(stubs[0].ups) != 1 || !stubs[0].ups[0].iAmMoving {
		t.Fatalf("node 0 ups = %v (moving side expected)", stubs[0].ups)
	}
}

func TestCrashStopsProcessingAndMovement(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.1}})
	w.Scheduler().At(0, func() { w.MoveTo(0, graph.Point{X: 1}, 0.5) })
	w.CrashAt(0, 30_000)
	w.Scheduler().At(40_000, func() { w.send(1, 0, "late") })
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if !w.Crashed(0) {
		t.Fatal("node 0 not crashed")
	}
	if len(stubs[0].msgs) != 0 {
		t.Fatal("crashed node processed a message")
	}
	pos := w.Position(0)
	if pos.X >= 0.5 {
		t.Fatalf("crashed node kept moving to x=%.3f", pos.X)
	}
}

func TestStateListenerFanout(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}})
	var events []core.State
	w.AddStateListener(core.ListenerFunc(func(id core.NodeID, old, new core.State, at sim.Time) {
		events = append(events, new)
	}))
	w.Scheduler().At(0, func() { stubs[0].BecomeHungry() })
	w.Scheduler().At(10, func() { stubs[0].ExitCS() })
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != core.Hungry || events[1] != core.Thinking {
		t.Fatalf("events = %v", events)
	}
	if w.State(0) != core.Thinking {
		t.Fatalf("State(0) = %v", w.State(0))
	}
}

func TestLinkListenerFanout(t *testing.T) {
	w, _ := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.5}})
	type ev struct {
		a, b core.NodeID
		up   bool
	}
	var events []ev
	w.AddLinkListener(linkListenerFunc(func(a, b core.NodeID, up bool, at sim.Time) {
		events = append(events, ev{a, b, up})
	}))
	w.JumpAt(1, graph.Point{X: 0.1}, 1_000, 1_000)
	w.JumpAt(1, graph.Point{X: 0.9}, 1_000, 50_000)
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || !events[0].up || events[1].up {
		t.Fatalf("events = %v", events)
	}
}

type linkListenerFunc func(a, b core.NodeID, up bool, at sim.Time)

func (f linkListenerFunc) OnLink(a, b core.NodeID, up bool, at sim.Time) { f(a, b, up, at) }

func TestCommGraphSnapshot(t *testing.T) {
	w, _ := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.1}, {X: 0.2}, {X: 0.9}})
	g := w.CommGraph()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(2, 3) {
		t.Fatalf("snapshot edges = %v", g.Edges())
	}
	if w.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", w.MaxDegree())
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0.1}, {X: 0}, {X: 0.2}, {X: 0.9}})
	w.Scheduler().At(0, func() { stubs[0].env.Broadcast("hi") })
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if len(stubs[i].msgs) != 1 {
			t.Fatalf("neighbour %d got %d messages", i, len(stubs[i].msgs))
		}
	}
	if len(stubs[3].msgs) != 0 {
		t.Fatal("non-neighbour received broadcast")
	}
}

func TestWaypointKeepsMovingNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Radius = 0.3
	w, _ := buildWorld(t, cfg, []graph.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}})
	start := w.Position(0)
	Waypoint{Speed: 0.5, PauseMin: 1_000, PauseMax: 5_000, Until: 400_000}.Attach(w, []core.NodeID{0})
	// A trip started just before Until can take up to ~2.9s at speed
	// 0.5; run long enough for the last trip to finish.
	if err := w.Scheduler().RunUntil(4_000_000, 0); err != nil {
		t.Fatal(err)
	}
	if w.Position(0) == start {
		t.Fatal("waypoint mover never moved")
	}
	if w.Moving(0) {
		t.Fatal("mover should settle after Until")
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() []sim.Time {
		cfg := DefaultConfig()
		cfg.Seed = 77
		w := NewWorld(cfg)
		stubs := make([]*stub, 4)
		for i := range stubs {
			stubs[i] = &stub{}
			id := w.AddNode(graph.Point{X: float64(i) * 0.2})
			w.SetProtocol(id, stubs[i])
		}
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		Waypoint{Speed: 0.4, PauseMin: 1_000, PauseMax: 20_000, Until: 300_000}.Attach(w, []core.NodeID{0, 3})
		w.Scheduler().At(0, func() { stubs[1].env.Broadcast("x") })
		if err := w.Scheduler().RunUntil(500_000, 0); err != nil {
			t.Fatal(err)
		}
		var times []sim.Time
		for _, s := range stubs {
			for _, m := range s.msgs {
				times = append(times, m.at)
			}
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in message count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at message %d", i)
		}
	}
}

// TestFIFOProperty uses quick to check FIFO delivery under random delays.
func TestFIFOProperty(t *testing.T) {
	prop := func(seed uint64, burst uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Radius = 0.5
		w := NewWorld(cfg)
		s0, s1 := &stub{}, &stub{}
		w.AddNode(graph.Point{X: 0})
		w.AddNode(graph.Point{X: 0.1})
		w.SetProtocol(0, s0)
		w.SetProtocol(1, s1)
		if err := w.Start(); err != nil {
			return false
		}
		n := int(burst%50) + 1
		for i := 0; i < n; i++ {
			i := i
			w.Scheduler().At(sim.Time(i*100), func() { w.send(0, 1, i) })
		}
		if err := w.Scheduler().Run(0); err != nil {
			return false
		}
		if len(s1.msgs) != n {
			return false
		}
		for i, m := range s1.msgs {
			if v, ok := m.msg.(int); !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMessageCounters(t *testing.T) {
	cfg := lineConfig()
	cfg.MinDelay, cfg.MaxDelay = 5_000, 5_000
	w, stubs := buildWorld(t, cfg, []graph.Point{{X: 0}, {X: 0.1}})
	w.Scheduler().At(0, func() { stubs[0].env.Send(1, "a") })     // delivers at 5ms
	w.Scheduler().At(3_000, func() { stubs[0].env.Send(1, "b") }) // would deliver at 8ms
	// The second message dies with the link: node 1 jumps away at 6ms.
	w.JumpAt(1, graph.Point{X: 0.9}, 1_000, 6_000)
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if got := w.MessagesSent(); got != 2 {
		t.Fatalf("MessagesSent = %d, want 2", got)
	}
	if got := w.MessagesDelivered(); got != 1 {
		t.Fatalf("MessagesDelivered = %d, want 1 (second dropped with the link)", got)
	}
}

func TestJumpSupersedesMoveTo(t *testing.T) {
	w, _ := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.5}})
	w.Scheduler().At(0, func() { w.MoveTo(0, graph.Point{X: 1}, 0.2) })
	// The jump at 50ms overrides the slow trip; stale ticks must not
	// resurrect the old movement.
	w.JumpAt(0, graph.Point{X: 0.25}, 10_000, 50_000)
	if err := w.Scheduler().RunUntil(2_000_000, 0); err != nil {
		t.Fatal(err)
	}
	if w.Moving(0) {
		t.Fatal("still moving after jump settled")
	}
	if got := w.Position(0); got.X != 0.25 {
		t.Fatalf("position = %+v, want the jump destination", got)
	}
}

func TestCrashedMoverStopsNotifying(t *testing.T) {
	w, _ := buildWorld(t, lineConfig(), []graph.Point{{X: 0}, {X: 0.5}})
	var moves []bool
	w.AddMoveListener(moveListenerFunc(func(id core.NodeID, moving bool, at sim.Time) {
		if id == 0 {
			moves = append(moves, moving)
		}
	}))
	w.Scheduler().At(0, func() { w.MoveTo(0, graph.Point{X: 1}, 0.1) })
	w.CrashAt(0, 100_000)
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	// Start event plus the crash-induced stop; nothing after.
	if len(moves) != 2 || !moves[0] || moves[1] {
		t.Fatalf("move events = %v, want [true false]", moves)
	}
}

type moveListenerFunc func(id core.NodeID, moving bool, at sim.Time)

func (f moveListenerFunc) OnMove(id core.NodeID, moving bool, at sim.Time) { f(id, moving, at) }

func TestBroadcastWithNoNeighbors(t *testing.T) {
	w, stubs := buildWorld(t, lineConfig(), []graph.Point{{X: 0}})
	w.Scheduler().At(0, func() { stubs[0].env.Broadcast("void") })
	if err := w.Scheduler().Run(0); err != nil {
		t.Fatal(err)
	}
	if w.MessagesSent() != 0 {
		t.Fatal("broadcast to nobody counted as sent")
	}
}

func TestConfigNormalization(t *testing.T) {
	w := NewWorld(Config{MinDelay: 50, MaxDelay: 10})
	if w.cfg.MinDelay > w.cfg.MaxDelay {
		t.Fatalf("delays not normalised: %+v", w.cfg)
	}
	w2 := NewWorld(Config{})
	if w2.cfg.TickInterval <= 0 || w2.cfg.MaxDelay <= 0 || w2.cfg.MinDelay <= 0 {
		t.Fatalf("zero config not defaulted: %+v", w2.cfg)
	}
}

func TestStartValidation(t *testing.T) {
	w := NewWorld(DefaultConfig())
	w.AddNode(graph.Point{})
	if err := w.Start(); err == nil {
		t.Fatal("Start accepted a node without a protocol")
	}
	w2 := NewWorld(DefaultConfig())
	id := w2.AddNode(graph.Point{})
	w2.SetProtocol(id, &stub{})
	if err := w2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}
