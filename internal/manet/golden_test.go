package manet_test

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/lme1"
	"lme/internal/manet"
	"lme/internal/sim"
)

// goldenTraceHash is the SHA-256 of the full JSONL event stream of the
// scenario below, recorded on the pre-optimization substrate (container
// heap, brute-force link scans, per-call sorted-map adjacency). The
// substrate optimizations must preserve it bit for bit: same seed, same
// trace. Regenerate deliberately (and only with a changelog entry) by
// running this test with -run TestGoldenTraceHash -v after an intentional
// semantic change; the failure message prints the new hash.
//
// Regenerated for the span layer: per-node send sequence numbers
// ("mseq") on send/deliver/drop events, and doorway "enter"/"abort"
// events bracketing lme1's BeginEntry/Abort calls.
//
// Regenerated for the region-sharded engine: message delays, waypoint
// draws and workload think times now come from per-node random streams
// (instead of one shared scheduler stream), and events execute in the
// canonical (time, owner, class, …) key order — the construction that
// makes runs bit-identical across engines, tile grids and worker counts.
// Once recorded on the single-heap engine, this hash is reproduced
// exactly by every sharded configuration (see sharded_test.go).
const goldenTraceHash = "4399863567ac1281cf86c93576a42cdec7948c626db996c8fd769699cd90a8c3"

// runGoldenScenario builds and runs a fixed mid-size scenario that
// exercises every substrate path: initial topology, waypoint mobility
// with link churn, protocol messaging (lme1 doorways, forks,
// recolouring), a mid-flight crash, and a hungry/exit workload. The JSONL
// encoding of every published event goes to sink (a hash for the golden
// test, a file for TestDumpGoldenTrace).
func runGoldenScenario(t *testing.T, sink io.Writer) {
	t.Helper()
	runGoldenScenarioCfg(t, sink, nil)
}

// runGoldenScenarioCfg is runGoldenScenario with a config hook, so the
// telemetry-invariance test can flip out-of-band knobs (telemetry
// collection, tiling) and pin that the recorded stream never moves.
func runGoldenScenarioCfg(t *testing.T, sink io.Writer, mutate func(*manet.Config)) {
	t.Helper()
	cfg := manet.DefaultConfig()
	cfg.Seed = 2026
	cfg.Radius = 0.28
	if mutate != nil {
		mutate(&cfg)
	}
	w := manet.NewWorld(cfg)
	w.Bus().SetSink(sink)

	pos := sim.NewScheduler(0xfeed).Rand()
	const n = 14
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{X: pos.Float64(), Y: pos.Float64()})
		w.SetProtocol(id, lme1.New(lme1.Config{Variant: lme1.VariantGreedy}))
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	manet.Waypoint{Speed: 0.35, PauseMin: 5_000, PauseMax: 40_000}.
		Attach(w, []core.NodeID{1, 4, 7})
	w.CrashAt(5, 600_000)

	// Workload: every 50ms, thinking nodes request the critical section
	// and eating nodes leave it.
	var cycle func()
	cycle = func() {
		for id := 0; id < n; id++ {
			if w.Crashed(core.NodeID(id)) {
				continue
			}
			p := w.Protocol(core.NodeID(id))
			switch p.State() {
			case core.Thinking:
				p.BecomeHungry()
			case core.Eating:
				p.ExitCS()
			}
		}
		w.Scheduler().After(50_000, cycle)
	}
	w.Scheduler().At(10_000, cycle)

	if err := w.Scheduler().RunUntil(1_500_000, 5_000_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Bus().Flush(); err != nil {
		t.Fatal(err)
	}
}

// goldenScenario returns the SHA-256 of the scenario's event stream.
func goldenScenario(t *testing.T) string {
	t.Helper()
	h := sha256.New()
	runGoldenScenario(t, h)
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenTraceHash pins the full event sequence of a fixed
// seed/scenario: the determinism regression guarding the scheduler and
// link-index swaps. A mismatch means same-seed runs no longer reproduce
// the pre-optimization trace.
func TestGoldenTraceHash(t *testing.T) {
	got := goldenScenario(t)
	if got != goldenTraceHash {
		t.Fatalf("golden trace hash changed:\n got  %s\n want %s\n"+
			"the substrate no longer reproduces the recorded event stream bit for bit",
			got, goldenTraceHash)
	}
}

// TestGoldenTraceHashTelemetryOn pins the out-of-band contract at the
// strongest oracle we have: collecting execution telemetry must
// reproduce the recorded golden stream bit for bit. (The scenario's
// workload uses Scheduler(), so it runs single-heap only; the sharded
// grids are covered by TestTelemetryInvariance's byte-level diffs.)
func TestGoldenTraceHashTelemetryOn(t *testing.T) {
	h := sha256.New()
	runGoldenScenarioCfg(t, h, func(cfg *manet.Config) { cfg.Telemetry = true })
	if got := hex.EncodeToString(h.Sum(nil)); got != goldenTraceHash {
		t.Fatalf("telemetry collection changed the golden trace:\n got  %s\n want %s",
			got, goldenTraceHash)
	}
}
