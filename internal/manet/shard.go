package manet

// The region-sharded execution engine (Config.Tiles > 1): conservative
// parallel discrete-event simulation over a grid of spatial tiles.
//
// The bounding box of the initial node positions is split into a g×g grid
// of tiles, each owning the nodes inside it and a private sim.EventHeap of
// their pending events. Execution alternates between parallel windows and
// serial barriers:
//
//   - Window: every tile whose earliest event precedes the window bound
//     runs its events on a worker goroutine. The bound is
//     KeyFloor(W + ν) where W is the globally earliest pending instant
//     and ν = Config.MinDelay: inside a window, the only way one node
//     affects another is a message, which arrives no earlier than ν after
//     it was sent, hence at or after the bound — so no tile can receive
//     an event it should already have executed (the classic conservative
//     lookahead argument, with ν as the lookahead). Everything a tile
//     touches in a window is owned by its own nodes; the topology is
//     frozen.
//
//   - Barrier: cross-tile message deliveries produced during the window
//     are routed to their receivers' tiles (they are all at or beyond the
//     bound, so no tile has run past them), buffered observable effects
//     (bus events, deferred listener callbacks) are merged and dispatched
//     in canonical key order, and then at most one topology event — a
//     movement tick or jump, which mutates two nodes' link state and the
//     spatial index at once — runs serially on the coordinator. Windows
//     never extend past the earliest pending topology event, so topology
//     events interleave with node events in exact canonical order.
//
// Determinism: every event executes in the canonical sim.Key order — the
// window bound arithmetic only decides how events are grouped into
// windows, never their relative order, and all randomness is drawn from
// per-node streams. A run's event sequence (and hence its trace) is
// bit-identical to the single-heap engine's, for every tile-grid size and
// every worker count. The differential tests in sharded_test.go and
// TestGoldenTraceHash pin this.

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
	"lme/internal/trace"
)

// effKind discriminates the buffered effect variants.
type effKind uint8

const (
	effBus   effKind = iota // a bus event to publish
	effState                // a deferred state-listener callback
	effMove                 // a deferred move-listener callback
)

// effect is one observable occurrence buffered during a parallel window:
// a bus publication or a deferred listener callback, stamped with the
// canonical key of the event that produced it plus a per-event sub-index,
// so the barrier can replay all tiles' effects as one stream in exactly
// the order the single-heap engine would have produced them.
type effect struct {
	key  sim.Key
	sub  uint32
	kind effKind

	ev         trace.Event // effBus
	id         core.NodeID // effState, effMove
	oldS, newS core.State  // effState
	flag       bool        // effMove: moving
	at         sim.Time    // effState, effMove
}

// tile is one spatial shard: a region of the plane, the event heap of the
// nodes inside it, and the window-scratch state of its worker. All fields
// are touched only by the tile's worker during a window and only by the
// coordinator between windows.
type tile struct {
	idx  int32
	heap sim.EventHeap

	// now is the tile-local clock: the instant of the event being (or
	// last) executed on this tile.
	now sim.Time

	// curKey and effSub stamp buffered effects: the canonical key of the
	// currently executing event and a running sub-index within it.
	curKey sim.Key
	effSub uint32

	processed               uint64
	msgsSent, msgsDelivered uint64

	// effs buffers the window's observable effects; outMsgs its
	// cross-tile deliveries (routed at the barrier); outTopo its
	// topology-event requests (pushed to the coordinator's heap at the
	// barrier). freeDel is the tile-local delivery-record pool.
	effs    []effect
	outMsgs []sim.Item
	outTopo []sim.Item
	freeDel []*delivery
}

// buffer records one observable effect of the currently executing event.
func (t *tile) buffer(e effect) {
	e.key = t.curKey
	e.sub = t.effSub
	t.effSub++
	t.effs = append(t.effs, e)
}

// run executes the tile's events strictly below bound.
func (t *tile) run(bound sim.Key, hook func(sim.Time)) {
	for {
		k, ok := t.heap.MinKey()
		if !ok || !k.Less(bound) {
			return
		}
		it := t.heap.Pop()
		t.now = k.At
		t.curKey = k
		t.effSub = 0
		if it.Fn != nil {
			it.Fn()
		} else {
			it.R.Run()
		}
		t.processed++
		if hook != nil {
			hook(t.now)
		}
	}
}

// shardExec is the sharded engine: the tile set, the coordinator's
// topology-event heap, and the window/barrier loop state.
type shardExec struct {
	w     *World
	g     int // tiles per side
	tiles []*tile

	// workers bounds the goroutines a window may use.
	workers int

	// topo is the coordinator's serial heap of ClassTopo events.
	topo sim.EventHeap

	// now is the coordinator clock: the latest instant any event has
	// executed at (== the single-heap engine's clock at every barrier).
	now sim.Time

	// inWindow is true while tile workers run; it routes World methods
	// called from tile context to tile-local resources. Written only at
	// window edges on the coordinator (the workers' start/join form the
	// happens-before edges).
	inWindow bool

	// hook is the per-event observer (World.SetEventHook). Under this
	// engine it runs concurrently from tile workers.
	hook func(sim.Time)

	// processed counts coordinator-executed (topology) events; tiles
	// count their own.
	processed uint64

	// lookahead is the conservative window width: ν = Config.MinDelay,
	// the minimum time for any cross-node influence.
	lookahead sim.Time

	// Tile-grid geometry: tileIdx(p) maps a position to a tile.
	minX, minY, invW, invH float64

	// Reusable barrier scratch.
	merged []effect
	migBuf []sim.Item
	active []*tile

	// tel accumulates execution telemetry when Config.Telemetry is set;
	// nil on the dark path, where the only residue is nil checks and
	// worker-local integer increments — no allocation, no time calls, no
	// change to how events are grouped or ordered.
	tel *shardTelemetry
}

// shardTelemetry is the engine's telemetry accumulator. All cumulative
// fields are owned by the coordinator and folded at window barriers; the
// w-prefixed slices are window scratch written by workers (one slot per
// worker — disjoint, and the WaitGroup join orders them before the
// coordinator's fold). Out-of-band by construction: nothing here feeds
// back into window bounds, event order or randomness.
type shardTelemetry struct {
	windows       uint64
	stealAttempts uint64
	stealHits     uint64
	crossMsgs     uint64

	// sumMax/sumMean accumulate each window's max and mean
	// events-per-active-tile; their quotient is the imbalance summary.
	sumMax, sumMean float64

	windowSpan   *metrics.Sketch // virtual window width, µs
	barrierStall *metrics.Sketch // per-worker stall at the join, ns

	// traffic is the sparse tile→tile delivery matrix, keyed
	// from<<32|to; lastProc remembers each tile's event count at the
	// previous barrier so per-window deltas need no extra work in the
	// tile hot loop.
	traffic  map[uint64]uint64
	lastProc []uint64

	wAttempts []uint64
	wHits     []uint64
	wFinish   []time.Time
}

func newShardTelemetry(tiles, workers int) *shardTelemetry {
	return &shardTelemetry{
		windowSpan:   metrics.NewSketch(),
		barrierStall: metrics.NewSketch(),
		traffic:      make(map[uint64]uint64),
		lastProc:     make([]uint64, tiles),
		wAttempts:    make([]uint64, workers),
		wHits:        make([]uint64, workers),
		wFinish:      make([]time.Time, workers),
	}
}

// workerDone records one worker's window tally: its draws on the shared
// work queue and the instant it ran out of tiles. Worker context; slot
// wi is exclusively this worker's.
func (tel *shardTelemetry) workerDone(wi int, attempts, hits uint64) {
	tel.wAttempts[wi] = attempts
	tel.wHits[wi] = hits
	tel.wFinish[wi] = time.Now()
}

// foldWorkers folds the window's worker slots after the join: draw
// counters into the steal totals, and each worker's gap to the last
// finisher into the barrier-stall sketch. Coordinator context.
func (tel *shardTelemetry) foldWorkers(nw int) {
	last := tel.wFinish[0]
	for _, ts := range tel.wFinish[1:nw] {
		if ts.After(last) {
			last = ts
		}
	}
	for wi := 0; wi < nw; wi++ {
		tel.stealAttempts += tel.wAttempts[wi]
		tel.stealHits += tel.wHits[wi]
		tel.barrierStall.ObserveFloat(float64(last.Sub(tel.wFinish[wi])))
	}
}

// foldWindow accumulates one window's shape: its virtual width and the
// max/mean events per active tile. Coordinator context, called between
// runTiles and the next window.
func (sx *shardExec) foldWindow(wstartAt, boundAt sim.Time) {
	tel := sx.tel
	tel.windows++
	tel.windowSpan.ObserveFloat(float64(boundAt - wstartAt))
	if len(sx.active) == 0 {
		return
	}
	var maxEv, sumEv uint64
	for _, t := range sx.active {
		d := t.processed - tel.lastProc[t.idx]
		tel.lastProc[t.idx] = t.processed
		if d > maxEv {
			maxEv = d
		}
		sumEv += d
	}
	tel.sumMax += float64(maxEv)
	tel.sumMean += float64(sumEv) / float64(len(sx.active))
}

// telemetrySnapshot assembles the engine's lme/telemetry/v1 record.
// Coordinator context only (between RunUntil slices, or after the run):
// it reads tile counters the workers own during windows.
func (sx *shardExec) telemetrySnapshot() *telemetry.EngineStats {
	tel := sx.tel
	if tel == nil {
		return nil
	}
	es := &telemetry.EngineStats{
		Schema:         telemetry.Schema,
		Tiles:          sx.g,
		Workers:        sx.workers,
		Windows:        tel.windows,
		Events:         sx.totalProcessed(),
		StealAttempts:  tel.stealAttempts,
		StealHits:      tel.stealHits,
		CrossTileMsgs:  tel.crossMsgs,
		WindowSpanUS:   tel.windowSpan.Snapshot(),
		BarrierStallNS: tel.barrierStall.Snapshot(),
	}
	if tel.windows > 0 {
		es.ImbalanceMaxAvg = tel.sumMax / float64(tel.windows)
		es.ImbalanceMeanAvg = tel.sumMean / float64(tel.windows)
		if es.ImbalanceMeanAvg > 0 {
			es.Imbalance = es.ImbalanceMaxAvg / es.ImbalanceMeanAvg
		}
	}
	es.PerTile = make([]telemetry.TileStats, len(sx.tiles))
	for i, t := range sx.tiles {
		es.PerTile[i] = telemetry.TileStats{
			Tile: t.idx, Events: t.processed,
			MsgsSent: t.msgsSent, MsgsDelivered: t.msgsDelivered,
		}
	}
	if len(tel.traffic) > 0 {
		keys := make([]uint64, 0, len(tel.traffic))
		for k := range tel.traffic {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		es.Traffic = make([]telemetry.TileLink, len(keys))
		for i, k := range keys {
			es.Traffic[i] = telemetry.TileLink{
				From: int32(k >> 32), To: int32(uint32(k)), Msgs: tel.traffic[k],
			}
		}
	}
	return es
}

// initShard builds the tile grid over the initial node positions and
// switches the world to the sharded engine. Called from Start after the
// initial topology is computed and before protocols initialise, so Init's
// sends route into tile heaps.
func (w *World) initShard() {
	g := w.cfg.Tiles
	sx := &shardExec{
		w:         w,
		g:         g,
		workers:   w.cfg.ShardWorkers,
		lookahead: w.cfg.MinDelay,
	}
	if sx.workers <= 0 {
		sx.workers = runtime.GOMAXPROCS(0)
	}
	if sx.lookahead < 1 {
		sx.lookahead = 1
	}
	if w.cfg.Telemetry {
		sx.tel = newShardTelemetry(g*g, max(sx.workers, 1))
	}
	// The tile grid covers the bounding box of the initial positions
	// (layouts like LinePoints extend beyond the unit square). Geometry
	// only shapes load balance, never results: a mover leaving the box
	// is clamped to the border tiles.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, n := range w.nodes {
		minX, maxX = math.Min(minX, n.pos.X), math.Max(maxX, n.pos.X)
		minY, maxY = math.Min(minY, n.pos.Y), math.Max(maxY, n.pos.Y)
	}
	width, height := maxX-minX, maxY-minY
	if !(width > 0) {
		width = 1
	}
	if !(height > 0) {
		height = 1
	}
	sx.minX, sx.minY = minX, minY
	sx.invW = float64(g) / width
	sx.invH = float64(g) / height
	sx.tiles = make([]*tile, g*g)
	for i := range sx.tiles {
		sx.tiles[i] = &tile{idx: int32(i)}
	}
	for _, n := range w.nodes {
		n.tile = sx.tileIdx(n.pos)
	}
	sx.hook = w.pendingHook
	w.pendingHook = nil
	w.shard = sx
	for _, it := range w.pending {
		if it.K.Class == sim.ClassTopo {
			sx.topo.Push(it)
		} else {
			sx.tiles[w.nodes[it.K.Owner].tile].heap.Push(it)
		}
	}
	w.pending = nil
}

// tileIdx maps a position to its owning tile, clamped to the grid.
func (sx *shardExec) tileIdx(p graph.Point) int32 {
	x := int((p.X - sx.minX) * sx.invW)
	if x < 0 {
		x = 0
	} else if x >= sx.g {
		x = sx.g - 1
	}
	y := int((p.Y - sx.minY) * sx.invH)
	if y < 0 {
		y = 0
	} else if y >= sx.g {
		y = sx.g - 1
	}
	return int32(y*sx.g + x)
}

// migrate re-homes n after a relocation: if its position now falls in a
// different tile, its pending events follow it. Coordinator context only
// (relocations happen inside topology events); all outboxes are empty at
// that point, so every pending event owned by n sits in its old tile's
// heap.
func (sx *shardExec) migrate(n *node) {
	dst := sx.tileIdx(n.pos)
	if dst == n.tile {
		return
	}
	old := sx.tiles[n.tile]
	sx.migBuf = old.heap.ExtractOwner(int32(n.id), sx.migBuf[:0])
	to := sx.tiles[dst]
	for _, it := range sx.migBuf {
		to.heap.Push(it)
	}
	clear(sx.migBuf)
	n.tile = dst
}

// totalProcessed sums executed events across the coordinator and tiles.
func (sx *shardExec) totalProcessed() uint64 {
	total := sx.processed
	for _, t := range sx.tiles {
		total += t.processed
	}
	return total
}

// runUntil is the engine's window/barrier loop: World.RunUntil routed
// here when sharded. maxEvents is checked at barriers, so a call may
// overshoot the budget by up to one window before reporting
// sim.ErrEventLimit.
func (sx *shardExec) runUntil(deadline sim.Time, maxEvents uint64) error {
	start := sx.totalProcessed()
	for {
		// W: the globally earliest pending instant.
		wstart, ok := sx.earliest()
		if !ok || wstart.At > deadline {
			break
		}
		// The window runs events strictly below min(W+ν, deadline+1),
		// and never past the earliest topology event, which runs
		// serially at the barrier if it falls inside the window.
		tb := wstart.At + sx.lookahead
		if deadline != sim.Infinity && tb > deadline+1 {
			tb = deadline + 1
		}
		bound := sim.KeyFloor(tb)
		topoKey, haveTopo := sx.topo.MinKey()
		topoDue := haveTopo && topoKey.Less(bound)
		if topoDue {
			bound = topoKey
		}
		sx.runTiles(bound)
		if sx.tel != nil {
			sx.foldWindow(wstart.At, bound.At)
		}
		sx.drainOutboxes()
		sx.dispatchEffects()
		if topoDue {
			it := sx.topo.Pop()
			sx.now = it.K.At
			if it.Fn != nil {
				it.Fn()
			} else {
				it.R.Run()
			}
			sx.processed++
			if sx.hook != nil {
				sx.hook(sx.now)
			}
		}
		if maxEvents > 0 {
			if done := sx.totalProcessed() - start; done >= maxEvents {
				return fmt.Errorf("%w (%d events by t=%v)", sim.ErrEventLimit, done, sx.now)
			}
		}
	}
	if deadline != sim.Infinity && sx.now < deadline {
		sx.now = deadline
	}
	return nil
}

// earliest returns the smallest pending key across all tiles and the
// topology heap.
func (sx *shardExec) earliest() (sim.Key, bool) {
	var best sim.Key
	have := false
	for _, t := range sx.tiles {
		if k, ok := t.heap.MinKey(); ok && (!have || k.Less(best)) {
			best, have = k, true
		}
	}
	if k, ok := sx.topo.MinKey(); ok && (!have || k.Less(best)) {
		best, have = k, true
	}
	return best, have
}

// runTiles executes one parallel window: every tile with work below bound
// runs it, on up to sx.workers goroutines. Small windows (one active
// tile, or a single-worker configuration) run inline — the common case
// for lightly loaded simulations, and what makes Tiles>1 with one worker
// a pure-overhead-free serial mode.
func (sx *shardExec) runTiles(bound sim.Key) {
	active := sx.active[:0]
	for _, t := range sx.tiles {
		if k, ok := t.heap.MinKey(); ok && k.Less(bound) {
			active = append(active, t)
		}
	}
	sx.active = active
	if len(active) == 0 {
		return
	}
	sx.inWindow = true
	if sx.workers <= 1 || len(active) == 1 {
		for _, t := range active {
			t.run(bound, sx.hook)
		}
		if tel := sx.tel; tel != nil {
			// Serial window: every draw hits, nobody stalls.
			tel.stealAttempts += uint64(len(active))
			tel.stealHits += uint64(len(active))
		}
	} else {
		tel := sx.tel
		nw := min(sx.workers, len(active))
		var next atomic.Int64
		var wg sync.WaitGroup
		var panicOnce sync.Once
		var panicVal any
		var panicStack []byte
		for wi := range nw {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicOnce.Do(func() {
							panicVal = r
							panicStack = debug.Stack()
						})
					}
				}()
				var attempts, hits uint64
				for {
					i := next.Add(1) - 1
					attempts++
					if int(i) >= len(active) {
						break
					}
					hits++
					active[i].run(bound, sx.hook)
				}
				if tel != nil {
					tel.workerDone(wi, attempts, hits)
				}
			}()
		}
		wg.Wait()
		if panicVal != nil {
			panic(fmt.Sprintf("manet: shard worker panic: %v\n%s", panicVal, panicStack))
		}
		if tel != nil {
			tel.foldWorkers(nw)
		}
	}
	sx.inWindow = false
	for _, t := range active {
		if t.now > sx.now {
			sx.now = t.now
		}
	}
}

// drainOutboxes routes the window's cross-tile deliveries to their
// receivers' tiles and its topology requests to the coordinator heap.
// Every routed delivery's instant is at or beyond the window bound, so no
// tile has executed past it.
func (sx *shardExec) drainOutboxes() {
	w := sx.w
	tel := sx.tel
	for _, t := range sx.active {
		for i, it := range t.outMsgs {
			dst := w.nodes[it.K.Owner].tile
			if tel != nil {
				tel.crossMsgs++
				tel.traffic[uint64(uint32(t.idx))<<32|uint64(uint32(dst))]++
			}
			sx.tiles[dst].heap.Push(it)
			t.outMsgs[i] = sim.Item{}
		}
		t.outMsgs = t.outMsgs[:0]
		for i, it := range t.outTopo {
			sx.topo.Push(it)
			t.outTopo[i] = sim.Item{}
		}
		t.outTopo = t.outTopo[:0]
	}
}

// dispatchEffects merges the window's buffered effects from all active
// tiles and replays them — bus publications and deferred listener
// callbacks — in canonical (key, sub) order: exactly the stream the
// single-heap engine would have produced inline.
func (sx *shardExec) dispatchEffects() {
	w := sx.w
	merged := sx.merged[:0]
	for _, t := range sx.active {
		merged = append(merged, t.effs...)
		clear(t.effs)
		t.effs = t.effs[:0]
	}
	if len(merged) > 1 {
		slices.SortFunc(merged, func(a, b effect) int {
			if a.key.Less(b.key) {
				return -1
			}
			if b.key.Less(a.key) {
				return 1
			}
			if a.sub < b.sub {
				return -1
			}
			if a.sub > b.sub {
				return 1
			}
			return 0
		})
	}
	for i := range merged {
		e := &merged[i]
		switch e.kind {
		case effBus:
			w.bus.Publish(e.ev)
		case effState:
			for _, l := range w.stateListeners {
				l.OnStateChange(e.id, e.oldS, e.newS, e.at)
			}
		case effMove:
			for _, l := range w.moveListeners {
				l.OnMove(e.id, e.flag, e.at)
			}
		}
	}
	clear(merged)
	sx.merged = merged[:0]
}
