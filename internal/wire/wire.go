// Package wire is the zero-allocation binary codec layer of the live
// lock service: a registry of hand-written encode/decode pairs for the
// algorithm protocol messages, plus the datagram framing the UDP
// transport packs them into (see dgram.go).
//
// The design mirrors the observability fast path of DESIGN.md §10: the
// reflection-based encoder (encoding/gob there, encoding/json here) is
// retained only as a differential-test oracle, while the hot path runs
// explicit append-style encoders that never allocate once the
// destination buffer has capacity. Each algorithm package registers its
// own message types from its wire.go with a stable 16-bit type ID, so
// the transport never names a protocol type and the algorithm cores
// never name a runtime — the same seam the gob registration kept, now
// without gob's per-message type descriptors, buffering and reflection.
//
// Type-ID allocation (stable across versions; never reuse a retired ID):
//
//	0x01xx  internal/lme1
//	0x02xx  internal/lme2
//	0x03xx  internal/baseline
//	0x7Fxx  tests and experiments
package wire

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"sync"

	"lme/internal/core"
)

// Codec is one message type's registration: a stable wire ID and the
// explicit encode/decode pair. Append must write a self-delimiting or
// fixed-layout body (the transport length-prefixes the whole payload, so
// trailing-garbage detection is the decoder's job via Reader.Done).
type Codec struct {
	// ID is the stable 16-bit wire identifier, unique across the
	// program. Zero is reserved.
	ID uint16
	// Name labels the codec in errors and tooling ("lme1.fork").
	Name string
	// Proto is a prototype value of the concrete message type; the
	// registry keys Append dispatch on its dynamic type.
	Proto core.Message
	// Append encodes msg (guaranteed to be of Proto's type) onto buf.
	Append func(buf []byte, msg core.Message) []byte
	// Decode parses one message body (the bytes Append wrote).
	Decode func(b []byte) (core.Message, error)
	// Sample draws a pseudo-random instance for the differential and
	// property tests; optional but every shipped codec provides one.
	Sample func(rng *rand.Rand) core.Message
}

var (
	regMu  sync.RWMutex
	byID   = map[uint16]*Codec{}
	byType = map[reflect.Type]*Codec{}
)

// Register adds a codec to the global registry. It panics on a nil
// encode/decode pair, a zero or duplicate ID, or a duplicate concrete
// type — all programming errors that must fail at init, not on the wire.
func Register(c Codec) {
	if c.ID == 0 {
		panic("wire: Register: ID 0 is reserved")
	}
	if c.Append == nil || c.Decode == nil {
		panic(fmt.Sprintf("wire: Register(%s): nil Append or Decode", c.Name))
	}
	t := reflect.TypeOf(c.Proto)
	if t == nil {
		panic(fmt.Sprintf("wire: Register(%s): nil Proto", c.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := byID[c.ID]; ok {
		panic(fmt.Sprintf("wire: Register(%s): ID %#04x already used by %s", c.Name, c.ID, prev.Name))
	}
	if prev, ok := byType[t]; ok {
		panic(fmt.Sprintf("wire: Register(%s): type %v already registered as %s", c.Name, t, prev.Name))
	}
	cc := c
	byID[c.ID] = &cc
	byType[t] = &cc
}

// UnregisteredError reports an Append of a message type no codec covers.
// The UDP transport turns it into a panic at Send — the failure must be
// loud at the sender, not a mystery drop at the peer.
type UnregisteredError struct {
	Type reflect.Type
}

func (e *UnregisteredError) Error() string {
	return fmt.Sprintf("wire: message type %v not registered (add a wire.Register to the algorithm's wire.go)", e.Type)
}

// AppendMessage encodes msg onto buf as [type ID uint16 BE][body] and
// returns the extended buffer. The buffer is returned unchanged alongside
// an *UnregisteredError when msg's type has no codec.
func AppendMessage(buf []byte, msg core.Message) ([]byte, error) {
	regMu.RLock()
	c := byType[reflect.TypeOf(msg)]
	regMu.RUnlock()
	if c == nil {
		return buf, &UnregisteredError{Type: reflect.TypeOf(msg)}
	}
	buf = binary.BigEndian.AppendUint16(buf, c.ID)
	return c.Append(buf, msg), nil
}

// DecodeMessage parses one AppendMessage-encoded payload.
func DecodeMessage(b []byte) (core.Message, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wire: payload too short for a type ID (%d bytes)", len(b))
	}
	id := binary.BigEndian.Uint16(b)
	regMu.RLock()
	c := byID[id]
	regMu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("wire: unknown type ID %#04x", id)
	}
	return c.Decode(b[2:])
}

// Registered returns a copy of every codec, ID-ordered — the test
// surface the differential suite iterates.
func Registered() []Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Codec, 0, len(byID))
	for _, c := range byID {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Append helpers for the per-type encoders. Integers use varints (zigzag
// for signed) — protocol fields are small, so most encode in one byte.

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendVarint appends v as a zigzag varint.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// Reader is the decode-side cursor: field reads latch the first error
// and Done reports it (or trailing garbage) once at the end, so per-type
// decoders stay straight-line.
type Reader struct {
	b   []byte
	bad bool
}

// NewReader wraps a message body.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Uvarint reads one unsigned varint (0 after an error).
func (r *Reader) Uvarint() uint64 {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.bad = true
		r.b = nil
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads one zigzag varint (0 after an error).
func (r *Reader) Varint() int64 {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.bad = true
		r.b = nil
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	if len(r.b) < 1 {
		r.bad = true
		return false
	}
	v := r.b[0] != 0
	r.b = r.b[1:]
	return v
}

// Done returns nil when every byte was consumed cleanly; a truncated or
// overlong body is a decode error (corruption, or a codec mismatch).
func (r *Reader) Done() error {
	if r.bad {
		return fmt.Errorf("wire: truncated message body")
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after message body", len(r.b))
	}
	return nil
}
