package wire

import (
	"encoding/binary"
	"fmt"
)

// Datagram format v2 — the coalesced framing the UDP transport speaks.
//
// One datagram carries zero or more frames for a single directed link,
// plus (optionally) a piggybacked cumulative ACK for the reverse
// direction. The header is fixed-width so the receive path parses it
// with plain offsets; the ACK slot is always present and is valid only
// when FlagAck is set, which keeps every frame at a stable offset and
// lets the sender backfill the ACK after the frames are packed.
//
//	header (18 bytes):
//	  [0]     version  = 2
//	  [1]     flags    bit0 FlagAck (ack field valid), bit1 FlagGob
//	  [2:6]   from     uint32 BE (sender node)
//	  [6:10]  to       uint32 BE (receiver node)
//	  [10:18] ack      uint64 BE cumulative ack for the to→from link
//	frames (0+), each:
//	  [0:8]   seq      uint64 BE (per-link FIFO sequence)
//	  [8:16]  mseq     uint64 BE (per-message dedup id)
//	  [16:24] sentAt   int64  BE unix nanos (RTT sampling)
//	  [24:28] paylen   uint32 BE
//	  [28:]   payload  (codec bytes, or gob when FlagGob)
//
// A header with no frames is a standalone ACK datagram.
const (
	DgramVersion   = 2
	DgramHeaderLen = 18
	FrameHeaderLen = 28

	FlagAck = 1 << 0
	FlagGob = 1 << 1
)

// AppendDgramHeader appends a v2 header with no ACK and no frames.
func AppendDgramHeader(buf []byte, from, to uint32) []byte {
	buf = append(buf, DgramVersion, 0)
	buf = binary.BigEndian.AppendUint32(buf, from)
	buf = binary.BigEndian.AppendUint32(buf, to)
	return binary.BigEndian.AppendUint64(buf, 0)
}

// SetDgramAck backfills the cumulative ACK into an already-built
// datagram (dgram[0] must be the header start) and sets FlagAck.
func SetDgramAck(dgram []byte, ack uint64) {
	dgram[1] |= FlagAck
	binary.BigEndian.PutUint64(dgram[10:18], ack)
}

// SetDgramGob marks the datagram's payloads as gob-encoded.
func SetDgramGob(dgram []byte) { dgram[1] |= FlagGob }

// AppendFrame appends one frame (header + payload) to a datagram under
// construction.
func AppendFrame(buf []byte, seq, mseq uint64, sentAt int64, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint64(buf, mseq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(sentAt))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// FrameSize returns the on-wire size of a frame with the given payload
// length — what the MTU budget accounts per frame.
func FrameSize(payloadLen int) int { return FrameHeaderLen + payloadLen }

// BackfillFrameLen patches the paylen field of the frame starting at
// frameStart, for senders that AppendFrame with an empty payload and
// encode it in place directly after the header.
func BackfillFrameLen(buf []byte, frameStart, paylen int) {
	binary.BigEndian.PutUint32(buf[frameStart+24:frameStart+28], uint32(paylen))
}

// DgramHeader is the parsed fixed header of one datagram.
type DgramHeader struct {
	Flags byte
	From  uint32
	To    uint32
	// Ack is the piggybacked cumulative ack; valid only when
	// Flags&FlagAck is set.
	Ack uint64
}

// HasAck reports whether the ACK field is valid.
func (h DgramHeader) HasAck() bool { return h.Flags&FlagAck != 0 }

// Gob reports whether the frame payloads are gob-encoded.
func (h DgramHeader) Gob() bool { return h.Flags&FlagGob != 0 }

// ParseDgram splits a received datagram into its header and the frame
// region (possibly empty for a standalone ACK).
func ParseDgram(pkt []byte) (DgramHeader, []byte, error) {
	if len(pkt) < DgramHeaderLen {
		return DgramHeader{}, nil, fmt.Errorf("wire: datagram too short (%d bytes)", len(pkt))
	}
	if pkt[0] != DgramVersion {
		return DgramHeader{}, nil, fmt.Errorf("wire: datagram version %d, want %d", pkt[0], DgramVersion)
	}
	h := DgramHeader{
		Flags: pkt[1],
		From:  binary.BigEndian.Uint32(pkt[2:6]),
		To:    binary.BigEndian.Uint32(pkt[6:10]),
		Ack:   binary.BigEndian.Uint64(pkt[10:18]),
	}
	return h, pkt[DgramHeaderLen:], nil
}

// FrameView is one parsed frame; Payload aliases the datagram buffer.
type FrameView struct {
	Seq     uint64
	Mseq    uint64
	SentAt  int64
	Payload []byte
}

// NextFrame parses the first frame of body and returns it with the
// remaining bytes. Call with the region from ParseDgram and iterate
// until empty.
func NextFrame(body []byte) (FrameView, []byte, error) {
	if len(body) < FrameHeaderLen {
		return FrameView{}, nil, fmt.Errorf("wire: truncated frame header (%d bytes)", len(body))
	}
	paylen := binary.BigEndian.Uint32(body[24:28])
	end := FrameHeaderLen + int(paylen)
	if len(body) < end {
		return FrameView{}, nil, fmt.Errorf("wire: frame payload truncated (%d of %d bytes)", len(body)-FrameHeaderLen, paylen)
	}
	f := FrameView{
		Seq:     binary.BigEndian.Uint64(body[0:8]),
		Mseq:    binary.BigEndian.Uint64(body[8:16]),
		SentAt:  int64(binary.BigEndian.Uint64(body[16:24])),
		Payload: body[FrameHeaderLen:end],
	}
	return f, body[end:], nil
}
