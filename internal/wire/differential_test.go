package wire_test

// Codec differential suite: every registered message type must
// round-trip byte-exactly through its hand-written codec and decode to
// the same value the retained gob oracle produces — the same
// oracle-vs-fast-path discipline DESIGN.md §10 applies to the
// observability encoders. Runs over the full shipped registry (the
// blank imports pull in each algorithm's wire.go registrations).

import (
	"bytes"
	"encoding/gob"
	"math/rand/v2"
	"reflect"
	"testing"

	"lme/internal/core"
	"lme/internal/wire"

	_ "lme/internal/baseline"
	_ "lme/internal/lme1"
	_ "lme/internal/lme2"
)

// oraclePayload mirrors the transport's gob framing: the message rides
// as an interface value so gob restores the registered concrete type.
type oraclePayload struct {
	M core.Message
}

func gobRoundTrip(t *testing.T, msg core.Message) core.Message {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(oraclePayload{M: msg}); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out oraclePayload
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out.M
}

// TestRegistryCoversShippedProtocols pins the registry shape: the three
// algorithm packages must register all their message types in their
// reserved ID ranges, with Sample functions for this suite.
func TestRegistryCoversShippedProtocols(t *testing.T) {
	want := map[uint16]int{0x0100: 8, 0x0200: 4, 0x0300: 4}
	got := map[uint16]int{}
	for _, c := range wire.Registered() {
		got[c.ID&0xFF00]++
		// Test-range codecs (0x7Fxx) may skip Sample; shipped ones must not.
		if c.Sample == nil && c.ID&0xFF00 != 0x7F00 {
			t.Errorf("codec %s (%#04x) has no Sample — the differential suite cannot cover it", c.Name, c.ID)
		}
	}
	for rng, n := range want {
		if got[rng] != n {
			t.Errorf("ID range %#04x has %d codecs, want %d", rng, got[rng], n)
		}
	}
}

// TestCodecGobDifferential drives every registered codec with seeded
// pseudo-random samples: codec decode must reproduce the sample, a
// re-encode must be byte-exact, and the gob oracle must agree with the
// codec decode value-for-value.
func TestCodecGobDifferential(t *testing.T) {
	const samplesPerCodec = 250
	for _, c := range wire.Registered() {
		t.Run(c.Name, func(t *testing.T) {
			if c.Sample == nil {
				t.Skip("no Sample")
			}
			rng := rand.New(rand.NewPCG(0xD1FF, uint64(c.ID)))
			for i := 0; i < samplesPerCodec; i++ {
				msg := c.Sample(rng)
				if reflect.TypeOf(msg) != reflect.TypeOf(c.Proto) {
					t.Fatalf("Sample returned %T, want %T", msg, c.Proto)
				}

				enc, err := wire.AppendMessage(nil, msg)
				if err != nil {
					t.Fatalf("sample %d: encode: %v", i, err)
				}
				dec, err := wire.DecodeMessage(enc)
				if err != nil {
					t.Fatalf("sample %d: decode: %v\nmsg: %+v\nbytes: % x", i, err, msg, enc)
				}
				if !reflect.DeepEqual(dec, msg) {
					t.Fatalf("sample %d: codec round trip drift:\n in  %+v\n out %+v", i, msg, dec)
				}
				re, err := wire.AppendMessage(nil, dec)
				if err != nil {
					t.Fatalf("sample %d: re-encode: %v", i, err)
				}
				if !bytes.Equal(re, enc) {
					t.Fatalf("sample %d: re-encode not byte-exact:\n first  % x\n second % x", i, enc, re)
				}

				oracle := gobRoundTrip(t, msg)
				if !reflect.DeepEqual(oracle, dec) {
					t.Fatalf("sample %d: codec and gob oracle disagree:\n codec %+v\n gob   %+v", i, dec, oracle)
				}
			}
		})
	}
}

// TestCodecRejectsMutations flips each byte of an encoded sample and
// requires decode to either error or yield a value of the registered
// type — never panic. (A flipped type-ID byte may legitimately decode as
// a different registered type; the transport's length-prefix and mseq
// dedup layers own those cases.)
func TestCodecRejectsMutations(t *testing.T) {
	for _, c := range wire.Registered() {
		if c.Sample == nil {
			continue
		}
		rng := rand.New(rand.NewPCG(0xBAD, uint64(c.ID)))
		msg := c.Sample(rng)
		enc, err := wire.AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.Name, err)
		}
		for pos := 0; pos < len(enc); pos++ {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 0xFF
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: decode panicked on mutation at byte %d: %v", c.Name, pos, r)
					}
				}()
				wire.DecodeMessage(mut) //nolint:errcheck // error or clean value both fine
			}()
		}
		// Truncations likewise must fail cleanly.
		for cut := 0; cut < len(enc); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: decode panicked on truncation to %d bytes: %v", c.Name, cut, r)
					}
				}()
				wire.DecodeMessage(enc[:cut]) //nolint:errcheck
			}()
		}
	}
}
