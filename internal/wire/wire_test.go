package wire

import (
	"strings"
	"testing"

	"lme/internal/core"
)

type regA struct{ X int }
type regB struct{ Y bool }

// register the local fixtures once; Register panics on duplicates, so
// the helpers below use fresh types per failure case.
func init() {
	Register(Codec{
		ID: 0x7FF0, Name: "wire_test.a", Proto: regA{},
		Append: func(b []byte, m core.Message) []byte {
			return AppendVarint(b, int64(m.(regA).X))
		},
		Decode: func(b []byte) (core.Message, error) {
			r := NewReader(b)
			v := regA{X: int(r.Varint())}
			return v, r.Done()
		},
	})
}

func mustPanic(t *testing.T, contains string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", contains)
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, contains) {
			t.Fatalf("panic %v, want it to contain %q", r, contains)
		}
	}()
	fn()
}

func TestRegisterRejectsBadCodecs(t *testing.T) {
	nopA := func(b []byte, _ core.Message) []byte { return b }
	decA := func(b []byte) (core.Message, error) { return regB{}, nil }

	mustPanic(t, "ID 0 is reserved", func() {
		Register(Codec{Name: "zero", Proto: regB{}, Append: nopA, Decode: decA})
	})
	mustPanic(t, "nil Append or Decode", func() {
		Register(Codec{ID: 0x7FF1, Name: "nofuncs", Proto: regB{}})
	})
	mustPanic(t, "already used", func() {
		Register(Codec{ID: 0x7FF0, Name: "dup-id", Proto: regB{}, Append: nopA, Decode: decA})
	})
	mustPanic(t, "already registered", func() {
		Register(Codec{ID: 0x7FF2, Name: "dup-type", Proto: regA{}, Append: nopA, Decode: decA})
	})
}

func TestAppendMessageRoundTrip(t *testing.T) {
	buf, err := AppendMessage(nil, regA{X: -42})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < 2 || buf[0] != 0x7F || buf[1] != 0xF0 {
		t.Fatalf("type-ID prefix wrong: % x", buf)
	}
	msg, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.(regA); got.X != -42 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestAppendMessageUnregistered(t *testing.T) {
	type never struct{}
	buf := []byte{1, 2, 3}
	out, err := AppendMessage(buf, never{})
	if err == nil {
		t.Fatal("no error for an unregistered type")
	}
	if _, ok := err.(*UnregisteredError); !ok {
		t.Fatalf("error %T, want *UnregisteredError", err)
	}
	if len(out) != len(buf) {
		t.Fatalf("buffer mutated on error: %d bytes, want %d", len(out), len(buf))
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, err := DecodeMessage([]byte{0x7F}); err == nil {
		t.Error("short payload decoded")
	}
	if _, err := DecodeMessage([]byte{0x00, 0x00}); err == nil {
		t.Error("reserved ID 0 decoded")
	}
	if _, err := DecodeMessage([]byte{0x7F, 0xEE}); err == nil {
		t.Error("unknown ID decoded")
	}
	// Trailing garbage after a valid body must be rejected, not ignored.
	buf, _ := AppendMessage(nil, regA{X: 3})
	if _, err := DecodeMessage(append(buf, 0xFF)); err == nil {
		t.Error("trailing garbage decoded")
	}
	// Truncated body likewise.
	if _, err := DecodeMessage(buf[:2]); err == nil && len(buf) > 2 {
		t.Error("truncated body decoded")
	}
}

func TestReaderLatchesErrors(t *testing.T) {
	r := NewReader(nil)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("Uvarint on empty = %d", v)
	}
	if r.Bool() {
		t.Error("Bool on empty = true")
	}
	if r.Done() == nil {
		t.Error("Done() nil after underflow")
	}
}

func TestDgramRoundTrip(t *testing.T) {
	pkt := AppendDgramHeader(nil, 3, 9)
	pkt = AppendFrame(pkt, 7, 101, 555_000, []byte("hello"))
	pkt = AppendFrame(pkt, 8, 102, 556_000, nil)
	SetDgramAck(pkt, 42)

	hdr, body, err := ParseDgram(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.From != 3 || hdr.To != 9 || !hdr.HasAck() || hdr.Ack != 42 || hdr.Gob() {
		t.Fatalf("header = %+v", hdr)
	}
	f1, rest, err := NextFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Seq != 7 || f1.Mseq != 101 || f1.SentAt != 555_000 || string(f1.Payload) != "hello" {
		t.Fatalf("frame 1 = %+v", f1)
	}
	f2, rest, err := NextFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Seq != 8 || len(f2.Payload) != 0 {
		t.Fatalf("frame 2 = %+v", f2)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}

	// A standalone ACK datagram is just the header.
	ack := AppendDgramHeader(nil, 9, 3)
	SetDgramAck(ack, 7)
	hdr2, body2, err := ParseDgram(ack)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr2.HasAck() || hdr2.Ack != 7 || len(body2) != 0 {
		t.Fatalf("ack datagram = %+v body %d bytes", hdr2, len(body2))
	}
}

func TestDgramRejectsCorruption(t *testing.T) {
	if _, _, err := ParseDgram([]byte{2, 0, 0}); err == nil {
		t.Error("short datagram parsed")
	}
	bad := AppendDgramHeader(nil, 1, 2)
	bad[0] = 1 // v1 datagrams no longer exist
	if _, _, err := ParseDgram(bad); err == nil {
		t.Error("wrong version parsed")
	}
	pkt := AppendDgramHeader(nil, 1, 2)
	pkt = AppendFrame(pkt, 1, 1, 0, []byte("abc"))
	_, body, err := ParseDgram(pkt[:len(pkt)-2]) // truncate the payload
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NextFrame(body); err == nil {
		t.Error("truncated frame parsed")
	}
	if _, _, err := NextFrame(body[:10]); err == nil {
		t.Error("truncated frame header parsed")
	}
}

func TestGobFlag(t *testing.T) {
	pkt := AppendDgramHeader(nil, 1, 2)
	SetDgramGob(pkt)
	hdr, _, err := ParseDgram(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.Gob() || hdr.HasAck() {
		t.Fatalf("flags = %+v", hdr)
	}
}

func TestBackfillFrameLen(t *testing.T) {
	pkt := AppendDgramHeader(nil, 1, 2)
	start := len(pkt)
	pkt = AppendFrame(pkt, 5, 6, 7, nil)
	pkt = append(pkt, "xyz"...)
	BackfillFrameLen(pkt, start, 3)
	_, body, err := ParseDgram(pkt)
	if err != nil {
		t.Fatal(err)
	}
	f, rest, err := NextFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Payload) != "xyz" || len(rest) != 0 {
		t.Fatalf("frame = %+v rest %d", f, len(rest))
	}
}
