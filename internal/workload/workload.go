// Package workload drives the dining-philosophers cycle of §3.2: an
// application external to the algorithm moves each node from thinking to
// hungry, and from eating back to thinking after at most τ time units (the
// paper's bounded eating time). The driver is a state listener: it reacts
// to protocol-reported transitions, so it also handles algorithm-initiated
// demotions (eating → hungry on movement) correctly.
//
// The driver is engine-agnostic and shard-safe: every follow-up it
// schedules is a node-local event in the transitioning node's own
// execution context (Host.ScheduleLocal), every random draw comes from
// that node's private stream (Host.NodeRand), and its per-node records
// live in plain slices indexed by node — no state is shared between
// nodes, so the world may run its nodes on parallel tile workers with the
// driver attached inline (manet's AddLocalStateListener).
package workload

import (
	"math/rand/v2"

	"lme/internal/core"
	"lme/internal/sim"
)

// Host is the runtime surface the driver needs; *manet.World satisfies it.
type Host interface {
	// ScheduleLocal schedules fn after the given delay in id's execution
	// context; fn must touch only id-local state.
	ScheduleLocal(id core.NodeID, after sim.Time, fn func())
	// NodeRand is id's private deterministic random stream.
	NodeRand(id core.NodeID) *rand.Rand
	Protocol(core.NodeID) core.Protocol
	Crashed(core.NodeID) bool
	N() int
}

// Config parameterises the dining cycle.
type Config struct {
	// EatTime is τ: the exact time spent in the critical section.
	EatTime sim.Time

	// ThinkMin and ThinkMax bound the uniform thinking period between
	// critical sections. Equal values give a deterministic period; zero
	// values give an (almost) always-hungry saturation workload.
	ThinkMin, ThinkMax sim.Time

	// InitialStagger spreads the first hunger of each participant
	// uniformly over [0, InitialStagger]; zero makes everyone hungry at
	// t=0 (maximum initial contention).
	InitialStagger sim.Time

	// Participants limits the cycle to these nodes; nil means every
	// node participates.
	Participants []core.NodeID
}

// DefaultConfig returns τ = 5ms with 0–10ms thinking — a contended but not
// fully saturated cycle.
func DefaultConfig() Config {
	return Config{
		EatTime:        5_000,
		ThinkMax:       10_000,
		InitialStagger: 5_000,
	}
}

// Driver runs the cycle. Create with New, register it as a local state
// listener on the world, then call Start.
type Driver struct {
	host Host
	cfg  Config

	// gen invalidates scheduled follow-ups when a node's state changed
	// again before they fired (e.g. an eating node demoted to hungry by
	// the algorithm must not receive the pending ExitCS). gen[id] is only
	// touched from id's own execution context.
	gen []uint64

	participant map[core.NodeID]bool
}

// New creates a driver for the given host.
func New(host Host, cfg Config) *Driver {
	if cfg.EatTime <= 0 {
		cfg.EatTime = 1
	}
	if cfg.ThinkMax < cfg.ThinkMin {
		cfg.ThinkMax = cfg.ThinkMin
	}
	d := &Driver{
		host: host,
		cfg:  cfg,
		gen:  make([]uint64, host.N()),
	}
	if cfg.Participants != nil {
		d.participant = make(map[core.NodeID]bool, len(cfg.Participants))
		for _, id := range cfg.Participants {
			d.participant[id] = true
		}
	}
	return d
}

var _ core.Listener = (*Driver)(nil)

// Participates reports whether id is part of the dining cycle.
func (d *Driver) Participates(id core.NodeID) bool {
	return d.participant == nil || d.participant[id]
}

// Start schedules the initial hunger of every participant, staggered by a
// draw from each participant's own stream.
func (d *Driver) Start() {
	for i := 0; i < d.host.N(); i++ {
		id := core.NodeID(i)
		if !d.Participates(id) {
			continue
		}
		var at sim.Time
		if d.cfg.InitialStagger > 0 {
			at = sim.Time(d.host.NodeRand(id).Int64N(int64(d.cfg.InitialStagger) + 1))
		}
		gen := d.gen[id]
		d.host.ScheduleLocal(id, at, func() { d.makeHungry(id, gen) })
	}
}

// OnStateChange implements core.Listener: it schedules the follow-up
// transition for each protocol-reported one. It runs inline in the
// transitioning node's execution context.
func (d *Driver) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	if !d.Participates(id) {
		return
	}
	d.gen[id]++
	gen := d.gen[id]
	switch new {
	case core.Eating:
		d.host.ScheduleLocal(id, d.cfg.EatTime, func() { d.exitCS(id, gen) })
	case core.Thinking:
		d.host.ScheduleLocal(id, d.thinkTime(id), func() { d.makeHungry(id, gen) })
	case core.Hungry:
		// Either our own makeHungry or an algorithm demotion; the
		// algorithm is now responsible for reaching eating.
	}
}

func (d *Driver) thinkTime(id core.NodeID) sim.Time {
	t := d.cfg.ThinkMin
	if span := int64(d.cfg.ThinkMax - d.cfg.ThinkMin); span > 0 {
		t += sim.Time(d.host.NodeRand(id).Int64N(span + 1))
	}
	return t
}

func (d *Driver) makeHungry(id core.NodeID, gen uint64) {
	if d.gen[id] != gen || d.host.Crashed(id) {
		return
	}
	p := d.host.Protocol(id)
	if p.State() != core.Thinking {
		return
	}
	p.BecomeHungry()
}

func (d *Driver) exitCS(id core.NodeID, gen uint64) {
	if d.gen[id] != gen || d.host.Crashed(id) {
		return
	}
	p := d.host.Protocol(id)
	if p.State() != core.Eating {
		return
	}
	p.ExitCS()
}
