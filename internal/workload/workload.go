// Package workload drives the dining-philosophers cycle of §3.2: an
// application external to the algorithm moves each node from thinking to
// hungry, and from eating back to thinking after at most τ time units (the
// paper's bounded eating time). The driver is a state listener: it reacts
// to protocol-reported transitions, so it also handles algorithm-initiated
// demotions (eating → hungry on movement) correctly.
package workload

import (
	"math/rand/v2"

	"lme/internal/core"
	"lme/internal/sim"
)

// Host is the runtime surface the driver needs; *manet.World satisfies it.
type Host interface {
	Scheduler() *sim.Scheduler
	Protocol(core.NodeID) core.Protocol
	Crashed(core.NodeID) bool
	N() int
}

// Config parameterises the dining cycle.
type Config struct {
	// EatTime is τ: the exact time spent in the critical section.
	EatTime sim.Time

	// ThinkMin and ThinkMax bound the uniform thinking period between
	// critical sections. Equal values give a deterministic period; zero
	// values give an (almost) always-hungry saturation workload.
	ThinkMin, ThinkMax sim.Time

	// InitialStagger spreads the first hunger of each participant
	// uniformly over [0, InitialStagger]; zero makes everyone hungry at
	// t=0 (maximum initial contention).
	InitialStagger sim.Time

	// Participants limits the cycle to these nodes; nil means every
	// node participates.
	Participants []core.NodeID
}

// DefaultConfig returns τ = 5ms with 0–10ms thinking — a contended but not
// fully saturated cycle.
func DefaultConfig() Config {
	return Config{
		EatTime:        5_000,
		ThinkMax:       10_000,
		InitialStagger: 5_000,
	}
}

// Driver runs the cycle. Create with New, register it as a state listener
// on the world, then call Start.
type Driver struct {
	host Host
	cfg  Config
	rng  *rand.Rand

	// gen invalidates scheduled follow-ups when a node's state changed
	// again before they fired (e.g. an eating node demoted to hungry by
	// the algorithm must not receive the pending ExitCS).
	gen map[core.NodeID]uint64

	participant map[core.NodeID]bool
}

// New creates a driver for the given host.
func New(host Host, cfg Config) *Driver {
	if cfg.EatTime <= 0 {
		cfg.EatTime = 1
	}
	if cfg.ThinkMax < cfg.ThinkMin {
		cfg.ThinkMax = cfg.ThinkMin
	}
	d := &Driver{
		host: host,
		cfg:  cfg,
		rng:  rand.New(rand.NewPCG(0xd1ce, uint64(host.N())+1)),
		gen:  make(map[core.NodeID]uint64),
	}
	if cfg.Participants != nil {
		d.participant = make(map[core.NodeID]bool, len(cfg.Participants))
		for _, id := range cfg.Participants {
			d.participant[id] = true
		}
	}
	return d
}

var _ core.Listener = (*Driver)(nil)

// Participates reports whether id is part of the dining cycle.
func (d *Driver) Participates(id core.NodeID) bool {
	return d.participant == nil || d.participant[id]
}

// Start schedules the initial hunger of every participant.
func (d *Driver) Start() {
	sched := d.host.Scheduler()
	for i := 0; i < d.host.N(); i++ {
		id := core.NodeID(i)
		if !d.Participates(id) {
			continue
		}
		var at sim.Time
		if d.cfg.InitialStagger > 0 {
			at = sim.Time(d.rng.Int64N(int64(d.cfg.InitialStagger) + 1))
		}
		gen := d.gen[id]
		sched.At(at, func() { d.makeHungry(id, gen) })
	}
}

// OnStateChange implements core.Listener: it schedules the follow-up
// transition for each protocol-reported one.
func (d *Driver) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	if !d.Participates(id) {
		return
	}
	d.gen[id]++
	gen := d.gen[id]
	sched := d.host.Scheduler()
	switch new {
	case core.Eating:
		sched.After(d.cfg.EatTime, func() { d.exitCS(id, gen) })
	case core.Thinking:
		sched.After(d.thinkTime(), func() { d.makeHungry(id, gen) })
	case core.Hungry:
		// Either our own makeHungry or an algorithm demotion; the
		// algorithm is now responsible for reaching eating.
	}
}

func (d *Driver) thinkTime() sim.Time {
	t := d.cfg.ThinkMin
	if span := int64(d.cfg.ThinkMax - d.cfg.ThinkMin); span > 0 {
		t += sim.Time(d.rng.Int64N(span + 1))
	}
	return t
}

func (d *Driver) makeHungry(id core.NodeID, gen uint64) {
	if d.gen[id] != gen || d.host.Crashed(id) {
		return
	}
	p := d.host.Protocol(id)
	if p.State() != core.Thinking {
		return
	}
	p.BecomeHungry()
}

func (d *Driver) exitCS(id core.NodeID, gen uint64) {
	if d.gen[id] != gen || d.host.Crashed(id) {
		return
	}
	p := d.host.Protocol(id)
	if p.State() != core.Eating {
		return
	}
	p.ExitCS()
}
