package workload

import (
	"math/rand/v2"
	"testing"

	"lme/internal/core"
	"lme/internal/sim"
)

// fakeHost runs greedy protocols that eat the moment they become hungry —
// a zero-contention environment for exercising the driver alone.
type fakeHost struct {
	sched   *sim.Scheduler
	rngs    []*rand.Rand
	protos  []*fakeProto
	crashed map[core.NodeID]bool
}

func newFakeHost(n int) *fakeHost {
	h := &fakeHost{sched: sim.NewScheduler(1), crashed: make(map[core.NodeID]bool)}
	for i := 0; i < n; i++ {
		h.protos = append(h.protos, &fakeProto{})
		s := uint64(i + 1)
		h.rngs = append(h.rngs, rand.New(rand.NewPCG(s, s^0xabcd)))
	}
	return h
}

func (h *fakeHost) ScheduleLocal(id core.NodeID, after sim.Time, fn func()) {
	h.sched.After(after, fn)
}
func (h *fakeHost) NodeRand(id core.NodeID) *rand.Rand    { return h.rngs[id] }
func (h *fakeHost) Protocol(id core.NodeID) core.Protocol { return h.protos[id] }
func (h *fakeHost) Crashed(id core.NodeID) bool           { return h.crashed[id] }
func (h *fakeHost) N() int                                { return len(h.protos) }

// fakeProto eats immediately upon hunger and records transitions through
// the listener chain the test installs.
type fakeProto struct {
	state  core.State
	listen func(old, new core.State)
	eats   int
}

func (p *fakeProto) Init(core.Env)                       {}
func (p *fakeProto) OnMessage(core.NodeID, core.Message) {}
func (p *fakeProto) OnLinkUp(core.NodeID, bool)          {}
func (p *fakeProto) OnLinkDown(core.NodeID)              {}
func (p *fakeProto) State() core.State                   { return p.state }

func (p *fakeProto) set(s core.State) {
	old := p.state
	p.state = s
	if p.listen != nil {
		p.listen(old, s)
	}
}

func (p *fakeProto) BecomeHungry() {
	p.set(core.Hungry)
	p.eats++
	p.set(core.Eating)
}

func (p *fakeProto) ExitCS() { p.set(core.Thinking) }

// wire connects driver to protocols so transitions reach OnStateChange.
func wire(h *fakeHost, d *Driver) {
	for i, p := range h.protos {
		id := core.NodeID(i)
		p.state = core.Thinking
		p.listen = func(old, new core.State) {
			d.OnStateChange(id, old, new, h.sched.Now())
		}
	}
}

func TestDriverCyclesNodes(t *testing.T) {
	h := newFakeHost(3)
	d := New(h, Config{EatTime: 100, ThinkMin: 50, ThinkMax: 50})
	wire(h, d)
	d.Start()
	if err := h.sched.RunUntil(10_000, 0); err != nil {
		t.Fatal(err)
	}
	for i, p := range h.protos {
		// Period = eat(100) + think(50) = 150 per cycle over 10000.
		if p.eats < 50 {
			t.Fatalf("node %d ate only %d times", i, p.eats)
		}
	}
}

func TestDriverRespectsEatTime(t *testing.T) {
	h := newFakeHost(1)
	d := New(h, Config{EatTime: 500, ThinkMin: 1_000, ThinkMax: 1_000})
	eatStart, eatEnd := sim.Time(-1), sim.Time(-1)
	h.protos[0].state = core.Thinking
	h.protos[0].listen = func(old, new core.State) {
		switch new {
		case core.Eating:
			if eatStart < 0 {
				eatStart = h.sched.Now()
			}
		case core.Thinking:
			if eatEnd < 0 && old == core.Eating {
				eatEnd = h.sched.Now()
			}
		}
		d.OnStateChange(0, old, new, h.sched.Now())
	}
	d.Start()
	if err := h.sched.RunUntil(5_000, 0); err != nil {
		t.Fatal(err)
	}
	if eatEnd-eatStart != 500 {
		t.Fatalf("eating lasted %v, want 500", eatEnd-eatStart)
	}
}

func TestDriverSkipsCrashedNodes(t *testing.T) {
	h := newFakeHost(2)
	d := New(h, Config{EatTime: 100, ThinkMin: 100, ThinkMax: 100})
	wire(h, d)
	h.crashed[1] = true
	d.Start()
	if err := h.sched.RunUntil(5_000, 0); err != nil {
		t.Fatal(err)
	}
	if h.protos[0].eats == 0 {
		t.Fatal("healthy node never ate")
	}
	if h.protos[1].eats != 0 {
		t.Fatal("crashed node ate")
	}
}

func TestDriverParticipantSubset(t *testing.T) {
	h := newFakeHost(3)
	d := New(h, Config{EatTime: 100, Participants: []core.NodeID{1}})
	wire(h, d)
	d.Start()
	if err := h.sched.RunUntil(2_000, 0); err != nil {
		t.Fatal(err)
	}
	if h.protos[0].eats != 0 || h.protos[2].eats != 0 {
		t.Fatal("non-participant ate")
	}
	if h.protos[1].eats == 0 {
		t.Fatal("participant never ate")
	}
	if d.Participates(0) || !d.Participates(1) {
		t.Fatal("Participates wrong")
	}
}

// TestDemotionCancelsPendingExit simulates an algorithm demoting an eating
// node back to hungry: the driver's scheduled ExitCS must not fire against
// the new eating session.
func TestDemotionCancelsPendingExit(t *testing.T) {
	h := newFakeHost(1)
	p := h.protos[0]
	d := New(h, Config{EatTime: 1_000, ThinkMin: 100_000, ThinkMax: 100_000, InitialStagger: 0})
	wire(h, d)
	d.Start()
	// Let the node become hungry+eating at t=0, then demote at t=500
	// (before the t=1000 exit) and re-eat at t=700.
	h.sched.At(500, func() { p.set(core.Hungry) })
	h.sched.At(700, func() { p.set(core.Eating) })
	var exitAt sim.Time = -1
	h.sched.At(600, func() {
		p.listen = func(old, new core.State) {
			if new == core.Thinking && exitAt < 0 {
				exitAt = h.sched.Now()
			}
			d.OnStateChange(0, old, new, h.sched.Now())
		}
	})
	if err := h.sched.RunUntil(10_000, 0); err != nil {
		t.Fatal(err)
	}
	if exitAt != 1_700 {
		t.Fatalf("exit at %v, want 1700 (700 + EatTime, not the stale 1000)", exitAt)
	}
}

func TestThinkTimeRange(t *testing.T) {
	h := newFakeHost(1)
	d := New(h, Config{EatTime: 10, ThinkMin: 20, ThinkMax: 40})
	for i := 0; i < 100; i++ {
		tt := d.thinkTime(0)
		if tt < 20 || tt > 40 {
			t.Fatalf("think time %v outside [20,40]", tt)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	h := newFakeHost(1)
	d := New(h, Config{EatTime: 0, ThinkMin: 50, ThinkMax: 10})
	if d.cfg.EatTime != 1 {
		t.Fatalf("EatTime not clamped: %v", d.cfg.EatTime)
	}
	if d.cfg.ThinkMax != 50 {
		t.Fatalf("ThinkMax not raised to ThinkMin: %v", d.cfg.ThinkMax)
	}
}
