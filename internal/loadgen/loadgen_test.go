package loadgen

import (
	"math/rand/v2"
	"testing"
	"time"

	"lme"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
)

func protocols(t *testing.T, alg lme.Algorithm, g *graph.Graph) []core.Protocol {
	t.Helper()
	ps, err := lme.NewProtocols(alg, lme.FromGraph(g))
	if err != nil {
		t.Fatalf("NewProtocols(%s): %v", alg, err)
	}
	return ps
}

// TestLoadSmall sanity-checks the generator end to end on a small ring:
// every node gets served, quantiles are populated, no safety breach.
func TestLoadSmall(t *testing.T) {
	g := graph.Ring(8)
	res, err := Run(Config{
		Graph:     g,
		Protocols: protocols(t, lme.ChoySingh, g),
		Duration:  300 * time.Millisecond,
		Live:      livenet.Config{Seed: 7},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Violations != 0 {
		t.Fatalf("safety violations: %d", res.Violations)
	}
	if res.Acquisitions == 0 {
		t.Fatal("no leases granted")
	}
	if res.NodesServed != 8 {
		t.Errorf("nodes served = %d, want 8", res.NodesServed)
	}
	if res.GrantP99 <= 0 {
		t.Errorf("p99 grant latency = %v, want > 0", res.GrantP99)
	}
	if res.GrantP50 > res.GrantP99 {
		t.Errorf("p50 %v > p99 %v", res.GrantP50, res.GrantP99)
	}
	if res.AcqPerSec <= 0 {
		t.Errorf("acq/sec = %v, want > 0", res.AcqPerSec)
	}
	t.Logf("\n%s", res)
}

// TestLoadScale drives scaleNodes client goroutines (10k without the
// race detector, 1k with it — see scale_*.go) over the channel
// transport on a ring and checks throughput is reported sanely. This is
// the issue's "10k-goroutine load generator" acceptance test.
func TestLoadScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-goroutine run skipped in -short mode")
	}
	g := graph.Ring(scaleNodes)
	res, err := Run(Config{
		Graph:     g,
		Protocols: protocols(t, lme.ChoySingh, g),
		Duration:  500 * time.Millisecond,
		Live:      livenet.Config{Seed: 11},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Clients != scaleNodes {
		t.Fatalf("clients = %d, want %d", res.Clients, scaleNodes)
	}
	if res.Violations != 0 {
		t.Fatalf("safety violations: %d", res.Violations)
	}
	if res.Acquisitions == 0 {
		t.Fatal("no leases granted at scale")
	}
	if res.GrantP99 <= 0 || res.Grant.Count == 0 {
		t.Errorf("grant sketch empty: p99=%v count=%d", res.GrantP99, res.Grant.Count)
	}
	t.Logf("\n%s", res)
}

// TestHeavyTailedThink checks the bounded-Pareto sampler: respects its
// bounds, and is actually heavy-tailed (mean well above the median).
func TestHeavyTailedThink(t *testing.T) {
	cfg := Config{}.withDefaults()
	rng := rand.New(rand.NewPCG(1, 2))
	var sum time.Duration
	var over int
	const n = 20000
	samples := make([]time.Duration, n)
	for i := range samples {
		d := paretoThink(rng, cfg)
		if d < cfg.ThinkMin || d > cfg.ThinkMax {
			t.Fatalf("sample %v outside [%v, %v]", d, cfg.ThinkMin, cfg.ThinkMax)
		}
		samples[i] = d
		sum += d
		if d > 10*cfg.ThinkMin {
			over++
		}
	}
	mean := sum / n
	// With α=1.5 the median is x_m·2^(1/α) ≈ 1.6·x_m but the mean is
	// dominated by the tail; a light-tailed sampler would fail this.
	if mean < 2*cfg.ThinkMin {
		t.Errorf("mean think %v suspiciously light-tailed (scale %v)", mean, cfg.ThinkMin)
	}
	if over == 0 {
		t.Error("no sample ever exceeded 10x the scale; tail missing")
	}
}

// TestAgreementLine8 is the live-vs-sim differential from the issue:
// same algorithm, same static line(8) topology, simulator and live
// lock service must agree on the schedule-independent facts.
func TestAgreementLine8(t *testing.T) {
	for _, alg := range []lme.Algorithm{lme.ChoySingh, lme.Alg2} {
		rep, err := Agree(alg, 3)
		if err != nil {
			t.Fatalf("Agree(%s): %v", alg, err)
		}
		t.Logf("\n%s", rep)
		if !rep.OK() {
			t.Errorf("%s: %v", alg, rep.Problems)
		}
	}
}
