package loadgen

import (
	"fmt"
	"strings"
	"time"

	"lme"
	"lme/internal/graph"
	"lme/internal/livenet"
)

// AgreementReport compares a discrete-event simulation with a live
// lock-service run of the same algorithm on the same static topology.
// Live runs are scheduled by the Go runtime and real clocks, so the two
// cannot be compared trace-for-trace; agreement means the behaviours
// the paper's model pins down regardless of scheduling:
//
//   - safety holds in both (zero checker violations),
//   - no node starves in either (everyone eats at least once), and
//   - protocol traffic per meal stays within a loose common band —
//     a live run that needs 50× the messages per CS entry is running a
//     different protocol, whatever the safety checker says.
type AgreementReport struct {
	Algorithm string

	SimMeals       int
	SimViolations  int
	SimMsgsPerMeal float64

	LiveMeals       int
	LiveViolations  int
	LiveMsgsPerMeal float64

	Problems []string
}

// OK reports whether the live runtime agreed with the simulator.
func (r AgreementReport) OK() bool { return len(r.Problems) == 0 }

func (r AgreementReport) String() string {
	verdict := "agreement ok"
	if !r.OK() {
		verdict = "DISAGREEMENT: " + strings.Join(r.Problems, "; ")
	}
	return fmt.Sprintf(
		"%s on line(8): sim meals=%d violations=%d msgs/meal=%.1f | live meals=%d violations=%d msgs/meal=%.1f\n%s",
		r.Algorithm, r.SimMeals, r.SimViolations, r.SimMsgsPerMeal,
		r.LiveMeals, r.LiveViolations, r.LiveMsgsPerMeal, verdict)
}

// Agree runs the live-vs-sim differential for one algorithm on the
// static line(8) topology and returns the comparison. The seed feeds
// both runtimes; the live half still depends on real scheduling, so
// only schedule-independent claims are checked.
func Agree(alg lme.Algorithm, seed uint64) (AgreementReport, error) {
	rep := AgreementReport{Algorithm: string(alg)}

	// Simulated half: 8 nodes in a line, default paper parameters,
	// 2s of virtual time — long enough for every node to eat many times.
	s, err := lme.NewSimulation(lme.Config{
		Algorithm: alg,
		Topology:  lme.Line(8),
		Seed:      seed,
	})
	if err != nil {
		return rep, fmt.Errorf("loadgen: build simulation: %w", err)
	}
	if err := s.RunFor(2 * time.Second); err != nil {
		return rep, fmt.Errorf("loadgen: run simulation: %w", err)
	}
	simRes := s.Results()
	rep.SimMeals = simRes.TotalMeals
	rep.SimViolations = simRes.SafetyViolations
	if simRes.TotalMeals > 0 {
		rep.SimMsgsPerMeal = float64(simRes.MessagesSent) / float64(simRes.TotalMeals)
	}
	simAte := make([]bool, 8)
	for i := range simAte {
		simAte[i] = s.EatCount(i) > 0
	}

	// Live half: the same algorithm instances on the same line graph,
	// driven through the lease API by per-node clients for 600ms of
	// wall clock (the live defaults eat/think in microseconds, so this
	// is thousands of cycles).
	g := graph.Line(8)
	protos, err := lme.NewProtocols(alg, lme.FromGraph(g))
	if err != nil {
		return rep, fmt.Errorf("loadgen: build protocols: %w", err)
	}
	res, err := Run(Config{
		Graph:     g,
		Protocols: protos,
		Duration:  600 * time.Millisecond,
		Live:      livenet.Config{Seed: seed},
		Seed:      seed,
	})
	if err != nil {
		return rep, fmt.Errorf("loadgen: live run: %w", err)
	}
	rep.LiveMeals = int(res.Acquisitions)
	rep.LiveViolations = res.Violations
	rep.LiveMsgsPerMeal = res.PerAcquisition

	// Schedule-independent agreement claims.
	if rep.SimViolations != 0 {
		rep.Problems = append(rep.Problems, fmt.Sprintf("simulator reported %d safety violations", rep.SimViolations))
	}
	if rep.LiveViolations != 0 {
		rep.Problems = append(rep.Problems, fmt.Sprintf("live runtime reported %d safety violations", rep.LiveViolations))
	}
	for i, ate := range simAte {
		if !ate {
			rep.Problems = append(rep.Problems, fmt.Sprintf("node %d starved in simulation", i))
		}
	}
	if res.NodesServed != 8 {
		rep.Problems = append(rep.Problems, fmt.Sprintf("only %d/8 nodes were served live", res.NodesServed))
	}
	if rep.SimMeals == 0 {
		rep.Problems = append(rep.Problems, "simulation made no progress")
	}
	if rep.LiveMeals == 0 {
		rep.Problems = append(rep.Problems, "live runtime made no progress")
	}
	// Traffic band: live per-meal cost must stay within 10× of the
	// simulated cost in either direction (both count the same protocol
	// messages; the slack absorbs scheduling-dependent retries).
	if rep.SimMsgsPerMeal > 0 && rep.LiveMsgsPerMeal > 0 {
		ratio := rep.LiveMsgsPerMeal / rep.SimMsgsPerMeal
		if ratio > 10 || ratio < 0.1 {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("msgs/meal diverge: sim %.1f vs live %.1f", rep.SimMsgsPerMeal, rep.LiveMsgsPerMeal))
		}
	}
	return rep, nil
}
