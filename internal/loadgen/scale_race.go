//go:build race

package loadgen

// Under the race detector the scheduler slows ~10× and goroutine counts
// are capped, so the scale test runs at 1k nodes; the full 10k run is
// exercised by the non-race build (and by cmd/lmeload).
const scaleNodes = 1000
