// Package loadgen drives a live lock-service cluster with one client
// goroutine per node — 10k+ of them on the channel transport — using
// heavy-tailed think times (bounded Pareto), and reports acquisitions
// per second and sketch-backed grant-latency quantiles. It is the
// "heavy traffic from many users" face of the live runtime: everything
// it measures flows through the public Acquire/Release lease API.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
)

// Config parameterises one load run.
type Config struct {
	// Graph is the static communication graph (required).
	Graph *graph.Graph
	// Protocols holds one algorithm instance per node (required).
	Protocols []core.Protocol
	// Transport overrides the cluster transport (nil = channel).
	Transport livenet.Transport

	// Duration is how long the clients drive the cluster (default 1s).
	Duration time.Duration

	// Hold is how long each client keeps its lease (the τ of the load;
	// default livenet.DefaultEatTime).
	Hold time.Duration

	// ThinkMin is the scale x_m of the bounded-Pareto think time
	// (default 200µs); ThinkAlpha its tail index α (default 1.5, an
	// infinite-variance tail); ThinkMax the cap (default 50ms). Think
	// times follow x_m·U^(−1/α) truncated at the cap — most clients
	// return almost immediately, a heavy tail lingers.
	ThinkMin   time.Duration
	ThinkAlpha float64
	ThinkMax   time.Duration

	// Live tunes the cluster (ν, lease TTL, seed, spans). EatTime and
	// think bounds of the embedded config are ignored — the load
	// generator's own clients drive the cycle.
	Live livenet.Config

	// Seed drives the client randomness (default: Live seed).
	Seed uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Hold <= 0 {
		cfg.Hold = livenet.DefaultEatTime
	}
	if cfg.ThinkMin <= 0 {
		cfg.ThinkMin = 200 * time.Microsecond
	}
	if cfg.ThinkAlpha <= 0 {
		cfg.ThinkAlpha = 1.5
	}
	if cfg.ThinkMax <= 0 {
		cfg.ThinkMax = 50 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = cfg.Live.Seed
	}
	if cfg.Seed == 0 {
		cfg.Seed = livenet.DefaultSeed
	}
	return cfg
}

// Result summarises a load run.
type Result struct {
	Nodes     int           `json:"nodes"`
	Clients   int           `json:"clients"`
	Duration  time.Duration `json:"-"`
	WallMS    float64       `json:"wall_ms"`
	Transport string        `json:"transport"`

	// Acquisitions counts granted leases; AcqPerSec normalises by the
	// measured wall clock.
	Acquisitions uint64  `json:"acquisitions"`
	AcqPerSec    float64 `json:"acq_per_sec"`

	// Grant quantiles come from the cluster's mergeable latency sketch
	// (±1% relative error); the snapshot itself rides along for pooling.
	GrantP50  time.Duration          `json:"-"`
	GrantP95  time.Duration          `json:"-"`
	GrantP99  time.Duration          `json:"-"`
	GrantMax  time.Duration          `json:"-"`
	GrantMean time.Duration          `json:"-"`
	Grant     metrics.SketchSnapshot `json:"grant_sketch"`

	GrantP50US  int64 `json:"grant_p50_us"`
	GrantP95US  int64 `json:"grant_p95_us"`
	GrantP99US  int64 `json:"grant_p99_us"`
	GrantMaxUS  int64 `json:"grant_max_us"`
	GrantMeanUS int64 `json:"grant_mean_us"`

	// ExpiredLeases counts TTL force-releases (0 unless clients die or
	// hold past the TTL); Violations counts mutual exclusion breaches
	// (any nonzero value is an algorithm bug).
	ExpiredLeases uint64 `json:"expired_leases"`
	Violations    int    `json:"violations"`

	// MessagesSent / PerAcquisition give the protocol traffic cost of
	// the load.
	MessagesSent   uint64  `json:"messages_sent"`
	PerAcquisition float64 `json:"msgs_per_acquisition"`

	// NodesServed counts nodes granted at least one lease.
	NodesServed int `json:"nodes_served"`

	// BytesPerAcq and DatagramsPerAcq give the wire cost of the load —
	// total datagram bytes and datagrams per granted lease. Zero when the
	// transport has no datagram telemetry (channel transport).
	BytesPerAcq     float64 `json:"bytes_per_acq"`
	DatagramsPerAcq float64 `json:"datagrams_per_acq"`

	// TransportStats carries the transport's lme/telemetry/v1 wire
	// counters (retransmits, duplicate drops, reorder overflow, datagram
	// coalescing, ACK RTT sketch); nil when the transport does not expose
	// them.
	TransportStats *telemetry.TransportStats `json:"transport_stats,omitempty"`
}

// String renders the result as the human-readable lmeload report.
func (r Result) String() string {
	s := fmt.Sprintf(
		"nodes=%d clients=%d transport=%s wall=%.0fms\n"+
			"acquisitions=%d (%.0f/s, %d nodes served)\n"+
			"grant latency p50=%v p95=%v p99=%v max=%v (mean %v)\n"+
			"messages=%d (%.1f per acquisition) expired_leases=%d violations=%d",
		r.Nodes, r.Clients, r.Transport, r.WallMS,
		r.Acquisitions, r.AcqPerSec, r.NodesServed,
		r.GrantP50, r.GrantP95, r.GrantP99, r.GrantMax, r.GrantMean,
		r.MessagesSent, r.PerAcquisition, r.ExpiredLeases, r.Violations)
	if ts := r.TransportStats; ts != nil {
		s += fmt.Sprintf(
			"\nwire links=%d frames=%d/%d retransmits=%d dup_drops=%d reorder_hw=%d reorder_overflow=%d",
			ts.Links, ts.FramesSent, ts.FramesDelivered,
			ts.Retransmits, ts.DupDrops, ts.ReorderDepthHW, ts.ReorderOverflow)
		if ts.AckRTTUS.Count > 0 {
			rtt := metrics.FromSnapshot(ts.AckRTTUS)
			s += fmt.Sprintf(" ack_rtt p50=%dµs p99=%dµs",
				int64(rtt.Quantile(0.50)), int64(rtt.Quantile(0.99)))
		}
		if ts.DatagramsSent > 0 {
			s += fmt.Sprintf(
				"\nwire dgrams=%d (acks %d standalone, %d piggybacked) frames/dgram=%.1f bytes=%d"+
					" bytes/acq=%.0f dgrams/acq=%.1f",
				ts.DatagramsSent, ts.AckDatagrams, ts.AcksPiggybacked,
				ts.FramesPerDatagram, ts.WireBytes, r.BytesPerAcq, r.DatagramsPerAcq)
		}
	}
	return s
}

// Run builds the cluster, drives one client goroutine per node for the
// configured duration, shuts everything down and reports. The returned
// error is the safety checker's verdict (or a build failure).
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	cfg.Live.Transport = cfg.Transport
	cluster, err := livenet.New(cfg.Live, cfg.Graph, cfg.Protocols)
	if err != nil {
		return Result{}, err
	}
	if err := cluster.Start(); err != nil {
		return Result{}, err
	}
	begin := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	n := cfg.Graph.N()
	var clients sync.WaitGroup
	for i := 0; i < n; i++ {
		clients.Add(1)
		go func(id core.NodeID) {
			defer clients.Done()
			client(ctx, cluster, id, cfg)
		}(core.NodeID(i))
	}
	clients.Wait()
	wall := time.Since(begin)
	stopErr := cluster.Stop()

	snap := cluster.GrantStats()
	sk := metrics.FromSnapshot(snap)
	served := 0
	for _, meals := range cluster.Meals() {
		if meals > 0 {
			served++
		}
	}
	transport := "channel"
	if cfg.Transport != nil {
		if _, ok := cfg.Transport.(*livenet.UDPTransport); ok {
			transport = "udp"
		} else {
			transport = fmt.Sprintf("%T", cfg.Transport)
		}
	}
	res := Result{
		Nodes:          n,
		Clients:        n,
		Duration:       cfg.Duration,
		WallMS:         float64(wall.Microseconds()) / 1000,
		Transport:      transport,
		Acquisitions:   cluster.Acquisitions(),
		ExpiredLeases:  cluster.ExpiredLeases(),
		Violations:     len(cluster.Violations()),
		MessagesSent:   cluster.MessagesSent(),
		NodesServed:    served,
		Grant:          snap,
		GrantP50:       sim.ToDuration(sk.Quantile(0.50)),
		GrantP95:       sim.ToDuration(sk.Quantile(0.95)),
		GrantP99:       sim.ToDuration(sk.Quantile(0.99)),
		GrantMax:       sim.ToDuration(sim.Time(sk.Max() + 0.5)),
		GrantMean:      sim.ToDuration(sim.Time(sk.Mean() + 0.5)),
		TransportStats: cluster.TransportStats(),
	}
	res.GrantP50US = int64(res.GrantP50 / time.Microsecond)
	res.GrantP95US = int64(res.GrantP95 / time.Microsecond)
	res.GrantP99US = int64(res.GrantP99 / time.Microsecond)
	res.GrantMaxUS = int64(res.GrantMax / time.Microsecond)
	res.GrantMeanUS = int64(res.GrantMean / time.Microsecond)
	if wall > 0 {
		res.AcqPerSec = float64(res.Acquisitions) / wall.Seconds()
	}
	if res.Acquisitions > 0 {
		res.PerAcquisition = float64(res.MessagesSent) / float64(res.Acquisitions)
		if ts := res.TransportStats; ts != nil {
			res.BytesPerAcq = float64(ts.WireBytes) / float64(res.Acquisitions)
			res.DatagramsPerAcq = float64(ts.DatagramsSent) / float64(res.Acquisitions)
		}
	}
	return res, stopErr
}

// client is one load-generating user: think (heavy-tailed) → acquire →
// hold → release, until the run ends.
func client(ctx context.Context, cluster *livenet.Cluster, id core.NodeID, cfg Config) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(id)+0x9e3779b9))
	handle := cluster.Node(id)
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(paretoThink(rng, cfg)):
		}
		lease, err := handle.Acquire(ctx)
		if err != nil {
			return
		}
		time.Sleep(cfg.Hold)
		lease.Release() //nolint:errcheck // a TTL expiry during the hold is fine
	}
}

// paretoThink draws a bounded-Pareto think time: scale·U^(−1/α), capped.
func paretoThink(rng *rand.Rand, cfg Config) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	d := time.Duration(float64(cfg.ThinkMin) * math.Pow(u, -1/cfg.ThinkAlpha))
	if d > cfg.ThinkMax || d < 0 {
		d = cfg.ThinkMax
	}
	return d
}
