//go:build !race

package loadgen

// scaleNodes sizes the big load test: 10k client goroutines (plus the
// runtime's node loops and link forwarders) in a normal test run. The
// race detector caps at 8192 goroutines, so the race build shrinks this
// in scale_race.go.
const scaleNodes = 10000
