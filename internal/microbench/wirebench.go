// Wire-path microbenchmarks: the hand-written codecs against the
// retained gob oracle, datagram build/parse, and a live UDP
// acquire/release round trip in both payload encodings. These are the
// numbers behind the codec_vs_gob gate in `lmebench -check` — the fast
// path must stay well under the oracle's cost or the fast path has
// rotted.
package microbench

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand/v2"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/lme2"
	"lme/internal/wire"

	_ "lme/internal/baseline" // register wire codecs
	_ "lme/internal/lme1"     // register wire codecs
)

// wireSamples draws one pseudo-random message per registered codec —
// the working set every encode/decode benchmark loops over, covering
// all three shipped protocols.
func wireSamples(b *testing.B) []core.Message {
	b.Helper()
	rng := rand.New(rand.NewPCG(0xBE7C, 0x7A11))
	var msgs []core.Message
	for _, c := range wire.Registered() {
		if c.Sample == nil {
			continue // test-only fixtures
		}
		msgs = append(msgs, c.Sample(rng))
	}
	if len(msgs) == 0 {
		b.Fatal("no registered codecs with samples")
	}
	return msgs
}

// gobPayload mirrors the transport's gob framing (the message rides as
// an interface value), so the oracle benchmarks measure the real legacy
// hot path: one fresh encoder/decoder per message, as the v1 transport
// ran it.
type gobPayload struct {
	M core.Message
}

// WireEncode measures the zero-allocation codec encode path over one
// sample of every registered message type. One op = one message
// appended to a reused buffer.
func WireEncode(b *testing.B) {
	msgs := wireSamples(b)
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.AppendMessage(buf[:0], msgs[i%len(msgs)])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// WireDecode measures the codec decode path over pre-encoded samples.
// One op = one message decoded.
func WireDecode(b *testing.B) {
	msgs := wireSamples(b)
	encs := make([][]byte, len(msgs))
	for i, m := range msgs {
		enc, err := wire.AppendMessage(nil, m)
		if err != nil {
			b.Fatal(err)
		}
		encs[i] = enc
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeMessage(encs[i%len(encs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// WireEncodeGob measures the gob oracle encode path — a fresh encoder
// per message, exactly as the v1 transport's per-frame hot path ran.
func WireEncodeGob(b *testing.B) {
	msgs := wireSamples(b)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(gobPayload{M: msgs[i%len(msgs)]}); err != nil {
			b.Fatal(err)
		}
	}
}

// WireDecodeGob measures the gob oracle decode path over pre-encoded
// samples, one fresh decoder per message.
func WireDecodeGob(b *testing.B) {
	msgs := wireSamples(b)
	encs := make([][]byte, len(msgs))
	for i, m := range msgs {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobPayload{M: m}); err != nil {
			b.Fatal(err)
		}
		encs[i] = buf.Bytes()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out gobPayload
		if err := gob.NewDecoder(bytes.NewReader(encs[i%len(encs)])).Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// DatagramCoalesce measures the framing layer alone: build one
// MTU-shaped datagram of coalesced frames (header + 16 frames + ack
// piggyback) into a reused buffer, then parse it back frame by frame.
// One op = one datagram built and fully parsed. No sockets.
func DatagramCoalesce(b *testing.B) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	const frames = 16
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendDgramHeader(buf[:0], 3, 9)
		for f := 0; f < frames; f++ {
			buf = wire.AppendFrame(buf, uint64(f+1), uint64(f+1), int64(i), payload)
		}
		wire.SetDgramAck(buf, uint64(i))
		hdr, body, err := wire.ParseDgram(buf)
		if err != nil || !hdr.HasAck() {
			b.Fatalf("parse: %v (ack %v)", err, hdr.HasAck())
		}
		n := 0
		for len(body) > 0 {
			var fv wire.FrameView
			fv, body, err = wire.NextFrame(body)
			if err != nil {
				b.Fatal(err)
			}
			if len(fv.Payload) != len(payload) {
				b.Fatal("payload length drift")
			}
			n++
		}
		if n != frames {
			b.Fatalf("parsed %d frames, want %d", n, frames)
		}
	}
}

// udpAcquireRelease is the shared body of the live round-trip pair: a
// 4-node line running alg2 over loopback UDP, with the benchmark
// alternating Acquire/Release between the two interior nodes so every
// acquisition forces fork traffic across the wire. One op = one
// granted-and-released lease.
func udpAcquireRelease(b *testing.B, opts livenet.UDPOptions) {
	g := graph.Line(4)
	protos := make([]core.Protocol, g.N())
	for i := range protos {
		protos[i] = lme2.New()
	}
	tr, err := livenet.NewUDPTransportOpts(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := livenet.New(livenet.Config{Transport: tr}, g, protos)
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop() //nolint:errcheck
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := cluster.Node(core.NodeID(1 + i%2)).Acquire(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := lease.Release(); err != nil {
			b.Fatal(err)
		}
	}
}

// UDPAcquireRelease measures the end-to-end lock service over UDP with
// the codec wire path (coalescing, piggybacked ACKs).
func UDPAcquireRelease(b *testing.B) {
	udpAcquireRelease(b, livenet.UDPOptions{})
}

// UDPAcquireReleaseGob is the same round trip over the gob oracle
// encoding — the v1 wire path, kept as the comparison baseline.
func UDPAcquireReleaseGob(b *testing.B) {
	udpAcquireRelease(b, livenet.UDPOptions{Gob: true})
}
