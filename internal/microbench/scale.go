package microbench

import (
	"runtime"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/sim"
)

// pingMsg is the payload of the storm protocol; empty so the benchmarks
// time the engine, not encoding.
type pingMsg struct{}

// pingProto keeps one message ping-ponging on every edge forever: Init
// sends to each higher-id neighbour (one token per edge, not two), and
// every delivery is answered. The resulting event rate is O(edges/ν) —
// a uniform, unbounded storm that saturates the per-tile heaps without
// any protocol logic in the profile.
type pingProto struct {
	env core.Env
}

func (p *pingProto) Init(env core.Env) {
	p.env = env
	me := env.ID()
	for _, nb := range env.Neighbors() {
		if nb > me {
			env.Send(nb, pingMsg{})
		}
	}
}
func (p *pingProto) OnMessage(from core.NodeID, msg core.Message) { p.env.Send(from, pingMsg{}) }
func (p *pingProto) OnLinkUp(core.NodeID, bool)                   {}
func (p *pingProto) OnLinkDown(core.NodeID)                       {}
func (p *pingProto) BecomeHungry()                                {}
func (p *pingProto) ExitCS()                                      {}
func (p *pingProto) State() core.State                            { return core.Thinking }

// scaleWorld builds the large-n benchmark world: an n-node square lattice
// with radius 1.45× the spacing (δ=8 interior degree), the storm protocol
// on every node, and the requested engine configuration. tiles ≤ 1 is the
// single-heap engine.
func scaleWorld(b *testing.B, n, tiles, workers int) *manet.World {
	b.Helper()
	cfg := manet.DefaultConfig()
	cfg.Seed = 1
	side := 1
	for side*side < n {
		side++
	}
	spacing := 1.0 / float64(side)
	cfg.Radius = 1.45 * spacing
	cfg.Tiles = tiles
	cfg.ShardWorkers = workers
	w := manet.NewWorld(cfg)
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{
			X: (float64(i%side) + 0.5) * spacing,
			Y: (float64(i/side) + 0.5) * spacing,
		})
		w.SetProtocol(id, &pingProto{})
	}
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	return w
}

// runScaleChunks is the shared measurement loop: one op = one 5ms slab of
// virtual time. Alongside the stock ns/op it reports the two headline
// scale metrics — engine throughput (events/s of wall time) and resident
// heap per node after the run (process-wide HeapAlloc/n, an upper bound
// that includes the benchmark harness itself).
func runScaleChunks(b *testing.B, w *manet.World, n int) {
	b.Helper()
	start := w.Processed()
	const chunk = sim.Time(5_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunUntil(w.Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	events := w.Processed() - start
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/float64(n), "heapB/node")
}

// ScaleSweep1k is the single-heap reference at n=1000: the baseline the
// sharded engine's throughput is judged against.
func ScaleSweep1k(b *testing.B) { runScaleChunks(b, scaleWorld(b, 1_000, 1, 0), 1_000) }

// ScaleSweep1kSharded is the same world on the sharded engine (AutoTiles
// grid, GOMAXPROCS workers). On a single-core host this measures the
// sharding overhead; the speedup headroom only shows on multi-core.
func ScaleSweep1kSharded(b *testing.B) {
	runScaleChunks(b, scaleWorld(b, 1_000, manet.AutoTiles(1_000), 0), 1_000)
}

// ScaleSweep10k pushes the single-heap engine to n=10000.
func ScaleSweep10k(b *testing.B) { runScaleChunks(b, scaleWorld(b, 10_000, 1, 0), 10_000) }

// ScaleSweep10kSharded is n=10000 on the sharded engine — the
// configuration the ≥4× multi-core acceptance target is measured on.
func ScaleSweep10kSharded(b *testing.B) {
	runScaleChunks(b, scaleWorld(b, 10_000, manet.AutoTiles(10_000), 0), 10_000)
}

// ShardedChurn layers mobility on the sharded storm: n=1000 with 64
// random-waypoint movers crossing tile boundaries, so the profile
// includes link churn, tile migration and the serialized topology path —
// the worst case for the window loop, not just its steady state.
func ShardedChurn(b *testing.B) {
	const n = 1_000
	cfg := manet.DefaultConfig()
	cfg.Seed = 3
	side := 32 // 32² ≥ 1000
	spacing := 1.0 / float64(side)
	cfg.Radius = 1.45 * spacing
	cfg.Tiles = manet.AutoTiles(n)
	w := manet.NewWorld(cfg)
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{
			X: (float64(i%side) + 0.5) * spacing,
			Y: (float64(i/side) + 0.5) * spacing,
		})
		w.SetProtocol(id, &pingProto{})
	}
	movers := make([]core.NodeID, 0, 64)
	for i := 0; i < 64; i++ {
		movers = append(movers, core.NodeID(i*15))
	}
	manet.Waypoint{Speed: 0.4, PauseMin: 1_000, PauseMax: 10_000}.Attach(w, movers)
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	runScaleChunks(b, w, n)
}
