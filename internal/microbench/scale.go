package microbench

import (
	"runtime"
	"testing"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/sim"
)

// pingMsg is the payload of the storm protocol; empty so the benchmarks
// time the engine, not encoding.
type pingMsg struct{}

// pingProto keeps one message ping-ponging on every edge forever: Init
// sends to each higher-id neighbour (one token per edge, not two), and
// every delivery is answered. The resulting event rate is O(edges/ν) —
// a uniform, unbounded storm that saturates the per-tile heaps without
// any protocol logic in the profile.
type pingProto struct {
	env core.Env
}

func (p *pingProto) Init(env core.Env) {
	p.env = env
	me := env.ID()
	for _, nb := range env.Neighbors() {
		if nb > me {
			env.Send(nb, pingMsg{})
		}
	}
}
func (p *pingProto) OnMessage(from core.NodeID, msg core.Message) { p.env.Send(from, pingMsg{}) }
func (p *pingProto) OnLinkUp(core.NodeID, bool)                   {}
func (p *pingProto) OnLinkDown(core.NodeID)                       {}
func (p *pingProto) BecomeHungry()                                {}
func (p *pingProto) ExitCS()                                      {}
func (p *pingProto) State() core.State                            { return core.Thinking }

// scaleWorld builds the large-n benchmark world: an n-node square lattice
// with radius 1.45× the spacing (δ=8 interior degree), the storm protocol
// on every node, and the requested engine configuration. tiles ≤ 1 is the
// single-heap engine.
func scaleWorld(b *testing.B, n, tiles, workers int) *manet.World {
	return scaleWorldTel(b, n, tiles, workers, false)
}

// scaleWorldTel is scaleWorld with the telemetry switch exposed, for the
// ShardBarrier/TelemetryFold overhead pair.
func scaleWorldTel(b *testing.B, n, tiles, workers int, tel bool) *manet.World {
	b.Helper()
	cfg := manet.DefaultConfig()
	cfg.Seed = 1
	side := 1
	for side*side < n {
		side++
	}
	spacing := 1.0 / float64(side)
	cfg.Radius = 1.45 * spacing
	cfg.Tiles = tiles
	cfg.ShardWorkers = workers
	cfg.Telemetry = tel
	w := manet.NewWorld(cfg)
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{
			X: (float64(i%side) + 0.5) * spacing,
			Y: (float64(i/side) + 0.5) * spacing,
		})
		w.SetProtocol(id, &pingProto{})
	}
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	return w
}

// runScaleChunks is the shared measurement loop: one op = one 5ms slab of
// virtual time. Alongside the stock ns/op it reports the two headline
// scale metrics — engine throughput (events/s of wall time) and resident
// heap per node after the run (process-wide HeapAlloc/n, an upper bound
// that includes the benchmark harness itself).
func runScaleChunks(b *testing.B, w *manet.World, n int) {
	b.Helper()
	start := w.Processed()
	const chunk = sim.Time(5_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.RunUntil(w.Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	events := w.Processed() - start
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/s")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/float64(n), "heapB/node")
}

// ScaleSweep1k is the single-heap reference at n=1000: the baseline the
// sharded engine's throughput is judged against.
func ScaleSweep1k(b *testing.B) { runScaleChunks(b, scaleWorld(b, 1_000, 1, 0), 1_000) }

// ScaleSweep1kSharded is the same world on the sharded engine (AutoTiles
// grid, GOMAXPROCS workers). On a single-core host this measures the
// sharding overhead; the speedup headroom only shows on multi-core.
func ScaleSweep1kSharded(b *testing.B) {
	runScaleChunks(b, scaleWorld(b, 1_000, manet.AutoTiles(1_000), 0), 1_000)
}

// ScaleSweep10k pushes the single-heap engine to n=10000.
func ScaleSweep10k(b *testing.B) { runScaleChunks(b, scaleWorld(b, 10_000, 1, 0), 10_000) }

// ScaleSweep10kSharded is n=10000 on the sharded engine — the
// configuration the ≥4× multi-core acceptance target is measured on.
func ScaleSweep10kSharded(b *testing.B) {
	runScaleChunks(b, scaleWorld(b, 10_000, manet.AutoTiles(10_000), 0), 10_000)
}

// ShardBarrier is the telemetry-overhead reference: the n=1000 sharded
// storm with an explicit 2-worker bound (so the parallel window/barrier
// path runs even on a single-core host) and telemetry off — the dark
// fast path, which must stay allocation-free.
func ShardBarrier(b *testing.B) {
	runScaleChunks(b, scaleWorldTel(b, 1_000, manet.AutoTiles(1_000), 2, false), 1_000)
}

// TelemetryFold prices engine telemetry: two identical sharded worlds —
// telemetry off and on — advance in interleaved 5ms slabs, each slab
// timed separately. Interleaving makes the ratio robust against clock
// drift, GC pressure and frequency scaling that sink cross-benchmark
// ns/op comparisons; the "overhead_x" extra (telemetry ns / dark ns) is
// the whole price of the per-window fold (per-tile deltas, imbalance,
// span/stall sketches, worker scratch), and lmebench -micro -check
// fails if it exceeds the pinned budget.
func TelemetryFold(b *testing.B) {
	dark := scaleWorldTel(b, 1_000, manet.AutoTiles(1_000), 2, false)
	tel := scaleWorldTel(b, 1_000, manet.AutoTiles(1_000), 2, true)
	const chunk = sim.Time(5_000)
	// Warm both worlds past the initial link-up storm so the measured
	// slabs see the same steady state, and start from a clean heap.
	for i := 0; i < 10; i++ {
		if err := dark.RunUntil(dark.Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
		if err := tel.RunUntil(tel.Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
	}
	runtime.GC()
	var darkNS, telNS int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := dark.RunUntil(dark.Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		if err := tel.RunUntil(tel.Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
		darkNS += t1.Sub(t0).Nanoseconds()
		telNS += time.Since(t1).Nanoseconds()
	}
	b.StopTimer()
	if darkNS > 0 {
		b.ReportMetric(float64(telNS)/float64(darkNS), "overhead_x")
	}
}

// ShardedChurn layers mobility on the sharded storm: n=1000 with 64
// random-waypoint movers crossing tile boundaries, so the profile
// includes link churn, tile migration and the serialized topology path —
// the worst case for the window loop, not just its steady state.
func ShardedChurn(b *testing.B) {
	const n = 1_000
	cfg := manet.DefaultConfig()
	cfg.Seed = 3
	side := 32 // 32² ≥ 1000
	spacing := 1.0 / float64(side)
	cfg.Radius = 1.45 * spacing
	cfg.Tiles = manet.AutoTiles(n)
	w := manet.NewWorld(cfg)
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{
			X: (float64(i%side) + 0.5) * spacing,
			Y: (float64(i/side) + 0.5) * spacing,
		})
		w.SetProtocol(id, &pingProto{})
	}
	movers := make([]core.NodeID, 0, 64)
	for i := 0; i < 64; i++ {
		movers = append(movers, core.NodeID(i*15))
	}
	manet.Waypoint{Speed: 0.4, PauseMin: 1_000, PauseMax: 10_000}.Attach(w, movers)
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	runScaleChunks(b, w, n)
}
