// Observability microbenchmarks: what a run pays when it is watched.
// TraceSinkThroughput measures the JSONL encoding path of the trace bus,
// PublishFanout the subscriber dispatch, SpanFold the span collector's
// event fold, and the EndToEnd pair the full simulation with and without
// every observer attached — the observed-vs-dark delta lmebench -micro
// reports.
package microbench

import (
	"io"
	"runtime"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/trace"
)

// eventMix returns a representative slice of trace events, weighted
// roughly like a real run's stream: mostly traffic (send/deliver), some
// state transitions, the occasional link, doorway and note event.
func eventMix() []trace.Event {
	return []trace.Event{
		{At: 1_000, Kind: trace.KindSend, Node: 3, Peer: 7, Msg: "req", Size: 24, MsgSeq: 41},
		{At: 1_200, Kind: trace.KindDeliver, Node: 7, Peer: 3, Msg: "req", Size: 24, MsgSeq: 41, Delay: 200},
		{At: 1_250, Kind: trace.KindSend, Node: 7, Peer: 3, Msg: "fork", Size: 16, MsgSeq: 42},
		{At: 1_400, Kind: trace.KindDeliver, Node: 3, Peer: 7, Msg: "fork", Size: 16, MsgSeq: 42, Delay: 150},
		{At: 1_500, Kind: trace.KindState, Node: 3, Peer: trace.NoNode, Old: "hungry", New: "eating"},
		{At: 1_700, Kind: trace.KindSend, Node: 3, Peer: 0, Msg: "notification", Size: 32, MsgSeq: 43},
		{At: 1_900, Kind: trace.KindDeliver, Node: 0, Peer: 3, Msg: "notification", Size: 32, MsgSeq: 43, Delay: 200},
		{At: 2_000, Kind: trace.KindState, Node: 3, Peer: trace.NoNode, Old: "eating", New: "thinking"},
		{At: 2_100, Kind: trace.KindLinkUp, Node: 2, Peer: 9, Detail: "9"},
		{At: 2_200, Kind: trace.KindDoorway, Node: 5, Peer: trace.NoNode, New: "cross", Detail: "adr"},
		{At: 2_300, Kind: trace.KindDrop, Node: 9, Peer: 2, Msg: "req", Size: 24, MsgSeq: 7, Detail: "link-changed"},
		{At: 2_400, Kind: trace.KindNote, Node: 5, Peer: trace.NoNode, Detail: "recolor run 3: palette {1,4,6}"},
	}
}

// TraceSinkThroughput measures the JSONL sink encoding path: one op is
// one event published to a bus whose only consumer is a byte sink. This
// is the per-event cost every -trace-out run pays.
func TraceSinkThroughput(b *testing.B) {
	mix := eventMix()
	bus := trace.NewBus(0)
	bus.SetSink(io.Discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(mix[i%len(mix)])
	}
	b.StopTimer()
	if err := bus.Flush(); err != nil {
		b.Fatal(err)
	}
}

// PublishFanout measures subscriber dispatch: one op is one event
// published to a bus with a realistic observer population — a
// metrics-style multi-kind subscriber, a span-style all-kinds subscriber,
// two single-kind subscribers and a retained-history ring.
func PublishFanout(b *testing.B) {
	mix := eventMix()
	bus := trace.NewBus(1024)
	var sink uint64
	bus.Subscribe(func(e trace.Event) { sink += uint64(e.Size) },
		trace.KindSend, trace.KindDeliver, trace.KindDrop, trace.KindState,
		trace.KindLinkUp, trace.KindLinkDown, trace.KindMoveStart,
		trace.KindCrash, trace.KindRecolor)
	bus.Subscribe(func(e trace.Event) { sink += uint64(e.Node) })
	bus.Subscribe(func(e trace.Event) { sink++ }, trace.KindState)
	bus.Subscribe(func(e trace.Event) { sink++ }, trace.KindDoorway)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(mix[i%len(mix)])
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("subscribers saw nothing")
	}
}

// spanEvents synthesises the event stream of a few hundred complete CS
// attempts across 8 nodes: hungry, doorway enter/cross, fork request and
// delivery, eating, thinking — the shapes the collector folds all day.
func spanEvents() []trace.Event {
	var evs []trace.Event
	at := sim.Time(0)
	seq := uint64(0)
	emit := func(e trace.Event) {
		at += 37
		seq++
		e.At, e.Seq = at, seq
		evs = append(evs, e)
	}
	const nodes = 8
	for round := 0; round < 40; round++ {
		for n := core.NodeID(0); n < nodes; n++ {
			peer := (n + 1) % nodes
			emit(trace.Event{Kind: trace.KindState, Node: n, Peer: trace.NoNode, Old: "thinking", New: "hungry"})
			emit(trace.Event{Kind: trace.KindDoorway, Node: n, Peer: trace.NoNode, New: "enter", Detail: "adr"})
			emit(trace.Event{Kind: trace.KindDoorway, Node: n, Peer: trace.NoNode, New: "cross", Detail: "adr"})
			emit(trace.Event{Kind: trace.KindSend, Node: n, Peer: peer, Msg: "req", Size: 24, MsgSeq: uint64(round*8) + uint64(n)})
			emit(trace.Event{Kind: trace.KindDeliver, Node: n, Peer: peer, Msg: "fork", Size: 16, MsgSeq: uint64(round*8) + uint64(n), Delay: 120})
			emit(trace.Event{Kind: trace.KindState, Node: n, Peer: trace.NoNode, Old: "hungry", New: "eating"})
			emit(trace.Event{Kind: trace.KindDoorway, Node: n, Peer: trace.NoNode, New: "exit", Detail: "adr"})
			emit(trace.Event{Kind: trace.KindState, Node: n, Peer: trace.NoNode, Old: "eating", New: "thinking"})
		}
	}
	return evs
}

// SpanFold measures the span collector's event-at-a-time fold: one op is
// one event fed. The collector restarts at each pass over the stream so
// its state stays bounded.
func SpanFold(b *testing.B) {
	evs := spanEvents()
	c := span.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(evs)
		if j == 0 {
			c = span.New()
		}
		c.Feed(evs[j])
	}
	b.StopTimer()
	if c.Now() == 0 {
		b.Fatal("collector folded nothing")
	}
}

// SpanFoldStreaming measures the collector's bounded-memory fold mode:
// the same event stream as SpanFold, but folded into a streaming
// collector that is NEVER restarted — closed attempts are aggregated and
// discarded, so allocs/op is the steady-state cost, not amortised
// slice growth. Event times are shifted per pass to keep virtual time
// monotone across the replayed stream.
func SpanFoldStreaming(b *testing.B) {
	evs := spanEvents()
	c := span.NewStreaming()
	base := sim.Time(0)
	last := evs[len(evs)-1].At
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(evs)
		if j == 0 && i > 0 {
			base += last
		}
		e := evs[j]
		e.At += base
		c.Feed(e)
	}
	b.StopTimer()
	if c.Now() == 0 {
		b.Fatal("collector folded nothing")
	}
}

// MemorySteady measures the heap footprint of a fully-watched run in its
// bounded-memory configuration (metrics registry + sketches + streaming
// span fold, no retained ring or sink): one op is 100ms of virtual time
// of the churn scenario, and the extra heap-B/op metric is live-heap
// growth per op — near zero when streaming observability is O(1) in run
// length.
func MemorySteady(b *testing.B) {
	cfg := manet.DefaultConfig()
	cfg.Seed = 17
	cfg.Radius = 0.2
	w := manet.NewWorld(cfg)
	protos := make([]*nullProto, 64)
	r := sim.NewScheduler(5).Rand()
	for i := range protos {
		protos[i] = &nullProto{}
		id := w.AddNode(graph.Point{X: r.Float64(), Y: r.Float64()})
		w.SetProtocol(id, protos[i])
	}
	reg := metrics.NewRegistry()
	metrics.Instrument(w.Bus(), reg, w.TypeNamer())
	col := span.NewStreaming()
	col.Attach(w.Bus())
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	churnWorkload(w, protos)

	const chunk = sim.Time(100_000)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Scheduler().RunUntil(w.Scheduler().Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if growth < 0 {
		growth = 0
	}
	b.ReportMetric(growth/float64(b.N), "heap-B/op")
	if col.Now() == 0 {
		b.Fatal("collector saw nothing")
	}
}

// churnTick drives the end-to-end scenario: a rotating node broadcasts
// and cycles its dining state every 2ms of virtual time, generating the
// send/deliver/state stream a saturated protocol run produces.
func churnWorkload(w *manet.World, protos []*nullProto) {
	var payload struct{ A, B int64 }
	i := 0
	var tick func()
	tick = func() {
		p := protos[i%len(protos)]
		switch i % 3 {
		case 0:
			p.env.SetState(core.Hungry)
		case 1:
			p.env.Broadcast(payload)
			p.env.SetState(core.Eating)
		case 2:
			p.env.SetState(core.Thinking)
		}
		i++
		w.Scheduler().After(2_000, tick)
	}
	w.Scheduler().After(1_000, tick)
}

// endToEndWorld builds the observed-vs-dark scenario: a 64-node world
// with the churn workload attached. observe=false runs dark (no ring, no
// subscribers, no sink); observe=true attaches the full observability
// stack of an instrumented run — retained ring, metrics registry, span
// collector and a JSONL sink.
func endToEndWorld(b *testing.B, observe bool) *manet.World {
	cfg := manet.DefaultConfig()
	cfg.Seed = 17
	cfg.Radius = 0.2
	if observe {
		cfg.TraceRing = 4096
	}
	w := manet.NewWorld(cfg)
	protos := make([]*nullProto, 64)
	r := sim.NewScheduler(5).Rand()
	for i := range protos {
		protos[i] = &nullProto{}
		id := w.AddNode(graph.Point{X: r.Float64(), Y: r.Float64()})
		w.SetProtocol(id, protos[i])
	}
	if observe {
		reg := metrics.NewRegistry()
		metrics.Instrument(w.Bus(), reg, w.TypeNamer())
		col := span.New()
		col.Attach(w.Bus())
		w.Bus().SetSink(io.Discard)
	}
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	churnWorkload(w, protos)
	return w
}

// EndToEndDark measures the unobserved baseline: one op is 100ms of
// virtual time of the churn scenario with nothing attached to the bus.
func EndToEndDark(b *testing.B) {
	runEndToEnd(b, endToEndWorld(b, false))
}

// EndToEndObserved is EndToEndDark with the full observability stack
// attached (ring + metrics + span collector + JSONL sink). The ratio of
// the two is the observed-vs-dark delta lmebench -micro prints.
func EndToEndObserved(b *testing.B) {
	runEndToEnd(b, endToEndWorld(b, true))
}

func runEndToEnd(b *testing.B, w *manet.World) {
	const chunk = sim.Time(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Scheduler().RunUntil(w.Scheduler().Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Bus().Flush(); err != nil {
		b.Fatal(err)
	}
}
