// Package microbench holds the substrate microbenchmark bodies shared by
// the `go test -bench` wrappers in internal/sim and internal/manet and by
// `lmebench -micro`, which runs them programmatically via
// testing.Benchmark and emits machine-readable results (BENCH_micro.json).
// Keeping the bodies in a plain (non-test) package is what lets the same
// code serve both entry points.
//
// The three benchmarks cover the hot paths every experiment funnels
// through: scheduler push/pop churn, the mobility link-maintenance sweep,
// and neighbourhood broadcast fan-out.
package microbench

import (
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/sim"
)

// Benchmark is one named microbenchmark.
type Benchmark struct {
	Name string
	Fn   func(b *testing.B)
}

// All lists the substrate and observability microbenchmarks in reporting
// order.
func All() []Benchmark {
	return []Benchmark{
		{Name: "SchedulerChurn", Fn: SchedulerChurn},
		{Name: "MobilitySweep", Fn: MobilitySweep},
		{Name: "BroadcastFanout", Fn: BroadcastFanout},
		{Name: "NeighborsView", Fn: NeighborsView},
		{Name: "TraceSinkThroughput", Fn: TraceSinkThroughput},
		{Name: "PublishFanout", Fn: PublishFanout},
		{Name: "SpanFold", Fn: SpanFold},
		{Name: "SpanFoldStreaming", Fn: SpanFoldStreaming},
		{Name: "MemorySteady", Fn: MemorySteady},
		{Name: "EndToEndDark", Fn: EndToEndDark},
		{Name: "EndToEndObserved", Fn: EndToEndObserved},
		{Name: "ScaleSweep1k", Fn: ScaleSweep1k},
		{Name: "ScaleSweep1kSharded", Fn: ScaleSweep1kSharded},
		{Name: "ScaleSweep10k", Fn: ScaleSweep10k},
		{Name: "ScaleSweep10kSharded", Fn: ScaleSweep10kSharded},
		{Name: "ShardBarrier", Fn: ShardBarrier},
		{Name: "TelemetryFold", Fn: TelemetryFold},
		{Name: "ShardedChurn", Fn: ShardedChurn},
		{Name: "WireEncode", Fn: WireEncode},
		{Name: "WireDecode", Fn: WireDecode},
		{Name: "WireEncodeGob", Fn: WireEncodeGob},
		{Name: "WireDecodeGob", Fn: WireDecodeGob},
		{Name: "DatagramCoalesce", Fn: DatagramCoalesce},
		{Name: "UDPAcquireRelease", Fn: UDPAcquireRelease},
		{Name: "UDPAcquireReleaseGob", Fn: UDPAcquireReleaseGob},
	}
}

// SchedulerChurn measures steady-state timer churn: a standing population
// of pending events where every executed event schedules a successor at a
// pseudo-random future instant. One op = one event executed (pop + push).
func SchedulerChurn(b *testing.B) {
	s := sim.NewScheduler(42)
	var fire func()
	fire = func() { s.After(sim.Time(1+s.Rand().Int64N(1_000)), fire) }
	const standing = 512
	for i := 0; i < standing; i++ {
		s.At(sim.Time(i), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// nullProto is a protocol that observes everything and does nothing; it
// keeps the benchmarks focused on the substrate rather than any algorithm.
type nullProto struct {
	env core.Env
}

func (p *nullProto) Init(env core.Env)                   { p.env = env }
func (p *nullProto) OnMessage(core.NodeID, core.Message) {}
func (p *nullProto) OnLinkUp(core.NodeID, bool)          {}
func (p *nullProto) OnLinkDown(core.NodeID)              {}
func (p *nullProto) BecomeHungry()                       {}
func (p *nullProto) ExitCS()                             {}
func (p *nullProto) State() core.State                   { return core.Thinking }

// mobilityWorld builds the MobilitySweep scenario: n nodes on a jittered
// lattice over the unit square, a quarter of them roaming under the
// random-waypoint model.
func mobilityWorld(n int, seed uint64) *manet.World {
	cfg := manet.DefaultConfig()
	cfg.Seed = seed
	cfg.Radius = 0.12
	w := manet.NewWorld(cfg)
	side := 1
	for side*side < n {
		side++
	}
	r := sim.NewScheduler(seed ^ 0xbeef).Rand() // position jitter stream
	for i := 0; i < n; i++ {
		x := (float64(i%side) + 0.2 + 0.6*r.Float64()) / float64(side)
		y := (float64(i/side) + 0.2 + 0.6*r.Float64()) / float64(side)
		id := w.AddNode(graph.Point{X: x, Y: y})
		w.SetProtocol(id, &nullProto{})
	}
	return w
}

// MobilitySweep measures the link-maintenance hot path: a 96-node world
// with 24 random-waypoint movers. One op = 100ms of virtual time (five
// mobility ticks per mover plus the induced link churn).
func MobilitySweep(b *testing.B) {
	w := mobilityWorld(96, 7)
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	movers := make([]core.NodeID, 0, 24)
	for i := 0; i < 24; i++ {
		movers = append(movers, core.NodeID(i*4))
	}
	manet.Waypoint{Speed: 0.4, PauseMin: 1_000, PauseMax: 10_000}.Attach(w, movers)
	const chunk = sim.Time(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Scheduler().RunUntil(w.Scheduler().Now()+chunk, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BroadcastFanout measures neighbour iteration plus the per-message send
// path: one broadcast from the centre of a 64-node near-clique, drained to
// completion. One op = one broadcast (63 sends and deliveries).
func BroadcastFanout(b *testing.B) {
	cfg := manet.DefaultConfig()
	cfg.Seed = 11
	cfg.Radius = 0.5
	w := manet.NewWorld(cfg)
	protos := make([]*nullProto, 64)
	r := sim.NewScheduler(99).Rand()
	for i := range protos {
		protos[i] = &nullProto{}
		id := w.AddNode(graph.Point{X: 0.4 + 0.2*r.Float64(), Y: 0.4 + 0.2*r.Float64()})
		w.SetProtocol(id, protos[i])
	}
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	var payload struct{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		protos[0].env.Broadcast(payload)
		if err := w.Scheduler().Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// NeighborsView measures the adjacency read path protocols sit on inside
// every recolouring round: Neighbors() for each node of a static world.
func NeighborsView(b *testing.B) {
	w := mobilityWorld(96, 13)
	if err := w.Start(); err != nil {
		b.Fatal(err)
	}
	n := w.N()
	sum := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := 0; id < n; id++ {
			sum += len(w.Neighbors(core.NodeID(id)))
		}
	}
	if sum < 0 {
		b.Fatal("unreachable")
	}
}
