package doorway

import "lme/internal/core"

// Double is the double doorway of Figure 3: a synchronous doorway nested
// inside an asynchronous one. Its entry code runs the asynchronous entry
// followed by the synchronous entry; its exit code reverses the order.
// Lemma 1 bounds its traversal by O(δT) when the module behind it takes T;
// Lemma 2 covers the return-path variant (ReturnToInner), used by the
// fork-collection module when a low neighbour departs with a shared fork.
//
// Like Doorway, Double is a passive single-threaded component: the owner
// routes observations to the inner and outer doorways through Observe and
// the link-change methods, and learns about full entry through onEnter.
type Double struct {
	outer *Doorway // asynchronous
	inner *Doorway // synchronous
}

// NewDouble builds a double doorway over the given neighbour set. announce
// reports this node's own position changes per sub-doorway (inner=true for
// the synchronous one); onEnter fires when the synchronous doorway is
// crossed, i.e. the node is fully behind the double doorway.
func NewDouble(neighbors []core.NodeID, announce func(inner, cross bool), onEnter func()) *Double {
	d := &Double{}
	d.inner = New(Synchronous, neighbors,
		func(cross bool) { announce(true, cross) },
		onEnter)
	d.outer = New(Asynchronous, neighbors,
		func(cross bool) { announce(false, cross) },
		func() { d.inner.BeginEntry() })
	return d
}

// BeginEntry starts the composite entry code.
func (d *Double) BeginEntry() { d.outer.BeginEntry() }

// Exit runs the composite exit code: inner first, then outer (Figure 3).
func (d *Double) Exit() {
	d.inner.Exit()
	d.outer.Exit()
}

// ReturnToInner is the return path of Figure 4: exit the synchronous
// doorway and immediately re-enter it, staying behind the asynchronous
// one. Only valid while fully behind the double doorway.
func (d *Double) ReturnToInner() {
	d.inner.Exit()
	d.inner.BeginEntry()
}

// Abort cancels any entry in progress without announcements and exits
// whatever was crossed.
func (d *Double) Abort() {
	if d.inner.Behind() {
		d.inner.Exit()
	} else {
		d.inner.Abort()
	}
	if d.outer.Behind() {
		d.outer.Exit()
	} else {
		d.outer.Abort()
	}
}

// Behind reports whether the node is fully behind the double doorway.
func (d *Double) Behind() bool { return d.inner.Behind() }

// BehindOuter reports whether the asynchronous doorway has been crossed.
func (d *Double) BehindOuter() bool { return d.outer.Behind() }

// Entering reports whether any entry code is in progress.
func (d *Double) Entering() bool { return d.outer.Entering() || d.inner.Entering() }

// Observe records a neighbour's position announcement for the selected
// sub-doorway.
func (d *Double) Observe(j core.NodeID, inner bool, p Pos) {
	if inner {
		d.inner.Observe(j, p)
	} else {
		d.outer.Observe(j, p)
	}
}

// AddNeighbor installs a new neighbour in both sub-doorways.
func (d *Double) AddNeighbor(j core.NodeID, innerPos, outerPos Pos) {
	d.inner.AddNeighbor(j, innerPos)
	d.outer.AddNeighbor(j, outerPos)
}

// Forget drops a departed neighbour from both sub-doorways.
func (d *Double) Forget(j core.NodeID) {
	d.inner.Forget(j)
	d.outer.Forget(j)
}
