package doorway

import (
	"testing"

	"lme/internal/core"
)

type doubleRec struct {
	announces []string // "ad+"/"ad-"/"sd+"/"sd-"
	entered   int
}

func newDouble(neighbors ...core.NodeID) (*Double, *doubleRec) {
	r := &doubleRec{}
	d := NewDouble(neighbors,
		func(inner, cross bool) {
			tag := "ad"
			if inner {
				tag = "sd"
			}
			if cross {
				tag += "+"
			} else {
				tag += "-"
			}
			r.announces = append(r.announces, tag)
		},
		func() { r.entered++ })
	return d, r
}

func TestDoubleEntryOrder(t *testing.T) {
	d, r := newDouble(1)
	d.BeginEntry()
	if !d.Behind() || r.entered != 1 {
		t.Fatal("did not fully enter with neighbour outside")
	}
	// Asynchronous cross must precede the synchronous one.
	if len(r.announces) != 2 || r.announces[0] != "ad+" || r.announces[1] != "sd+" {
		t.Fatalf("announces = %v", r.announces)
	}
	d.Exit()
	// Exit order reversed: synchronous first.
	if len(r.announces) != 4 || r.announces[2] != "sd-" || r.announces[3] != "ad-" {
		t.Fatalf("announces = %v", r.announces)
	}
	if d.Behind() || d.BehindOuter() {
		t.Fatal("still behind after exit")
	}
}

func TestDoubleBlockedAtInner(t *testing.T) {
	d, r := newDouble(1)
	// Neighbour is behind the inner doorway but outside the outer one —
	// the window in which a node crosses AD but waits at SD.
	d.Observe(1, true, Behind)
	d.BeginEntry()
	if !d.BehindOuter() || d.Behind() {
		t.Fatalf("positions wrong: outer=%v inner=%v", d.BehindOuter(), d.Behind())
	}
	if !d.Entering() {
		t.Fatal("inner entry not in progress")
	}
	d.Observe(1, true, Outside)
	if !d.Behind() || r.entered != 1 {
		t.Fatal("did not cross the inner doorway once unblocked")
	}
}

func TestDoubleBlockedAtOuter(t *testing.T) {
	d, _ := newDouble(1)
	d.Observe(1, false, Behind)
	d.BeginEntry()
	if d.BehindOuter() {
		t.Fatal("crossed the asynchronous doorway past a behind neighbour")
	}
	d.Observe(1, false, Outside)
	if !d.Behind() {
		t.Fatal("did not complete both entries after the outer unblocked")
	}
}

func TestDoubleReturnPath(t *testing.T) {
	d, r := newDouble(1)
	d.BeginEntry()
	if r.entered != 1 {
		t.Fatal("setup failed")
	}
	d.ReturnToInner()
	if !d.Behind() || r.entered != 2 {
		t.Fatalf("return path did not re-enter (entered=%d)", r.entered)
	}
	if !d.BehindOuter() {
		t.Fatal("return path left the asynchronous doorway")
	}
	// The wire saw sd-, sd+ — no asynchronous traffic.
	tail := r.announces[len(r.announces)-2:]
	if tail[0] != "sd-" || tail[1] != "sd+" {
		t.Fatalf("announces = %v", r.announces)
	}
}

func TestDoubleReturnPathBlocksUntilNeighborExits(t *testing.T) {
	d, r := newDouble(1)
	d.BeginEntry()
	// The neighbour slips behind the inner doorway; our return path must
	// wait for it.
	d.Observe(1, true, Behind)
	d.ReturnToInner()
	if d.Behind() {
		t.Fatal("re-entered past a behind neighbour")
	}
	d.Observe(1, true, Outside)
	if !d.Behind() || r.entered != 2 {
		t.Fatal("never re-entered")
	}
}

func TestDoubleAbort(t *testing.T) {
	d, r := newDouble(1)
	d.Observe(1, true, Behind)
	d.BeginEntry() // crosses outer, blocks at inner
	d.Abort()
	if d.Entering() || d.Behind() {
		t.Fatal("abort left entry state")
	}
	// The outer doorway had been crossed, so the abort must announce its
	// exit (neighbours saw our ad+).
	last := r.announces[len(r.announces)-1]
	if last != "ad-" {
		t.Fatalf("announces = %v", r.announces)
	}
	// Fresh entry works after abort.
	d.Observe(1, true, Outside)
	d.BeginEntry()
	if !d.Behind() {
		t.Fatal("re-entry after abort failed")
	}
}

func TestDoubleLinkChurn(t *testing.T) {
	d, _ := newDouble(1)
	d.AddNeighbor(2, Behind, Outside)
	d.BeginEntry() // outer ok (2 outside), inner blocked (2 behind)
	if d.Behind() {
		t.Fatal("crossed past new behind neighbour")
	}
	d.Forget(2)
	if !d.Behind() {
		t.Fatal("departure did not unblock the inner entry")
	}
}
