package doorway_test

import (
	"testing"

	"lme/internal/core"
	"lme/internal/doorway"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/sim"
)

// dwMsg carries a doorway position announcement.
type dwMsg struct {
	Cross bool
}

// dwProto is a minimal protocol exercising one doorway instance over the
// simulated network: it enters on request, stays behind for holdTime, and
// exits.
type dwProto struct {
	env      core.Env
	d        *doorway.Doorway
	kind     doorway.Kind
	holdTime sim.Time

	entryAt []sim.Time // when BeginEntry was called
	crossAt []sim.Time
	exitAt  []sim.Time
	pending int // entries requested before Init
}

func (p *dwProto) Init(env core.Env) {
	p.env = env
	p.d = doorway.New(p.kind, env.Neighbors(),
		func(cross bool) { env.Broadcast(dwMsg{Cross: cross}) },
		p.onCross)
}

func (p *dwProto) onCross() {
	p.crossAt = append(p.crossAt, p.env.Now())
}

func (p *dwProto) enter() {
	p.entryAt = append(p.entryAt, p.env.Now())
	p.d.BeginEntry()
}

func (p *dwProto) exit() {
	p.exitAt = append(p.exitAt, p.env.Now())
	p.d.Exit()
}

func (p *dwProto) OnMessage(from core.NodeID, msg core.Message) {
	m, ok := msg.(dwMsg)
	if !ok {
		return
	}
	pos := doorway.Outside
	if m.Cross {
		pos = doorway.Behind
	}
	p.d.Observe(from, pos)
}

func (p *dwProto) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	p.d.AddNeighbor(peer, doorway.Outside)
}

func (p *dwProto) OnLinkDown(peer core.NodeID) { p.d.Forget(peer) }

func (p *dwProto) BecomeHungry()     {}
func (p *dwProto) ExitCS()           {}
func (p *dwProto) State() core.State { return core.Thinking }

// buildClique wires n mutually-adjacent dwProto nodes.
func buildClique(t *testing.T, n int, kind doorway.Kind) (*manet.World, []*dwProto) {
	t.Helper()
	cfg := manet.DefaultConfig()
	cfg.Radius = 10 // everyone adjacent
	w := manet.NewWorld(cfg)
	protos := make([]*dwProto, n)
	for i := 0; i < n; i++ {
		id := w.AddNode(graph.Point{X: float64(i) * 0.01})
		protos[i] = &dwProto{kind: kind}
		w.SetProtocol(id, protos[i])
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	return w, protos
}

// TestDoorwayGuarantee checks the doorway property over the lossy-free
// network: node A crosses at ~0; node B begins its entry well after A's
// cross message arrived; then B must not cross until A exits.
func TestDoorwayGuarantee(t *testing.T) {
	for _, kind := range []doorway.Kind{doorway.Synchronous, doorway.Asynchronous} {
		t.Run(kind.String(), func(t *testing.T) {
			w, protos := buildClique(t, 2, kind)
			sched := w.Scheduler()
			sched.At(0, func() { protos[0].enter() })
			sched.At(50_000, func() { protos[1].enter() }) // after ν=10ms
			sched.At(100_000, func() { protos[0].exit() })
			if err := sched.RunUntil(300_000, 0); err != nil {
				t.Fatal(err)
			}
			if len(protos[0].crossAt) != 1 || protos[0].crossAt[0] != 0 {
				t.Fatalf("A crossings = %v", protos[0].crossAt)
			}
			if len(protos[1].crossAt) != 1 {
				t.Fatalf("B crossings = %v", protos[1].crossAt)
			}
			if got := protos[1].crossAt[0]; got < 100_000 {
				t.Fatalf("B crossed at %v, before A exited at 100ms", got)
			}
		})
	}
}

// TestDoorwayContention runs five nodes through repeated enter/hold/exit
// cycles and checks that every node keeps making progress (the asynchronous
// doorway's purpose) and that the precedence property holds pairwise.
func TestDoorwayContention(t *testing.T) {
	const (
		nodes  = 5
		rounds = 4
		hold   = sim.Time(30_000)
		gap    = sim.Time(5_000)
	)
	w, protos := buildClique(t, nodes, doorway.Asynchronous)
	sched := w.Scheduler()
	var cycle func(p *dwProto, round int)
	cycle = func(p *dwProto, round int) {
		if round >= rounds {
			return
		}
		p.enter()
		var waitExit func()
		waitExit = func() {
			if p.d.Behind() {
				p.exit()
				sched.After(gap, func() { cycle(p, round+1) })
				return
			}
			sched.After(1_000, waitExit)
		}
		sched.After(hold, waitExit)
	}
	for i, p := range protos {
		p := p
		sched.At(sim.Time(i)*1_000, func() { cycle(p, 0) })
	}
	if err := sched.RunUntil(60_000_000, 0); err != nil {
		t.Fatal(err)
	}
	for i, p := range protos {
		if len(p.crossAt) != rounds {
			t.Fatalf("node %d crossed %d times, want %d (starved?)", i, len(p.crossAt), rounds)
		}
	}
	// Pairwise precedence: if j began an entry more than ν after i
	// crossed, and i was still behind, then j's crossing is not before
	// i's exit.
	nu := sim.Time(w.Config().MaxDelay)
	for i, pi := range protos {
		for j, pj := range protos {
			if i == j {
				continue
			}
			for c := range pi.crossAt {
				ci, xi := pi.crossAt[c], pi.exitAt[c]
				for e := range pj.entryAt {
					if pj.entryAt[e] <= ci+nu || pj.entryAt[e] >= xi {
						continue
					}
					if e < len(pj.crossAt) && pj.crossAt[e] < xi {
						t.Fatalf("doorway violated: %d crossed at %v during [%v,%v] of %d (entered %v)",
							j, pj.crossAt[e], ci, xi, i, pj.entryAt[e])
					}
				}
			}
		}
	}
}

// TestDoorwayForgetOnMobility: a blocking neighbour that moves away
// unblocks the entrant through the LinkDown → Forget path.
func TestDoorwayForgetOnMobility(t *testing.T) {
	cfg := manet.DefaultConfig()
	cfg.Radius = 0.2
	w := manet.NewWorld(cfg)
	protos := make([]*dwProto, 2)
	for i := range protos {
		protos[i] = &dwProto{kind: doorway.Synchronous}
		w.SetProtocol(w.AddNode(graph.Point{X: float64(i) * 0.1}), protos[i])
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	sched := w.Scheduler()
	sched.At(0, func() { protos[0].enter() })         // crosses immediately
	sched.At(50_000, func() { protos[1].enter() })    // blocked by node 0
	w.JumpAt(0, graph.Point{X: 0.9}, 10_000, 100_000) // node 0 departs
	if err := sched.RunUntil(300_000, 0); err != nil {
		t.Fatal(err)
	}
	if len(protos[1].crossAt) != 1 {
		t.Fatalf("node 1 crossings = %v", protos[1].crossAt)
	}
	if got := protos[1].crossAt[0]; got < 100_000 {
		t.Fatalf("node 1 crossed at %v before the blocker left", got)
	}
}
