package doorway

import (
	"testing"

	"lme/internal/core"
)

// recorder captures announce/cross callbacks.
type recorder struct {
	announces []bool // true = cross, false = exit
	crossings int
}

func newDoorway(kind Kind, neighbors ...core.NodeID) (*Doorway, *recorder) {
	r := &recorder{}
	d := New(kind, neighbors,
		func(cross bool) { r.announces = append(r.announces, cross) },
		func() { r.crossings++ })
	return d, r
}

func TestCrossImmediatelyWhenAlone(t *testing.T) {
	for _, kind := range []Kind{Synchronous, Asynchronous} {
		d, r := newDoorway(kind)
		d.BeginEntry()
		if !d.Behind() || r.crossings != 1 {
			t.Fatalf("%v: lone node did not cross", kind)
		}
		if len(r.announces) != 1 || !r.announces[0] {
			t.Fatalf("%v: announces = %v", kind, r.announces)
		}
	}
}

func TestCrossWhenAllNeighborsOutside(t *testing.T) {
	for _, kind := range []Kind{Synchronous, Asynchronous} {
		d, r := newDoorway(kind, 1, 2)
		d.BeginEntry()
		if !d.Behind() || r.crossings != 1 {
			t.Fatalf("%v: did not cross with all neighbours outside", kind)
		}
	}
}

func TestBlockedByBehindNeighbor(t *testing.T) {
	for _, kind := range []Kind{Synchronous, Asynchronous} {
		d, r := newDoorway(kind, 1)
		d.Observe(1, Behind)
		d.BeginEntry()
		if d.Behind() {
			t.Fatalf("%v: crossed past a behind neighbour", kind)
		}
		if !d.Entering() {
			t.Fatalf("%v: entry not in progress", kind)
		}
		d.Observe(1, Outside)
		if !d.Behind() || r.crossings != 1 {
			t.Fatalf("%v: did not cross after neighbour exited", kind)
		}
	}
}

// TestAsyncSeenOnceSemantics is the defining difference of Figure 2: the
// asynchronous doorway only needs each neighbour outside at least once,
// even if it is behind again by the time the last observation arrives.
func TestAsyncSeenOnceSemantics(t *testing.T) {
	d, r := newDoorway(Asynchronous, 1, 2)
	d.Observe(2, Behind) // 2 is behind before we start
	d.BeginEntry()       // 1 seen outside immediately; waiting for 2
	if d.Behind() {
		t.Fatal("crossed without seeing 2 outside")
	}
	d.Observe(1, Behind)  // 1 crosses; we already saw it outside
	d.Observe(2, Outside) // 2 exits: now every neighbour was seen outside
	if !d.Behind() || r.crossings != 1 {
		t.Fatal("async doorway did not cross on seen-once condition")
	}
}

// TestSyncNeedsSimultaneity: the synchronous doorway must observe all
// neighbours outside at the same evaluation, so the async scenario above
// does not let it through.
func TestSyncNeedsSimultaneity(t *testing.T) {
	d, _ := newDoorway(Synchronous, 1, 2)
	d.Observe(2, Behind)
	d.BeginEntry()
	d.Observe(1, Behind)
	d.Observe(2, Outside)
	if d.Behind() {
		t.Fatal("sync doorway crossed without simultaneous outside view")
	}
	d.Observe(1, Outside)
	if !d.Behind() {
		t.Fatal("sync doorway did not cross once views aligned")
	}
}

func TestForgetUnblocks(t *testing.T) {
	for _, kind := range []Kind{Synchronous, Asynchronous} {
		d, _ := newDoorway(kind, 1, 2)
		d.Observe(1, Behind)
		d.BeginEntry()
		if d.Behind() {
			t.Fatalf("%v: crossed prematurely", kind)
		}
		d.Forget(1) // the blocking neighbour moved away
		if !d.Behind() {
			t.Fatalf("%v: did not cross after Forget", kind)
		}
	}
}

func TestAddNeighborDoesNotTriggerCross(t *testing.T) {
	d, _ := newDoorway(Synchronous, 1)
	d.Observe(1, Behind)
	d.BeginEntry()
	d.AddNeighbor(2, Outside)
	if d.Behind() {
		t.Fatal("AddNeighbor caused a crossing")
	}
	// But the added neighbour participates in the condition.
	d.AddNeighbor(3, Behind)
	d.Observe(1, Outside)
	if d.Behind() {
		t.Fatal("crossed past behind new neighbour 3")
	}
	d.Observe(3, Outside)
	if !d.Behind() {
		t.Fatal("did not cross after all outside")
	}
}

func TestExitAnnouncesOnceAndIsIdempotent(t *testing.T) {
	d, r := newDoorway(Synchronous)
	d.BeginEntry()
	d.Exit()
	d.Exit()
	// announces: cross, exit — second Exit is a no-op.
	if len(r.announces) != 2 || !r.announces[0] || r.announces[1] {
		t.Fatalf("announces = %v", r.announces)
	}
	if d.Behind() {
		t.Fatal("still behind after exit")
	}
}

func TestAbortCancelsEntrySilently(t *testing.T) {
	d, r := newDoorway(Asynchronous, 1)
	d.Observe(1, Behind)
	d.BeginEntry()
	d.Abort()
	if d.Entering() {
		t.Fatal("still entering after abort")
	}
	d.Observe(1, Outside) // must not cross: entry was aborted
	if d.Behind() || len(r.announces) != 0 {
		t.Fatalf("aborted entry crossed anyway (announces=%v)", r.announces)
	}
}

func TestReentryAfterExit(t *testing.T) {
	d, r := newDoorway(Synchronous, 1)
	d.BeginEntry()
	d.Exit()
	d.BeginEntry()
	if !d.Behind() || r.crossings != 2 {
		t.Fatal("re-entry failed")
	}
}

func TestBeginEntryWhileBehindPanics(t *testing.T) {
	d, _ := newDoorway(Synchronous)
	d.BeginEntry()
	defer func() {
		if recover() == nil {
			t.Fatal("BeginEntry while behind did not panic")
		}
	}()
	d.BeginEntry()
}

func TestObservedPosDefaultsOutside(t *testing.T) {
	d, _ := newDoorway(Synchronous, 1)
	if d.ObservedPos(99) != Outside {
		t.Fatal("unknown neighbour not outside")
	}
	d.Observe(1, Behind)
	if d.ObservedPos(1) != Behind {
		t.Fatal("observation lost")
	}
}

// TestAsyncRestartsSeenSetOnReentry: after exiting and re-entering, stale
// "seen outside" marks from the previous entry must not carry over for
// currently-behind neighbours.
func TestAsyncRestartsSeenSetOnReentry(t *testing.T) {
	d, _ := newDoorway(Asynchronous, 1)
	d.BeginEntry() // 1 outside → cross
	d.Exit()
	d.Observe(1, Behind)
	d.BeginEntry()
	if d.Behind() {
		t.Fatal("stale seen set let re-entry through")
	}
	d.Observe(1, Outside)
	if !d.Behind() {
		t.Fatal("re-entry never crossed")
	}
}

func TestKindAndPosStrings(t *testing.T) {
	if Synchronous.String() != "sync" || Asynchronous.String() != "async" || Kind(0).String() != "invalid" {
		t.Fatal("Kind strings wrong")
	}
	if Outside.String() != "outside" || Behind.String() != "behind" || Pos(0).String() != "invalid" {
		t.Fatal("Pos strings wrong")
	}
}
