// Package doorway implements the doorway synchronisation construct of
// Chapter 4 of the paper (originally due to Lamport, elaborated by Choy and
// Singh): a code region with entry and exit fragments such that if node p_i
// crosses the doorway before a neighbour p_j begins executing the entry
// code, then p_j does not cross until p_i exits.
//
// Two kinds exist (Figure 2). In a synchronous doorway a node crosses when
// it observes all neighbours outside simultaneously (in one atomic
// evaluation of its local state); in an asynchronous doorway it crosses
// once it has observed each neighbour outside at least once since starting
// the entry code. Algorithm 1 of the paper composes them into double
// doorways (Figures 3–5); that composition lives in internal/lme1, which
// embeds four Doorway instances per node.
//
// A Doorway is a passive component: its owner feeds it observations
// (cross/exit messages from neighbours, link changes) and it reports back
// through the cross callback when the entry condition is met. All methods
// are single-threaded, driven by the owner's event handlers.
package doorway

import (
	"fmt"

	"lme/internal/core"
)

// Kind distinguishes the two doorway flavours of Figure 2.
type Kind int

// The doorway kinds.
const (
	Synchronous Kind = iota + 1
	Asynchronous
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Synchronous:
		return "sync"
	case Asynchronous:
		return "async"
	default:
		return "invalid"
	}
}

// Pos is a node's logical position relative to a doorway.
type Pos int

// A node is Outside until it crosses (completes the entry code), then
// Behind until it completes the exit code.
const (
	Outside Pos = iota + 1
	Behind
)

// String names the position.
func (p Pos) String() string {
	switch p {
	case Outside:
		return "outside"
	case Behind:
		return "behind"
	default:
		return "invalid"
	}
}

// Doorway is one node's view of one doorway instance.
type Doorway struct {
	kind     Kind
	pos      Pos
	entering bool

	// l is the paper's L[] array restricted to this doorway: the last
	// observed position of each current neighbour.
	l map[core.NodeID]Pos

	// seen marks neighbours observed outside at least once since entry
	// began (asynchronous doorways only).
	seen map[core.NodeID]bool

	// announce broadcasts this node's own position change (true = cross
	// message, false = exit message). Provided by the owner so doorway
	// traffic rides the owner's message types.
	announce func(cross bool)

	// onCross runs immediately after the node crosses.
	onCross func()
}

// New creates a doorway of the given kind with the initial neighbour set
// (all considered outside, per Figure 2's initialisation).
func New(kind Kind, neighbors []core.NodeID, announce func(cross bool), onCross func()) *Doorway {
	d := &Doorway{
		kind:     kind,
		pos:      Outside,
		l:        make(map[core.NodeID]Pos, len(neighbors)),
		seen:     make(map[core.NodeID]bool, len(neighbors)),
		announce: announce,
		onCross:  onCross,
	}
	for _, j := range neighbors {
		d.l[j] = Outside
	}
	return d
}

// Behind reports whether this node is behind the doorway.
func (d *Doorway) Behind() bool { return d.pos == Behind }

// Entering reports whether the entry code is in progress.
func (d *Doorway) Entering() bool { return d.entering }

// ObservedPos returns the last observed position of neighbour j (Outside
// if never observed).
func (d *Doorway) ObservedPos(j core.NodeID) Pos {
	if p, ok := d.l[j]; ok {
		return p
	}
	return Outside
}

// BeginEntry starts executing the entry code. For an asynchronous doorway
// the "seen outside" bookkeeping restarts from the current observations.
// Crossing may happen immediately (within this call) if the condition
// already holds.
func (d *Doorway) BeginEntry() {
	if d.pos == Behind {
		panic(fmt.Sprintf("doorway: BeginEntry while behind %v doorway", d.kind))
	}
	d.entering = true
	if d.kind == Asynchronous {
		clear(d.seen)
		for j, p := range d.l {
			if p == Outside {
				d.seen[j] = true
			}
		}
	}
	d.tryCross()
}

// Exit runs the exit code: announce the exit and become outside. No-op if
// already outside (the mover's "exit any doorway" calls this
// unconditionally).
func (d *Doorway) Exit() {
	d.entering = false
	if d.pos != Behind {
		return
	}
	d.pos = Outside
	d.announce(false)
}

// Abort cancels an entry in progress without announcing anything (the node
// never crossed, so neighbours already consider it outside).
func (d *Doorway) Abort() {
	d.entering = false
}

// Observe records that neighbour j reported the given position (a cross or
// exit message, or a position carried by a status message to a newly
// arrived node), then re-evaluates the entry condition.
func (d *Doorway) Observe(j core.NodeID, p Pos) {
	d.l[j] = p
	if p == Outside {
		d.seen[j] = true
	}
	d.tryCross()
}

// AddNeighbor installs a new neighbour with a known position (Outside for
// the paper's "a new neighboring node is considered to be outside").
func (d *Doorway) AddNeighbor(j core.NodeID, p Pos) {
	d.l[j] = p
	if p == Outside {
		d.seen[j] = true
	}
	// No tryCross here: a *new* neighbour can only weaken the entry
	// condition if it is behind, never satisfy it; and whether a node in
	// the middle of an entry may cross upon a topology change is the
	// owner's decision (the paper's movers restart their entry).
}

// Forget drops a departed neighbour and re-evaluates the entry condition
// (losing a behind-the-doorway neighbour can enable crossing).
func (d *Doorway) Forget(j core.NodeID) {
	delete(d.l, j)
	delete(d.seen, j)
	d.tryCross()
}

// tryCross crosses the doorway if the entry condition of Figure 2 holds.
func (d *Doorway) tryCross() {
	if !d.entering || d.pos == Behind {
		return
	}
	switch d.kind {
	case Synchronous:
		// All neighbours observed outside simultaneously.
		for _, p := range d.l {
			if p != Outside {
				return
			}
		}
	case Asynchronous:
		// Each neighbour observed outside at least once since entry.
		for j := range d.l {
			if !d.seen[j] {
				return
			}
		}
	}
	d.entering = false
	d.pos = Behind
	d.announce(true)
	d.onCross()
}
