// Package span folds the typed event stream of internal/trace into
// causal CS-attempt spans: one record per hungry→eat→exit episode per
// node, subdivided into the phases the paper's response-time theorems
// reason about (doorway entry wait, recolouring, fork collection,
// eating) and annotated with the exact message delivery that closed each
// phase (the per-node send sequence number KindSend stamps and
// KindDeliver carries back).
//
// On top of the spans the Collector maintains two derived structures:
//
//   - a wait-for graph — who is blocked on whom right now, combining
//     fork-wait edges (an unanswered fork request) with doorway-wait
//     edges (a node at a doorway entry blocked by a neighbour behind
//     that doorway);
//   - an empirical failure-locality attribution — for every crash, the
//     set of nodes still transitively waiting on the crash site at the
//     end of the run, with their wait-chain hop count and their
//     communication-graph distance, turning the paper's locality-2
//     vs locality-4 distinction into a measured number.
//
// The Collector is a plain event-at-a-time fold: attach it to a live
// trace.Bus, or Feed it a recorded JSONL trace (cmd/lmetrace does both
// views offline). Like the bus it is single-threaded.
package span

import (
	"lme/internal/core"
	"lme/internal/sim"
)

// Schema identifies the span JSONL layout (one Span object per line);
// bump on breaking changes.
const Schema = "lme/span/v1"

// The phase taxonomy. Every instant of an open attempt belongs to
// exactly one phase; protocols without doorways or recolouring spend
// their whole pre-eating wait in PhaseCollect.
const (
	// PhaseDoorway: waiting at the entry of the doorway named by the
	// phase's Detail (lme1's adr/sdr/adf/sdf).
	PhaseDoorway = "doorway"
	// PhaseRecolor: executing the recolouring module (behind SD^r).
	PhaseRecolor = "recolor"
	// PhaseCollect: collecting forks (or, before any doorway event,
	// whatever entry work the protocol does).
	PhaseCollect = "collect"
	// PhaseEat: inside the critical section.
	PhaseEat = "eat"
)

// The attempt outcomes.
const (
	// OutcomeAte: the attempt completed a critical section and exited.
	OutcomeAte = "ate"
	// OutcomeCrashed: the node crash-failed while the attempt was open.
	OutcomeCrashed = "crashed"
	// OutcomeOpen: the run ended with the attempt still in progress.
	OutcomeOpen = "open"
)

// MsgRef names one message by its sender and the sender's monotone
// per-node sequence number — the causal identity the transport stamps on
// send and carries through delivery.
type MsgRef struct {
	From core.NodeID `json:"from"`
	Seq  uint64      `json:"seq"`
	Msg  string      `json:"msg,omitempty"`
}

// Phase is one sub-interval of an attempt. Zero-length phases (opened
// and closed at the same instant, e.g. a doorway crossed within the
// entry call) are dropped.
type Phase struct {
	Name string `json:"name"`
	// Detail refines the name (the doorway for PhaseDoorway).
	Detail string   `json:"detail,omitempty"`
	Start  sim.Time `json:"start_us"`
	End    sim.Time `json:"end_us"`
	// UnblockedBy names the message delivery whose processing closed
	// the phase, when the closing transition happened at the instant of
	// a delivery to this node (the simulation is single-threaded, so
	// same-instant means caused-by). Absent when the phase was closed
	// by a timer, a link change or the run's end.
	UnblockedBy *MsgRef `json:"unblocked_by,omitempty"`
}

// Dur is the phase's length.
func (p Phase) Dur() sim.Time { return p.End - p.Start }

// Span is one CS attempt of one node: opened on thinking→hungry, closed
// on eating→thinking (OutcomeAte), on crash, or at the end of the run.
// A safety demotion (eating→hungry under mobility) does not close the
// attempt; it increments Demotions and resumes collection.
type Span struct {
	Node    core.NodeID `json:"node"`
	Attempt int         `json:"attempt"` // 1-based per node
	Start   sim.Time    `json:"start_us"`
	End     sim.Time    `json:"end_us"`
	Outcome string      `json:"outcome"`
	// Demotions counts eating→hungry reversals inside this attempt.
	Demotions int `json:"demotions,omitempty"`
	// Recolors counts completed recolouring runs inside this attempt.
	Recolors int     `json:"recolors,omitempty"`
	Phases   []Phase `json:"phases"`
}

// Dur is the attempt's total length.
func (s Span) Dur() sim.Time { return s.End - s.Start }

// PhaseDur sums the lengths of this attempt's phases with the given
// name ("doorway" sums across all doorways).
func (s Span) PhaseDur(name string) sim.Time {
	var total sim.Time
	for _, p := range s.Phases {
		if p.Name == name {
			total += p.Dur()
		}
	}
	return total
}

// Edge is one wait-for relation at an instant: From is blocked, To is
// the node it waits on. Why is "fork" (an unanswered fork request) or
// "doorway:<name>" (From at the entry of a doorway To is behind).
type Edge struct {
	From core.NodeID `json:"from"`
	To   core.NodeID `json:"to"`
	Why  string      `json:"why"`
}

// BlockedNode is one victim of a crash: a node whose open attempt was
// still transitively waiting on the crash site when measured.
type BlockedNode struct {
	Node core.NodeID `json:"node"`
	// Hop is the node's depth in the wait-for chain rooted at the
	// crashed node (1 = waited on it directly).
	Hop int `json:"hop"`
	// Dist is the node's hop distance from the crash site in the
	// communication graph — the paper's failure-locality measure.
	// -1 when the graph is unknown (offline traces without link events).
	Dist int `json:"dist"`
}

// CrashImpact is the empirical failure-locality attribution of one
// crash: every node whose span the crash measurably lengthened (open at
// the end of the run, hungry since before the measurement cutoff, and
// in the wait-for closure of the crash site), with the maxima the
// harness tables report.
type CrashImpact struct {
	Crashed core.NodeID   `json:"crashed"`
	At      sim.Time      `json:"at_us"`
	Blocked []BlockedNode `json:"blocked,omitempty"`
	// MaxHop is the deepest wait-chain, MaxDist the farthest blocked
	// node in communication-graph hops (the measured failure locality).
	// Both 0 when nothing was blocked.
	MaxHop  int `json:"max_hop"`
	MaxDist int `json:"max_dist"`
}

// PhaseStat aggregates one phase name across every finished span. The
// quantiles come from a streaming sketch (lme/run/v3): within
// metrics.DefaultGamma relative accuracy of the exact nearest-rank
// values, identical whether the spans were retained or folded online.
type PhaseStat struct {
	Name    string   `json:"name"`
	Count   int      `json:"count"`
	TotalUS sim.Time `json:"total_us"`
	MaxUS   sim.Time `json:"max_us"`
	P50US   sim.Time `json:"p50_us"`
	P95US   sim.Time `json:"p95_us"`
}

// Summary is the spans section of lme.Report (schema lme/run/v3): the
// attempt and phase aggregates plus the per-crash locality attribution.
// The Attempt* quantiles summarise closed-attempt durations.
type Summary struct {
	Attempts     int           `json:"attempts"`
	Ate          int           `json:"ate"`
	Crashed      int           `json:"crashed"`
	Open         int           `json:"open"`
	Demotions    int           `json:"demotions"`
	AttemptP50US sim.Time      `json:"attempt_p50_us"`
	AttemptP95US sim.Time      `json:"attempt_p95_us"`
	AttemptMaxUS sim.Time      `json:"attempt_max_us"`
	Phases       []PhaseStat   `json:"phases"`
	Crashes      []CrashImpact `json:"crashes,omitempty"`
}

// Summarize aggregates finished spans and crash impacts into the report
// section. Phase names are qualified with their detail ("doorway:sdf")
// and sorted. It is the batch form of the streaming fold: a collector
// in fold mode produces the identical Summary without retaining spans.
func Summarize(spans []Span, crashes []CrashImpact) Summary {
	agg := newAggregate()
	for i := range spans {
		agg.fold(&spans[i])
	}
	return agg.summary(crashes)
}
