package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"lme/internal/trace"
)

// differentialSpans covers the span shapes the collector can close: with
// and without optional counters, nil vs empty vs populated phase lists,
// message-closed and timer-closed phases, and strings needing escapes.
func differentialSpans() []Span {
	return []Span{
		{Node: 3, Attempt: 1, Start: 1000, End: 9000, Outcome: OutcomeAte, Phases: []Phase{
			{Name: PhaseDoorway, Detail: "adr", Start: 1000, End: 2500,
				UnblockedBy: &MsgRef{From: 7, Seq: 41, Msg: "fork"}},
			{Name: PhaseCollect, Start: 2500, End: 6000,
				UnblockedBy: &MsgRef{From: 0, Seq: 2}},
			{Name: PhaseEat, Start: 6000, End: 9000},
		}},
		{Node: 0, Attempt: 2, Start: 0, End: 0, Outcome: OutcomeOpen, Phases: nil},
		{Node: -1, Attempt: 3, Start: -5, End: 5, Outcome: OutcomeCrashed, Phases: []Phase{}},
		{Node: 12, Attempt: 900, Start: 1 << 40, End: 1<<40 + 7, Outcome: OutcomeAte,
			Demotions: 2, Recolors: 5, Phases: []Phase{
				{Name: PhaseRecolor, Start: 1 << 40, End: 1<<40 + 3},
			}},
		{Node: 1, Attempt: 1, Start: 1, End: 2, Outcome: `we "quoted" <&> crashed`, Phases: []Phase{
			{Name: "odd\nname", Detail: "tab\there", Start: 1, End: 2,
				UnblockedBy: &MsgRef{From: 1, Seq: 1, Msg: "m\x01sg"}},
		}},
	}
}

// TestSpanAppendJSONDifferential holds Span.AppendJSON (and through it
// Phase and MsgRef) to the encoding/json oracle byte for byte.
func TestSpanAppendJSONDifferential(t *testing.T) {
	for _, s := range differentialSpans() {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.AppendJSON(nil); !bytes.Equal(got, want) {
			t.Errorf("Span.AppendJSON diverged:\n got %s\nwant %s", got, want)
		}
	}
}

// TestEdgeAppendJSONDifferential covers the wait-for edge record.
func TestEdgeAppendJSONDifferential(t *testing.T) {
	for _, e := range []Edge{
		{From: 3, To: 7, Why: "fork"},
		{From: 0, To: -1, Why: "doorway:adr"},
		{From: 9, To: 9, Why: `why "not" <here>`},
	} {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.AppendJSON(nil); !bytes.Equal(got, want) {
			t.Errorf("Edge.AppendJSON diverged:\n got %s\nwant %s", got, want)
		}
	}
}

// TestPostmortemAppendJSONDifferential: the compact post-mortem encoding
// must match encoding/json, including ring events with a genuine peer 0
// and the null forms of the nil slices.
func TestPostmortemAppendJSONDifferential(t *testing.T) {
	pms := []Postmortem{
		{
			Schema: PostmortemSchema,
			Reason: "nodes 3 and 7 both eating",
			At:     123456,
			Ring: []trace.Event{
				{Seq: 1, At: 1000, Kind: trace.KindSend, Node: 3, Peer: 0, Msg: "fork", Size: 16, MsgSeq: 2},
				{Seq: 2, At: 1200, Kind: trace.KindState, Node: 7, Peer: trace.NoNode, Old: "hungry", New: "eating"},
			},
			Open:    differentialSpans()[:2],
			WaitFor: []Edge{{From: 3, To: 7, Why: "fork"}},
		},
		{Schema: PostmortemSchema, Reason: "empty", At: 0, Ring: []trace.Event{}, Open: []Span{}, WaitFor: []Edge{}},
		{Schema: PostmortemSchema, Reason: "nil slices", At: -1},
	}
	for _, pm := range pms {
		want, err := json.Marshal(pm)
		if err != nil {
			t.Fatal(err)
		}
		if got := pm.AppendJSON(nil); !bytes.Equal(got, want) {
			t.Errorf("Postmortem.AppendJSON diverged:\n got %s\nwant %s", got, want)
		}
	}
}

// TestWriteJSONLMatchesEncoder: the batched fast path must produce the
// byte stream the per-span json.Encoder produced.
func TestWriteJSONLMatchesEncoder(t *testing.T) {
	c := New()
	c.closed = differentialSpans()
	var got bytes.Buffer
	if err := c.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	for _, s := range c.closed {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("WriteJSONL diverged from the json.Encoder stream:\n got %q\nwant %q",
			got.String(), want.String())
	}
}

// TestWritePostmortemMatchesEncoder: the AppendJSON + json.Indent path
// must reproduce the old json.Encoder/SetIndent output byte for byte.
func TestWritePostmortemMatchesEncoder(t *testing.T) {
	c := New()
	feedAttempt := []trace.Event{
		{At: 100, Kind: trace.KindState, Node: 4, Peer: trace.NoNode, Old: "thinking", New: "hungry"},
		{At: 200, Kind: trace.KindDoorway, Node: 4, Peer: trace.NoNode, New: "enter", Detail: "adr"},
	}
	for i, e := range feedAttempt {
		e.Seq = uint64(i + 1)
		c.Feed(e)
	}
	ring := []trace.Event{
		{Seq: 9, At: 900, Kind: trace.KindSend, Node: 4, Peer: 0, Msg: "req", Size: 24, MsgSeq: 3},
	}
	var got bytes.Buffer
	if err := WritePostmortem(&got, "double eat", 950, ring, c); err != nil {
		t.Fatal(err)
	}
	pm := Postmortem{
		Schema: PostmortemSchema, Reason: "double eat", At: 950,
		Ring: ring, Open: c.OpenSpans(), WaitFor: c.WaitEdges(),
	}
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("WritePostmortem diverged from json.Encoder output:\n got %s\nwant %s",
			got.String(), want.String())
	}
	if !strings.HasSuffix(got.String(), "\n") {
		t.Fatal("post-mortem lost its trailing newline")
	}
}
