package span

import (
	"errors"
	"io"
	"sort"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/trace"
)

// errStreaming rejects per-span output from a fold-mode collector.
var errStreaming = errors.New("span: collector is streaming (fold mode); per-span records were not retained")

// dwStatus is one node's position relative to one doorway, as the event
// stream reports it: at the entry since enterSince, or behind since
// behindSince.
type dwStatus struct {
	name        string
	entering    bool
	behind      bool
	enterSince  sim.Time
	behindSince sim.Time
}

// nodeState is the Collector's per-node fold state.
type nodeState struct {
	id       core.NodeID
	crashed  bool
	open     *Span
	attempts int

	// current phase of the open attempt (appended to open.Phases when
	// closed; kept flat so growing the slice never invalidates it).
	curOpen   bool
	curName   string
	curDetail string
	curStart  sim.Time

	// lastDeliver is the most recent delivery to this node, for
	// same-instant causal attribution of phase closings.
	lastAt  sim.Time
	lastRef MsgRef
	hasLast bool

	// forkWait is the set of neighbours with an unanswered fork request
	// from this node (out-edges of the wait-for graph).
	forkWait map[core.NodeID]bool

	// dws tracks doorway positions, ordered by first appearance.
	dws []dwStatus
}

func (n *nodeState) doorway(name string) *dwStatus {
	for i := range n.dws {
		if n.dws[i].name == name {
			return &n.dws[i]
		}
	}
	n.dws = append(n.dws, dwStatus{name: name})
	return &n.dws[len(n.dws)-1]
}

// crashRec is one observed crash, pending attribution.
type crashRec struct {
	node core.NodeID
	at   sim.Time
}

// Collector folds the event stream into spans, the wait-for graph and
// the crash attribution. Zero value is not usable; call New (full
// retention) or NewStreaming (bounded-memory fold mode).
type Collector struct {
	now   sim.Time
	end   sim.Time
	nodes []*nodeState

	// retain keeps every closed span in closed; in streaming mode spans
	// are folded into agg at close time and discarded, so memory stays
	// O(nodes + phase names) regardless of run length. The aggregate is
	// maintained in both modes — identical either way, since Finalize's
	// sort only reorders what the order-independent fold consumes.
	retain bool
	agg    *aggregate

	closed  []Span
	crashes []crashRec

	// adj is the known communication graph as packed unordered pairs.
	// Seeded with the real initial topology when available (link events
	// keep it current); otherwise learned from traffic and link events,
	// which misses initial links that never carried a message.
	adj      map[uint64]bool
	adjKnown bool

	finalized bool
	impacts   []CrashImpact
}

// New creates an empty collector that retains every closed span
// (required for -spans-out / lmetrace / postmortem span listings).
func New() *Collector {
	return &Collector{adj: make(map[uint64]bool), agg: newAggregate(), retain: true}
}

// NewStreaming creates a collector in fold mode: closed spans collapse
// immediately into the per-phase/per-node aggregates and are discarded.
// Spans() stays empty and WriteJSONL refuses; Summary, OpenSpans,
// WaitEdges and the crash attribution are unaffected.
func NewStreaming() *Collector {
	return &Collector{adj: make(map[uint64]bool), agg: newAggregate()}
}

// Retaining reports whether closed spans are being kept.
func (c *Collector) Retaining() bool { return c.retain }

// Attach subscribes the collector to a live bus; every published event
// is folded as it happens.
func (c *Collector) Attach(bus *trace.Bus) { bus.Subscribe(c.Feed) }

// SeedLink records an initial communication link (Start's topology is
// silent on the bus). Seeding switches the collector from
// traffic-learned adjacency to the authoritative graph.
func (c *Collector) SeedLink(a, b core.NodeID) {
	c.adjKnown = true
	c.link(a, b, true)
}

func pairKey(a, b core.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func (c *Collector) link(a, b core.NodeID, up bool) {
	if a < 0 || b < 0 || a == b {
		return
	}
	if up {
		c.adj[pairKey(a, b)] = true
	} else {
		delete(c.adj, pairKey(a, b))
	}
}

// state grows the per-node table on demand (offline feeds learn n from
// the events themselves).
func (c *Collector) state(id core.NodeID) *nodeState {
	for int(id) >= len(c.nodes) {
		c.nodes = append(c.nodes, nil)
	}
	n := c.nodes[id]
	if n == nil {
		n = &nodeState{id: id, forkWait: make(map[core.NodeID]bool)}
		c.nodes[id] = n
	}
	return n
}

// Feed folds one event. Events must arrive in publication order.
func (c *Collector) Feed(e trace.Event) {
	if e.At > c.now {
		c.now = e.At
	}
	if e.Node < 0 {
		return
	}
	n := c.state(e.Node)
	switch e.Kind {
	case trace.KindState:
		c.onState(n, e)
	case trace.KindSend:
		if !c.adjKnown {
			c.link(e.Node, e.Peer, true)
		}
		if e.Msg == "req" && e.Peer >= 0 {
			n.forkWait[e.Peer] = true
		}
	case trace.KindDeliver:
		n.lastAt = e.At
		n.lastRef = MsgRef{From: e.Peer, Seq: e.MsgSeq, Msg: e.Msg}
		n.hasLast = true
		if e.Msg == "fork" && e.Peer >= 0 {
			delete(n.forkWait, e.Peer)
		}
	case trace.KindDoorway:
		c.onDoorway(n, e)
	case trace.KindRecolor:
		if n.open != nil {
			n.open.Recolors++
		}
	case trace.KindLinkUp:
		c.link(e.Node, e.Peer, true)
	case trace.KindLinkDown:
		c.link(e.Node, e.Peer, false)
		if e.Peer >= 0 {
			delete(n.forkWait, e.Peer)
			delete(c.state(e.Peer).forkWait, e.Node)
		}
	case trace.KindCrash:
		c.onCrash(n, e)
	}
}

// onState drives the attempt lifecycle off dining transitions.
func (c *Collector) onState(n *nodeState, e trace.Event) {
	switch e.New {
	case "hungry":
		if e.Old == "eating" {
			// Mobility demotion: the attempt survives, collection
			// restarts.
			if n.open != nil {
				n.open.Demotions++
				c.closePhase(n, e.At, nil)
				c.openPhase(n, PhaseCollect, "", e.At)
			}
			clearForkWait(n)
			return
		}
		n.attempts++
		n.open = &Span{Node: n.id, Attempt: n.attempts, Start: e.At, Outcome: OutcomeOpen}
		c.openPhase(n, PhaseCollect, "", e.At)
	case "eating":
		clearForkWait(n)
		if n.open != nil {
			c.closePhase(n, e.At, c.deliverRef(n, e.At))
			c.openPhase(n, PhaseEat, "", e.At)
		}
	case "thinking":
		clearForkWait(n)
		if n.open != nil {
			c.closePhase(n, e.At, nil)
			c.closeAttempt(n, e.At, OutcomeAte)
		}
	}
}

func clearForkWait(n *nodeState) {
	for k := range n.forkWait {
		delete(n.forkWait, k)
	}
}

// onDoorway drives both the doorway-wait phases and the doorway-position
// half of the wait-for graph.
func (c *Collector) onDoorway(n *nodeState, e trace.Event) {
	d := n.doorway(e.Detail)
	switch e.New {
	case "enter":
		d.entering, d.enterSince = true, e.At
		d.behind = false
		if n.open != nil {
			c.closePhase(n, e.At, nil)
			c.openPhase(n, PhaseDoorway, e.Detail, e.At)
		}
	case "cross":
		d.entering = false
		d.behind, d.behindSince = true, e.At
		if n.open != nil {
			by := c.deliverRef(n, e.At)
			c.closePhase(n, e.At, by)
			if e.Detail == "SD^r" {
				// Behind the synchronous recolouring doorway: the
				// recolouring module runs until AD^f entry begins.
				c.openPhase(n, PhaseRecolor, "", e.At)
			} else {
				c.openPhase(n, PhaseCollect, "", e.At)
			}
		}
	case "exit", "abort":
		d.entering = false
		d.behind = false
	}
}

func (c *Collector) onCrash(n *nodeState, e trace.Event) {
	if n.crashed {
		return
	}
	n.crashed = true
	c.crashes = append(c.crashes, crashRec{node: n.id, at: e.At})
	// The crashed node waits on nobody any more; its doorway positions
	// stay frozen — a crash behind a doorway is exactly what blocks the
	// neighbourhood.
	clearForkWait(n)
	if n.open != nil {
		c.closePhase(n, e.At, nil)
		c.closeAttempt(n, e.At, OutcomeCrashed)
	}
}

// deliverRef returns the causal reference when the transition at `at`
// happened while processing a delivery (same instant, single thread).
func (c *Collector) deliverRef(n *nodeState, at sim.Time) *MsgRef {
	if !n.hasLast || n.lastAt != at {
		return nil
	}
	ref := n.lastRef
	return &ref
}

func (c *Collector) openPhase(n *nodeState, name, detail string, at sim.Time) {
	n.curOpen, n.curName, n.curDetail, n.curStart = true, name, detail, at
}

// closePhase appends the current phase if it has positive length.
func (c *Collector) closePhase(n *nodeState, at sim.Time, by *MsgRef) {
	if !n.curOpen || n.open == nil {
		n.curOpen = false
		return
	}
	n.curOpen = false
	if at <= n.curStart {
		return
	}
	n.open.Phases = append(n.open.Phases, Phase{
		Name: n.curName, Detail: n.curDetail,
		Start: n.curStart, End: at, UnblockedBy: by,
	})
}

func (c *Collector) closeAttempt(n *nodeState, at sim.Time, outcome string) {
	s := n.open
	if s == nil {
		return
	}
	s.End = at
	s.Outcome = outcome
	c.agg.fold(s)
	if c.retain {
		c.closed = append(c.closed, *s)
	}
	n.open = nil
}

// Now reports the time of the latest folded event.
func (c *Collector) Now() sim.Time { return c.now }

// WaitEdges snapshots the wait-for graph at the current instant: fork
// edges (unanswered requests) plus doorway edges (From at the entry of
// a doorway a neighbour To is behind — including crashed neighbours,
// whose doorway positions are frozen at crash time: a node that died
// behind a doorway never exits it and blocks entrants forever). For
// asynchronous doorways (names starting "A", e.g. AD^r/AD^f) a
// behind-neighbour only blocks when it has been behind since before the
// entry began, since the entrant must observe each neighbour outside
// just once (sticky: the doorway seeds its seen-set from the last
// observations). Output is sorted by (From, To, Why).
func (c *Collector) WaitEdges() []Edge {
	nbrs := c.neighborLists()
	var out []Edge
	for _, n := range c.nodes {
		if n == nil || n.crashed {
			continue
		}
		for p := range n.forkWait {
			out = append(out, Edge{From: n.id, To: p, Why: "fork"})
		}
		for i := range n.dws {
			d := &n.dws[i]
			if !d.entering {
				continue
			}
			async := len(d.name) > 0 && (d.name[0] == 'A' || d.name[0] == 'a')
			for _, p := range nbrs[n.id] {
				pn := c.nodes[p]
				if pn == nil {
					continue
				}
				for j := range pn.dws {
					pd := &pn.dws[j]
					if pd.name != d.name || !pd.behind {
						continue
					}
					if async && pd.behindSince > d.enterSince {
						continue // observed outside since entry began
					}
					out = append(out, Edge{From: n.id, To: p, Why: "doorway:" + d.name})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Why < b.Why
	})
	return out
}

// neighborLists materialises the known adjacency as sorted per-node
// neighbour slices.
func (c *Collector) neighborLists() [][]core.NodeID {
	out := make([][]core.NodeID, len(c.nodes))
	for key := range c.adj {
		a := core.NodeID(key >> 32)
		b := core.NodeID(uint32(key))
		if int(a) < len(out) && int(b) < len(out) {
			out[a] = append(out[a], b)
			out[b] = append(out[b], a)
		}
	}
	for _, l := range out {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return out
}

// Finalize closes the run at `end`: crash impacts are attributed against
// the final wait-for graph, still-open attempts are closed with
// OutcomeOpen, and the span list is sorted by (node, attempt). Feed
// after Finalize is undefined.
func (c *Collector) Finalize(end sim.Time) {
	if c.finalized {
		return
	}
	c.finalized = true
	if end < c.now {
		end = c.now
	}
	c.end = end
	c.impacts = c.computeImpacts()
	for _, n := range c.nodes {
		if n == nil || n.open == nil {
			continue
		}
		c.closePhase(n, end, nil)
		c.closeAttempt(n, end, OutcomeOpen)
	}
	sort.Slice(c.closed, func(i, j int) bool {
		a, b := c.closed[i], c.closed[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Attempt < b.Attempt
	})
}

// computeImpacts walks the final wait-for graph backwards from every
// crash site. A node is attributed to a crash when its attempt is still
// open, began before the measurement cutoff (a third of the post-crash
// horizon, mirroring the harness's starvation probe), and transitively
// waits on the crashed node.
func (c *Collector) computeImpacts() []CrashImpact {
	if len(c.crashes) == 0 {
		return nil
	}
	edges := c.WaitEdges()
	rev := make(map[core.NodeID][]core.NodeID)
	for _, e := range edges {
		rev[e.To] = append(rev[e.To], e.From)
	}
	nbrs := c.neighborLists()
	out := make([]CrashImpact, 0, len(c.crashes))
	for _, cr := range c.crashes {
		cutoff := cr.at + (c.end-cr.at)/3
		hop := map[core.NodeID]int{cr.node: 0}
		queue := []core.NodeID{cr.node}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range rev[x] {
				if _, seen := hop[y]; !seen {
					hop[y] = hop[x] + 1
					queue = append(queue, y)
				}
			}
		}
		imp := CrashImpact{Crashed: cr.node, At: cr.at}
		ids := make([]core.NodeID, 0, len(hop))
		for id := range hop {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		dist := c.bfsDist(cr.node, nbrs)
		for _, id := range ids {
			if id == cr.node {
				continue
			}
			n := c.nodes[id]
			if n == nil || n.open == nil || n.open.Start > cutoff {
				continue
			}
			b := BlockedNode{Node: id, Hop: hop[id], Dist: -1}
			if int(id) < len(dist) && dist[id] >= 0 {
				b.Dist = dist[id]
			}
			imp.Blocked = append(imp.Blocked, b)
			if b.Hop > imp.MaxHop {
				imp.MaxHop = b.Hop
			}
			if b.Dist > imp.MaxDist {
				imp.MaxDist = b.Dist
			}
		}
		out = append(out, imp)
	}
	return out
}

// bfsDist computes communication-graph hop distances from src (-1 =
// unreachable).
func (c *Collector) bfsDist(src core.NodeID, nbrs [][]core.NodeID) []int {
	dist := make([]int, len(c.nodes))
	for i := range dist {
		dist[i] = -1
	}
	if int(src) >= len(dist) {
		return dist
	}
	dist[src] = 0
	queue := []core.NodeID{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range nbrs[x] {
			if dist[y] < 0 {
				dist[y] = dist[x] + 1
				queue = append(queue, y)
			}
		}
	}
	return dist
}

// Spans returns every finished span, sorted by (node, attempt) after
// Finalize. Empty in streaming mode.
func (c *Collector) Spans() []Span { return c.closed }

// Impacts returns the per-crash attributions computed by Finalize.
func (c *Collector) Impacts() []CrashImpact { return c.impacts }

// Summary freezes the streaming aggregate (maintained in both modes)
// and the impacts into the report section — identical to
// Summarize(Spans(), Impacts()) when spans are retained.
func (c *Collector) Summary() Summary { return c.agg.summary(c.impacts) }

// NodeAggregates returns the bounded per-node fold of closed attempts,
// sorted by node ID. Available in both modes.
func (c *Collector) NodeAggregates() []NodeAggregate { return c.agg.nodeAggregates() }

// OpenCount reports how many attempts are currently in progress (live
// telemetry's open-span gauge; O(nodes), no allocation).
func (c *Collector) OpenCount() int {
	open := 0
	for _, n := range c.nodes {
		if n != nil && n.open != nil {
			open++
		}
	}
	return open
}

// OpenSpans snapshots the attempts still in progress (flight-recorder
// material): each with its current phase closed at the latest event time
// and OutcomeOpen, sorted by node. The collector is not mutated.
func (c *Collector) OpenSpans() []Span {
	var out []Span
	for _, n := range c.nodes {
		if n == nil || n.open == nil {
			continue
		}
		s := *n.open
		s.Phases = append([]Phase(nil), s.Phases...)
		if n.curOpen && c.now > n.curStart {
			s.Phases = append(s.Phases, Phase{
				Name: n.curName, Detail: n.curDetail,
				Start: n.curStart, End: c.now,
			})
		}
		s.End = c.now
		out = append(out, s)
	}
	return out
}

// WriteJSONL writes every finished span as one JSON object per line.
// After Finalize the output is deterministic for a deterministic run:
// same seed, byte-identical file. Spans are encoded with the
// hand-written AppendJSON and handed to the writer in batches. A
// streaming collector has nothing to write and returns an error rather
// than an empty file.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if !c.retain {
		return errStreaming
	}
	const batch = 32 << 10
	buf := make([]byte, 0, batch+4096)
	for _, s := range c.closed {
		buf = s.AppendJSON(buf)
		buf = append(buf, '\n')
		if len(buf) >= batch {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
