package span

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/trace"
)

// foldScenario is a multi-node event stream exercising every fold path:
// completed attempts, demotions, doorway and recolor phases, a crash
// mid-attempt, and an attempt left open at the end.
func foldScenario() []trace.Event {
	var evs []trace.Event
	at := sim.Time(0)
	// Nodes 0..3 complete several attempts of varying length.
	for round := 0; round < 5; round++ {
		for id := core.NodeID(0); id < 4; id++ {
			at += 100
			evs = append(evs,
				evState(id, "thinking", "hungry", at),
				evDoorway(id, "enter", "SD^r", at+50),
				evDoorway(id, "cross", "SD^r", at+200+sim.Time(id)*37),
				evDoorway(id, "enter", "AD^f", at+400),
				evDoorway(id, "cross", "AD^f", at+500),
				evState(id, "hungry", "eating", at+600+sim.Time(round)*91),
				evState(id, "eating", "thinking", at+900+sim.Time(round)*91),
			)
			at += 900 + sim.Time(round)*91
		}
	}
	// Node 1: a demotion inside an attempt.
	evs = append(evs,
		evState(1, "thinking", "hungry", at+100),
		evState(1, "hungry", "eating", at+300),
		evState(1, "eating", "hungry", at+350), // demotion
		evState(1, "hungry", "eating", at+700),
		evState(1, "eating", "thinking", at+800),
	)
	// Node 2 crashes mid-attempt; node 3 waits on it and stays open.
	evs = append(evs,
		evState(2, "thinking", "hungry", at+900),
		evSend(3, 2, "req", 77, at+950),
		evState(3, "thinking", "hungry", at+950),
		evCrash(2, at+1000),
	)
	return evs
}

// TestStreamingFoldMatchesRetained pins the core fold-mode guarantee:
// a streaming collector produces a Summary and NodeAggregates identical
// to the retaining collector's over the same event stream, while
// retaining no spans.
func TestStreamingFoldMatchesRetained(t *testing.T) {
	evs := foldScenario()

	retained := New()
	retained.SeedLink(2, 3)
	streaming := NewStreaming()
	streaming.SeedLink(2, 3)
	for _, e := range evs {
		retained.Feed(e)
		streaming.Feed(e)
	}
	end := retained.Now() + 10_000
	retained.Finalize(end)
	streaming.Finalize(end)

	if !retained.Retaining() || streaming.Retaining() {
		t.Fatal("retention flags wrong")
	}
	if len(retained.Spans()) == 0 {
		t.Fatal("scenario closed no spans")
	}
	if got := streaming.Spans(); len(got) != 0 {
		t.Fatalf("streaming collector kept %d spans", len(got))
	}

	want := retained.Summary()
	got := streaming.Summary()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("summaries diverged:\nretained  %+v\nstreaming %+v", want, got)
	}
	// The retained summary in turn matches the batch Summarize — the
	// three paths (batch, retained-online, streaming-online) are one fold.
	if batch := Summarize(retained.Spans(), retained.Impacts()); !reflect.DeepEqual(batch, want) {
		t.Fatalf("batch Summarize diverged:\nbatch    %+v\nretained %+v", batch, want)
	}
	if na, nb := retained.NodeAggregates(), streaming.NodeAggregates(); !reflect.DeepEqual(na, nb) {
		t.Fatalf("node aggregates diverged:\nretained  %+v\nstreaming %+v", na, nb)
	}
}

// TestStreamingCollectorRefusesJSONL: fold mode must fail loudly rather
// than write an empty span file.
func TestStreamingCollectorRefusesJSONL(t *testing.T) {
	c := NewStreaming()
	feed(c, evState(0, "thinking", "hungry", 10), evState(0, "hungry", "eating", 20),
		evState(0, "eating", "thinking", 30))
	c.Finalize(100)
	if err := c.WriteJSONL(io.Discard); err == nil {
		t.Fatal("streaming WriteJSONL succeeded")
	}
	var buf bytes.Buffer
	if err := New().WriteJSONL(&buf); err != nil {
		t.Fatalf("retaining WriteJSONL: %v", err)
	}
}

// TestOpenCount tracks the live open-attempt gauge through a lifecycle.
func TestOpenCount(t *testing.T) {
	c := NewStreaming()
	if c.OpenCount() != 0 {
		t.Fatal("fresh collector has open spans")
	}
	feed(c,
		evState(0, "thinking", "hungry", 10),
		evState(1, "thinking", "hungry", 20),
	)
	if c.OpenCount() != 2 {
		t.Fatalf("open = %d, want 2", c.OpenCount())
	}
	feed(c,
		evState(0, "hungry", "eating", 30),
		evState(0, "eating", "thinking", 40),
	)
	if c.OpenCount() != 1 {
		t.Fatalf("open = %d, want 1", c.OpenCount())
	}
}

// TestNodeAggregates pins the per-node fold: outcomes, demotions and
// busy time per node.
func TestNodeAggregates(t *testing.T) {
	c := NewStreaming()
	feed(c,
		evState(0, "thinking", "hungry", 100),
		evState(0, "hungry", "eating", 150),
		evState(0, "eating", "hungry", 160), // demotion
		evState(0, "hungry", "eating", 200),
		evState(0, "eating", "thinking", 250), // attempt 1: 100→250
		evState(2, "thinking", "hungry", 300),
		evCrash(2, 400),
	)
	c.Finalize(500)
	got := c.NodeAggregates()
	want := []NodeAggregate{
		{Node: 0, Attempts: 1, Ate: 1, Demotions: 1, BusyUS: 150},
		{Node: 2, Attempts: 1, Crashed: 1, BusyUS: 100},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("node aggregates = %+v, want %+v", got, want)
	}
}
