// Schema-compatibility golden tests: every trace kind, a fully-populated
// span record and a postmortem dump round-trip through their JSONL
// encodings into hand-pinned mirror structs decoded with
// DisallowUnknownFields. Adding, renaming or removing a wire field fails
// here first, so consumers of recorded traces (cmd/lmetrace, CI
// artifacts) never meet an unannounced schema drift — update the mirrors
// and bump the schema constant deliberately.
package span

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"lme/internal/trace"
)

// eventWire pins the JSONL field set of trace.Event (schema names, not Go
// names). Pointer fields distinguish absent from zero.
type eventWire struct {
	Seq    uint64 `json:"seq"`
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Node   int32  `json:"node"`
	Peer   *int32 `json:"peer"`
	Msg    string `json:"msg"`
	Size   int    `json:"size"`
	MsgSeq uint64 `json:"mseq"`
	Delay  int64  `json:"delay"`
	Old    string `json:"old"`
	New    string `json:"new"`
	Detail string `json:"detail"`
}

// phaseWire, msgRefWire, spanWire, edgeWire, blockedWire, impactWire and
// postmortemWire pin the lme/span/v1 and lme/postmortem/v1 layouts.
type msgRefWire struct {
	From int32  `json:"from"`
	Seq  uint64 `json:"seq"`
	Msg  string `json:"msg"`
}

type phaseWire struct {
	Name        string      `json:"name"`
	Detail      string      `json:"detail"`
	Start       int64       `json:"start_us"`
	End         int64       `json:"end_us"`
	UnblockedBy *msgRefWire `json:"unblocked_by"`
}

type spanWire struct {
	Node      int32       `json:"node"`
	Attempt   int         `json:"attempt"`
	Start     int64       `json:"start_us"`
	End       int64       `json:"end_us"`
	Outcome   string      `json:"outcome"`
	Demotions int         `json:"demotions"`
	Recolors  int         `json:"recolors"`
	Phases    []phaseWire `json:"phases"`
}

type edgeWire struct {
	From int32  `json:"from"`
	To   int32  `json:"to"`
	Why  string `json:"why"`
}

type postmortemWire struct {
	Schema  string      `json:"schema"`
	Reason  string      `json:"reason"`
	At      int64       `json:"at_us"`
	Ring    []eventWire `json:"ring"`
	Open    []spanWire  `json:"open_spans"`
	WaitFor []edgeWire  `json:"wait_for"`
}

// phaseStatWire, blockedWire, impactWire and summaryWire pin the folded
// spans section of lme/run/v3 (the Summary the streaming fold emits).
type phaseStatWire struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalUS int64  `json:"total_us"`
	MaxUS   int64  `json:"max_us"`
	P50US   int64  `json:"p50_us"`
	P95US   int64  `json:"p95_us"`
}

type blockedWire struct {
	Node int32 `json:"node"`
	Hop  int   `json:"hop"`
	Dist int   `json:"dist"`
}

type impactWire struct {
	Crashed int32         `json:"crashed"`
	At      int64         `json:"at_us"`
	Blocked []blockedWire `json:"blocked"`
	MaxHop  int           `json:"max_hop"`
	MaxDist int           `json:"max_dist"`
}

type summaryWire struct {
	Attempts     int             `json:"attempts"`
	Ate          int             `json:"ate"`
	Crashed      int             `json:"crashed"`
	Open         int             `json:"open"`
	Demotions    int             `json:"demotions"`
	AttemptP50US int64           `json:"attempt_p50_us"`
	AttemptP95US int64           `json:"attempt_p95_us"`
	AttemptMaxUS int64           `json:"attempt_max_us"`
	Phases       []phaseStatWire `json:"phases"`
	Crashes      []impactWire    `json:"crashes"`
}

// strictDecode unmarshals data into target, failing on any field the
// mirror struct does not declare.
func strictDecode(t *testing.T, data []byte, target any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(target); err != nil {
		t.Fatalf("schema drift: %v\nencoded: %s", err, data)
	}
}

// sampleEvents returns one fully-populated event per kind.
func sampleEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.KindSend, At: 10, Node: 1, Peer: 2, Msg: "req", Size: 16, MsgSeq: 3},
		{Kind: trace.KindDeliver, At: 20, Node: 2, Peer: 1, Msg: "req", Size: 16, MsgSeq: 3, Delay: 10},
		{Kind: trace.KindDrop, At: 30, Node: 2, Peer: 1, Msg: "fork", Size: 8, MsgSeq: 4, Detail: "link down"},
		{Kind: trace.KindState, At: 40, Node: 3, Peer: trace.NoNode, Old: "thinking", New: "hungry"},
		{Kind: trace.KindLinkUp, At: 50, Node: 0, Peer: 4, Detail: "4"},
		{Kind: trace.KindLinkDown, At: 60, Node: 0, Peer: 4},
		{Kind: trace.KindMoveStart, At: 70, Node: 4, Peer: trace.NoNode, Detail: "(0.10,0.20)"},
		{Kind: trace.KindMoveStop, At: 80, Node: 4, Peer: trace.NoNode, Detail: "(0.30,0.40)"},
		{Kind: trace.KindCrash, At: 90, Node: 5, Peer: trace.NoNode},
		{Kind: trace.KindDoorway, At: 100, Node: 6, Peer: trace.NoNode, New: "cross", Detail: "SD^r"},
		{Kind: trace.KindRecolor, At: 110, Node: 6, Peer: trace.NoNode, Detail: "2"},
		{Kind: trace.KindNote, At: 120, Node: 7, Peer: trace.NoNode, Detail: "demoted while eating"},
	}
}

// TestEventSchemaRoundTrip encodes one event of every kind, strict-decodes
// it against the pinned mirror, and round-trips it back through
// trace.Event for value equality (including the NoNode/peer-0 sentinel
// handling).
func TestEventSchemaRoundTrip(t *testing.T) {
	events := sampleEvents()
	if want := trace.Kinds(); len(events) != len(want) {
		t.Fatalf("sample set covers %d kinds, schema has %d — extend sampleEvents", len(events), len(want))
	}
	covered := map[trace.Kind]bool{}
	for _, e := range events {
		covered[e.Kind] = true
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		var wire eventWire
		strictDecode(t, data, &wire)
		if wire.Kind != e.Kind.String() {
			t.Fatalf("kind %v encoded as %q", e.Kind, wire.Kind)
		}
		var back trace.Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != e {
			t.Fatalf("round trip mutated the event:\n in  %+v\n out %+v", e, back)
		}
	}
	for _, k := range trace.Kinds() {
		if !covered[k] {
			t.Fatalf("kind %v has no sample event", k)
		}
	}
	// A genuine peer 0 must survive (the sentinel is NoNode, not 0).
	e := trace.Event{Kind: trace.KindSend, At: 1, Node: 3, Peer: 0, Msg: "req", MsgSeq: 1}
	data, _ := json.Marshal(e)
	var back trace.Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Peer != 0 {
		t.Fatalf("peer 0 decoded as %d", back.Peer)
	}
}

// sampleSpan is a record with every field populated.
func sampleSpan() Span {
	return Span{
		Node: 4, Attempt: 2, Start: 1000, End: 9000,
		Outcome: OutcomeAte, Demotions: 1, Recolors: 2,
		Phases: []Phase{
			{Name: PhaseDoorway, Detail: "AD^r", Start: 1000, End: 2000},
			{Name: PhaseCollect, Start: 2000, End: 5000,
				UnblockedBy: &MsgRef{From: 7, Seq: 12, Msg: "fork"}},
			{Name: PhaseEat, Start: 5000, End: 9000},
		},
	}
}

// TestSpanSchemaRoundTrip pins the lme/span/v1 JSONL record layout.
func TestSpanSchemaRoundTrip(t *testing.T) {
	s := sampleSpan()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var wire spanWire
	strictDecode(t, data, &wire)
	if wire.Outcome != OutcomeAte || len(wire.Phases) != 3 || wire.Phases[1].UnblockedBy == nil {
		t.Fatalf("mirror = %+v", wire)
	}
	var back Span
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Fatalf("round trip mutated the span:\n in  %+v\n out %+v", s, back)
	}
}

// TestSummarySchemaRoundTrip pins the lme/run/v3 folded-span section: a
// fully-populated Summary (quantile fields, phase stats, crash
// attribution) built by the real streaming fold, strict-decoded against
// the pinned mirror and round-tripped for value equality.
func TestSummarySchemaRoundTrip(t *testing.T) {
	c := NewStreaming()
	c.SeedLink(0, 1)
	c.SeedLink(1, 2)
	feed(c,
		evState(0, "thinking", "hungry", 10),
		evDoorway(0, "enter", "SD^r", 20),
		evDoorway(0, "cross", "SD^r", 120),
		evState(0, "hungry", "eating", 300),
		evState(0, "eating", "hungry", 350), // demotion
		evState(0, "hungry", "eating", 500),
		evState(0, "eating", "thinking", 700),
		evState(2, "thinking", "hungry", 800),
		evState(1, "thinking", "hungry", 810),
		evSend(1, 2, "req", 9, 820),
		evCrash(2, 900),
	)
	c.Finalize(4000)
	sum := c.Summary()
	if sum.Attempts == 0 || sum.Demotions == 0 || len(sum.Phases) == 0 ||
		len(sum.Crashes) == 0 || sum.AttemptMaxUS == 0 {
		t.Fatalf("scenario under-populates the summary: %+v", sum)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var wire summaryWire
	strictDecode(t, data, &wire)
	if wire.Attempts != sum.Attempts || len(wire.Phases) != len(sum.Phases) ||
		len(wire.Crashes) != 1 || wire.Crashes[0].Crashed != 2 {
		t.Fatalf("mirror = %+v", wire)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sum) {
		t.Fatalf("round trip mutated the summary:\n in  %+v\n out %+v", sum, back)
	}
}

// TestPostmortemSchemaRoundTrip assembles a dump via WritePostmortem (the
// flight recorder's real writer) and strict-decodes it against the pinned
// lme/postmortem/v1 mirror.
func TestPostmortemSchemaRoundTrip(t *testing.T) {
	c := New()
	c.SeedLink(0, 1)
	feed(c,
		evState(0, "thinking", "hungry", 10),
		evSend(0, 1, "req", 1, 20),
	)
	var buf bytes.Buffer
	err := WritePostmortem(&buf, "nodes 0 and 1 eating simultaneously at 30", 30,
		sampleEvents(), c)
	if err != nil {
		t.Fatal(err)
	}
	var wire postmortemWire
	strictDecode(t, buf.Bytes(), &wire)
	if wire.Schema != PostmortemSchema {
		t.Fatalf("schema = %q", wire.Schema)
	}
	if len(wire.Ring) != len(sampleEvents()) || len(wire.Open) != 1 || len(wire.WaitFor) != 1 {
		t.Fatalf("dump sections: ring=%d open=%d waitfor=%d",
			len(wire.Ring), len(wire.Open), len(wire.WaitFor))
	}
	var back Postmortem
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Reason == "" || back.At != 30 || back.Open[0].Node != 0 {
		t.Fatalf("postmortem = %+v", back)
	}
}
