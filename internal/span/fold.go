// The streaming span fold: every closed span collapses into bounded
// per-phase / per-node / per-outcome aggregates the instant it closes,
// so a collector in fold mode never retains span records and its memory
// is O(nodes + phase names + sketch buckets) — independent of run
// length. Summarize is the batch application of the same fold, which is
// what keeps the retained and streaming paths bit-identical.
package span

import (
	"sort"

	"lme/internal/core"
	"lme/internal/metrics"
	"lme/internal/sim"
)

// phaseAgg is the online aggregate of one qualified phase name.
type phaseAgg struct {
	count int
	total sim.Time
	max   sim.Time
	dur   *metrics.Sketch
}

// nodeAgg is the online per-node aggregate of closed attempts.
type nodeAgg struct {
	attempts  int
	ate       int
	crashed   int
	open      int
	demotions int
	busy      sim.Time
}

// NodeAggregate is the bounded per-node view of the streaming fold: how
// many attempts a node closed with each outcome, its demotion count and
// its total closed-attempt (busy) time.
type NodeAggregate struct {
	Node      core.NodeID `json:"node"`
	Attempts  int         `json:"attempts"`
	Ate       int         `json:"ate"`
	Crashed   int         `json:"crashed"`
	Open      int         `json:"open"`
	Demotions int         `json:"demotions,omitempty"`
	BusyUS    sim.Time    `json:"busy_us"`
}

// aggregate accumulates the whole folded-span section of the report.
type aggregate struct {
	attempts  int
	ate       int
	crashed   int
	open      int
	demotions int

	dur    *metrics.Sketch // closed-attempt durations
	phases map[string]*phaseAgg
	nodes  map[core.NodeID]*nodeAgg
}

func newAggregate() *aggregate {
	return &aggregate{
		dur:    metrics.NewSketch(),
		phases: make(map[string]*phaseAgg),
		nodes:  make(map[core.NodeID]*nodeAgg),
	}
}

// fold collapses one finished span into the aggregate. The span may be
// discarded afterwards.
func (a *aggregate) fold(s *Span) {
	a.attempts++
	na := a.nodes[s.Node]
	if na == nil {
		na = &nodeAgg{}
		a.nodes[s.Node] = na
	}
	na.attempts++
	switch s.Outcome {
	case OutcomeAte:
		a.ate++
		na.ate++
	case OutcomeCrashed:
		a.crashed++
		na.crashed++
	case OutcomeOpen:
		a.open++
		na.open++
	}
	a.demotions += s.Demotions
	na.demotions += s.Demotions
	a.dur.Observe(s.Dur())
	na.busy += s.Dur()
	for _, p := range s.Phases {
		name := p.Name
		if p.Detail != "" {
			name += ":" + p.Detail
		}
		st := a.phases[name]
		if st == nil {
			st = &phaseAgg{dur: metrics.NewSketch()}
			a.phases[name] = st
		}
		d := p.Dur()
		st.count++
		st.total += d
		if d > st.max {
			st.max = d
		}
		st.dur.Observe(d)
	}
}

// summary freezes the aggregate into the report section.
func (a *aggregate) summary(crashes []CrashImpact) Summary {
	sum := Summary{
		Attempts:  a.attempts,
		Ate:       a.ate,
		Crashed:   a.crashed,
		Open:      a.open,
		Demotions: a.demotions,
		Crashes:   crashes,
	}
	if a.dur.Count() > 0 {
		sum.AttemptP50US = a.dur.Quantile(0.50)
		sum.AttemptP95US = a.dur.Quantile(0.95)
		sum.AttemptMaxUS = sim.Time(a.dur.Max())
	}
	sum.Phases = make([]PhaseStat, 0, len(a.phases))
	for name, st := range a.phases {
		sum.Phases = append(sum.Phases, PhaseStat{
			Name:    name,
			Count:   st.count,
			TotalUS: st.total,
			MaxUS:   st.max,
			P50US:   st.dur.Quantile(0.50),
			P95US:   st.dur.Quantile(0.95),
		})
	}
	sort.Slice(sum.Phases, func(i, j int) bool { return sum.Phases[i].Name < sum.Phases[j].Name })
	return sum
}

// nodeAggregates freezes the per-node fold, sorted by node ID.
func (a *aggregate) nodeAggregates() []NodeAggregate {
	out := make([]NodeAggregate, 0, len(a.nodes))
	for id, na := range a.nodes {
		out = append(out, NodeAggregate{
			Node:      id,
			Attempts:  na.attempts,
			Ate:       na.ate,
			Crashed:   na.crashed,
			Open:      na.open,
			Demotions: na.demotions,
			BusyUS:    na.busy,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
