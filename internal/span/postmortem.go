package span

import (
	"bytes"
	"encoding/json"
	"io"

	"lme/internal/sim"
	"lme/internal/trace"
)

// PostmortemSchema identifies the flight recorder's dump layout; bump on
// breaking changes.
const PostmortemSchema = "lme/postmortem/v1"

// Postmortem is the flight recorder's dump, written automatically when
// the safety checker trips: the tail of the trace ring (the last events
// leading up to the violation), every attempt still in flight, and the
// wait-for graph at the instant of the violation.
type Postmortem struct {
	Schema  string        `json:"schema"`
	Reason  string        `json:"reason"`
	At      sim.Time      `json:"at_us"`
	Ring    []trace.Event `json:"ring"`
	Open    []Span        `json:"open_spans"`
	WaitFor []Edge        `json:"wait_for"`
}

// WritePostmortem assembles and writes the dump as indented JSON. The
// collector is read, not mutated, so the run can continue (later
// violations are typically echoes of the first). The document is
// encoded compactly with AppendJSON and reindented with json.Indent —
// byte-identical to the json.Encoder/SetIndent output this replaced.
func WritePostmortem(w io.Writer, reason string, at sim.Time, ring []trace.Event, c *Collector) error {
	pm := Postmortem{
		Schema:  PostmortemSchema,
		Reason:  reason,
		At:      at,
		Ring:    ring,
		Open:    c.OpenSpans(),
		WaitFor: c.WaitEdges(),
	}
	compact := pm.AppendJSON(nil)
	var out bytes.Buffer
	out.Grow(2 * len(compact))
	if err := json.Indent(&out, compact, "", "  "); err != nil {
		return err
	}
	out.WriteByte('\n')
	_, err := w.Write(out.Bytes())
	return err
}
