// Zero-reflection JSON encoding for span and post-mortem records,
// mirroring internal/trace's encode.go: hand-written append-style
// encoders that are byte-identical to what encoding/json produces for
// the same values, so the per-seed span JSONL files and post-mortem
// dumps never change while the reflection cost disappears from the
// write path. The differential tests in encode_test.go hold the two
// encoders together; trace.AppendJSONString supplies the string escaping.
package span

import (
	"strconv"

	"lme/internal/trace"
)

// AppendJSON appends the message reference's JSON object encoding.
func (m MsgRef) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"from":`...)
	buf = strconv.AppendInt(buf, int64(m.From), 10)
	buf = append(buf, `,"seq":`...)
	buf = strconv.AppendUint(buf, m.Seq, 10)
	if m.Msg != "" {
		buf = append(buf, `,"msg":`...)
		buf = trace.AppendJSONString(buf, m.Msg)
	}
	return append(buf, '}')
}

// AppendJSON appends the phase's JSON object encoding.
func (p Phase) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"name":`...)
	buf = trace.AppendJSONString(buf, p.Name)
	if p.Detail != "" {
		buf = append(buf, `,"detail":`...)
		buf = trace.AppendJSONString(buf, p.Detail)
	}
	buf = append(buf, `,"start_us":`...)
	buf = strconv.AppendInt(buf, int64(p.Start), 10)
	buf = append(buf, `,"end_us":`...)
	buf = strconv.AppendInt(buf, int64(p.End), 10)
	if p.UnblockedBy != nil {
		buf = append(buf, `,"unblocked_by":`...)
		buf = p.UnblockedBy.AppendJSON(buf)
	}
	return append(buf, '}')
}

// AppendJSON appends the span's JSON object encoding — one line of the
// span JSONL schema. A nil Phases slice encodes as null, an empty one as
// [], exactly as encoding/json treats the field (it has no omitempty).
func (s Span) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"node":`...)
	buf = strconv.AppendInt(buf, int64(s.Node), 10)
	buf = append(buf, `,"attempt":`...)
	buf = strconv.AppendInt(buf, int64(s.Attempt), 10)
	buf = append(buf, `,"start_us":`...)
	buf = strconv.AppendInt(buf, int64(s.Start), 10)
	buf = append(buf, `,"end_us":`...)
	buf = strconv.AppendInt(buf, int64(s.End), 10)
	buf = append(buf, `,"outcome":`...)
	buf = trace.AppendJSONString(buf, s.Outcome)
	if s.Demotions != 0 {
		buf = append(buf, `,"demotions":`...)
		buf = strconv.AppendInt(buf, int64(s.Demotions), 10)
	}
	if s.Recolors != 0 {
		buf = append(buf, `,"recolors":`...)
		buf = strconv.AppendInt(buf, int64(s.Recolors), 10)
	}
	buf = append(buf, `,"phases":`...)
	if s.Phases == nil {
		buf = append(buf, `null`...)
	} else {
		buf = append(buf, '[')
		for i, p := range s.Phases {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = p.AppendJSON(buf)
		}
		buf = append(buf, ']')
	}
	return append(buf, '}')
}

// AppendJSON appends the wait-for edge's JSON object encoding.
func (e Edge) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"from":`...)
	buf = strconv.AppendInt(buf, int64(e.From), 10)
	buf = append(buf, `,"to":`...)
	buf = strconv.AppendInt(buf, int64(e.To), 10)
	buf = append(buf, `,"why":`...)
	buf = trace.AppendJSONString(buf, e.Why)
	return append(buf, '}')
}

// appendEvents appends a []trace.Event encoded as encoding/json would:
// null for nil, otherwise the events' own AppendJSON forms.
func appendEvents(buf []byte, evs []trace.Event) []byte {
	if evs == nil {
		return append(buf, `null`...)
	}
	buf = append(buf, '[')
	for i, e := range evs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = e.AppendJSON(buf)
	}
	return append(buf, ']')
}

// AppendJSON appends the post-mortem's compact JSON object encoding
// (WritePostmortem indents it afterwards). None of the slice fields
// carry omitempty, so nil encodes as null and empty as [].
func (pm Postmortem) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"schema":`...)
	buf = trace.AppendJSONString(buf, pm.Schema)
	buf = append(buf, `,"reason":`...)
	buf = trace.AppendJSONString(buf, pm.Reason)
	buf = append(buf, `,"at_us":`...)
	buf = strconv.AppendInt(buf, int64(pm.At), 10)
	buf = append(buf, `,"ring":`...)
	buf = appendEvents(buf, pm.Ring)
	buf = append(buf, `,"open_spans":`...)
	if pm.Open == nil {
		buf = append(buf, `null`...)
	} else {
		buf = append(buf, '[')
		for i, s := range pm.Open {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = s.AppendJSON(buf)
		}
		buf = append(buf, ']')
	}
	buf = append(buf, `,"wait_for":`...)
	if pm.WaitFor == nil {
		buf = append(buf, `null`...)
	} else {
		buf = append(buf, '[')
		for i, e := range pm.WaitFor {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = e.AppendJSON(buf)
		}
		buf = append(buf, ']')
	}
	return append(buf, '}')
}
