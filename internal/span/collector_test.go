package span

import (
	"bytes"
	"strings"
	"testing"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/trace"
)

// ev builders keep the fold tests readable: each returns one event with
// only the fields the collector consults.

func evState(node core.NodeID, old, new string, at sim.Time) trace.Event {
	return trace.Event{Kind: trace.KindState, Node: node, Peer: trace.NoNode, Old: old, New: new, At: at}
}

func evSend(from, to core.NodeID, msg string, seq uint64, at sim.Time) trace.Event {
	return trace.Event{Kind: trace.KindSend, Node: from, Peer: to, Msg: msg, MsgSeq: seq, At: at}
}

func evDeliver(to, from core.NodeID, msg string, seq uint64, at sim.Time) trace.Event {
	return trace.Event{Kind: trace.KindDeliver, Node: to, Peer: from, Msg: msg, MsgSeq: seq, At: at}
}

func evDoorway(node core.NodeID, action, name string, at sim.Time) trace.Event {
	return trace.Event{Kind: trace.KindDoorway, Node: node, Peer: trace.NoNode, New: action, Detail: name, At: at}
}

func evCrash(node core.NodeID, at sim.Time) trace.Event {
	return trace.Event{Kind: trace.KindCrash, Node: node, Peer: trace.NoNode, At: at}
}

func feed(c *Collector, events ...trace.Event) {
	for _, e := range events {
		c.Feed(e)
	}
}

// TestCollectorAttemptLifecycle walks one attempt through the full
// doorway → collect → eat pipeline and checks phases, boundaries and the
// causal attribution of the eating transition.
func TestCollectorAttemptLifecycle(t *testing.T) {
	c := New()
	feed(c,
		evState(3, "thinking", "hungry", 100),
		// Doorway entry at the same instant: the zero-length collect
		// phase must be dropped.
		evDoorway(3, "enter", "AD^r", 100),
		evDoorway(3, "cross", "AD^r", 150),
		evSend(3, 4, "req", 1, 160),
		evDeliver(3, 4, "fork", 9, 200),
		evState(3, "hungry", "eating", 200),
		evState(3, "eating", "thinking", 250),
	)
	c.Finalize(300)

	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Node != 3 || s.Attempt != 1 || s.Start != 100 || s.End != 250 || s.Outcome != OutcomeAte {
		t.Fatalf("span = %+v", s)
	}
	want := []struct {
		name, detail string
		start, end   sim.Time
	}{
		{PhaseDoorway, "AD^r", 100, 150},
		{PhaseCollect, "", 150, 200},
		{PhaseEat, "", 200, 250},
	}
	if len(s.Phases) != len(want) {
		t.Fatalf("phases = %+v", s.Phases)
	}
	for i, w := range want {
		p := s.Phases[i]
		if p.Name != w.name || p.Detail != w.detail || p.Start != w.start || p.End != w.end {
			t.Fatalf("phase %d = %+v, want %+v", i, p, w)
		}
	}
	// The collect phase closed while processing node 4's fork delivery:
	// same instant means caused-by on the single simulation thread.
	by := s.Phases[1].UnblockedBy
	if by == nil || by.From != 4 || by.Seq != 9 || by.Msg != "fork" {
		t.Fatalf("UnblockedBy = %+v", by)
	}
	// The doorway crossing happened with no same-instant delivery.
	if s.Phases[0].UnblockedBy != nil {
		t.Fatalf("doorway phase attributed to %+v", s.Phases[0].UnblockedBy)
	}
	if s.Dur() != 150 || s.PhaseDur(PhaseDoorway) != 50 {
		t.Fatalf("durations: %v / %v", s.Dur(), s.PhaseDur(PhaseDoorway))
	}
}

// TestCollectorDemotionSurvives pins the mobility rule: eating → hungry
// does not close the attempt, it increments Demotions and resumes
// collection.
func TestCollectorDemotionSurvives(t *testing.T) {
	c := New()
	feed(c,
		evState(1, "thinking", "hungry", 100),
		evState(1, "hungry", "eating", 200),
		evState(1, "eating", "hungry", 220), // demoted by mobility
		evState(1, "hungry", "eating", 300),
		evState(1, "eating", "thinking", 320),
	)
	c.Finalize(400)
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("demotion split the attempt: %d spans", len(spans))
	}
	s := spans[0]
	if s.Demotions != 1 || s.Outcome != OutcomeAte || s.Start != 100 || s.End != 320 {
		t.Fatalf("span = %+v", s)
	}
	// eat, collect, eat after the initial collect.
	names := make([]string, 0, len(s.Phases))
	for _, p := range s.Phases {
		names = append(names, p.Name)
	}
	if got := strings.Join(names, " "); got != "collect eat collect eat" {
		t.Fatalf("phases = %q", got)
	}
}

// TestCollectorRecolorPhase checks the lme1 pipeline: crossing SD^r opens
// PhaseRecolor (the recolouring module runs behind it), the next doorway
// entry closes it, and KindRecolor increments the attempt's counter.
func TestCollectorRecolorPhase(t *testing.T) {
	c := New()
	feed(c,
		evState(2, "thinking", "hungry", 100),
		evDoorway(2, "enter", "SD^r", 110),
		evDoorway(2, "cross", "SD^r", 150),
		trace.Event{Kind: trace.KindRecolor, Node: 2, Peer: trace.NoNode, Detail: "4", At: 180},
		evDoorway(2, "enter", "AD^f", 200),
		evDoorway(2, "cross", "AD^f", 240),
		evState(2, "hungry", "eating", 280),
		evState(2, "eating", "thinking", 300),
	)
	c.Finalize(400)
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Recolors != 1 {
		t.Fatalf("recolors = %d", s.Recolors)
	}
	var names []string
	for _, p := range s.Phases {
		name := p.Name
		if p.Detail != "" {
			name += ":" + p.Detail
		}
		names = append(names, name)
	}
	want := "collect doorway:SD^r recolor doorway:AD^f collect eat"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("phases = %q, want %q", got, want)
	}
}

// TestCollectorCrashAndOpenOutcomes covers the two non-eating closures:
// a crash closes the attempt with OutcomeCrashed at crash time, and
// Finalize closes survivors with OutcomeOpen at the run's end.
func TestCollectorCrashAndOpenOutcomes(t *testing.T) {
	c := New()
	feed(c,
		evState(0, "thinking", "hungry", 100),
		evState(1, "thinking", "hungry", 120),
		evCrash(0, 200),
	)
	c.Finalize(500)
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if s := spans[0]; s.Node != 0 || s.Outcome != OutcomeCrashed || s.End != 200 {
		t.Fatalf("crashed span = %+v", s)
	}
	if s := spans[1]; s.Node != 1 || s.Outcome != OutcomeOpen || s.End != 500 {
		t.Fatalf("open span = %+v", s)
	}
	sum := c.Summary()
	if sum.Attempts != 2 || sum.Crashed != 1 || sum.Open != 1 || sum.Ate != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestWaitEdgesFork exercises the fork half of the wait-for graph: an
// unanswered request is an edge; the granting delivery, a link failure or
// an eating/demotion transition removes it.
func TestWaitEdgesFork(t *testing.T) {
	c := New()
	c.SeedLink(0, 1)
	feed(c,
		evState(0, "thinking", "hungry", 10),
		evSend(0, 1, "req", 1, 20),
	)
	if e := c.WaitEdges(); len(e) != 1 || e[0] != (Edge{From: 0, To: 1, Why: "fork"}) {
		t.Fatalf("edges = %+v", e)
	}
	// The fork arrives: the wait is over.
	c.Feed(evDeliver(0, 1, "fork", 3, 30))
	if e := c.WaitEdges(); len(e) != 0 {
		t.Fatalf("edges after grant = %+v", e)
	}
	// Re-request, then the link drops: both directions forget the wait.
	c.Feed(evSend(0, 1, "req", 2, 40))
	c.Feed(trace.Event{Kind: trace.KindLinkDown, Node: 0, Peer: 1, At: 50})
	if e := c.WaitEdges(); len(e) != 0 {
		t.Fatalf("edges after link down = %+v", e)
	}
	// Request again, then a demotion clears the node's own waits.
	c.Feed(trace.Event{Kind: trace.KindLinkUp, Node: 0, Peer: 1, At: 60})
	c.Feed(evSend(0, 1, "req", 3, 70))
	c.Feed(evState(0, "eating", "hungry", 80))
	if e := c.WaitEdges(); len(e) != 0 {
		t.Fatalf("edges after demotion = %+v", e)
	}
}

// TestWaitEdgesDoorway exercises the doorway half: a node at a doorway
// entry waits on every adjacent node behind that doorway, with the
// asynchronous observed-once exemption and the crashed-frozen-position
// rule.
func TestWaitEdgesDoorway(t *testing.T) {
	// Synchronous doorway: behind blocks entrants regardless of order.
	c := New()
	c.SeedLink(0, 1)
	feed(c,
		evDoorway(1, "enter", "SD^f", 50),
		evDoorway(1, "cross", "SD^f", 60),
		evDoorway(0, "enter", "SD^f", 100),
	)
	if e := c.WaitEdges(); len(e) != 1 || e[0] != (Edge{From: 0, To: 1, Why: "doorway:SD^f"}) {
		t.Fatalf("sync edges = %+v", e)
	}
	// The neighbour exits the doorway: no wait.
	c.Feed(evDoorway(1, "exit", "SD^f", 120))
	if e := c.WaitEdges(); len(e) != 0 {
		t.Fatalf("sync edges after exit = %+v", e)
	}

	// Asynchronous doorway, neighbour behind since before the entry
	// began: the entrant never observed it outside, so it waits.
	c = New()
	c.SeedLink(0, 1)
	feed(c,
		evDoorway(1, "enter", "AD^f", 50),
		evDoorway(1, "cross", "AD^f", 60),
		evDoorway(0, "enter", "AD^f", 100),
	)
	if e := c.WaitEdges(); len(e) != 1 || e[0] != (Edge{From: 0, To: 1, Why: "doorway:AD^f"}) {
		t.Fatalf("async edges = %+v", e)
	}

	// Asynchronous doorway, neighbour crossed after the entry began: the
	// entrant observed it outside at entry (the doorway seeds its
	// seen-set), so the behind position does not block.
	c = New()
	c.SeedLink(0, 1)
	feed(c,
		evDoorway(0, "enter", "AD^f", 50),
		evDoorway(1, "enter", "AD^f", 55),
		evDoorway(1, "cross", "AD^f", 60),
	)
	if e := c.WaitEdges(); len(e) != 0 {
		t.Fatalf("async late-behind edges = %+v", e)
	}

	// A node that crashed behind a doorway blocks entrants forever (its
	// position is frozen), and emits no waits of its own.
	c = New()
	c.SeedLink(0, 1)
	feed(c,
		evDoorway(1, "enter", "SD^f", 50),
		evDoorway(1, "cross", "SD^f", 60),
		evSend(1, 0, "req", 1, 65), // would be a fork edge if 1 were alive
		evCrash(1, 70),
		evDoorway(0, "enter", "SD^f", 100),
	)
	e := c.WaitEdges()
	if len(e) != 1 || e[0] != (Edge{From: 0, To: 1, Why: "doorway:SD^f"}) {
		t.Fatalf("frozen-crash edges = %+v", e)
	}
}

// TestCollectorCrashImpacts builds a fork-wait chain 3→2→1→0 on a line,
// crashes node 0 and checks the attribution: wait-chain hops, graph
// distances and the cutoff rule.
func TestCollectorCrashImpacts(t *testing.T) {
	c := New()
	for i := core.NodeID(0); i < 3; i++ {
		c.SeedLink(i, i+1)
	}
	feed(c,
		evState(1, "thinking", "hungry", 10),
		evState(2, "thinking", "hungry", 10),
		evState(3, "thinking", "hungry", 10),
		evSend(1, 0, "req", 1, 20),
		evSend(2, 1, "req", 1, 20),
		evSend(3, 2, "req", 1, 20),
		evCrash(0, 100),
	)
	c.Finalize(1000)
	imps := c.Impacts()
	if len(imps) != 1 {
		t.Fatalf("impacts = %+v", imps)
	}
	imp := imps[0]
	if imp.Crashed != 0 || imp.At != 100 {
		t.Fatalf("impact = %+v", imp)
	}
	if imp.MaxHop != 3 || imp.MaxDist != 3 {
		t.Fatalf("maxima = hop %d dist %d, want 3/3", imp.MaxHop, imp.MaxDist)
	}
	if len(imp.Blocked) != 3 {
		t.Fatalf("blocked = %+v", imp.Blocked)
	}
	for i, b := range imp.Blocked {
		want := BlockedNode{Node: core.NodeID(i + 1), Hop: i + 1, Dist: i + 1}
		if b != want {
			t.Fatalf("blocked[%d] = %+v, want %+v", i, b, want)
		}
	}
}

// TestCollectorCrashImpactCutoff: an attempt that began after the
// measurement cutoff (a third of the post-crash horizon) is not
// attributed to the crash, even inside the wait-for closure.
func TestCollectorCrashImpactCutoff(t *testing.T) {
	c := New()
	c.SeedLink(0, 1)
	feed(c,
		evCrash(0, 100),
		// Cutoff for Finalize(1000) is 100 + 900/3 = 400.
		evState(1, "thinking", "hungry", 900),
		evSend(1, 0, "req", 1, 910),
	)
	c.Finalize(1000)
	imps := c.Impacts()
	if len(imps) != 1 || len(imps[0].Blocked) != 0 || imps[0].MaxDist != 0 {
		t.Fatalf("impacts = %+v, want one empty attribution", imps)
	}
}

// TestOpenSpansSnapshot: OpenSpans reports in-progress attempts with
// their current phase closed at the latest event time, without mutating
// the collector.
func TestOpenSpansSnapshot(t *testing.T) {
	c := New()
	feed(c,
		evState(5, "thinking", "hungry", 100),
		evDeliver(5, 6, "status", 2, 150), // advances c.now
	)
	open := c.OpenSpans()
	if len(open) != 1 {
		t.Fatalf("open = %+v", open)
	}
	s := open[0]
	if s.Node != 5 || s.Outcome != OutcomeOpen || s.End != 150 {
		t.Fatalf("open span = %+v", s)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != PhaseCollect || s.Phases[0].End != 150 {
		t.Fatalf("open phases = %+v", s.Phases)
	}
	// The snapshot did not close anything: the attempt still finishes.
	feed(c,
		evState(5, "hungry", "eating", 200),
		evState(5, "eating", "thinking", 220),
	)
	c.Finalize(300)
	if spans := c.Spans(); len(spans) != 1 || spans[0].Outcome != OutcomeAte {
		t.Fatalf("spans after snapshot = %+v", spans)
	}
}

// TestSummarizeQualifiesPhaseNames: the report section qualifies phase
// names with their detail and aggregates counts and durations.
func TestSummarizeQualifiesPhaseNames(t *testing.T) {
	spans := []Span{
		{Node: 0, Attempt: 1, Start: 0, End: 100, Outcome: OutcomeAte, Phases: []Phase{
			{Name: PhaseDoorway, Detail: "AD^r", Start: 0, End: 40},
			{Name: PhaseEat, Start: 40, End: 100},
		}},
		{Node: 1, Attempt: 1, Start: 0, End: 80, Outcome: OutcomeAte, Demotions: 2, Phases: []Phase{
			{Name: PhaseDoorway, Detail: "AD^r", Start: 0, End: 10},
			{Name: PhaseEat, Start: 10, End: 80},
		}},
	}
	sum := Summarize(spans, nil)
	if sum.Attempts != 2 || sum.Ate != 2 || sum.Demotions != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(sum.Phases) != 2 {
		t.Fatalf("phases = %+v", sum.Phases)
	}
	dw := sum.Phases[0]
	if dw.Name != "doorway:AD^r" || dw.Count != 2 || dw.TotalUS != 50 || dw.MaxUS != 40 {
		t.Fatalf("doorway stat = %+v", dw)
	}
	if eat := sum.Phases[1]; eat.Name != "eat" || eat.TotalUS != 130 {
		t.Fatalf("eat stat = %+v", eat)
	}
}

// TestWriteJSONLAndFeedIdempotence: the JSONL output is one object per
// line and Finalize is idempotent.
func TestWriteJSONLAndFeedIdempotence(t *testing.T) {
	c := New()
	feed(c,
		evState(0, "thinking", "hungry", 10),
		evState(0, "hungry", "eating", 20),
		evState(0, "eating", "thinking", 30),
	)
	c.Finalize(100)
	c.Finalize(200) // idempotent: the first end stands
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"outcome":"ate"`) {
		t.Fatalf("line = %s", lines[0])
	}
}
