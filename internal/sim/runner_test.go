package sim

import "testing"

// recorder is a Runner that appends its tag to a shared log.
type recorder struct {
	log *[]int
	tag int
}

func (r *recorder) Run() { *r.log = append(*r.log, r.tag) }

// TestAtRunnerSharesFIFOOrder pins that AtRunner and At draw from the
// same sequence space: same-instant events fire in schedule order
// regardless of which entry point scheduled them.
func TestAtRunnerSharesFIFOOrder(t *testing.T) {
	s := NewScheduler(1)
	var log []int
	s.At(10, func() { log = append(log, 0) })
	s.AtRunner(10, &recorder{log: &log, tag: 1})
	s.At(10, func() { log = append(log, 2) })
	s.AtRunner(10, &recorder{log: &log, tag: 3})
	s.AtRunner(5, &recorder{log: &log, tag: 4}) // earlier instant jumps the queue
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{4, 0, 1, 2, 3}
	if len(log) != len(want) {
		t.Fatalf("ran %d events, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("execution order %v, want %v", log, want)
		}
	}
	if got := s.Processed(); got != 5 {
		t.Fatalf("Processed() = %d, want 5", got)
	}
}

// TestAtRunnerAllocFree pins the closure-free path: scheduling a
// pointer-shaped Runner must not allocate (the property the world's
// pooled delivery and movement records depend on).
func TestAtRunnerAllocFree(t *testing.T) {
	s := NewScheduler(2)
	var log []int
	r := &recorder{log: &log}
	// Pre-grow the heap so append never reallocates inside the
	// measured region.
	for i := 0; i < 64; i++ {
		s.AtRunner(Time(i), r)
	}
	for s.Step() {
	}
	log = log[:0]
	allocs := testing.AllocsPerRun(100, func() {
		s.AtRunner(s.Now()+1, r)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("AtRunner+Step allocates %.1f times per op, want 0", allocs)
	}
}
