// Package sim provides a deterministic discrete-event scheduler: the
// substrate on which the MANET model of internal/manet executes. Virtual
// time is a monotone int64 microsecond counter; events are ordered by a
// canonical key (time, owner, class, a, b) whose comparison is a total
// order independent of how the event population is partitioned — the
// property the region-sharded parallel engine relies on to execute the
// exact same sequence as the single-heap engine. Events scheduled through
// the legacy At/After/AtRunner entry points carry the reserved NoOwner
// owner and the scheduler's monotone sequence number, which preserves the
// old FIFO tie-breaking for ownerless callers.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual time instant, in microseconds since the start of the
// run. It is a plain integer rather than time.Time because simulated time
// has no calendar meaning; convert with FromDuration / ToDuration at the
// boundary.
type Time int64

// Infinity is a time later than any event a run can produce.
const Infinity Time = 1<<63 - 1

// FromDuration converts a wall-clock duration to virtual time units.
func FromDuration(d time.Duration) Time { return Time(d.Microseconds()) }

// ToDuration converts a virtual time span to a wall-clock duration.
func ToDuration(t Time) time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time as a duration for human-readable traces.
func (t Time) String() string {
	if t == Infinity {
		return "∞"
	}
	return ToDuration(t).String()
}

// Runner is the allocation-free alternative to scheduling a closure: a
// reusable record (typically pooled by the caller) whose Run method is
// invoked when its instant arrives. Pointer-shaped implementations convert
// to the interface without allocating, which is what makes the message
// delivery path of internal/manet closure-free.
type Runner interface {
	Run()
}

// Event classes, the third component of the canonical key. At one instant
// a node's local events run before its message deliveries, which run
// before its topology events; the constants' numeric order is the
// execution order.
const (
	// ClassLocal covers node-local callbacks: workload follow-ups,
	// crashes, mobility trip bookkeeping, and every ownerless legacy
	// event.
	ClassLocal uint8 = iota
	// ClassDeliver covers message deliveries; A is the sender and B the
	// sender's monotone send sequence, so per-link FIFO ties break
	// identically in every engine.
	ClassDeliver
	// ClassTopo covers topology mutations (movement ticks, jumps): the
	// events the sharded engine serialises on its coordinator because
	// they touch two nodes' protocols and the spatial index at once.
	ClassTopo
)

// NoOwner is the reserved owner of legacy ownerless events; it orders
// before every real node ID.
const NoOwner int32 = -1

// Key is the canonical total order over events. Comparison is
// lexicographic over (At, Owner, Class, A, B); every scheduled event's key
// is unique, so the order is total and identical regardless of which heap
// — global or per-tile — the event happens to sit in.
type Key struct {
	At    Time
	Owner int32
	Class uint8
	A, B  uint64
}

// Less reports whether k orders before o in the canonical order.
func (k Key) Less(o Key) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	if k.Owner != o.Owner {
		return k.Owner < o.Owner
	}
	if k.Class != o.Class {
		return k.Class < o.Class
	}
	if k.A != o.A {
		return k.A < o.A
	}
	return k.B < o.B
}

// KeyFloor is the smallest possible key at time t: the exclusive upper
// bound "every event strictly before instant t" used by the sharded
// engine's window arithmetic.
func KeyFloor(t Time) Key {
	return Key{At: t, Owner: -1 << 31}
}

// Item is one queued event: a key plus exactly one of Fn and R.
type Item struct {
	K  Key
	Fn func()
	R  Runner
}

// EventHeap is a value-typed 4-ary min-heap of Items ordered by Key. The
// zero value is an empty, usable heap. It is the shared queue
// implementation of the single-heap Scheduler and of every tile of the
// sharded engine: the shallower tree (log₄ vs log₂ depth) and the value
// layout (one contiguous slice, no indirection) keep the push/pop churn of
// a simulation cache-resident and free of per-event allocations.
type EventHeap struct {
	items []Item
}

// Len reports how many events are queued.
func (h *EventHeap) Len() int { return len(h.items) }

// MinKey returns the smallest queued key, if any.
func (h *EventHeap) MinKey() (Key, bool) {
	if len(h.items) == 0 {
		return Key{}, false
	}
	return h.items[0].K, true
}

// Push inserts it and restores the heap order (sift-up).
func (h *EventHeap) Push(it Item) {
	s := append(h.items, it)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s[i].K.Less(s[parent].K) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	h.items = s
}

// Pop removes and returns the earliest event. The caller must have checked
// that the heap is non-empty.
func (h *EventHeap) Pop() Item {
	s := h.items
	root := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = Item{} // release fn/r references
	s = s[:last]
	h.items = s
	// Sift-down: promote the smallest of up to four children.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if s[c].K.Less(s[min].K) {
				min = c
			}
		}
		if !s[min].K.Less(s[i].K) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return root
}

// ExtractOwner removes every event whose key names the given owner,
// appends them to buf and returns it. It is the mover-migration primitive
// of the sharded engine: when a node crosses a tile boundary its pending
// events follow it. The scan is O(len) with an O(len) re-heapify — cheap
// because migrations only happen at mobility-tick granularity.
func (h *EventHeap) ExtractOwner(owner int32, buf []Item) []Item {
	s := h.items
	kept := s[:0]
	for _, it := range s {
		if it.K.Owner == owner {
			buf = append(buf, it)
		} else {
			kept = append(kept, it)
		}
	}
	if len(kept) == len(s) {
		return buf // nothing extracted, heap order untouched
	}
	for i := len(kept); i < len(s); i++ {
		s[i] = Item{} // release references of vacated tail slots
	}
	h.items = kept
	h.heapify()
	return buf
}

// heapify restores the heap invariant over an arbitrarily ordered slice.
func (h *EventHeap) heapify() {
	s := h.items
	n := len(s)
	for i := (n - 2) / 4; i >= 0; i-- {
		// Sift-down from i.
		j := i
		for {
			first := 4*j + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if s[c].K.Less(s[min].K) {
					min = c
				}
			}
			if !s[min].K.Less(s[j].K) {
				break
			}
			s[j], s[min] = s[min], s[j]
			j = min
		}
	}
}

// Scheduler is a discrete-event executor. The zero value is not usable; use
// NewScheduler. Scheduler is not safe for concurrent use: it is the single
// thread of control of a simulation (the sharded engine of internal/manet
// runs one EventHeap per tile instead and never touches a Scheduler).
type Scheduler struct {
	now  Time
	seq  uint64
	heap EventHeap
	rng  *rand.Rand

	// processed counts events executed so far (for diagnostics and
	// runaway detection in tests).
	processed uint64

	// hook, if set, observes every executed event (the observability
	// layer's scheduler tap, used for throughput accounting).
	hook func(at Time)
}

// NewScheduler returns a scheduler at time zero whose random stream is
// derived deterministically from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been executed.
func (s *Scheduler) Processed() uint64 { return s.processed }

// SetEventHook installs f to run after every executed event, at the
// event's virtual time. One hook at most; nil uninstalls. The hook must
// not schedule or run events itself.
func (s *Scheduler) SetEventHook(f func(at Time)) { s.hook = f }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return s.heap.Len() }

// At schedules fn to run at the given virtual time. Scheduling in the past
// is clamped to the present. Ownerless events order by (time, schedule
// sequence): interleaved At and AtRunner calls for one instant fire in
// call order, before any owned event of that instant.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap.Push(Item{K: Key{At: t, Owner: NoOwner, Class: ClassLocal, A: s.seq}, Fn: fn})
}

// After schedules fn to run d time units from now.
func (s *Scheduler) After(d Time, fn func()) {
	s.At(s.now+d, fn)
}

// AtRunner schedules r.Run at the given virtual time, sharing the FIFO
// sequence space with At. Unlike At it captures nothing, so a pooled
// Runner makes the schedule-execute cycle allocation-free.
func (s *Scheduler) AtRunner(t Time, r Runner) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.heap.Push(Item{K: Key{At: t, Owner: NoOwner, Class: ClassLocal, A: s.seq}, R: r})
}

// AtKey schedules fn under an explicit canonical key (time clamped to the
// present). The caller owns key uniqueness.
func (s *Scheduler) AtKey(k Key, fn func()) {
	if k.At < s.now {
		k.At = s.now
	}
	s.heap.Push(Item{K: k, Fn: fn})
}

// AtRunnerKey schedules r.Run under an explicit canonical key.
func (s *Scheduler) AtRunnerKey(k Key, r Runner) {
	if k.At < s.now {
		k.At = s.now
	}
	s.heap.Push(Item{K: k, R: r})
}

// run executes one popped event.
func (s *Scheduler) run(it *Item) {
	s.now = it.K.At
	if it.Fn != nil {
		it.Fn()
	} else {
		it.R.Run()
	}
	s.processed++
	if s.hook != nil {
		s.hook(s.now)
	}
}

// ErrEventLimit is returned by Run when the event budget is exhausted,
// which almost always indicates a livelock (e.g. two nodes bouncing a
// message forever).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// RunUntil executes events in order until the queue is empty or the next
// event is later than deadline. Events at exactly the deadline still run.
// maxEvents bounds the total number of events executed in this call
// (0 means no bound); exceeding it returns ErrEventLimit.
func (s *Scheduler) RunUntil(deadline Time, maxEvents uint64) error {
	executed := uint64(0)
	for s.heap.Len() > 0 {
		if s.heap.items[0].K.At > deadline {
			break
		}
		it := s.heap.Pop()
		s.run(&it)
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			return fmt.Errorf("%w (%d events by t=%v)", ErrEventLimit, executed, s.now)
		}
	}
	if s.now < deadline && deadline != Infinity {
		s.now = deadline
	}
	return nil
}

// Run executes all pending events (including ones they schedule) until the
// queue drains, with an event budget. Prefer RunUntil for open systems that
// generate events forever.
func (s *Scheduler) Run(maxEvents uint64) error {
	return s.RunUntil(Infinity, maxEvents)
}

// Step executes the single next event, if any, and reports whether one ran.
func (s *Scheduler) Step() bool {
	if s.heap.Len() == 0 {
		return false
	}
	it := s.heap.Pop()
	s.run(&it)
	return true
}
