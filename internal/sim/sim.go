// Package sim provides a deterministic discrete-event scheduler: the
// substrate on which the MANET model of internal/manet executes. Virtual
// time is a monotone int64 microsecond counter; events scheduled for the
// same instant fire in schedule order (FIFO tie-breaking), which makes every
// run fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual time instant, in microseconds since the start of the
// run. It is a plain integer rather than time.Time because simulated time
// has no calendar meaning; convert with FromDuration / ToDuration at the
// boundary.
type Time int64

// Infinity is a time later than any event a run can produce.
const Infinity Time = 1<<63 - 1

// FromDuration converts a wall-clock duration to virtual time units.
func FromDuration(d time.Duration) Time { return Time(d.Microseconds()) }

// ToDuration converts a virtual time span to a wall-clock duration.
func ToDuration(t Time) time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time as a duration for human-readable traces.
func (t Time) String() string {
	if t == Infinity {
		return "∞"
	}
	return ToDuration(t).String()
}

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, sequence number).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("sim: pushed non-event %T", x))
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a discrete-event executor. The zero value is not usable; use
// NewScheduler. Scheduler is not safe for concurrent use: it is the single
// thread of control of a simulation.
type Scheduler struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// processed counts events executed so far (for diagnostics and
	// runaway detection in tests).
	processed uint64

	// hook, if set, observes every executed event (the observability
	// layer's scheduler tap, used for throughput accounting).
	hook func(at Time)
}

// NewScheduler returns a scheduler at time zero whose random stream is
// derived deterministically from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been executed.
func (s *Scheduler) Processed() uint64 { return s.processed }

// SetEventHook installs f to run after every executed event, at the
// event's virtual time. One hook at most; nil uninstalls. The hook must
// not schedule or run events itself.
func (s *Scheduler) SetEventHook(f func(at Time)) { s.hook = f }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return len(s.events) }

// At schedules fn to run at the given virtual time. Scheduling in the past
// is clamped to the present (the event runs after already-queued events for
// the current instant).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d time units from now.
func (s *Scheduler) After(d Time, fn func()) {
	s.At(s.now+d, fn)
}

// ErrEventLimit is returned by Run when the event budget is exhausted,
// which almost always indicates a livelock (e.g. two nodes bouncing a
// message forever).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// RunUntil executes events in order until the queue is empty or the next
// event is later than deadline. Events at exactly the deadline still run.
// maxEvents bounds the total number of events executed in this call
// (0 means no bound); exceeding it returns ErrEventLimit.
func (s *Scheduler) RunUntil(deadline Time, maxEvents uint64) error {
	executed := uint64(0)
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > deadline {
			break
		}
		popped, ok := heap.Pop(&s.events).(*event)
		if !ok {
			panic("sim: heap yielded non-event")
		}
		s.now = popped.at
		popped.fn()
		s.processed++
		if s.hook != nil {
			s.hook(s.now)
		}
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			return fmt.Errorf("%w (%d events by t=%v)", ErrEventLimit, executed, s.now)
		}
	}
	if s.now < deadline && deadline != Infinity {
		s.now = deadline
	}
	return nil
}

// Run executes all pending events (including ones they schedule) until the
// queue drains, with an event budget. Prefer RunUntil for open systems that
// generate events forever.
func (s *Scheduler) Run(maxEvents uint64) error {
	return s.RunUntil(Infinity, maxEvents)
}

// Step executes the single next event, if any, and reports whether one ran.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	popped, ok := heap.Pop(&s.events).(*event)
	if !ok {
		panic("sim: heap yielded non-event")
	}
	s.now = popped.at
	popped.fn()
	s.processed++
	if s.hook != nil {
		s.hook(s.now)
	}
	return true
}
