// Package sim provides a deterministic discrete-event scheduler: the
// substrate on which the MANET model of internal/manet executes. Virtual
// time is a monotone int64 microsecond counter; events scheduled for the
// same instant fire in schedule order (FIFO tie-breaking), which makes every
// run fully deterministic for a given seed.
package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a virtual time instant, in microseconds since the start of the
// run. It is a plain integer rather than time.Time because simulated time
// has no calendar meaning; convert with FromDuration / ToDuration at the
// boundary.
type Time int64

// Infinity is a time later than any event a run can produce.
const Infinity Time = 1<<63 - 1

// FromDuration converts a wall-clock duration to virtual time units.
func FromDuration(d time.Duration) Time { return Time(d.Microseconds()) }

// ToDuration converts a virtual time span to a wall-clock duration.
func ToDuration(t Time) time.Duration { return time.Duration(t) * time.Microsecond }

// String formats the time as a duration for human-readable traces.
func (t Time) String() string {
	if t == Infinity {
		return "∞"
	}
	return ToDuration(t).String()
}

// Runner is the allocation-free alternative to scheduling a closure: a
// reusable record (typically pooled by the caller) whose Run method is
// invoked when its instant arrives. Pointer-shaped implementations convert
// to the interface without allocating, which is what makes the message
// delivery path of internal/manet closure-free.
type Runner interface {
	Run()
}

// event is one scheduled callback. Events are stored by value directly in
// the heap slice — no per-event allocation, no interface boxing. Exactly
// one of fn and r is set.
type event struct {
	at  Time
	seq uint64
	fn  func()
	r   Runner
}

// before reports the (time, sequence) order of the heap; seq values are
// unique, so the order is total and ties at the same instant preserve
// schedule (FIFO) order.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Scheduler is a discrete-event executor. The zero value is not usable; use
// NewScheduler. Scheduler is not safe for concurrent use: it is the single
// thread of control of a simulation.
//
// The pending-event queue is an inlined 4-ary heap of event values: the
// shallower tree (log₄ vs log₂ depth) and the value layout (one contiguous
// slice, no *event indirection) keep the push/pop churn of a simulation —
// two heap operations per executed event — cache-resident and free of
// per-event allocations.
type Scheduler struct {
	now    Time
	seq    uint64
	events []event
	rng    *rand.Rand

	// processed counts events executed so far (for diagnostics and
	// runaway detection in tests).
	processed uint64

	// hook, if set, observes every executed event (the observability
	// layer's scheduler tap, used for throughput accounting).
	hook func(at Time)
}

// NewScheduler returns a scheduler at time zero whose random stream is
// derived deterministically from seed.
func NewScheduler(seed uint64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random stream.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have been executed.
func (s *Scheduler) Processed() uint64 { return s.processed }

// SetEventHook installs f to run after every executed event, at the
// event's virtual time. One hook at most; nil uninstalls. The hook must
// not schedule or run events itself.
func (s *Scheduler) SetEventHook(f func(at Time)) { s.hook = f }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return len(s.events) }

// push inserts ev and restores the heap order (sift-up).
func (s *Scheduler) push(ev event) {
	h := append(s.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.events = h
}

// pop removes and returns the earliest event. The caller must have checked
// that the queue is non-empty.
func (s *Scheduler) pop() event {
	h := s.events
	root := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release fn/r references
	h = h[:last]
	s.events = h
	// Sift-down: promote the smallest of up to four children.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return root
}

// At schedules fn to run at the given virtual time. Scheduling in the past
// is clamped to the present (the event runs after already-queued events for
// the current instant).
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d time units from now.
func (s *Scheduler) After(d Time, fn func()) {
	s.At(s.now+d, fn)
}

// AtRunner schedules r.Run at the given virtual time, sharing the FIFO
// sequence space with At: interleaved At and AtRunner calls for the same
// instant fire in call order. Unlike At it captures nothing, so a pooled
// Runner makes the schedule-execute cycle allocation-free.
func (s *Scheduler) AtRunner(t Time, r Runner) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(event{at: t, seq: s.seq, r: r})
}

// run executes one popped event.
func (s *Scheduler) run(ev *event) {
	s.now = ev.at
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.r.Run()
	}
	s.processed++
	if s.hook != nil {
		s.hook(s.now)
	}
}

// ErrEventLimit is returned by Run when the event budget is exhausted,
// which almost always indicates a livelock (e.g. two nodes bouncing a
// message forever).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// RunUntil executes events in order until the queue is empty or the next
// event is later than deadline. Events at exactly the deadline still run.
// maxEvents bounds the total number of events executed in this call
// (0 means no bound); exceeding it returns ErrEventLimit.
func (s *Scheduler) RunUntil(deadline Time, maxEvents uint64) error {
	executed := uint64(0)
	for len(s.events) > 0 {
		if s.events[0].at > deadline {
			break
		}
		ev := s.pop()
		s.run(&ev)
		executed++
		if maxEvents > 0 && executed >= maxEvents {
			return fmt.Errorf("%w (%d events by t=%v)", ErrEventLimit, executed, s.now)
		}
	}
	if s.now < deadline && deadline != Infinity {
		s.now = deadline
	}
	return nil
}

// Run executes all pending events (including ones they schedule) until the
// queue drains, with an event budget. Prefer RunUntil for open systems that
// generate events forever.
func (s *Scheduler) Run(maxEvents uint64) error {
	return s.RunUntil(Infinity, maxEvents)
}

// Step executes the single next event, if any, and reports whether one ran.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := s.pop()
	s.run(&ev)
	return true
}
