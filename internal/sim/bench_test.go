package sim_test

import (
	"testing"

	"lme/internal/microbench"
)

func BenchmarkSchedulerChurn(b *testing.B) { microbench.SchedulerChurn(b) }
