package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of FIFO order at %d: got %d", i, v)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []Time
	s.At(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
		s.At(12, func() { fired = append(fired, s.Now()) })
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 12, 15}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestSchedulerPastEventClampedToNow(t *testing.T) {
	s := NewScheduler(1)
	var at Time = -1
	s.At(10, func() {
		s.At(3, func() { at = s.Now() }) // in the past
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if at != 10 {
		t.Fatalf("past event ran at %v, want clamp to 10", at)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := NewScheduler(1)
	ran := 0
	s.At(10, func() { ran++ })
	s.At(20, func() { ran++ })
	s.At(30, func() { ran++ })
	if err := s.RunUntil(20, 0); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d events by deadline 20, want 2", ran)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestRunEventLimit(t *testing.T) {
	s := NewScheduler(1)
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	err := s.Run(1000)
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestStep(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n = %d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n = %d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed uint64) []int64 {
		s := NewScheduler(seed)
		var out []int64
		for i := 0; i < 50; i++ {
			d := Time(s.Rand().Int64N(1000))
			s.After(d, func() { out = append(out, int64(s.Now())) })
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestTimeDurationRoundTrip(t *testing.T) {
	if FromDuration(time.Millisecond) != 1000 {
		t.Fatalf("FromDuration(1ms) = %d", FromDuration(time.Millisecond))
	}
	if ToDuration(2500) != 2500*time.Microsecond {
		t.Fatalf("ToDuration(2500) = %v", ToDuration(2500))
	}
	if Infinity.String() != "∞" {
		t.Fatalf("Infinity.String() = %q", Infinity.String())
	}
}

// TestHeapProperty checks via testing/quick that, for arbitrary schedules,
// events always fire in nondecreasing time order.
func TestHeapProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := NewScheduler(7)
		var fired []Time
		for _, d := range delays {
			s.At(Time(d), func() { fired = append(fired, s.Now()) })
		}
		if err := s.Run(0); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
