package telemetry

// Schema-compat golden tests for lme/telemetry/v1: hand-written mirror
// structs strict-decode (DisallowUnknownFields) the encoded form of
// fully-populated records, so any field rename, retag or addition fails
// here and forces a deliberate schema decision. The mirrors are written
// out field by field on purpose — do NOT refactor them to reuse the
// production structs, that would make the test tautological.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"lme/internal/metrics"
)

// sketchWire mirrors metrics.SketchSnapshot as embedded in telemetry
// sections.
type sketchWire struct {
	Gamma   float64 `json:"gamma"`
	Count   uint64  `json:"count"`
	Zero    uint64  `json:"zero"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Buckets []struct {
		Index int32  `json:"i"`
		Count uint64 `json:"n"`
	} `json:"buckets"`
}

// engineWire pins the EngineStats field set.
type engineWire struct {
	Schema           string     `json:"schema"`
	Tiles            int        `json:"tiles"`
	Workers          int        `json:"workers"`
	Windows          uint64     `json:"windows"`
	Events           uint64     `json:"events"`
	StealAttempts    uint64     `json:"steal_attempts"`
	StealHits        uint64     `json:"steal_hits"`
	CrossTileMsgs    uint64     `json:"cross_tile_msgs"`
	ImbalanceMaxAvg  float64    `json:"imbalance_max_avg"`
	ImbalanceMeanAvg float64    `json:"imbalance_mean_avg"`
	Imbalance        float64    `json:"imbalance"`
	WindowSpanUS     sketchWire `json:"window_span_us"`
	BarrierStallNS   sketchWire `json:"barrier_stall_ns"`
	PerTile          []struct {
		Tile          int32  `json:"tile"`
		Events        uint64 `json:"events"`
		MsgsSent      uint64 `json:"msgs_sent"`
		MsgsDelivered uint64 `json:"msgs_delivered"`
	} `json:"per_tile"`
	Traffic []struct {
		From int32  `json:"from"`
		To   int32  `json:"to"`
		Msgs uint64 `json:"msgs"`
	} `json:"traffic"`
}

// transportWire pins the TransportStats field set.
type transportWire struct {
	Schema               string     `json:"schema"`
	Kind                 string     `json:"kind"`
	Links                int        `json:"links"`
	FramesSent           uint64     `json:"frames_sent"`
	FramesDelivered      uint64     `json:"frames_delivered"`
	Retransmits          uint64     `json:"retransmits"`
	DupDrops             uint64     `json:"dup_drops"`
	ReorderDepthHW       uint64     `json:"reorder_depth_hw"`
	ReorderOverflow      uint64     `json:"reorder_overflow"`
	DatagramsSent        uint64     `json:"datagrams_sent"`
	AckDatagrams         uint64     `json:"ack_datagrams"`
	AcksPiggybacked      uint64     `json:"acks_piggybacked"`
	FramesWire           uint64     `json:"frames_wire"`
	WireBytes            uint64     `json:"wire_bytes"`
	PayloadBytes         uint64     `json:"payload_bytes"`
	FramesPerDatagram    float64    `json:"frames_per_datagram"`
	PayloadBytesPerFrame float64    `json:"payload_bytes_per_frame"`
	AckRTTUS             sketchWire `json:"ack_rtt_us"`
}

// fullSketch returns a snapshot with every field nonzero so omitempty
// regressions surface.
func fullSketch() metrics.SketchSnapshot {
	s := metrics.NewSketch()
	s.ObserveFloat(0) // populates the zero bucket
	s.ObserveFloat(12.5)
	s.ObserveFloat(940)
	return s.Snapshot()
}

func strictDecode(t *testing.T, data []byte, into any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		t.Fatalf("schema drift: %v\nencoded: %s", err, data)
	}
}

func TestEngineStatsSchemaPinned(t *testing.T) {
	rec := EngineStats{
		Schema: Schema, Tiles: 2, Workers: 3,
		Windows: 40, Events: 10_000,
		StealAttempts: 90, StealHits: 80, CrossTileMsgs: 777,
		ImbalanceMaxAvg: 130, ImbalanceMeanAvg: 100, Imbalance: 1.3,
		WindowSpanUS:   fullSketch(),
		BarrierStallNS: fullSketch(),
		PerTile: []TileStats{
			{Tile: 0, Events: 4000, MsgsSent: 30, MsgsDelivered: 29},
			{Tile: 1, Events: 2000, MsgsSent: 10, MsgsDelivered: 10},
			{Tile: 2, Events: 2000, MsgsSent: 5, MsgsDelivered: 5},
			{Tile: 3, Events: 2000, MsgsSent: 1, MsgsDelivered: 1},
		},
		Traffic: []TileLink{{From: 0, To: 1, Msgs: 12}, {From: 3, To: 0, Msgs: 4}},
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var wire engineWire
	strictDecode(t, data, &wire)
	if wire.Schema != Schema || wire.Tiles != 2 || wire.Windows != 40 ||
		wire.StealAttempts != 90 || wire.CrossTileMsgs != 777 ||
		wire.Imbalance != 1.3 || len(wire.PerTile) != 4 || len(wire.Traffic) != 2 {
		t.Fatalf("mirror mismatch: %+v", wire)
	}
	if wire.WindowSpanUS.Count != 3 || len(wire.WindowSpanUS.Buckets) == 0 {
		t.Fatalf("sketch section lost data: %+v", wire.WindowSpanUS)
	}

	// Round trip back into the production struct for value equality.
	var back EngineStats
	strictDecodeInto(t, data, &back)
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip drift:\n got %+v\nwant %+v", back, rec)
	}
}

func TestTransportStatsSchemaPinned(t *testing.T) {
	rec := TransportStats{
		Schema: Schema, Kind: "udp", Links: 14,
		FramesSent: 1000, FramesDelivered: 998,
		Retransmits: 40, DupDrops: 7,
		ReorderDepthHW: 512, ReorderOverflow: 3,
		DatagramsSent: 220, AckDatagrams: 35, AcksPiggybacked: 160,
		FramesWire: 1040, WireBytes: 52_000, PayloadBytes: 9_000,
		FramesPerDatagram: 5.62, PayloadBytesPerFrame: 9.0,
		AckRTTUS: fullSketch(),
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var wire transportWire
	strictDecode(t, data, &wire)
	if wire.Schema != Schema || wire.Kind != "udp" || wire.Links != 14 ||
		wire.FramesSent != 1000 || wire.Retransmits != 40 ||
		wire.ReorderDepthHW != 512 || wire.ReorderOverflow != 3 ||
		wire.DatagramsSent != 220 || wire.AckDatagrams != 35 ||
		wire.AcksPiggybacked != 160 || wire.FramesWire != 1040 ||
		wire.WireBytes != 52_000 || wire.PayloadBytes != 9_000 ||
		wire.FramesPerDatagram != 5.62 || wire.PayloadBytesPerFrame != 9.0 {
		t.Fatalf("mirror mismatch: %+v", wire)
	}
	if wire.AckRTTUS.Count != 3 {
		t.Fatalf("rtt sketch lost data: %+v", wire.AckRTTUS)
	}

	var back TransportStats
	strictDecodeInto(t, data, &back)
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip drift:\n got %+v\nwant %+v", back, rec)
	}
}

// strictDecodeInto is strictDecode for the production structs: the
// encoder must not emit fields the decoder does not know either.
func strictDecodeInto(t *testing.T, data []byte, into any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		t.Fatalf("self round trip: %v\nencoded: %s", err, data)
	}
}
