// Package telemetry defines the lme/telemetry/v1 wire structs: the
// execution-layer introspection record shared by the sharded engine
// (per-tile counters, window/barrier statistics) and the live transports
// (per-directed-link wire counters). The structs here are pure data —
// collection lives with the code being measured (internal/manet,
// internal/livenet) and the surfacing lives with the existing
// observability stack (progress heartbeats, lmebench -scale extras,
// lmeload -json, the lmetop view).
//
// The contract the schema tests pin: telemetry is out-of-band. Nothing
// in this package (or in the collection paths that fill it) may perturb
// the canonical event order, the golden trace hash, a result_hash or any
// experiment table — counters describe a run, they never participate in
// it.
package telemetry

import "lme/internal/metrics"

// Schema identifies the telemetry record layout; bump on breaking
// changes. Engine and transport sections both carry it so a JSONL
// consumer can recognise embedded telemetry regardless of the envelope
// (progress record, scale result, load report).
const Schema = "lme/telemetry/v1"

// TileStats is one tile's cumulative execution counters. Tile indices
// are row-major over the g×g grid: tile i sits at column i%g, row i/g.
type TileStats struct {
	Tile          int32  `json:"tile"`
	Events        uint64 `json:"events"`
	MsgsSent      uint64 `json:"msgs_sent"`
	MsgsDelivered uint64 `json:"msgs_delivered"`
}

// TileLink is one directed cell of the tile→tile traffic matrix: how
// many cross-tile message deliveries were routed from tile From to tile
// To at window barriers. Same-tile deliveries never cross the barrier
// and are not counted here.
type TileLink struct {
	From int32  `json:"from"`
	To   int32  `json:"to"`
	Msgs uint64 `json:"msgs"`
}

// EngineStats is the sharded engine's execution telemetry: what the
// window/barrier loop did, per tile and in aggregate. All counters are
// cumulative since Start. A single-heap run reports the degenerate
// 1×1 grid (Tiles=1, one PerTile entry, zero windows/steals).
type EngineStats struct {
	Schema string `json:"schema"`
	// Tiles is the grid side g (the run has g×g tiles); Workers the
	// worker-goroutine bound.
	Tiles   int `json:"tiles"`
	Workers int `json:"workers"`
	// Windows counts parallel windows executed; Events the total events
	// across coordinator and tiles.
	Windows uint64 `json:"windows"`
	Events  uint64 `json:"events"`
	// StealAttempts/StealHits count draws on the window work queue:
	// every index a worker pulled (attempts) and every pull that yielded
	// a tile to run (hits). Attempts−hits is the number of empty draws —
	// workers that arrived after the window's tiles were taken.
	StealAttempts uint64 `json:"steal_attempts"`
	StealHits     uint64 `json:"steal_hits"`
	// CrossTileMsgs counts message deliveries routed between tiles at
	// barriers — the traffic the Traffic matrix breaks down by pair.
	CrossTileMsgs uint64 `json:"cross_tile_msgs"`
	// ImbalanceMaxAvg and ImbalanceMeanAvg are the per-window maximum
	// and mean events-per-active-tile, averaged over windows; Imbalance
	// is their ratio (1.0 = perfectly balanced windows, large = a few
	// hot tiles dominate and the barrier waits for them).
	ImbalanceMaxAvg  float64 `json:"imbalance_max_avg"`
	ImbalanceMeanAvg float64 `json:"imbalance_mean_avg"`
	Imbalance        float64 `json:"imbalance"`
	// WindowSpanUS sketches the virtual-time width of each window (µs);
	// BarrierStallNS sketches per-worker wall-clock stall at window
	// joins — the time between a worker running out of tiles and the
	// last worker finishing.
	WindowSpanUS   metrics.SketchSnapshot `json:"window_span_us"`
	BarrierStallNS metrics.SketchSnapshot `json:"barrier_stall_ns"`
	// PerTile holds one entry per tile, index-ordered; Traffic the
	// nonzero cells of the tile→tile matrix, (from, to)-ordered.
	PerTile []TileStats `json:"per_tile"`
	Traffic []TileLink  `json:"traffic,omitempty"`
}

// TransportStats is a live transport's cumulative wire telemetry,
// aggregated over its directed links. The channel transport reports the
// frame counts and zeros for the shim counters (it has no wire to lose
// frames on) — the seam contract stays observable on both
// implementations.
type TransportStats struct {
	Schema string `json:"schema"`
	// Kind names the implementation ("udp", "channel").
	Kind string `json:"kind"`
	// Links is the number of directed links the transport carries.
	Links int `json:"links"`
	// FramesSent counts frames accepted by Send; FramesDelivered frames
	// handed to the delivery callback.
	FramesSent      uint64 `json:"frames_sent"`
	FramesDelivered uint64 `json:"frames_delivered"`
	// Retransmits counts datagrams resent by the RTO loop; DupDrops
	// duplicates suppressed on receive (by seq or by message id).
	Retransmits uint64 `json:"retransmits"`
	DupDrops    uint64 `json:"dup_drops"`
	// ReorderDepthHW is the high-water reorder-buffer depth across
	// links; ReorderOverflow counts datagrams discarded because a link's
	// reorder buffer was full (each is recovered by retransmission).
	ReorderDepthHW  uint64 `json:"reorder_depth_hw"`
	ReorderOverflow uint64 `json:"reorder_overflow"`
	// Datagram-coalescing counters (PR 10's fast wire path; zero on the
	// channel transport, which has no datagrams). DatagramsSent counts
	// every datagram written, AckDatagrams the standalone cumulative-ACK
	// datagrams among them, AcksPiggybacked the ACKs that rode on a data
	// datagram instead of costing their own.
	DatagramsSent   uint64 `json:"datagrams_sent"`
	AckDatagrams    uint64 `json:"ack_datagrams"`
	AcksPiggybacked uint64 `json:"acks_piggybacked"`
	// FramesWire counts frames written to the wire (retransmissions
	// included); WireBytes the total datagram bytes written; PayloadBytes
	// the encoded payload bytes accepted at Send.
	FramesWire   uint64 `json:"frames_wire"`
	WireBytes    uint64 `json:"wire_bytes"`
	PayloadBytes uint64 `json:"payload_bytes"`
	// FramesPerDatagram is FramesWire over data datagrams (coalescing
	// density; 1.0 means no coalescing); PayloadBytesPerFrame is
	// PayloadBytes over FramesSent (codec compactness).
	FramesPerDatagram    float64 `json:"frames_per_datagram"`
	PayloadBytesPerFrame float64 `json:"payload_bytes_per_frame"`
	// AckRTTUS sketches the send→cumulative-ACK round trip (µs),
	// sampled only on frames acknowledged without an intervening
	// retransmit (Karn's rule: a retransmitted frame's ACK is ambiguous).
	AckRTTUS metrics.SketchSnapshot `json:"ack_rtt_us"`
}
