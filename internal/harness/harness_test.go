package harness

import (
	"strings"
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/lme2"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := Build(Spec{Points: LinePoints(2, 0.1)}); err == nil {
		t.Fatal("spec without factory accepted")
	}
}

func TestRunLifecycle(t *testing.T) {
	r, err := Build(Spec{
		Seed:        1,
		Points:      LinePoints(4, 0.1),
		Radius:      0.11,
		NewProtocol: func(core.NodeID) core.Protocol { return lme2.New() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal("Start not idempotent:", err)
	}
	if err := r.RunFor(1_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved: %v", missing)
	}
}

func TestPointHelpers(t *testing.T) {
	if got := len(LinePoints(5, 0.1)); got != 5 {
		t.Fatalf("LinePoints: %d", got)
	}
	if got := len(CliquePoints(7)); got != 7 {
		t.Fatalf("CliquePoints: %d", got)
	}
	if got := len(GridPoints(3, 4, 0.1)); got != 12 {
		t.Fatalf("GridPoints: %d", got)
	}
	pts, err := GeometricPoints(10, 0.5, 1)
	if err != nil || len(pts) != 10 {
		t.Fatalf("GeometricPoints: %d, %v", len(pts), err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Header: []string{"a", "long-header"}}
	tb.AddRow(1, "x")
	tb.AddRow("wide-cell", 2)
	tb.AddNote("footnote %d", 7)
	s := tb.String()
	for _, want := range []string{"T — demo", "long-header", "wide-cell", "note: footnote 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestExperimentsQuick executes every experiment end-to-end at Quick
// quality: each must produce a populated table without safety violations
// sneaking into an error.
func TestExperimentsQuick(t *testing.T) {
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tb, err := exp.Run(Quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			if tb.ID != exp.ID {
				t.Fatalf("table ID %q != %q", tb.ID, exp.ID)
			}
			t.Log("\n" + tb.String())
		})
	}
}

func TestGreedyFloodRounds(t *testing.T) {
	// The flood needs Θ(diameter) rounds and the palette stays ≤ δ+1.
	ring := graph.Ring(24)
	rounds, palette := greedyFloodRounds(ring)
	if rounds < 6 {
		t.Fatalf("ring flood finished in %d rounds, expected Θ(diameter)", rounds)
	}
	if palette > ring.MaxDegree()+1 {
		t.Fatalf("ring palette %d > δ+1", palette)
	}
	clique := graph.Clique(6)
	rounds, palette = greedyFloodRounds(clique)
	if rounds > 3 {
		t.Fatalf("clique flood took %d rounds", rounds)
	}
	if palette != 6 {
		t.Fatalf("clique palette %d, want 6", palette)
	}
}

func TestDoorwayProbeLatencyGrowsWithContention(t *testing.T) {
	small, err := doorwayProbe(2, 10_000, 2_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	large, err := doorwayProbe(8, 10_000, 2_000_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if small.Count == 0 || large.Count == 0 {
		t.Fatalf("no samples: %d / %d", small.Count, large.Count)
	}
	if large.Mean <= small.Mean {
		t.Fatalf("doorway latency did not grow with contention: %v → %v", small.Mean, large.Mean)
	}
}
