package harness

import (
	"os"
	"testing"
	"testing/quick"
)

// TestSoak runs the randomized safety properties at high iteration counts.
// It is gated behind LME_SOAK=1 because it takes minutes; CI and the
// default suite run the lighter property tests in prop_test.go instead.
func TestSoak(t *testing.T) {
	if os.Getenv("LME_SOAK") == "" {
		t.Skip("set LME_SOAK=1 to run the soak fuzz")
	}
	t.Run("static", func(t *testing.T) {
		if err := quick.Check(propertyStaticSafe(t), &quick.Config{MaxCount: 400}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("chaos", func(t *testing.T) {
		if err := quick.Check(propertyChaosSafe(t), &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("mobility", func(t *testing.T) {
		if err := quick.Check(propertyMobilitySafe(t), &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})
}
