package harness

import (
	"context"
	"fmt"

	"lme/internal/fleet"
)

// Plan is an experiment's declarative run-plan: the independent
// simulation runs it needs (as fleet jobs) plus the reduction that folds
// their results into the rendered Table. Declaring runs instead of
// looping inline lets one engine execute every experiment — serially or
// on all cores — without the experiment knowing which.
type Plan struct {
	Jobs []fleet.Job
	// Reduce folds the completed jobs' values into the table. It runs
	// on the caller's goroutine after every job finished.
	Reduce func(rs *ResultSet) (*Table, error)
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// Add schedules `replicas` independent runs of one measurement under
// key. Replica r receives the deterministic seed fleet.Seed(baseSeed, r),
// so replica 0 reproduces the historic single-seed result exactly and
// results do not depend on worker count.
func (p *Plan) Add(key string, baseSeed uint64, replicas int, run func(ctx context.Context, seed uint64) (any, error)) {
	if replicas < 1 {
		replicas = 1
	}
	for r := 0; r < replicas; r++ {
		p.Jobs = append(p.Jobs, fleet.Job{
			Key:     key,
			Replica: r,
			Seed:    fleet.Seed(baseSeed, r),
			Run:     run,
		})
	}
}

// AddOne schedules a single unreplicated job — scripted scenarios and
// pure computations whose outcome does not depend on a seed.
func (p *Plan) AddOne(key string, run func(ctx context.Context) (any, error)) {
	p.Jobs = append(p.Jobs, fleet.Job{
		Key: key,
		Run: func(ctx context.Context, _ uint64) (any, error) { return run(ctx) },
	})
}

// ResultSet indexes completed job values by key, in replica order.
type ResultSet struct {
	byKey map[string][]any
}

func newResultSet(results []fleet.Result) *ResultSet {
	rs := &ResultSet{byKey: make(map[string][]any)}
	for _, r := range results {
		rs.byKey[r.Job.Key] = append(rs.byKey[r.Job.Key], r.Value)
	}
	return rs
}

// Values returns every replica value recorded under key, in replica
// order (nil when the key is unknown).
func (rs *ResultSet) Values(key string) []any { return rs.byKey[key] }

// First returns replica 0's value under key, or an error naming the
// missing key — a reduce-function bug, not a run failure.
func (rs *ResultSet) First(key string) (any, error) {
	vs := rs.byKey[key]
	if len(vs) == 0 {
		return nil, fmt.Errorf("harness: plan produced no result for key %q", key)
	}
	return vs[0], nil
}

// Sample folds f over every replica value of key into a statistics
// accumulator — the bridge from raw replica results to mean/stderr/CI
// table cells.
func (rs *ResultSet) Sample(key string, f func(v any) float64) fleet.Sample {
	var s fleet.Sample
	for _, v := range rs.byKey[key] {
		s.Add(f(v))
	}
	return s
}

// SumInt folds f over every replica value of key and sums the results —
// for violation and run counters that accumulate across replicas.
func (rs *ResultSet) SumInt(key string, f func(v any) int) int {
	total := 0
	for _, v := range rs.byKey[key] {
		total += f(v)
	}
	return total
}
