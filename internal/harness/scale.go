package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/lme1"
	"lme/internal/manet"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
	"lme/internal/workload"
)

// ScaleSchema identifies the lmebench -scale JSON layout; bump on
// breaking changes.
const ScaleSchema = "lme/scale/v1"

// ScaleSpec configures one large-n scale run.
type ScaleSpec struct {
	// N is the node count; the layout is the smallest square lattice
	// holding N nodes, radius 1.45× the spacing (interior degree δ=8).
	N int
	// Seed drives every random choice of the run.
	Seed uint64
	// Horizon is the virtual-time span of the run (µs). The lattice
	// centre node crashes at Horizon/3.
	Horizon sim.Time
	// Tiles/Workers select the engine (0 tiles = AutoTiles for N;
	// 1 = single-heap reference; workers 0 = GOMAXPROCS).
	Tiles   int
	Workers int
	// Telemetry collects the engine's execution telemetry and attaches
	// it to the result as extras. Never part of ResultHash: two runs of
	// the same (N, Seed, Horizon) hash identically with it on or off.
	Telemetry bool
}

// ScaleResult is one run's measurement. Every field except the wall-clock
// ones (WallMS, EventsPerSec) is deterministic for a given (N, Seed,
// Horizon) — independent of tiles and worker count — and is folded into
// ResultHash.
type ScaleResult struct {
	N       int      `json:"n"`
	Tiles   int      `json:"tiles"`
	Workers int      `json:"workers"`
	Seed    uint64   `json:"seed"`
	Horizon sim.Time `json:"horizon_us"`

	Events       uint64  `json:"events"`
	Meals        int     `json:"meals"`
	MessagesSent uint64  `json:"messages_sent"`
	RTMeanUS     float64 `json:"rt_mean_us"`
	RTP50US      float64 `json:"rt_p50_us"`
	RTP95US      float64 `json:"rt_p95_us"`
	RTMaxUS      float64 `json:"rt_max_us"`
	CrashVictim  int     `json:"crash_victim"`
	Starved      int     `json:"starved"`
	FLRadius     int     `json:"fl_radius_hops"`
	Violations   int     `json:"violations"`

	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	HeapBPerNode float64 `json:"heap_bytes_per_node"`
	ResultHash   string  `json:"result_hash"`

	// Telemetry is the engine's lme/telemetry/v1 record (per-tile
	// breakdown, imbalance, window/stall sketches) when ScaleSpec asked
	// for it. Extras only: like the wall-clock fields it never enters
	// ResultHash, so telemetry on/off runs hash identically.
	Telemetry *telemetry.EngineStats `json:"telemetry,omitempty"`
}

// ScaleDoc is the lmebench -scale JSON document.
type ScaleDoc struct {
	Schema  string        `json:"schema"`
	Results []ScaleResult `json:"results"`
}

// scalePoints is the lattice layout shared by the scale runs and the
// microbenchmarks: side×side cells over the unit square, one node per
// cell centre.
func scalePoints(n int) ([]graph.Point, float64) {
	side := 1
	for side*side < n {
		side++
	}
	spacing := 1.0 / float64(side)
	pts := make([]graph.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, graph.Point{
			X: (float64(i%side) + 0.5) * spacing,
			Y: (float64(i/side) + 0.5) * spacing,
		})
	}
	return pts, 1.45 * spacing
}

// RunScale executes one large-n run and returns its measurement. The
// build uses the Lean harness (checker, recorder and prober attached;
// per-message telemetry and the meal timeline skipped) with Algorithm 1
// greedy — the variant whose per-node state is O(δ), the only kind that
// survives n=100k.
func RunScale(spec ScaleSpec) (ScaleResult, error) {
	pts, radius := scalePoints(spec.N)
	tiles := spec.Tiles
	if tiles == 0 {
		tiles = manet.AutoTiles(spec.N)
	}
	r, err := Build(Spec{
		Seed:   spec.Seed,
		Points: pts,
		Radius: radius,
		NewProtocol: func(core.NodeID) core.Protocol {
			return lme1.New(lme1.Config{Variant: lme1.VariantGreedy})
		},
		Workload:     workload.DefaultConfig(),
		Tiles:        tiles,
		ShardWorkers: spec.Workers,
		Lean:         true,
		Telemetry:    spec.Telemetry,
	})
	if err != nil {
		return ScaleResult{}, err
	}
	// Crash the lattice centre at Horizon/3: the failure-locality census
	// then measures how far its blast radius reaches in hops.
	side := 1
	for side*side < spec.N {
		side++
	}
	victim := core.NodeID((side/2)*side + side/2)
	if int(victim) >= spec.N {
		victim = core.NodeID(spec.N / 2)
	}
	crashAt := spec.Horizon / 3
	r.World.CrashAt(victim, crashAt)

	start := time.Now()
	if err := r.RunFor(spec.Horizon); err != nil {
		return ScaleResult{}, err
	}
	wall := time.Since(start)

	events := r.World.Processed()
	stats := r.Recorder.Stats()
	// A node is starved by the crash if it has eaten nothing in the last
	// two thirds of the post-crash window (the E2 census rule).
	starved := r.Prober.StarvedSince(crashAt + (spec.Horizon-crashAt)/3)
	res := ScaleResult{
		N: spec.N, Tiles: tiles, Workers: spec.Workers,
		Seed: spec.Seed, Horizon: spec.Horizon,
		Events:       events,
		Meals:        r.TotalMeals(),
		MessagesSent: r.World.MessagesSent(),
		RTMeanUS:     float64(stats.Mean),
		RTP50US:      float64(stats.P50),
		RTP95US:      float64(stats.P95),
		RTMaxUS:      float64(stats.Max),
		CrashVictim:  int(victim),
		Starved:      len(starved),
		FLRadius:     metrics.BlockedRadius(r.World.CommGraph(), victim, starved),
		Violations:   len(r.Checker.Violations()),
		WallMS:       float64(wall.Microseconds()) / 1000,
	}
	if secs := wall.Seconds(); secs > 0 {
		res.EventsPerSec = float64(events) / secs
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapBPerNode = float64(ms.HeapAlloc) / float64(spec.N)
	res.ResultHash = res.hash()
	res.Telemetry = r.World.EngineTelemetry()
	return res, nil
}

// hash digests the deterministic fields — everything the engine contract
// promises is identical across tile grids and worker counts. Two runs of
// the same (N, Seed, Horizon) with different -tiles or -shard-workers
// must print the same result_hash; CI greps for exactly that.
func (r ScaleResult) hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|n=%d|seed=%d|horizon=%d|events=%d|meals=%d|msgs=%d|rt=%.0f/%.0f/%.0f/%.0f|victim=%d|starved=%d|fl=%d|viol=%d",
		ScaleSchema, r.N, r.Seed, r.Horizon, r.Events, r.Meals, r.MessagesSent,
		r.RTMeanUS, r.RTP50US, r.RTP95US, r.RTMaxUS,
		r.CrashVictim, r.Starved, r.FLRadius, r.Violations)
	return hex.EncodeToString(h.Sum(nil))
}

// RunScaleSweep runs the sweep over node counts and writes the JSON
// document to out (with progress lines to logw when non-nil).
func RunScaleSweep(ns []int, seed uint64, horizon sim.Time, tiles, workers int, tel bool, out, logw io.Writer) error {
	doc := ScaleDoc{Schema: ScaleSchema, Results: []ScaleResult{}}
	for _, n := range ns {
		res, err := RunScale(ScaleSpec{
			N: n, Seed: seed, Horizon: horizon, Tiles: tiles, Workers: workers,
			Telemetry: tel,
		})
		if err != nil {
			return fmt.Errorf("scale n=%d: %w", n, err)
		}
		doc.Results = append(doc.Results, res)
		if logw != nil {
			fmt.Fprintf(logw,
				"scale n=%-7d tiles=%2d×%-2d %10.0f events/s  %6.0f B/node  meals=%-8d rt_p95=%.1fms  fl=%d hops  wall=%.0fms\n",
				res.N, res.Tiles, res.Tiles, res.EventsPerSec, res.HeapBPerNode,
				res.Meals, res.RTP95US/1000, res.FLRadius, res.WallMS)
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
