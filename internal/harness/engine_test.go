package harness

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// TestEngineDeterministicAcrossWorkers is the refactor's core guarantee:
// the rendered table — including replica statistics — is byte-for-byte
// identical whether the plan runs on one worker or many, because replica
// seeds are derived (not drawn) and results fold in replica order.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	exp := Experiment{ID: "E7", Title: "doorway", Plan: DoorwayLatency}
	render := func(workers int) []byte {
		t.Helper()
		tbl, err := Engine{Workers: workers, Replicas: 3}.Run(exp, Quick)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	wide := render(max(runtime.GOMAXPROCS(0), 8))
	if string(serial) != string(wide) {
		t.Fatalf("table differs across worker counts:\nserial: %s\nwide:   %s", serial, wide)
	}
}

// TestEngineReplicaZeroMatchesSingleSeed pins the compatibility contract:
// replicas=1 must reproduce the historic single-seed tables exactly
// (fleet.Seed(base, 0) == base), so EXPERIMENTS.md stays comparable
// across the API redesign.
func TestEngineReplicaZeroMatchesSingleSeed(t *testing.T) {
	exp := Experiment{ID: "E7", Title: "doorway", Plan: DoorwayLatency}
	one, err := Engine{Workers: 1, Replicas: 1}.Run(exp, Quick)
	if err != nil {
		t.Fatal(err)
	}
	three, err := Engine{Workers: 1, Replicas: 3}.Run(exp, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(three.CellStats) == 0 {
		t.Fatal("replicated table records no cell stats")
	}
	// Replica 0 of the replicated run contributes the single-seed
	// mean when alone; spot-check via the count column of row 0.
	if one.Rows[0][0] != three.Rows[0][0] {
		t.Fatalf("row key drifted: %q vs %q", one.Rows[0][0], three.Rows[0][0])
	}
}

// TestEngineCancellation aborts a plan mid-flight through the engine's
// context and expects the context error, promptly.
func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exp := Experiment{ID: "E9", Title: "sweep", Plan: SafetySweep}
	done := make(chan error, 1)
	go func() {
		_, err := Engine{Workers: 2, Replicas: 2, Context: ctx}.Run(exp, Quick)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled engine run reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled engine run did not return")
	}
}
