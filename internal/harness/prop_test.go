package harness

import (
	"testing"
	"testing/quick"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/sim"
	"lme/internal/workload"
)

// allAlgorithms are the names the fuzz properties draw from.
var allAlgorithms = []algName{algCM, algCS, algA1Greedy, algA1Linial, algA1Reduce, algA2, algA2NoNtf}

// propertyStaticSafe: for arbitrary seeds, topologies and algorithms, a
// static run never violates local mutual exclusion and (absent crashes)
// starves nobody.
func propertyStaticSafe(t *testing.T) func(seed uint64, algPick, topoPick, sizePick uint8) bool {
	return func(seed uint64, algPick, topoPick, sizePick uint8) bool {
		a := allAlgorithms[int(algPick)%len(allAlgorithms)]
		n := int(sizePick)%12 + 4
		var pts []graph.Point
		radius := 0.11
		switch topoPick % 4 {
		case 0:
			pts = LinePoints(n, 0.1)
		case 1:
			pts = CliquePoints(n)
			radius = 0.2
		case 2:
			side := 2
			for side*side < n {
				side++
			}
			pts = GridPoints(side, side, 0.1)
		default:
			var err error
			radius = ConnectedRadius(n) * 1.3
			pts, err = GeometricPoints(n, radius, seed%100+1)
			if err != nil {
				return true // layout unsatisfiable at this seed; skip
			}
		}
		r, err := Build(Spec{
			Seed: seed, Points: pts, Radius: radius,
			NewProtocol: factoryFor(a, pts, radius),
			Workload:    workload.Config{EatTime: 3_000, ThinkMax: 5_000},
		})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		if err := r.RunFor(2_500_000); err != nil {
			t.Logf("%s on topo %d n=%d seed %d: %v", a, topoPick%4, len(pts), seed, err)
			return false
		}
		ok, missing := r.EveryoneAte()
		if !ok {
			t.Logf("%s on topo %d n=%d seed %d starved %v", a, topoPick%4, len(pts), seed, missing)
		}
		return ok
	}
}

// propertyChaosSafe: random crashes and jumps on top of the dining cycle;
// safety must hold unconditionally (liveness is only owed away from
// crashes, so it is not asserted here).
func propertyChaosSafe(t *testing.T) func(seed uint64, algPick, crashPick, jumpPick uint8) bool {
	mobileAlgorithms := []algName{algCM, algA1Greedy, algA1Linial, algA1Reduce, algA2, algA2NoNtf}
	return func(seed uint64, algPick, crashPick, jumpPick uint8) bool {
		a := mobileAlgorithms[int(algPick)%len(mobileAlgorithms)]
		n := 14
		pts, err := GeometricPoints(n, 0.33, seed%50+1)
		if err != nil {
			return true
		}
		r, err := Build(Spec{
			Seed: seed, Points: pts, Radius: 0.33,
			NewProtocol: factoryFor(a, pts, 0.33),
			Workload:    workload.Config{EatTime: 3_000, ThinkMax: 5_000},
		})
		if err != nil {
			return false
		}
		if err := r.Start(); err != nil {
			return false
		}
		// Up to two crashes and three jumps at arbitrary times.
		for c := 0; c < int(crashPick)%3; c++ {
			r.World.CrashAt(core.NodeID((int(crashPick)+c*5)%n), sim.Time(200_000+c*400_000))
		}
		for j := 0; j < int(jumpPick)%4; j++ {
			id := core.NodeID((int(jumpPick) + j*3) % n)
			dest := graph.Point{X: float64(j) * 0.3, Y: float64(int(jumpPick)%3) * 0.3}
			r.World.JumpAt(id, dest, 30_000, sim.Time(300_000+j*500_000))
		}
		if err := r.RunFor(3_000_000); err != nil {
			t.Logf("%s seed %d: %v", a, seed, err)
			return false
		}
		return true
	}
}

// propertyMobilitySafe: repeated waypoint churn with every algorithm that
// supports movement; safety only.
func propertyMobilitySafe(t *testing.T) func(seed uint64, algPick uint8) bool {
	mobileAlgorithms := []algName{algCM, algA1Greedy, algA1Linial, algA1Reduce, algA2}
	return func(seed uint64, algPick uint8) bool {
		a := mobileAlgorithms[int(algPick)%len(mobileAlgorithms)]
		pts, err := GeometricPoints(12, 0.35, seed%30+1)
		if err != nil {
			return true
		}
		r, err := Build(Spec{
			Seed: seed, Points: pts, Radius: 0.35,
			NewProtocol: factoryFor(a, pts, 0.35),
			Workload:    workload.Config{EatTime: 3_000, ThinkMax: 5_000},
		})
		if err != nil {
			return false
		}
		if err := r.Start(); err != nil {
			return false
		}
		manet.Waypoint{Speed: 0.5, PauseMin: 30_000, PauseMax: 150_000, Until: 2_000_000}.
			Attach(r.World, []core.NodeID{0, 4, 8})
		if err := r.RunFor(3_000_000); err != nil {
			t.Logf("%s seed %d: %v", a, seed, err)
			return false
		}
		return true
	}
}

func TestPropertySafetyRandomStatic(t *testing.T) {
	if err := quick.Check(propertyStaticSafe(t), &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySafetyRandomChaos(t *testing.T) {
	if err := quick.Check(propertyChaosSafe(t), &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMobilityWaves(t *testing.T) {
	if err := quick.Check(propertyMobilitySafe(t), &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
