package harness

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"lme/internal/baseline"
	"lme/internal/coloring"
	"lme/internal/core"
	"lme/internal/fleet"
	"lme/internal/graph"
	"lme/internal/lme1"
	"lme/internal/lme2"
	"lme/internal/manet"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/workload"
)

// Quality scales an experiment's sweep sizes and horizons.
type Quality int

// Quick is sized for unit tests and testing.B iterations; Full is the
// configuration whose output EXPERIMENTS.md records.
const (
	Quick Quality = iota + 1
	Full
)

// Experiment is one reproducible unit of the paper's evaluation (see the
// per-experiment index in DESIGN.md §2). An experiment declares its
// independent runs as a Plan; the Engine executes the plan serially or
// on all cores through the same code path.
type Experiment struct {
	ID    string
	Title string
	// Plan declares the experiment's jobs and reduction for the given
	// quality, replicating every seeded measurement `replicas` times.
	Plan func(q Quality, replicas int) (*Plan, error)
}

// Run executes the experiment serially with a single replica per
// measurement — the compatibility path used by unit tests and
// benchmarks. cmd/lmebench runs the same plans through a wider Engine.
func (e Experiment) Run(q Quality) (*Table, error) {
	return Engine{Workers: 1, Replicas: 1}.Run(e, q)
}

// Experiments lists every experiment in DESIGN.md order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Table 1: comparison of algorithms (measured)", Plan: Table1},
		{ID: "E2", Title: "Empirical failure locality after a crash", Plan: FailureLocality},
		{ID: "E3", Title: "Static chain response time vs n (Theorem 26)", Plan: StaticChain},
		{ID: "E4", Title: "Algorithm 2 under mobility vs n (Theorem 25)", Plan: MobileAlg2},
		{ID: "E5", Title: "Algorithm 1 response time vs δ and n (Theorems 17/23)", Plan: Alg1Scaling},
		{ID: "E6", Title: "Recolouring rounds and palette (Lemmas 15/21)", Plan: ColoringScaling},
		{ID: "E7", Title: "Double doorway traversal vs δ (Lemmas 1–2)", Plan: DoorwayLatency},
		{ID: "E8", Title: "Figure 6 scenario: crash, blocking, recovery by movement", Plan: Figure6},
		{ID: "E9", Title: "Safety sweep: violations across algorithms and conditions", Plan: SafetySweep},
		{ID: "E10", Title: "Message complexity per critical section (paper's future work, Ch. 7)", Plan: MessageComplexity},
		{ID: "E11", Title: "Locality dividend: local vs global mutual exclusion throughput (Ch. 1)", Plan: LocalityDividend},
		{ID: "E12", Title: "FIFO-link assumption ablation (Ch. 7 open question)", Plan: FIFOAblation},
	}
}

// algName identifies an algorithm row in the tables.
type algName string

const (
	algCM       algName = "chandy-misra"
	algCS       algName = "choy-singh"
	algA1Greedy algName = "alg1-greedy"
	algA1Linial algName = "alg1-linial"
	algA1Reduce algName = "alg1-linial-reduce"
	algA2       algName = "alg2"
	algA2NoNtf  algName = "alg2-nonotify"
	algGlobal   algName = "global-token"
)

// paperFL and paperRT are the claimed bounds from Table 1 of the paper.
var (
	paperFL = map[algName]string{
		algCM:       "n",
		algCS:       "4",
		algA1Greedy: "n",
		algA1Linial: "max(log*n,4)+2",
		algA1Reduce: "max(log*n,4)+2",
		algA2:       "2",
		algA2NoNtf:  "2",
	}
	paperRT = map[algName]string{
		algCM:       "O(n)",
		algCS:       "O(δ²)",
		algA1Greedy: "O((n+δ³)δ)",
		algA1Linial: "O((log*n+δ⁴)δ)",
		algA1Reduce: "O((log*n+δ²+δ³)δ)",
		algA2:       "O(n²);O(n) static",
		algA2NoNtf:  "O(n²)",
	}
)

// factoryFor builds the protocol factory of an algorithm for the given
// layout (some algorithms need n, δ or the static graph).
func factoryFor(a algName, pts []graph.Point, radius float64) func(core.NodeID) core.Protocol {
	g := graph.UnitDisk(pts, radius)
	n := len(pts)
	delta := max(g.MaxDegree(), 1)
	switch a {
	case algCM:
		return func(core.NodeID) core.Protocol { return baseline.NewChandyMisra() }
	case algCS:
		return baseline.NewChoySingh(g)
	case algA1Greedy:
		return func(core.NodeID) core.Protocol {
			return lme1.New(lme1.Config{Variant: lme1.VariantGreedy})
		}
	case algA1Linial:
		return func(core.NodeID) core.Protocol {
			return lme1.New(lme1.Config{Variant: lme1.VariantLinial, N: n, Delta: delta})
		}
	case algA1Reduce:
		return func(core.NodeID) core.Protocol {
			return lme1.New(lme1.Config{Variant: lme1.VariantLinialReduce, N: n, Delta: delta})
		}
	case algA2:
		return func(core.NodeID) core.Protocol { return lme2.New() }
	case algA2NoNtf:
		return func(core.NodeID) core.Protocol { return baseline.NewNoNotify() }
	case algGlobal:
		return baseline.NewGlobalToken(g)
	default:
		panic(fmt.Sprintf("harness: unknown algorithm %q", a))
	}
}

// ms renders a sim.Time with sub-millisecond precision.
func ms(t sim.Time) string {
	return fmt.Sprintf("%.2fms", float64(t)/1000)
}

// timeSample extracts a virtual-time statistic from every replica value
// of key into a sample (the µs magnitudes MSStat renders).
func timeSample(rs *ResultSet, key string, f func(v any) sim.Time) fleet.Sample {
	return rs.Sample(key, func(v any) float64 { return float64(f(v)) })
}

// runStatic builds and runs a static workload and returns the run.
func runStatic(ctx context.Context, a algName, pts []graph.Point, radius float64, seed uint64, horizon sim.Time, wl workload.Config) (*Run, error) {
	r, err := Build(Spec{
		Seed:        seed,
		Points:      pts,
		Radius:      radius,
		NewProtocol: factoryFor(a, pts, radius),
		Workload:    wl,
	})
	if err != nil {
		return nil, err
	}
	if err := r.RunContext(ctx, horizon); err != nil {
		return nil, fmt.Errorf("%s: %w", a, err)
	}
	return r, nil
}

// table1Static is one static replica's measurement slice for E1.
type table1Static struct {
	mean, p95  sim.Time
	msgPerMeal float64
	violations int
	// phases maps qualified phase names ("doorway:sdf") to total time,
	// from the span layer's fold of the run's event stream.
	phases map[string]sim.Time
	// rt is the replica's response-time sketch snapshot; Reduce merges
	// the replicas' sketches so percentile cells describe the pooled
	// sample, bit-identical for any worker count.
	rt metrics.SketchSnapshot
}

// table1Mobile is one mobile replica's measurement slice for E1.
type table1Mobile struct {
	mean       sim.Time
	violations int
}

// Table1 measures every algorithm on one common random geometric topology:
// static response time, response time under mobility, empirical blocked
// radius around a crash, and safety violations — the measured counterpart
// of the paper's Table 1.
func Table1(q Quality, replicas int) (*Plan, error) {
	n, horizon := 48, sim.Time(6_000_000)
	if q == Quick {
		n, horizon = 24, 2_000_000
	}
	radius := ConnectedRadius(n)
	pts, err := GeometricPoints(n, radius, 11)
	if err != nil {
		return nil, err
	}
	wl := workload.Config{EatTime: 5_000, ThinkMax: 10_000, InitialStagger: 5_000}
	algs := []algName{algCM, algCS, algA1Greedy, algA1Linial, algA2}
	p := NewPlan()
	for _, a := range algs {
		a := a
		p.Add("static/"+string(a), 21, replicas, func(ctx context.Context, seed uint64) (any, error) {
			r, err := Build(Spec{
				Seed: seed, Points: pts, Radius: radius,
				NewProtocol: factoryFor(a, pts, radius),
				Workload:    wl,
				Spans:       true,
			})
			if err != nil {
				return nil, err
			}
			if err := r.RunContext(ctx, horizon); err != nil {
				return nil, fmt.Errorf("%s: %w", a, err)
			}
			r.FinalizeSpans()
			st := r.Recorder.Stats()
			phases := make(map[string]sim.Time)
			for _, ps := range r.Spans.Summary().Phases {
				phases[ps.Name] = ps.TotalUS
			}
			return table1Static{
				mean: st.Mean, p95: st.P95,
				msgPerMeal: r.MessagesPerMeal(),
				violations: len(r.Checker.Violations()),
				phases:     phases,
				rt:         r.Recorder.Sketch().Snapshot(),
			}, nil
		})
		if a != algCS { // Choy–Singh is a static-only baseline.
			p.Add("mobile/"+string(a), 22, replicas, func(ctx context.Context, seed uint64) (any, error) {
				r, err := Build(Spec{
					Seed: seed, Points: pts, Radius: radius,
					NewProtocol: factoryFor(a, pts, radius),
					Workload:    wl,
				})
				if err != nil {
					return nil, err
				}
				if err := r.Start(); err != nil {
					return nil, err
				}
				movers := []core.NodeID{1, 7, 13, 19}
				manet.Waypoint{Speed: 0.3, PauseMin: 100_000, PauseMax: 400_000, Until: horizon * 3 / 4}.
					Attach(r.World, movers)
				if err := r.RunContext(ctx, horizon); err != nil {
					return nil, fmt.Errorf("%s mobile: %w", a, err)
				}
				return table1Mobile{
					mean:       r.Recorder.Stats().Mean,
					violations: len(r.Checker.Violations()),
				}, nil
			})
		}
		// Crash run: fail the highest-degree node mid-run and measure
		// the blocked radius.
		p.Add("crash/"+string(a), 23, replicas, func(ctx context.Context, seed uint64) (any, error) {
			return blockedRadius(ctx, a, pts, radius, seed, horizon)
		})
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:    "E1",
			Title: fmt.Sprintf("Table 1 measured on a connected geometric graph (n=%d, δ=%d)", n, graph.UnitDisk(pts, radius).MaxDegree()),
			Header: []string{"algorithm", "FL (paper)", "FL (measured)", "FL (spans)", "RT (paper)",
				"RT static mean", "RT static p95", "RT mobile mean", "phase split", "msg/meal", "violations"},
		}
		for _, a := range algs {
			static := "static/" + string(a)
			meanS := timeSample(rs, static, func(v any) sim.Time { return v.(table1Static).mean })
			p95S := timeSample(rs, static, func(v any) sim.Time { return v.(table1Static).p95 })
			msgS := rs.Sample(static, func(v any) float64 { return v.(table1Static).msgPerMeal })
			violations := rs.SumInt(static, func(v any) int { return v.(table1Static).violations })
			merged := map[string]sim.Time{}
			var rtCell fleet.SketchCell
			for _, v := range rs.Values(static) {
				for name, d := range v.(table1Static).phases {
					merged[name] += d
				}
				rtCell.Add(v.(table1Static).rt)
			}
			// Pooled p95 from the merged replica sketches; the per-replica
			// p95 sample still supplies the CellStats spread.
			p95Cell := Stat{
				Text:   fmt.Sprintf("%.2fms", rtCell.Quantile(0.95)/1000),
				Sample: p95S,
			}
			mobileCell := any("n/a")
			if a != algCS {
				mobile := "mobile/" + string(a)
				mobileCell = MSStat(timeSample(rs, mobile, func(v any) sim.Time { return v.(table1Mobile).mean }))
				violations += rs.SumInt(mobile, func(v any) int { return v.(table1Mobile).violations })
			}
			radiusS := rs.Sample("crash/"+string(a), func(v any) float64 { return float64(v.(crashLocality).radius) })
			spanS := rs.Sample("crash/"+string(a), func(v any) float64 { return float64(v.(crashLocality).spanDist) })
			t.AddRow(string(a), paperFL[a], MaxStat(radiusS), MaxStat(spanS), paperRT[a],
				MSStat(meanS), p95Cell, mobileCell, phaseSplit(merged), NumStat(msgS, 1), violations)
		}
		t.AddNote("FL (measured) = max graph distance from the crashed node to a node blocked for the rest of the run; saturated workload")
		t.AddNote("FL (spans) = max graph distance to a node in the wait-for closure of the crash site (span-layer attribution of the same runs)")
		t.AddNote("phase split = share of attempt time per span phase in the static run (doorway entries, recolouring, fork collection, eating)")
		t.AddNote("msg/meal = protocol messages per critical-section entry in the static run")
		t.AddNote("RT static p95 = p95 of the pooled response times across replicas, from merged per-replica quantile sketches (±1%% relative)")
		t.AddNote("absolute times depend on the simulator's ν=10ms, τ=5ms; orderings and growth are the comparable quantities")
		return t, nil
	}
	return p, nil
}

// phaseSplit renders the share of total attempt time spent in each phase
// group (doorway details merged), in the fixed taxonomy order.
func phaseSplit(merged map[string]sim.Time) string {
	groups := map[string]sim.Time{}
	var total sim.Time
	for name, d := range merged {
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[:i]
		}
		groups[name] += d
		total += d
	}
	if total == 0 {
		return ""
	}
	var parts []string
	for _, name := range []string{span.PhaseDoorway, span.PhaseRecolor, span.PhaseCollect, span.PhaseEat} {
		if d, ok := groups[name]; ok {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", name, 100*float64(d)/float64(total)))
		}
	}
	return strings.Join(parts, " ")
}

// crashLocality is one crash replica's measurement: the starvation-based
// blocked radius (the Prober's view of who made no progress) and the span
// layer's attribution of the same run (max communication-graph distance
// and max wait-chain depth of nodes in the wait-for closure of the crash
// site).
type crashLocality struct {
	radius   int
	spanDist int
	spanHop  int
}

// blockedRadius crashes the max-degree node of the layout under a
// saturated workload and reports the empirical failure locality, both
// starvation-based and span-attributed.
func blockedRadius(ctx context.Context, a algName, pts []graph.Point, radius float64, seed uint64, horizon sim.Time) (crashLocality, error) {
	g := graph.UnitDisk(pts, radius)
	victim := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(victim) {
			victim = v
		}
	}
	r, err := Build(Spec{
		Seed: seed, Points: pts, Radius: radius,
		NewProtocol: factoryFor(a, pts, radius),
		Workload:    workload.Config{EatTime: 4_000}, // saturated
		Spans:       true,
	})
	if err != nil {
		return crashLocality{}, err
	}
	crashAt := horizon / 4
	r.World.CrashAt(core.NodeID(victim), crashAt)
	if err := r.RunContext(ctx, horizon); err != nil {
		return crashLocality{}, fmt.Errorf("%s crash run: %w", a, err)
	}
	blocked := r.Prober.StarvedSince(crashAt + (horizon-crashAt)/3)
	out := crashLocality{radius: metrics.BlockedRadius(r.World.CommGraph(), core.NodeID(victim), blocked)}
	r.FinalizeSpans()
	for _, imp := range r.Spans.Impacts() {
		if imp.MaxDist > out.spanDist {
			out.spanDist = imp.MaxDist
		}
		if imp.MaxHop > out.spanHop {
			out.spanHop = imp.MaxHop
		}
	}
	return out, nil
}

// FailureLocality measures the blocked radius on lines and geometric
// graphs for the algorithms with contrasting failure localities.
func FailureLocality(q Quality, replicas int) (*Plan, error) {
	lineN, horizon := 32, sim.Time(8_000_000)
	seeds := []uint64{31, 32, 33}
	if q == Quick {
		lineN, horizon = 16, 3_000_000
		seeds = seeds[:1]
	}
	geoPts, err := GeometricPoints(lineN, ConnectedRadius(lineN), 17)
	if err != nil {
		return nil, err
	}
	algs := []algName{algCM, algA1Greedy, algA1Linial, algA2}
	p := NewPlan()
	for _, a := range algs {
		a := a
		for si, seed := range seeds {
			p.Add(fmt.Sprintf("line/%s/%d", a, si), seed, replicas, func(ctx context.Context, seed uint64) (any, error) {
				return blockedRadius(ctx, a, LinePoints(lineN, 0.1), 0.11, seed, horizon)
			})
			p.Add(fmt.Sprintf("geo/%s/%d", a, si), seed, replicas, func(ctx context.Context, seed uint64) (any, error) {
				return blockedRadius(ctx, a, geoPts, ConnectedRadius(lineN), seed, horizon)
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:    "E2",
			Title: "Empirical failure locality: blocked radius after one crash (saturated workload)",
			Header: []string{"algorithm", "FL (paper)", "line radius", "line FL(spans)",
				"geometric radius", "geo FL(spans)"},
		}
		runs := 0
		for _, a := range algs {
			var lineS, lineSpanS, geoS, geoSpanS fleet.Sample
			for si := range seeds {
				for _, v := range rs.Values(fmt.Sprintf("line/%s/%d", a, si)) {
					lineS.Add(float64(v.(crashLocality).radius))
					lineSpanS.Add(float64(v.(crashLocality).spanDist))
				}
				for _, v := range rs.Values(fmt.Sprintf("geo/%s/%d", a, si)) {
					geoS.Add(float64(v.(crashLocality).radius))
					geoSpanS.Add(float64(v.(crashLocality).spanDist))
				}
			}
			runs = lineS.N()
			t.AddRow(string(a), paperFL[a], MaxStat(lineS), MaxStat(lineSpanS),
				MaxStat(geoS), MaxStat(geoSpanS))
		}
		t.AddNote("radius is the worst case over %d seeded runs; n=%d; the paper predicts alg2 ≤ 2 and large radii for chandy-misra/alg1-greedy", runs, lineN)
		t.AddNote("FL(spans) = max graph distance to a node whose open attempt sits in the wait-for closure of the crash site (span-layer attribution)")
		return t, nil
	}
	return p, nil
}

// StaticChain measures two things on static lines. Part one sweeps the
// line length under saturation: Theorem 26 predicts Algorithm 2's worst
// response grows linearly in n, and Chandy–Misra's convoy effect grows
// faster. Part two is the scripted interference scenario that isolates
// what the notification mechanism buys (the Theorem 26 discussion): a
// hungry node whose thinking higher-priority neighbour becomes hungry
// mid-collection loses its shared fork to a priority steal without
// notifications, and does not with them.
func StaticChain(q Quality, replicas int) (*Plan, error) {
	ns := []int{8, 16, 32, 64}
	horizon := sim.Time(20_000_000)
	if q == Quick {
		ns = []int{8, 16}
		horizon = 6_000_000
	}
	satAlgs := []algName{algA2, algA2NoNtf, algCM}
	stealAlgs := []algName{algA2, algA2NoNtf}
	p := NewPlan()
	for _, n := range ns {
		n := n
		for _, a := range satAlgs {
			a := a
			p.Add(fmt.Sprintf("sat/%d/%s", n, a), 41, replicas, func(ctx context.Context, seed uint64) (any, error) {
				r, err := runStatic(ctx, a, LinePoints(n, 0.1), 0.11, seed, horizon, workload.Config{EatTime: 4_000})
				if err != nil {
					return nil, err
				}
				return r.Recorder.Stats().Max, nil
			})
		}
		for _, a := range stealAlgs {
			a := a
			// The steal scenario is fully scripted (fixed delays, no
			// random workload), so one run is the measurement.
			p.AddOne(fmt.Sprintf("steal/%d/%s", n, a), func(ctx context.Context) (any, error) {
				return stealScenario(ctx, a, n)
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E3",
			Title:  "Static line: saturated sweep (top) and scripted priority-steal scenario (bottom)",
			Header: []string{"measurement", "n", "alg2", "alg2-nonotify", "chandy-misra"},
		}
		for _, n := range ns {
			row := []any{"max RT, saturated", n}
			for _, a := range satAlgs {
				row = append(row, MSStat(timeSample(rs, fmt.Sprintf("sat/%d/%s", n, a), func(v any) sim.Time { return v.(sim.Time) })))
			}
			t.AddRow(row...)
		}
		for _, n := range ns {
			row := []any{"victim RT, steal scenario", n}
			for _, a := range stealAlgs {
				v, err := rs.First(fmt.Sprintf("steal/%d/%s", n, a))
				if err != nil {
					return nil, err
				}
				row = append(row, ms(v.(sim.Time)))
			}
			row = append(row, "n/a")
			t.AddRow(row...)
		}
		t.AddNote("steal scenario: node 0 eats; node 1 becomes hungry and waits; nodes 2..n-1 become hungry staggered — without notifications node 2 (thinking, higher priority) steals node 1's shared fork and delays it by ~τ")
		t.AddNote("the O(n) vs O(n²) separation of Theorem 26 is an adversarial worst-case bound: uniform random schedules do not realise it, because each priority steal reverses the stolen edge (self-stabilisation); the steal scenario shows the mechanism itself")
		return t, nil
	}
	return p, nil
}

// stealScenario runs the scripted interference chain and returns the
// victim's (node 1) response time.
func stealScenario(ctx context.Context, a algName, n int) (sim.Time, error) {
	pts := LinePoints(n, 0.1)
	r, err := Build(Spec{
		Seed: 1, Points: pts, Radius: 0.11,
		NewProtocol: factoryFor(a, pts, 0.11),
		Workload:    workload.Config{Participants: []core.NodeID{}}, // scripted
		MinDelay:    1_000, MaxDelay: 1_000,
	})
	if err != nil {
		return 0, err
	}
	if err := r.Start(); err != nil {
		return 0, err
	}
	w := r.World
	sched := w.Scheduler()
	const (
		eat      = sim.Time(10_000)
		hungryAt = sim.Time(1_000)
	)
	// One-shot dining: every eater leaves the CS after eat time and
	// never becomes hungry again.
	w.AddStateListener(core.ListenerFunc(func(id core.NodeID, old, new core.State, at sim.Time) {
		if new == core.Eating {
			p := w.Protocol(id)
			sched.After(eat, func() {
				if p.State() == core.Eating {
					p.ExitCS()
				}
			})
		}
	}))
	resp := sim.Time(-1)
	w.AddStateListener(core.ListenerFunc(func(id core.NodeID, old, new core.State, at sim.Time) {
		if id == 1 && new == core.Eating && resp < 0 {
			resp = at - hungryAt
		}
	}))
	sched.At(0, func() { w.Protocol(0).BecomeHungry() })
	sched.At(hungryAt, func() { w.Protocol(1).BecomeHungry() })
	for i := 2; i < n; i++ {
		i := i
		sched.At(hungryAt+sim.Time(i-1)*5_000, func() { w.Protocol(core.NodeID(i)).BecomeHungry() })
	}
	if err := r.RunContext(ctx, sim.Time(n)*60_000+2_000_000); err != nil {
		return 0, err
	}
	if resp < 0 {
		return 0, fmt.Errorf("%s steal scenario: victim never ate", a)
	}
	return resp, nil
}

// mobileAlg2Result is one replica's measurement slice for E4.
type mobileAlg2Result struct {
	mean, p95, maxRT sim.Time
	meals            int
	violations       int
}

// MobileAlg2 sweeps system size for Algorithm 2 under waypoint mobility.
func MobileAlg2(q Quality, replicas int) (*Plan, error) {
	ns := []int{16, 32, 64}
	horizon := sim.Time(10_000_000)
	if q == Quick {
		ns = []int{16, 32}
		horizon = 4_000_000
	}
	layouts := make(map[int][]graph.Point, len(ns))
	for i, n := range ns {
		pts, err := GeometricPoints(n, ConnectedRadius(n), 51+uint64(i))
		if err != nil {
			return nil, err
		}
		layouts[n] = pts
	}
	p := NewPlan()
	for _, n := range ns {
		n := n
		p.Add(fmt.Sprintf("n/%d", n), 52, replicas, func(ctx context.Context, seed uint64) (any, error) {
			radius := ConnectedRadius(n)
			r, err := Build(Spec{
				Seed: seed, Points: layouts[n], Radius: radius,
				NewProtocol: factoryFor(algA2, layouts[n], radius),
				Workload:    workload.Config{EatTime: 5_000, ThinkMax: 10_000, InitialStagger: 5_000},
			})
			if err != nil {
				return nil, err
			}
			if err := r.Start(); err != nil {
				return nil, err
			}
			var movers []core.NodeID
			for m := 0; m < n; m += 4 {
				movers = append(movers, core.NodeID(m))
			}
			manet.Waypoint{Speed: 0.3, PauseMin: 100_000, PauseMax: 400_000, Until: horizon * 3 / 4}.
				Attach(r.World, movers)
			if err := r.RunContext(ctx, horizon); err != nil {
				return nil, err
			}
			st := r.Recorder.Stats()
			return mobileAlg2Result{
				mean: st.Mean, p95: st.P95, maxRT: st.Max,
				meals:      r.TotalMeals(),
				violations: len(r.Checker.Violations()),
			}, nil
		})
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E4",
			Title:  "Algorithm 2 under waypoint mobility vs n",
			Header: []string{"n", "δ", "RT mean", "RT p95", "RT max", "meals", "violations"},
		}
		for _, n := range ns {
			key := fmt.Sprintf("n/%d", n)
			get := func(f func(mobileAlg2Result) sim.Time) Stat {
				return MSStat(timeSample(rs, key, func(v any) sim.Time { return f(v.(mobileAlg2Result)) }))
			}
			mealsS := rs.Sample(key, func(v any) float64 { return float64(v.(mobileAlg2Result).meals) })
			violations := rs.SumInt(key, func(v any) int { return v.(mobileAlg2Result).violations })
			t.AddRow(n, graph.UnitDisk(layouts[n], ConnectedRadius(n)).MaxDegree(),
				get(func(r mobileAlg2Result) sim.Time { return r.mean }),
				get(func(r mobileAlg2Result) sim.Time { return r.p95 }),
				get(func(r mobileAlg2Result) sim.Time { return r.maxRT }),
				NumStat(mealsS, 0), violations)
		}
		t.AddNote("Theorem 25: response stays bounded (O(n²)) and safety holds (violations must be 0) despite movement")
		return t, nil
	}
	return p, nil
}

// rtStats is a (mean, p95) response-time pair for E5's sweep cells.
type rtStats struct {
	mean, p95 sim.Time
}

// Alg1Scaling measures Algorithm 1's static response time against δ (at
// fixed n) and against n (at roughly fixed δ).
func Alg1Scaling(q Quality, replicas int) (*Plan, error) {
	horizon := sim.Time(8_000_000)
	radii := []float64{0.24, 0.3, 0.38}
	ns := []int{16, 32, 64}
	if q == Quick {
		horizon = 3_000_000
		radii = radii[:2]
		ns = ns[:2]
	}
	wl := workload.Config{EatTime: 5_000, ThinkMax: 10_000, InitialStagger: 5_000}
	algs := []algName{algA1Greedy, algA1Linial}
	deltaLayouts := make(map[float64][]graph.Point, len(radii))
	for _, radius := range radii {
		pts, err := GeometricPoints(36, radius, 61)
		if err != nil {
			return nil, err
		}
		deltaLayouts[radius] = pts
	}
	// Keep expected degree roughly constant: r ~ sqrt(c/n), floored at
	// the connectivity threshold.
	nRadius := func(n int) float64 {
		return math.Max(0.22*math.Sqrt(32.0/float64(n)), ConnectedRadius(n))
	}
	nLayouts := make(map[int][]graph.Point, len(ns))
	for _, n := range ns {
		pts, err := GeometricPoints(n, nRadius(n), 63)
		if err != nil {
			return nil, err
		}
		nLayouts[n] = pts
	}
	run := func(ctx context.Context, a algName, pts []graph.Point, radius float64, seed uint64) (any, error) {
		r, err := runStatic(ctx, a, pts, radius, seed, horizon, wl)
		if err != nil {
			return nil, err
		}
		st := r.Recorder.Stats()
		return rtStats{mean: st.Mean, p95: st.P95}, nil
	}
	p := NewPlan()
	for _, radius := range radii {
		radius := radius
		for _, a := range algs {
			a := a
			p.Add(fmt.Sprintf("delta/%v/%s", radius, a), 62, replicas, func(ctx context.Context, seed uint64) (any, error) {
				return run(ctx, a, deltaLayouts[radius], radius, seed)
			})
		}
	}
	for _, n := range ns {
		n := n
		for _, a := range algs {
			a := a
			p.Add(fmt.Sprintf("n/%d/%s", n, a), 64, replicas, func(ctx context.Context, seed uint64) (any, error) {
				return run(ctx, a, nLayouts[n], nRadius(n), seed)
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E5",
			Title:  "Algorithm 1 static response time vs δ (n=36) and vs n (δ≈5)",
			Header: []string{"sweep", "n", "δ", "greedy mean", "greedy p95", "linial mean", "linial p95"},
		}
		addSweep := func(label string, n int, delta int, keyOf func(a algName) string) {
			row := []any{label, n, delta}
			for _, a := range algs {
				key := keyOf(a)
				row = append(row,
					MSStat(timeSample(rs, key, func(v any) sim.Time { return v.(rtStats).mean })),
					MSStat(timeSample(rs, key, func(v any) sim.Time { return v.(rtStats).p95 })))
			}
			t.AddRow(row...)
		}
		for _, radius := range radii {
			radius := radius
			addSweep("δ", 36, graph.UnitDisk(deltaLayouts[radius], radius).MaxDegree(),
				func(a algName) string { return fmt.Sprintf("delta/%v/%s", radius, a) })
		}
		for _, n := range ns {
			n := n
			addSweep("n", n, graph.UnitDisk(nLayouts[n], nRadius(n)).MaxDegree(),
				func(a algName) string { return fmt.Sprintf("n/%d/%s", n, a) })
		}
		t.AddNote("Theorems 17/23: static response is polynomial in δ with only weak n dependence (colours collapse to [0,δ] after first meals)")
		return t, nil
	}
	return p, nil
}

// ColoringScaling compares the two recolouring procedures when all nodes
// start concurrently: rounds to terminate and palette size (Lemma 15 vs
// Lemma 21). Pure computation — no network needed.
func ColoringScaling(q Quality, replicas int) (*Plan, error) {
	ns := []int{16, 64, 256}
	if q == Quick {
		ns = []int{16, 64}
	}
	// Very large bounded-degree systems are where the Linial variant's
	// O(log* n) rounds shine; the greedy flood is too expensive to
	// simulate there, which is itself Lemma 15's point.
	bigNs := []int{1 << 12, 1 << 16, 1 << 20}
	deltas := []int{2, 4}
	p := NewPlan()
	for _, n := range ns {
		n := n
		p.AddOne(fmt.Sprintf("ring/%d", n), func(context.Context) (any, error) {
			return coloringRow("ring", graph.Ring(n))
		})
		p.AddOne(fmt.Sprintf("grid/%d", n), func(context.Context) (any, error) {
			side := 1
			for side*side < n {
				side++
			}
			return coloringRow("grid", graph.Grid(side, side))
		})
		p.AddOne(fmt.Sprintf("geo/%d", n), func(context.Context) (any, error) {
			rng := sim.NewScheduler(uint64(n)).Rand()
			g, _, err := graph.ConnectedGeometric(n, ConnectedRadius(n), rng)
			if err != nil {
				return nil, err
			}
			return coloringRow("geometric", g)
		})
	}
	for _, n := range bigNs {
		n := n
		for _, delta := range deltas {
			delta := delta
			p.AddOne(fmt.Sprintf("bounded/%d/%d", n, delta), func(context.Context) (any, error) {
				sched, err := coloring.Schedule(n, delta)
				if err != nil {
					return nil, err
				}
				final, err := coloring.FinalPalette(n, delta)
				if err != nil {
					return nil, err
				}
				return []any{fmt.Sprintf("bounded-degree δ=%d", delta), n, delta, "-", graph.LogStar(n),
					"≈diameter", "≤δ+1", len(sched), final}, nil
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E6",
			Title:  "Recolouring with all nodes concurrent: rounds and palette size",
			Header: []string{"graph", "n", "δ", "diam", "log*n", "greedy rounds", "greedy palette", "linial rounds", "linial palette"},
		}
		addFirst := func(key string) error {
			v, err := rs.First(key)
			if err != nil {
				return err
			}
			row, ok := v.([]any)
			if !ok {
				return fmt.Errorf("harness: %s produced %T, want []any", key, v)
			}
			t.AddRow(row...)
			return nil
		}
		for _, n := range ns {
			for _, kind := range []string{"ring", "grid", "geo"} {
				if err := addFirst(fmt.Sprintf("%s/%d", kind, n)); err != nil {
					return nil, err
				}
			}
		}
		for _, n := range bigNs {
			for _, delta := range deltas {
				if err := addFirst(fmt.Sprintf("bounded/%d/%d", n, delta)); err != nil {
					return nil, err
				}
			}
		}
		t.AddNote("Lemma 15: greedy needs Θ(diameter)=O(n) rounds, palette ≤ δ+1; Lemma 21: Linial needs O(log* n) rounds, palette O(δ²)")
		t.AddNote("for dense geometric rows δ² approaches n, so the Linial reduction has little to do — its regime is large sparse systems (bottom rows)")
		return t, nil
	}
	return p, nil
}

func coloringRow(name string, g *graph.Graph) ([]any, error) {
	delta := max(g.MaxDegree(), 1)
	gRounds, gPalette := greedyFloodRounds(g)
	sched, err := coloring.Schedule(g.N(), delta)
	if err != nil {
		return nil, err
	}
	final, err := coloring.FinalPalette(g.N(), delta)
	if err != nil {
		return nil, err
	}
	return []any{name, g.N(), delta, g.Diameter(), graph.LogStar(g.N()), gRounds, gPalette, len(sched), final}, nil
}

// greedyFloodRounds simulates Algorithm 4 with every node starting
// concurrently in synchronous rounds: each round every node merges its
// neighbours' conflict graphs; the procedure ends when no graph changes.
// Returns the round count and the palette size of the final greedy
// colouring.
func greedyFloodRounds(g *graph.Graph) (rounds, palette int) {
	sets := make([]coloring.EdgeSet, g.N())
	for v := range sets {
		sets[v] = coloring.NewEdgeSet()
		for _, u := range g.Neighbors(v) {
			sets[v].Add(core.NodeID(v), core.NodeID(u))
		}
	}
	for {
		rounds++
		next := make([]coloring.EdgeSet, g.N())
		changed := false
		for v := range sets {
			next[v] = sets[v].Clone()
			for _, u := range g.Neighbors(v) {
				if next[v].Union(sets[u]) {
					changed = true
				}
			}
		}
		sets = next
		if !changed {
			break
		}
	}
	maxColor := 0
	for v := 0; v < g.N(); v++ {
		if c := coloring.GreedyColor(sets[v], core.NodeID(v)); c > maxColor {
			maxColor = c
		}
	}
	return rounds, maxColor + 1
}

// figure6Result is one replica's phase outcomes for E8.
type figure6Result struct {
	m1, m2, m3 int // meals after the crash phase
	n1, n2, n3 int // meals after p3 moved away
}

// Figure6 runs the §5.1 scenario and reports the phase outcomes.
func Figure6(q Quality, replicas int) (*Plan, error) {
	p := NewPlan()
	p.Add("scenario", 71, replicas, func(ctx context.Context, seed uint64) (any, error) {
		colors := map[core.NodeID]int{0: 3, 1: 2, 3: 1, 2: 4}
		pts := []graph.Point{{X: 0}, {X: 0.1}, {X: 0.3}, {X: 0.2}}
		r, err := Build(Spec{
			Seed:   seed,
			Points: pts,
			Radius: 0.11,
			NewProtocol: func(id core.NodeID) core.Protocol {
				return lme1.New(lme1.Config{
					Variant:      lme1.VariantGreedy,
					InitialColor: func(id core.NodeID) int { return colors[id] },
				})
			},
			Workload: workload.Config{
				EatTime: 5_000, ThinkMin: 5_000, ThinkMax: 5_000,
				Participants: []core.NodeID{0, 1, 3},
			},
		})
		if err != nil {
			return nil, err
		}
		r.World.CrashAt(2, 0) // p4 dies holding the p3–p4 fork
		const phase1 = sim.Time(3_000_000)
		if err := r.RunContext(ctx, phase1); err != nil {
			return nil, err
		}
		out := figure6Result{
			m1: r.Recorder.EatCount(0), m2: r.Recorder.EatCount(1), m3: r.Recorder.EatCount(3),
		}
		// p3 moves away; p2 recovers through the return path.
		r.World.JumpAt(3, graph.Point{X: 0.9, Y: 0.9}, 20_000, phase1+100_000)
		if err := r.RunContext(ctx, 3_000_000); err != nil {
			return nil, err
		}
		out.n1, out.n2, out.n3 = r.Recorder.EatCount(0), r.Recorder.EatCount(1), r.Recorder.EatCount(3)
		return out, nil
	})
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E8",
			Title:  "Figure 6 scenario: p1—p2—p3—p4 (colours 3,2,1,4), p4 crashed holding p3's fork",
			Header: []string{"phase", "p1 meals", "p2 meals", "p3 meals"},
		}
		count := func(f func(figure6Result) int) fleet.Sample {
			return rs.Sample("scenario", func(v any) float64 { return float64(f(v.(figure6Result))) })
		}
		t.AddRow("after crash (3s)",
			NumStat(count(func(r figure6Result) int { return r.m1 }), 0),
			NumStat(count(func(r figure6Result) int { return r.m2 }), 0),
			NumStat(count(func(r figure6Result) int { return r.m3 }), 0))
		t.AddRow("after p3 moves (6s)",
			NumStat(count(func(r figure6Result) int { return r.n1 }), 0),
			NumStat(count(func(r figure6Result) int { return r.n2 }), 0),
			NumStat(count(func(r figure6Result) int { return r.n3 }), 0))
		t.AddNote("expected shape: phase 1 blocks p2 and p3 (within failure locality), p1 progresses; phase 2 frees p2 via the doorway return path and p3 eats alone")
		if q == Full {
			deviants := 0
			for _, v := range rs.Values("scenario") {
				r := v.(figure6Result)
				if r.m2 != 0 || r.m3 != 0 || r.n2 == 0 || r.n3 == 0 {
					deviants++
				}
			}
			if deviants > 0 {
				t.AddNote("WARNING: %d of %d replicas deviate from the expected shape", deviants, len(rs.Values("scenario")))
			}
		}
		return t, nil
	}
	return p, nil
}

// SafetySweep runs every algorithm under static, mobile and crashy
// conditions and reports violations (which must all be zero).
func SafetySweep(q Quality, replicas int) (*Plan, error) {
	n, horizon := 20, sim.Time(4_000_000)
	seeds := []uint64{81, 82, 83}
	if q == Quick {
		seeds = seeds[:1]
		horizon = 2_000_000
	}
	radius := ConnectedRadius(n)
	wl := workload.Config{EatTime: 4_000, ThinkMax: 6_000}
	algs := []algName{algCM, algCS, algA1Greedy, algA1Linial, algA1Reduce, algA2, algA2NoNtf}
	p := NewPlan()
	for _, a := range algs {
		a := a
		for si, seed := range seeds {
			p.Add(fmt.Sprintf("static/%s/%d", a, si), seed, replicas, func(ctx context.Context, seed uint64) (any, error) {
				pts, err := GeometricPoints(n, radius, seed)
				if err != nil {
					return nil, err
				}
				r, err := runStatic(ctx, a, pts, radius, seed, horizon, wl)
				if err != nil {
					return nil, err
				}
				return len(r.Checker.Violations()), nil
			})
			if a == algCS {
				continue // static-only baseline
			}
			p.Add(fmt.Sprintf("mobile/%s/%d", a, si), seed, replicas, func(ctx context.Context, seed uint64) (any, error) {
				pts, err := GeometricPoints(n, radius, seed)
				if err != nil {
					return nil, err
				}
				r, err := Build(Spec{
					Seed: seed, Points: pts, Radius: radius,
					NewProtocol: factoryFor(a, pts, radius),
					Workload:    wl,
				})
				if err != nil {
					return nil, err
				}
				if err := r.Start(); err != nil {
					return nil, err
				}
				manet.Waypoint{Speed: 0.4, PauseMin: 50_000, PauseMax: 200_000, Until: horizon * 2 / 3}.
					Attach(r.World, []core.NodeID{1, 6, 11, 16})
				if err := r.RunContext(ctx, horizon); err != nil {
					return nil, err
				}
				return len(r.Checker.Violations()), nil
			})
			p.Add(fmt.Sprintf("crash/%s/%d", a, si), seed, replicas, func(ctx context.Context, seed uint64) (any, error) {
				pts, err := GeometricPoints(n, radius, seed)
				if err != nil {
					return nil, err
				}
				r, err := Build(Spec{
					Seed: seed + 100, Points: pts, Radius: radius,
					NewProtocol: factoryFor(a, pts, radius),
					Workload:    wl,
				})
				if err != nil {
					return nil, err
				}
				if err := r.Start(); err != nil {
					return nil, err
				}
				r.World.CrashAt(3, horizon/3)
				r.World.CrashAt(12, horizon/2)
				manet.Waypoint{Speed: 0.4, PauseMin: 50_000, PauseMax: 200_000, Until: horizon * 2 / 3}.
					Attach(r.World, []core.NodeID{1, 6})
				if err := r.RunContext(ctx, horizon); err != nil {
					return nil, err
				}
				return len(r.Checker.Violations()), nil
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E9",
			Title:  "Safety sweep: mutual exclusion violations (must be 0)",
			Header: []string{"algorithm", "static viol", "mobile viol", "crashy viol", "runs"},
		}
		for _, a := range algs {
			staticV, mobileV, crashV, runs := 0, 0, 0, 0
			for si := range seeds {
				for kind, into := range map[string]*int{"static": &staticV, "mobile": &mobileV, "crash": &crashV} {
					key := fmt.Sprintf("%s/%s/%d", kind, a, si)
					*into += rs.SumInt(key, func(v any) int { return v.(int) })
					runs += len(rs.Values(key))
				}
			}
			t.AddRow(string(a), staticV, mobileV, crashV, runs)
		}
		return t, nil
	}
	return p, nil
}

// msgResult is one replica's traffic measurement for E10.
type msgResult struct {
	msgs   uint64
	meals  int
	byType map[string]uint64
}

// MessageComplexity measures protocol messages per completed critical
// section — the performance measure the paper's Discussion chapter leaves
// for future work. Doorway traffic makes Algorithm 1 heavier per meal
// than the doorway-free Algorithm 2; mobility adds recolouring traffic.
func MessageComplexity(q Quality, replicas int) (*Plan, error) {
	n, horizon := 32, sim.Time(6_000_000)
	if q == Quick {
		n, horizon = 16, 2_000_000
	}
	radius := ConnectedRadius(n)
	pts, err := GeometricPoints(n, radius, 91)
	if err != nil {
		return nil, err
	}
	wl := workload.Config{EatTime: 5_000, ThinkMax: 10_000, InitialStagger: 5_000}
	algs := []algName{algCM, algCS, algA1Greedy, algA1Linial, algA2}
	p := NewPlan()
	for _, a := range algs {
		a := a
		p.Add("static/"+string(a), 92, replicas, func(ctx context.Context, seed uint64) (any, error) {
			r, err := Build(Spec{
				Seed: seed, Points: pts, Radius: radius,
				NewProtocol: factoryFor(a, pts, radius),
				Workload:    wl,
			})
			if err != nil {
				return nil, err
			}
			if err := r.RunContext(ctx, horizon); err != nil {
				return nil, fmt.Errorf("%s: %w", a, err)
			}
			return msgResult{
				msgs:   r.World.MessagesSent(),
				meals:  r.TotalMeals(),
				byType: r.Registry.CountersWithPrefix(metrics.PrefixSent),
			}, nil
		})
		if a != algCS {
			p.Add("mobile/"+string(a), 93, replicas, func(ctx context.Context, seed uint64) (any, error) {
				r, err := Build(Spec{
					Seed: seed, Points: pts, Radius: radius,
					NewProtocol: factoryFor(a, pts, radius),
					Workload:    wl,
				})
				if err != nil {
					return nil, err
				}
				if err := r.Start(); err != nil {
					return nil, err
				}
				var movers []core.NodeID
				for m := 1; m < n; m += max(n/4, 1) {
					movers = append(movers, core.NodeID(m))
				}
				manet.Waypoint{Speed: 0.3, PauseMin: 100_000, PauseMax: 400_000, Until: horizon * 3 / 4}.
					Attach(r.World, movers)
				if err := r.RunContext(ctx, horizon); err != nil {
					return nil, err
				}
				return msgResult{msgs: r.World.MessagesSent(), meals: r.TotalMeals()}, nil
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:    "E10",
			Title: fmt.Sprintf("Messages per critical section (n=%d, δ=%d)", n, graph.UnitDisk(pts, radius).MaxDegree()),
			Header: []string{"algorithm", "static msg/meal", "static meals",
				"mobile msg/meal", "mobile meals", "static breakdown"},
		}
		cellsFor := func(key string) (perMealCell any, mealsCell any) {
			vals := rs.Values(key)
			var ratioS, mealsS fleet.Sample
			for _, v := range vals {
				m := v.(msgResult)
				mealsS.Add(float64(m.meals))
				if m.meals > 0 {
					ratioS.Add(float64(m.msgs) / float64(m.meals))
				}
			}
			if ratioS.N() < len(vals) {
				return "∞", NumStat(mealsS, 0) // some replica completed no meal
			}
			return NumStat(ratioS, 1), NumStat(mealsS, 0)
		}
		for _, a := range algs {
			perMealCell, mealsCell := cellsFor("static/" + string(a))
			// Breakdown percentages merge every replica's traffic.
			merged := map[string]uint64{}
			total := uint64(0)
			for _, v := range rs.Values("static/" + string(a)) {
				m := v.(msgResult)
				total += m.msgs
				for k, c := range m.byType {
					merged[k] += c
				}
			}
			mobilePerMeal, mobileMeals := any("n/a"), any("n/a")
			if a != algCS {
				mobilePerMeal, mobileMeals = cellsFor("mobile/" + string(a))
			}
			t.AddRow(string(a), perMealCell, mealsCell, mobilePerMeal, mobileMeals, breakdown(merged, total))
		}
		t.AddNote("msg/meal = protocol messages handed to the transport divided by completed critical sections")
		t.AddNote("Algorithm 1 pays for doorway cross/exit broadcasts and (under mobility) recolouring rounds; Algorithm 2's notification adds O(δ) per hunger but needs no doorways")
		return t, nil
	}
	return p, nil
}

// breakdown renders the top message types by share of total traffic.
func breakdown(byType map[string]uint64, total uint64) string {
	if total == 0 {
		return ""
	}
	type kv struct {
		name  string
		count uint64
	}
	var all []kv
	for k, v := range byType {
		all = append(all, kv{name: k, count: v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].name < all[j].name
	})
	var parts []string
	for i, e := range all {
		if i >= 3 {
			break
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", e.name, 100*float64(e.count)/float64(total)))
	}
	return strings.Join(parts, " ")
}

// FIFOAblation probes the Ch. 7 open question "is the FIFO link
// assumption necessary?" empirically: the same contended runs with FIFO
// delivery disabled. The algorithms' proofs lean on FIFO in several
// places (doorway interleaving, colour-before-request ordering, the
// request-after-fork invariant); this experiment reports what actually
// breaks — safety violations and starvation counts — across seeds.
func FIFOAblation(q Quality, replicas int) (*Plan, error) {
	n, horizon := 20, sim.Time(5_000_000)
	seeds := []uint64{101, 102, 103, 104}
	if q == Quick {
		seeds = seeds[:2]
		horizon = 2_000_000
	}
	radius := ConnectedRadius(n)
	algs := []algName{algCM, algA1Greedy, algA1Linial, algA2}
	type ablationResult struct{ viol, starved int }
	p := NewPlan()
	for _, a := range algs {
		a := a
		for si, seed := range seeds {
			for _, nonFIFO := range []bool{false, true} {
				nonFIFO := nonFIFO
				kind := "fifo"
				if nonFIFO {
					kind = "loose"
				}
				p.Add(fmt.Sprintf("%s/%s/%d", kind, a, si), seed, replicas, func(ctx context.Context, seed uint64) (any, error) {
					pts, err := GeometricPoints(n, radius, seed)
					if err != nil {
						return nil, err
					}
					r, err := Build(Spec{
						Seed: seed, Points: pts, Radius: radius,
						NewProtocol: factoryFor(a, pts, radius),
						Workload:    workload.Config{EatTime: 4_000, ThinkMax: 6_000},
						NonFIFO:     nonFIFO,
					})
					if err != nil {
						return nil, err
					}
					// Deliberately not using RunContext's safety check:
					// violations are the measurement here, not an error.
					if err := r.Start(); err != nil {
						return nil, err
					}
					sched := r.World.Scheduler()
					if err := sched.RunUntil(horizon, uint64(n)*uint64(horizon/50+1_000_000)); err != nil {
						return nil, err
					}
					return ablationResult{
						viol:    len(r.Checker.Violations()),
						starved: len(r.Prober.Blocked(horizon, horizon/3)),
					}, nil
				})
			}
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E12",
			Title:  fmt.Sprintf("Links without FIFO order (n=%d, %d seeds): what breaks", n, len(seeds)),
			Header: []string{"algorithm", "FIFO viol", "FIFO starved", "non-FIFO viol", "non-FIFO starved"},
		}
		for _, a := range algs {
			var fifoV, fifoS, looseV, looseS int
			for si := range seeds {
				fifoV += rs.SumInt(fmt.Sprintf("fifo/%s/%d", a, si), func(v any) int { return v.(ablationResult).viol })
				fifoS += rs.SumInt(fmt.Sprintf("fifo/%s/%d", a, si), func(v any) int { return v.(ablationResult).starved })
				looseV += rs.SumInt(fmt.Sprintf("loose/%s/%d", a, si), func(v any) int { return v.(ablationResult).viol })
				looseS += rs.SumInt(fmt.Sprintf("loose/%s/%d", a, si), func(v any) int { return v.(ablationResult).starved })
			}
			t.AddRow(string(a), fifoV, fifoS, looseV, looseS)
		}
		t.AddNote("starved = nodes continuously hungry for the final third of the run; the FIFO columns are the control and must be 0/0")
		t.AddNote("Ch. 7 leaves relaxing the FIFO assumption to self-stabilising variants; nonzero non-FIFO cells measure how much the published algorithms rely on it")
		return t, nil
	}
	return p, nil
}

// LocalityDividend compares aggregate critical-section throughput of a
// LOCAL mutual exclusion algorithm (Alg 2) against a GLOBAL one
// (Raymond's tree token) on growing grids — quantifying the paper's
// introductory argument for the local problem: exclusion is only needed
// among radio neighbours, so distant nodes should proceed concurrently.
func LocalityDividend(q Quality, replicas int) (*Plan, error) {
	sides := []int{3, 4, 6, 8}
	horizon := sim.Time(5_000_000)
	if q == Quick {
		sides = []int{3, 4}
		horizon = 2_000_000
	}
	const eat = sim.Time(4_000)
	p := NewPlan()
	for _, side := range sides {
		side := side
		for _, a := range []algName{algA2, algGlobal} {
			a := a
			kind := "local"
			if a == algGlobal {
				kind = "global"
			}
			p.Add(fmt.Sprintf("%s/%d", kind, side), 71, replicas, func(ctx context.Context, seed uint64) (any, error) {
				pts := GridPoints(side, side, 0.1)
				r, err := runStatic(ctx, a, pts, 0.11, seed, horizon, workload.Config{EatTime: eat})
				if err != nil {
					return nil, err
				}
				return r.TotalMeals(), nil
			})
		}
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E11",
			Title:  "Aggregate throughput on a grid, saturated: local (alg2) vs global (Raymond token)",
			Header: []string{"grid", "n", "local meals", "global meals", "dividend", "serial ceiling"},
		}
		for _, side := range sides {
			local := rs.Values(fmt.Sprintf("local/%d", side))
			global := rs.Values(fmt.Sprintf("global/%d", side))
			var localS, globalS, divS fleet.Sample
			for i := range local {
				lm := float64(local[i].(int))
				localS.Add(lm)
				if i < len(global) {
					gm := float64(global[i].(int))
					globalS.Add(gm)
					if gm > 0 {
						divS.Add(lm / gm)
					}
				}
			}
			dividend := any("n/a")
			if divS.N() == localS.N() && divS.N() > 0 {
				text := fmt.Sprintf("%.1fx", divS.Mean())
				if divS.N() > 1 {
					text += fmt.Sprintf("±%.1f", divS.StdErr())
				}
				dividend = Stat{Text: text, Sample: divS}
			}
			t.AddRow(fmt.Sprintf("%dx%d", side, side), side*side,
				NumStat(localS, 0), NumStat(globalS, 0), dividend, int(horizon/eat))
		}
		t.AddNote("the global token serialises the whole system (meals ≤ horizon/τ and below, due to token travel); local mutual exclusion scales with the grid's independent sets")
		return t, nil
	}
	return p, nil
}

// DoorwayLatency measures the double-doorway traversal latency against
// the number of contenders via a dedicated probe protocol (no forks), the
// quantity Lemmas 1–2 bound by O(δT).
func DoorwayLatency(q Quality, replicas int) (*Plan, error) {
	sizes := []int{2, 4, 8, 16}
	if q == Quick {
		sizes = []int{2, 4, 8}
	}
	p := NewPlan()
	for _, n := range sizes {
		n := n
		p.Add(fmt.Sprintf("n/%d", n), uint64(n), replicas, func(ctx context.Context, seed uint64) (any, error) {
			return doorwayProbe(n, sim.Time(20_000) /* hold */, sim.Time(4_000_000), seed)
		})
	}
	p.Reduce = func(rs *ResultSet) (*Table, error) {
		t := &Table{
			ID:     "E7",
			Title:  "Double doorway traversal latency on a clique of contenders",
			Header: []string{"contenders (δ+1)", "entries", "mean latency", "p95 latency", "max latency"},
		}
		for _, n := range sizes {
			key := fmt.Sprintf("n/%d", n)
			countS := rs.Sample(key, func(v any) float64 { return float64(v.(metrics.Stats).Count) })
			t.AddRow(n, NumStat(countS, 0),
				MSStat(timeSample(rs, key, func(v any) sim.Time { return v.(metrics.Stats).Mean })),
				MSStat(timeSample(rs, key, func(v any) sim.Time { return v.(metrics.Stats).P95 })),
				MSStat(timeSample(rs, key, func(v any) sim.Time { return v.(metrics.Stats).Max })))
		}
		t.AddNote("Lemma 1: traversal is O(δT) where T is the time spent behind the doorway (hold=20ms here)")
		return t, nil
	}
	return p, nil
}

// ConnectedRadius returns a radio range slightly above the connectivity
// threshold of a random geometric graph on n nodes (sqrt(ln n/(π n)) plus
// margin), giving expected degree ln n + 2 — the standard "sparse but
// connected" operating point of the experiments.
func ConnectedRadius(n int) float64 {
	return math.Sqrt((math.Log(float64(n)) + 2) / (math.Pi * float64(n)))
}
