package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/trace"
	"lme/internal/workload"
)

// spanRun executes one crash scenario with the span layer attached and
// returns the finalized span JSONL bytes.
func spanRun(t *testing.T, seed uint64) []byte {
	t.Helper()
	pts := LinePoints(8, 0.1)
	r, err := Build(Spec{
		Seed: seed, Points: pts, Radius: 0.11,
		NewProtocol: factoryFor(algA1Greedy, pts, 0.11),
		Workload:    workload.Config{EatTime: 4_000}, // saturated
		Spans:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.World.CrashAt(4, 500_000)
	if err := r.RunFor(2_000_000); err != nil {
		t.Fatal(err)
	}
	r.FinalizeSpans()
	var buf bytes.Buffer
	if err := r.Spans.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpanJSONLDeterministic pins the acceptance criterion: the same seed
// produces a byte-identical span file across two independent runs.
func TestSpanJSONLDeterministic(t *testing.T) {
	first := spanRun(t, 7)
	second := spanRun(t, 7)
	if len(first) == 0 {
		t.Fatal("span run produced no spans")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("same seed, different span JSONL")
	}
	// A different seed produces a different file (the determinism test
	// would pass vacuously if spans ignored the run).
	if bytes.Equal(first, spanRun(t, 8)) {
		t.Fatal("seed does not influence spans")
	}
}

// TestEngineSpanTablesDeterministicAcrossWorkers extends the engine's
// bit-identical-table guarantee to the span-bearing experiment: E2's
// measured-locality columns (span attribution included) must not depend
// on the worker count.
func TestEngineSpanTablesDeterministicAcrossWorkers(t *testing.T) {
	exp := Experiment{ID: "E2", Title: "locality", Plan: FailureLocality}
	render := func(workers int) []byte {
		t.Helper()
		tbl, err := Engine{Workers: workers, Replicas: 2}.Run(exp, Quick)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := json.Marshal(tbl)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := render(1)
	wide := render(max(runtime.GOMAXPROCS(0), 8))
	if !bytes.Equal(serial, wide) {
		t.Fatalf("span table differs across worker counts:\nserial: %s\nwide:   %s", serial, wide)
	}
}

// TestPostmortemOnViolation drives the flight recorder end to end: a run
// with the recorder armed, an injected safety violation, and a dump that
// contains the ring tail, the open spans and the wait-for graph.
func TestPostmortemOnViolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.json")
	pts := LinePoints(4, 0.1)
	r, err := Build(Spec{
		Seed: 1, Points: pts, Radius: 0.11,
		NewProtocol:    factoryFor(algA2, pts, 0.11),
		TraceRing:      256,
		Spans:          true,
		PostmortemPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunFor(300_000); err != nil {
		t.Fatal(err)
	}
	now := r.World.Scheduler().Now()
	// Guarantee an open span in the dump: the collector folds the bus, so
	// a synthetic hungry transition opens an attempt for node 2 without
	// touching the protocols.
	r.World.Bus().Publish(trace.Event{
		Kind: trace.KindState, Node: 2, Peer: trace.NoNode,
		Old: "thinking", New: "hungry", At: now,
	})
	// Inject the violation straight into the checker (the protocols are
	// correct, so a real one never happens): neighbours 0 and 1 eating.
	// The first call may already trip if the run left a neighbour eating,
	// so the dump's At is somewhere in [now+1, now+2].
	r.Checker.OnStateChange(0, core.Hungry, core.Eating, now+1)
	r.Checker.OnStateChange(1, core.Hungry, core.Eating, now+2)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight recorder wrote nothing: %v", err)
	}
	var pm span.Postmortem
	if err := json.Unmarshal(data, &pm); err != nil {
		t.Fatal(err)
	}
	if pm.Schema != span.PostmortemSchema || pm.Reason == "" || pm.At < now+1 || pm.At > now+2 {
		t.Fatalf("dump header: schema=%q reason=%q at=%v (now=%v)",
			pm.Schema, pm.Reason, pm.At, now)
	}
	if len(pm.Ring) == 0 {
		t.Fatal("dump has an empty ring despite TraceRing")
	}
	var openNode2 bool
	for _, s := range pm.Open {
		if s.Node == 2 && s.Outcome == span.OutcomeOpen {
			openNode2 = true
		}
	}
	if !openNode2 {
		t.Fatalf("dump misses the open span of node 2: %+v", pm.Open)
	}

	// The recorder writes once: a second violation must not clobber the
	// first dump.
	r.Checker.OnStateChange(3, core.Hungry, core.Eating, now+3)
	r.Checker.OnStateChange(2, core.Hungry, core.Eating, now+4)
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("second violation rewrote the post-mortem dump")
	}
}

// TestMeasuredFailureLocalityContrast pins the headline measurement of
// the span layer on the quick E2 geometric scenario: Algorithm 2's
// measured failure locality stays within the paper's bound of 2 while
// Algorithm 1's exceeds it.
func TestMeasuredFailureLocalityContrast(t *testing.T) {
	const n = 16
	radius := ConnectedRadius(n)
	pts, err := GeometricPoints(n, radius, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Seed 32 produces an alg1 blocking chain of depth 3 on this layout
	// under the per-node random streams (the shared-stream substrate used
	// 31; re-picked when the streams changed, same scenario shape).
	horizon := sim.Time(3_000_000)
	ctx := context.Background()
	a1, err := blockedRadius(ctx, algA1Greedy, pts, radius, 32, horizon)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := blockedRadius(ctx, algA2, pts, radius, 32, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if a2.spanDist > 2 {
		t.Fatalf("alg2 measured locality %d > 2 (paper bound)", a2.spanDist)
	}
	if a1.spanDist <= 2 {
		t.Fatalf("alg1 measured locality %d, expected > 2 on this scenario", a1.spanDist)
	}
	// The span attribution and the starvation probe measure the same
	// phenomenon: they must agree on this scenario.
	if a1.spanDist != a1.radius || a2.spanDist != a2.radius {
		t.Fatalf("span/starvation divergence: alg1 %d/%d, alg2 %d/%d",
			a1.spanDist, a1.radius, a2.spanDist, a2.radius)
	}
}
