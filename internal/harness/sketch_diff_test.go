package harness

import (
	"context"
	"fmt"
	"math"
	"testing"

	"lme/internal/core"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/workload"
)

// diffCell runs one harness spec with full sample retention and checks
// that the sketch-served statistics (what the tables now print) agree
// with the exact nearest-rank summary of the retained samples: the
// count/mean/max fields exactly, the quantiles within the sketch's
// relative accuracy (plus 1µs of integer-rounding slack).
func diffCell(t *testing.T, name string, spec Spec, crash int, horizon sim.Time) {
	t.Helper()
	spec.RetainSamples = true
	r, err := Build(spec)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if crash >= 0 {
		r.World.CrashAt(core.NodeID(crash), horizon/4)
	}
	if err := r.RunContext(context.Background(), horizon); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	exact := metrics.Summarize(r.Recorder.Samples())
	got := r.Recorder.Stats()
	if got.Count == 0 {
		t.Fatalf("%s: no response samples", name)
	}
	if got.Count != exact.Count || got.Mean != exact.Mean || got.Max != exact.Max {
		t.Errorf("%s: exact fields diverge: sketch %+v exact %+v", name, got, exact)
	}
	alpha := r.Recorder.Sketch().RelativeAccuracy()
	for _, q := range []struct {
		name         string
		sketch, want sim.Time
	}{{"p50", got.P50, exact.P50}, {"p95", got.P95, exact.P95}} {
		if diff := math.Abs(float64(q.sketch) - float64(q.want)); diff > alpha*float64(q.want)+1 {
			t.Errorf("%s: %s: sketch %d vs exact %d (off by %.0fµs, tolerance %.0f)",
				name, q.name, q.sketch, q.want, diff, alpha*float64(q.want)+1)
		}
	}
}

// TestSketchMatchesExactOnExperimentCells is the differential check over
// the E1 and E2 cell shapes: every algorithm of Table 1 on its static
// geometric topology (E1's static cells) and crash runs on the line and
// geometric layouts FailureLocality uses (E2's cells), each compared
// sketch-vs-exact at Quick scale.
func TestSketchMatchesExactOnExperimentCells(t *testing.T) {
	horizon := sim.Time(1_500_000)
	wl := workload.Config{EatTime: 5_000, ThinkMax: 10_000, InitialStagger: 5_000}

	// E1 static cells: all five Table-1 algorithms on the shared
	// geometric layout.
	n := 24
	radius := ConnectedRadius(n)
	pts, err := GeometricPoints(n, radius, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []algName{algCM, algCS, algA1Greedy, algA1Linial, algA2} {
		diffCell(t, "E1/static/"+string(a), Spec{
			Seed: 21, Points: pts, Radius: radius,
			NewProtocol: factoryFor(a, pts, radius),
			Workload:    wl,
		}, -1, horizon)
	}

	// E2 cells: crash runs under a saturated workload on a line and on
	// the geometric layout, for the contrasting-locality algorithms.
	linePts := LinePoints(16, 0.05)
	for _, a := range []algName{algCM, algA2} {
		diffCell(t, "E2/line/"+string(a), Spec{
			Seed: 31, Points: linePts, Radius: 0.06,
			NewProtocol: factoryFor(a, linePts, 0.06),
			Workload:    workload.Config{EatTime: 4_000},
		}, 8, horizon)
		diffCell(t, "E2/geo/"+string(a), Spec{
			Seed: 32, Points: pts, Radius: radius,
			NewProtocol: factoryFor(a, pts, radius),
			Workload:    workload.Config{EatTime: 4_000},
		}, 0, horizon)
	}
}

// TestMergedSketchCellDeterministicAcrossWorkers pins tentpole part 3:
// the rendered E1 table — merged-sketch percentile columns included —
// is byte-identical for every worker count at replicas > 1.
func TestMergedSketchCellDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica experiment sweep")
	}
	exp := Experiments()[0] // E1
	var want string
	for _, workers := range []int{1, 4} {
		tbl, err := Engine{Workers: workers, Replicas: 2}.Run(exp, Quick)
		if err != nil {
			t.Fatal(err)
		}
		got := tbl.String() + fmt.Sprintf("%+v", tbl.CellStats)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("table differs between 1 and %d workers:\n%s\nvs\n%s", workers, got, want)
		}
	}
}
