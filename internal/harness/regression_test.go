package harness

import (
	"context"
	"testing"

	"lme/internal/core"
	"lme/internal/manet"
	"lme/internal/sim"
	"lme/internal/workload"
)

// TestMoverEatsFromRecolorDoorwayEntry pins the fix for a stale-doorway
// crash found by the fleet engine's derived replica seeds (E9 mobile
// sweep, replica 1). A mover whose recolouring journey is interrupted by
// successive link-ups can be handed its last fork while parked at the
// AD^r *entry* and eat there (the Line 19 corner). ExitCS used to exit
// only the fork doorways, so the pending AD^r entry survived, crossed
// mid-way through the next (non-recolouring) journey and hijacked the
// phase machine until finishRecolor hit "BeginEntry while behind" in the
// fork doorway. ExitCS now exits/aborts all four doorways.
func TestMoverEatsFromRecolorDoorwayEntry(t *testing.T) {
	const seed = uint64(0xde7f33488454a0c) // fleet.Seed(82, 1)
	n, horizon := 20, sim.Time(4_000_000)
	radius := ConnectedRadius(n)
	wl := workload.Config{EatTime: 4_000, ThinkMax: 6_000}
	pts, err := GeometricPoints(n, radius, seed)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Build(Spec{
		Seed: seed, Points: pts, Radius: radius,
		NewProtocol: factoryFor(algA1Greedy, pts, radius),
		Workload:    wl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	manet.Waypoint{Speed: 0.4, PauseMin: 50_000, PauseMax: 200_000, Until: horizon * 2 / 3}.
		Attach(r.World, []core.NodeID{1, 6, 11, 16})
	if err := r.RunContext(context.Background(), horizon); err != nil {
		t.Fatal(err)
	}
	if err := r.Checker.Err(); err != nil {
		t.Fatalf("mutual exclusion violated: %v", err)
	}
}
