// Package harness assembles complete simulation runs: world + protocol
// instances + dining workload + safety checker + metrics, from a single
// declarative Spec. It is algorithm-agnostic — algorithms are injected as
// a protocol factory — and is used by the unit tests of every algorithm,
// by the experiment suite (experiments.go) and by the benchmarks.
package harness

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/manet"
	"lme/internal/metrics"
	"lme/internal/progress"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/workload"
)

// Spec declares a run.
type Spec struct {
	// Seed drives every random choice of the run.
	Seed uint64

	// Points are the node positions; Radius is the radio range.
	Points []graph.Point
	Radius float64

	// NewProtocol builds the algorithm instance for each node.
	NewProtocol func(id core.NodeID) core.Protocol

	// Workload configures the dining cycle; the zero value selects
	// workload.DefaultConfig.
	Workload workload.Config

	// MinDelay/MaxDelay override the message delay bounds when nonzero.
	MinDelay, MaxDelay sim.Time

	// NonFIFO disables FIFO link delivery (assumption ablation).
	NonFIFO bool

	// TraceRing sizes the world's retained event history (0 = none).
	TraceRing int

	// Spans attaches a span.Collector to the run's event bus, folding the
	// event stream into CS-attempt spans, a wait-for graph and per-crash
	// locality attribution (Run.Spans).
	Spans bool

	// SpanFold selects the collector's streaming fold mode: closed spans
	// collapse immediately into the per-phase/per-node aggregates and are
	// discarded, bounding span memory by O(nodes) instead of O(run).
	// Summary, open spans, the wait-for graph and the crash attribution
	// are unaffected; Spans()/WriteJSONL are unavailable. Implies Spans.
	// The eating timeline (Run.Timeline, the Gantt source) is also
	// skipped: it is O(meals) retained history.
	SpanFold bool

	// RetainSamples keeps the response recorder's exact per-sample
	// slices (Recorder.Samples/NodeSamples) alongside its streaming
	// sketch — the full-fidelity O(run) path, off by default.
	RetainSamples bool

	// PostmortemPath arms the flight recorder: on the first safety
	// violation the trace-ring tail, every open span and the wait-for
	// graph are dumped to this file. Requires Spans; a TraceRing makes
	// the dump's ring section non-empty.
	PostmortemPath string

	// Tiles and ShardWorkers select manet's region-sharded parallel
	// engine (see manet.Config): Tiles > 1 partitions the world into a
	// Tiles×Tiles grid executed by up to ShardWorkers goroutines
	// (0 = GOMAXPROCS). Zero or one keeps the single-heap engine. The
	// event trace is bit-identical either way.
	Tiles        int
	ShardWorkers int

	// Lean skips the per-message-type Registry instrumentation and the
	// eating Timeline — the observers that make the bus do work for
	// every traffic event. For very large worlds (lmebench -scale) this
	// keeps per-event cost at the dark-run floor; the safety checker,
	// response recorder and prober still observe state transitions.
	Lean bool

	// Telemetry enables the engine's execution-telemetry counters
	// (World.EngineTelemetry, surfaced through the progress heartbeat's
	// engine section). Out-of-band: traces, hashes and tables are
	// bit-identical with it on or off.
	Telemetry bool
}

// Run is an assembled simulation.
type Run struct {
	World    *manet.World
	Driver   *workload.Driver
	Checker  *metrics.SafetyChecker
	Recorder *metrics.ResponseRecorder
	Prober   *metrics.Prober
	Timeline *metrics.Timeline

	// Registry accumulates the run's telemetry: per-message-type
	// counters and the link-delay histogram, fed from the world's
	// event bus.
	Registry *metrics.Registry

	// Spans folds the event stream into CS-attempt spans when
	// Spec.Spans was set (nil otherwise). Call FinalizeSpans once the
	// run is over, before reading Spans.Spans()/Impacts()/Summary().
	Spans *span.Collector

	started   bool
	finalized bool
	pmWritten bool

	// progress, when attached, is ticked at every RunContext slice
	// boundary and fed the run's gauges.
	progress *progress.Reporter

	// lossSeen tracks how much of the bus's trace-loss counters this run
	// has already folded into the process-wide totals.
	lossSeen struct{ overwritten, dropped uint64 }
}

// Build assembles a run; call Start (or RunFor, which starts implicitly)
// to execute it.
func Build(spec Spec) (*Run, error) {
	if len(spec.Points) == 0 {
		return nil, fmt.Errorf("harness: no nodes")
	}
	if spec.NewProtocol == nil {
		return nil, fmt.Errorf("harness: no protocol factory")
	}
	cfg := manet.DefaultConfig()
	cfg.Seed = spec.Seed
	if spec.Radius > 0 {
		cfg.Radius = spec.Radius
	}
	if spec.MinDelay > 0 {
		cfg.MinDelay = spec.MinDelay
	}
	if spec.MaxDelay > 0 {
		cfg.MaxDelay = spec.MaxDelay
	}
	cfg.NonFIFO = spec.NonFIFO
	cfg.TraceRing = spec.TraceRing
	cfg.Tiles = spec.Tiles
	cfg.ShardWorkers = spec.ShardWorkers
	cfg.Telemetry = spec.Telemetry
	w := manet.NewWorld(cfg)
	for _, p := range spec.Points {
		id := w.AddNode(p)
		w.SetProtocol(id, spec.NewProtocol(id))
	}

	wcfg := spec.Workload
	if wcfg.EatTime == 0 && wcfg.ThinkMin == 0 && wcfg.ThinkMax == 0 {
		defaults := workload.DefaultConfig()
		defaults.Participants = wcfg.Participants
		wcfg = defaults
	}
	var recOpts []metrics.RecorderOption
	if spec.RetainSamples {
		recOpts = append(recOpts, metrics.Retain())
	}
	r := &Run{
		World:    w,
		Driver:   workload.New(w, wcfg),
		Checker:  metrics.NewSafetyChecker(w),
		Recorder: metrics.NewResponseRecorder(recOpts...),
		Prober:   metrics.NewProber(),
		Registry: metrics.NewRegistry(),
	}
	if !spec.SpanFold && !spec.Lean {
		// The eating timeline (Gantt source) keeps one interval per meal
		// — O(run) retained history, so streaming fold mode skips it.
		r.Timeline = metrics.NewTimeline()
	}
	if !spec.Lean {
		metrics.Instrument(w.Bus(), r.Registry, w.TypeNamer())
	}
	if spec.Spans || spec.SpanFold {
		if spec.SpanFold {
			r.Spans = span.NewStreaming()
		} else {
			r.Spans = span.New()
		}
		// Seed the initial adjacency: links that exist from t=0 emit no
		// KindLink events, so the collector cannot learn them from the
		// stream the way an offline trace reader would guess from Sends.
		g := graph.UnitDisk(spec.Points, cfg.Radius)
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < v {
					r.Spans.SeedLink(core.NodeID(u), core.NodeID(v))
				}
			}
		}
		r.Spans.Attach(w.Bus())
		if spec.PostmortemPath != "" {
			path := spec.PostmortemPath
			r.Checker.SetOnViolation(func(v metrics.Violation) {
				if r.pmWritten {
					return
				}
				r.pmWritten = true
				f, err := os.Create(path)
				if err != nil {
					return
				}
				defer f.Close()
				ring := w.Bus().Recent(1 << 20)
				_ = span.WritePostmortem(f, v.String(), v.At, ring, r.Spans)
			})
		}
	}
	w.SetEventHook(func(sim.Time) { totalEvents.Add(1) })
	w.AddStateListener(r.Checker)
	w.AddStateListener(r.Recorder)
	w.AddStateListener(r.Prober)
	if r.Timeline != nil {
		w.AddStateListener(r.Timeline)
	}
	// The driver runs inline in the transitioning node's execution
	// context (it schedules the node's follow-up events); under the
	// single-heap engine this preserves its legacy last-listener slot.
	w.AddLocalStateListener(r.Driver)
	w.AddLinkListener(r.Checker)
	w.AddMoveListener(r.Recorder)
	return r, nil
}

// Start initialises the protocols and schedules the workload. It is
// idempotent.
func (r *Run) Start() error {
	if r.started {
		return nil
	}
	r.started = true
	if err := r.World.Start(); err != nil {
		return err
	}
	r.Driver.Start()
	return nil
}

// RunFor advances virtual time by d (from the current instant) and then
// verifies the safety invariant, returning its violation (if any) or any
// scheduler error. The event budget guards against livelock; it scales
// with the horizon and node count.
func (r *Run) RunFor(d sim.Time) error {
	return r.RunContext(context.Background(), d)
}

// RunContext is RunFor with cooperative cancellation: virtual time
// advances in slices and the run aborts with ctx's error at the next
// slice boundary once ctx is done. The event sequence is identical to an
// unsliced run — slicing only adds cancellation points — so results stay
// bit-for-bit deterministic per seed.
func (r *Run) RunContext(ctx context.Context, d sim.Time) error {
	if err := r.Start(); err != nil {
		return err
	}
	w := r.World
	deadline := w.Now() + d
	remaining := uint64(w.N()+1) * uint64(d/50+1_000_000)
	slice := d / 64
	if slice < 1 {
		slice = 1
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		next := w.Now() + slice
		if next > deadline {
			next = deadline
		}
		before := w.Processed()
		if err := w.RunUntil(next, remaining); err != nil {
			return err
		}
		// RunUntil errors when it exhausts the budget, so on success
		// strictly fewer events ran and the remainder stays positive.
		remaining -= w.Processed() - before
		if r.progress != nil {
			r.progress.Tick()
		}
		if w.Now() >= deadline {
			break
		}
	}
	r.foldTraceLoss()
	return r.Checker.Err()
}

// AttachProgress binds a heartbeat reporter to this run's gauges; it is
// ticked at every RunContext slice boundary (wall-clock gated, so the
// per-slice cost is two time loads when quiet). Call Reporter.Final
// after the run for the closing record.
func (r *Run) AttachProgress(cfg progress.Config) *progress.Reporter {
	bus := r.World.Bus()
	src := progress.Sources{
		Now:    r.World.Now,
		Events: r.World.Processed,
		Loss:   func() (uint64, uint64) { return bus.Overwritten(), bus.SinkDropped() },
	}
	if r.Spans != nil {
		src.OpenSpans = r.Spans.OpenCount
	}
	// The engine section rides along when the world collects telemetry.
	// Safe here because this reporter is ticked at slice boundaries —
	// coordinator context, no window in flight.
	if r.World.Config().Telemetry {
		src.Engine = r.World.EngineTelemetry
	}
	r.progress = progress.New(cfg, src)
	return r.progress
}

// foldTraceLoss accumulates this run's bus loss counters into the
// process-wide totals, counting each loss exactly once across repeated
// RunContext calls.
func (r *Run) foldTraceLoss() {
	bus := r.World.Bus()
	ov, dr := bus.Overwritten(), bus.SinkDropped()
	totalOverwritten.Add(ov - r.lossSeen.overwritten)
	totalSinkDropped.Add(dr - r.lossSeen.dropped)
	r.lossSeen.overwritten, r.lossSeen.dropped = ov, dr
}

// FinalizeSpans closes every attempt still open at the current instant
// and computes the per-crash locality attribution. Idempotent; a no-op
// when the run was built without Spec.Spans.
func (r *Run) FinalizeSpans() {
	if r.Spans == nil || r.finalized {
		return
	}
	r.finalized = true
	r.Spans.Finalize(r.World.Now())
}

// TotalMeals counts critical-section entries across all nodes.
func (r *Run) TotalMeals() int {
	total := 0
	for i := 0; i < r.World.N(); i++ {
		total += r.Recorder.EatCount(core.NodeID(i))
	}
	return total
}

// MessagesPerMeal reports protocol messages sent per completed critical
// section — the paper's natural message-complexity measure (0 when no
// meal completed).
func (r *Run) MessagesPerMeal() float64 {
	return metrics.PerMeal(r.World.MessagesSent(), r.TotalMeals())
}

// totalEvents counts scheduler events executed across every Run the
// harness built, for aggregate events/sec reporting in cmd/lmebench. It
// is atomic because test packages run harness simulations in parallel.
var totalEvents atomic.Uint64

// EventsProcessed reports the scheduler events executed by all harness
// runs of this process so far.
func EventsProcessed() uint64 { return totalEvents.Load() }

// totalOverwritten/totalSinkDropped accumulate trace-loss counters
// across every Run (folded in at slice boundaries), so fleet drivers can
// report loss deltas per experiment without reaching into worker runs.
var totalOverwritten, totalSinkDropped atomic.Uint64

// TraceLoss reports the cumulative trace-loss counters of all harness
// runs of this process so far: events overwritten in flight-recorder
// rings and events dropped by saturated sinks.
func TraceLoss() (overwritten, dropped uint64) {
	return totalOverwritten.Load(), totalSinkDropped.Load()
}

// EveryoneAte reports whether every participant entered the critical
// section at least once, returning the IDs of those that did not.
func (r *Run) EveryoneAte() (bool, []core.NodeID) {
	var hungry []core.NodeID
	for i := 0; i < r.World.N(); i++ {
		id := core.NodeID(i)
		if !r.Driver.Participates(id) || r.World.Crashed(id) {
			continue
		}
		if r.Recorder.EatCount(id) == 0 {
			hungry = append(hungry, id)
		}
	}
	return len(hungry) == 0, hungry
}

// LinePoints places n nodes on a horizontal line with the given spacing
// (neighbouring nodes adjacent iff spacing ≤ radius).
func LinePoints(n int, spacing float64) []graph.Point {
	pts := make([]graph.Point, n)
	for i := range pts {
		pts[i] = graph.Point{X: float64(i) * spacing}
	}
	return pts
}

// CliquePoints places n nodes close together so all are mutually
// adjacent for any radius ≥ 0.1.
func CliquePoints(n int) []graph.Point {
	pts := make([]graph.Point, n)
	for i := range pts {
		pts[i] = graph.Point{X: float64(i) * 0.001, Y: float64(i%7) * 0.001}
	}
	return pts
}

// GridPoints places rows×cols nodes with the given spacing.
func GridPoints(rows, cols int, spacing float64) []graph.Point {
	pts := make([]graph.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, graph.Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return pts
}

// GeometricPoints samples a connected random geometric layout.
func GeometricPoints(n int, radius float64, seed uint64) ([]graph.Point, error) {
	rng := sim.NewScheduler(seed).Rand()
	_, pts, err := graph.ConnectedGeometric(n, radius, rng)
	return pts, err
}
