package harness

import (
	"context"
	"fmt"

	"lme/internal/fleet"
)

// Engine executes experiments through one code path, serial or parallel:
// it asks the experiment for its run-plan, executes the plan's jobs on a
// fleet pool, and hands the results to the plan's reduction. The zero
// value runs one replica per measurement on all cores.
type Engine struct {
	// Workers is the fleet pool width; ≤0 selects GOMAXPROCS.
	Workers int
	// Replicas is the number of independent seeded runs per
	// measurement; ≤0 selects 1 (the historic single-seed behaviour).
	Replicas int
	// Context cancels in-flight execution when done; nil means none.
	Context context.Context
	// OnResult, when set, observes each completed replica job from the
	// worker goroutine that ran it (fleet.Pool.OnResult semantics: must
	// be safe for concurrent invocation). lmebench uses it to drive the
	// live progress counter.
	OnResult func(fleet.Result)
}

// Run executes one experiment at the given quality and renders its
// table. Replica seeds are derived deterministically, results are folded
// in replica order, and jobs share no state, so the produced table is
// identical for every worker count.
func (g Engine) Run(e Experiment, q Quality) (*Table, error) {
	if e.Plan == nil {
		return nil, fmt.Errorf("harness: experiment %q has no plan", e.ID)
	}
	replicas := g.Replicas
	if replicas < 1 {
		replicas = 1
	}
	plan, err := e.Plan(q, replicas)
	if err != nil {
		return nil, fmt.Errorf("%s: plan: %w", e.ID, err)
	}
	if plan.Reduce == nil {
		return nil, fmt.Errorf("harness: experiment %q plan has no reduction", e.ID)
	}
	lossOverBefore, lossDropBefore := TraceLoss()
	results, err := fleet.Pool{Workers: g.Workers, OnResult: g.OnResult}.Execute(g.Context, plan.Jobs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	tbl, err := plan.Reduce(newResultSet(results))
	if err != nil {
		return nil, fmt.Errorf("%s: reduce: %w", e.ID, err)
	}
	if tbl.Replicas == 0 {
		tbl.Replicas = replicas
	}
	lossOver, lossDrop := TraceLoss()
	if over, drop := lossOver-lossOverBefore, lossDrop-lossDropBefore; over > 0 || drop > 0 {
		tbl.AddNote("trace loss during this experiment: %d ring-overwritten, %d sink-dropped events", over, drop)
	}
	return tbl, nil
}
