package harness

import (
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
	"lme/internal/trace"
	"lme/internal/workload"
)

// TestPartitionAndHeal: the paper's communication graph is explicitly
// "not necessarily connected". A bridge node leaves, splitting a line
// into two components; both halves must keep dining independently (local
// mutual exclusion needs no connectivity); the bridge then returns (heal)
// and the whole line keeps going with safety intact throughout.
func TestPartitionAndHeal(t *testing.T) {
	algs := []algName{algCM, algA1Greedy, algA1Linial, algA2}
	for _, a := range algs {
		a := a
		t.Run(string(a), func(t *testing.T) {
			const n = 9
			bridge := core.NodeID(4)
			pts := LinePoints(n, 0.1)
			r, err := Build(Spec{
				Seed: 13, Points: pts, Radius: 0.11,
				NewProtocol: factoryFor(a, pts, 0.11),
				Workload:    workload.Config{EatTime: 3_000, ThinkMax: 5_000},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			const (
				partAt = sim.Time(1_000_000)
				healAt = sim.Time(4_000_000)
				endAt  = sim.Time(7_000_000)
			)
			// The bridge moves far away, then comes back to its spot.
			r.World.JumpAt(bridge, graph.Point{X: 0.9, Y: 0.9}, 30_000, partAt)
			r.World.JumpAt(bridge, pts[bridge], 30_000, healAt)

			if err := r.RunFor(partAt + 500_000); err != nil {
				t.Fatal(err)
			}
			if r.World.CommGraph().Connected() {
				t.Fatal("partition did not disconnect the line")
			}
			mealsAtSplit := snapshotMeals(r, n)
			if err := r.RunFor(healAt - (partAt + 500_000)); err != nil {
				t.Fatal(err)
			}
			// During the partition both components progressed.
			mealsAtHeal := snapshotMeals(r, n)
			for _, id := range []core.NodeID{0, 3, 5, 8} {
				if mealsAtHeal[id] <= mealsAtSplit[id] {
					t.Fatalf("node %d made no progress during the partition (%d → %d)",
						id, mealsAtSplit[id], mealsAtHeal[id])
				}
			}
			if err := r.RunFor(endAt - healAt); err != nil {
				t.Fatal(err)
			}
			if !r.World.CommGraph().Connected() {
				t.Fatal("heal did not reconnect the line")
			}
			final := snapshotMeals(r, n)
			for id := core.NodeID(0); id < n; id++ {
				if final[id] <= mealsAtHeal[id] {
					t.Fatalf("node %d made no progress after the heal (%d → %d)",
						id, mealsAtHeal[id], final[id])
				}
			}
		})
	}
}

func snapshotMeals(r *Run, n int) map[core.NodeID]int {
	out := make(map[core.NodeID]int, n)
	for i := 0; i < n; i++ {
		out[core.NodeID(i)] = r.Recorder.EatCount(core.NodeID(i))
	}
	return out
}

// TestIsolatedComponentsIndependent: two far-apart cliques never exchange
// a single message, yet both dine — the purest statement of locality.
func TestIsolatedComponentsIndependent(t *testing.T) {
	pts := append(CliquePoints(4),
		graph.Point{X: 0.9, Y: 0.9}, graph.Point{X: 0.901, Y: 0.9},
		graph.Point{X: 0.9, Y: 0.901}, graph.Point{X: 0.901, Y: 0.901})
	r, err := Build(Spec{
		Seed: 14, Points: pts, Radius: 0.05,
		NewProtocol: factoryFor(algA2, pts, 0.05),
		Workload:    workload.Config{EatTime: 3_000, ThinkMax: 5_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	crossTraffic := 0
	r.World.Bus().Subscribe(func(e trace.Event) {
		if (e.Node < 4) != (e.Peer < 4) {
			crossTraffic++
		}
	}, trace.KindSend)
	if err := r.RunFor(2_000_000); err != nil {
		t.Fatal(err)
	}
	if ok, missing := r.EveryoneAte(); !ok {
		t.Fatalf("starved: %v", missing)
	}
	if crossTraffic != 0 {
		t.Fatalf("isolated components exchanged %d messages", crossTraffic)
	}
}
