package harness

import (
	"fmt"
	"strings"

	"lme/internal/fleet"
)

// Table is a rendered experiment result: what cmd/lmebench prints and what
// EXPERIMENTS.md records. The JSON tags are the lmebench -json layout;
// keep them stable so benchmark diffs survive refactors.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`

	// Replicas is the number of independent seeded runs behind each
	// measurement cell (1 = historic single-seed tables).
	Replicas int `json:"replicas,omitempty"`
	// CellStats carries the replica spread behind aggregated cells —
	// the machine-readable counterpart of a rendered "1.23ms±0.04".
	CellStats []CellStat `json:"cell_stats,omitempty"`
}

// CellStat is the replica statistics behind one table cell, addressed by
// its 0-based row/column position.
type CellStat struct {
	Row      int     `json:"row"`
	Col      int     `json:"col"`
	Mean     float64 `json:"mean"`
	StdErr   float64 `json:"stderr"`
	CI95     float64 `json:"ci95"`
	Replicas int     `json:"replicas"`
}

// Stat is a table cell backed by replica measurements: AddRow renders
// its text like any other cell and additionally records the sample's
// mean/stderr in the table's CellStats.
type Stat struct {
	Text   string
	Sample fleet.Sample
}

func (s Stat) String() string { return s.Text }

// MSStat renders a sample of virtual-time measurements (in µs) as a
// millisecond cell, with a ±stderr suffix once replicated.
func MSStat(s fleet.Sample) Stat {
	text := fmt.Sprintf("%.2fms", s.Mean()/1000)
	if s.N() > 1 {
		text += fmt.Sprintf("±%.2f", s.StdErr()/1000)
	}
	return Stat{Text: text, Sample: s}
}

// NumStat renders a dimensionless sample with prec decimals, with a
// ±stderr suffix once replicated.
func NumStat(s fleet.Sample, prec int) Stat {
	text := fmt.Sprintf("%.*f", prec, s.Mean())
	if s.N() > 1 {
		text += fmt.Sprintf("±%.*f", max(prec, 1), s.StdErr())
	}
	return Stat{Text: text, Sample: s}
}

// MaxStat renders a sample as its worst case (integer-valued), recording
// the full spread in CellStats — for failure-locality radii, where the
// paper's bound speaks about the maximum.
func MaxStat(s fleet.Sample) Stat {
	return Stat{Text: fmt.Sprintf("%.0f", s.Max()), Sample: s}
}

// AddRow appends a row, formatting every cell with %v. Stat cells also
// record their replica statistics.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		if st, ok := c.(Stat); ok {
			t.CellStats = append(t.CellStats, CellStat{
				Row: len(t.Rows), Col: i,
				Mean: st.Sample.Mean(), StdErr: st.Sample.StdErr(),
				CI95: st.Sample.CI95(), Replicas: st.Sample.N(),
			})
		}
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends an explanatory footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
