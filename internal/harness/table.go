package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: what cmd/lmebench prints and what
// EXPERIMENTS.md records. The JSON tags are the lmebench -json layout;
// keep them stable so benchmark diffs survive refactors.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends an explanatory footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
