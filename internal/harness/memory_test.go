package harness

import (
	"context"
	"runtime"
	"testing"

	"lme/internal/sim"
	"lme/internal/workload"
)

// liveHeapAfterStreamingRun executes one fully-streaming observed run
// (span fold, sketch-only recorder, no retained ring or samples) for the
// given horizon and returns the live heap with the run still reachable.
func liveHeapAfterStreamingRun(t *testing.T, horizon sim.Time) uint64 {
	t.Helper()
	pts := LinePoints(16, 0.05)
	r, err := Build(Spec{
		Seed: 7, Points: pts, Radius: 0.06,
		NewProtocol: factoryFor(algA2, pts, 0.06),
		Workload:    workload.Config{EatTime: 5_000, ThinkMax: 10_000},
		SpanFold:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunContext(context.Background(), horizon); err != nil {
		t.Fatal(err)
	}
	if r.Spans.Summary().Ate == 0 {
		t.Fatal("streaming run folded no meals")
	}
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap := ms.HeapAlloc
	runtime.KeepAlive(r)
	return heap
}

// TestStreamingMemoryBounded is the bounded-memory smoke check: a 10×
// longer run in streaming mode must not grow the live heap more than 2×
// (plus a fixed slack for runtime noise). In streaming mode every
// observer is O(nodes) or O(buckets), so heap is independent of run
// length; a regression that reintroduces per-event or per-attempt
// retention on the default path fails this immediately.
func TestStreamingMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second virtual horizon")
	}
	const base = sim.Time(2_000_000)
	short := liveHeapAfterStreamingRun(t, base)
	long := liveHeapAfterStreamingRun(t, 10*base)
	const slack = 4 << 20
	if long > 2*short+slack {
		t.Errorf("streaming heap not bounded: %d bytes after 10x horizon vs %d after 1x (limit 2x+%d)",
			long, short, slack)
	}
	t.Logf("live heap: %d bytes at 1x horizon, %d bytes at 10x", short, long)
}
