package harness

import (
	"lme/internal/core"
	"lme/internal/doorway"
	"lme/internal/manet"
	"lme/internal/metrics"
	"lme/internal/sim"
)

// probeMsg announces a doorway position change for the probe protocol.
type probeMsg struct {
	Sync  bool
	Cross bool
}

// probeProto exercises a bare double doorway (an asynchronous doorway
// enclosing a synchronous one, Figure 3) with no module behind it —
// experiment E7's instrument for Lemma 1's O(δT) traversal bound.
type probeProto struct {
	env core.Env
	ad  *doorway.Doorway
	sd  *doorway.Doorway

	entryAt sim.Time
	waiting bool
	lat     *metrics.Sketch // shared traversal-latency sketch, streamed
	crossed func()          // notifies the external driver
}

var _ core.Protocol = (*probeProto)(nil)

func (p *probeProto) Init(env core.Env) {
	p.env = env
	p.ad = doorway.New(doorway.Asynchronous, env.Neighbors(),
		func(cross bool) { env.Broadcast(probeMsg{Sync: false, Cross: cross}) },
		func() { p.sd.BeginEntry() })
	p.sd = doorway.New(doorway.Synchronous, env.Neighbors(),
		func(cross bool) { env.Broadcast(probeMsg{Sync: true, Cross: cross}) },
		func() {
			if p.waiting {
				p.waiting = false
				p.lat.Observe(p.env.Now() - p.entryAt)
			}
			if p.crossed != nil {
				p.crossed()
			}
		})
}

// enter starts the double-doorway entry code.
func (p *probeProto) enter() {
	p.entryAt = p.env.Now()
	p.waiting = true
	p.ad.BeginEntry()
}

// leave runs the double-doorway exit code.
func (p *probeProto) leave() {
	p.sd.Exit()
	p.ad.Exit()
}

func (p *probeProto) OnMessage(from core.NodeID, msg core.Message) {
	m, ok := msg.(probeMsg)
	if !ok {
		return
	}
	pos := doorway.Outside
	if m.Cross {
		pos = doorway.Behind
	}
	if m.Sync {
		p.sd.Observe(from, pos)
	} else {
		p.ad.Observe(from, pos)
	}
}

func (p *probeProto) OnLinkUp(peer core.NodeID, iAmMoving bool) {
	p.ad.AddNeighbor(peer, doorway.Outside)
	p.sd.AddNeighbor(peer, doorway.Outside)
}

func (p *probeProto) OnLinkDown(peer core.NodeID) {
	p.ad.Forget(peer)
	p.sd.Forget(peer)
}

func (p *probeProto) BecomeHungry()     {}
func (p *probeProto) ExitCS()           {}
func (p *probeProto) State() core.State { return core.Thinking }

// doorwayProbe runs n mutually-adjacent probes that repeatedly enter the
// double doorway, hold it for hold time units, and exit; it returns the
// traversal latency statistics. seed drives the link-delay draws. All
// probes stream into one shared sketch (the world is single-threaded),
// so aggregation is O(buckets) — no per-sample slices.
func doorwayProbe(n int, hold, horizon sim.Time, seed uint64) (metrics.Stats, error) {
	cfg := manet.DefaultConfig()
	cfg.Seed = seed
	cfg.Radius = 1.0
	w := manet.NewWorld(cfg)
	lat := metrics.NewSketch()
	probes := make([]*probeProto, n)
	for i := 0; i < n; i++ {
		probes[i] = &probeProto{lat: lat}
		w.SetProtocol(w.AddNode(CliquePoints(n)[i]), probes[i])
	}
	if err := w.Start(); err != nil {
		return metrics.Stats{}, err
	}
	sched := w.Scheduler()
	for i, p := range probes {
		p := p
		// On crossing, hold then exit then re-enter after a short gap.
		p.crossed = func() {
			sched.After(hold, func() {
				p.leave()
				sched.After(2_000, p.enter)
			})
		}
		sched.At(sim.Time(i)*500, p.enter)
	}
	if err := sched.RunUntil(horizon, 0); err != nil {
		return metrics.Stats{}, err
	}
	return lat.Stats(), nil
}
