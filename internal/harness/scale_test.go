package harness

import (
	"testing"

	"lme/internal/telemetry"
)

// TestScaleResultHashTelemetryInvariant pins the -scale contract for the
// telemetry extras: the same (N, Seed, Horizon) run hashes identically
// with telemetry on and off, across tile grids — the extras ride along
// in the JSON but never enter result_hash.
func TestScaleResultHashTelemetryInvariant(t *testing.T) {
	base := ScaleSpec{N: 300, Seed: 11, Horizon: 120_000}
	ref, err := RunScale(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ResultHash == "" {
		t.Fatal("reference run has no result_hash")
	}
	for _, tiles := range []int{1, 4} {
		for _, tel := range []bool{false, true} {
			spec := base
			spec.Tiles = tiles
			spec.Telemetry = tel
			res, err := RunScale(spec)
			if err != nil {
				t.Fatalf("tiles=%d telemetry=%v: %v", tiles, tel, err)
			}
			if res.ResultHash != ref.ResultHash {
				t.Errorf("tiles=%d telemetry=%v: result_hash %s, want %s",
					tiles, tel, res.ResultHash, ref.ResultHash)
			}
			if tel && res.Telemetry == nil {
				t.Errorf("tiles=%d: telemetry requested but absent from the result", tiles)
			}
			if tel && res.Telemetry != nil && res.Telemetry.Schema != telemetry.Schema {
				t.Errorf("tiles=%d: telemetry schema %q", tiles, res.Telemetry.Schema)
			}
			if !tel && res.Telemetry != nil {
				t.Errorf("tiles=%d: telemetry attached without being requested", tiles)
			}
		}
	}
}
