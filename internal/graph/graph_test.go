package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop stored")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d,%d", g.Degree(0), g.Degree(1))
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Fatal("edge survived removal")
	}
	g.RemoveEdge(0, 3) // absent; must not panic
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	got := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
}

func TestTopologies(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		wantEdges int
		wantMaxD  int
		connected bool
	}{
		{name: "line5", g: Line(5), wantEdges: 4, wantMaxD: 2, connected: true},
		{name: "ring5", g: Ring(5), wantEdges: 5, wantMaxD: 2, connected: true},
		{name: "ring2", g: Ring(2), wantEdges: 1, wantMaxD: 1, connected: true},
		{name: "star6", g: Star(6), wantEdges: 5, wantMaxD: 5, connected: true},
		{name: "clique4", g: Clique(4), wantEdges: 6, wantMaxD: 3, connected: true},
		{name: "grid3x3", g: Grid(3, 3), wantEdges: 12, wantMaxD: 4, connected: true},
		{name: "empty3", g: New(3), wantEdges: 0, wantMaxD: 0, connected: false},
		{name: "single", g: New(1), wantEdges: 0, wantMaxD: 0, connected: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := len(tt.g.Edges()); got != tt.wantEdges {
				t.Errorf("edges = %d, want %d", got, tt.wantEdges)
			}
			if got := tt.g.MaxDegree(); got != tt.wantMaxD {
				t.Errorf("max degree = %d, want %d", got, tt.wantMaxD)
			}
			if got := tt.g.Connected(); got != tt.connected {
				t.Errorf("connected = %v, want %v", got, tt.connected)
			}
		})
	}
}

func TestDistancesLine(t *testing.T) {
	g := Line(6)
	d := g.Distances(0)
	for i := 0; i < 6; i++ {
		if d[i] != i {
			t.Fatalf("dist(0,%d) = %d, want %d", i, d[i], i)
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := g.Distances(0)
	if d[2] != -1 {
		t.Fatalf("dist to unreachable = %d, want -1", d[2])
	}
}

func TestGreedyColoringLegal(t *testing.T) {
	for _, g := range []*Graph{Line(10), Ring(11), Grid(4, 5), Clique(6), Star(8)} {
		colors := g.GreedyColoring(nil)
		if err := g.LegalColoring(colors); err != nil {
			t.Fatalf("greedy colouring illegal: %v", err)
		}
		maxC := 0
		for _, c := range colors {
			if c > maxC {
				maxC = c
			}
		}
		if maxC > g.MaxDegree() {
			t.Fatalf("greedy used colour %d > δ=%d", maxC, g.MaxDegree())
		}
	}
}

func TestLegalColoringRejects(t *testing.T) {
	g := Line(3)
	if err := g.LegalColoring([]int{1, 1, 2}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := g.LegalColoring([]int{1, 2}); err == nil {
		t.Fatal("wrong-length colouring accepted")
	}
	if err := g.LegalColoring([]int{1, 2, 1}); err != nil {
		t.Fatalf("legal colouring rejected: %v", err)
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	g1, p1 := RandomGeometric(20, 0.3, rand.New(rand.NewPCG(5, 5)))
	g2, p2 := RandomGeometric(20, 0.3, rand.New(rand.NewPCG(5, 5)))
	if len(g1.Edges()) != len(g2.Edges()) {
		t.Fatal("same seed, different graphs")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed, different positions")
		}
	}
}

func TestConnectedGeometric(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	g, pts, err := ConnectedGeometric(30, 0.35, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("ConnectedGeometric returned disconnected graph")
	}
	if len(pts) != 30 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestConnectedGeometricImpossible(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	if _, _, err := ConnectedGeometric(50, 0.001, rng); err == nil {
		t.Fatal("expected failure for tiny radius")
	}
}

func TestUnitDiskRadius(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {1.0, 0}}
	g := UnitDisk(pts, 0.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("unit disk edges wrong: %v", g.Edges())
	}
}

func TestLogStar(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 3}, {17, 4}, {65536, 4}, {65537, 5}, {1 << 20, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// TestGreedyColoringProperty checks legality on random graphs via quick.
func TestGreedyColoringProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8, p uint8) bool {
		n := int(nRaw%30) + 2
		rng := rand.New(rand.NewPCG(seed, seed))
		g := New(n)
		prob := float64(p%100) / 100
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < prob {
					g.AddEdge(i, j)
				}
			}
		}
		colors := g.GreedyColoring(nil)
		return g.LegalColoring(colors) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDistancesSymmetricProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		g, _ := RandomGeometric(15, 0.4, rng)
		for u := 0; u < g.N(); u++ {
			du := g.Distances(u)
			for v := 0; v < g.N(); v++ {
				if g.Distances(v)[u] != du[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "line6", g: Line(6), want: 5},
		{name: "ring8", g: Ring(8), want: 4},
		{name: "clique5", g: Clique(5), want: 1},
		{name: "grid3x4", g: Grid(3, 4), want: 5},
		{name: "single", g: New(1), want: 0},
		{name: "edgeless", g: New(3), want: 0},
	}
	for _, tt := range tests {
		if got := tt.g.Diameter(); got != tt.want {
			t.Errorf("%s: diameter = %d, want %d", tt.name, got, tt.want)
		}
	}
}
