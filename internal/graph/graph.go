// Package graph provides the small amount of graph machinery the
// reproduction needs: undirected adjacency structures over node IDs,
// breadth-first distances (the paper's m-neighbourhoods), degree and
// colouring utilities, and generators for the topologies the experiments
// use (lines, rings, grids, stars, cliques and random geometric graphs).
package graph

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Graph is an undirected graph over dense integer node IDs 0..N-1.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// RemoveEdge deletes the undirected edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Neighbors returns the sorted neighbour list of u.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns δ, the maximum degree of any node.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// Edges returns every edge once, with u < v, in sorted order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Distances returns the BFS distance from src to every node; unreachable
// nodes get -1. This realises the paper's notion of distance in the
// communication graph (§3.2).
func (g *Graph) Distances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the largest finite BFS distance between any two nodes
// (0 for empty or edgeless graphs; unreachable pairs are ignored).
func (g *Graph) Diameter() int {
	max := 0
	for v := 0; v < g.n; v++ {
		for _, d := range g.Distances(v) {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Connected reports whether the graph is connected (vacuously true for
// n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := 0
	for _, d := range g.Distances(0) {
		if d >= 0 {
			seen++
		}
	}
	return seen == g.n
}

// LegalColoring reports whether colors assigns distinct values to every
// pair of adjacent nodes. colors must have length N.
func (g *Graph) LegalColoring(colors []int) error {
	if len(colors) != g.n {
		return fmt.Errorf("graph: colouring has %d entries for %d nodes", len(colors), g.n)
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return fmt.Errorf("graph: edge (%d,%d) monochromatic with colour %d", e[0], e[1], colors[e[0]])
		}
	}
	return nil
}

// GreedyColoring colours the nodes greedily in the given order (node IDs
// ascending if order is nil) and returns the colour array. The palette size
// is at most MaxDegree()+1.
func (g *Graph) GreedyColoring(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make(map[int]bool)
	for _, u := range order {
		clear(used)
		for v := range g.adj[u] {
			if colors[v] >= 0 {
				used[colors[v]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
	}
	return colors
}

// Line returns the path topology 0—1—…—n-1.
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle topology on n nodes.
func Ring(n int) *Graph {
	g := Line(n)
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star returns the star with centre 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Clique returns the complete graph on n nodes.
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph; node (r, c) has ID r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			if c+1 < cols {
				g.AddEdge(id, id+1)
			}
			if r+1 < rows {
				g.AddEdge(id, id+cols)
			}
		}
	}
	return g
}

// Point is a position on the unit square used by geometric generators.
type Point struct {
	X, Y float64
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// RandomGeometric places n nodes uniformly on the unit square and connects
// every pair within the given radio range. It returns the graph and the
// positions. The same seed yields the same layout.
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*Graph, []Point) {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return UnitDisk(pts, radius), pts
}

// ConnectedGeometric retries RandomGeometric until the graph is connected
// (up to a bounded number of attempts), which the sweep experiments need so
// that blocked-radius measurements are meaningful.
func ConnectedGeometric(n int, radius float64, rng *rand.Rand) (*Graph, []Point, error) {
	for attempt := 0; attempt < 200; attempt++ {
		g, pts := RandomGeometric(n, radius, rng)
		if g.Connected() {
			return g, pts, nil
		}
	}
	return nil, nil, fmt.Errorf("graph: no connected geometric graph with n=%d r=%.3f after 200 attempts", n, radius)
}

// UnitDisk builds the unit-disk graph of the given positions and radius.
func UnitDisk(pts []Point, radius float64) *Graph {
	g := New(len(pts))
	r2 := radius * radius
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) <= r2 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// LogStar returns log* n: the number of times log2 must be iterated,
// starting from n, before the value drops to at most 1. It bounds the
// Linial colouring round count.
func LogStar(n int) int {
	count := 0
	x := float64(n)
	for x > 1 {
		count++
		x = log2(x)
		if count > 64 {
			break
		}
	}
	return count
}

func log2(x float64) float64 {
	// Iterated halving of the exponent; avoids importing math for one
	// function and stays exact enough for LogStar's integer output.
	n := 0.0
	for x >= 2 {
		x /= 2
		n++
	}
	if x > 1 {
		n += x - 1 // linear interpolation below 2; fine for log*.
	}
	return n
}
