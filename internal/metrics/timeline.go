package metrics

import (
	"fmt"
	"sort"
	"strings"

	"lme/internal/core"
	"lme/internal/sim"
)

// Interval is one critical-section occupancy of a node.
type Interval struct {
	Node       core.NodeID
	Start, End sim.Time // End == -1 while still eating
}

// Timeline records every eating interval of a run; it renders the
// ASCII Gantt chart behind lmesim's -gantt flag and backs interval-based
// assertions in tests.
type Timeline struct {
	intervals []Interval
	open      map[core.NodeID]int // index into intervals
}

// NewTimeline returns an empty recorder.
func NewTimeline() *Timeline {
	return &Timeline{open: make(map[core.NodeID]int)}
}

var _ core.Listener = (*Timeline)(nil)

// OnStateChange implements core.Listener.
func (tl *Timeline) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	if new == core.Eating {
		tl.open[id] = len(tl.intervals)
		tl.intervals = append(tl.intervals, Interval{Node: id, Start: at, End: -1})
		return
	}
	if idx, ok := tl.open[id]; ok {
		tl.intervals[idx].End = at
		delete(tl.open, id)
	}
}

// Intervals returns all recorded intervals in start order.
func (tl *Timeline) Intervals() []Interval {
	out := make([]Interval, len(tl.intervals))
	copy(out, tl.intervals)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// NodeIntervals returns the closed intervals of one node.
func (tl *Timeline) NodeIntervals(id core.NodeID) []Interval {
	var out []Interval
	for _, iv := range tl.intervals {
		if iv.Node == id {
			out = append(out, iv)
		}
	}
	return out
}

// Gantt renders the tail of the run as an ASCII chart: one row per node,
// one column per bucket of (to-from)/width time, '█' where the node was
// eating. Open intervals extend to the chart's right edge.
func (tl *Timeline) Gantt(n int, from, to sim.Time, width int) string {
	if width <= 0 {
		width = 80
	}
	if to <= from {
		return ""
	}
	bucket := (to - from) / sim.Time(width)
	if bucket <= 0 {
		bucket = 1
	}
	rows := make([][]rune, n)
	for i := range rows {
		rows[i] = []rune(strings.Repeat("·", width))
	}
	for _, iv := range tl.intervals {
		if int(iv.Node) >= n {
			continue
		}
		end := iv.End
		if end < 0 {
			end = to
		}
		if end < from || iv.Start > to {
			continue
		}
		lo := int((max64(iv.Start, from) - from) / bucket)
		hi := int((min64(end, to) - from) / bucket)
		for c := lo; c <= hi && c < width; c++ {
			rows[iv.Node][c] = '█'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "eating timeline %v → %v (each column ≈ %v)\n", from, to, bucket)
	for i, row := range rows {
		fmt.Fprintf(&b, "node %2d |%s|\n", i, string(row))
	}
	return b.String()
}

func max64(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func min64(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}
