package metrics

import (
	"fmt"
	"sort"
	"strings"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/trace"
)

// msgClass indexes the dense per-message-type tables: one counter slice
// per traffic direction, addressed by the TypeNamer's MsgType ID.
type msgClass int

const (
	classSent msgClass = iota
	classDelivered
	classDropped
	numClasses
)

// classPrefix maps each class to the string-counter prefix its dense
// counts fold into.
var classPrefix = [numClasses]string{
	classSent:      PrefixSent,
	classDelivered: PrefixDelivered,
	classDropped:   PrefixDropped,
}

// fastCounters are the fixed counters Instrument bumps on every event.
// They live as plain fields so the hot path is one add, no map probe;
// fold() drains them into the string map before any read.
type fastCounters struct {
	sent, delivered, dropped uint64
	bytesSent                uint64
	csEntries                uint64
	linkUps, linkDowns       uint64
	moves, crashes, recolors uint64
}

// Registry is the per-run counter and histogram store behind the
// machine-readable telemetry: per-message-type traffic counts, the
// link-delay histogram that validates the ν bound, and whatever a
// consumer adds. Like the bus it belongs to the simulation's single
// thread; snapshot after the run.
//
// The counters Instrument maintains take a dense fast path — fixed
// fields plus per-message-type slices indexed by the world's TypeNamer
// ID — and are folded into the string map lazily, so every read API
// (Counter, CountersWithPrefix, Snapshot) reports exactly the names and
// values the per-event map updates used to produce.
type Registry struct {
	counters map[string]uint64
	hists    map[string]*Histogram
	sketches map[string]*Sketch

	fast   fastCounters
	namer  *trace.TypeNamer
	byType [numClasses][]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
		sketches: make(map[string]*Sketch),
	}
}

// Add increments the named counter by n, creating it at zero first.
func (r *Registry) Add(name string, n uint64) { r.counters[name] += n }

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.counters[name]++ }

// Counter reads the named counter (0 if never written).
func (r *Registry) Counter(name string) uint64 {
	r.fold()
	return r.counters[name]
}

// incMsg bumps the per-message-type counter for one traffic event:
// slice-indexed when the event carries a minted MsgID and a namer is
// attached, string-keyed otherwise (events from emitters that never
// touch the TypeNamer).
func (r *Registry) incMsg(class msgClass, e trace.Event) {
	if e.MsgID == 0 || r.namer == nil {
		r.counters[classPrefix[class]+e.Msg]++
		return
	}
	t := &r.byType[class]
	for int(e.MsgID) > len(*t) {
		*t = append(*t, 0)
	}
	(*t)[e.MsgID-1]++
}

// fold drains the dense fast-path counters into the string map. Reads
// call it first, so the map view is always complete; counters that never
// fired stay absent, exactly as with per-event map updates.
func (r *Registry) fold() {
	f := &r.fast
	drain := func(name string, v *uint64) {
		if *v != 0 {
			r.counters[name] += *v
			*v = 0
		}
	}
	drain(CtrSent, &f.sent)
	drain(CtrDelivered, &f.delivered)
	drain(CtrDropped, &f.dropped)
	drain(CtrBytesSent, &f.bytesSent)
	drain(CtrCSEntries, &f.csEntries)
	drain(CtrLinkUps, &f.linkUps)
	drain(CtrLinkDowns, &f.linkDowns)
	drain(CtrMoves, &f.moves)
	drain(CtrCrashes, &f.crashes)
	drain(CtrRecolorRns, &f.recolors)
	if r.namer == nil {
		return
	}
	for class := range r.byType {
		counts := r.byType[class]
		for i, n := range counts {
			if n != 0 {
				r.counters[classPrefix[class]+r.namer.TypeName(trace.MsgType(i+1))] += n
				counts[i] = 0
			}
		}
	}
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Bounds passed on later calls are ignored.
func (r *Registry) Histogram(name string, bounds []sim.Time) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Sketch returns the named quantile sketch, creating it (DefaultGamma)
// on first use. Sketches complement the fixed-bucket histograms with
// α-accurate quantiles at O(log range) memory.
func (r *Registry) Sketch(name string) *Sketch {
	if s, ok := r.sketches[name]; ok {
		return s
	}
	s := NewSketch()
	r.sketches[name] = s
	return s
}

// CountersWithPrefix returns the counters whose name starts with prefix,
// keyed by the remainder of the name. Used to regroup the per-type
// message counters ("sent.req" → "req").
func (r *Registry) CountersWithPrefix(prefix string) map[string]uint64 {
	r.fold()
	out := make(map[string]uint64)
	for name, v := range r.counters {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			out[rest] = v
		}
	}
	return out
}

// Snapshot captures the registry as a JSON-marshalable value.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.fold()
	s := RegistrySnapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	if len(r.sketches) > 0 {
		s.Sketches = make(map[string]SketchSnapshot, len(r.sketches))
		for k, sk := range r.sketches {
			s.Sketches[k] = sk.Snapshot()
		}
	}
	return s
}

// RegistrySnapshot is the frozen, serialisable form of a Registry.
type RegistrySnapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Sketches   map[string]SketchSnapshot    `json:"sketches,omitempty"`
}

// String renders the snapshot as sorted "name value" lines (the -stats
// output).
func (s RegistrySnapshot) String() string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-32s %d\n", name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		fmt.Fprintf(&b, "%-32s %s\n", name, s.Histograms[name])
	}
	return b.String()
}

// Histogram accumulates sim.Time observations into fixed buckets with
// exact count/sum/min/max. Bucket i counts observations ≤ Bounds[i]; one
// implicit overflow bucket counts the rest.
type Histogram struct {
	bounds []sim.Time
	counts []uint64

	count    uint64
	sum      sim.Time
	min, max sim.Time
}

// NewHistogram creates a histogram over the given ascending bounds.
func NewHistogram(bounds []sim.Time) *Histogram {
	b := make([]sim.Time, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v sim.Time) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Snapshot freezes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]sim.Time(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	if h.count > 0 {
		s.Mean = h.sum / sim.Time(h.count)
	}
	return s
}

// HistogramSnapshot is the frozen, serialisable form of a Histogram.
// Counts has one more entry than Bounds: the overflow bucket.
type HistogramSnapshot struct {
	Bounds []sim.Time `json:"bounds_us"`
	Counts []uint64   `json:"counts"`
	Count  uint64     `json:"count"`
	Sum    sim.Time   `json:"sum_us"`
	Mean   sim.Time   `json:"mean_us"`
	Min    sim.Time   `json:"min_us"`
	Max    sim.Time   `json:"max_us"`
}

// String renders the snapshot compactly.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v", s.Count, s.Mean, s.Min, s.Max)
}

// Overflow reports how many observations exceeded the last bound.
func (s HistogramSnapshot) Overflow() uint64 {
	if len(s.Counts) == 0 {
		return 0
	}
	return s.Counts[len(s.Counts)-1]
}

// The counter names Instrument maintains. Per-message-type counters are
// the prefix plus the normalised type name ("sent.req", "delivered.fork",
// "dropped.notification").
const (
	CtrSent       = "msg_sent"
	CtrDelivered  = "msg_delivered"
	CtrDropped    = "msg_dropped"
	CtrBytesSent  = "bytes_sent"
	CtrCSEntries  = "cs_entries"
	CtrLinkUps    = "link_up"
	CtrLinkDowns  = "link_down"
	CtrMoves      = "moves"
	CtrCrashes    = "crashes"
	CtrRecolorRns = "recolor_runs"

	PrefixSent      = "sent."
	PrefixDelivered = "delivered."
	PrefixDropped   = "dropped."

	// HistLinkDelay is the end-to-end delivery-delay histogram; its
	// maximum empirically validates the ν bound of §3.1.
	HistLinkDelay = "link_delay_us"
)

// DefaultDelayBounds buckets delivery delays in 1ms steps up to the
// default ν of 10ms; anything beyond lands in the overflow bucket (and
// would indicate a transport bug).
func DefaultDelayBounds() []sim.Time {
	bounds := make([]sim.Time, 10)
	for i := range bounds {
		bounds[i] = sim.Time((i + 1) * 1_000)
	}
	return bounds
}

// Instrument subscribes the registry to the bus: every published event
// updates the appropriate counters, giving each run per-message-type
// accounting and the link-delay histogram without the world knowing about
// the registry. The namer is the world's TypeNamer — the mint of the
// MsgID values traffic events carry; it routes per-type counts to the
// dense tables. A nil namer falls back to string-keyed counting.
func Instrument(bus *trace.Bus, r *Registry, namer *trace.TypeNamer) {
	r.namer = namer
	delays := r.Histogram(HistLinkDelay, DefaultDelayBounds())
	delaySketch := r.Sketch(HistLinkDelay)
	eating := core.Eating.String()
	bus.Subscribe(func(e trace.Event) {
		switch e.Kind {
		case trace.KindSend:
			r.fast.sent++
			r.fast.bytesSent += uint64(e.Size)
			r.incMsg(classSent, e)
		case trace.KindDeliver:
			r.fast.delivered++
			r.incMsg(classDelivered, e)
			delays.Observe(e.Delay)
			delaySketch.Observe(e.Delay)
		case trace.KindDrop:
			r.fast.dropped++
			r.incMsg(classDropped, e)
		case trace.KindState:
			if e.New == eating {
				r.fast.csEntries++
			}
		case trace.KindLinkUp:
			r.fast.linkUps++
		case trace.KindLinkDown:
			r.fast.linkDowns++
		case trace.KindMoveStart:
			r.fast.moves++
		case trace.KindCrash:
			r.fast.crashes++
		case trace.KindRecolor:
			r.fast.recolors++
		}
	}, trace.KindSend, trace.KindDeliver, trace.KindDrop, trace.KindState,
		trace.KindLinkUp, trace.KindLinkDown, trace.KindMoveStart,
		trace.KindCrash, trace.KindRecolor)
}

// PerMeal divides total messages by critical-section entries; the paper's
// natural message-complexity measure. Returns 0 when no meal completed.
func PerMeal(msgs uint64, meals int) float64 {
	if meals <= 0 {
		return 0
	}
	return float64(msgs) / float64(meals)
}
