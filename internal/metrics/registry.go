package metrics

import (
	"fmt"
	"sort"
	"strings"

	"lme/internal/core"
	"lme/internal/sim"
	"lme/internal/trace"
)

// Registry is the per-run counter and histogram store behind the
// machine-readable telemetry: per-message-type traffic counts, the
// link-delay histogram that validates the ν bound, and whatever a
// consumer adds. Like the bus it belongs to the simulation's single
// thread; snapshot after the run.
type Registry struct {
	counters map[string]uint64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Add increments the named counter by n, creating it at zero first.
func (r *Registry) Add(name string, n uint64) { r.counters[name] += n }

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.counters[name]++ }

// Counter reads the named counter (0 if never written).
func (r *Registry) Counter(name string) uint64 { return r.counters[name] }

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Bounds passed on later calls are ignored.
func (r *Registry) Histogram(name string, bounds []sim.Time) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// CountersWithPrefix returns the counters whose name starts with prefix,
// keyed by the remainder of the name. Used to regroup the per-type
// message counters ("sent.req" → "req").
func (r *Registry) CountersWithPrefix(prefix string) map[string]uint64 {
	out := make(map[string]uint64)
	for name, v := range r.counters {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			out[rest] = v
		}
	}
	return out
}

// Snapshot captures the registry as a JSON-marshalable value.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// RegistrySnapshot is the frozen, serialisable form of a Registry.
type RegistrySnapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// String renders the snapshot as sorted "name value" lines (the -stats
// output).
func (s RegistrySnapshot) String() string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-32s %d\n", name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		fmt.Fprintf(&b, "%-32s %s\n", name, s.Histograms[name])
	}
	return b.String()
}

// Histogram accumulates sim.Time observations into fixed buckets with
// exact count/sum/min/max. Bucket i counts observations ≤ Bounds[i]; one
// implicit overflow bucket counts the rest.
type Histogram struct {
	bounds []sim.Time
	counts []uint64

	count    uint64
	sum      sim.Time
	min, max sim.Time
}

// NewHistogram creates a histogram over the given ascending bounds.
func NewHistogram(bounds []sim.Time) *Histogram {
	b := make([]sim.Time, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v sim.Time) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Snapshot freezes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]sim.Time(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	if h.count > 0 {
		s.Mean = h.sum / sim.Time(h.count)
	}
	return s
}

// HistogramSnapshot is the frozen, serialisable form of a Histogram.
// Counts has one more entry than Bounds: the overflow bucket.
type HistogramSnapshot struct {
	Bounds []sim.Time `json:"bounds_us"`
	Counts []uint64   `json:"counts"`
	Count  uint64     `json:"count"`
	Sum    sim.Time   `json:"sum_us"`
	Mean   sim.Time   `json:"mean_us"`
	Min    sim.Time   `json:"min_us"`
	Max    sim.Time   `json:"max_us"`
}

// String renders the snapshot compactly.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v", s.Count, s.Mean, s.Min, s.Max)
}

// Overflow reports how many observations exceeded the last bound.
func (s HistogramSnapshot) Overflow() uint64 {
	if len(s.Counts) == 0 {
		return 0
	}
	return s.Counts[len(s.Counts)-1]
}

// The counter names Instrument maintains. Per-message-type counters are
// the prefix plus the normalised type name ("sent.req", "delivered.fork",
// "dropped.notification").
const (
	CtrSent       = "msg_sent"
	CtrDelivered  = "msg_delivered"
	CtrDropped    = "msg_dropped"
	CtrBytesSent  = "bytes_sent"
	CtrCSEntries  = "cs_entries"
	CtrLinkUps    = "link_up"
	CtrLinkDowns  = "link_down"
	CtrMoves      = "moves"
	CtrCrashes    = "crashes"
	CtrRecolorRns = "recolor_runs"

	PrefixSent      = "sent."
	PrefixDelivered = "delivered."
	PrefixDropped   = "dropped."

	// HistLinkDelay is the end-to-end delivery-delay histogram; its
	// maximum empirically validates the ν bound of §3.1.
	HistLinkDelay = "link_delay_us"
)

// DefaultDelayBounds buckets delivery delays in 1ms steps up to the
// default ν of 10ms; anything beyond lands in the overflow bucket (and
// would indicate a transport bug).
func DefaultDelayBounds() []sim.Time {
	bounds := make([]sim.Time, 10)
	for i := range bounds {
		bounds[i] = sim.Time((i + 1) * 1_000)
	}
	return bounds
}

// Instrument subscribes the registry to the bus: every published event
// updates the appropriate counters, giving each run per-message-type
// accounting and the link-delay histogram without the world knowing about
// the registry.
func Instrument(bus *trace.Bus, r *Registry) {
	delays := r.Histogram(HistLinkDelay, DefaultDelayBounds())
	bus.Subscribe(func(e trace.Event) {
		switch e.Kind {
		case trace.KindSend:
			r.Inc(CtrSent)
			r.Inc(PrefixSent + e.Msg)
			r.Add(CtrBytesSent, uint64(e.Size))
		case trace.KindDeliver:
			r.Inc(CtrDelivered)
			r.Inc(PrefixDelivered + e.Msg)
			delays.Observe(e.Delay)
		case trace.KindDrop:
			r.Inc(CtrDropped)
			r.Inc(PrefixDropped + e.Msg)
		case trace.KindState:
			if e.New == core.Eating.String() {
				r.Inc(CtrCSEntries)
			}
		case trace.KindLinkUp:
			r.Inc(CtrLinkUps)
		case trace.KindLinkDown:
			r.Inc(CtrLinkDowns)
		case trace.KindMoveStart:
			r.Inc(CtrMoves)
		case trace.KindCrash:
			r.Inc(CtrCrashes)
		case trace.KindRecolor:
			r.Inc(CtrRecolorRns)
		}
	}, trace.KindSend, trace.KindDeliver, trace.KindDrop, trace.KindState,
		trace.KindLinkUp, trace.KindLinkDown, trace.KindMoveStart,
		trace.KindCrash, trace.KindRecolor)
}

// PerMeal divides total messages by critical-section entries; the paper's
// natural message-complexity measure. Returns 0 when no meal completed.
func PerMeal(msgs uint64, meals int) float64 {
	if meals <= 0 {
		return 0
	}
	return float64(msgs) / float64(meals)
}
