package metrics

import (
	"strings"
	"testing"

	"lme/internal/core"
)

func TestTimelineRecordsIntervals(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 10)
	tl.OnStateChange(0, core.Eating, core.Thinking, 25)
	tl.OnStateChange(1, core.Hungry, core.Eating, 30)
	// Node 1 still eating at the end.
	ivs := tl.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v", ivs)
	}
	if ivs[0] != (Interval{Node: 0, Start: 10, End: 25}) {
		t.Fatalf("first interval = %+v", ivs[0])
	}
	if ivs[1].End != -1 {
		t.Fatalf("open interval closed: %+v", ivs[1])
	}
	if got := tl.NodeIntervals(0); len(got) != 1 {
		t.Fatalf("node intervals = %v", got)
	}
}

func TestTimelineDemotionClosesInterval(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(2, core.Hungry, core.Eating, 10)
	tl.OnStateChange(2, core.Eating, core.Hungry, 18) // demoted, not thinking
	ivs := tl.NodeIntervals(2)
	if len(ivs) != 1 || ivs[0].End != 18 {
		t.Fatalf("intervals = %v", ivs)
	}
}

func TestGanttRendering(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 0)
	tl.OnStateChange(0, core.Eating, core.Thinking, 50)
	tl.OnStateChange(1, core.Hungry, core.Eating, 50)
	chart := tl.Gantt(2, 0, 100, 10)
	lines := strings.Split(strings.TrimSpace(chart), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("chart:\n%s", chart)
	}
	row0, row1 := lines[1], lines[2]
	if !strings.Contains(row0, "█") || !strings.Contains(row1, "█") {
		t.Fatalf("missing marks:\n%s", chart)
	}
	// Node 0 ate in the first half, node 1 (open interval) in the second
	// half through the right edge.
	if !strings.HasSuffix(row1, "█|") {
		t.Fatalf("open interval does not reach the edge:\n%s", chart)
	}
	// Degenerate windows are handled.
	if tl.Gantt(2, 100, 100, 10) != "" {
		t.Fatal("degenerate window rendered")
	}
	if tl.Gantt(2, 0, 100, 0) == "" {
		t.Fatal("default width not applied")
	}
}

// TestTimelineAdjacentExclusion replays a safety argument through the
// timeline: it is used by integration tests to check interval overlap
// between neighbours after a run.
func TestTimelineAdjacentExclusion(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 0)
	tl.OnStateChange(0, core.Eating, core.Thinking, 10)
	tl.OnStateChange(1, core.Hungry, core.Eating, 10)
	tl.OnStateChange(1, core.Eating, core.Thinking, 20)
	a, b := tl.NodeIntervals(0), tl.NodeIntervals(1)
	overlap := a[0].Start < b[0].End && b[0].Start < a[0].End
	if overlap {
		t.Fatal("touching intervals reported as overlapping")
	}
}

// TestTimelineOpenIntervalAtRunEnd covers the end-of-run edge: a node
// still eating when measurement stops has exactly one interval with
// End == -1, and NodeIntervals exposes it to callers, who must treat -1
// as "now".
func TestTimelineOpenIntervalAtRunEnd(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 40)
	ivs := tl.NodeIntervals(0)
	if len(ivs) != 1 || ivs[0].Start != 40 || ivs[0].End != -1 {
		t.Fatalf("intervals = %v, want one open interval from 40", ivs)
	}
	// The open interval must reach the chart's right edge.
	chart := tl.Gantt(1, 0, 100, 10)
	row := strings.Split(strings.TrimSpace(chart), "\n")[1]
	if !strings.HasSuffix(row, "█|") {
		t.Fatalf("open interval does not extend to run end:\n%s", chart)
	}
	// And the first 4 columns (t<40) stay empty.
	if strings.Contains(row[:strings.Index(row, "|")+4], "█") {
		t.Fatalf("interval rendered before its start:\n%s", chart)
	}
}

// TestTimelineDemotionThenReentry covers the eating→hungry→eating cycle
// of a mobile node: the demotion closes the first interval and the
// re-entry opens a second, independent one.
func TestTimelineDemotionThenReentry(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(3, core.Hungry, core.Eating, 10)
	tl.OnStateChange(3, core.Eating, core.Hungry, 18) // moved into new neighbourhood
	tl.OnStateChange(3, core.Hungry, core.Eating, 30)
	ivs := tl.NodeIntervals(3)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v, want 2", ivs)
	}
	if ivs[0] != (Interval{Node: 3, Start: 10, End: 18}) {
		t.Fatalf("closed interval = %+v", ivs[0])
	}
	if ivs[1].Start != 30 || ivs[1].End != -1 {
		t.Fatalf("reopened interval = %+v", ivs[1])
	}
	// A plain thinking transition with no open interval is a no-op.
	tl.OnStateChange(9, core.Hungry, core.Thinking, 40)
	if got := tl.NodeIntervals(9); got != nil {
		t.Fatalf("phantom interval: %v", got)
	}
}
