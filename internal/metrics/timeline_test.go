package metrics

import (
	"strings"
	"testing"

	"lme/internal/core"
)

func TestTimelineRecordsIntervals(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 10)
	tl.OnStateChange(0, core.Eating, core.Thinking, 25)
	tl.OnStateChange(1, core.Hungry, core.Eating, 30)
	// Node 1 still eating at the end.
	ivs := tl.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %v", ivs)
	}
	if ivs[0] != (Interval{Node: 0, Start: 10, End: 25}) {
		t.Fatalf("first interval = %+v", ivs[0])
	}
	if ivs[1].End != -1 {
		t.Fatalf("open interval closed: %+v", ivs[1])
	}
	if got := tl.NodeIntervals(0); len(got) != 1 {
		t.Fatalf("node intervals = %v", got)
	}
}

func TestTimelineDemotionClosesInterval(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(2, core.Hungry, core.Eating, 10)
	tl.OnStateChange(2, core.Eating, core.Hungry, 18) // demoted, not thinking
	ivs := tl.NodeIntervals(2)
	if len(ivs) != 1 || ivs[0].End != 18 {
		t.Fatalf("intervals = %v", ivs)
	}
}

func TestGanttRendering(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 0)
	tl.OnStateChange(0, core.Eating, core.Thinking, 50)
	tl.OnStateChange(1, core.Hungry, core.Eating, 50)
	chart := tl.Gantt(2, 0, 100, 10)
	lines := strings.Split(strings.TrimSpace(chart), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("chart:\n%s", chart)
	}
	row0, row1 := lines[1], lines[2]
	if !strings.Contains(row0, "█") || !strings.Contains(row1, "█") {
		t.Fatalf("missing marks:\n%s", chart)
	}
	// Node 0 ate in the first half, node 1 (open interval) in the second
	// half through the right edge.
	if !strings.HasSuffix(row1, "█|") {
		t.Fatalf("open interval does not reach the edge:\n%s", chart)
	}
	// Degenerate windows are handled.
	if tl.Gantt(2, 100, 100, 10) != "" {
		t.Fatal("degenerate window rendered")
	}
	if tl.Gantt(2, 0, 100, 0) == "" {
		t.Fatal("default width not applied")
	}
}

// TestTimelineAdjacentExclusion replays a safety argument through the
// timeline: it is used by integration tests to check interval overlap
// between neighbours after a run.
func TestTimelineAdjacentExclusion(t *testing.T) {
	tl := NewTimeline()
	tl.OnStateChange(0, core.Hungry, core.Eating, 0)
	tl.OnStateChange(0, core.Eating, core.Thinking, 10)
	tl.OnStateChange(1, core.Hungry, core.Eating, 10)
	tl.OnStateChange(1, core.Eating, core.Thinking, 20)
	a, b := tl.NodeIntervals(0), tl.NodeIntervals(1)
	overlap := a[0].Start < b[0].End && b[0].Start < a[0].End
	if overlap {
		t.Fatal("touching intervals reported as overlapping")
	}
}
