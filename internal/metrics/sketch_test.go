package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lme/internal/sim"
)

// exactQuantile is the nearest-rank reference: the value with rank
// ⌈q·N⌉ in the sorted sample (the convention Summarize pins).
func exactQuantile(xs []sim.Time, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]sim.Time(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx])
}

func sketchOf(xs []sim.Time) *Sketch {
	s := NewSketch()
	for _, x := range xs {
		s.Observe(x)
	}
	return s
}

// testDistributions covers random and adversarial shapes: uniform,
// heavy-tailed, constant, two-point, linear ramp, values planted on
// bucket boundaries (powers of γ), wide dynamic range, and zeros.
func testDistributions(rng *rand.Rand) map[string][]sim.Time {
	d := map[string][]sim.Time{}

	uniform := make([]sim.Time, 5000)
	for i := range uniform {
		uniform[i] = sim.Time(rng.Int63n(1_000_000))
	}
	d["uniform"] = uniform

	heavy := make([]sim.Time, 5000)
	for i := range heavy {
		// Exponential-ish tail: µs latencies spanning several decades.
		heavy[i] = sim.Time(math.Exp(rng.Float64()*14) + 1)
	}
	d["heavy-tail"] = heavy

	constant := make([]sim.Time, 1000)
	for i := range constant {
		constant[i] = 123_456
	}
	d["constant"] = constant

	twoPoint := make([]sim.Time, 1000)
	for i := range twoPoint {
		if i%10 == 0 {
			twoPoint[i] = 900_000
		} else {
			twoPoint[i] = 100
		}
	}
	d["two-point"] = twoPoint

	ramp := make([]sim.Time, 2000)
	for i := range ramp {
		ramp[i] = sim.Time(i + 1)
	}
	d["ramp"] = ramp

	boundaries := make([]sim.Time, 0, 600)
	for k := 0; k < 600; k++ {
		// Values at and adjacent to bucket boundaries γ^k.
		v := math.Pow(DefaultGamma, float64(k%400))
		boundaries = append(boundaries, sim.Time(v), sim.Time(v)+1)
	}
	d["boundaries"] = boundaries

	wide := []sim.Time{0, 0, 1, 2, 10, 1000, 1_000_000, 50_000_000_000}
	d["wide+zeros"] = wide

	single := []sim.Time{42}
	d["single"] = single

	return d
}

// TestSketchQuantileAccuracy checks the α = (γ−1)/(γ+1) relative error
// bound against the exact nearest-rank quantile on every distribution,
// across the full quantile range.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for name, xs := range testDistributions(rng) {
		s := sketchOf(xs)
		alpha := s.RelativeAccuracy()
		for _, q := range qs {
			got := s.QuantileFloat(q)
			want := exactQuantile(xs, q)
			// +1 absolute slack covers the sub-1 zero bucket collapsing
			// values in [0,1) to 0.
			if math.Abs(got-want) > alpha*want+1 {
				t.Errorf("%s: q=%v sketch=%v exact=%v (α=%v)", name, q, got, want, alpha)
			}
		}
		if int(s.Count()) != len(xs) {
			t.Errorf("%s: count %d want %d", name, s.Count(), len(xs))
		}
	}
}

// TestSketchStatsExactFields pins that Count, Mean and Max in Stats()
// are exact — identical to Summarize over the same samples — and that
// P50/P95 respect the error bound.
func TestSketchStatsExactFields(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, xs := range testDistributions(rng) {
		s := sketchOf(xs)
		got := s.Stats()
		want := Summarize(xs)
		if got.Count != want.Count || got.Mean != want.Mean || got.Max != want.Max {
			t.Errorf("%s: exact fields drifted: sketch {n=%d mean=%v max=%v} exact {n=%d mean=%v max=%v}",
				name, got.Count, got.Mean, got.Max, want.Count, want.Mean, want.Max)
		}
		alpha := s.RelativeAccuracy()
		for _, c := range []struct{ got, want sim.Time }{{got.P50, want.P50}, {got.P95, want.P95}} {
			if math.Abs(float64(c.got-c.want)) > alpha*float64(c.want)+1 {
				t.Errorf("%s: quantile %v vs exact %v exceeds α=%v", name, c.got, c.want, alpha)
			}
		}
	}
}

// TestSketchMergeCommutativeAssociative verifies Merge is insertion-order
// independent at the snapshot level: for integer-valued observations the
// float64 sums are exact, so any merge order yields a bit-identical
// snapshot (the property fleet reduction relies on for
// worker-count-independent tables).
func TestSketchMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([][]sim.Time, 4)
	var all []sim.Time
	for i := range parts {
		n := 200 + rng.Intn(800)
		parts[i] = make([]sim.Time, n)
		for j := range parts[i] {
			parts[i][j] = sim.Time(rng.Int63n(10_000_000))
		}
		all = append(all, parts[i]...)
	}

	mergeOrder := func(order []int) SketchSnapshot {
		acc := NewSketch()
		for _, i := range order {
			acc.Merge(sketchOf(parts[i]))
		}
		return acc.Snapshot()
	}

	ref := mergeOrder([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := mergeOrder(order); !reflect.DeepEqual(got, ref) {
			t.Fatalf("merge order %v changed the snapshot", order)
		}
	}

	// Associativity: (a⊕b)⊕(c⊕d) == ((a⊕b)⊕c)⊕d.
	ab := sketchOf(parts[0])
	ab.Merge(sketchOf(parts[1]))
	cd := sketchOf(parts[2])
	cd.Merge(sketchOf(parts[3]))
	ab.Merge(cd)
	if got := ab.Snapshot(); !reflect.DeepEqual(got, ref) {
		t.Fatal("grouped merge changed the snapshot")
	}

	// Merged sketch == sketch of the pooled sample.
	if got := sketchOf(all).Snapshot(); !reflect.DeepEqual(got, ref) {
		t.Fatal("merge of parts differs from sketch of the pooled sample")
	}
}

// TestSketchSnapshotRoundTrip pins that the wire snapshot is exact:
// reconstruction and JSON both round-trip without loss.
func TestSketchSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]sim.Time, 3000)
	for i := range xs {
		xs[i] = sim.Time(rng.Int63n(2_000_000))
	}
	xs[0], xs[1] = 0, 0 // exercise the zero bucket
	s := sketchOf(xs)
	snap := s.Snapshot()

	back := FromSnapshot(snap)
	if !reflect.DeepEqual(back.Snapshot(), snap) {
		t.Fatal("FromSnapshot lost information")
	}
	for _, q := range []float64{0.5, 0.95, 0.999} {
		if back.QuantileFloat(q) != s.QuantileFloat(q) {
			t.Fatalf("q=%v drifted across snapshot", q)
		}
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var wire SketchSnapshot
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wire, snap) {
		t.Fatal("JSON round trip mutated the snapshot")
	}
}

// TestSketchEmptyAndMergeEdges covers empty sketches and merging into /
// from empties.
func TestSketchEmptyAndMergeEdges(t *testing.T) {
	s := NewSketch()
	if s.QuantileFloat(0.5) != 0 || s.Quantile(0.95) != 0 || s.Mean() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("empty Stats = %+v", st)
	}

	s.Merge(NewSketch()) // empty ⊕ empty
	if s.Count() != 0 {
		t.Fatal("merging empties must stay empty")
	}

	other := sketchOf([]sim.Time{10, 20, 30})
	s.Merge(other) // empty ⊕ x == x
	if !reflect.DeepEqual(s.Snapshot(), other.Snapshot()) {
		t.Fatal("empty ⊕ x must equal x")
	}
	other.Merge(NewSketch()) // x ⊕ empty == x
	if !reflect.DeepEqual(s.Snapshot(), other.Snapshot()) {
		t.Fatal("x ⊕ empty must equal x")
	}
}
