// Package metrics instruments simulation runs: an online safety checker
// for the local mutual exclusion property (no two neighbours eat
// simultaneously — the invariant of Lemma 3 and Theorem 25), a
// response-time recorder implementing Definition 1's static-node sampling,
// and a starvation prober used to measure empirical failure locality.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
)

// Topology is the adjacency oracle the checker consults; *manet.World
// satisfies it.
type Topology interface {
	Neighbors(core.NodeID) []core.NodeID
}

// Violation describes one breach of the mutual exclusion invariant.
type Violation struct {
	A, B core.NodeID
	At   sim.Time
}

// String formats the violation.
func (v Violation) String() string {
	return fmt.Sprintf("nodes %d and %d eating simultaneously at %v", v.A, v.B, v.At)
}

// SafetyChecker verifies that no two neighbouring nodes are ever eating at
// the same time. It watches state transitions and link creations (a link
// appearing between two eaters is also a violation).
type SafetyChecker struct {
	topo   Topology
	eating map[core.NodeID]bool

	violations  []Violation
	onViolation func(Violation)
}

// SetOnViolation installs a hook invoked synchronously on every recorded
// violation, at the instant it is detected — the flight recorder's
// trigger. A nil hook disables it.
func (c *SafetyChecker) SetOnViolation(fn func(Violation)) { c.onViolation = fn }

// record appends a violation and fires the hook.
func (c *SafetyChecker) record(v Violation) {
	c.violations = append(c.violations, v)
	if c.onViolation != nil {
		c.onViolation(v)
	}
}

// NewSafetyChecker creates a checker over the given adjacency oracle.
func NewSafetyChecker(topo Topology) *SafetyChecker {
	return &SafetyChecker{topo: topo, eating: make(map[core.NodeID]bool)}
}

var _ core.Listener = (*SafetyChecker)(nil)

// OnStateChange implements core.Listener.
func (c *SafetyChecker) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	if new != core.Eating {
		delete(c.eating, id)
		return
	}
	for _, nb := range c.topo.Neighbors(id) {
		if c.eating[nb] {
			c.record(Violation{A: id, B: nb, At: at})
		}
	}
	c.eating[id] = true
}

// OnLink implements manet.LinkListener.
func (c *SafetyChecker) OnLink(a, b core.NodeID, up bool, at sim.Time) {
	if up && c.eating[a] && c.eating[b] {
		c.record(Violation{A: a, B: b, At: at})
	}
}

// OnMove implements manet.MoveListener (no-op; present so a checker can be
// registered uniformly).
func (c *SafetyChecker) OnMove(core.NodeID, bool, sim.Time) {}

// Violations returns all recorded violations.
func (c *SafetyChecker) Violations() []Violation {
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err returns nil if no violation occurred, or an error describing the
// first one.
func (c *SafetyChecker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("metrics: %d mutual exclusion violations, first: %v",
		len(c.violations), c.violations[0])
}

// Stats summarises a sample of durations.
type Stats struct {
	Count    int
	Mean     sim.Time
	P50, P95 sim.Time
	Max      sim.Time
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v max=%v", s.Count, s.Mean, s.P50, s.P95, s.Max)
}

// Summarize computes stats over the samples (zero value for an empty set).
func Summarize(samples []sim.Time) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sorted := make([]sim.Time, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Time
	for _, s := range sorted {
		sum += s
	}
	idx := func(q float64) sim.Time {
		// Nearest-rank percentile: the smallest sample such that at
		// least q·N samples are at or below it (rank ⌈q·N⌉, 1-based).
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Stats{
		Count: len(sorted),
		Mean:  sum / sim.Time(len(sorted)),
		P50:   idx(0.50),
		P95:   idx(0.95),
		Max:   sorted[len(sorted)-1],
	}
}

// ResponseRecorder measures the hungry→eating latency. Per Definition 1 a
// sample counts only if the node stayed static for the whole interval, so
// movement during a hungry interval taints it. Demotions (eating → hungry)
// open a fresh interval.
//
// By default the recorder streams every sample into a quantile Sketch —
// memory O(nodes + sketch buckets), independent of run length. The
// Retain option additionally keeps the exact per-sample slices for
// callers that need full fidelity (per-node fairness analysis, sketch
// differential tests).
type ResponseRecorder struct {
	hungrySince map[core.NodeID]sim.Time
	tainted     map[core.NodeID]bool
	sketch      *Sketch
	eatCount    map[core.NodeID]int

	retain  bool
	samples []sim.Time
	perNode map[core.NodeID][]sim.Time
}

// RecorderOption configures a ResponseRecorder.
type RecorderOption func(*ResponseRecorder)

// Retain keeps the exact full-sample slices (Samples, NodeSamples) in
// addition to the sketch, restoring the pre-streaming O(run) behaviour.
func Retain() RecorderOption {
	return func(r *ResponseRecorder) { r.retain = true }
}

// NewResponseRecorder creates an empty recorder (streaming by default;
// pass Retain() to also keep exact samples).
func NewResponseRecorder(opts ...RecorderOption) *ResponseRecorder {
	r := &ResponseRecorder{
		hungrySince: make(map[core.NodeID]sim.Time),
		tainted:     make(map[core.NodeID]bool),
		sketch:      NewSketch(),
		eatCount:    make(map[core.NodeID]int),
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.retain {
		r.perNode = make(map[core.NodeID][]sim.Time)
	}
	return r
}

var _ core.Listener = (*ResponseRecorder)(nil)

// OnStateChange implements core.Listener.
func (r *ResponseRecorder) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	switch new {
	case core.Hungry:
		r.hungrySince[id] = at
		delete(r.tainted, id)
	case core.Eating:
		r.eatCount[id]++
		start, ok := r.hungrySince[id]
		delete(r.hungrySince, id)
		if !ok || r.tainted[id] {
			return
		}
		d := at - start
		r.sketch.Observe(d)
		if r.retain {
			r.samples = append(r.samples, d)
			r.perNode[id] = append(r.perNode[id], d)
		}
	case core.Thinking:
		delete(r.hungrySince, id)
	}
}

// OnMove implements manet.MoveListener: starting to move taints the open
// hungry interval of the mover.
func (r *ResponseRecorder) OnMove(id core.NodeID, moving bool, at sim.Time) {
	if !moving {
		return
	}
	if _, hungry := r.hungrySince[id]; hungry {
		r.tainted[id] = true
	}
}

// Samples returns all untainted response-time samples. Nil unless the
// recorder was built with Retain().
func (r *ResponseRecorder) Samples() []sim.Time {
	if !r.retain {
		return nil
	}
	out := make([]sim.Time, len(r.samples))
	copy(out, r.samples)
	return out
}

// NodeSamples returns the untainted samples of one node. Nil unless the
// recorder was built with Retain().
func (r *ResponseRecorder) NodeSamples(id core.NodeID) []sim.Time {
	if !r.retain {
		return nil
	}
	out := make([]sim.Time, len(r.perNode[id]))
	copy(out, r.perNode[id])
	return out
}

// EatCount reports how many times id entered the critical section.
func (r *ResponseRecorder) EatCount(id core.NodeID) int { return r.eatCount[id] }

// Stats summarises all samples from the sketch: Count, Mean and Max are
// exact, P50/P95 are within the sketch's relative accuracy. O(sketch
// buckets) per call — no copy or sort of the sample slice.
func (r *ResponseRecorder) Stats() Stats { return r.sketch.Stats() }

// Sketch exposes the streaming response-time sketch (live; callers must
// not mutate it mid-run).
func (r *ResponseRecorder) Sketch() *Sketch { return r.sketch }

// Prober detects starved nodes, the raw material of the empirical
// failure-locality measurement (experiment E2): after a crash, nodes that
// stay continuously hungry for the rest of the run are blocked.
type Prober struct {
	hungrySince map[core.NodeID]sim.Time
	everAte     map[core.NodeID]bool
	lastEat     map[core.NodeID]sim.Time
}

// NewProber creates an empty prober.
func NewProber() *Prober {
	return &Prober{
		hungrySince: make(map[core.NodeID]sim.Time),
		everAte:     make(map[core.NodeID]bool),
		lastEat:     make(map[core.NodeID]sim.Time),
	}
}

var _ core.Listener = (*Prober)(nil)

// OnStateChange implements core.Listener.
func (p *Prober) OnStateChange(id core.NodeID, old, new core.State, at sim.Time) {
	switch new {
	case core.Hungry:
		if _, open := p.hungrySince[id]; !open {
			p.hungrySince[id] = at
		}
	case core.Eating:
		delete(p.hungrySince, id)
		p.everAte[id] = true
		p.lastEat[id] = at
	case core.Thinking:
		delete(p.hungrySince, id)
	}
}

// Blocked returns the nodes that have been continuously hungry since
// before now-patience, sorted by ID.
func (p *Prober) Blocked(now, patience sim.Time) []core.NodeID {
	var out []core.NodeID
	for id, since := range p.hungrySince {
		if now-since >= patience {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StarvedSince returns nodes whose last critical-section entry is before t
// and that are hungry now — i.e. nodes making no progress since t.
func (p *Prober) StarvedSince(t sim.Time) []core.NodeID {
	var out []core.NodeID
	for id := range p.hungrySince {
		if last, ate := p.lastEat[id]; !ate || last < t {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LastEat reports when id last entered the CS (ok=false if never).
func (p *Prober) LastEat(id core.NodeID) (sim.Time, bool) {
	t, ok := p.lastEat[id]
	return t, ok
}

// BlockedRadius computes the empirical failure locality of a crash: the
// maximum graph distance from the crashed node to any blocked node
// (excluding the crashed node itself), or 0 if nothing is blocked. g must
// be the communication graph in which the starvation was observed.
func BlockedRadius(g *graph.Graph, crash core.NodeID, blocked []core.NodeID) int {
	dist := g.Distances(int(crash))
	max := 0
	for _, id := range blocked {
		if id == crash {
			continue
		}
		if d := dist[int(id)]; d > max {
			max = d
		}
	}
	return max
}
