package metrics

import (
	"strings"
	"testing"

	"lme/internal/sim"
	"lme/internal/trace"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 4)
	r.Inc("b")
	if got := r.Counter("a"); got != 5 {
		t.Errorf("counter a = %d, want 5", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	r.Inc("sent.req")
	r.Add("sent.fork", 3)
	byType := r.CountersWithPrefix("sent.")
	if len(byType) != 2 || byType["req"] != 1 || byType["fork"] != 3 {
		t.Errorf("CountersWithPrefix = %v", byType)
	}
}

func TestHistogramBucketsAndOverflow(t *testing.T) {
	h := NewHistogram([]sim.Time{10, 20, 30})
	for _, v := range []sim.Time{5, 10, 11, 25, 31, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bucket i counts v ≤ Bounds[i]: {5,10} ≤10, {11} ≤20, {25} ≤30,
	// {31,100} overflow.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow())
	}
	if s.Count != 6 || s.Min != 5 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != (5+10+11+25+31+100)/6 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty histogram rendering")
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	s := NewHistogram(nil).Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.Overflow() != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	if (HistogramSnapshot{}).Overflow() != 0 {
		t.Error("zero-value snapshot overflow")
	}
}

// TestInstrument drives a synthetic event stream through the bus and
// checks the registry ends up with the per-message-type accounting the
// telemetry report is built from.
func TestInstrument(t *testing.T) {
	bus := trace.NewBus(0)
	r := NewRegistry()
	Instrument(bus, r, nil)

	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 0, Peer: 1, Msg: "req", Size: 8})
	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 1, Peer: 0, Msg: "fork", Size: 16})
	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 0, Peer: 1, Msg: "req", Size: 8})
	bus.Publish(trace.Event{Kind: trace.KindDeliver, Node: 1, Peer: 0, Msg: "req", Size: 8, Delay: 1500})
	bus.Publish(trace.Event{Kind: trace.KindDrop, Node: 0, Peer: 1, Msg: "fork", Size: 16, Detail: "link-changed"})
	bus.Publish(trace.Event{Kind: trace.KindState, Node: 1, Old: "hungry", New: "eating"})
	bus.Publish(trace.Event{Kind: trace.KindState, Node: 1, Old: "eating", New: "thinking"})
	bus.Publish(trace.Event{Kind: trace.KindLinkUp, Node: 0, Peer: 1})
	bus.Publish(trace.Event{Kind: trace.KindLinkDown, Node: 0, Peer: 1})
	bus.Publish(trace.Event{Kind: trace.KindMoveStart, Node: 2})
	bus.Publish(trace.Event{Kind: trace.KindCrash, Node: 3})
	bus.Publish(trace.Event{Kind: trace.KindRecolor, Node: 4, Detail: "2"})

	checks := map[string]uint64{
		CtrSent:         3,
		CtrDelivered:    1,
		CtrDropped:      1,
		CtrBytesSent:    32,
		CtrCSEntries:    1,
		CtrLinkUps:      1,
		CtrLinkDowns:    1,
		CtrMoves:        1,
		CtrCrashes:      1,
		CtrRecolorRns:   1,
		"sent.req":      2,
		"sent.fork":     1,
		"delivered.req": 1,
		"dropped.fork":  1,
	}
	for name, want := range checks {
		if got := r.Counter(name); got != want {
			t.Errorf("counter %q = %d, want %d", name, got, want)
		}
	}
	delays := r.Histogram(HistLinkDelay, nil).Snapshot()
	if delays.Count != 1 || delays.Max != 1500 {
		t.Errorf("delay histogram = %+v", delays)
	}

	snap := r.Snapshot()
	if snap.Counters[CtrSent] != 3 {
		t.Errorf("snapshot counters = %v", snap.Counters)
	}
	out := snap.String()
	if !strings.Contains(out, CtrSent) || !strings.Contains(out, HistLinkDelay) {
		t.Errorf("snapshot rendering missing names:\n%s", out)
	}
}

// Synthetic message types for the dense-counter test; the TypeNamer
// normalises them to "req" and "fork".
type (
	msgReq  struct{ _ [8]byte }
	msgFork struct{ _ [16]byte }
)

// TestInstrumentDenseIDs drives traffic events that carry minted MsgIDs
// and checks the dense per-type tables fold back into exactly the same
// string counters the map path produces — including mixed streams where
// some events carry an ID and some do not.
func TestInstrumentDenseIDs(t *testing.T) {
	bus := trace.NewBus(0)
	r := NewRegistry()
	namer := trace.NewTypeNamer()
	Instrument(bus, r, namer)

	reqName, reqSize, reqID := namer.Info(msgReq{})
	forkName, forkSize, forkID := namer.Info(msgFork{})
	if reqName != "req" || forkName != "fork" {
		t.Fatalf("normalised names = %q, %q", reqName, forkName)
	}

	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 0, Peer: 1, Msg: reqName, Size: reqSize, MsgID: reqID})
	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 1, Peer: 0, Msg: forkName, Size: forkSize, MsgID: forkID})
	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 0, Peer: 1, Msg: reqName, Size: reqSize, MsgID: reqID})
	bus.Publish(trace.Event{Kind: trace.KindDeliver, Node: 1, Peer: 0, Msg: reqName, Size: reqSize, MsgID: reqID, Delay: 400})
	bus.Publish(trace.Event{Kind: trace.KindDrop, Node: 0, Peer: 1, Msg: forkName, Size: forkSize, MsgID: forkID})
	// An emitter that never touched the namer: MsgID 0 takes the string path.
	bus.Publish(trace.Event{Kind: trace.KindSend, Node: 2, Peer: 3, Msg: "probe", Size: 4})

	checks := map[string]uint64{
		CtrSent:         4,
		CtrDelivered:    1,
		CtrDropped:      1,
		CtrBytesSent:    uint64(2*reqSize + forkSize + 4),
		"sent.req":      2,
		"sent.fork":     1,
		"sent.probe":    1,
		"delivered.req": 1,
		"dropped.fork":  1,
	}
	for name, want := range checks {
		if got := r.Counter(name); got != want {
			t.Errorf("counter %q = %d, want %d", name, got, want)
		}
	}
	if _, ok := r.CountersWithPrefix(PrefixDelivered)["fork"]; ok {
		t.Error("delivered.fork should be absent, not zero")
	}
	// Folding must drain: a second read sees the same totals, not doubles.
	if got := r.Counter("sent.req"); got != 2 {
		t.Errorf("second read of sent.req = %d, want 2", got)
	}
}

func TestPerMeal(t *testing.T) {
	if got := PerMeal(100, 10); got != 10 {
		t.Errorf("PerMeal(100,10) = %v", got)
	}
	if got := PerMeal(100, 0); got != 0 {
		t.Errorf("PerMeal with zero meals = %v", got)
	}
}
