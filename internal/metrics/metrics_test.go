package metrics

import (
	"testing"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/sim"
)

type fixedTopo map[core.NodeID][]core.NodeID

func (t fixedTopo) Neighbors(id core.NodeID) []core.NodeID { return t[id] }

func TestSafetyCheckerCleanRun(t *testing.T) {
	topo := fixedTopo{0: {1}, 1: {0}}
	c := NewSafetyChecker(topo)
	c.OnStateChange(0, core.Hungry, core.Eating, 10)
	c.OnStateChange(0, core.Eating, core.Thinking, 20)
	c.OnStateChange(1, core.Hungry, core.Eating, 30)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSafetyCheckerDetectsNeighbourOverlap(t *testing.T) {
	topo := fixedTopo{0: {1}, 1: {0}}
	c := NewSafetyChecker(topo)
	c.OnStateChange(0, core.Hungry, core.Eating, 10)
	c.OnStateChange(1, core.Hungry, core.Eating, 15)
	if err := c.Err(); err == nil {
		t.Fatal("overlapping neighbours not detected")
	}
	v := c.Violations()
	if len(v) != 1 || v[0].A != 1 || v[0].B != 0 || v[0].At != 15 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestSafetyCheckerAllowsNonNeighbourOverlap(t *testing.T) {
	topo := fixedTopo{0: {1}, 1: {0, 2}, 2: {1}}
	c := NewSafetyChecker(topo)
	c.OnStateChange(0, core.Hungry, core.Eating, 10)
	c.OnStateChange(2, core.Hungry, core.Eating, 15)
	if err := c.Err(); err != nil {
		t.Fatalf("distance-2 overlap flagged: %v", err)
	}
}

func TestSafetyCheckerDetectsLinkBetweenEaters(t *testing.T) {
	topo := fixedTopo{}
	c := NewSafetyChecker(topo)
	c.OnStateChange(0, core.Hungry, core.Eating, 10)
	c.OnStateChange(5, core.Hungry, core.Eating, 12)
	c.OnLink(0, 5, true, 20)
	if err := c.Err(); err == nil {
		t.Fatal("link between two eaters not detected")
	}
	c2 := NewSafetyChecker(topo)
	c2.OnStateChange(0, core.Hungry, core.Eating, 10)
	c2.OnLink(0, 5, true, 20) // 5 not eating: fine
	c2.OnLink(0, 5, false, 30)
	if err := c2.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatalf("empty summarize = %+v", s)
	}
	s := Summarize([]sim.Time{40, 10, 30, 20})
	if s.Count != 4 || s.Mean != 25 || s.Max != 40 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P50 != 20 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestResponseRecorderBasic(t *testing.T) {
	r := NewResponseRecorder(Retain())
	r.OnStateChange(3, core.Thinking, core.Hungry, 100)
	r.OnStateChange(3, core.Hungry, core.Eating, 250)
	r.OnStateChange(3, core.Eating, core.Thinking, 300)
	samples := r.Samples()
	if len(samples) != 1 || samples[0] != 150 {
		t.Fatalf("samples = %v", samples)
	}
	if got := r.NodeSamples(3); len(got) != 1 || got[0] != 150 {
		t.Fatalf("node samples = %v", got)
	}
	if r.EatCount(3) != 1 {
		t.Fatalf("eat count = %d", r.EatCount(3))
	}
}

func TestResponseRecorderTaintOnMove(t *testing.T) {
	r := NewResponseRecorder(Retain())
	r.OnStateChange(1, core.Thinking, core.Hungry, 100)
	r.OnMove(1, true, 120)
	r.OnMove(1, false, 140)
	r.OnStateChange(1, core.Hungry, core.Eating, 200)
	if len(r.Samples()) != 0 {
		t.Fatal("tainted interval sampled")
	}
	if r.EatCount(1) != 1 {
		t.Fatal("eating not counted despite taint")
	}
	// A later clean interval samples normally.
	r.OnStateChange(1, core.Eating, core.Thinking, 210)
	r.OnStateChange(1, core.Thinking, core.Hungry, 300)
	r.OnStateChange(1, core.Hungry, core.Eating, 360)
	if got := r.Samples(); len(got) != 1 || got[0] != 60 {
		t.Fatalf("samples = %v", got)
	}
}

func TestResponseRecorderMoveOfOtherNodeNoTaint(t *testing.T) {
	r := NewResponseRecorder(Retain())
	r.OnStateChange(1, core.Thinking, core.Hungry, 100)
	r.OnMove(2, true, 120)
	r.OnStateChange(1, core.Hungry, core.Eating, 200)
	if len(r.Samples()) != 1 {
		t.Fatal("unrelated movement tainted the sample")
	}
}

func TestResponseRecorderDemotionOpensNewInterval(t *testing.T) {
	r := NewResponseRecorder(Retain())
	r.OnStateChange(1, core.Thinking, core.Hungry, 100)
	r.OnStateChange(1, core.Hungry, core.Eating, 150)
	r.OnStateChange(1, core.Eating, core.Hungry, 160) // demotion
	r.OnStateChange(1, core.Hungry, core.Eating, 260)
	got := r.Samples()
	if len(got) != 2 || got[0] != 50 || got[1] != 100 {
		t.Fatalf("samples = %v", got)
	}
}

// TestResponseRecorderStreamingDefault pins the bounded-memory default:
// without Retain() no sample slices are kept, yet Stats() still serves
// exact count/mean/max (and α-accurate percentiles) from the sketch, and
// taint/demotion semantics are unchanged.
func TestResponseRecorderStreamingDefault(t *testing.T) {
	r := NewResponseRecorder()
	r.OnStateChange(1, core.Thinking, core.Hungry, 100)
	r.OnStateChange(1, core.Hungry, core.Eating, 150) // sample 50
	r.OnStateChange(1, core.Eating, core.Hungry, 160) // demotion
	r.OnStateChange(1, core.Hungry, core.Eating, 260) // sample 100
	r.OnStateChange(2, core.Thinking, core.Hungry, 100)
	r.OnMove(2, true, 120)
	r.OnStateChange(2, core.Hungry, core.Eating, 400) // tainted: no sample
	if got := r.Samples(); got != nil {
		t.Fatalf("streaming recorder retained samples: %v", got)
	}
	if got := r.NodeSamples(1); got != nil {
		t.Fatalf("streaming recorder retained node samples: %v", got)
	}
	s := r.Stats()
	if s.Count != 2 || s.Mean != 75 || s.Max != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if r.EatCount(1) != 2 || r.EatCount(2) != 1 {
		t.Fatalf("eat counts = %d, %d", r.EatCount(1), r.EatCount(2))
	}
	if r.Sketch().Count() != 2 {
		t.Fatalf("sketch count = %d", r.Sketch().Count())
	}
}

// TestRecorderStatsMatchesSummarize holds the sketch-served Stats to the
// exact Summarize over the retained slice, within the sketch's accuracy.
func TestRecorderStatsMatchesSummarize(t *testing.T) {
	r := NewResponseRecorder(Retain())
	at := sim.Time(0)
	for i := 0; i < 500; i++ {
		id := core.NodeID(i % 7)
		r.OnStateChange(id, core.Thinking, core.Hungry, at)
		at += sim.Time(50 + (i*i)%9000)
		r.OnStateChange(id, core.Hungry, core.Eating, at)
		at += 10
		r.OnStateChange(id, core.Eating, core.Thinking, at)
	}
	got := r.Stats()
	want := Summarize(r.Samples())
	if got.Count != want.Count || got.Mean != want.Mean || got.Max != want.Max {
		t.Fatalf("exact fields drifted: %+v vs %+v", got, want)
	}
	alpha := r.Sketch().RelativeAccuracy()
	for _, c := range []struct{ got, want sim.Time }{{got.P50, want.P50}, {got.P95, want.P95}} {
		if d := float64(c.got - c.want); d > alpha*float64(c.want)+1 || d < -alpha*float64(c.want)-1 {
			t.Fatalf("quantile %v vs exact %v exceeds α", c.got, c.want)
		}
	}
}

func TestProberBlocked(t *testing.T) {
	p := NewProber()
	p.OnStateChange(1, core.Thinking, core.Hungry, 100)
	p.OnStateChange(2, core.Thinking, core.Hungry, 900)
	p.OnStateChange(3, core.Thinking, core.Hungry, 100)
	p.OnStateChange(3, core.Hungry, core.Eating, 150)
	blocked := p.Blocked(1_000, 500)
	if len(blocked) != 1 || blocked[0] != 1 {
		t.Fatalf("blocked = %v", blocked)
	}
}

func TestProberHungryReentryKeepsOriginalStart(t *testing.T) {
	// A repeated Hungry report while already hungry (no eating in
	// between) must not reset the clock: blocked counts from t=100.
	p := NewProber()
	p.OnStateChange(1, core.Thinking, core.Hungry, 100)
	p.OnStateChange(1, core.Hungry, core.Hungry, 400)
	if blocked := p.Blocked(700, 500); len(blocked) != 1 {
		t.Fatalf("blocked = %v, want node 1 via original start", blocked)
	}
	// A real demotion after eating opens a fresh interval at t=400.
	p2 := NewProber()
	p2.OnStateChange(1, core.Thinking, core.Hungry, 100)
	p2.OnStateChange(1, core.Hungry, core.Eating, 300)
	p2.OnStateChange(1, core.Eating, core.Hungry, 400)
	if blocked := p2.Blocked(700, 500); len(blocked) != 0 {
		t.Fatalf("blocked = %v (demotion did not reset interval)", blocked)
	}
}

func TestProberStarvedSince(t *testing.T) {
	p := NewProber()
	p.OnStateChange(1, core.Thinking, core.Hungry, 100)
	p.OnStateChange(1, core.Hungry, core.Eating, 200)
	p.OnStateChange(1, core.Eating, core.Thinking, 250)
	p.OnStateChange(1, core.Thinking, core.Hungry, 300)
	p.OnStateChange(2, core.Thinking, core.Hungry, 100)
	// Node 1 last ate at 200; node 2 never ate; both hungry now.
	starved := p.StarvedSince(500)
	if len(starved) != 2 {
		t.Fatalf("starved = %v", starved)
	}
	starved = p.StarvedSince(150)
	if len(starved) != 1 || starved[0] != 2 {
		t.Fatalf("starved = %v", starved)
	}
	if _, ok := p.LastEat(2); ok {
		t.Fatal("node 2 reported as having eaten")
	}
	if at, ok := p.LastEat(1); !ok || at != 200 {
		t.Fatalf("LastEat(1) = %v, %v", at, ok)
	}
}

func TestBlockedRadius(t *testing.T) {
	g := graph.Line(6) // 0-1-2-3-4-5
	if r := BlockedRadius(g, 0, nil); r != 0 {
		t.Fatalf("radius with no blocked = %d", r)
	}
	if r := BlockedRadius(g, 0, []core.NodeID{1, 3}); r != 3 {
		t.Fatalf("radius = %d, want 3", r)
	}
	// The crashed node itself is excluded.
	if r := BlockedRadius(g, 2, []core.NodeID{2}); r != 0 {
		t.Fatalf("radius = %d, want 0", r)
	}
}

// TestSummarizeNearestRank pins the percentile convention: nearest rank,
// i.e. the smallest sample with at least ⌈q·N⌉ samples at or below it.
func TestSummarizeNearestRank(t *testing.T) {
	cases := []struct {
		name     string
		samples  []sim.Time
		p50, p95 sim.Time
	}{
		// Odd N=5: rank ⌈0.5·5⌉=3 → 30; rank ⌈0.95·5⌉=5 → 50.
		{"odd5", []sim.Time{50, 10, 40, 20, 30}, 30, 50},
		// Even N=4: rank ⌈2⌉=2 → 20; rank ⌈3.8⌉=4 → 40. The old
		// truncating index returned sorted[2]=30 for P50.
		{"even4", []sim.Time{40, 30, 20, 10}, 20, 40},
		// N=1: every percentile is the sample.
		{"single", []sim.Time{7}, 7, 7},
		// Even N=20: rank 10 → 100; rank ⌈19⌉=19 → 190 (not the max).
		{"even20", ramp(20, 10), 100, 190},
		// Odd N=3: rank ⌈1.5⌉=2 → 20; rank ⌈2.85⌉=3 → 30.
		{"odd3", []sim.Time{30, 10, 20}, 20, 30},
	}
	for _, tc := range cases {
		s := Summarize(tc.samples)
		if s.P50 != tc.p50 {
			t.Errorf("%s: P50 = %v, want %v", tc.name, s.P50, tc.p50)
		}
		if s.P95 != tc.p95 {
			t.Errorf("%s: P95 = %v, want %v", tc.name, s.P95, tc.p95)
		}
	}
}

// ramp returns {step, 2·step, …, n·step}.
func ramp(n int, step sim.Time) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Time(i+1) * step
	}
	return out
}

// TestProberStarvedSinceNeverAte isolates the never-ate path: a node with
// no lastEat entry counts as starved from any reference point, but only
// while it is actually hungry.
func TestProberStarvedSinceNeverAte(t *testing.T) {
	p := NewProber()
	p.OnStateChange(1, core.Thinking, core.Hungry, 100) // never eats
	p.OnStateChange(2, core.Thinking, core.Hungry, 100) // never eats, recovers
	p.OnStateChange(2, core.Hungry, core.Thinking, 200)
	if starved := p.StarvedSince(0); len(starved) != 1 || starved[0] != 1 {
		t.Fatalf("starved = %v, want [1]: hungry never-eater only", starved)
	}
	// A prober that saw no transitions at all reports nobody.
	if starved := NewProber().StarvedSince(0); len(starved) != 0 {
		t.Fatalf("fresh prober starved = %v", starved)
	}
}

// TestProberBlockedPatienceBoundary pins the inclusive comparison: a wait
// exactly equal to the patience counts as blocked, one instant shorter
// does not.
func TestProberBlockedPatienceBoundary(t *testing.T) {
	p := NewProber()
	p.OnStateChange(1, core.Thinking, core.Hungry, 100)
	if blocked := p.Blocked(600, 500); len(blocked) != 1 || blocked[0] != 1 {
		t.Fatalf("blocked at exact patience = %v, want [1]", blocked)
	}
	if blocked := p.Blocked(599, 500); len(blocked) != 0 {
		t.Fatalf("blocked one instant early = %v, want none", blocked)
	}
	// Zero patience: any currently-hungry node is blocked.
	if blocked := p.Blocked(100, 0); len(blocked) != 1 {
		t.Fatalf("blocked with zero patience = %v", blocked)
	}
}

// TestProberCrashedWhileHungry documents the crash-site convention: the
// prober sees no state transition on a crash, so a node that dies hungry
// stays in the blocked/starved sets — callers measuring locality exclude
// the crash site themselves, which BlockedRadius does.
func TestProberCrashedWhileHungry(t *testing.T) {
	p := NewProber()
	p.OnStateChange(4, core.Thinking, core.Hungry, 100)
	// Node 4 crashes at 150: no further transitions arrive.
	if blocked := p.Blocked(1_000, 500); len(blocked) != 1 || blocked[0] != 4 {
		t.Fatalf("crashed-hungry node not reported blocked: %v", blocked)
	}
	if starved := p.StarvedSince(150); len(starved) != 1 || starved[0] != 4 {
		t.Fatalf("crashed-hungry node not reported starved: %v", starved)
	}
	// The locality measurement excludes the crash site: a radius built
	// from only the crashed node itself is 0.
	g := graph.Line(6)
	if r := BlockedRadius(g, 4, []core.NodeID{4}); r != 0 {
		t.Fatalf("radius counting the crash site = %d", r)
	}
}

// TestSafetyCheckerViolationHook: the flight recorder's trigger fires
// synchronously on every recorded violation, on both detection paths
// (state transition and link creation).
func TestSafetyCheckerViolationHook(t *testing.T) {
	topo := fixedTopo{0: {1}, 1: {0}}
	c := NewSafetyChecker(topo)
	var got []Violation
	c.SetOnViolation(func(v Violation) { got = append(got, v) })
	c.OnStateChange(0, core.Hungry, core.Eating, 10)
	c.OnStateChange(1, core.Hungry, core.Eating, 15)
	if len(got) != 1 || got[0].A != 1 || got[0].B != 0 || got[0].At != 15 {
		t.Fatalf("hook saw %v", got)
	}
	c.OnLink(0, 1, true, 20) // both still eating: the link path fires too
	if len(got) != 2 || got[1].At != 20 {
		t.Fatalf("hook saw %v", got)
	}
	// The hook observes what Violations records, in order.
	vs := c.Violations()
	if len(vs) != len(got) || vs[0] != got[0] || vs[1] != got[1] {
		t.Fatalf("hook/record divergence: %v vs %v", got, vs)
	}
	// Detaching the hook stops callbacks but not recording.
	c.SetOnViolation(nil)
	c.OnStateChange(0, core.Eating, core.Eating, 25)
	if len(got) != 2 {
		t.Fatalf("detached hook fired: %v", got)
	}
}
