package metrics

import (
	"fmt"
	"math"
	"sort"

	"lme/internal/sim"
)

// DefaultGamma is the bucket growth factor γ of the quantile sketch:
// consecutive bucket boundaries differ by 2%, giving a guaranteed
// relative quantile error of (γ−1)/(γ+1) ≈ 1% — tighter than any
// digit the experiment tables print.
const DefaultGamma = 1.02

// Sketch is a deterministic log-bucketed quantile sketch (the DDSketch
// construction): observation v > 0 lands in bucket ⌈log_γ(v)⌉, so every
// bucket spans a fixed γ ratio and any quantile estimate is within
// (γ−1)/(γ+1) relative error of the exact nearest-rank value. Memory is
// O(log_γ(max/min)) — independent of how many values are observed — and
// two sketches with the same γ merge by adding bucket counts, which is
// insertion-order independent: merging replica sketches in any order
// (or any worker count) yields bit-identical quantiles.
//
// Count, sum, min and max are tracked exactly; for the integer-valued
// µs durations this repository observes, the float64 sum stays exact
// (well below 2⁵³), so Mean matches the exact sample mean.
//
// Like the rest of the metrics layer the sketch is single-threaded.
type Sketch struct {
	gamma    float64
	logGamma float64

	buckets map[int32]uint64
	zero    uint64 // observations below 1 (zero-length durations)

	count    uint64
	sum      float64
	min, max float64
}

// NewSketch creates an empty sketch with DefaultGamma.
func NewSketch() *Sketch { return NewSketchGamma(DefaultGamma) }

// NewSketchGamma creates an empty sketch with the given growth factor
// (must exceed 1).
func NewSketchGamma(gamma float64) *Sketch {
	if !(gamma > 1) {
		panic(fmt.Sprintf("metrics: sketch gamma %v must be > 1", gamma))
	}
	return &Sketch{
		gamma:    gamma,
		logGamma: math.Log(gamma),
		buckets:  make(map[int32]uint64),
	}
}

// Gamma reports the bucket growth factor.
func (s *Sketch) Gamma() float64 { return s.gamma }

// RelativeAccuracy is the guaranteed quantile error bound α = (γ−1)/(γ+1):
// |Quantile(q) − exact| ≤ α·exact for every q.
func (s *Sketch) RelativeAccuracy() float64 { return (s.gamma - 1) / (s.gamma + 1) }

// bucketIndex maps a positive value to its bucket: v ∈ (γ^(j−1), γ^j].
func (s *Sketch) bucketIndex(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / s.logGamma))
}

// bucketValue is the estimate reported for bucket j: the midpoint
// 2γ^j/(γ+1), within α relative error of every value in the bucket.
func (s *Sketch) bucketValue(j int32) float64 {
	return 2 * math.Pow(s.gamma, float64(j)) / (s.gamma + 1)
}

// ObserveFloat folds one value. Values below 1 (including 0) share an
// exact zero bucket.
func (s *Sketch) ObserveFloat(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	if v < 1 {
		s.zero++
		return
	}
	s.buckets[s.bucketIndex(v)]++
}

// Observe folds one duration.
func (s *Sketch) Observe(d sim.Time) { s.ObserveFloat(float64(d)) }

// Count reports how many values were observed.
func (s *Sketch) Count() uint64 { return s.count }

// Sum reports the exact sum of all observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean reports the exact mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min reports the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// clamp bounds an estimate by the exact observed range, so the extreme
// quantiles (q→0, q→1) report the exact min/max.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// QuantileFloat estimates the nearest-rank q-quantile (q in [0,1]; 0
// when empty), within RelativeAccuracy of the exact value, using the
// same rank convention as Summarize: the value with rank ⌈q·N⌉.
func (s *Sketch) QuantileFloat(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	if rank <= s.zero {
		return s.clamp(0)
	}
	idxs := make([]int32, 0, len(s.buckets))
	for j := range s.buckets {
		idxs = append(idxs, j)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	cum := s.zero
	for _, j := range idxs {
		cum += s.buckets[j]
		if cum >= rank {
			return s.clamp(s.bucketValue(j))
		}
	}
	return s.max
}

// Quantile estimates the q-quantile as a duration, rounded to the µs.
func (s *Sketch) Quantile(q float64) sim.Time {
	return sim.Time(s.QuantileFloat(q) + 0.5)
}

// Stats summarises the sketch in the layout of Summarize: count, mean
// and max are exact; P50/P95 carry the α-bounded estimates.
func (s *Sketch) Stats() Stats {
	if s.count == 0 {
		return Stats{}
	}
	return Stats{
		Count: int(s.count),
		Mean:  sim.Time(s.Mean()),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		Max:   sim.Time(s.max + 0.5),
	}
}

// Merge folds o into s by adding bucket counts. Both sketches must share
// γ. Because bucket addition commutes, the merged quantiles do not
// depend on merge order — the property the fleet's replica reduction
// relies on for worker-count-independent tables.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.gamma != s.gamma {
		panic(fmt.Sprintf("metrics: merging sketches with gamma %v and %v", s.gamma, o.gamma))
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	s.zero += o.zero
	for j, n := range o.buckets {
		s.buckets[j] += n
	}
}

// SketchBucket is one (index, count) pair of the wire snapshot.
type SketchBucket struct {
	Index int32  `json:"i"`
	Count uint64 `json:"n"`
}

// SketchSnapshot is the exact, serialisable form of a Sketch: the full
// bucket table plus the exact scalars. FromSnapshot reconstructs a
// sketch that is indistinguishable from the original, so snapshots can
// cross process or replica boundaries and still merge losslessly.
type SketchSnapshot struct {
	Gamma   float64        `json:"gamma"`
	Count   uint64         `json:"count"`
	Zero    uint64         `json:"zero,omitempty"`
	Sum     float64        `json:"sum"`
	Min     float64        `json:"min"`
	Max     float64        `json:"max"`
	Buckets []SketchBucket `json:"buckets"`
}

// Snapshot freezes the sketch, with buckets sorted by index.
func (s *Sketch) Snapshot() SketchSnapshot {
	snap := SketchSnapshot{
		Gamma: s.gamma,
		Count: s.count,
		Zero:  s.zero,
		Sum:   s.sum,
		Min:   s.Min(),
		Max:   s.Max(),
	}
	snap.Buckets = make([]SketchBucket, 0, len(s.buckets))
	for j, n := range s.buckets {
		snap.Buckets = append(snap.Buckets, SketchBucket{Index: j, Count: n})
	}
	sort.Slice(snap.Buckets, func(i, j int) bool { return snap.Buckets[i].Index < snap.Buckets[j].Index })
	return snap
}

// FromSnapshot reconstructs a sketch from its wire form. A zero-valued
// snapshot (Gamma 0) yields an empty DefaultGamma sketch.
func FromSnapshot(snap SketchSnapshot) *Sketch {
	gamma := snap.Gamma
	if gamma == 0 {
		gamma = DefaultGamma
	}
	s := NewSketchGamma(gamma)
	s.count = snap.Count
	s.zero = snap.Zero
	s.sum = snap.Sum
	s.min = snap.Min
	s.max = snap.Max
	for _, b := range snap.Buckets {
		s.buckets[b.Index] = b.Count
	}
	return s
}

// String renders the sketch compactly.
func (s *Sketch) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%v p95=%v max=%.0f (γ=%v, %d buckets)",
		s.count, s.Mean(), s.Quantile(0.50), s.Quantile(0.95), s.Max(), s.gamma, len(s.buckets))
}
