// Package livenet runs the same core.Protocol state machines that the
// discrete-event simulator drives — unchanged — as a networked lock
// service: one goroutine per node, a pluggable Transport moving framed
// messages per directed link (in-process channels for hermetic tests, UDP
// sockets for deployment shape), and a lease-based client API
// (Node.Acquire / Lease.Release) on top. Every protocol instance is only
// ever touched by its node's event loop, so the package is race-clean by
// construction (and tested with -race).
//
// Livenet supports static topologies: mobility experiments live in
// internal/manet, where virtual time makes them reproducible. What livenet
// adds is evidence that the algorithms run correctly under genuine
// concurrency, real clocks and real sockets — and a service surface real
// clients can hold locks through.
package livenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/span"
	"lme/internal/telemetry"
	"lme/internal/trace"
)

// Defaults of Config, in one place. The names follow the lme.Config
// vocabulary (ν = MaxMessageDelay, τ = EatTime, think bounds, seed), at
// the µs scale appropriate for wall-clock runs.
const (
	// DefaultMaxMessageDelay is the live ν: the per-frame link delay
	// bound of the channel transport.
	DefaultMaxMessageDelay = 500 * time.Microsecond
	// DefaultEatTime is the live τ: how long the self-driving workload
	// holds the critical section.
	DefaultEatTime = 300 * time.Microsecond
	// DefaultThinkMax bounds the workload's uniform thinking period.
	DefaultThinkMax = 500 * time.Microsecond
	// DefaultLeaseTTL is the lease expiry horizon: a client that holds a
	// lease this long without releasing is presumed crashed, and the node
	// is demoted out of eating so its neighbours are not starved.
	DefaultLeaseTTL = 250 * time.Millisecond
	// DefaultSeed seeds the delay/think randomness, matching lme.Config's
	// seed-0-means-1 handling.
	DefaultSeed = 1
	// DefaultTraceRing is the per-cluster event ring capacity.
	DefaultTraceRing = 1024
)

// Config parameterises a live cluster. The field vocabulary matches
// lme.Config — ν, τ, think bounds, seed — so the simulated and live entry
// points read as one API.
type Config struct {
	// MaxMessageDelay bounds the per-message link delay (the paper's ν).
	// Default DefaultMaxMessageDelay. Only the channel transport imposes
	// it; UDP links have whatever delay the network gives them.
	MaxMessageDelay time.Duration

	// MaxDelay is the pre-lock-service name of MaxMessageDelay.
	//
	// Deprecated: set MaxMessageDelay. Honoured only when
	// MaxMessageDelay is zero.
	MaxDelay time.Duration

	// EatTime is the critical-section hold time τ of the self-driving
	// workload (Run and the load generator). Default DefaultEatTime.
	EatTime time.Duration

	// ThinkMin and ThinkMax bound the workload's uniform thinking
	// period. Default (0, DefaultThinkMax].
	ThinkMin, ThinkMax time.Duration

	// Seed drives the delay/think randomness (default DefaultSeed; 0
	// means the default, as in lme.Config).
	Seed uint64

	// LeaseTTL is how long an unreleased lease lives before the service
	// presumes its client crashed and demotes the node out of eating.
	// Default DefaultLeaseTTL.
	LeaseTTL time.Duration

	// Transport moves frames between nodes. Nil selects the in-process
	// channel transport over the cluster graph (hermetic, race-clean);
	// pass NewUDPTransport for real sockets. The cluster owns Start and
	// Close either way.
	Transport Transport

	// Spans attaches the causal span layer to the cluster bus: CS-attempt
	// spans over real clocks, summarised by SpanSummary after Stop.
	Spans bool

	// TraceRing overrides the event ring capacity (default
	// DefaultTraceRing).
	TraceRing int
}

// withDefaults is the single place live defaults are applied.
func (cfg Config) withDefaults() Config {
	if cfg.MaxMessageDelay <= 0 {
		cfg.MaxMessageDelay = cfg.MaxDelay // deprecated alias
	}
	if cfg.MaxMessageDelay <= 0 {
		cfg.MaxMessageDelay = DefaultMaxMessageDelay
	}
	if cfg.EatTime <= 0 {
		cfg.EatTime = DefaultEatTime
	}
	if cfg.ThinkMax <= 0 {
		cfg.ThinkMax = DefaultThinkMax
	}
	if cfg.ThinkMin < 0 {
		cfg.ThinkMin = 0
	}
	if cfg.ThinkMin > cfg.ThinkMax {
		cfg.ThinkMin = cfg.ThinkMax
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = DefaultTraceRing
	}
	return cfg
}

// Errors of the lifecycle and lease API.
var (
	errAlreadyStarted = errors.New("livenet: transport already started")
	// ErrStopped reports an Acquire interrupted by cluster shutdown.
	ErrStopped = errors.New("livenet: cluster stopped")
	// ErrLeaseExpired reports a Release that arrived after the lease TTL
	// already demoted the node: the critical section was force-exited.
	ErrLeaseExpired = errors.New("livenet: lease expired")
	// ErrLeaseReleased reports a second Release of the same lease.
	ErrLeaseReleased = errors.New("livenet: lease already released")
)

// event is one unit of work for a node's loop.
type event struct {
	kind eventKind
	from core.NodeID
	msg  core.Message
}

type eventKind int

const (
	evMessage eventKind = iota + 1
	evAcquire
	evRelease
	evCrash
	evStop
)

// mailbox is an unbounded FIFO queue with blocking pop.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []event
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues an event; no-op after close.
func (m *mailbox) push(e event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, e)
	m.cond.Signal()
}

// pop dequeues the next event, blocking; ok=false after close and drain.
func (m *mailbox) pop() (event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return event{}, false
	}
	e := m.items[0]
	m.items = m.items[1:]
	return e, true
}

// close wakes all waiters; pending events are still drained.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Cluster is a running (or runnable) lock service over a set of live
// nodes. Build with New, then either drive it with the lease API
// (Start, Node(i).Acquire, Stop) or let the built-in dining workload
// exercise it (Run).
type Cluster struct {
	cfg   Config
	g     *graph.Graph
	nbrs  [][]core.NodeID // shared read-only neighbour views, one per node
	nodes []*liveNode
	tr    Transport

	bus   *trace.Bus
	busMu sync.Mutex // the bus is single-threaded; live goroutines serialise here
	namer *trace.TypeNamer
	reg   *metrics.Registry
	spans *span.Collector

	start   time.Time
	stopCh  chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool
	lifeMu  sync.Mutex // guards started/stopped transitions

	mu           sync.Mutex // guards checker, meals, grant stats
	checker      *metrics.SafetyChecker
	meals        []int
	grant        *metrics.Sketch
	acquisitions uint64
	expired      uint64
}

type liveNode struct {
	id    core.NodeID
	proto core.Protocol
	inbox *mailbox
	c     *Cluster

	// mseq is the node's monotone message id; only the node's event loop
	// (and Init, which runs before the loops start) sends, so no atomics.
	mseq uint64

	// last is the previously reported state; only the node's own loop
	// writes it (protocols report transitions synchronously from their
	// handlers).
	last core.State

	// slot serialises leases: at most one outstanding Acquire/Lease per
	// node, later Acquire calls queue on it.
	slot chan struct{}

	// pmu guards pending and lease.
	pmu     sync.Mutex
	pending *pendingAcquire
	lease   *Lease
}

// New builds a cluster over the given static communication graph.
// protocols[i] is node i's algorithm instance. Subscribe to Bus before
// Start; the configured transport is started and closed by the cluster.
func New(cfg Config, g *graph.Graph, protocols []core.Protocol) (*Cluster, error) {
	if len(protocols) != g.N() {
		return nil, fmt.Errorf("livenet: %d protocols for %d nodes", len(protocols), g.N())
	}
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:    cfg,
		g:      g,
		nbrs:   make([][]core.NodeID, g.N()),
		meals:  make([]int, g.N()),
		bus:    trace.NewBus(cfg.TraceRing),
		namer:  trace.NewTypeNamer(),
		reg:    metrics.NewRegistry(),
		grant:  metrics.NewSketch(),
		stopCh: make(chan struct{}),
	}
	for i := 0; i < g.N(); i++ {
		nbrs := g.Neighbors(i)
		ids := make([]core.NodeID, len(nbrs))
		for j, nb := range nbrs {
			ids[j] = core.NodeID(nb)
		}
		c.nbrs[i] = ids
		c.nodes = append(c.nodes, &liveNode{
			id:    core.NodeID(i),
			proto: protocols[i],
			inbox: newMailbox(),
			c:     c,
			last:  core.Thinking,
			slot:  make(chan struct{}, 1),
		})
	}
	c.checker = metrics.NewSafetyChecker(topoAdapter{c})
	metrics.Instrument(c.bus, c.reg, c.namer)
	if cfg.Spans {
		c.spans = span.New()
		c.spans.Attach(c.bus)
		for _, e := range g.Edges() {
			c.spans.SeedLink(core.NodeID(e[0]), core.NodeID(e[1]))
		}
	}
	if cfg.Transport == nil {
		cfg.Transport = NewChannelTransport(g, cfg.MaxMessageDelay, cfg.Seed)
		c.cfg.Transport = cfg.Transport
	}
	c.tr = cfg.Transport
	return c, nil
}

// topoAdapter exposes the cluster's neighbour views to the safety
// checker. The returned slice is the runtime-owned read-only view;
// the checker only iterates it.
type topoAdapter struct {
	c *Cluster
}

func (t topoAdapter) Neighbors(id core.NodeID) []core.NodeID {
	return t.c.nbrs[id]
}

// Bus exposes the cluster's typed event stream. Subscribe before Start;
// the bus itself is single-threaded, so the cluster serialises publishes
// from its goroutines internally, and subscribers run one at a time.
func (c *Cluster) Bus() *trace.Bus { return c.bus }

// now is the cluster-relative clock in virtual-time units (µs).
func (c *Cluster) now() sim.Time {
	return sim.FromDuration(time.Since(c.start))
}

// emit serialises an event onto the bus. The timestamp is taken under
// the lock, so the published stream is monotone.
func (c *Cluster) emit(e trace.Event) {
	c.busMu.Lock()
	e.At = c.now()
	c.bus.Publish(e)
	c.busMu.Unlock()
}

// Start initialises the protocols, starts the transport and launches the
// node event loops. It is idempotent-hostile by design: a second Start
// errors.
func (c *Cluster) Start() error {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	if c.started {
		return errors.New("livenet: cluster already started")
	}
	c.started = true
	c.start = time.Now()
	if err := c.tr.Start(c.deliver); err != nil {
		return err
	}
	// Init may send; the transport is live, the loops are not — frames
	// queue in the inboxes until the loops drain them.
	for _, n := range c.nodes {
		n.proto.Init(&liveEnv{node: n})
	}
	for _, n := range c.nodes {
		n := n
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.loop()
		}()
	}
	return nil
}

// Stop shuts the cluster down: pending Acquires fail with ErrStopped,
// the transport closes, the node loops drain and exit, and the span
// layer (when attached) is finalised. It returns the safety checker's
// verdict. Stop is idempotent.
func (c *Cluster) Stop() error {
	c.lifeMu.Lock()
	if c.stopped {
		c.lifeMu.Unlock()
		return c.checker.Err()
	}
	c.stopped = true
	c.lifeMu.Unlock()

	close(c.stopCh)
	c.tr.Close()
	for _, n := range c.nodes {
		n.inbox.push(event{kind: evStop})
		n.inbox.close()
	}
	c.wg.Wait()
	if c.spans != nil {
		c.busMu.Lock()
		c.spans.Finalize(c.now())
		c.busMu.Unlock()
	}
	c.bus.Flush() //nolint:errcheck // loss is visible via SinkDropped
	return c.checker.Err()
}

// deliver is the transport's callback: it publishes the deliver event
// and hands the message to the destination's event loop.
func (c *Cluster) deliver(f Frame) {
	if c.bus.Wants(trace.KindDeliver) {
		c.busMu.Lock()
		name, size, id := c.namer.Info(f.Msg)
		now := c.now()
		delay := now - f.SentAt
		if delay < 0 {
			delay = 0
		}
		c.bus.Publish(trace.Event{
			At: now, Kind: trace.KindDeliver, Node: f.To, Peer: f.From,
			Msg: name, MsgID: id, Size: size, MsgSeq: f.Mseq, Delay: delay,
		})
		c.busMu.Unlock()
	}
	c.nodes[f.To].inbox.push(event{kind: evMessage, from: f.From, msg: f.Msg})
}

// send stamps the frame with the node's message id and hands it to the
// transport, publishing the send event.
func (n *liveNode) send(to core.NodeID, msg core.Message) {
	c := n.c
	n.mseq++
	f := Frame{From: n.id, To: to, Msg: msg, Mseq: n.mseq, SentAt: c.now()}
	if c.bus.Wants(trace.KindSend) {
		c.busMu.Lock()
		name, size, id := c.namer.Info(msg)
		c.bus.Publish(trace.Event{
			At: c.now(), Kind: trace.KindSend, Node: n.id, Peer: to,
			Msg: name, MsgID: id, Size: size, MsgSeq: n.mseq,
		})
		c.busMu.Unlock()
	}
	c.tr.Send(f)
}

// Run drives the cluster for the given wall-clock duration with the
// built-in dining workload: every node's client goroutine loops
// think → Acquire → hold τ → Release, which exercises exactly the lease
// surface external clients use. Everything is shut down and awaited
// before returning; the error is the safety checker's verdict.
func (c *Cluster) Run(d time.Duration) error {
	if err := c.Start(); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var clients sync.WaitGroup
	for i := range c.nodes {
		clients.Add(1)
		go func(id core.NodeID) {
			defer clients.Done()
			c.dine(ctx, id)
		}(core.NodeID(i))
	}
	clients.Wait()
	return c.Stop()
}

// dine is one built-in workload client: the canonical dining cycle over
// the public lease API.
func (c *Cluster) dine(ctx context.Context, id core.NodeID) {
	rng := rand.New(rand.NewPCG(c.cfg.Seed, uint64(id)+1))
	thinkSpread := int64(c.cfg.ThinkMax - c.cfg.ThinkMin)
	for {
		think := c.cfg.ThinkMin + 1
		if thinkSpread > 0 {
			think += time.Duration(rng.Int64N(thinkSpread))
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(think):
		}
		lease, err := c.Node(id).Acquire(ctx)
		if err != nil {
			return
		}
		time.Sleep(c.cfg.EatTime) // the critical section itself
		lease.Release()           //nolint:errcheck // expiry during the hold is fine
	}
}

// CrashAfter fails node id after d of wall-clock time: it stops
// processing events, exactly the paper's silent crash model (a node that
// crashed while eating keeps occupying its critical section; contrast
// with lease expiry, where the node is alive and exits cleanly). Call
// before or during the run.
func (c *Cluster) CrashAfter(id core.NodeID, d time.Duration) {
	time.AfterFunc(d, func() {
		c.nodes[id].inbox.push(event{kind: evCrash})
	})
}

// Meals returns the per-node critical-section counts.
func (c *Cluster) Meals() map[core.NodeID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[core.NodeID]int, len(c.meals))
	for id, n := range c.meals {
		out[core.NodeID(id)] = n
	}
	return out
}

// Violations returns the mutual exclusion violations observed.
func (c *Cluster) Violations() []metrics.Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checker.Violations()
}

// TransportStats snapshots the transport's wire telemetry, or nil for a
// transport that does not implement StatsSource. Safe after Stop — the
// counters outlive the sockets.
func (c *Cluster) TransportStats() *telemetry.TransportStats {
	if src, ok := c.tr.(StatsSource); ok {
		ts := src.Stats()
		return &ts
	}
	return nil
}

// GrantStats snapshots the grant-latency sketch: the Acquire-to-lease
// distribution across all nodes, quantile-accurate to ±1% relative.
func (c *Cluster) GrantStats() metrics.SketchSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.grant.Snapshot()
}

// Acquisitions counts leases granted so far.
func (c *Cluster) Acquisitions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acquisitions
}

// ExpiredLeases counts leases that hit their TTL and were force-released.
func (c *Cluster) ExpiredLeases() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expired
}

// MessagesSent reports protocol frames handed to the transport.
func (c *Cluster) MessagesSent() uint64 {
	c.busMu.Lock()
	defer c.busMu.Unlock()
	return c.reg.Counter(metrics.CtrSent)
}

// MessagesDelivered reports frames the transport delivered.
func (c *Cluster) MessagesDelivered() uint64 {
	c.busMu.Lock()
	defer c.busMu.Unlock()
	return c.reg.Counter(metrics.CtrDelivered)
}

// SpanSummary returns the span layer's fold of the run (zero value when
// Config.Spans was off). Call after Stop.
func (c *Cluster) SpanSummary() span.Summary {
	if c.spans == nil {
		return span.Summary{}
	}
	c.busMu.Lock()
	defer c.busMu.Unlock()
	return c.spans.Summary()
}

// onState serialises state transitions for the checker and resolves
// pending acquisitions. It runs on the node's event loop.
func (c *Cluster) onState(n *liveNode, old, new core.State) {
	now := c.now()
	if c.bus.Wants(trace.KindState) {
		c.emit(trace.Event{Kind: trace.KindState, Node: n.id, Peer: trace.NoNode,
			Old: old.String(), New: new.String()})
	}
	c.mu.Lock()
	c.checker.OnStateChange(n.id, old, new, now)
	if new == core.Eating {
		c.meals[n.id]++
	}
	c.mu.Unlock()
	if new == core.Eating {
		c.grantLease(n)
	}
}

// loop is the node's single thread of control: it is the only goroutine
// that ever calls into the protocol after Init.
func (n *liveNode) loop() {
	crashed := false
	for {
		e, ok := n.inbox.pop()
		if !ok {
			return
		}
		if crashed && e.kind != evStop {
			continue // a crashed node silently discards everything
		}
		switch e.kind {
		case evMessage:
			n.proto.OnMessage(e.from, e.msg)
		case evAcquire:
			if n.proto.State() == core.Thinking {
				n.proto.BecomeHungry()
			}
		case evRelease:
			if n.proto.State() == core.Eating {
				n.proto.ExitCS()
			}
		case evCrash:
			// A node that crashed while eating keeps occupying its
			// critical section for safety accounting — its forks
			// are gone with it, exactly the paper's model.
			crashed = true
			if n.c.bus.Wants(trace.KindCrash) {
				n.c.emit(trace.Event{Kind: trace.KindCrash, Node: n.id, Peer: trace.NoNode})
			}
		case evStop:
			return
		}
	}
}

// liveEnv adapts a node to core.Env.
type liveEnv struct {
	node *liveNode
}

var _ core.Env = (*liveEnv)(nil)
var _ trace.Emitter = (*liveEnv)(nil)
var _ trace.Interest = (*liveEnv)(nil)

func (e *liveEnv) ID() core.NodeID { return e.node.id }

func (e *liveEnv) Now() sim.Time { return e.node.c.now() }

// Neighbors returns the runtime-owned read-only view of the node's
// static neighbourhood (the core.Env contract): callers that retain it
// must copy, and the transports do (see the conformance and aliasing
// tests).
func (e *liveEnv) Neighbors() []core.NodeID {
	return e.node.c.nbrs[e.node.id]
}

func (e *liveEnv) Send(to core.NodeID, msg core.Message) {
	e.node.send(to, msg)
}

func (e *liveEnv) Broadcast(msg core.Message) {
	for _, to := range e.Neighbors() {
		e.node.send(to, msg)
	}
}

func (e *liveEnv) Moving() bool { return false }

func (e *liveEnv) SetState(s core.State) {
	old := e.node.last
	e.node.last = s
	e.node.c.onState(e.node, old, s)
}

// Emit implements trace.Emitter: protocols publish doorway crossings and
// diagnostics onto the cluster bus, exactly as they do on the simulator.
func (e *liveEnv) Emit(ev trace.Event) { e.node.c.emit(ev) }

// Wants implements trace.Interest so protocols skip building events
// nobody subscribed to.
func (e *liveEnv) Wants(k trace.Kind) bool { return e.node.c.bus.Wants(k) }
