// Package livenet runs the same core.Protocol state machines that the
// discrete-event simulator drives — unchanged — on a goroutine per node
// with channel-based message passing in real time: the deployment-shaped
// runtime of the library. Per-directed-link forwarder goroutines preserve
// the FIFO delivery the paper's model requires; every protocol instance is
// only ever touched by its node's event loop, so the package is
// race-clean by construction (and tested with -race).
//
// Livenet supports static topologies: mobility experiments live in
// internal/manet, where virtual time makes them reproducible. What livenet
// adds is evidence that the algorithms run correctly under genuine
// concurrency and real clocks.
package livenet

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
)

// Config parameterises a live cluster.
type Config struct {
	// MaxDelay bounds the per-message link delay (the paper's ν).
	// Default 500µs.
	MaxDelay time.Duration
	// EatTime is the critical-section duration τ. Default 300µs.
	EatTime time.Duration
	// ThinkMax bounds the random thinking period. Default 500µs.
	ThinkMax time.Duration
	// Seed drives the delay/think randomness.
	Seed uint64
}

// event is one unit of work for a node's loop.
type event struct {
	kind eventKind
	from core.NodeID
	msg  core.Message
}

type eventKind int

const (
	evMessage eventKind = iota + 1
	evBecomeHungry
	evExitCS
	evCrash
	evStop
)

// mailbox is an unbounded FIFO queue with blocking pop.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []event
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues an event; no-op after close.
func (m *mailbox) push(e event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.items = append(m.items, e)
	m.cond.Signal()
}

// pop dequeues the next event, blocking; ok=false after close and drain.
func (m *mailbox) pop() (event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return event{}, false
	}
	e := m.items[0]
	m.items = m.items[1:]
	return e, true
}

// close wakes all waiters; pending events are still drained.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Cluster is a running (or runnable) set of live nodes.
type Cluster struct {
	cfg   Config
	g     *graph.Graph
	nodes []*liveNode
	links map[[2]core.NodeID]*mailbox // directed link queues

	start time.Time
	wg    sync.WaitGroup

	mu      sync.Mutex
	eating  map[core.NodeID]bool
	checker *metrics.SafetyChecker
	meals   map[core.NodeID]int
	stopped bool
}

type liveNode struct {
	id      core.NodeID
	proto   core.Protocol
	inbox   *mailbox
	cluster *Cluster
	rng     *rand.Rand
	rngMu   sync.Mutex // AfterFunc callbacks draw think times concurrently

	// last is the previously reported state; only the node's own loop
	// writes it (protocols report transitions synchronously from their
	// handlers).
	last core.State
}

// New builds a cluster over the given static communication graph.
// protocols[i] is node i's algorithm instance.
func New(cfg Config, g *graph.Graph, protocols []core.Protocol) (*Cluster, error) {
	if len(protocols) != g.N() {
		return nil, fmt.Errorf("livenet: %d protocols for %d nodes", len(protocols), g.N())
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 500 * time.Microsecond
	}
	if cfg.EatTime <= 0 {
		cfg.EatTime = 300 * time.Microsecond
	}
	if cfg.ThinkMax <= 0 {
		cfg.ThinkMax = 500 * time.Microsecond
	}
	c := &Cluster{
		cfg:    cfg,
		g:      g,
		links:  make(map[[2]core.NodeID]*mailbox),
		eating: make(map[core.NodeID]bool),
		meals:  make(map[core.NodeID]int),
	}
	c.checker = metrics.NewSafetyChecker(topoAdapter{g})
	for i := 0; i < g.N(); i++ {
		id := core.NodeID(i)
		c.nodes = append(c.nodes, &liveNode{
			id:      id,
			proto:   protocols[i],
			inbox:   newMailbox(),
			cluster: c,
			rng:     rand.New(rand.NewPCG(cfg.Seed, uint64(i)+1)),
			last:    core.Thinking,
		})
	}
	for _, e := range g.Edges() {
		a, b := core.NodeID(e[0]), core.NodeID(e[1])
		c.links[[2]core.NodeID{a, b}] = newMailbox()
		c.links[[2]core.NodeID{b, a}] = newMailbox()
	}
	return c, nil
}

// topoAdapter exposes the static graph to the safety checker.
type topoAdapter struct {
	g *graph.Graph
}

func (t topoAdapter) Neighbors(id core.NodeID) []core.NodeID {
	nbrs := t.g.Neighbors(int(id))
	out := make([]core.NodeID, len(nbrs))
	for i, nb := range nbrs {
		out[i] = core.NodeID(nb)
	}
	return out
}

// Run drives the cluster for the given wall-clock duration: protocols are
// initialised, every node becomes hungry (staggered), the dining cycle
// runs, and everything is shut down and awaited before returning.
func (c *Cluster) Run(d time.Duration) error {
	c.start = time.Now()
	for _, n := range c.nodes {
		n.proto.Init(&liveEnv{node: n})
	}
	// Link forwarders: one goroutine per directed link keeps FIFO order
	// while adding a random delay.
	for key, q := range c.links {
		key, q := key, q
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			dst := c.nodes[key[1]]
			for {
				e, ok := q.pop()
				if !ok {
					return
				}
				time.Sleep(c.randDelay(key[0]))
				dst.inbox.push(e)
			}
		}()
	}
	// Node loops.
	for _, n := range c.nodes {
		n := n
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			n.loop()
		}()
	}
	// Initial hunger.
	for _, n := range c.nodes {
		n.inbox.push(event{kind: evBecomeHungry})
	}
	time.Sleep(d)
	c.stop()
	c.wg.Wait()
	return c.checker.Err()
}

func (c *Cluster) stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	for _, q := range c.links {
		q.close()
	}
	for _, n := range c.nodes {
		n.inbox.push(event{kind: evStop})
		n.inbox.close()
	}
}

func (c *Cluster) randDelay(seed core.NodeID) time.Duration {
	n := c.nodes[seed]
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int64N(int64(c.cfg.MaxDelay)) + 1)
}

// Meals returns the per-node critical-section counts.
func (c *Cluster) Meals() map[core.NodeID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[core.NodeID]int, len(c.meals))
	for k, v := range c.meals {
		out[k] = v
	}
	return out
}

// Violations returns the mutual exclusion violations observed.
func (c *Cluster) Violations() []metrics.Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checker.Violations()
}

// onState serialises state transitions for the checker and schedules the
// workload follow-ups.
func (c *Cluster) onState(n *liveNode, old, new core.State) {
	now := sim.FromDuration(time.Since(c.start))
	c.mu.Lock()
	c.checker.OnStateChange(n.id, old, new, now)
	if new == core.Eating {
		c.meals[n.id]++
	}
	stopped := c.stopped
	c.mu.Unlock()
	if stopped {
		return
	}
	switch new {
	case core.Eating:
		time.AfterFunc(c.cfg.EatTime, func() {
			n.inbox.push(event{kind: evExitCS})
		})
	case core.Thinking:
		n.rngMu.Lock()
		think := time.Duration(n.rng.Int64N(int64(c.cfg.ThinkMax)) + 1)
		n.rngMu.Unlock()
		time.AfterFunc(think, func() {
			n.inbox.push(event{kind: evBecomeHungry})
		})
	}
}

// loop is the node's single thread of control: it is the only goroutine
// that ever calls into the protocol after Init.
func (n *liveNode) loop() {
	crashed := false
	for {
		e, ok := n.inbox.pop()
		if !ok {
			return
		}
		if crashed && e.kind != evStop {
			continue // a crashed node silently discards everything
		}
		switch e.kind {
		case evMessage:
			n.proto.OnMessage(e.from, e.msg)
		case evBecomeHungry:
			if n.proto.State() == core.Thinking {
				n.proto.BecomeHungry()
			}
		case evExitCS:
			if n.proto.State() == core.Eating {
				n.proto.ExitCS()
			}
		case evCrash:
			// A node that crashed while eating keeps occupying its
			// critical section for safety accounting — its forks
			// are gone with it, exactly the paper's model.
			crashed = true
		case evStop:
			return
		}
	}
}

// CrashAfter fails node id after d of wall-clock time: it stops
// processing events, exactly the paper's silent crash model. Call before
// or during Run.
func (c *Cluster) CrashAfter(id core.NodeID, d time.Duration) {
	time.AfterFunc(d, func() {
		c.nodes[id].inbox.push(event{kind: evCrash})
	})
}

// liveEnv adapts a node to core.Env.
type liveEnv struct {
	node *liveNode
}

var _ core.Env = (*liveEnv)(nil)

func (e *liveEnv) ID() core.NodeID { return e.node.id }

func (e *liveEnv) Now() sim.Time {
	return sim.FromDuration(time.Since(e.node.cluster.start))
}

func (e *liveEnv) Neighbors() []core.NodeID {
	return topoAdapter{e.node.cluster.g}.Neighbors(e.node.id)
}

func (e *liveEnv) Send(to core.NodeID, msg core.Message) {
	q, ok := e.node.cluster.links[[2]core.NodeID{e.node.id, to}]
	if !ok {
		return
	}
	q.push(event{kind: evMessage, from: e.node.id, msg: msg})
}

func (e *liveEnv) Broadcast(msg core.Message) {
	for _, to := range e.Neighbors() {
		e.Send(to, msg)
	}
}

func (e *liveEnv) Moving() bool { return false }

func (e *liveEnv) SetState(s core.State) {
	old := e.node.last
	e.node.last = s
	e.node.cluster.onState(e.node, old, s)
}
