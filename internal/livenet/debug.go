package livenet

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer starts an opt-in HTTP debug endpoint serving the
// net/http/pprof profiles (goroutine, heap, CPU, execution trace) for a
// live cluster — the real-time runtime is the one place in the module
// where wall-clock profiling of a *running* system is meaningful, so the
// endpoint lives here rather than in the simulator.
//
// The handler set is mounted on a private mux (never http.DefaultServeMux,
// which package net/http/pprof pollutes on import) so importing livenet
// exposes nothing by itself. addr is a listen address such as
// "127.0.0.1:6060"; pass port 0 to let the kernel pick one. The returned
// server is already serving; the caller owns shutdown via Close. The
// actual bound address (useful with port 0) is returned alongside.
func StartDebugServer(addr string) (srv *http.Server, bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("livenet: debug server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return srv, ln.Addr().String(), nil
}
