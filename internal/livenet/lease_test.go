package livenet_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/lme2"
)

// startCluster builds and starts a cluster over g running Algorithm 2,
// stopping it (and checking safety) when the test ends.
func startCluster(t *testing.T, g *graph.Graph, cfg livenet.Config) *livenet.Cluster {
	t.Helper()
	protos := protocolsFor(g.N(), func() core.Protocol { return lme2.New() })
	c, err := livenet.New(cfg, g, protos)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Stop(); err != nil {
			t.Errorf("Stop (safety): %v", err)
		}
	})
	return c
}

// TestLeaseHappyPath acquires and releases through the public API and
// checks the accounting.
func TestLeaseHappyPath(t *testing.T) {
	c := startCluster(t, graph.Line(3), livenet.Config{Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	lease, err := c.Node(1).Acquire(ctx)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if lease.NodeID() != 1 {
		t.Errorf("lease.NodeID() = %v, want 1", lease.NodeID())
	}
	if lease.GrantedAt().IsZero() {
		t.Error("lease has no grant timestamp")
	}
	if err := lease.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := lease.Release(); !errors.Is(err, livenet.ErrLeaseReleased) {
		t.Errorf("second Release = %v, want ErrLeaseReleased", err)
	}
	if got := c.Acquisitions(); got != 1 {
		t.Errorf("Acquisitions() = %d, want 1", got)
	}
	if got := c.GrantStats().Count; got != 1 {
		t.Errorf("grant sketch count = %d, want 1", got)
	}
	if got := c.ExpiredLeases(); got != 0 {
		t.Errorf("ExpiredLeases() = %d, want 0", got)
	}
}

// TestLeaseContextCancel checks a cancelled Acquire returns the context
// error and leaves the node reusable — even when the cancellation races
// a grant (the raced lease must be auto-released, not leaked).
func TestLeaseContextCancel(t *testing.T) {
	c := startCluster(t, graph.Line(2), livenet.Config{Seed: 2})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Acquire must not block forever
	if _, err := c.Node(0).Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire(cancelled ctx) = %v, want context.Canceled", err)
	}

	// Race cancellations against grants many times; afterwards a clean
	// Acquire must still succeed (no leaked slot or stuck lease).
	for i := 0; i < 50; i++ {
		rctx, rcancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
		if lease, err := c.Node(0).Acquire(rctx); err == nil {
			lease.Release() //nolint:errcheck
		}
		rcancel()
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	lease, err := c.Node(0).Acquire(ctx2)
	if err != nil {
		t.Fatalf("Acquire after cancel storm: %v", err)
	}
	lease.Release() //nolint:errcheck
}

// TestLeaseExpiry holds a lease past its TTL: the node must be demoted
// out of eating (its neighbour can then eat), Release must report
// ErrLeaseExpired, and the expiry must be counted.
func TestLeaseExpiry(t *testing.T) {
	c := startCluster(t, graph.Line(2), livenet.Config{Seed: 3, LeaseTTL: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	lease, err := c.Node(0).Acquire(ctx)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Simulated client crash: never release, just outlive the TTL. The
	// neighbour's Acquire succeeding proves node 0 left the CS.
	nb, err := c.Node(1).Acquire(ctx)
	if err != nil {
		t.Fatalf("neighbour Acquire after expiry: %v", err)
	}
	nb.Release() //nolint:errcheck

	if err := lease.Release(); !errors.Is(err, livenet.ErrLeaseExpired) {
		t.Errorf("Release of expired lease = %v, want ErrLeaseExpired", err)
	}
	if got := c.ExpiredLeases(); got != 1 {
		t.Errorf("ExpiredLeases() = %d, want 1", got)
	}
}

// TestLeaseSerialization fires many concurrent Acquires at one node:
// grants must be mutually exclusive in time and each client served once.
func TestLeaseSerialization(t *testing.T) {
	c := startCluster(t, graph.Line(2), livenet.Config{Seed: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const clients = 8
	var mu sync.Mutex
	holders := 0
	maxHolders := 0
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lease, err := c.Node(0).Acquire(ctx)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			mu.Lock()
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			holders--
			mu.Unlock()
			if err := lease.Release(); err != nil {
				t.Errorf("Release: %v", err)
			}
		}()
	}
	wg.Wait()
	if maxHolders != 1 {
		t.Fatalf("max concurrent lease holders = %d, want 1", maxHolders)
	}
	if got := c.Acquisitions(); got != clients {
		t.Errorf("Acquisitions() = %d, want %d", got, clients)
	}
}

// TestLeaseAfterStop checks Acquire fails cleanly once the cluster is
// stopped.
func TestLeaseAfterStop(t *testing.T) {
	g := graph.Line(2)
	protos := protocolsFor(2, func() core.Protocol { return lme2.New() })
	c, err := livenet.New(livenet.Config{Seed: 5}, g, protos)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := c.Node(0).Acquire(context.Background()); !errors.Is(err, livenet.ErrStopped) {
		t.Fatalf("Acquire after Stop = %v, want ErrStopped", err)
	}
}
