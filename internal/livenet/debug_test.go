package livenet

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerServesPprof starts the endpoint on an ephemeral port and
// fetches the pprof index and one profile. Environments that forbid
// listening sockets skip rather than fail.
func TestDebugServerServesPprof(t *testing.T) {
	srv, addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index missing goroutine profile:\n%s", idx)
	}
	if prof := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(prof, "goroutine profile") {
		t.Errorf("goroutine profile unexpected:\n%.200s", prof)
	}

	// The root mux must expose nothing but the debug tree.
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("root path served status %d, want 404", resp.StatusCode)
	}
}
