package livenet_test

import (
	"testing"
	"time"

	"lme/internal/baseline"
	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/livenet"
	"lme/internal/lme1"
	"lme/internal/lme2"
)

// protocolsFor builds n instances with the given constructor.
func protocolsFor(n int, build func() core.Protocol) []core.Protocol {
	out := make([]core.Protocol, n)
	for i := range out {
		out[i] = build()
	}
	return out
}

func runCluster(t *testing.T, g *graph.Graph, protos []core.Protocol, d time.Duration) *livenet.Cluster {
	t.Helper()
	c, err := livenet.New(livenet.Config{Seed: 1}, g, protos)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(d); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLiveAlg2Line(t *testing.T) {
	g := graph.Line(6)
	c := runCluster(t, g, protocolsFor(6, func() core.Protocol { return lme2.New() }), 300*time.Millisecond)
	meals := c.Meals()
	for i := 0; i < 6; i++ {
		if meals[core.NodeID(i)] == 0 {
			t.Fatalf("node %d never ate: %v", i, meals)
		}
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestLiveAlg2Clique(t *testing.T) {
	g := graph.Clique(5)
	c := runCluster(t, g, protocolsFor(5, func() core.Protocol { return lme2.New() }), 400*time.Millisecond)
	for i := 0; i < 5; i++ {
		if c.Meals()[core.NodeID(i)] == 0 {
			t.Fatalf("node %d never ate under full contention", i)
		}
	}
}

func TestLiveAlg1Greedy(t *testing.T) {
	g := graph.Grid(2, 3)
	protos := protocolsFor(6, func() core.Protocol {
		return lme1.New(lme1.Config{Variant: lme1.VariantGreedy})
	})
	c := runCluster(t, g, protos, 400*time.Millisecond)
	for i := 0; i < 6; i++ {
		if c.Meals()[core.NodeID(i)] == 0 {
			t.Fatalf("node %d never ate", i)
		}
	}
}

func TestLiveChandyMisra(t *testing.T) {
	g := graph.Ring(7)
	protos := protocolsFor(7, func() core.Protocol { return baseline.NewChandyMisra() })
	c := runCluster(t, g, protos, 300*time.Millisecond)
	for i := 0; i < 7; i++ {
		if c.Meals()[core.NodeID(i)] == 0 {
			t.Fatalf("node %d never ate", i)
		}
	}
}

func TestLiveRejectsMismatchedProtocols(t *testing.T) {
	if _, err := livenet.New(livenet.Config{}, graph.Line(3), nil); err == nil {
		t.Fatal("mismatched protocol count accepted")
	}
}

// TestLiveCrashStaysLocal exercises CrashAfter: a crashed node's distant
// ring neighbours keep making progress and safety holds throughout.
func TestLiveCrashStaysLocal(t *testing.T) {
	g := graph.Ring(8)
	c, err := livenet.New(livenet.Config{Seed: 2}, g, protocolsFor(8, func() core.Protocol { return lme2.New() }))
	if err != nil {
		t.Fatal(err)
	}
	c.CrashAfter(3, 100*time.Millisecond)
	if err := c.Run(400 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	dist := g.Distances(3)
	for i := 0; i < 8; i++ {
		if i != 3 && dist[i] >= 3 && c.Meals()[core.NodeID(i)] == 0 {
			t.Fatalf("node %d at distance %d starved", i, dist[i])
		}
	}
}
