package livenet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
)

// The algorithms assume reliable FIFO links (§3.1); UDP gives neither.
// UDPTransport restores the contract with a per-directed-link reliability
// shim: every data frame carries a per-link sequence number, the receiver
// delivers strictly in sequence through a reorder buffer, duplicates are
// suppressed twice (by sequence number and by the sender's monotone
// message id), and the sender retransmits unacknowledged frames on a
// timer until the receiver's cumulative ACK covers them.
//
// Wire format (one frame per datagram, all integers big-endian):
//
//	byte    0     version (1)
//	byte    1     kind: 0 data, 1 ack
//	bytes  2..5   from  (uint32)
//	bytes  6..9   to    (uint32)
//	bytes 10..17  seq   (uint64)  per-directed-link, 1-based; for acks the
//	                              cumulative highest in-order seq received
//	bytes 18..25  mseq  (uint64)  sender's monotone message id (data only)
//	bytes 26..33  sentAt (int64)  cluster-relative µs (data only)
//	bytes 34..37  paylen (uint32) gob payload length (data only)
//	bytes 38..    payload         gob-encoded wirePayload
//
// The length prefix lets a receiver reject truncated datagrams rather
// than feeding a partial gob stream to the decoder. Protocol message
// types register themselves with encoding/gob from their own packages
// (lme1, lme2, baseline), so the transport never names them — the seam
// that keeps algorithm cores free of any runtime import.
const (
	udpVersion    = 1
	udpKindData   = 0
	udpKindAck    = 1
	udpHeaderLen  = 38
	udpAckLen     = 18 // version..seq, no data fields
	udpMaxPayload = 60 << 10
)

// wirePayload wraps the protocol message so gob encodes it as an
// interface value (restoring the concrete registered type on decode).
type wirePayload struct {
	M core.Message
}

// udpSendLink is the sender half of one directed link.
type udpSendLink struct {
	mu      sync.Mutex
	nextSeq uint64
	unacked []udpPending
	down    bool

	// Wire telemetry, cumulative, guarded by mu.
	sent        uint64 // frames accepted by Send
	retransmits uint64 // datagrams resent by the RTO loop
}

type udpPending struct {
	seq      uint64
	pkt      []byte
	lastSent time.Time
	resent   bool // ever retransmitted — its ACK is ambiguous for RTT (Karn's rule)
}

// udpRecvLink is the receiver half of one directed link.
type udpRecvLink struct {
	mu       sync.Mutex
	nextSeq  uint64            // next in-order seq expected (1-based)
	lastMseq uint64            // msg-id dedup guard: delivered ids are strictly increasing
	reorder  map[uint64][]byte // out-of-order frames keyed by seq
	down     bool

	// Wire telemetry, cumulative, guarded by mu.
	delivered uint64 // frames handed to the delivery callback
	dupDrops  uint64 // duplicates suppressed (stale seq or stale mseq)
	depthHW   uint64 // reorder-buffer high-water depth
	overflow  uint64 // datagrams discarded because the reorder buffer was full
}

// udpReorderCap bounds the reorder buffer per link; datagrams beyond the
// window are dropped and recovered by retransmission.
const udpReorderCap = 1024

// UDPTransport runs the cluster's links over loopback UDP sockets, one
// socket per node, with the reliability shim documented above. It is the
// deployment-shaped transport: same Transport contract as the channel
// implementation, exercised by the same conformance suite.
type UDPTransport struct {
	n     int
	nbrs  [][]core.NodeID // adjacency, copied — never aliases the cluster's view
	conns []*net.UDPConn
	addrs []*net.UDPAddr

	send map[linkKey]*udpSendLink
	recv map[linkKey]*udpRecvLink

	deliver DeliverFunc
	rto     time.Duration
	started bool
	closed  atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// rtt sketches the send→cumulative-ACK round trip (µs) across all
	// links; reader goroutines observe into it concurrently, hence the
	// dedicated lock.
	rttMu sync.Mutex
	rtt   *metrics.Sketch

	// mangle, when set (tests only), intercepts every outgoing data
	// datagram and returns the datagrams actually written — it simulates
	// loss (empty slice), duplication and corruption so the conformance
	// suite can exercise the shim without a lossy network.
	mangle func(pkt []byte) [][]byte
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport binds one loopback UDP socket per node of g and builds
// the per-directed-link shim state. rto is the retransmission timeout
// (default 20ms when ≤ 0).
func NewUDPTransport(g *graph.Graph, rto time.Duration) (*UDPTransport, error) {
	if rto <= 0 {
		rto = 20 * time.Millisecond
	}
	n := g.N()
	t := &UDPTransport{
		n:      n,
		nbrs:   make([][]core.NodeID, n),
		conns:  make([]*net.UDPConn, n),
		addrs:  make([]*net.UDPAddr, n),
		send:   make(map[linkKey]*udpSendLink, 2*len(g.Edges())),
		recv:   make(map[linkKey]*udpRecvLink, 2*len(g.Edges())),
		rto:    rto,
		stopCh: make(chan struct{}),
		rtt:    metrics.NewSketch(),
	}
	for i := 0; i < n; i++ {
		// Copy-on-retain: the transport keeps its own adjacency slices so
		// it never aliases a runtime-owned Neighbors() view.
		for _, nb := range g.Neighbors(i) {
			t.nbrs[i] = append(t.nbrs[i], core.NodeID(nb))
		}
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("livenet: udp bind node %d: %w", i, err)
		}
		t.conns[i] = conn
		t.addrs[i] = conn.LocalAddr().(*net.UDPAddr)
	}
	for _, e := range g.Edges() {
		a, b := core.NodeID(e[0]), core.NodeID(e[1])
		t.send[linkKey{a, b}] = &udpSendLink{nextSeq: 1}
		t.send[linkKey{b, a}] = &udpSendLink{nextSeq: 1}
		t.recv[linkKey{a, b}] = &udpRecvLink{nextSeq: 1, reorder: make(map[uint64][]byte)}
		t.recv[linkKey{b, a}] = &udpRecvLink{nextSeq: 1, reorder: make(map[uint64][]byte)}
	}
	return t, nil
}

func (t *UDPTransport) closeConns() {
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
}

// Start launches one reader goroutine per socket plus the retransmission
// loop.
func (t *UDPTransport) Start(deliver DeliverFunc) error {
	if t.started {
		return errAlreadyStarted
	}
	t.started = true
	t.deliver = deliver
	for i := range t.conns {
		t.wg.Add(1)
		go t.read(core.NodeID(i))
	}
	t.wg.Add(1)
	go t.retransmitLoop()
	return nil
}

// Send encodes the frame, registers it as unacknowledged and writes the
// datagram. Drops silently on unknown or downed links, oversized
// payloads, and after Close — the same semantics as the channel
// transport.
func (t *UDPTransport) Send(f Frame) {
	if t.closed.Load() {
		return
	}
	sl := t.send[linkKey{f.From, f.To}]
	if sl == nil {
		return
	}
	payload, err := encodePayload(f.Msg)
	if err != nil || len(payload) > udpMaxPayload {
		return
	}
	sl.mu.Lock()
	if sl.down {
		sl.mu.Unlock()
		return
	}
	seq := sl.nextSeq
	sl.nextSeq++
	sl.sent++
	pkt := encodeData(f, seq, payload)
	sl.unacked = append(sl.unacked, udpPending{seq: seq, pkt: pkt, lastSent: time.Now()})
	sl.mu.Unlock()
	t.write(f.From, f.To, pkt)
}

// write sends one datagram from's socket to to's address, applying the
// test mangle hook to data frames.
func (t *UDPTransport) write(from, to core.NodeID, pkt []byte) {
	pkts := [][]byte{pkt}
	if t.mangle != nil && pkt[1] == udpKindData {
		pkts = t.mangle(pkt)
	}
	for _, p := range pkts {
		t.conns[from].WriteToUDP(p, t.addrs[to]) //nolint:errcheck // lossy medium; the shim retransmits
	}
}

// retransmitLoop rescans the unacknowledged frames of every link each
// rto/2 and resends those older than rto — the ACK/retry half of the
// shim.
func (t *UDPTransport) retransmitLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.rto / 2)
	defer tick.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-tick.C:
		}
		now := time.Now()
		for key, sl := range t.send {
			sl.mu.Lock()
			var resend [][]byte
			for i := range sl.unacked {
				if !sl.down && now.Sub(sl.unacked[i].lastSent) >= t.rto {
					sl.unacked[i].lastSent = now
					sl.unacked[i].resent = true
					sl.retransmits++
					resend = append(resend, sl.unacked[i].pkt)
				}
			}
			sl.mu.Unlock()
			for _, pkt := range resend {
				if t.closed.Load() {
					return
				}
				t.write(key[0], key[1], pkt)
			}
		}
	}
}

// read is the per-node socket loop: it parses datagrams addressed to
// node id, feeds acks to the sender state and data frames to the
// receiver shim.
func (t *UDPTransport) read(id core.NodeID) {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.conns[id].ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if t.closed.Load() {
			return
		}
		if n < udpAckLen || buf[0] != udpVersion {
			continue
		}
		from := core.NodeID(binary.BigEndian.Uint32(buf[2:6]))
		to := core.NodeID(binary.BigEndian.Uint32(buf[6:10]))
		seq := binary.BigEndian.Uint64(buf[10:18])
		if to != id || from < 0 || int(from) >= t.n {
			continue
		}
		switch buf[1] {
		case udpKindAck:
			// The ack names the directed link id→from (we are the
			// sender): drop everything the cumulative seq covers.
			t.onAck(linkKey{id, from}, seq)
		case udpKindData:
			if n < udpHeaderLen {
				continue
			}
			paylen := int(binary.BigEndian.Uint32(buf[34:38]))
			if udpHeaderLen+paylen != n {
				continue // truncated or padded datagram
			}
			pkt := make([]byte, n)
			copy(pkt, buf[:n])
			t.onData(linkKey{from, to}, seq, pkt)
		}
	}
}

// onAck discards acknowledged frames from the link's retransmit queue
// and samples their round trips (first-transmission frames only — a
// retransmitted frame's ACK cannot be attributed to one send).
func (t *UDPTransport) onAck(key linkKey, cum uint64) {
	sl := t.send[key]
	if sl == nil {
		return
	}
	now := time.Now()
	var rtts []float64
	sl.mu.Lock()
	keep := sl.unacked[:0]
	for _, p := range sl.unacked {
		if p.seq > cum {
			keep = append(keep, p)
		} else if !p.resent {
			rtts = append(rtts, float64(now.Sub(p.lastSent))/float64(time.Microsecond))
		}
	}
	sl.unacked = keep
	sl.mu.Unlock()
	if len(rtts) > 0 {
		t.rttMu.Lock()
		for _, v := range rtts {
			t.rtt.ObserveFloat(v)
		}
		t.rttMu.Unlock()
	}
}

// onData runs the receiver shim for one data datagram: dedup, reorder,
// in-sequence delivery, cumulative ack.
func (t *UDPTransport) onData(key linkKey, seq uint64, pkt []byte) {
	rl := t.recv[key]
	if rl == nil {
		return
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if rl.down {
		return // no delivery after LinkDown; no ack either — the link is gone
	}
	switch {
	case seq < rl.nextSeq:
		// Duplicate of a delivered frame (lost ack or retransmit race):
		// suppress, but re-ack so the sender stops resending.
		rl.dupDrops++
		t.ack(key, rl.nextSeq-1)
		return
	case seq > rl.nextSeq:
		if _, dup := rl.reorder[seq]; dup {
			rl.dupDrops++
		} else if len(rl.reorder) < udpReorderCap {
			rl.reorder[seq] = pkt
			if d := uint64(len(rl.reorder)); d > rl.depthHW {
				rl.depthHW = d
			}
		} else {
			// Beyond the reorder window: the datagram is discarded and
			// recovered by the sender's retransmission once the buffer
			// drains. Counted — a hot reorder_overflow means the cap (or
			// the RTO) is mistuned for the link.
			rl.overflow++
		}
		t.ack(key, rl.nextSeq-1)
		return
	}
	// In sequence: deliver, then drain the reorder buffer.
	t.deliverLocked(rl, key, pkt)
	for {
		next, ok := rl.reorder[rl.nextSeq]
		if !ok {
			break
		}
		delete(rl.reorder, rl.nextSeq)
		t.deliverLocked(rl, key, next)
	}
	t.ack(key, rl.nextSeq-1)
}

// deliverLocked decodes and hands one in-sequence frame up, advancing
// the shim state. Caller holds rl.mu, which serialises deliveries per
// link — the FIFO contract.
func (t *UDPTransport) deliverLocked(rl *udpRecvLink, key linkKey, pkt []byte) {
	rl.nextSeq++
	mseq := binary.BigEndian.Uint64(pkt[18:26])
	if mseq <= rl.lastMseq {
		// Msg-id dedup: per link the sender's message ids are strictly
		// increasing, so a stale id here is a duplicate that slipped past
		// the sequence check (e.g. a corrupted seq field).
		rl.dupDrops++
		return
	}
	msg, err := decodePayload(pkt[udpHeaderLen:])
	if err != nil {
		return // undecodable payload; retransmission cannot help, drop
	}
	rl.lastMseq = mseq
	rl.delivered++
	t.deliver(Frame{
		From:   key[0],
		To:     key[1],
		Msg:    msg,
		Mseq:   mseq,
		SentAt: sim.Time(int64(binary.BigEndian.Uint64(pkt[26:34]))),
	})
}

// ack writes a cumulative acknowledgement for the directed link key
// (key[1] is the acking receiver, so the datagram leaves its socket).
func (t *UDPTransport) ack(key linkKey, cum uint64) {
	pkt := make([]byte, udpAckLen)
	pkt[0] = udpVersion
	pkt[1] = udpKindAck
	// The ack travels receiver→sender: from is the acking receiver
	// (key[1]), to is the original data sender (key[0]).
	binary.BigEndian.PutUint32(pkt[2:6], uint32(key[1]))
	binary.BigEndian.PutUint32(pkt[6:10], uint32(key[0]))
	binary.BigEndian.PutUint64(pkt[10:18], cum)
	t.conns[key[1]].WriteToUDP(pkt, t.addrs[key[0]]) //nolint:errcheck // lost acks are recovered by dedup
}

// LinkDown tears the link down in both directions: retransmission stops,
// queued and in-flight frames are dropped, later datagrams are ignored.
func (t *UDPTransport) LinkDown(a, b core.NodeID) {
	for _, key := range []linkKey{{a, b}, {b, a}} {
		if sl := t.send[key]; sl != nil {
			sl.mu.Lock()
			sl.down = true
			sl.unacked = nil
			sl.mu.Unlock()
		}
		if rl := t.recv[key]; rl != nil {
			rl.mu.Lock()
			rl.down = true
			rl.reorder = make(map[uint64][]byte)
			rl.mu.Unlock()
		}
	}
}

// Stats aggregates the shim's per-directed-link wire counters into the
// lme/telemetry/v1 transport record. Safe any time (including after
// Close): the link maps are immutable after construction and every
// counter sits under its link's lock.
func (t *UDPTransport) Stats() telemetry.TransportStats {
	ts := telemetry.TransportStats{
		Schema: telemetry.Schema,
		Kind:   "udp",
		Links:  len(t.send),
	}
	for _, sl := range t.send {
		sl.mu.Lock()
		ts.FramesSent += sl.sent
		ts.Retransmits += sl.retransmits
		sl.mu.Unlock()
	}
	for _, rl := range t.recv {
		rl.mu.Lock()
		ts.FramesDelivered += rl.delivered
		ts.DupDrops += rl.dupDrops
		ts.ReorderOverflow += rl.overflow
		if rl.depthHW > ts.ReorderDepthHW {
			ts.ReorderDepthHW = rl.depthHW
		}
		rl.mu.Unlock()
	}
	t.rttMu.Lock()
	ts.AckRTTUS = t.rtt.Snapshot()
	t.rttMu.Unlock()
	return ts
}

// Close shuts every socket and waits for the readers and the
// retransmission loop to exit; no delivery happens after it returns.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stopCh)
	t.closeConns()
	t.wg.Wait()
	return nil
}

// encodePayload gob-encodes a protocol message as an interface value.
func encodePayload(msg core.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wirePayload{M: msg}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodePayload restores the concrete registered message type.
func decodePayload(b []byte) (core.Message, error) {
	var p wirePayload
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, err
	}
	return p.M, nil
}

// encodeData builds one data datagram.
func encodeData(f Frame, seq uint64, payload []byte) []byte {
	pkt := make([]byte, udpHeaderLen+len(payload))
	pkt[0] = udpVersion
	pkt[1] = udpKindData
	binary.BigEndian.PutUint32(pkt[2:6], uint32(f.From))
	binary.BigEndian.PutUint32(pkt[6:10], uint32(f.To))
	binary.BigEndian.PutUint64(pkt[10:18], seq)
	binary.BigEndian.PutUint64(pkt[18:26], f.Mseq)
	binary.BigEndian.PutUint64(pkt[26:34], uint64(int64(f.SentAt)))
	binary.BigEndian.PutUint32(pkt[34:38], uint32(len(payload)))
	copy(pkt[udpHeaderLen:], payload)
	return pkt
}
