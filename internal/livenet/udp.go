package livenet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
	"lme/internal/wire"
)

// The algorithms assume reliable FIFO links (§3.1); UDP gives neither.
// UDPTransport restores the contract with a per-directed-link reliability
// shim: every data frame carries a per-link sequence number, the receiver
// delivers strictly in sequence through a reorder buffer, duplicates are
// suppressed twice (by sequence number and by the sender's monotone
// message id), and the sender retransmits unacknowledged frames on a
// timer until the receiver's cumulative ACK covers them.
//
// The wire format is the v2 coalesced framing of internal/wire: one
// datagram carries many frames for a directed link plus an optional
// piggybacked cumulative ACK for the reverse direction (see
// wire/dgram.go for the byte layout, DESIGN.md §15 for the rules).
// Outbound frames accumulate in a per-link datagram buffer that is
// flushed when it reaches the MTU budget or after a short linger
// (FlushDelay); ACKs are never sent eagerly — the receiver owes one
// after each data datagram, and the debt is settled by riding on the
// next data datagram to that peer or, failing that, by a standalone ACK
// datagram when the same linger expires. Payloads are encoded by the
// zero-allocation codecs each algorithm's wire.go registers with
// internal/wire; the gob path (UDPOptions.Gob) is retained as the
// differential-test oracle and benchmark baseline.
const (
	udpMaxPayload = 60 << 10

	// defaultUDPMTU is the datagram coalescing budget: a flush triggers
	// once the buffer reaches it. It is a soft budget sized to the
	// classic ethernet-safe payload; a single oversized frame still goes
	// out alone (loopback carries up to 64 KiB).
	defaultUDPMTU = 1400

	// defaultUDPFlushDelay is the coalescing linger: the longest a
	// buffered frame or owed ACK may wait for company. It is two orders
	// of magnitude below the RTO, so delayed ACKs never provoke spurious
	// retransmission.
	defaultUDPFlushDelay = 150 * time.Microsecond

	defaultUDPRTO = 20 * time.Millisecond
)

// UDPOptions configures the UDP transport; zero values select the
// defaults above.
type UDPOptions struct {
	// RTO is the retransmission timeout (default 20ms).
	RTO time.Duration
	// FlushDelay is the datagram coalescing linger (default 150µs).
	FlushDelay time.Duration
	// MTU is the datagram coalescing budget in bytes (default 1400).
	MTU int
	// Gob switches payload encoding to the encoding/gob oracle (one
	// encoder per message, as before the codec registry). Benchmarks and
	// differential tests only.
	Gob bool
}

// wirePayload wraps the protocol message so gob encodes it as an
// interface value (restoring the concrete registered type on decode).
type wirePayload struct {
	M core.Message
}

// udpSendLink is the sender half of one directed link.
type udpSendLink struct {
	mu      sync.Mutex
	nextSeq uint64
	unacked []udpPending
	down    bool

	// Datagram under construction. gen counts buffer hand-offs so a
	// lingering flush-timer entry can recognise that its buffer already
	// left (MTU overflow, LinkDown); scheduled records that a timer
	// entry is outstanding for the current gen.
	buf       []byte
	bufFrames uint64
	gen       uint64
	scheduled bool
	// ackOwed/ackSeq is the cumulative-ACK debt for the reverse link:
	// settled by piggybacking on the next flush, or by a standalone ACK
	// datagram when the linger fires with an empty buffer.
	ackOwed bool
	ackSeq  uint64

	// Wire telemetry, cumulative, guarded by mu.
	sent         uint64 // frames accepted by Send
	retransmits  uint64 // frames resent by the RTO loop
	datagrams    uint64 // datagrams written (data + standalone ACK)
	ackDgrams    uint64 // standalone ACK datagrams
	piggyAcks    uint64 // ACKs that rode on a data datagram
	framesWire   uint64 // frames written, retransmissions included
	wireBytes    uint64 // total datagram bytes written
	payloadBytes uint64 // codec payload bytes accepted by Send
}

type udpPending struct {
	seq      uint64
	frame    []byte // one encoded frame: header + payload
	lastSent time.Time
	resent   bool // ever retransmitted — its ACK is ambiguous for RTT (Karn's rule)
}

// udpRecvLink is the receiver half of one directed link.
type udpRecvLink struct {
	mu       sync.Mutex
	nextSeq  uint64                // next in-order seq expected (1-based)
	lastMseq uint64                // msg-id dedup guard: delivered ids are strictly increasing
	reorder  map[uint64]udpParked  // out-of-order frames keyed by seq
	down     bool

	// Wire telemetry, cumulative, guarded by mu.
	delivered uint64 // frames handed to the delivery callback
	dupDrops  uint64 // duplicates suppressed (stale seq or stale mseq)
	depthHW   uint64 // reorder-buffer high-water depth
	overflow  uint64 // frames discarded because the reorder buffer was full
}

// udpParked is one out-of-order frame waiting in the reorder buffer; the
// payload is copied out of the socket read buffer.
type udpParked struct {
	mseq    uint64
	sentAt  int64
	payload []byte
	gob     bool
}

// udpReorderCap bounds the reorder buffer per link; frames beyond the
// window are dropped and recovered by retransmission.
const udpReorderCap = 1024

// flushReq is one entry of the flush queue: link key, the buffer
// generation it was scheduled for, and the deadline. Deadlines are
// monotone (every entry is now+FlushDelay), so FIFO pop order is
// deadline order and one goroutine drains the queue with a single timer.
type flushReq struct {
	key linkKey
	gen uint64
	at  time.Time
}

// dgramPool recycles datagram build buffers across links and flushes.
var dgramPool = sync.Pool{
	New: func() any { return make([]byte, 0, 2048) },
}

func getDgramBuf() []byte  { return dgramPool.Get().([]byte)[:0] }
func putDgramBuf(b []byte) { dgramPool.Put(b[:0]) } //nolint:staticcheck // []byte in a Pool is fine here

// UDPTransport runs the cluster's links over loopback UDP sockets, one
// socket per node, with the reliability shim documented above. It is the
// deployment-shaped transport: same Transport contract as the channel
// implementation, exercised by the same conformance suite.
type UDPTransport struct {
	n     int
	nbrs  [][]core.NodeID // adjacency, copied — never aliases the cluster's view
	conns []*net.UDPConn
	addrs []*net.UDPAddr

	send map[linkKey]*udpSendLink
	recv map[linkKey]*udpRecvLink

	deliver    DeliverFunc
	rto        time.Duration
	flushDelay time.Duration
	mtu        int
	gob        bool
	started    bool
	closed     atomic.Bool
	stopCh     chan struct{}
	wg         sync.WaitGroup

	flushMu   sync.Mutex
	flushCond *sync.Cond
	flushQ    []flushReq
	flushStop bool

	// rtt sketches the send→cumulative-ACK round trip (µs) across all
	// links; reader goroutines observe into it concurrently, hence the
	// dedicated lock.
	rttMu sync.Mutex
	rtt   *metrics.Sketch

	// mangle, when set (tests only), intercepts every outgoing datagram
	// that carries frames and returns the datagrams actually written —
	// it simulates loss (empty slice), duplication and corruption so the
	// conformance suite can exercise the shim without a lossy network.
	// Standalone ACK datagrams bypass it.
	mangle func(pkt []byte) [][]byte
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport binds one loopback UDP socket per node of g with
// default options except the retransmission timeout (default 20ms when
// ≤ 0). Kept as the common constructor; NewUDPTransportOpts exposes the
// full option set.
func NewUDPTransport(g *graph.Graph, rto time.Duration) (*UDPTransport, error) {
	return NewUDPTransportOpts(g, UDPOptions{RTO: rto})
}

// NewUDPTransportOpts binds one loopback UDP socket per node of g and
// builds the per-directed-link shim state.
func NewUDPTransportOpts(g *graph.Graph, opts UDPOptions) (*UDPTransport, error) {
	if opts.RTO <= 0 {
		opts.RTO = defaultUDPRTO
	}
	if opts.FlushDelay <= 0 {
		opts.FlushDelay = defaultUDPFlushDelay
	}
	if opts.MTU <= 0 {
		opts.MTU = defaultUDPMTU
	}
	n := g.N()
	t := &UDPTransport{
		n:          n,
		nbrs:       make([][]core.NodeID, n),
		conns:      make([]*net.UDPConn, n),
		addrs:      make([]*net.UDPAddr, n),
		send:       make(map[linkKey]*udpSendLink, 2*len(g.Edges())),
		recv:       make(map[linkKey]*udpRecvLink, 2*len(g.Edges())),
		rto:        opts.RTO,
		flushDelay: opts.FlushDelay,
		mtu:        opts.MTU,
		gob:        opts.Gob,
		stopCh:     make(chan struct{}),
		rtt:        metrics.NewSketch(),
	}
	t.flushCond = sync.NewCond(&t.flushMu)
	for i := 0; i < n; i++ {
		// Copy-on-retain: the transport keeps its own adjacency slices so
		// it never aliases a runtime-owned Neighbors() view.
		for _, nb := range g.Neighbors(i) {
			t.nbrs[i] = append(t.nbrs[i], core.NodeID(nb))
		}
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.closeConns()
			return nil, fmt.Errorf("livenet: udp bind node %d: %w", i, err)
		}
		t.conns[i] = conn
		t.addrs[i] = conn.LocalAddr().(*net.UDPAddr)
	}
	for _, e := range g.Edges() {
		a, b := core.NodeID(e[0]), core.NodeID(e[1])
		t.send[linkKey{a, b}] = &udpSendLink{nextSeq: 1}
		t.send[linkKey{b, a}] = &udpSendLink{nextSeq: 1}
		t.recv[linkKey{a, b}] = &udpRecvLink{nextSeq: 1, reorder: make(map[uint64]udpParked)}
		t.recv[linkKey{b, a}] = &udpRecvLink{nextSeq: 1, reorder: make(map[uint64]udpParked)}
	}
	return t, nil
}

func (t *UDPTransport) closeConns() {
	for _, c := range t.conns {
		if c != nil {
			c.Close()
		}
	}
}

// Start launches one reader goroutine per socket, the flush-timer
// goroutine and the retransmission loop.
func (t *UDPTransport) Start(deliver DeliverFunc) error {
	if t.started {
		return errAlreadyStarted
	}
	t.started = true
	t.deliver = deliver
	for i := range t.conns {
		t.wg.Add(1)
		go t.read(core.NodeID(i))
	}
	t.wg.Add(2)
	go t.retransmitLoop()
	go t.flushLoop()
	return nil
}

// Send encodes the frame into the link's datagram buffer, registers it
// as unacknowledged, and either flushes (MTU budget reached) or arms the
// coalescing linger. Drops silently on unknown or downed links,
// oversized payloads, and after Close — the same semantics as the
// channel transport. A message type with no registered codec panics:
// the failure must be loud at the sender, not a mystery at the peer.
func (t *UDPTransport) Send(f Frame) {
	if t.closed.Load() {
		return
	}
	key := linkKey{f.From, f.To}
	sl := t.send[key]
	if sl == nil {
		return
	}
	sl.mu.Lock()
	if sl.down {
		sl.mu.Unlock()
		return
	}
	if sl.buf == nil {
		sl.buf = wire.AppendDgramHeader(getDgramBuf(), uint32(f.From), uint32(f.To))
		if t.gob {
			wire.SetDgramGob(sl.buf)
		}
	}
	// Encode the frame in place: header with a zero length, payload
	// appended by the codec, length backfilled. On any encode failure the
	// buffer rolls back to frameStart and the datagram is untouched.
	frameStart := len(sl.buf)
	seq := sl.nextSeq
	sl.buf = wire.AppendFrame(sl.buf, seq, f.Mseq, int64(f.SentAt), nil)
	payStart := len(sl.buf)
	if t.gob {
		var gbuf bytes.Buffer
		if err := gob.NewEncoder(&gbuf).Encode(wirePayload{M: f.Msg}); err != nil {
			sl.buf = sl.buf[:frameStart]
			t.rollbackEmpty(sl)
			sl.mu.Unlock()
			return
		}
		sl.buf = append(sl.buf, gbuf.Bytes()...)
	} else {
		var err error
		sl.buf, err = wire.AppendMessage(sl.buf, f.Msg)
		if err != nil {
			sl.buf = sl.buf[:frameStart]
			t.rollbackEmpty(sl)
			sl.mu.Unlock()
			panic(err) // *wire.UnregisteredError: fail loudly at Send
		}
	}
	paylen := len(sl.buf) - payStart
	if paylen > udpMaxPayload {
		sl.buf = sl.buf[:frameStart]
		t.rollbackEmpty(sl)
		sl.mu.Unlock()
		return
	}
	wire.BackfillFrameLen(sl.buf, frameStart, paylen)

	sl.nextSeq++
	sl.sent++
	sl.payloadBytes += uint64(paylen)
	sl.bufFrames++
	frame := make([]byte, len(sl.buf)-frameStart)
	copy(frame, sl.buf[frameStart:])
	sl.unacked = append(sl.unacked, udpPending{seq: seq, frame: frame, lastSent: time.Now()})

	if len(sl.buf) >= t.mtu {
		pkt := t.takeLocked(sl)
		sl.mu.Unlock()
		t.writeDgram(key, pkt)
		putDgramBuf(pkt)
		return
	}
	if !sl.scheduled {
		sl.scheduled = true
		gen := sl.gen
		sl.mu.Unlock()
		t.scheduleFlush(key, gen)
		return
	}
	sl.mu.Unlock()
}

// rollbackEmpty recycles the link's datagram buffer if a rolled-back
// frame left it headed but empty and no ACK debt justifies keeping it.
// Caller holds sl.mu.
func (t *UDPTransport) rollbackEmpty(sl *udpSendLink) {
	if sl.bufFrames == 0 && !sl.ackOwed {
		putDgramBuf(sl.buf)
		sl.buf = nil
	}
}

// takeLocked hands the link's datagram buffer to the caller for writing:
// it settles any owed ACK by piggybacking, advances the buffer
// generation (invalidating scheduled flushes) and books the wire
// telemetry. Caller holds sl.mu and must putDgramBuf after writing.
func (t *UDPTransport) takeLocked(sl *udpSendLink) []byte {
	pkt := sl.buf
	sl.buf = nil
	frames := sl.bufFrames
	sl.bufFrames = 0
	sl.gen++
	sl.scheduled = false
	if sl.ackOwed {
		wire.SetDgramAck(pkt, sl.ackSeq)
		sl.ackOwed = false
		sl.piggyAcks++
	}
	sl.datagrams++
	sl.framesWire += frames
	sl.wireBytes += uint64(len(pkt))
	return pkt
}

// scheduleFlush arms the coalescing linger for one link buffer
// generation.
func (t *UDPTransport) scheduleFlush(key linkKey, gen uint64) {
	req := flushReq{key: key, gen: gen, at: time.Now().Add(t.flushDelay)}
	t.flushMu.Lock()
	if t.flushStop {
		t.flushMu.Unlock()
		return
	}
	t.flushQ = append(t.flushQ, req)
	t.flushCond.Signal()
	t.flushMu.Unlock()
}

// flushLoop drains the flush queue: entries are appended with a uniform
// linger, so the head is always the earliest deadline — one goroutine
// and one timer serve every link.
func (t *UDPTransport) flushLoop() {
	defer t.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		t.flushMu.Lock()
		for len(t.flushQ) == 0 && !t.flushStop {
			t.flushCond.Wait()
		}
		if t.flushStop {
			t.flushMu.Unlock()
			return
		}
		req := t.flushQ[0]
		t.flushQ = t.flushQ[1:]
		t.flushMu.Unlock()

		if d := time.Until(req.at); d > 0 {
			timer.Reset(d)
			select {
			case <-t.stopCh:
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		t.flushLink(req.key, req.gen)
	}
}

// flushLink settles one linger expiry: if the scheduled buffer
// generation is still current it goes to the wire (data, with any owed
// ACK riding along), or — with no buffered frames — an owed ACK goes out
// as a standalone ACK datagram.
func (t *UDPTransport) flushLink(key linkKey, gen uint64) {
	sl := t.send[key]
	if sl == nil || t.closed.Load() {
		return
	}
	sl.mu.Lock()
	if sl.gen != gen || sl.down {
		sl.mu.Unlock()
		return
	}
	if sl.buf != nil && sl.bufFrames > 0 {
		pkt := t.takeLocked(sl)
		sl.mu.Unlock()
		t.writeDgram(key, pkt)
		putDgramBuf(pkt)
		return
	}
	if sl.ackOwed {
		// Reuse a headered-but-empty buffer (a rolled-back Send can leave
		// one) rather than leaking it.
		pkt := sl.buf
		sl.buf = nil
		if pkt == nil {
			pkt = wire.AppendDgramHeader(getDgramBuf(), uint32(key[0]), uint32(key[1]))
		}
		wire.SetDgramAck(pkt, sl.ackSeq)
		sl.ackOwed = false
		sl.gen++
		sl.scheduled = false
		sl.datagrams++
		sl.ackDgrams++
		sl.wireBytes += uint64(len(pkt))
		sl.mu.Unlock()
		t.conns[key[0]].WriteToUDP(pkt, t.addrs[key[1]]) //nolint:errcheck // lost acks are recovered by dedup
		putDgramBuf(pkt)
		return
	}
	if sl.buf != nil {
		// Headered but empty and no ACK debt left (a retransmit datagram
		// can settle the debt first): recycle instead of sending.
		putDgramBuf(sl.buf)
		sl.buf = nil
	}
	sl.gen++
	sl.scheduled = false
	sl.mu.Unlock()
}

// writeDgram sends one frame-carrying datagram from key[0]'s socket to
// key[1]'s address, applying the test mangle hook.
func (t *UDPTransport) writeDgram(key linkKey, pkt []byte) {
	pkts := [][]byte{pkt}
	if t.mangle != nil {
		pkts = t.mangle(pkt)
	}
	for _, p := range pkts {
		t.conns[key[0]].WriteToUDP(p, t.addrs[key[1]]) //nolint:errcheck // lossy medium; the shim retransmits
	}
}

// retransmitLoop rescans the unacknowledged frames of every link each
// rto/2 and repacks those older than rto into MTU-budgeted datagrams —
// the ACK/retry half of the shim. Retransmission coalesces exactly like
// first transmission: a loss burst resends as a few dense datagrams, not
// a frame-per-datagram storm.
func (t *UDPTransport) retransmitLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.rto / 2)
	defer tick.Stop()
	for {
		select {
		case <-t.stopCh:
			return
		case <-tick.C:
		}
		now := time.Now()
		for key, sl := range t.send {
			var resend [][]byte
			sl.mu.Lock()
			var pkt []byte
			var frames uint64
			for i := range sl.unacked {
				if sl.down || now.Sub(sl.unacked[i].lastSent) < t.rto {
					continue
				}
				sl.unacked[i].lastSent = now
				sl.unacked[i].resent = true
				sl.retransmits++
				if pkt == nil {
					pkt = wire.AppendDgramHeader(getDgramBuf(), uint32(key[0]), uint32(key[1]))
					if t.gob {
						wire.SetDgramGob(pkt)
					}
					if sl.ackOwed {
						wire.SetDgramAck(pkt, sl.ackSeq)
						sl.ackOwed = false
						sl.piggyAcks++
					}
				}
				pkt = append(pkt, sl.unacked[i].frame...)
				frames++
				if len(pkt) >= t.mtu {
					sl.datagrams++
					sl.framesWire += frames
					sl.wireBytes += uint64(len(pkt))
					resend = append(resend, pkt)
					pkt, frames = nil, 0
				}
			}
			if pkt != nil {
				sl.datagrams++
				sl.framesWire += frames
				sl.wireBytes += uint64(len(pkt))
				resend = append(resend, pkt)
			}
			sl.mu.Unlock()
			for _, p := range resend {
				if t.closed.Load() {
					return
				}
				t.writeDgram(key, p)
				putDgramBuf(p)
			}
		}
	}
}

// read is the per-node socket loop: it parses datagrams addressed to
// node id, feeds piggybacked ACKs to the sender state and data frames to
// the receiver shim.
func (t *UDPTransport) read(id core.NodeID) {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.conns[id].ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if t.closed.Load() {
			return
		}
		hdr, body, err := wire.ParseDgram(buf[:n])
		if err != nil {
			continue
		}
		from, to := core.NodeID(hdr.From), core.NodeID(hdr.To)
		if to != id || from < 0 || int(from) >= t.n {
			continue
		}
		if hdr.HasAck() {
			// The ack names the directed link id→from (we are the
			// sender): drop everything the cumulative seq covers.
			t.onAck(linkKey{id, from}, hdr.Ack)
		}
		if len(body) > 0 {
			t.onFrames(linkKey{from, to}, body, hdr.Gob())
		}
	}
}

// onAck discards acknowledged frames from the link's retransmit queue
// and samples their round trips (first-transmission frames only — a
// retransmitted frame's ACK cannot be attributed to one send).
func (t *UDPTransport) onAck(key linkKey, cum uint64) {
	sl := t.send[key]
	if sl == nil {
		return
	}
	now := time.Now()
	var rtts []float64
	sl.mu.Lock()
	keep := sl.unacked[:0]
	for _, p := range sl.unacked {
		if p.seq > cum {
			keep = append(keep, p)
		} else if !p.resent {
			rtts = append(rtts, float64(now.Sub(p.lastSent))/float64(time.Microsecond))
		}
	}
	sl.unacked = keep
	sl.mu.Unlock()
	if len(rtts) > 0 {
		t.rttMu.Lock()
		for _, v := range rtts {
			t.rtt.ObserveFloat(v)
		}
		t.rttMu.Unlock()
	}
}

// onFrames runs the receiver shim over every frame of one datagram —
// dedup, reorder, in-sequence delivery — then records the cumulative-ACK
// debt on the reverse link (absorbed into pending outbound data, or sent
// standalone when the linger fires).
func (t *UDPTransport) onFrames(key linkKey, body []byte, gobbed bool) {
	rl := t.recv[key]
	if rl == nil {
		return
	}
	rl.mu.Lock()
	if rl.down {
		rl.mu.Unlock()
		return // no delivery after LinkDown; no ack either — the link is gone
	}
	for len(body) > 0 {
		f, rest, err := wire.NextFrame(body)
		if err != nil {
			break // truncated datagram tail; retransmission recovers
		}
		body = rest
		t.frameLocked(rl, key, f, gobbed)
	}
	cum := rl.nextSeq - 1
	rl.mu.Unlock()
	t.oweAck(key, cum)
}

// frameLocked applies the shim to one frame. Caller holds rl.mu.
func (t *UDPTransport) frameLocked(rl *udpRecvLink, key linkKey, f wire.FrameView, gobbed bool) {
	switch {
	case f.Seq < rl.nextSeq:
		// Duplicate of a delivered frame (lost ack or retransmit race).
		rl.dupDrops++
		return
	case f.Seq > rl.nextSeq:
		if _, dup := rl.reorder[f.Seq]; dup {
			rl.dupDrops++
		} else if len(rl.reorder) < udpReorderCap {
			payload := make([]byte, len(f.Payload))
			copy(payload, f.Payload)
			rl.reorder[f.Seq] = udpParked{mseq: f.Mseq, sentAt: f.SentAt, payload: payload, gob: gobbed}
			if d := uint64(len(rl.reorder)); d > rl.depthHW {
				rl.depthHW = d
			}
		} else {
			// Beyond the reorder window: the frame is discarded and
			// recovered by the sender's retransmission once the buffer
			// drains. Counted — a hot reorder_overflow means the cap (or
			// the RTO) is mistuned for the link.
			rl.overflow++
		}
		return
	}
	// In sequence: deliver, then drain the reorder buffer.
	t.deliverLocked(rl, key, f.Mseq, f.SentAt, f.Payload, gobbed)
	for {
		next, ok := rl.reorder[rl.nextSeq]
		if !ok {
			break
		}
		delete(rl.reorder, rl.nextSeq)
		t.deliverLocked(rl, key, next.mseq, next.sentAt, next.payload, next.gob)
	}
}

// deliverLocked decodes and hands one in-sequence frame up, advancing
// the shim state. Caller holds rl.mu, which serialises deliveries per
// link — the FIFO contract.
func (t *UDPTransport) deliverLocked(rl *udpRecvLink, key linkKey, mseq uint64, sentAt int64, payload []byte, gobbed bool) {
	rl.nextSeq++
	if mseq <= rl.lastMseq {
		// Msg-id dedup: per link the sender's message ids are strictly
		// increasing, so a stale id here is a duplicate that slipped past
		// the sequence check (e.g. a corrupted seq field).
		rl.dupDrops++
		return
	}
	var msg core.Message
	var err error
	if gobbed {
		msg, err = decodePayload(payload)
	} else {
		msg, err = wire.DecodeMessage(payload)
	}
	if err != nil {
		return // undecodable payload; retransmission cannot help, drop
	}
	rl.lastMseq = mseq
	rl.delivered++
	t.deliver(Frame{
		From:   key[0],
		To:     key[1],
		Msg:    msg,
		Mseq:   mseq,
		SentAt: sim.Time(sentAt),
	})
}

// oweAck records a cumulative-ACK debt for the data link key (the ack
// travels key[1]→key[0], so it rides the reverse send link). The debt is
// settled by the next data flush in that direction or, with nothing to
// ride on, by a standalone ACK datagram after the linger.
func (t *UDPTransport) oweAck(key linkKey, cum uint64) {
	rev := linkKey{key[1], key[0]}
	sl := t.send[rev]
	if sl == nil {
		return
	}
	sl.mu.Lock()
	if sl.down {
		sl.mu.Unlock()
		return
	}
	sl.ackOwed = true
	sl.ackSeq = cum
	if !sl.scheduled {
		sl.scheduled = true
		gen := sl.gen
		sl.mu.Unlock()
		t.scheduleFlush(rev, gen)
		return
	}
	sl.mu.Unlock()
}

// LinkDown tears the link down in both directions: retransmission stops,
// queued, buffered and in-flight frames are dropped, later datagrams are
// ignored.
func (t *UDPTransport) LinkDown(a, b core.NodeID) {
	for _, key := range []linkKey{{a, b}, {b, a}} {
		if sl := t.send[key]; sl != nil {
			sl.mu.Lock()
			sl.down = true
			sl.unacked = nil
			if sl.buf != nil {
				putDgramBuf(sl.buf)
				sl.buf = nil
			}
			sl.bufFrames = 0
			sl.ackOwed = false
			sl.gen++
			sl.scheduled = false
			sl.mu.Unlock()
		}
		if rl := t.recv[key]; rl != nil {
			rl.mu.Lock()
			rl.down = true
			rl.reorder = make(map[uint64]udpParked)
			rl.mu.Unlock()
		}
	}
}

// Stats aggregates the shim's per-directed-link wire counters into the
// lme/telemetry/v1 transport record. Safe any time (including after
// Close): the link maps are immutable after construction and every
// counter sits under its link's lock.
func (t *UDPTransport) Stats() telemetry.TransportStats {
	ts := telemetry.TransportStats{
		Schema: telemetry.Schema,
		Kind:   "udp",
		Links:  len(t.send),
	}
	for _, sl := range t.send {
		sl.mu.Lock()
		ts.FramesSent += sl.sent
		ts.Retransmits += sl.retransmits
		ts.DatagramsSent += sl.datagrams
		ts.AckDatagrams += sl.ackDgrams
		ts.AcksPiggybacked += sl.piggyAcks
		ts.FramesWire += sl.framesWire
		ts.WireBytes += sl.wireBytes
		ts.PayloadBytes += sl.payloadBytes
		sl.mu.Unlock()
	}
	for _, rl := range t.recv {
		rl.mu.Lock()
		ts.FramesDelivered += rl.delivered
		ts.DupDrops += rl.dupDrops
		ts.ReorderOverflow += rl.overflow
		if rl.depthHW > ts.ReorderDepthHW {
			ts.ReorderDepthHW = rl.depthHW
		}
		rl.mu.Unlock()
	}
	if data := ts.DatagramsSent - ts.AckDatagrams; data > 0 {
		ts.FramesPerDatagram = float64(ts.FramesWire) / float64(data)
	}
	if ts.FramesSent > 0 {
		ts.PayloadBytesPerFrame = float64(ts.PayloadBytes) / float64(ts.FramesSent)
	}
	t.rttMu.Lock()
	ts.AckRTTUS = t.rtt.Snapshot()
	t.rttMu.Unlock()
	return ts
}

// Close shuts every socket and waits for the readers, the flush loop and
// the retransmission loop to exit; no delivery happens after it returns.
func (t *UDPTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.stopCh)
	t.flushMu.Lock()
	t.flushStop = true
	t.flushCond.Broadcast()
	t.flushMu.Unlock()
	t.closeConns()
	t.wg.Wait()
	return nil
}

// decodePayload restores the concrete gob-registered message type (the
// oracle path; hot-path decoding goes through wire.DecodeMessage).
func decodePayload(b []byte) (core.Message, error) {
	var p wirePayload
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, err
	}
	return p.M, nil
}
