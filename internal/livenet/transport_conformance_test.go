package livenet

// Transport conformance suite: every Transport implementation must pass
// these against the documented contract (FIFO per directed link,
// exactly-once delivery, no delivery on downed links, quiescence after
// Close). Run against both the in-proc channel transport and the UDP
// loopback transport.

import (
	"encoding/gob"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/wire"
)

// confMsg is the test payload; registered with both the codec registry
// (test-range type ID) and gob so every UDP wire mode can move it.
type confMsg struct {
	N int
}

func init() {
	gob.Register(confMsg{})
	wire.Register(wire.Codec{
		ID: 0x7F01, Name: "livenet_test.conf", Proto: confMsg{},
		Append: func(b []byte, m core.Message) []byte {
			return wire.AppendVarint(b, int64(m.(confMsg).N))
		},
		Decode: func(b []byte) (core.Message, error) {
			r := wire.NewReader(b)
			v := confMsg{N: int(r.Varint())}
			return v, r.Done()
		},
		Sample: func(rng *rand.Rand) core.Message {
			return confMsg{N: rng.IntN(1 << 20)}
		},
	})
}

// transportMaker builds a fresh transport over g for each subtest.
type transportMaker func(t *testing.T, g *graph.Graph) Transport

// makers returns the conformance matrix: the channel transport, the UDP
// transport on the codec fast path, and the UDP transport on the gob
// oracle path — the shim semantics must be payload-encoding-agnostic.
func makers() map[string]transportMaker {
	return map[string]transportMaker{
		"channel": func(t *testing.T, g *graph.Graph) Transport {
			return NewChannelTransport(g, 200*time.Microsecond, 42)
		},
		"udp": func(t *testing.T, g *graph.Graph) Transport {
			tr, err := NewUDPTransport(g, 0)
			if err != nil {
				t.Fatalf("NewUDPTransport: %v", err)
			}
			return tr
		},
		"udp-gob": func(t *testing.T, g *graph.Graph) Transport {
			tr, err := NewUDPTransportOpts(g, UDPOptions{Gob: true})
			if err != nil {
				t.Fatalf("NewUDPTransportOpts: %v", err)
			}
			return tr
		},
	}
}

// collector accumulates delivered frames, keyed by directed link.
type collector struct {
	mu     sync.Mutex
	byLink map[linkKey][]Frame
	total  int
}

func newCollector() *collector {
	return &collector{byLink: make(map[linkKey][]Frame)}
}

func (c *collector) deliver(f Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := linkKey{f.From, f.To}
	c.byLink[k] = append(c.byLink[k], f)
	c.total++
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

func (c *collector) link(from, to core.NodeID) []Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Frame(nil), c.byLink[linkKey{from, to}]...)
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(500 * time.Microsecond)
	}
	return cond()
}

func TestTransportConformance(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			t.Run("FIFOPerLink", func(t *testing.T) { testFIFOPerLink(t, mk) })
			t.Run("ExactlyOnce", func(t *testing.T) { testExactlyOnce(t, mk) })
			t.Run("UnknownLinkDropped", func(t *testing.T) { testUnknownLink(t, mk) })
			t.Run("NoDeliveryAfterLinkDown", func(t *testing.T) { testLinkDown(t, mk) })
			t.Run("QuiescentAfterClose", func(t *testing.T) { testClose(t, mk) })
		})
	}
}

// testFIFOPerLink floods several directed links concurrently and checks
// each link's frames arrive in send order with no loss.
func testFIFOPerLink(t *testing.T, mk transportMaker) {
	const perLink = 200
	g := graph.Clique(4)
	tr := mk(t, g)
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	links := [][2]core.NodeID{{0, 1}, {1, 0}, {2, 3}, {0, 3}}
	var wg sync.WaitGroup
	for i, l := range links {
		wg.Add(1)
		go func(base uint64, from, to core.NodeID) {
			defer wg.Done()
			for n := 0; n < perLink; n++ {
				tr.Send(Frame{From: from, To: to, Msg: confMsg{N: n}, Mseq: base + uint64(n)})
			}
		}(uint64(i)*10_000+1, l[0], l[1])
	}
	wg.Wait()

	want := perLink * len(links)
	if !waitFor(t, 5*time.Second, func() bool { return col.count() >= want }) {
		t.Fatalf("delivered %d of %d frames", col.count(), want)
	}
	for _, l := range links {
		frames := col.link(l[0], l[1])
		if len(frames) != perLink {
			t.Fatalf("link %v→%v: %d frames, want %d", l[0], l[1], len(frames), perLink)
		}
		for n, f := range frames {
			m, ok := f.Msg.(confMsg)
			if !ok {
				t.Fatalf("link %v→%v frame %d: payload %T, want confMsg", l[0], l[1], n, f.Msg)
			}
			if m.N != n {
				t.Fatalf("link %v→%v: frame %d carries N=%d — FIFO violated", l[0], l[1], n, m.N)
			}
		}
	}
}

// testExactlyOnce checks no frame is delivered twice (the UDP transport
// must dedup its own retransmissions).
func testExactlyOnce(t *testing.T, mk transportMaker) {
	const msgs = 500
	g := graph.Line(2)
	tr := mk(t, g)

	// Force duplication on the wire where the transport allows it: the
	// UDP test hook re-sends every data packet twice.
	if udp, ok := tr.(*UDPTransport); ok {
		udp.mangle = func(pkt []byte) [][]byte { return [][]byte{pkt, pkt} }
	}

	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	for n := 0; n < msgs; n++ {
		tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
	}
	if !waitFor(t, 5*time.Second, func() bool { return col.count() >= msgs }) {
		t.Fatalf("delivered %d of %d frames", col.count(), msgs)
	}
	// Give duplicates a moment to surface, then count.
	time.Sleep(20 * time.Millisecond)
	frames := col.link(0, 1)
	seen := make(map[uint64]int, len(frames))
	for _, f := range frames {
		seen[f.Mseq]++
	}
	for mseq, c := range seen {
		if c != 1 {
			t.Fatalf("mseq %d delivered %d times", mseq, c)
		}
	}
	if len(seen) != msgs {
		t.Fatalf("distinct messages delivered = %d, want %d", len(seen), msgs)
	}
}

// testUnknownLink sends on a pair that is not an edge and expects the
// frame to vanish rather than arrive or panic.
func testUnknownLink(t *testing.T, mk transportMaker) {
	g := graph.Line(3) // 0-1-2; no 0-2 edge
	tr := mk(t, g)
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	tr.Send(Frame{From: 0, To: 2, Msg: confMsg{N: 1}, Mseq: 1})
	tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: 2}, Mseq: 2})
	if !waitFor(t, 5*time.Second, func() bool { return col.count() >= 1 }) {
		t.Fatal("the legal frame never arrived")
	}
	time.Sleep(10 * time.Millisecond)
	if got := col.link(0, 2); len(got) != 0 {
		t.Fatalf("frame delivered on non-edge 0→2: %v", got)
	}
}

// testLinkDown drops a link and checks frames sent afterwards never
// arrive, while other links keep working.
func testLinkDown(t *testing.T, mk transportMaker) {
	g := graph.Clique(3)
	tr := mk(t, g)
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	tr.LinkDown(0, 1)
	for n := 0; n < 50; n++ {
		tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
		tr.Send(Frame{From: 1, To: 0, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
	}
	tr.Send(Frame{From: 0, To: 2, Msg: confMsg{N: 99}, Mseq: 1000})
	if !waitFor(t, 5*time.Second, func() bool { return len(col.link(0, 2)) >= 1 }) {
		t.Fatal("surviving link 0→2 stopped delivering")
	}
	time.Sleep(20 * time.Millisecond)
	if got := col.link(0, 1); len(got) != 0 {
		t.Fatalf("%d frames delivered on downed link 0→1", len(got))
	}
	if got := col.link(1, 0); len(got) != 0 {
		t.Fatalf("%d frames delivered on downed link 1→0", len(got))
	}
}

// testClose checks Close waits for quiescence: no deliver callback runs
// after Close returns.
func testClose(t *testing.T, mk transportMaker) {
	g := graph.Line(2)
	tr := mk(t, g)

	var mu sync.Mutex
	closed := false
	late := 0
	deliver := func(Frame) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			late++
		}
	}
	if err := tr.Start(deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for n := 0; n < 200; n++ {
		tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mu.Lock()
	closed = true
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if late != 0 {
		t.Fatalf("%d deliveries after Close returned", late)
	}
	// Sending after Close must not panic.
	tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: -1}, Mseq: 9999})
}

// TestUDPReorderRecovery drops every third data datagram on first
// transmission (keyed by its first frame's seq — stable across
// retransmission repacking); the retransmit/reorder machinery must still
// deliver all frames in FIFO order.
func TestUDPReorderRecovery(t *testing.T) {
	g := graph.Line(2)
	tr, err := NewUDPTransport(g, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("NewUDPTransport: %v", err)
	}
	var mu sync.Mutex
	dropped := make(map[uint64]bool)
	tr.mangle = func(pkt []byte) [][]byte {
		_, body, err := wire.ParseDgram(pkt)
		if err != nil {
			t.Errorf("mangle: unparseable datagram: %v", err)
			return [][]byte{pkt}
		}
		f, _, err := wire.NextFrame(body)
		if err != nil {
			t.Errorf("mangle: unparseable first frame: %v", err)
			return [][]byte{pkt}
		}
		mu.Lock()
		defer mu.Unlock()
		if !dropped[f.Seq] && len(dropped)%3 == 0 {
			dropped[f.Seq] = true
			return nil // lose this transmission; retransmit must recover
		}
		dropped[f.Seq] = true
		return [][]byte{pkt}
	}

	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	const msgs = 120
	for n := 0; n < msgs; n++ {
		tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
	}
	if !waitFor(t, 10*time.Second, func() bool { return col.count() >= msgs }) {
		t.Fatalf("delivered %d of %d frames despite retransmits", col.count(), msgs)
	}
	for n, f := range col.link(0, 1) {
		if m := f.Msg.(confMsg); m.N != n {
			t.Fatalf("frame %d carries N=%d — FIFO violated across drops", n, m.N)
		}
	}
}

// stubProtocol is an inert automaton for runtime-plumbing tests.
type stubProtocol struct{ env core.Env }

func (p *stubProtocol) Init(env core.Env)                   { p.env = env; env.SetState(core.Thinking) }
func (p *stubProtocol) OnMessage(core.NodeID, core.Message) {}
func (p *stubProtocol) OnLinkUp(core.NodeID, bool)          {}
func (p *stubProtocol) OnLinkDown(core.NodeID)              {}
func (p *stubProtocol) BecomeHungry()                       { p.env.SetState(core.Eating) }
func (p *stubProtocol) ExitCS()                             { p.env.SetState(core.Thinking) }
func (p *stubProtocol) State() core.State                   { return core.Thinking }

// TestUDPNeighborsNotAliased is the vet for the Env.Neighbors read-only
// contract at the transport seam: the UDP transport must snapshot its
// adjacency at construction, never retaining slices that back the
// runtime's Env.Neighbors views.
func TestUDPNeighborsNotAliased(t *testing.T) {
	g := graph.Line(3)
	tr, err := NewUDPTransport(g, 0)
	if err != nil {
		t.Fatalf("NewUDPTransport: %v", err)
	}
	protos := make([]core.Protocol, g.N())
	for i := range protos {
		protos[i] = &stubProtocol{}
	}
	c, err := New(Config{Transport: tr}, g, protos)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Stop() //nolint:errcheck

	// Compare backing arrays of the runtime's read-only views with what
	// the transport retained: any shared pointer means the transport
	// could corrupt (or observe mutations of) the runtime's state.
	for id := range c.nbrs {
		view := c.nbrs[id]
		if len(view) == 0 {
			continue
		}
		for tid, kept := range tr.nbrs {
			if len(kept) > 0 && &kept[0] == &view[0] {
				t.Fatalf("UDP transport nbrs[%d] aliases the runtime's Neighbors(%d) view", tid, id)
			}
		}
	}
	// And the snapshot must really be a copy of graph state: mutating it
	// must leave the runtime's views intact.
	want := append([]core.NodeID(nil), c.nbrs[1]...)
	for _, kept := range tr.nbrs {
		for i := range kept {
			kept[i] = -1
		}
	}
	for i, id := range c.nbrs[1] {
		if id != want[i] {
			t.Fatal("mutating the transport's adjacency snapshot changed the runtime's view")
		}
	}
}
