package livenet

// Tests for the fast wire path (PR 10): datagram coalescing, delayed and
// piggybacked cumulative ACKs, and the loud-failure contract for message
// types with no registered codec.

import (
	"sync"
	"testing"
	"time"

	"lme/internal/graph"
	"lme/internal/wire"
)

// dgramCarriesSeq reports whether any frame of the datagram carries the
// given sequence number.
func dgramCarriesSeq(t *testing.T, pkt []byte, seq uint64) bool {
	t.Helper()
	_, body, err := wire.ParseDgram(pkt)
	if err != nil {
		t.Errorf("unparseable datagram: %v", err)
		return false
	}
	for len(body) > 0 {
		f, rest, err := wire.NextFrame(body)
		if err != nil {
			t.Errorf("unparseable frame: %v", err)
			return false
		}
		if f.Seq == seq {
			return true
		}
		body = rest
	}
	return false
}

// TestUDPAckCoalescing pins the per-ACK-datagram waste fix: a one-way
// flood of N frames must produce far fewer than N standalone ACK
// datagrams (the receiver owes one cumulative ACK per data datagram and
// the linger merges even those), and the data direction must coalesce
// frames into shared datagrams — all without breaking FIFO or
// exactly-once delivery.
func TestUDPAckCoalescing(t *testing.T) {
	const msgs = 400
	g := graph.Line(2)
	tr, err := NewUDPTransport(g, 0)
	if err != nil {
		t.Fatalf("NewUDPTransport: %v", err)
	}
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	for n := 0; n < msgs; n++ {
		tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
	}
	if !waitFor(t, 5*time.Second, func() bool { return col.count() >= msgs }) {
		t.Fatalf("delivered %d of %d frames", col.count(), msgs)
	}
	// Wait until the cumulative ACK covered everything, so the ACK
	// counters are settled.
	sl := tr.send[linkKey{0, 1}]
	if !waitFor(t, 5*time.Second, func() bool {
		sl.mu.Lock()
		n := len(sl.unacked)
		sl.mu.Unlock()
		return n == 0
	}) {
		t.Fatalf("frames still unacked after the flood (stats %+v)", tr.Stats())
	}

	frames := col.link(0, 1)
	seen := make(map[uint64]int, len(frames))
	for n, f := range frames {
		if m := f.Msg.(confMsg); m.N != n {
			t.Fatalf("frame %d carries N=%d — FIFO violated under coalescing", n, m.N)
		}
		seen[f.Mseq]++
	}
	for mseq, c := range seen {
		if c != 1 {
			t.Fatalf("mseq %d delivered %d times", mseq, c)
		}
	}

	st := tr.Stats()
	if st.AckDatagrams == 0 {
		t.Errorf("ack_datagrams = 0; the one-way flood owes standalone ACKs")
	}
	if st.AckDatagrams >= msgs/4 {
		t.Errorf("ack_datagrams = %d for %d frames; delayed ACKs are not coalescing (stats %+v)",
			st.AckDatagrams, msgs, st)
	}
	if st.FramesPerDatagram <= 1 {
		t.Errorf("frames_per_datagram = %v, want > 1 under a flood (stats %+v)",
			st.FramesPerDatagram, st)
	}
	if st.WireBytes == 0 || st.PayloadBytes == 0 || st.DatagramsSent == 0 {
		t.Errorf("wire telemetry not populated: %+v", st)
	}
}

// TestUDPAckPiggyback checks that ACK debt owed while data is flowing the
// other way rides on those data datagrams instead of costing standalone
// ACKs.
func TestUDPAckPiggyback(t *testing.T) {
	const msgs = 300
	g := graph.Line(2)
	tr, err := NewUDPTransport(g, 0)
	if err != nil {
		t.Fatalf("NewUDPTransport: %v", err)
	}
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	// Paced bidirectional traffic: the pacing spreads the flood across
	// many linger windows so ACK debt keeps meeting buffered reverse data.
	var wg sync.WaitGroup
	for _, dir := range []linkKey{{0, 1}, {1, 0}} {
		wg.Add(1)
		go func(dir linkKey) {
			defer wg.Done()
			for n := 0; n < msgs; n++ {
				tr.Send(Frame{From: dir[0], To: dir[1], Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
				if n%10 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}(dir)
	}
	wg.Wait()
	if !waitFor(t, 5*time.Second, func() bool { return col.count() >= 2*msgs }) {
		t.Fatalf("delivered %d of %d frames", col.count(), 2*msgs)
	}
	st := tr.Stats()
	if st.AcksPiggybacked == 0 {
		t.Errorf("acks_piggybacked = 0 under bidirectional traffic (stats %+v)", st)
	}
}

// unregMsg has no wire codec (and no gob registration): Send must fail
// loudly at the sender, never surface as a silent drop or a peer-side
// decode error.
type unregMsg struct{ X int }

func TestUDPSendUnregisteredPanics(t *testing.T) {
	g := graph.Line(2)
	tr, err := NewUDPTransport(g, 0)
	if err != nil {
		t.Fatalf("NewUDPTransport: %v", err)
	}
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Send of an unregistered message type did not panic")
		}
		if _, ok := r.(*wire.UnregisteredError); !ok {
			t.Fatalf("panic value %T (%v), want *wire.UnregisteredError", r, r)
		}
	}()
	tr.Send(Frame{From: 0, To: 1, Msg: unregMsg{X: 1}, Mseq: 1})
}

// TestUDPGobModeUnregisteredDrops pins the oracle path's legacy
// semantics: in gob mode an unencodable payload is silently dropped (no
// panic), matching the pre-codec transport.
func TestUDPGobModeUnregisteredDrops(t *testing.T) {
	g := graph.Line(2)
	tr, err := NewUDPTransportOpts(g, UDPOptions{Gob: true})
	if err != nil {
		t.Fatalf("NewUDPTransportOpts: %v", err)
	}
	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	tr.Send(Frame{From: 0, To: 1, Msg: unregMsg{X: 1}, Mseq: 1})
	tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: 7}, Mseq: 2})
	if !waitFor(t, 5*time.Second, func() bool { return col.count() >= 1 }) {
		t.Fatal("the encodable frame never arrived")
	}
	if got := col.link(0, 1); len(got) != 1 || got[0].Msg.(confMsg).N != 7 {
		t.Fatalf("delivered %v, want only the encodable frame", got)
	}
}
