package livenet

// The lease-based client API of the lock service: a client acquires its
// node's local critical section with Node.Acquire(ctx), holds the
// returned Lease while working, and Release()s it. The protocol beneath
// is the paper's local mutual exclusion automaton unchanged — Acquire is
// BecomeHungry plus waiting for the eating transition, Release is
// ExitCS — so every guarantee the algorithms prove (local mutual
// exclusion, failure locality) is a guarantee of the service.
//
// Crash-robustness of *clients* (as opposed to nodes, which fail by the
// paper's silent-crash model via CrashAfter) comes from expiry: a lease
// unreleased for LeaseTTL is presumed abandoned, the node is demoted out
// of eating, and its neighbours proceed — no starvation from a dead
// client. The late Release then reports ErrLeaseExpired.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"lme/internal/core"
	"lme/internal/sim"
)

// Node is a client handle on one node of the cluster.
type Node struct {
	c *Cluster
	n *liveNode
}

// Node returns the client handle for node id. Handles are cheap and
// stateless; all state lives in the cluster.
func (c *Cluster) Node(id core.NodeID) *Node {
	return &Node{c: c, n: c.nodes[id]}
}

// pendingAcquire is one in-flight Acquire waiting for the eating
// transition.
type pendingAcquire struct {
	ch        chan *Lease
	start     time.Time
	abandoned bool // set under liveNode.pmu when the waiter gave up
}

// Acquire requests the node's local critical section and blocks until
// the protocol grants it (the node transitions to eating), the context
// is done, or the cluster stops. At most one lease is outstanding per
// node; concurrent Acquire calls on the same node queue.
//
// If ctx expires while the request is already in the protocol's hungry
// pipeline, the grant — whenever it arrives — is released immediately,
// so an abandoned Acquire never wedges the neighbourhood.
func (h *Node) Acquire(ctx context.Context) (*Lease, error) {
	c, n := h.c, h.n
	// One lease at a time per node: take the node's slot.
	select {
	case n.slot <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.stopCh:
		return nil, ErrStopped
	}
	p := &pendingAcquire{ch: make(chan *Lease, 1), start: time.Now()}
	n.pmu.Lock()
	n.pending = p
	n.pmu.Unlock()
	n.inbox.push(event{kind: evAcquire})
	select {
	case l := <-p.ch:
		return l, nil
	case <-ctx.Done():
		h.abandon(p)
		return nil, ctx.Err()
	case <-c.stopCh:
		h.abandon(p)
		return nil, ErrStopped
	}
}

// abandon marks a pending acquire as given up. If the grant already
// raced in, the granted lease is released on the waiter's behalf.
func (h *Node) abandon(p *pendingAcquire) {
	n := h.n
	n.pmu.Lock()
	if n.pending == p {
		p.abandoned = true
		n.pmu.Unlock()
		return
	}
	n.pmu.Unlock()
	// The grant raced in: grantLease already took the pending (with
	// abandoned still false) and will deliver the lease on the buffered
	// channel. Receive it and release on the waiter's behalf.
	l := <-p.ch
	l.Release() //nolint:errcheck // best-effort cleanup of a raced grant
}

// grantLease resolves the node's pending acquire after an eating
// transition. It runs on the node's event loop (called from onState).
func (c *Cluster) grantLease(n *liveNode) {
	n.pmu.Lock()
	p := n.pending
	if p == nil {
		n.pmu.Unlock()
		return
	}
	n.pending = nil
	if p.abandoned {
		n.pmu.Unlock()
		// The waiter is gone: exit the critical section immediately and
		// free the slot for the next client.
		n.inbox.push(event{kind: evRelease})
		<-n.slot
		return
	}
	l := &Lease{c: c, n: n, grantedAt: time.Now()}
	l.timer = time.AfterFunc(c.cfg.LeaseTTL, l.expire)
	n.lease = l
	n.pmu.Unlock()

	latency := time.Since(p.start)
	c.mu.Lock()
	c.acquisitions++
	c.grant.Observe(sim.FromDuration(latency))
	c.mu.Unlock()
	p.ch <- l
}

// Lease is a granted critical-section hold. Exactly one of Release and
// expiry ends it.
type Lease struct {
	c         *Cluster
	n         *liveNode
	grantedAt time.Time
	timer     *time.Timer

	mu    sync.Mutex
	state leaseState
}

type leaseState int

const (
	leaseActive leaseState = iota
	leaseReleased
	leaseExpired
)

// NodeID reports which node the lease is held on.
func (l *Lease) NodeID() core.NodeID { return l.n.id }

// GrantedAt reports when the lease was granted.
func (l *Lease) GrantedAt() time.Time { return l.grantedAt }

// Release exits the critical section and frees the node for the next
// client. A second Release returns ErrLeaseReleased; a Release after the
// TTL demoted the node returns ErrLeaseExpired.
func (l *Lease) Release() error {
	l.mu.Lock()
	switch l.state {
	case leaseReleased:
		l.mu.Unlock()
		return ErrLeaseReleased
	case leaseExpired:
		l.mu.Unlock()
		return ErrLeaseExpired
	}
	l.state = leaseReleased
	l.mu.Unlock()
	l.timer.Stop()
	l.end()
	return nil
}

// expire is the TTL timer callback: the client is presumed crashed, the
// node is demoted out of eating so its neighbours are not starved.
func (l *Lease) expire() {
	l.mu.Lock()
	if l.state != leaseActive {
		l.mu.Unlock()
		return
	}
	l.state = leaseExpired
	l.mu.Unlock()
	c := l.c
	c.mu.Lock()
	c.expired++
	c.mu.Unlock()
	l.end()
}

// end performs the shared release path: ExitCS on the node's loop, then
// the slot opens for the next Acquire. The evRelease is queued before
// the slot frees, so a queued client's evAcquire always follows it.
func (l *Lease) end() {
	n := l.n
	n.pmu.Lock()
	n.lease = nil
	n.pmu.Unlock()
	n.inbox.push(event{kind: evRelease})
	<-n.slot
}

// String renders the lease for diagnostics.
func (l *Lease) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	state := "active"
	switch l.state {
	case leaseReleased:
		state = "released"
	case leaseExpired:
		state = "expired"
	}
	return fmt.Sprintf("lease{node %d, %s, granted %s ago}", l.n.id, state, time.Since(l.grantedAt).Round(time.Microsecond))
}
