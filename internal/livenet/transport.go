package livenet

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"lme/internal/core"
	"lme/internal/graph"
	"lme/internal/metrics"
	"lme/internal/sim"
	"lme/internal/telemetry"
)

// Frame is one transport-level message on a directed link: the protocol
// payload plus the runtime metadata the observability layer carries
// through delivery (the sender's monotone message id and the send
// instant, both stamped by the cluster).
type Frame struct {
	// From and To are the endpoints of the directed link.
	From, To core.NodeID
	// Msg is the opaque protocol payload.
	Msg core.Message
	// Mseq is the sender's monotone per-node message id (1-based). It
	// doubles as the transport's duplicate-detection key — per directed
	// link, delivered Mseq values are strictly increasing — and as the
	// causality stamp the span layer reads from deliver events.
	Mseq uint64
	// SentAt is the cluster-relative send instant in microseconds; the
	// delivery path derives the link delay from it.
	SentAt sim.Time
}

// DeliverFunc receives frames from a transport. Calls are sequential per
// directed link (the FIFO contract) but concurrent across links; the
// callback must be safe for concurrent use.
type DeliverFunc func(Frame)

// Transport moves frames between the nodes of a static cluster. It is
// the runtime boundary the live runtime is built around: the cluster and
// the protocol state machines above it are transport-agnostic, so the
// in-process channel transport (hermetic, race-clean tests) and the UDP
// transport (real sockets) run the same protocol implementation
// byte-for-byte.
//
// Contract, which the conformance suite enforces on every implementation:
//
//   - FIFO per directed link: frames sent on the same (from, to) pair are
//     delivered in send order, exactly once. This is the paper's §3.1
//     link assumption; implementations over lossy media (UDP) restore it
//     with sequence numbers, a reorder buffer, retransmission and
//     duplicate suppression.
//   - No delivery on unknown links: Send on a pair that is not an edge of
//     the cluster graph silently drops the frame.
//   - No delivery after LinkDown(a, b): the link is removed in both
//     directions, frames still in flight on it are destroyed — the same
//     semantics the simulator gives a failing link — and frames sent
//     after LinkDown returns are never delivered. (A single delivery
//     already in progress when LinkDown runs may still complete; only
//     Close gives the stronger wait-for-quiescence guarantee.)
//   - No delivery after Close returns: Close stops all delivery, then
//     waits for in-progress deliveries to finish.
//
// Send is safe for concurrent use by different senders; frames from one
// sender on one link must be sent from a single goroutine at a time
// (which the node event loop guarantees).
//
// Adjacency crossing the seam follows core.Env.Neighbors's read-only
// rule: a transport handed topology at construction (a *graph.Graph or
// neighbour slices) must snapshot what it retains — it may never alias
// a slice the runtime hands to protocols, and the runtime never aliases
// the transport's copy. TestUDPNeighborsNotAliased vets this by
// comparing backing arrays.
type Transport interface {
	// Start wires the delivery callback and begins moving frames. It is
	// called exactly once, before any Send.
	Start(deliver DeliverFunc) error
	// Send enqueues a frame on the directed link f.From→f.To.
	Send(f Frame)
	// LinkDown removes the link a—b in both directions, dropping frames
	// in flight on it. Subsequent sends on the pair are dropped.
	LinkDown(a, b core.NodeID)
	// Close shuts the transport down. No frame is delivered after Close
	// returns.
	Close() error
}

// StatsSource is the telemetry face of a transport: cumulative
// per-directed-link wire counters aggregated into one lme/telemetry/v1
// record. It is deliberately not part of Transport — a minimal
// implementation stays four methods — but both shipped transports
// provide it (the channel transport with mostly-zero shim counters, so
// the seam contract is observable on either side), and the conformance
// suite exercises it on both.
type StatsSource interface {
	// Stats snapshots the transport's wire telemetry. Safe to call at
	// any point in the lifecycle, including after Close.
	Stats() telemetry.TransportStats
}

// linkKey identifies a directed link.
type linkKey [2]core.NodeID

// frameQueue is an unbounded FIFO of frames with blocking pop, the
// channel transport's per-link buffer.
type frameQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Frame
	closed bool
}

func newFrameQueue() *frameQueue {
	q := &frameQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *frameQueue) push(f Frame) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, f)
	q.cond.Signal()
}

func (q *frameQueue) pop() (Frame, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		// A closed link destroys its in-flight frames (the simulator's
		// LinkDown semantics); nothing is drained.
		return Frame{}, false
	}
	f := q.items[0]
	q.items = q.items[1:]
	return f, true
}

// isClosed reports whether the link was torn down; the forwarder checks
// it after its delay sleep so a frame in flight when LinkDown ran is
// destroyed rather than delivered.
func (q *frameQueue) isClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

func (q *frameQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// ChannelTransport is the in-process transport: one unbounded FIFO queue
// and one forwarder goroutine per directed link, each adding a uniform
// random delay in (0, MaxDelay] before handing the frame to the cluster.
// It keeps the live tests hermetic (no sockets) and race-clean, and it is
// the transport the 10k-node load generator runs on.
type ChannelTransport struct {
	maxDelay time.Duration
	seed     uint64

	mu      sync.Mutex
	links   map[linkKey]*frameQueue
	started bool

	deliver DeliverFunc
	closed  atomic.Bool
	wg      sync.WaitGroup

	framesSent      atomic.Uint64
	framesDelivered atomic.Uint64
}

var (
	_ Transport   = (*ChannelTransport)(nil)
	_ StatsSource = (*ChannelTransport)(nil)
	_ StatsSource = (*UDPTransport)(nil)
)

// NewChannelTransport builds the in-process transport over the edges of
// g. maxDelay bounds the per-frame link delay (the paper's ν); seed
// derives the per-link delay streams.
func NewChannelTransport(g *graph.Graph, maxDelay time.Duration, seed uint64) *ChannelTransport {
	if maxDelay <= 0 {
		maxDelay = DefaultMaxMessageDelay
	}
	t := &ChannelTransport{
		maxDelay: maxDelay,
		seed:     seed,
		links:    make(map[linkKey]*frameQueue, 2*len(g.Edges())),
	}
	for _, e := range g.Edges() {
		a, b := core.NodeID(e[0]), core.NodeID(e[1])
		t.links[linkKey{a, b}] = newFrameQueue()
		t.links[linkKey{b, a}] = newFrameQueue()
	}
	return t
}

// Start launches one forwarder goroutine per directed link.
func (t *ChannelTransport) Start(deliver DeliverFunc) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return errAlreadyStarted
	}
	t.started = true
	t.deliver = deliver
	for key, q := range t.links {
		t.wg.Add(1)
		go t.forward(key, q)
	}
	return nil
}

// forward is the per-link goroutine: popping sequentially and sleeping
// the random delay in between preserves FIFO order per link while frames
// on different links race freely.
func (t *ChannelTransport) forward(key linkKey, q *frameQueue) {
	defer t.wg.Done()
	rng := rand.New(rand.NewPCG(t.seed, linkSalt(key)))
	for {
		f, ok := q.pop()
		if !ok {
			return
		}
		time.Sleep(time.Duration(rng.Int64N(int64(t.maxDelay)) + 1))
		if t.closed.Load() || q.isClosed() {
			return
		}
		t.framesDelivered.Add(1)
		t.deliver(f)
	}
}

// linkSalt derives a per-link PCG stream id from the directed pair.
func linkSalt(key linkKey) uint64 {
	return uint64(key[0])<<32 ^ uint64(uint32(key[1])) ^ 0x9e3779b97f4a7c15
}

// Send enqueues the frame, dropping it when the pair is not a live link.
func (t *ChannelTransport) Send(f Frame) {
	if t.closed.Load() {
		return
	}
	t.mu.Lock()
	q := t.links[linkKey{f.From, f.To}]
	t.mu.Unlock()
	if q != nil {
		t.framesSent.Add(1)
		q.push(f)
	}
}

// Stats reports the channel transport's telemetry: frame counts plus
// zeros for the reliability-shim counters — in-process queues never
// retransmit, duplicate or reorder, and the zeros say so explicitly.
func (t *ChannelTransport) Stats() telemetry.TransportStats {
	t.mu.Lock()
	links := len(t.links)
	t.mu.Unlock()
	return telemetry.TransportStats{
		Schema:          telemetry.Schema,
		Kind:            "channel",
		Links:           links,
		FramesSent:      t.framesSent.Load(),
		FramesDelivered: t.framesDelivered.Load(),
		AckRTTUS:        metrics.NewSketch().Snapshot(),
	}
}

// LinkDown removes the link in both directions; in-flight frames on it
// are destroyed with the queues.
func (t *ChannelTransport) LinkDown(a, b core.NodeID) {
	t.mu.Lock()
	qa, qb := t.links[linkKey{a, b}], t.links[linkKey{b, a}]
	delete(t.links, linkKey{a, b})
	delete(t.links, linkKey{b, a})
	t.mu.Unlock()
	if qa != nil {
		qa.close()
	}
	if qb != nil {
		qb.close()
	}
}

// Close stops delivery and waits for the forwarders to exit.
func (t *ChannelTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.mu.Lock()
	links := t.links
	t.links = map[linkKey]*frameQueue{}
	t.mu.Unlock()
	for _, q := range links {
		q.close()
	}
	t.wg.Wait()
	return nil
}
