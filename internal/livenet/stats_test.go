package livenet

// Tests for the transport wire counters (lme/telemetry/v1): the optional
// StatsSource face of both shipped transports, and the regression test
// for the reorder-cap overflow path — datagrams discarded because a
// link's reorder buffer is full must be counted, never silently dropped,
// and the link must recover to full FIFO delivery afterwards.

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lme/internal/graph"
	"lme/internal/telemetry"
)

// TestTransportStatsCounters runs both transports through a small burst
// and checks the StatsSource counters agree with what the collector saw.
func TestTransportStatsCounters(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			const msgs = 50
			g := graph.Line(2)
			tr := mk(t, g)
			src, ok := tr.(StatsSource)
			if !ok {
				t.Fatalf("%T does not implement StatsSource", tr)
			}
			col := newCollector()
			if err := tr.Start(col.deliver); err != nil {
				t.Fatalf("Start: %v", err)
			}
			defer tr.Close() //nolint:errcheck

			for n := 0; n < msgs; n++ {
				tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
			}
			if !waitFor(t, 5*time.Second, func() bool { return col.count() >= msgs }) {
				t.Fatalf("delivered %d of %d frames", col.count(), msgs)
			}

			st := src.Stats()
			if st.Schema != telemetry.Schema {
				t.Errorf("schema %q, want %q", st.Schema, telemetry.Schema)
			}
			// The maker name may carry a wire-mode suffix ("udp-gob");
			// Kind names the implementation, not the payload encoding.
			if want := strings.TrimSuffix(name, "-gob"); st.Kind != want {
				t.Errorf("kind %q, want %q", st.Kind, want)
			}
			if st.FramesSent < msgs {
				t.Errorf("frames_sent %d, want >= %d", st.FramesSent, msgs)
			}
			if st.FramesDelivered != msgs {
				t.Errorf("frames_delivered %d, want %d", st.FramesDelivered, msgs)
			}
			if st.Links == 0 {
				t.Errorf("links = 0, want the graph's directed links")
			}
		})
	}
}

// TestUDPReorderOverflowCounted pins the reorder-cap contract. A blocked
// gap (seq 1 suppressed on the wire) forces every later datagram through
// the reorder buffer; once udpReorderCap frames are parked, further
// arrivals must be discarded AND counted as reorder_overflow — the
// pre-counter behaviour was a silent drop. Releasing the gap must then
// recover the link to complete, in-order delivery: the overflowed frames
// were never acked, so retransmission replays them.
func TestUDPReorderOverflowCounted(t *testing.T) {
	g := graph.Line(2)
	tr, err := NewUDPTransport(g, 25*time.Millisecond)
	if err != nil {
		t.Fatalf("NewUDPTransport: %v", err)
	}
	var releaseGap atomic.Bool
	tr.mangle = func(pkt []byte) [][]byte {
		// Suppress every datagram carrying seq 1 until the test opens the
		// gap; all later seqs sail through and pile up in the reorder
		// buffer on the receive side. (Coalescing means the suppressed
		// datagram takes its companion frames down with it — they are
		// retransmitted like any other loss.)
		if !releaseGap.Load() && dgramCarriesSeq(t, pkt, 1) {
			return nil
		}
		// Pace the wire so the loopback reader keeps up: an unpaced
		// retransmit blast overruns the kernel socket buffer and the
		// reorder buffer plateaus below its cap.
		time.Sleep(20 * time.Microsecond)
		return [][]byte{pkt}
	}

	col := newCollector()
	if err := tr.Start(col.deliver); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer tr.Close() //nolint:errcheck

	const msgs = udpReorderCap + 200
	for n := 0; n < msgs; n++ {
		tr.Send(Frame{From: 0, To: 1, Msg: confMsg{N: n}, Mseq: uint64(n) + 1})
	}
	if !waitFor(t, 15*time.Second, func() bool { return tr.Stats().ReorderOverflow > 0 }) {
		t.Fatalf("no reorder_overflow counted after flooding %d frames past a blocked gap (stats %+v)",
			msgs, tr.Stats())
	}

	releaseGap.Store(true)
	if !waitFor(t, 30*time.Second, func() bool { return col.count() >= msgs }) {
		t.Fatalf("delivered %d of %d frames after releasing the gap (stats %+v)",
			col.count(), msgs, tr.Stats())
	}
	for n, f := range col.link(0, 1) {
		if m := f.Msg.(confMsg); m.N != n {
			t.Fatalf("frame %d carries N=%d — FIFO violated across the overflow", n, m.N)
		}
	}

	st := tr.Stats()
	if st.ReorderDepthHW != udpReorderCap {
		t.Errorf("reorder_depth_hw %d, want the cap %d (overflow implies a full buffer)",
			st.ReorderDepthHW, udpReorderCap)
	}
	if st.Retransmits == 0 {
		t.Errorf("retransmits = 0; recovery of the suppressed and overflowed frames needs them")
	}
	if st.FramesDelivered != msgs {
		t.Errorf("frames_delivered %d, want %d", st.FramesDelivered, msgs)
	}
}
